// Platformstudy reproduces the paper's central finding in one run: the
// same application, with two different tree-building algorithms, on two
// very different simulated machines. On the hardware-coherent Origin 2000
// the choice barely matters; on the page-based software shared virtual
// memory machine (Typhoon-0 running HLRC) the lock-based LOCAL algorithm
// collapses while the lock-free SPACE algorithm keeps its speedup. Run:
//
//	go run ./examples/platformstudy [-n 8192]
package main

import (
	"flag"
	"fmt"
	"os"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/phys"
	"partree/internal/simalg"
	"partree/internal/stats"
)

func main() {
	n := flag.Int("n", 8192, "bodies")
	p := flag.Int("p", 16, "simulated processors")
	flag.Parse()

	bodies := phys.Generate(phys.ModelPlummer, *n, 1998)
	platforms := []memsim.Platform{memsim.Origin2000(*p), memsim.TyphoonHLRC()}
	algs := []core.Algorithm{core.LOCAL, core.SPACE}

	fmt.Printf("%d bodies, %d simulated processors, 2 measured time steps\n\n", *n, *p)
	t := stats.NewTable("platform", "algorithm", "total", "tree build", "tree share", "locks", "speedup")
	for _, pl := range platforms {
		seq := simalg.Run(core.LOCAL, bodies, simalg.Config{
			Platform: pl, P: 1, Sequential: true,
		})
		for _, alg := range algs {
			o := simalg.Run(alg, bodies, simalg.Config{Platform: pl, P: *p})
			t.Row(pl.Name, alg.String(),
				stats.Seconds(o.TotalNs()),
				stats.Seconds(o.TreeNs),
				fmt.Sprintf("%.1f%%", 100*o.TreeShare()),
				o.TotalLocks(),
				fmt.Sprintf("%.2fx", seq.TotalNs()/o.TotalNs()))
		}
	}
	t.Write(os.Stdout)

	fmt.Println(`
Reading the table: tree building is <3% of a sequential run, and on the
hardware-coherent machine the algorithms are near-equivalent. Under
software page-based coherence every lock acquisition triggers protocol
work (messages, write notices, diff flushes) and critical sections dilate
with page faults — the locking algorithm's tree build swallows the run.
SPACE partitions space separately for tree building so no lock is ever
taken, which is why it ports across both machines.`)
}
