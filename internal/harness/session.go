// Package harness defines the paper's experiments — every table and figure
// in the evaluation section — as runnable units over the platform
// simulator, plus the native-execution extras. cmd/paperrepro drives it.
package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/phys"
	"partree/internal/runner"
	"partree/internal/simalg"
)

// Options configure a reproduction session.
type Options struct {
	// Sizes are the problem sizes swept (bodies). The paper uses 8k-512k;
	// the default keeps runs quick, -large extends it.
	Sizes []int
	// Large switches to the extended size sweep.
	Large bool
	// Seed for the Plummer model.
	Seed int64
	// LeafCap is the bodies-per-leaf threshold k.
	LeafCap int
	// MeasuredSteps per run (the paper times a few steps after warmup).
	MeasuredSteps int
	// Workers bounds the runner's concurrent sweep cells (0 = GOMAXPROCS).
	Workers int
	// Check verifies every sweep cell's tree against the serial reference
	// (a native companion build per cell; see runner.Spec.Check).
	Check bool
	// TraceDir, when non-empty, makes every sweep cell write a Chrome
	// trace_event file into this directory (one per cell, named after the
	// cell). Traces are written after each cell's wall clock stops, so a
	// traced sweep reports the same simulated times as an untraced one.
	TraceDir string
}

// DefaultOptions returns the quick configuration.
func DefaultOptions() Options {
	return Options{
		Sizes:         []int{4096, 8192, 16384},
		Seed:          1998,
		LeafCap:       8,
		MeasuredSteps: 2,
	}
}

// EffectiveSizes returns the size sweep honoring Large.
func (o Options) EffectiveSizes() []int {
	if o.Large {
		return append(append([]int{}, o.Sizes...), 32768, 65536, 131072)
	}
	return o.Sizes
}

// MaxSize returns the largest size in the sweep (used by the experiments
// that the paper runs at a single large size).
func (o Options) MaxSize() int {
	max := 0
	for _, n := range o.EffectiveSizes() {
		if n > max {
			max = n
		}
	}
	return max
}

// Session executes experiments over a shared runner.Runner, whose
// concurrency-safe cache lets experiments share sweeps (the speedup
// figures and the phase-share figures reuse the same runs) and lets
// whole figures compute their cells concurrently via RunExperiment.
type Session struct {
	Opts Options
	r    *runner.Runner

	mu         sync.Mutex
	collecting bool
	pending    map[string]runner.Spec
	// ctx is the active sweep's context while RunExperiment is rendering;
	// outcome() runs cells under it so cancellation (Ctrl-C in
	// cmd/paperrepro) cuts a sweep short instead of running it to the end.
	ctx context.Context

	// obs tracks live sweep progress (cells done/total, current figure);
	// see obs.go. Always maintained, exposed only under -http.
	obs sessionObs
}

// NewSession creates a session.
func NewSession(opts Options) *Session {
	if opts.LeafCap == 0 {
		opts.LeafCap = 8
	}
	if opts.MeasuredSteps == 0 {
		opts.MeasuredSteps = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1998
	}
	if len(opts.Sizes) == 0 {
		opts.Sizes = DefaultOptions().Sizes
	}
	return &Session{Opts: opts, r: runner.New(opts.Workers)}
}

// Runner exposes the session's execution engine (for result dumps).
func (s *Session) Runner() *runner.Runner { return s.r }

// Bodies returns the memoized Plummer system of size n.
func (s *Session) Bodies(n int) *phys.Bodies {
	return s.r.Bodies(phys.ModelPlummer, n, s.Opts.Seed)
}

// spec maps one sweep cell onto the runner's typed Spec.
func (s *Session) spec(pl memsim.Platform, alg core.Algorithm, p, n int, seq bool) runner.Spec {
	name, ok := runner.CanonicalPlatform(pl.Name)
	if !ok {
		name = pl.Name
	}
	sp := runner.Spec{
		Backend:    runner.Simulated,
		Platform:   name,
		Alg:        alg,
		Procs:      p,
		Bodies:     n,
		LeafCap:    s.Opts.LeafCap,
		Steps:      s.Opts.MeasuredSteps,
		Seed:       s.Opts.Seed,
		Sequential: seq,
		Check:      s.Opts.Check,
	}
	if s.Opts.TraceDir != "" {
		sp.Trace = filepath.Join(s.Opts.TraceDir, TraceFileName(sp))
	}
	return sp
}

// TraceFileName is the canonical per-cell trace filename a session uses
// under Options.TraceDir: platform, algorithm (SEQ for the sequential
// baseline), processors, bodies.
func TraceFileName(sp runner.Spec) string {
	alg := sp.Alg.String()
	if sp.Sequential {
		alg = "SEQ"
	}
	return fmt.Sprintf("%s_%s_p%d_n%d.json", sp.Platform, alg, sp.Procs, sp.Bodies)
}

// outcome runs (or recalls) one cell. During an experiment's collect
// pass it only records the cell and returns a placeholder, so the real
// runs can then be fanned out concurrently.
func (s *Session) outcome(spec runner.Spec) simalg.Outcome {
	s.mu.Lock()
	if s.collecting {
		s.pending[spec.Key()] = spec
		s.mu.Unlock()
		return simalg.Outcome{
			Alg: spec.Alg, Platform: spec.Platform, P: spec.Procs, N: spec.Bodies,
			LocksPerProc:     make([]int64, spec.Procs),
			BarrierNsPerProc: make([]float64, spec.Procs),
		}
	}
	ctx := s.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Unlock()
	o, _ := s.r.Run(ctx, spec).Outcome()
	return o
}

// Outcome runs (or recalls) algorithm alg on the platform with p simulated
// processors and n bodies.
func (s *Session) Outcome(pl memsim.Platform, alg core.Algorithm, p, n int) simalg.Outcome {
	return s.outcome(s.spec(pl, alg, p, n, false))
}

// Seq returns the best-sequential baseline on the platform at size n: one
// processor, no locking anywhere (the paper's speedup denominator).
func (s *Session) Seq(pl memsim.Platform, n int) simalg.Outcome {
	return s.outcome(s.spec(pl, core.LOCAL, 1, n, true))
}

// Speedup is whole-application speedup over the platform's sequential run.
func (s *Session) Speedup(pl memsim.Platform, alg core.Algorithm, p, n int) float64 {
	return s.Seq(pl, n).TotalNs() / s.Outcome(pl, alg, p, n).TotalNs()
}

// TreeSpeedup is the tree-building phase's speedup alone (paper Figures 9
// and 14).
func (s *Session) TreeSpeedup(pl memsim.Platform, alg core.Algorithm, p, n int) float64 {
	return s.Seq(pl, n).TreeNs / s.Outcome(pl, alg, p, n).TreeNs
}

// RunExperiment renders one experiment, computing its sweep cells
// concurrently: a first silent pass records which cells the experiment
// reads, the runner fans them out across its worker pool, and a second
// pass renders from the now-warm cache. Output is identical to a serial
// run because rendering is serial and the cache is keyed by spec.
func (s *Session) RunExperiment(ctx context.Context, e Experiment, w io.Writer) {
	s.mu.Lock()
	s.collecting = true
	s.pending = map[string]runner.Spec{}
	s.ctx = ctx
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.ctx = nil
		s.mu.Unlock()
	}()
	func() {
		defer func() {
			s.mu.Lock()
			s.collecting = false
			s.mu.Unlock()
		}()
		e.Run(s, io.Discard)
	}()
	s.mu.Lock()
	specs := make([]runner.Spec, 0, len(s.pending))
	keys := make([]string, 0, len(s.pending))
	for k := range s.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		specs = append(specs, s.pending[k])
	}
	s.pending = nil
	s.mu.Unlock()
	s.obs.experiments.Add(1)
	s.obs.cellsTotal.Add(int64(len(specs)))
	s.obs.setCurrent(e.ID, e.Title)
	defer s.obs.setCurrent("", "")
	s.r.RunAllProgress(ctx, specs, func(int, runner.Result) {
		s.obs.cellsDone.Add(1)
	})
	e.Run(s, w)
}

// DumpCSV writes every simulated outcome the session has computed as CSV,
// for external plotting. Rows are sorted by (platform, algorithm, procs,
// bodies) so output is stable regardless of execution order.
func (s *Session) DumpCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"platform", "algorithm", "procs", "bodies", "steps",
		"tree_ns", "partition_ns", "force_ns", "update_ns", "total_ns",
		"tree_share", "locks_total", "barrier_ns_mean", "interactions",
		"page_faults", "diffs", "write_notices", "coherence_misses", "contention_ns",
	}); err != nil {
		return err
	}
	type row struct {
		key string
		o   simalg.Outcome
		seq bool
	}
	var rows []row
	for _, res := range s.r.Results() {
		o, ok := res.Outcome()
		if !ok {
			continue
		}
		// Legacy sort key (pre-runner cache key) keeps row order stable
		// for downstream consumers of this file.
		key := fmt.Sprintf("%s|%v|%d|%d", o.Platform, o.Alg, o.P, o.N)
		if res.Spec.Sequential {
			key = fmt.Sprintf("%s|seq|%d", o.Platform, o.N)
		}
		rows = append(rows, row{key, o, res.Spec.Sequential})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	for _, r := range rows {
		o := r.o
		alg := o.Alg.String()
		if r.seq {
			alg = "SEQUENTIAL"
		}
		rec := []string{
			o.Platform, alg,
			strconv.Itoa(o.P), strconv.Itoa(o.N), strconv.Itoa(o.Steps),
			fmt.Sprintf("%.0f", o.TreeNs), fmt.Sprintf("%.0f", o.PartNs),
			fmt.Sprintf("%.0f", o.ForceNs), fmt.Sprintf("%.0f", o.UpdateNs),
			fmt.Sprintf("%.0f", o.TotalNs()),
			fmt.Sprintf("%.4f", o.TreeShare()),
			strconv.FormatInt(o.TotalLocks(), 10),
			fmt.Sprintf("%.0f", o.MeanBarrierNs()),
			strconv.FormatInt(o.Interactions, 10),
			strconv.FormatInt(o.Protocol.PageFaults, 10),
			strconv.FormatInt(o.Protocol.Diffs, 10),
			strconv.FormatInt(o.Protocol.WriteNotices, 10),
			strconv.FormatInt(o.Protocol.CoherenceMiss, 10),
			fmt.Sprintf("%.0f", o.Protocol.ContentionNs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
