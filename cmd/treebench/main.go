// Command treebench benchmarks the five native tree builders on this
// machine: wall-clock per build, lock counts, and tree statistics across
// algorithms and processor counts.
//
// Usage:
//
//	treebench [-n 65536] [-p 1,2,4,8] [-reps 5] [-leafcap 8] [-model plummer]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/stats"
)

func main() {
	var (
		n       = flag.Int("n", 65536, "number of bodies")
		procs   = flag.String("p", "1,2,4,8", "comma-separated processor counts")
		reps    = flag.Int("reps", 5, "builds per configuration (best time reported)")
		leafCap = flag.Int("leafcap", 8, "bodies per leaf (k)")
		model   = flag.String("model", "plummer", "mass model")
		seed    = flag.Int64("seed", 1, "random seed")
		spatial = flag.Bool("spatial", true, "spatially coherent body partition (like settled costzones)")
	)
	flag.Parse()

	m, ok := phys.ParseModel(*model)
	if !ok {
		fmt.Fprintf(os.Stderr, "treebench: unknown model %q\n", *model)
		os.Exit(2)
	}
	var ps []int
	for _, f := range strings.Split(*procs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "treebench: bad processor count %q\n", f)
			os.Exit(2)
		}
		ps = append(ps, v)
	}

	bodies := phys.Generate(m, *n, *seed)
	fmt.Printf("treebench: %d bodies (%s), k=%d, best of %d builds\n\n", *n, m, *leafCap, *reps)

	header := []string{"algorithm"}
	for _, p := range ps {
		header = append(header, fmt.Sprintf("%dp", p))
	}
	header = append(header, "locks(8p)", "tree")
	t := stats.NewTable(header...)

	for _, alg := range core.Algorithms() {
		row := []any{alg.String()}
		var locks int64
		var treeDesc string
		for _, p := range ps {
			bld := core.New(alg, core.Config{P: p, LeafCap: *leafCap})
			assign := core.EvenAssign(*n, p)
			if *spatial {
				assign = core.SpatialAssign(bodies, p)
			}
			in := &core.Input{Bodies: bodies, Assign: assign}
			best := time.Duration(1 << 62)
			for r := 0; r < *reps; r++ {
				in.Step = r
				start := time.Now()
				tree, metrics := bld.Build(in)
				el := time.Since(start)
				if el < best {
					best = el
				}
				if p == 8 || (p == ps[len(ps)-1] && locks == 0) {
					locks = metrics.TotalLocks()
					st := octree.CollectStats(tree)
					treeDesc = fmt.Sprintf("%dc/%dl d%d", st.Cells, st.Leaves, st.MaxDepth)
				}
			}
			row = append(row, best.Round(10*time.Microsecond).String())
		}
		row = append(row, locks, treeDesc)
		t.Row(row...)
	}
	t.Write(os.Stdout)
}
