// Report emission. The JSON report carries only data that is a pure
// function of (flags, seed, server determinism): struct field order is
// fixed, encoding/json sorts map keys, and floats render canonically,
// so two identical runs emit identical bytes. Measured quantities
// (latency, queue depth, wall time) go to the timings CSV instead.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

type report struct {
	Loadgen  runConfig     `json:"loadgen"`
	Schedule scheduleInfo  `json:"schedule"`
	Outcomes outcomeCounts `json:"outcomes"`
	// Targets breaks the outcomes down per base URL when the run
	// round-robins over more than one (-targets); omitted for the
	// single-URL case so existing reports stay byte-identical.
	Targets  []targetOutcomes `json:"targets,omitempty"`
	Sessions []sessionEntry   `json:"sessions,omitempty"`
	// Slow points at the run's tail: the request IDs behind the
	// p99-slowest build / session step. The IDs are deterministic
	// (loadgen mints them), but *which* request was slowest is
	// measured — the one deliberate exception to the byte-stable
	// contract, so determinism comparisons strip lines matching "p99_
	// (loadgen_smoke.sh and the report test both do).
	Slow    *slowPointers `json:"slow,omitempty"`
	Metrics metricsDelta  `json:"metrics_delta"`
}

// slowPointers keys a slow loadgen run straight into the daemon's
// flight recorder: GET /debug/requests/<id> on the serving host.
type slowPointers struct {
	// P99BuildRequestID is the request ID of the p99-slowest ok build
	// by client-observed latency (build mode).
	P99BuildRequestID string `json:"p99_build_request_id,omitempty"`
	// P99StepRequestID/P99Step name the session (request ID) and step
	// index of the p99-slowest step by server-reported total (session
	// mode).
	P99StepRequestID string `json:"p99_step_request_id,omitempty"`
	P99Step          int    `json:"p99_step,omitempty"`
}

type runConfig struct {
	Mode      string  `json:"mode"`
	Scenario  string  `json:"scenario"`
	Arrival   string  `json:"arrival"`
	HorizonNs int64   `json:"horizon_ns"`
	Speedup   float64 `json:"speedup"`
	Bodies    int     `json:"bodies"`
	Procs     int     `json:"procs"`
	Steps     int     `json:"steps"`
	Seed      int64   `json:"seed"`
	Adaptive  bool    `json:"adaptive"`
	Linger    bool    `json:"linger"`
}

type scheduleInfo struct {
	Arrivals int `json:"arrivals"`
	// Digest is the SHA-256 of the schedule's canonical NDJSON trace —
	// two runs with the same digest replayed the same traffic.
	Digest  string `json:"digest"`
	FirstNs int64  `json:"first_ns"`
	LastNs  int64  `json:"last_ns"`
}

type outcomeCounts struct {
	OK         int `json:"ok"`
	Rejected   int `json:"rejected"`
	Failed     int `json:"failed"`
	Unlaunched int `json:"unlaunched"`
}

// targetOutcomes is one target's slice of the run: which base URL,
// how many arrivals the round-robin handed it, and how they went.
type targetOutcomes struct {
	URL      string        `json:"url"`
	Arrivals int           `json:"arrivals"`
	Outcomes outcomeCounts `json:"outcomes"`
}

// sessionEntry is one session's server-reported deterministic
// aggregates, keyed and sorted by arrival ID.
type sessionEntry struct {
	ID        int     `json:"id"`
	AtNs      int64   `json:"at_ns"`
	RequestID string  `json:"request_id,omitempty"`
	Outcome   string  `json:"outcome"`
	Steps     int     `json:"steps"`
	Rebuilds  int     `json:"rebuilds"`
	Fallbacks int     `json:"fallbacks"`
	Moved     int64   `json:"moved"`
	ChurnSum  float64 `json:"churn_sum"`
	Closed    string  `json:"closed,omitempty"`
}

// metricsDelta is the before→after difference of the daemon counters
// the run is accountable for.
type metricsDelta struct {
	EngineRejected   map[string]int64 `json:"engine_rejected"`
	SessionsOpened   int64            `json:"sessions_opened"`
	SessionsClosed   int64            `json:"sessions_closed"`
	SessionsEvicted  int64            `json:"sessions_evicted"`
	SessionsRejected int64            `json:"sessions_rejected"`
	SessionFallbacks int64            `json:"session_fallbacks"`
}

func (o *outcomeCounts) tally(outcome string) {
	switch outcome {
	case "ok":
		o.OK++
	case "rejected":
		o.Rejected++
	case "unlaunched":
		o.Unlaunched++
	default:
		o.Failed++
	}
}

func buildReport(cfg config, schedule []time.Duration, traceBytes []byte,
	results []arrivalResult, before, after []metricsSnapshot) report {

	rep := report{
		Loadgen: runConfig{
			Mode: cfg.mode, Scenario: cfg.scenario.Name(), Arrival: cfg.arrival.Name(),
			HorizonNs: int64(cfg.horizon), Speedup: cfg.speedup,
			Bodies: cfg.n, Procs: cfg.procs, Steps: cfg.steps, Seed: cfg.seed,
			Adaptive: cfg.adaptive, Linger: cfg.linger,
		},
		Schedule: scheduleInfo{
			Arrivals: len(schedule),
			Digest:   fmt.Sprintf("%x", sha256.Sum256(traceBytes)),
			FirstNs:  int64(schedule[0]),
			LastNs:   int64(schedule[len(schedule)-1]),
		},
	}
	perTarget := make([]targetOutcomes, len(cfg.targets))
	for ti, u := range cfg.targets {
		perTarget[ti].URL = u
	}
	for _, r := range results {
		rep.Outcomes.tally(r.Outcome)
		tt := &perTarget[r.ID%len(cfg.targets)]
		tt.Arrivals++
		tt.Outcomes.tally(r.Outcome)
		if cfg.mode == "session" {
			rep.Sessions = append(rep.Sessions, sessionEntry{
				ID: r.ID, AtNs: r.AtNs, RequestID: r.RequestID,
				Outcome: r.Outcome, Steps: r.Steps,
				Rebuilds: r.Rebuilds, Fallbacks: r.Fallbacks,
				Moved: r.Moved, ChurnSum: r.ChurnSum, Closed: r.Closed,
			})
		}
	}
	if len(cfg.targets) > 1 {
		rep.Targets = perTarget
	}
	sort.Slice(rep.Sessions, func(i, j int) bool { return rep.Sessions[i].ID < rep.Sessions[j].ID })
	rep.Slow = slowPointersFor(cfg.mode, results)

	// Counter deltas sum across the fleet: each target's before→after
	// difference, added up.
	d := func(name string) int64 {
		var t float64
		for ti := range after {
			t += after[ti].sum(name) - before[ti].sum(name)
		}
		return int64(t)
	}
	rep.Metrics = metricsDelta{
		EngineRejected: map[string]int64{
			"cancelled":  d(`partree_engine_rejected_total{reason="cancelled"}`),
			"draining":   d(`partree_engine_rejected_total{reason="draining"}`),
			"queue_full": d(`partree_engine_rejected_total{reason="queue_full"}`),
		},
		SessionsOpened:   d("partree_session_opened_total"),
		SessionsClosed:   d("partree_session_closed_total"),
		SessionsEvicted:  d("partree_session_evicted_total"),
		SessionsRejected: d("partree_session_rejected_total"),
		SessionFallbacks: d("partree_session_fallbacks_total"),
	}
	return rep
}

// slowPointersFor finds the p99-slowest ok build (client latency) or
// session step (server-reported total), nearest-rank. Ties break toward
// the lower arrival ID / step index so reruns with equal measurements
// stay stable.
func slowPointersFor(mode string, results []arrivalResult) *slowPointers {
	if mode == "build" {
		type cand struct {
			id  int
			rid string
			lat time.Duration
		}
		var cands []cand
		for _, r := range results {
			if r.Outcome == "ok" && r.RequestID != "" {
				cands = append(cands, cand{r.ID, r.RequestID, r.latency})
			}
		}
		if len(cands) == 0 {
			return nil
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].lat != cands[j].lat {
				return cands[i].lat < cands[j].lat
			}
			return cands[i].id < cands[j].id
		})
		return &slowPointers{P99BuildRequestID: cands[nearestRank(len(cands), 99)].rid}
	}
	type cand struct {
		id   int
		rid  string
		step int
		ms   float64
	}
	var cands []cand
	for _, r := range results {
		if r.Outcome != "ok" || r.RequestID == "" {
			continue
		}
		for i, ms := range r.stepTotalsMs {
			cands = append(cands, cand{r.ID, r.RequestID, i, ms})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ms != cands[j].ms {
			return cands[i].ms < cands[j].ms
		}
		if cands[i].id != cands[j].id {
			return cands[i].id < cands[j].id
		}
		return cands[i].step < cands[j].step
	})
	c := cands[nearestRank(len(cands), 99)]
	return &slowPointers{P99StepRequestID: c.rid, P99Step: c.step}
}

// nearestRank is the nearest-rank percentile index for n sorted items.
func nearestRank(n int, p float64) int {
	i := int(p/100*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

func writeReport(path string, rep report) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// writeTimings emits the measured side as metric,value CSV rows.
func writeTimings(path string, results []arrivalResult, depths []float64, wall time.Duration) error {
	lat := sortedLatencies(results)
	var maxDepth, sumDepth float64
	for _, d := range depths {
		sumDepth += d
		if d > maxDepth {
			maxDepth = d
		}
	}
	meanDepth := 0.0
	if len(depths) > 0 {
		meanDepth = sumDepth / float64(len(depths))
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	var b []byte
	b = append(b, "metric,value\n"...)
	add := func(k string, v float64) { b = append(b, fmt.Sprintf("%s,%g\n", k, v)...) }
	add("completed", float64(len(lat)))
	add("p50_ms", ms(percentile(lat, 50)))
	add("p95_ms", ms(percentile(lat, 95)))
	add("p99_ms", ms(percentile(lat, 99)))
	if len(lat) > 0 {
		add("max_ms", ms(lat[len(lat)-1]))
	}
	add("queue_depth_max", maxDepth)
	add("queue_depth_mean", meanDepth)
	add("queue_depth_samples", float64(len(depths)))
	add("wall_ms", ms(wall))
	// Server-reported breakdown tails (Server-Timing / per-step timing
	// records): where the time went on the daemon, not on the wire.
	var sq, sb []float64
	for _, r := range results {
		if r.Outcome == "ok" {
			sq = append(sq, r.serverQueueMs)
			sb = append(sb, r.serverBuildMs)
		}
	}
	sort.Float64s(sq)
	sort.Float64s(sb)
	if len(sq) > 0 {
		add("server_queue_ms_p99", sq[nearestRank(len(sq), 99)])
		add("server_build_ms_p99", sb[nearestRank(len(sb), 99)])
	}
	return os.WriteFile(path, b, 0o644)
}
