// Package reqtrace is the request-scoped companion to internal/trace:
// where trace attributes one build's time to phases per processor,
// reqtrace attributes one *request*'s time to the stations it passed
// through on the serving path — HTTP read, admission-queue wait, the
// build itself (with the core phase breakdown bridged in), response
// write. Every partreed request gets a request ID (the W3C traceparent
// trace-id when the client sent one, minted otherwise), a *Req handle
// travels in the context.Context from the HTTP handler through
// internal/engine and internal/runner down to the core build, and each
// layer stamps its span onto the handle as it goes.
//
// The design rules mirror internal/trace:
//
//   - Disabled is a nil-handle no-op. Every method on *Req is safe on a
//     nil receiver and returns immediately, so a daemon running with
//     the flight recorder off pays one pointer comparison per hook
//     (guarded by the <2% regression gate in overhead_test.go).
//   - Completed requests land in a fixed-capacity lock-free ring (the
//     flight recorder, recorder.go) served over /debug/requests; the
//     hot path is an atomic pointer store, never a lock.
//   - Rendering is byte-deterministic for deterministic inputs: span
//     offsets are relative to the request start, fields are structs
//     (fixed order), and collections sort by sequence number.
package reqtrace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"partree/internal/trace"
)

// maxSpans bounds one request's span list; a streaming session that
// steps forever must not grow its flight-recorder entry without bound.
// Past it, spans are dropped (counted) while the queue/build/phase
// accumulators stay exact — the same wrap-but-keep-aggregates contract
// as trace's ring buffers.
const maxSpans = 512

// Span is one named interval on a request's timeline. StartNs is
// relative to the request's start, so rendered timelines are stable
// across runs that do the same work.
type Span struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// Phases is the core build-phase breakdown accumulated over every build
// the request performed (one for /v1/build, one per step for a
// session). It is fed from core.Metrics.Timing, which every build
// maintains whether or not per-processor tracing ran.
type Phases struct {
	BoundsNs  int64 `json:"bounds_ns"`
	InsertNs  int64 `json:"insert_ns"`
	MomentsNs int64 `json:"moments_ns"`
}

// Req is one request's span context. Handlers create it via
// Recorder.Start, thread it with NewContext, and lower layers recall it
// with FromContext. A nil *Req is the disabled mode: every method is a
// no-op.
//
// One Req is owned by one request's serving path; spans may be stamped
// from the goroutines that path runs through (handler, runner worker),
// serialized by mu. Readers (the /debug handlers) lock the same mutex,
// but only for requests already published to the flight recorder.
type Req struct {
	rec   *Recorder
	id    string
	route string
	start time.Time
	seq   uint64 // assigned when the recorder publishes the finished Req

	mu      sync.Mutex
	spans   []Span
	dropped int64
	queueNs int64 // sum of "queue" spans: admission + slot waits
	buildNs int64 // sum of "build" spans: wall time inside builders
	phases  Phases
	bridged *trace.Summary // last traced build's per-proc summary
	status  int
	bytes   int64
	durNs   int64 // set by Finish; 0 while in flight
}

// ID returns the request ID ("" on nil).
func (r *Req) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// Route returns the route label ("" on nil).
func (r *Req) Route() string {
	if r == nil {
		return ""
	}
	return r.route
}

// SpanSince stamps a span from start to now. The zero start time is
// ignored, so callers can pair it with a guarded time.Now() capture:
//
//	var t0 time.Time
//	if rq != nil { t0 = time.Now() }
//	...wait...
//	rq.SpanSince("queue", t0)
func (r *Req) SpanSince(name string, start time.Time) {
	if r == nil || start.IsZero() {
		return
	}
	r.SpanAt(name, start, time.Now())
}

// SpanAt stamps a span covering [start, end). Spans named "queue" and
// "build" additionally accumulate into the queue-wait and build totals
// Breakdown reports, whether or not the span list is full.
func (r *Req) SpanAt(name string, start, end time.Time) {
	if r == nil || start.IsZero() {
		return
	}
	dur := end.Sub(start).Nanoseconds()
	if dur < 0 {
		dur = 0
	}
	r.mu.Lock()
	switch name {
	case "queue":
		r.queueNs += dur
	case "build":
		r.buildNs += dur
	}
	if len(r.spans) < maxSpans {
		r.spans = append(r.spans, Span{Name: name, StartNs: start.Sub(r.start).Nanoseconds(), DurNs: dur})
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// AddBuildPhases accumulates one build's core phase breakdown
// (core.Metrics.Timing) into the request.
func (r *Req) AddBuildPhases(bounds, insert, moments time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.phases.BoundsNs += bounds.Nanoseconds()
	r.phases.InsertNs += insert.Nanoseconds()
	r.phases.MomentsNs += moments.Nanoseconds()
	r.mu.Unlock()
}

// BridgeTrace attaches a per-processor phase summary from
// internal/trace to the request (latest traced build wins — for a
// session, the last step's). nil summaries are ignored, so callers pass
// core.Metrics.Trace unconditionally.
func (r *Req) BridgeTrace(s *trace.Summary) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.bridged = s
	r.mu.Unlock()
}

// Breakdown reports the request's station totals so far: admission
// queue wait, tree-build time (bounds + insert phases), moments time,
// and total elapsed (final duration once finished, time since start
// while in flight).
func (r *Req) Breakdown() (queue, build, moments, total time.Duration) {
	if r == nil {
		return 0, 0, 0, 0
	}
	r.mu.Lock()
	queue = time.Duration(r.queueNs)
	build = time.Duration(r.phases.BoundsNs + r.phases.InsertNs)
	moments = time.Duration(r.phases.MomentsNs)
	if r.durNs > 0 {
		total = time.Duration(r.durNs)
	} else {
		total = time.Since(r.start)
	}
	r.mu.Unlock()
	return queue, build, moments, total
}

// Spans snapshots the stamped spans (for tests and rendering).
func (r *Req) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	return out
}

// Phases snapshots the accumulated build-phase breakdown.
func (r *Req) Phases() Phases {
	if r == nil {
		return Phases{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phases
}

// TraceSummary returns the bridged per-processor summary (nil when no
// traced build ran under this request).
func (r *Req) TraceSummary() *trace.Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bridged
}

// Seq returns the flight-recorder sequence number (0 until finished).
func (r *Req) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq
}

// Duration returns the final duration (0 while in flight).
func (r *Req) Duration() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.durNs)
}

// Finish completes the request with its HTTP outcome and publishes it
// to the flight recorder. Exactly once per Req; later spans are lost.
func (r *Req) Finish(status int, bytes int64) {
	if r == nil {
		return
	}
	r.FinishAt(status, bytes, time.Now())
}

// FinishAt is Finish with an explicit end time (deterministic tests).
func (r *Req) FinishAt(status int, bytes int64, end time.Time) {
	if r == nil {
		return
	}
	dur := end.Sub(r.start)
	if dur < 0 {
		dur = 0
	}
	r.mu.Lock()
	r.status = status
	r.bytes = bytes
	r.durNs = dur.Nanoseconds()
	queue := time.Duration(r.queueNs)
	r.mu.Unlock()
	if r.rec != nil {
		r.rec.record(r, dur, queue)
	}
}

// ctxKey is the context key for the request's *Req.
type ctxKey struct{}

// NewContext returns ctx carrying rq. A nil rq returns ctx unchanged,
// so disabled mode threads no value at all.
func NewContext(ctx context.Context, rq *Req) context.Context {
	if rq == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, rq)
}

// FromContext recalls the request handle, nil when none is present.
// This is the per-hook cost of disabled mode: one context lookup that
// misses immediately (partreed threads no value when the recorder is
// off).
func FromContext(ctx context.Context) *Req {
	rq, _ := ctx.Value(ctxKey{}).(*Req)
	return rq
}

// ParseTraceparent extracts the trace-id from a W3C traceparent header
// value (version-format "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex
// flags>"). It reports false for malformed values and the all-zero
// trace-id, which the spec reserves as invalid.
func ParseTraceparent(v string) (string, bool) {
	// 2 + 1 + 32 + 1 + 16 + 1 + 2
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", false
	}
	if v[0] != '0' || v[1] != '0' { // only version 00 is defined
		return "", false
	}
	tid := v[3:35]
	zero := true
	for i := 0; i < len(tid); i++ {
		c := tid[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", false
		}
		if c != '0' {
			zero = false
		}
	}
	if zero {
		return "", false
	}
	return tid, true
}

// MintID generates a fresh 32-hex-digit request ID (the shape of a
// traceparent trace-id, so minted and inherited IDs are uniform).
func MintID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// recognizable constant rather than crash the serving path.
		return "00000000000000000000000000000bad"
	}
	return hex.EncodeToString(b[:])
}
