// Command nbody runs the native (real goroutines, real locks) Barnes-Hut
// galaxy simulation with a selectable tree-building algorithm and prints
// per-step phase times — the paper's measurement, on your machine.
//
// Usage:
//
//	nbody [-n 16384] [-steps 5] [-p 8] [-alg SPACE] [-model plummer]
//	      [-theta 1.0] [-leafcap 8] [-dt 0.025] [-timeout 0] [-check] [-json]
//	      [-verify] [-energy] [-quad] [-fmm] [-load f] [-save f]
//	      [-http :9090] [-v info]
//
// With -json the run goes through the shared internal/runner engine and
// emits one Result record (partial, with an error field, on timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"partree/internal/core"
	"partree/internal/nbody"
	"partree/internal/phys"
	"partree/internal/runner"
	"partree/internal/trace"
)

func main() {
	sf := runner.RegisterSpecFlags(flag.CommandLine, runner.Spec{
		Backend: runner.Native,
		Alg:     core.SPACE,
		Bodies:  16384,
		Procs:   runtime.GOMAXPROCS(0),
		Steps:   5,
		Seed:    1,
	})
	var (
		verify = flag.Bool("verify", false, "check tree invariants every step")
		energy = flag.Bool("energy", false, "report energy drift (O(N²), slow for large N)")
		quad   = flag.Bool("quad", false, "use quadrupole cell expansions (better accuracy per θ)")
		useFMM = flag.Bool("fmm", false, "use the cell-cell fast summation solver instead of Barnes-Hut traversal")
		load   = flag.String("load", "", "restart from a snapshot file instead of generating bodies")
		save   = flag.String("save", "", "write a snapshot file after the last step")
	)
	obsFlags := runner.RegisterObsFlags(flag.CommandLine)
	flag.Parse()
	if _, err := obsFlags.SetupLogging("nbody"); err != nil {
		fmt.Fprintf(os.Stderr, "nbody: %v\n", err)
		os.Exit(2)
	}

	spec, err := sf.Spec()
	if err != nil {
		slog.Error("bad spec flags", "err", err)
		os.Exit(2)
	}
	specCtx := []any{"alg", spec.Alg.String(), "n", spec.Bodies, "p", spec.Procs, "seed", spec.Seed}

	if sf.JSON() {
		for name, set := range map[string]bool{
			"-verify": *verify, "-energy": *energy, "-quad": *quad,
			"-fmm": *useFMM, "-load": *load != "", "-save": *save != "",
		} {
			if set {
				slog.Error("flag is not supported with -json (the spec grid covers the standard path)", "flag", name)
				os.Exit(2)
			}
		}
		r := runner.New(1)
		srv, err := obsFlags.Serve("nbody", r)
		if err != nil {
			slog.Error("starting obs server", "err", err)
			os.Exit(1)
		}
		if srv != nil {
			defer srv.Close()
		}
		res := r.Run(context.Background(), spec)
		if err := runner.WriteJSON(os.Stdout, res); err != nil {
			slog.Error("writing JSON result", "err", err)
			os.Exit(1)
		}
		if res.Failed() {
			os.Exit(1)
		}
		return
	}

	// The interactive path runs the simulation directly (no runner), but
	// the build totals and runtime gauges are process-global, so -http
	// still exposes live per-algorithm build metrics and profiles.
	srv, err := obsFlags.Serve("nbody", nil)
	if err != nil {
		slog.Error("starting obs server", "err", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}

	m, _ := phys.ParseModel(spec.Model)
	opts := nbody.DefaultOptions()
	opts.Model = m
	opts.N = spec.Bodies
	opts.P = spec.Procs
	opts.Alg = spec.Alg
	opts.LeafCap = spec.LeafCap
	opts.Dt = spec.Dt
	opts.Seed = spec.Seed
	opts.Verify = *verify
	opts.Check = spec.Check
	opts.Force.Theta = spec.Theta
	opts.Force.Quadrupole = *quad
	opts.FMM = *useFMM
	var rec *trace.Recorder
	if spec.Trace != "" {
		// Every build resets the recorder, so the file written at exit
		// covers the last completed step's tree build.
		rec = trace.New(spec.Procs)
		rec.SetEnabled(true)
		opts.Trace = rec
	}

	var sim *nbody.Simulation
	if *load != "" {
		bodies, err := phys.LoadSnapshot(*load)
		if err != nil {
			slog.Error("loading snapshot", "path", *load, "err", err)
			os.Exit(1)
		}
		opts.N = bodies.N()
		sim = nbody.NewFromBodies(opts, bodies)
		fmt.Printf("nbody: restarted %d bodies from %s\n", bodies.N(), *load)
	} else {
		sim = nbody.New(opts)
	}
	fmt.Printf("nbody: %d bodies (%s), %d procs, builder %v, θ=%.2f, k=%d\n",
		opts.N, m, opts.P, spec.Alg, spec.Theta, spec.LeafCap)

	var e0 float64
	if *energy {
		_, _, e0 = sim.Energy()
	}
	deadline := time.Time{}
	if spec.Timeout > 0 {
		deadline = time.Now().Add(spec.Timeout)
	}
	for i := 0; i < spec.Steps; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			slog.Warn("timeout", append(specCtx, "steps_done", i, "steps", spec.Steps)...)
			break
		}
		st := sim.Step()
		fmt.Printf("%v  [%v]\n", st, st.Build)
		if st.CheckErr != nil {
			slog.Error("verification failed", append(specCtx, "step", i, "err", st.CheckErr)...)
			os.Exit(1)
		}
	}
	if *energy {
		_, _, e1 := sim.Energy()
		fmt.Printf("energy: %.6f -> %.6f (drift %.3f%%)\n", e0, e1, 100*(e1-e0)/e0)
	}
	if rec != nil {
		if err := rec.WriteFile(spec.Trace); err != nil {
			slog.Error("writing trace", append(specCtx, "path", spec.Trace, "err", err)...)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", spec.Trace)
	}
	if *save != "" {
		if err := sim.Bodies.SaveSnapshot(*save); err != nil {
			slog.Error("writing snapshot", "path", *save, "err", err)
			os.Exit(1)
		}
		fmt.Printf("snapshot written to %s\n", *save)
	}
}
