package octree

import "partree/internal/vec"

// Visitor receives each live node in pre-order with its depth. Returning
// false prunes the subtree (children are not visited).
type Visitor func(r Ref, depth int) bool

// Walk visits every live node reachable from the root in deterministic
// pre-order (children in octant order). It reads child slots atomically, so
// walking a tree that another goroutine is still building is memory-safe,
// though the snapshot is then unspecified; callers normally walk quiescent
// trees.
func Walk(t *Tree, v Visitor) {
	if t.Root.IsNil() {
		return
	}
	walkRec(t.Store, t.Root, 0, v)
}

func walkRec(s *Store, r Ref, depth int, v Visitor) {
	if !v(r, depth) || r.IsLeaf() {
		return
	}
	c := s.Cell(r)
	for o := vec.Octant(0); o < vec.NOctants; o++ {
		if ch := c.Child(o); !ch.IsNil() {
			walkRec(s, ch, depth+1, v)
		}
	}
}

// LiveLeaves returns the refs of every leaf reachable from the root, in
// deterministic pre-order.
func LiveLeaves(t *Tree) []Ref {
	var out []Ref
	Walk(t, func(r Ref, _ int) bool {
		if r.IsLeaf() {
			out = append(out, r)
		}
		return true
	})
	return out
}

// CountNodes returns the number of live cells and leaves.
func CountNodes(t *Tree) (cells, leaves int) {
	Walk(t, func(r Ref, _ int) bool {
		if r.IsLeaf() {
			leaves++
		} else {
			cells++
		}
		return true
	})
	return
}
