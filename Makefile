GO ?= go

.PHONY: all build vet test race smoke check repro

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the native builders, the runner's
# worker pool / result cache, and the differential verifier's algorithm
# cross-product.
race:
	$(GO) test -race ./internal/core ./internal/runner ./internal/verify

# smoke builds real trees with every algorithm and verifies each against
# the sequential reference (-check), end to end through cmd/treebench.
smoke:
	$(GO) run ./cmd/treebench -n 4096 -p 1,2 -reps 1 -check

# check is the tier-1+ gate: everything must pass before a PR lands.
check: build vet test race smoke

# repro regenerates the paper's tables and figures into ./results.
repro:
	$(GO) run ./cmd/paperrepro -out results
