package vec

import "fmt"

// Cube is an axis-aligned cube described by its center and edge length.
// Barnes-Hut octrees subdivide cubes, never general boxes, so a center plus
// a single size is the exact representation: it halves without rounding
// drift and an octant index recovers a child exactly.
type Cube struct {
	Center V3
	Size   float64 // full edge length
}

// Octant identifies one of the eight children of a cube. Bit 0 selects the
// +X half, bit 1 the +Y half, bit 2 the +Z half.
type Octant uint8

// NOctants is the number of children of an internal octree cell.
const NOctants = 8

// OctantOf returns the octant of c that contains p. Points exactly on a
// splitting plane go to the positive side, so every point in the cube maps
// to exactly one octant.
func (c Cube) OctantOf(p V3) Octant {
	var o Octant
	if p.X >= c.Center.X {
		o |= 1
	}
	if p.Y >= c.Center.Y {
		o |= 2
	}
	if p.Z >= c.Center.Z {
		o |= 4
	}
	return o
}

// Child returns the sub-cube for octant o.
func (c Cube) Child(o Octant) Cube {
	q := c.Size / 4
	ctr := c.Center
	if o&1 != 0 {
		ctr.X += q
	} else {
		ctr.X -= q
	}
	if o&2 != 0 {
		ctr.Y += q
	} else {
		ctr.Y -= q
	}
	if o&4 != 0 {
		ctr.Z += q
	} else {
		ctr.Z -= q
	}
	return Cube{Center: ctr, Size: c.Size / 2}
}

// Contains reports whether p lies inside c under the octree's half-open
// convention: the low faces are inclusive, the high faces exclusive. This
// matches OctantOf, so Contains(p) implies Child(OctantOf(p)).Contains(p).
func (c Cube) Contains(p V3) bool {
	h := c.Size / 2
	return p.X >= c.Center.X-h && p.X < c.Center.X+h &&
		p.Y >= c.Center.Y-h && p.Y < c.Center.Y+h &&
		p.Z >= c.Center.Z-h && p.Z < c.Center.Z+h
}

// Min returns the low corner of the cube.
func (c Cube) Min() V3 {
	h := c.Size / 2
	return V3{c.Center.X - h, c.Center.Y - h, c.Center.Z - h}
}

// Max returns the high corner of the cube.
func (c Cube) Max() V3 {
	h := c.Size / 2
	return V3{c.Center.X + h, c.Center.Y + h, c.Center.Z + h}
}

// String renders the cube for diagnostics.
func (c Cube) String() string {
	return fmt.Sprintf("cube{center=%v size=%g}", c.Center, c.Size)
}

// Morton returns the Z-order (Morton) key of p within the cube, using 16
// bits per axis. Sorting spatial regions by their Morton key recovers the
// octree's depth-first order, so contiguous key ranges are spatially
// compact — which is how SPACE keeps its subspace-to-processor assignment
// coherent (paper Figure 5 groups neighbouring subspaces per processor).
func (c Cube) Morton(p V3) uint64 {
	const bits = 16
	scale := float64(uint64(1)<<bits) / c.Size
	min := c.Min()
	qx := quantize((p.X - min.X) * scale)
	qy := quantize((p.Y - min.Y) * scale)
	qz := quantize((p.Z - min.Z) * scale)
	var key uint64
	for i := 0; i < bits; i++ {
		key |= (qx>>i&1)<<(3*i) | (qy>>i&1)<<(3*i+1) | (qz>>i&1)<<(3*i+2)
	}
	return key
}

func quantize(x float64) uint64 {
	if x < 0 {
		return 0
	}
	if x > 65535 {
		return 65535
	}
	return uint64(x)
}

// BoundingCube returns the smallest cube, expanded by the given relative
// margin, that contains every position produced by the iterator. The cube
// is centered on the midpoint of the positions' bounding box. A margin of
// e.g. 1e-3 keeps extreme bodies strictly inside the half-open root so the
// builders never have to grow the root mid-build (the SPLASH codes size the
// root once per step the same way).
func BoundingCube(n int, pos func(i int) V3, margin float64) Cube {
	if n == 0 {
		return Cube{Size: 1}
	}
	lo, hi := pos(0), pos(0)
	for i := 1; i < n; i++ {
		p := pos(i)
		lo = lo.Min(p)
		hi = hi.Max(p)
	}
	size := hi.Sub(lo).MaxComponent() * (1 + margin)
	if size <= 0 {
		size = 1 // all bodies coincide; any positive size works
	}
	return Cube{Center: lo.Add(hi).Scale(0.5), Size: size}
}
