package force

import (
	"math"
	"testing"

	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/vec"
)

func setup(t *testing.T, n int, seed int64) (*phys.Bodies, *octree.Tree, octree.BodyData) {
	t.Helper()
	b := phys.Generate(phys.ModelPlummer, n, seed)
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	octree.ComputeMomentsSerial(tr, d)
	return b, tr, d
}

func relErr(a, b vec.V3) float64 {
	return a.Sub(b).Len() / (b.Len() + 1e-12)
}

func TestAccelMatchesDirectSmallTheta(t *testing.T) {
	// θ→0 forces the traversal to open every cell: Barnes-Hut must
	// reduce to the direct sum exactly (up to summation order).
	b, tr, d := setup(t, 300, 5)
	p := Params{Theta: 1e-9, Eps: 0.05, G: 1}
	for i := 0; i < b.N(); i += 17 {
		bh := Accel(tr, d, int32(i), p).Acc
		ex := Direct(d, int32(i), p)
		if e := relErr(bh, ex); e > 1e-9 {
			t.Fatalf("body %d: θ≈0 error %g", i, e)
		}
	}
}

func TestAccelAccuracyModerateTheta(t *testing.T) {
	b, tr, d := setup(t, 2000, 7)
	p := Params{Theta: 0.8, Eps: 0.05, G: 1}
	var worst float64
	for i := 0; i < b.N(); i += 13 {
		bh := Accel(tr, d, int32(i), p).Acc
		ex := Direct(d, int32(i), p)
		if e := relErr(bh, ex); e > worst {
			worst = e
		}
	}
	// Standard BH accuracy at θ=0.8 is ~1%; allow slack for worst case.
	if worst > 0.12 {
		t.Fatalf("worst relative error %g too large for θ=0.8", worst)
	}
}

func TestAccelFewerInteractionsLargerTheta(t *testing.T) {
	_, tr, d := setup(t, 4000, 3)
	small := Accel(tr, d, 0, Params{Theta: 0.3, Eps: 0.05, G: 1})
	large := Accel(tr, d, 0, Params{Theta: 1.2, Eps: 0.05, G: 1})
	if large.Interactions >= small.Interactions {
		t.Fatalf("θ=1.2 interactions %d not below θ=0.3's %d", large.Interactions, small.Interactions)
	}
	if large.Interactions >= 4000 {
		t.Fatalf("θ=1.2 did not save over direct: %d", large.Interactions)
	}
}

func TestAccelExcludesSelf(t *testing.T) {
	// A lone pair: each body must feel only the other.
	pos := []vec.V3{{X: 0}, {X: 1}}
	mass := []float64{1, 1}
	tr := octree.BuildSerial(pos, 8)
	d := octree.BodyData{Pos: pos, Mass: mass}
	octree.ComputeMomentsSerial(tr, d)
	p := Params{Theta: 0.5, Eps: 0, G: 1}
	a0 := Accel(tr, d, 0, p)
	if a0.Interactions != 1 {
		t.Fatalf("interactions = %d, want 1", a0.Interactions)
	}
	if math.Abs(a0.Acc.X-1) > 1e-12 || a0.Acc.Y != 0 {
		t.Fatalf("acc = %v, want (1,0,0)", a0.Acc)
	}
}

func TestNewtonThirdLawSymmetry(t *testing.T) {
	// Direct accelerations weighted by mass must cancel pairwise.
	b, _, d := setup(t, 50, 9)
	p := Params{Theta: 1, Eps: 0.01, G: 1}
	var net vec.V3
	for i := 0; i < b.N(); i++ {
		net = net.MulAdd(b.Mass[i], Direct(d, int32(i), p))
	}
	if net.Len() > 1e-10 {
		t.Fatalf("net direct force %v not zero", net)
	}
}

func TestComputeAllMatchesSequential(t *testing.T) {
	b, tr, d := setup(t, 1500, 11)
	p := DefaultParams()
	want := make([]vec.V3, b.N())
	for i := range want {
		want[i] = Accel(tr, d, int32(i), p).Acc
	}
	for _, nw := range []int{1, 3, 8} {
		b2 := b.Clone()
		st := ComputeAll(tr, b2, core.EvenAssign(b.N(), nw), p)
		for i := range want {
			if b2.Acc[i] != want[i] {
				t.Fatalf("nw=%d: acc[%d] = %v, want %v", nw, i, b2.Acc[i], want[i])
			}
			if b2.Cost[i] <= 0 {
				t.Fatalf("nw=%d: cost[%d] = %d", nw, i, b2.Cost[i])
			}
		}
		if st.Interactions <= 0 || st.NodesVisited <= 0 {
			t.Fatalf("nw=%d: empty stats %+v", nw, st)
		}
	}
}

func TestAccelSingleBody(t *testing.T) {
	pos := []vec.V3{{X: 0.5}}
	mass := []float64{1}
	tr := octree.BuildSerial(pos, 8)
	d := octree.BodyData{Pos: pos, Mass: mass}
	octree.ComputeMomentsSerial(tr, d)
	r := Accel(tr, d, 0, DefaultParams())
	if r.Acc != (vec.V3{}) || r.Interactions != 0 {
		t.Fatalf("lone body produced %+v", r)
	}
}

func TestCostsReflectDensity(t *testing.T) {
	// Bodies in the dense core of a Plummer sphere do more interactions
	// than bodies on the fringe.
	b, tr, d := setup(t, 8000, 13)
	p := DefaultParams()
	com := b.CenterOfMass()
	var coreSum, fringeSum, coreN, fringeN int64
	for i := 0; i < b.N(); i += 7 {
		r := Accel(tr, d, int32(i), p)
		if b.Pos[i].Dist(com) < 0.5 {
			coreSum += r.Interactions
			coreN++
		} else if b.Pos[i].Dist(com) > 3 {
			fringeSum += r.Interactions
			fringeN++
		}
	}
	if coreN == 0 || fringeN == 0 {
		t.Skip("sample missed a region")
	}
	if coreSum/coreN <= fringeSum/fringeN {
		t.Fatalf("core cost %d not above fringe cost %d", coreSum/coreN, fringeSum/fringeN)
	}
}
