package octree

import (
	"sync"
	"sync/atomic"

	"partree/internal/vec"
)

// BodyData bundles the per-body slices the moments passes read. Cost may
// be nil, in which case each body counts 1 unit (first time step).
type BodyData struct {
	Pos  []vec.V3
	Mass []float64
	Cost []int64
}

// CostOf returns body b's force-calculation cost (1 when no costs are set).
func (d BodyData) CostOf(b int32) int64 {
	if d.Cost == nil {
		return 1
	}
	return d.Cost[b]
}

// ComputeMomentsSerial fills Mass/COM/NBody/Cost bottom-up over the whole
// tree with a single post-order traversal. Deterministic: children are
// combined in octant order, leaf bodies in stored order.
func ComputeMomentsSerial(t *Tree, d BodyData) {
	if t.Root.IsNil() {
		return
	}
	momentsRec(t.Store, t.Root, d)
}

func momentsRec(s *Store, r Ref, d BodyData) (mass float64, com vec.V3, n int32, cost int64) {
	if r.IsLeaf() {
		l := s.Leaf(r)
		leafMoments(l, d)
		return l.Mass, l.COM, int32(len(l.Bodies)), l.Cost
	}
	c := s.Cell(r)
	var wsum vec.V3
	for o := vec.Octant(0); o < vec.NOctants; o++ {
		ch := c.Child(o)
		if ch.IsNil() {
			continue
		}
		m, cm, cn, cc := momentsRec(s, ch, d)
		mass += m
		wsum = wsum.MulAdd(m, cm)
		n += cn
		cost += cc
	}
	c.Mass, c.NBody, c.Cost = mass, n, cost
	if mass > 0 {
		c.COM = wsum.Scale(1 / mass)
	} else {
		c.COM = c.Cube.Center
	}
	cellQuad(s, c)
	return mass, c.COM, n, cost
}

// cellQuad fills c.Quad from its children's completed moments by
// parallel-axis transport to c.COM.
func cellQuad(s *Store, c *Cell) {
	c.Quad = Quadrupole{}
	for o := vec.Octant(0); o < vec.NOctants; o++ {
		ch := c.Child(o)
		if ch.IsNil() {
			continue
		}
		if ch.IsLeaf() {
			l := s.Leaf(ch)
			c.Quad.AddShifted(l.Mass, l.Quad, l.COM.Sub(c.COM))
		} else {
			cc := s.Cell(ch)
			c.Quad.AddShifted(cc.Mass, cc.Quad, cc.COM.Sub(c.COM))
		}
	}
}

func leafMoments(l *Leaf, d BodyData) {
	var mass float64
	var wsum vec.V3
	var cost int64
	for _, b := range l.Bodies {
		m := d.Mass[b]
		mass += m
		wsum = wsum.MulAdd(m, d.Pos[b])
		cost += d.CostOf(b)
	}
	l.Mass, l.Cost = mass, cost
	if mass > 0 {
		l.COM = wsum.Scale(1 / mass)
	} else {
		l.COM = l.Cube.Center
	}
	l.Quad = Quadrupole{}
	for _, b := range l.Bodies {
		l.Quad.AddPoint(d.Mass[b], d.Pos[b].Sub(l.COM))
	}
}

// isLive reports whether node r is currently linked into tree t. Arenas
// accumulate garbage nodes (CAS losers from concurrent builds, leaves
// retired by subdivision or by UPDATE); a node is live iff some child
// slot of its parent still points at it, or it is the root. Garbage is
// never pointed to, so one level suffices. The slot scan must be by link,
// not by geometry (see Cell.SlotOf).
func isLive(t *Tree, r Ref, parent Ref) bool {
	if r == t.Root {
		return true
	}
	if parent.IsNil() || !parent.IsCell() {
		return false
	}
	_, ok := t.Store.Cell(parent).SlotOf(r)
	return ok
}

// ComputeMomentsParallel computes the same moments with nWorkers
// goroutines using the paper's structure: each worker handles the leaves
// its processor created (its arena, or its Owner-tagged nodes in a shared
// arena), then contributions propagate upward; the worker that completes a
// cell's last child computes that cell. Two phases separated by a barrier:
// pending-counter initialization, then upward propagation.
func ComputeMomentsParallel(t *Tree, d BodyData, nWorkers int) {
	if t.Root.IsNil() {
		return
	}
	s := t.Store
	if nWorkers < 1 {
		nWorkers = 1
	}

	// Phase 1: initialize pending counts on live cells.
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			forOwnedCells(s, w, nWorkers, func(r Ref, c *Cell) {
				if !isLive(t, r, c.Parent) {
					c.pending = -1
					return
				}
				var n int32
				for o := vec.Octant(0); o < vec.NOctants; o++ {
					if !c.Child(o).IsNil() {
						n++
					}
				}
				if n == 0 {
					c.pending = pendingEmptyCell
				} else {
					c.pending = n
				}
			})
		}(w)
	}
	wg.Wait()

	// Phase 2: leaves first, then propagate upward. Live cells that have
	// no children at all (UPDATE can empty a cell by reclaiming its last
	// leaf) are seeded here too, or their ancestors would never complete.
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			forOwnedLeaves(s, w, nWorkers, func(r Ref, l *Leaf) {
				if l.Retired || !isLive(t, r, l.Parent) {
					return
				}
				leafMoments(l, d)
				propagateUp(s, l.Parent, d)
			})
			forOwnedCells(s, w, nWorkers, func(r Ref, c *Cell) {
				if atomic.LoadInt32(&c.pending) != pendingEmptyCell {
					return
				}
				combineChildren(s, c)
				propagateUp(s, c.Parent, d)
			})
		}(w)
	}
	wg.Wait()

	// An empty root (no bodies at all) has pending 0 and is never
	// reached by propagation; give it well-defined moments.
	if t.Root.IsCell() {
		rc := s.Cell(t.Root)
		if rc.NBody == 0 && rc.Mass == 0 {
			rc.COM = rc.Cube.Center
		}
	}
}

// pendingEmptyCell marks a live cell with zero children; garbage cells get
// -1. Both are disjoint from real pending counts (≥ 1).
const pendingEmptyCell int32 = -2

// propagateUp finishes ancestors whose last child just completed.
//
// The one-level liveness test misjudges nodes inside discarded PARTREE
// local trees: a garbage cell still points at its garbage children, so
// those children look "live" and propagate here. The CAS guard below
// stops such propagation at the first non-positive pending count (garbage
// cells hold -1, empty live cells -2) instead of corrupting the
// sentinels; live ancestors always hold counts ≥ 1 until they complete.
func propagateUp(s *Store, r Ref, d BodyData) {
	for !r.IsNil() {
		c := s.Cell(r)
		for {
			cur := atomic.LoadInt32(&c.pending)
			if cur <= 0 {
				return // garbage parent, or stray extra signal: stop
			}
			if atomic.CompareAndSwapInt32(&c.pending, cur, cur-1) {
				if cur != 1 {
					return
				}
				break
			}
		}
		combineChildren(s, c)
		r = c.Parent
	}
}

// combineChildren fills c's moments from its (completed) children in
// octant order, so the floating-point result is independent of which
// worker performs the combination.
func combineChildren(s *Store, c *Cell) {
	var mass float64
	var wsum vec.V3
	var n int32
	var cost int64
	for o := vec.Octant(0); o < vec.NOctants; o++ {
		ch := c.Child(o)
		if ch.IsNil() {
			continue
		}
		if ch.IsLeaf() {
			l := s.Leaf(ch)
			mass += l.Mass
			wsum = wsum.MulAdd(l.Mass, l.COM)
			n += int32(len(l.Bodies))
			cost += l.Cost
		} else {
			cc := s.Cell(ch)
			mass += cc.Mass
			wsum = wsum.MulAdd(cc.Mass, cc.COM)
			n += cc.NBody
			cost += cc.Cost
		}
	}
	c.Mass, c.NBody, c.Cost = mass, n, cost
	if mass > 0 {
		c.COM = wsum.Scale(1 / mass)
	} else {
		c.COM = c.Cube.Center
	}
	cellQuad(s, c)
}

// forOwnedCells iterates the cells worker w of nWorkers is responsible
// for: allocation slots are striped across workers uniformly over every
// arena, which both balances load and touches each node exactly once.
func forOwnedCells(s *Store, w, nWorkers int, fn func(Ref, *Cell)) {
	for a := range s.arenas {
		n := s.CellsIn(a)
		for i := w; i < n; i += nWorkers {
			fn(CellRef(a, i), s.Cell(CellRef(a, i)))
		}
	}
}

func forOwnedLeaves(s *Store, w, nWorkers int, fn func(Ref, *Leaf)) {
	for a := range s.arenas {
		n := s.LeavesIn(a)
		for i := w; i < n; i += nWorkers {
			fn(LeafRef(a, i), s.Leaf(LeafRef(a, i)))
		}
	}
}
