// Command simbench runs one whole-application configuration on a simulated
// platform and prints the detailed breakdown: per-phase simulated time,
// speedup over the platform's sequential baseline, per-processor lock
// counts, and coherence-protocol counters.
//
// Usage:
//
//	simbench [-platform typhoon-hlrc] [-alg SPACE] [-n 16384] [-p 16] [-steps 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/phys"
	"partree/internal/simalg"
	"partree/internal/stats"
)

func platformByName(name string, p int) (memsim.Platform, bool) {
	switch name {
	case "challenge":
		return memsim.Challenge(), true
	case "origin":
		return memsim.Origin2000(p), true
	case "paragon":
		return memsim.Paragon(), true
	case "typhoon-hlrc":
		return memsim.TyphoonHLRC(), true
	case "typhoon-sc":
		return memsim.TyphoonSC(), true
	}
	return memsim.Platform{}, false
}

func main() {
	var (
		platName = flag.String("platform", "typhoon-hlrc", "challenge, origin, paragon, typhoon-hlrc, typhoon-sc")
		algName  = flag.String("alg", "SPACE", "ORIG, LOCAL, UPDATE, PARTREE, SPACE")
		n        = flag.Int("n", 16384, "number of bodies")
		p        = flag.Int("p", 16, "simulated processors")
		steps    = flag.Int("steps", 2, "measured time steps")
		leafCap  = flag.Int("leafcap", 8, "bodies per leaf (k)")
		seed     = flag.Int64("seed", 1998, "random seed")
		noSeq    = flag.Bool("noseq", false, "skip the sequential baseline (faster)")
	)
	flag.Parse()

	pl, ok := platformByName(*platName, *p)
	if !ok {
		fmt.Fprintf(os.Stderr, "simbench: unknown platform %q\n", *platName)
		os.Exit(2)
	}
	alg, ok := core.ParseAlgorithm(*algName)
	if !ok {
		fmt.Fprintf(os.Stderr, "simbench: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	bodies := phys.Generate(phys.ModelPlummer, *n, *seed)
	cfg := simalg.Config{Platform: pl, P: *p, LeafCap: *leafCap, MeasuredSteps: *steps}
	o := simalg.Run(alg, bodies, cfg)

	fmt.Printf("%v on %s: %d bodies, %d processors, %d measured steps\n\n",
		alg, pl.Name, *n, *p, *steps)
	t := stats.NewTable("phase", "simulated time", "share")
	total := o.TotalNs()
	for _, row := range []struct {
		name string
		ns   float64
	}{
		{"tree build", o.TreeNs},
		{"partition", o.PartNs},
		{"force calc", o.ForceNs},
		{"update", o.UpdateNs},
		{"total", total},
	} {
		t.Row(row.name, stats.Seconds(row.ns), fmt.Sprintf("%.1f%%", 100*row.ns/total))
	}
	t.Write(os.Stdout)

	if !*noSeq {
		seq := simalg.Run(core.LOCAL, bodies, simalg.Config{
			Platform: pl, P: 1, LeafCap: *leafCap, MeasuredSteps: *steps, Sequential: true,
		})
		fmt.Printf("\nsequential baseline: %s  ->  speedup %.2fx\n",
			stats.Seconds(seq.TotalNs()), seq.TotalNs()/total)
	}

	locks := stats.Summarize(o.LocksPerProc)
	fmt.Printf("\ntree-build locks/processor: mean %.0f [%.0f..%.0f], total %d\n",
		locks.Mean, locks.Min, locks.Max, o.TotalLocks())
	fmt.Printf("mean barrier time/processor: %s\n", stats.Seconds(o.MeanBarrierNs()))
	pr := o.Protocol
	fmt.Printf("protocol: accesses=%d hits=%d cold=%d coher=%d local=%d remote=%d dirty=%d inval=%d\n",
		pr.Accesses, pr.Hits, pr.ColdMisses, pr.CoherenceMiss, pr.LocalMisses, pr.RemoteMisses, pr.DirtyMisses, pr.Invalidations)
	fmt.Printf("          faults=%d twins=%d diffs=%d notices=%d contention=%s\n",
		pr.PageFaults, pr.Twins, pr.Diffs, pr.WriteNotices, stats.Seconds(pr.ContentionNs))
	fmt.Printf("interactions: %d\n", o.Interactions)
}
