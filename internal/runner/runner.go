package runner

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"partree/internal/phys"
)

// Runner executes specs with a bounded worker pool and a memoizing,
// concurrency-safe result cache. Identical specs share one execution no
// matter how many goroutines request them; distinct specs run
// concurrently up to the worker bound. Bodies are memoized per
// (model, n, seed) and shared read-only across runs, so every backend
// sees the same deterministic initial conditions.
type Runner struct {
	workers int
	sem     chan struct{}

	mu     sync.Mutex
	cache  map[string]*entry
	bodies map[string]*bodiesEntry
}

type entry struct {
	spec Spec // normalized
	done chan struct{}
	res  Result
}

type bodiesEntry struct {
	done chan struct{}
	b    *phys.Bodies
}

// New creates a runner; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   map[string]*entry{},
		bodies:  map[string]*bodiesEntry{},
	}
}

// Workers returns the pool bound.
func (r *Runner) Workers() int { return r.workers }

// Run executes (or recalls) one spec. It blocks until the spec's result
// is available or ctx is done; on cancellation it returns immediately
// with an error Result while any in-flight execution completes into the
// cache for later callers. The per-spec Timeout bounds the execution
// itself, independently of the caller's context.
func (r *Runner) Run(ctx context.Context, spec Spec) Result {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Result{Spec: spec, Err: err.Error()}
	}
	key := spec.Key()
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &entry{spec: spec, done: make(chan struct{})}
		r.cache[key] = e
		go r.execute(e)
	}
	r.mu.Unlock()
	select {
	case <-e.done:
		return e.res
	case <-ctx.Done():
		return Result{Spec: spec, Err: fmt.Sprintf("runner: %v", ctx.Err())}
	}
}

// RunAll fans the specs out across the worker pool and returns their
// results in spec order — concurrency never reorders or drops cells.
func (r *Runner) RunAll(ctx context.Context, specs []Spec) []Result {
	out := make([]Result, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s Spec) {
			defer wg.Done()
			out[i] = r.Run(ctx, s)
		}(i, s)
	}
	wg.Wait()
	return out
}

// execute runs one cache entry to completion under a worker slot.
func (r *Runner) execute(e *entry) {
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	ctx := context.Background()
	if e.spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.spec.Timeout)
		defer cancel()
	}
	start := time.Now()
	res := r.runSpec(ctx, e.spec)
	res.Spec = e.spec
	res.WallNs = time.Since(start).Nanoseconds()
	e.res = res
	close(e.done)
}

func (r *Runner) runSpec(ctx context.Context, spec Spec) Result {
	bodies := r.bodiesFor(spec.Model, spec.Bodies, spec.Seed)
	switch spec.Backend {
	case Native:
		return runNative(ctx, spec, bodies)
	default:
		return runSimulated(ctx, spec, bodies)
	}
}

// Bodies returns the memoized body system for (model, n, seed). The
// returned slice set is shared and must be treated as read-only;
// backends clone before mutating.
func (r *Runner) Bodies(model phys.Model, n int, seed int64) *phys.Bodies {
	return r.bodiesFor(model.String(), n, seed)
}

func (r *Runner) bodiesFor(model string, n int, seed int64) *phys.Bodies {
	key := fmt.Sprintf("%s|%d|%d", model, n, seed)
	r.mu.Lock()
	be, ok := r.bodies[key]
	if !ok {
		be = &bodiesEntry{done: make(chan struct{})}
		r.bodies[key] = be
		r.mu.Unlock()
		m, _ := phys.ParseModel(model)
		be.b = phys.Generate(m, n, seed)
		close(be.done)
		return be.b
	}
	r.mu.Unlock()
	<-be.done
	return be.b
}

// Results snapshots every completed result in the cache, sorted by spec
// key, for CSV/JSON dumps.
func (r *Runner) Results() []Result {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.cache))
	for _, e := range r.cache {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	var out []Result
	for _, e := range entries {
		select {
		case <-e.done:
			out = append(out, e.res)
		default:
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Key() < out[j].Spec.Key() })
	return out
}
