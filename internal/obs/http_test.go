package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

// TestServeEndToEnd exercises the full HTTP surface against a real
// listener on a random port: /healthz JSON (including the readiness
// hook), /metrics content type and scrape-parseability, and the debug
// endpoints.
func TestServeEndToEnd(t *testing.T) {
	reg := goldenRegistry()
	var ready atomic.Bool
	srv, err := Serve("127.0.0.1:0", "obstest", reg, ready.Load)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", srv.URL())
	}

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return resp, string(body)
	}

	resp, body := get("/healthz")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/healthz content type %q", ct)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Binary != "obstest" || h.PID == 0 || h.GoVersion == "" {
		t.Fatalf("implausible health: %+v", h)
	}
	if h.Ready {
		t.Fatal("ready before the hook flipped")
	}
	ready.Store(true)
	if _, body := get("/healthz"); !strings.Contains(body, `"ready": true`) {
		t.Fatalf("readiness did not propagate:\n%s", body)
	}

	resp, body = get("/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type %q", ct)
	}
	fams := parseExposition(t, body)
	if fams["partree_test_ops_total"] == nil {
		t.Fatalf("registered counter missing from scrape:\n%s", body)
	}
	if s := fams["partree_test_ops_total"].samples["partree_test_ops_total"]; len(s) != 1 || s[0].value != 42 {
		t.Fatalf("scraped counter = %+v", s)
	}

	// The profiling and expvar surfaces must answer (content checked only
	// loosely: they are stdlib handlers).
	if _, body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatal("/debug/vars lacks memstats")
	}
	if _, body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/ index lacks goroutine profile")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

// TestServeBadAddr pins the synchronous-bind contract: an unusable
// address fails at Serve, not later in the background goroutine.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:0", "obstest", NewRegistry(), nil); err == nil {
		t.Fatal("bogus address accepted")
	}
}
