package main

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The e2e suite drives the real loadgen run loop against a real
// partreed subprocess on 127.0.0.1:0 — the two binaries' wire contract
// is the thing under test, so neither side is faked.

var (
	buildOnce sync.Once
	daemonBin string
	buildErr  error
)

func partreedBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "loadgen-e2e")
		if err != nil {
			buildErr = err
			return
		}
		daemonBin = filepath.Join(dir, "partreed")
		out, err := exec.Command("go", "build", "-o", daemonBin, "partree/cmd/partreed").CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("building partreed: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building partreed: %v", buildErr)
	}
	return daemonBin
}

// startPartreed launches a daemon on a random port and returns its base
// URL. The process is SIGTERMed (graceful drain) at test end.
func startPartreed(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(partreedBin(t), append([]string{"-addr", "127.0.0.1:0", "-v", "info"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting partreed: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	urls := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "url="); i >= 0 {
				url := line[i+len("url="):]
				if j := strings.IndexByte(url, ' '); j >= 0 {
					url = url[:j]
				}
				select {
				case urls <- url:
				default:
				}
			}
		}
	}()
	select {
	case url := <-urls:
		return url
	case <-time.After(20 * time.Second):
		t.Fatal("partreed never logged its url")
		return ""
	}
}

func readReport(t *testing.T, path string) report {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	return rep
}

func readTimingsCSV(t *testing.T, path string) map[string]float64 {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if i == 0 {
			if line != "metric,value" {
				t.Fatalf("timings header = %q", line)
			}
			continue
		}
		k, v, ok := strings.Cut(line, ",")
		if !ok {
			t.Fatalf("timings line %q is not k,v", line)
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("timings %s: %v", k, err)
		}
		out[k] = x
	}
	return out
}

// TestSessionRunDeterministicReport is the acceptance path: a seeded
// bursty-diurnal session workload against a live partreed, run twice,
// must produce byte-identical reports; the measured timings must be
// internally consistent (p99 ≥ p50).
func TestSessionRunDeterministicReport(t *testing.T) {
	url := startPartreed(t)
	dir := t.TempDir()
	runOnce := func(tag string) (string, map[string]float64) {
		rep := filepath.Join(dir, "report-"+tag+".json")
		tim := filepath.Join(dir, "timings-"+tag+".csv")
		err := run(url, "session", "plummer", "bursty:rate=60,on=250ms,off=250ms,period=1s,depth=0.6",
			time.Second, 0, 512, 2, 4, 1998, 60*time.Second,
			false, 0, false, "", "", rep, tim)
		if err != nil {
			t.Fatalf("run %s: %v", tag, err)
		}
		raw, err := os.ReadFile(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw), readTimingsCSV(t, tim)
	}
	r1, tim := runOnce("a")
	r2, _ := runOnce("b")
	// The "slow" p99_* pointers name whichever request measured
	// slowest — the report's one deliberately non-deterministic
	// section. Everything else must be byte-identical.
	stripMeasured := func(s string) string {
		lines := strings.Split(s, "\n")
		out := lines[:0]
		for _, line := range lines {
			if !strings.Contains(line, `"p99_`) {
				out = append(out, line)
			}
		}
		return strings.Join(out, "\n")
	}
	if stripMeasured(r1) != stripMeasured(r2) {
		t.Errorf("two identical runs produced different report bytes:\n--- a ---\n%s\n--- b ---\n%s", r1, r2)
	}

	rep := readReport(t, filepath.Join(dir, "report-a.json"))
	if rep.Outcomes.OK == 0 || rep.Outcomes.Rejected != 0 || rep.Outcomes.Failed != 0 {
		t.Errorf("outcomes = %+v, want all-ok under ample capacity", rep.Outcomes)
	}
	if rep.Schedule.Arrivals != rep.Outcomes.OK {
		t.Errorf("%d arrivals but %d ok sessions", rep.Schedule.Arrivals, rep.Outcomes.OK)
	}
	if got := rep.Metrics.SessionsOpened; got != int64(rep.Outcomes.OK) {
		t.Errorf("sessions_opened delta = %d, want %d", got, rep.Outcomes.OK)
	}
	rids := map[string]bool{}
	for _, s := range rep.Sessions {
		if s.Steps != 4 || s.Closed != "close" {
			t.Errorf("session %d: steps=%d closed=%q, want 4 steps closed cleanly", s.ID, s.Steps, s.Closed)
		}
		if len(s.RequestID) != 32 {
			t.Errorf("session %d: request_id = %q, want the 32-hex traceparent trace-id", s.ID, s.RequestID)
		}
		rids[s.RequestID] = true
	}
	if len(rids) != len(rep.Sessions) {
		t.Errorf("request IDs are not unique per arrival: %d ids over %d sessions", len(rids), len(rep.Sessions))
	}
	if rep.Slow == nil || !rids[rep.Slow.P99StepRequestID] {
		t.Errorf("slow = %+v, want a p99 step pointer naming one of the run's request IDs", rep.Slow)
	}
	if tim["completed"] != float64(rep.Outcomes.OK) {
		t.Errorf("timings completed = %g, want %d", tim["completed"], rep.Outcomes.OK)
	}
	if tim["p99_ms"] < tim["p50_ms"] || tim["p50_ms"] <= 0 {
		t.Errorf("latency percentiles inconsistent: p50=%g p99=%g", tim["p50_ms"], tim["p99_ms"])
	}
}

// TestClientMotionScenario streams an evolving parameterized scenario
// (no server-side model) through sessions: positions travel on the
// wire, so the server must report real churn.
func TestClientMotionScenario(t *testing.T) {
	url := startPartreed(t)
	rep := filepath.Join(t.TempDir(), "report.json")
	err := run(url, "session", "collision:speed=0.5", "poisson:rate=8",
		time.Second, 0, 400, 2, 3, 7, 60*time.Second,
		false, 0, false, "", "", rep, "")
	if err != nil {
		t.Fatal(err)
	}
	r := readReport(t, rep)
	if r.Outcomes.OK == 0 || r.Outcomes.Failed > 0 {
		t.Fatalf("outcomes = %+v", r.Outcomes)
	}
	for _, s := range r.Sessions {
		if s.Moved == 0 || s.ChurnSum == 0 {
			t.Errorf("session %d reports no churn (moved=%d churn=%g); client motion never reached the server",
				s.ID, s.Moved, s.ChurnSum)
		}
	}
}

// TestBuildOverloadMatchesRejectedCounter hammers a 1-active/1-queue
// daemon with concurrent build arrivals: the client-observed 503 count
// must equal the server's partree_engine_rejected_total delta.
func TestBuildOverloadMatchesRejectedCounter(t *testing.T) {
	url := startPartreed(t, "-max-active", "1", "-max-queue", "1")
	rep := filepath.Join(t.TempDir(), "report.json")
	err := run(url, "build", "hierarchical", "poisson:rate=200",
		200*time.Millisecond, 0, 30000, 2, 1, 1998, 60*time.Second,
		false, 0, false, "", "", rep, "")
	if err != nil {
		t.Fatal(err)
	}
	r := readReport(t, rep)
	if r.Outcomes.Rejected == 0 {
		t.Fatal("overload run saw no 503s; admission control never engaged")
	}
	var counted int64
	for _, v := range r.Metrics.EngineRejected {
		counted += v
	}
	if counted != int64(r.Outcomes.Rejected) {
		t.Errorf("client saw %d rejections, server counters moved by %d (%v)",
			r.Outcomes.Rejected, counted, r.Metrics.EngineRejected)
	}
}

// TestMultiTargetRoundRobin drives two partreed daemons through one
// run with -targets semantics: arrivals must round-robin by ID, the
// report must gain a per-target breakdown that sums to the global
// outcome counts, and the metrics delta must account for both daemons.
func TestMultiTargetRoundRobin(t *testing.T) {
	// speedup=0 fires the whole schedule at once, so the queues must
	// hold one target's half of the arrivals for the all-ok assertion.
	u1 := startPartreed(t, "-max-queue", "64")
	u2 := startPartreed(t, "-max-queue", "64")
	rep := filepath.Join(t.TempDir(), "report.json")
	err := run(u1+","+u2, "build", "plummer", "poisson:rate=20",
		time.Second, 0, 512, 2, 1, 1998, 60*time.Second,
		false, 0, false, "", "", rep, "")
	if err != nil {
		t.Fatal(err)
	}
	r := readReport(t, rep)
	if r.Outcomes.OK == 0 || r.Outcomes.Failed > 0 || r.Outcomes.Rejected > 0 {
		t.Fatalf("outcomes = %+v, want all-ok under ample capacity", r.Outcomes)
	}
	if len(r.Targets) != 2 {
		t.Fatalf("report has %d target entries, want 2", len(r.Targets))
	}
	if r.Targets[0].URL != u1 || r.Targets[1].URL != u2 {
		t.Errorf("target URLs = %q, %q; want %q, %q", r.Targets[0].URL, r.Targets[1].URL, u1, u2)
	}
	var arrivals, ok int
	for _, tt := range r.Targets {
		arrivals += tt.Arrivals
		ok += tt.Outcomes.OK
		if tt.Arrivals == 0 {
			t.Errorf("target %s received no arrivals; round-robin never reached it", tt.URL)
		}
	}
	if arrivals != r.Schedule.Arrivals || ok != r.Outcomes.OK {
		t.Errorf("per-target sums (arrivals=%d ok=%d) disagree with the run totals (%d, %d)",
			arrivals, ok, r.Schedule.Arrivals, r.Outcomes.OK)
	}
	if d := r.Targets[0].Arrivals - r.Targets[1].Arrivals; d < -1 || d > 1 {
		t.Errorf("round-robin split %d/%d is not balanced", r.Targets[0].Arrivals, r.Targets[1].Arrivals)
	}
}

// TestMandatoryTimeout pins the contract that a run cannot be started
// without a wall-clock bound.
func TestMandatoryTimeout(t *testing.T) {
	err := run("http://127.0.0.1:1", "session", "plummer", "poisson:rate=10",
		time.Second, 0, 64, 1, 1, 1, 0, false, 0, false, "", "", "", "")
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("run without a timeout returned %v, want a mandatory-timeout error", err)
	}
}
