// Lockcount reproduces the paper's Figure 15 analysis natively: run each
// tree-building algorithm over the same bodies on this machine and chart
// the per-processor lock acquisitions in the build phase. Run:
//
//	go run ./examples/lockcount [-n 65536] [-p 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"partree/internal/core"
	"partree/internal/phys"
	"partree/internal/stats"
)

func main() {
	n := flag.Int("n", 65536, "bodies")
	p := flag.Int("p", 8, "processors")
	flag.Parse()

	bodies := phys.Generate(phys.ModelPlummer, *n, 42)
	assign := core.SpatialAssign(bodies, *p)

	fmt.Printf("tree-build lock acquisitions, %d bodies, %d processors:\n\n", *n, *p)
	labels := make([]string, 0, core.NumAlgorithms)
	values := make([]float64, 0, core.NumAlgorithms)
	for _, alg := range core.Algorithms() {
		bld := core.New(alg, core.Config{P: *p, LeafCap: 8})
		// Two steps, as in the paper's measurement; UPDATE's second step
		// is the interesting (incremental) one.
		var total int64
		var perProc []int64
		for step := 0; step < 2; step++ {
			_, m := bld.Build(&core.Input{Bodies: bodies, Assign: assign, Step: step})
			total += m.TotalLocks()
			perProc = m.LocksPerProc()
		}
		labels = append(labels, alg.String())
		values = append(values, float64(total))
		s := stats.Summarize(perProc)
		fmt.Printf("%-8s final-step per-processor locks: mean %.0f [%.0f..%.0f]\n",
			alg, s.Mean, s.Min, s.Max)
	}
	fmt.Println()
	stats.Bars(os.Stdout, "total lock acquisitions over two steps:", labels, values, "")
	fmt.Println("\nThe ordering ORIG >= LOCAL > UPDATE > PARTREE > SPACE(=0) is the design")
	fmt.Println("strategy of the algorithm sequence: each successive algorithm trades a")
	fmt.Println("little locality or load balance for much less synchronization.")
}
