// Package core implements the paper's contribution: five parallel
// algorithms for building the Barnes-Hut octree on a shared address space
// — ORIG, LOCAL (the paper's ORIG-LOCAL), UPDATE, PARTREE, and SPACE —
// as real concurrent Go code over the internal/octree substrate.
//
// All five builders produce a tree over the same bodies; ORIG, LOCAL,
// UPDATE, and PARTREE partition the *bodies* for tree building exactly as
// they were partitioned for force calculation in the previous time step,
// while SPACE partitions *space* anew, trading locality and load balance
// for the complete elimination of locking. Each builder reports per-
// processor synchronization and allocation counts so the experiments can
// reproduce the paper's Figure 15 (dynamic lock counts).
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/phys"
	"partree/internal/trace"
	"partree/internal/vec"
)

// Algorithm identifies one of the paper's five tree-building algorithms.
type Algorithm int

const (
	// ORIG is the SPLASH-1 algorithm: concurrent insertion into a single
	// shared tree, all nodes allocated from one global shared array.
	ORIG Algorithm = iota
	// LOCAL is the SPLASH-2 algorithm (the paper's ORIG-LOCAL): the same
	// concurrent insertion, but with per-processor cell and leaf arrays,
	// distinct internal/leaf node types and private counters.
	LOCAL
	// UPDATE incrementally repairs the previous step's tree instead of
	// rebuilding: only bodies that crossed their old leaf's boundary move.
	UPDATE
	// PARTREE builds a private local tree per processor without any
	// synchronization and then merges whole cells/subtrees into the
	// shared global tree, greatly reducing the number of lock operations.
	PARTREE
	// SPACE repartitions space for the build: the domain is recursively
	// subdivided until every subspace holds at most a threshold number of
	// bodies (creating the top of the octree in the process), subspaces
	// are assigned to processors, and each processor builds and attaches
	// its subtrees with no locking at all.
	SPACE

	// NumAlgorithms is the number of tree-building algorithms.
	NumAlgorithms = int(SPACE) + 1
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case ORIG:
		return "ORIG"
	case LOCAL:
		return "LOCAL"
	case UPDATE:
		return "UPDATE"
	case PARTREE:
		return "PARTREE"
	case SPACE:
		return "SPACE"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm converts a CLI name (case-insensitive) to an
// Algorithm. The error lists the valid names.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a := Algorithm(0); int(a) < NumAlgorithms; a++ {
		if strings.EqualFold(a.String(), s) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q (valid: %s)", s, strings.Join(AlgorithmNames(), ", "))
}

// AlgorithmNames lists the five algorithm names in the paper's order.
func AlgorithmNames() []string {
	names := make([]string, 0, NumAlgorithms)
	for _, a := range Algorithms() {
		names = append(names, a.String())
	}
	return names
}

// MarshalText renders the algorithm by name (so JSON specs say "SPACE",
// not 4).
func (a Algorithm) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText parses an algorithm name, case-insensitively.
func (a *Algorithm) UnmarshalText(b []byte) error {
	v, err := ParseAlgorithm(string(b))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// Algorithms lists all five in the paper's order.
func Algorithms() []Algorithm {
	return []Algorithm{ORIG, LOCAL, UPDATE, PARTREE, SPACE}
}

// Input is everything a builder needs for one time step.
type Input struct {
	Bodies *phys.Bodies
	// Assign holds each processor's body list from the previous step's
	// force-calculation partition (evenly split on the first step). The
	// lists must cover every body exactly once.
	Assign [][]int32
	// Step is the time-step number (0-based); UPDATE rebuilds on step 0
	// and repairs afterwards. Steps must be continuous (each build's Step
	// one past the previous build's): a resident UPDATE builder treats a
	// gap as a restart and rebuilds from scratch.
	Step int
	// Rebuild requests that a resident builder discard its retained tree
	// and rebuild from scratch this step even when an incremental repair
	// would be possible. UPDATE honors it with a zero-lock SPACE-style
	// rebuild (the auto-fallback path of a streaming session); the
	// rebuilding algorithms, which start fresh every step anyway, ignore
	// it.
	Rebuild bool
}

// P returns the processor count implied by the assignment.
func (in *Input) P() int { return len(in.Assign) }

// Builder is one tree-building algorithm. Builders may keep state between
// steps (UPDATE keeps its whole tree; the others keep reusable stores).
type Builder interface {
	Algorithm() Algorithm
	// Build constructs (or repairs) the octree for the step and computes
	// moments. The returned tree remains owned by the builder: it is
	// valid until the next Build call.
	Build(in *Input) (*octree.Tree, *Metrics)
}

// Config carries the tuning parameters shared by the builders.
type Config struct {
	P       int // number of processors (goroutines)
	LeafCap int // subdivision threshold k (bodies per leaf)
	// SpaceThreshold is SPACE's subdivision threshold: a subspace with
	// more bodies than this is split further. 0 selects the default
	// max(LeafCap, N/(16·P)) at build time.
	SpaceThreshold int
	// Margin expands the root bounding cube (relative); all builders use
	// the same value so trees stay comparable.
	Margin float64
	// DepthStats, when set, makes UPDATE walk the finished tree after
	// every build and publish leaf-depth statistics on Metrics.Depth —
	// the depth-skew signal the session fallback policy consumes. The
	// walk is O(live nodes) and runs outside the timed phases; it is off
	// by default so benchmark baselines are unperturbed.
	DepthStats bool
	// Trace, when non-nil and enabled, records per-processor phase spans
	// and lock events for every build (see internal/trace). The recorder
	// is reset at the start of each traced build, so it always holds the
	// most recent Build call, and its summary is surfaced on
	// Metrics.Trace. A nil or disabled recorder costs one pointer
	// comparison per hook on the hot path.
	Trace *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.P <= 0 {
		c.P = 1
	}
	if c.LeafCap <= 0 {
		c.LeafCap = 8
	}
	if c.Margin <= 0 {
		c.Margin = 1e-4
	}
	return c
}

// New creates a builder for the given algorithm. The returned builder is
// wrapped to publish each build's metrics into the package's live
// per-algorithm totals (see obs.go); the wrapper adds a few atomic adds
// per build, outside the timed phases.
func New(a Algorithm, cfg Config) Builder {
	cfg = cfg.withDefaults()
	var b Builder
	switch a {
	case ORIG:
		b = newOrig(cfg)
	case LOCAL:
		b = newLocal(cfg)
	case UPDATE:
		b = newUpdate(cfg)
	case PARTREE:
		b = newPartree(cfg)
	case SPACE:
		b = newSpace(cfg)
	default:
		panic("core: unknown algorithm")
	}
	return obsBuilder{b}
}

// EvenAssign splits bodies 0..n-1 into p contiguous even chunks — the
// paper's first-step assignment.
func EvenAssign(n, p int) [][]int32 {
	out := make([][]int32, p)
	for w := 0; w < p; w++ {
		lo, hi := n*w/p, n*(w+1)/p
		chunk := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			chunk = append(chunk, int32(i))
		}
		out[w] = chunk
	}
	return out
}

// SpatialAssign splits the bodies into p spatially compact even chunks by
// sorting on the Morton key — a stand-in for a settled costzones partition
// when benchmarking a single build outside a full simulation. The paper's
// ORIG/LOCAL/UPDATE/PARTREE builds all assume the body partition carries
// physical locality ("if the partitioning incorporates physical locality,
// this overhead should be small").
func SpatialAssign(b *phys.Bodies, p int) [][]int32 {
	n := b.N()
	cube := b.Bounds(1e-4)
	idx := make([]int32, n)
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		idx[i] = int32(i)
		keys[i] = partition.MortonKey(cube, b.Pos[i])
	}
	sort.Slice(idx, func(a, c int) bool {
		if keys[idx[a]] != keys[idx[c]] {
			return keys[idx[a]] < keys[idx[c]]
		}
		return idx[a] < idx[c]
	})
	out := make([][]int32, p)
	for w := 0; w < p; w++ {
		lo, hi := n*w/p, n*(w+1)/p
		out[w] = append([]int32(nil), idx[lo:hi]...)
	}
	return out
}

// traceStart opens a fresh trace window for one build and returns the
// recorder, or nil when tracing is off. Builders thread the returned
// value through their phases so the untraced path stays a nil check.
func (c Config) traceStart() *trace.Recorder {
	if !c.Trace.Active() {
		return nil
	}
	c.Trace.Reset()
	return c.Trace
}

// traceNow is tr.Now() tolerating a nil recorder.
func traceNow(tr *trace.Recorder) int64 {
	if tr == nil {
		return 0
	}
	return tr.Now()
}

// parallelBounds computes the root bounding cube with one goroutine per
// processor's body list, mirroring how the real codes size the root.
func parallelBounds(in *Input, margin float64, tr *trace.Recorder) vec.Cube {
	p := in.P()
	mins := make([]vec.V3, p)
	maxs := make([]vec.V3, p)
	any := make([]bool, p)
	tracedDo(tr, trace.PhasePartition, p, func(w int) {
		first := true
		var lo, hi vec.V3
		for _, b := range in.Assign[w] {
			q := in.Bodies.Pos[b]
			if first {
				lo, hi = q, q
				first = false
			} else {
				lo = lo.Min(q)
				hi = hi.Max(q)
			}
		}
		mins[w], maxs[w], any[w] = lo, hi, !first
	})
	first := true
	var lo, hi vec.V3
	for w := 0; w < p; w++ {
		if !any[w] {
			continue
		}
		if first {
			lo, hi = mins[w], maxs[w]
			first = false
		} else {
			lo = lo.Min(mins[w])
			hi = hi.Max(maxs[w])
		}
	}
	if first {
		return vec.Cube{Size: 1}
	}
	size := hi.Sub(lo).MaxComponent() * (1 + margin)
	if size <= 0 {
		size = 1
	}
	return vec.Cube{Center: lo.Add(hi).Scale(0.5), Size: size}
}

// parallelDo runs fn(0..p-1) on p goroutines and waits. It is the "launch
// the pieces, drain the channel" pattern from Effective Go; every phase of
// every builder funnels through it so the fork/join structure of the
// original programs is explicit.
func parallelDo(p int, fn func(w int)) {
	if p == 1 {
		fn(0)
		return
	}
	done := make(chan struct{}, p)
	for w := 0; w < p; w++ {
		go func(w int) {
			fn(w)
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < p; w++ {
		<-done
	}
}

// tracedDo is parallelDo with tracing: each worker's execution becomes
// one ph span, and the gap between a worker finishing and the slowest
// worker finishing (the implicit join barrier) is charged to the worker
// as barrier wait — the native analogue of the simulator's per-barrier
// wait times, and the paper's load-imbalance signal. With tr nil it
// falls straight through to parallelDo.
func tracedDo(tr *trace.Recorder, ph trace.Phase, p int, fn func(w int)) {
	if tr == nil {
		parallelDo(p, fn)
		return
	}
	finish := make([]int64, p)
	parallelDo(p, func(w int) {
		tp := tr.Proc(w)
		start := tp.Now()
		fn(w)
		end := tp.Now()
		finish[w] = end
		tp.SpanAt(ph, start, end)
	})
	join := tr.Now()
	for w := 0; w < p; w++ {
		tr.Proc(w).SpanAt(trace.PhaseBarrier, finish[w], join)
	}
}

// spanAll charges one fork/join interval to every processor — used for
// the moments pass, which parallelizes inside internal/octree where the
// per-worker split is not visible to this package.
func spanAll(tr *trace.Recorder, ph trace.Phase, start int64, p int) {
	if tr == nil {
		return
	}
	end := tr.Now()
	for w := 0; w < p; w++ {
		tr.Proc(w).SpanAt(ph, start, end)
	}
}

// Timing records the builder's phase durations for the native benchmarks.
type Timing struct {
	Bounds  time.Duration // root sizing (and SPACE's counting/partitioning)
	Insert  time.Duration // loading bodies / merging / attaching
	Moments time.Duration // center-of-mass pass
}

// Total returns the summed build time.
func (t Timing) Total() time.Duration { return t.Bounds + t.Insert + t.Moments }
