package trace

import "testing"

// TestHistQuantile pins the histogram's quantile semantics: the upper
// edge of the smallest bucket reaching ceil(q*Total), tightened to the
// exact recorded maximum, with the overflow bucket resolving to the
// maximum itself. These exact values are what the exporter goldens and
// the per-processor summaries depend on.
func TestHistQuantile(t *testing.T) {
	cases := []struct {
		name string
		adds []int64
		q    float64
		want int64
	}{
		{"empty q0", nil, 0, 0},
		{"empty q50", nil, 0.5, 0},
		{"empty q100", nil, 1, 0},

		// A single event answers every quantile with its own value: its
		// bucket upper bound (127 for 100) is clamped to MaxNs.
		{"single q0", []int64{100}, 0, 100},
		{"single q50", []int64{100}, 0.5, 100},
		{"single q100", []int64{100}, 1, 100},
		{"single zero", []int64{0}, 0.5, 0},

		// Exact boundaries: {1,2,3,4} lands in buckets 1:{1}, 2:{2,3},
		// 3:{4}. rank(q=0.5)=2 resolves in bucket 2, upper bound 3.
		{"boundary q25", []int64{1, 2, 3, 4}, 0.25, 1},
		{"boundary q50", []int64{1, 2, 3, 4}, 0.5, 3},
		{"boundary q75", []int64{1, 2, 3, 4}, 0.75, 3},
		{"boundary q100", []int64{1, 2, 3, 4}, 1, 4}, // bucket upper 7 clamps to max 4

		// Power-of-two edge: 7 is the last value of bucket 3, 8 the first
		// of bucket 4.
		{"pow2 low", []int64{7, 8}, 0.5, 7},
		{"pow2 high", []int64{7, 8}, 1, 8},

		// Overflow bucket (values >= 2^39) reports the exact maximum, not
		// a bucket bound.
		{"overflow max", []int64{5, 1 << 50}, 1, 1 << 50},
		{"overflow below", []int64{5, 1 << 50}, 0.5, 7},
		{"overflow only", []int64{1 << 45, 1 << 50}, 0.5, 1 << 50},

		// Negative durations clamp to zero on Add.
		{"negative", []int64{-5}, 1, 0},

		// q outside [0,1] clamps (the low query answers bucket 4's upper
		// bound for the value 10).
		{"q below range", []int64{10, 20}, -3, 15},
		{"q above range", []int64{10, 20}, 7, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Hist
			for _, v := range tc.adds {
				h.Add(v)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%v) after %v = %d, want %d", tc.q, tc.adds, got, tc.want)
			}
		})
	}
}

func TestHistCounters(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 3, 1 << 50, -9} {
		h.Add(v)
	}
	if h.Total != 5 {
		t.Errorf("Total = %d, want 5", h.Total)
	}
	if h.MaxNs != 1<<50 {
		t.Errorf("MaxNs = %d, want %d", h.MaxNs, int64(1)<<50)
	}
	// 0 and the clamped -9 share bucket 0; 1 in bucket 1; 3 in bucket 2;
	// the huge value in the overflow bucket.
	for b, want := range map[int]int64{0: 2, 1: 1, 2: 1, HistBuckets: 1} {
		if h.Counts[b] != want {
			t.Errorf("Counts[%d] = %d, want %d", b, h.Counts[b], want)
		}
	}
}

func TestBucketEdges(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {-1, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{(1 << 39) - 1, 39}, {1 << 39, HistBuckets}, {1 << 62, HistBuckets},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.ns); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.ns, got, tc.bucket)
		}
	}
	for i, want := range map[int]int64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023} {
		if got := bucketUpper(i); got != want {
			t.Errorf("bucketUpper(%d) = %d, want %d", i, got, want)
		}
	}
}
