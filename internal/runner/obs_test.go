package runner

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/obs"
)

// TestObsConservationConcurrent hammers one runner from several RunAll
// sweeps with duplicated specs plus a burst of direct Run calls, then
// checks the live counters against the result cache exactly — the
// runner-level conservation law (companion to internal/verify's six
// metrics laws): every request is a hit or a miss, every miss is exactly
// one execution, every execution ends completed or failed, and the idle
// gauges read zero.
func TestObsConservationConcurrent(t *testing.T) {
	r := New(3)

	var specs []Spec
	for rep := 0; rep < 3; rep++ { // duplicates share one execution
		for _, alg := range core.Algorithms() {
			specs = append(specs, simSpec(alg, 2, 256))
		}
	}
	// One spec that reaches execution and fails there (validation errors
	// never reach the cache, so they must stay invisible to the counters).
	failing := Spec{Backend: Native, Alg: core.SPACE, Procs: 2, Bodies: 1024,
		Steps: 8, Seed: 3, Timeout: time.Nanosecond}
	specs = append(specs, failing)

	const sweeps, directs = 4, 8
	var wg sync.WaitGroup
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.RunAll(context.Background(), specs)
		}()
	}
	for i := 0; i < directs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run(context.Background(), specs[0])
		}()
	}
	wg.Wait()

	if err := r.AuditObs(); err != nil {
		t.Fatal(err)
	}
	s := r.ObsSnapshot()
	results := r.Results()

	uniq := len(core.Algorithms()) + 1 // 5 shared sim specs + the failing native one
	if len(results) != uniq {
		t.Fatalf("cache holds %d results, want %d", len(results), uniq)
	}
	if want := int64(sweeps*len(specs) + directs); s.Runs != want {
		t.Fatalf("runs = %d, want %d", s.Runs, want)
	}
	if s.CacheMisses != int64(uniq) {
		t.Fatalf("misses = %d, want %d", s.CacheMisses, uniq)
	}
	if s.CacheHits != s.Runs-int64(uniq) {
		t.Fatalf("hits = %d, want %d", s.CacheHits, s.Runs-int64(uniq))
	}
	if s.Started != int64(uniq) || s.Completed != int64(uniq-1) || s.Failed != 1 {
		t.Fatalf("started/completed/failed = %d/%d/%d, want %d/%d/1",
			s.Started, s.Completed, s.Failed, uniq, uniq-1)
	}
	if s.QueueDepth != 0 || s.InFlight != 0 {
		t.Fatalf("idle gauges nonzero: queue=%d in-flight=%d", s.QueueDepth, s.InFlight)
	}
	if s.SpecDurationsObserved != uint64(uniq) {
		t.Fatalf("duration observations = %d, want %d", s.SpecDurationsObserved, uniq)
	}
	// Two distinct (model, n, seed) body sets: the shared sim bodies and
	// the failing native spec's. Every execution asked for one set.
	if s.BodyMemoMisses != 2 {
		t.Fatalf("body memo misses = %d, want 2", s.BodyMemoMisses)
	}
	if s.BodyMemoHits != int64(uniq)-2 {
		t.Fatalf("body memo hits = %d, want %d", s.BodyMemoHits, uniq-2)
	}

	var failed int
	for _, res := range results {
		if res.Failed() {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("cache holds %d failed results, want 1", failed)
	}
}

// TestObsInFlightVisibleMidRun observes the in-flight gauge from outside
// while an execution holds a worker slot, then checks it settles back to
// zero before Run returns (the accounting-before-done ordering).
func TestObsInFlightVisibleMidRun(t *testing.T) {
	r := New(1)
	spec := Spec{Backend: Native, Alg: core.LOCAL, Procs: 2, Bodies: 131072,
		Steps: 3, Seed: 11, BuildOnly: true, Spatial: true}
	done := make(chan Result, 1)
	go func() { done <- r.Run(context.Background(), spec) }()

	deadline := time.After(10 * time.Second)
	for r.ObsSnapshot().InFlight == 0 {
		select {
		case res := <-done:
			// The spec finished before we looked — the gauge must already
			// have settled, which the audit below still verifies.
			if res.Failed() {
				t.Fatalf("run failed: %s", res.Err)
			}
			if err := r.AuditObs(); err != nil {
				t.Fatal(err)
			}
			return
		case <-deadline:
			t.Fatal("in-flight gauge never rose")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}

	res := <-done
	if res.Failed() {
		t.Fatalf("run failed: %s", res.Err)
	}
	// Counters settle before e.done closes, so immediately after Run
	// returns the audit must already balance.
	if err := r.AuditObs(); err != nil {
		t.Fatal(err)
	}
	s := r.ObsSnapshot()
	if s.Started != 1 || s.Completed != 1 || s.InFlight != 0 {
		t.Fatalf("post-run snapshot: %+v", s)
	}
}

// TestRegisterObsRendersRunnerSeries registers a warmed runner on a
// fresh registry and checks the scrape carries its counters with the
// exact cache-derived values, plus the per-algorithm build totals.
func TestRegisterObsRendersRunnerSeries(t *testing.T) {
	r := New(2)
	res := r.Run(context.Background(), Spec{Backend: Native, Alg: core.ORIG, Procs: 2,
		Bodies: 2048, Steps: 2, Seed: 5, BuildOnly: true})
	if res.Failed() {
		t.Fatalf("warmup failed: %s", res.Err)
	}
	r.Run(context.Background(), res.Spec) // one cache hit

	reg := obs.NewRegistry()
	if err := r.RegisterObs(reg); err != nil {
		t.Fatal(err)
	}
	if err := RegisterBuildObs(reg); err != nil {
		t.Fatal(err)
	}
	// Re-registering the same runner on the same registry must collide on
	// the metric names.
	if err := r.RegisterObs(reg); err == nil {
		t.Fatal("duplicate registration accepted")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"partree_runner_runs_total 2",
		"partree_runner_cache_hits_total 1",
		"partree_runner_cache_misses_total 1",
		"partree_runner_specs_completed_total 1",
		"partree_runner_in_flight 0",
		"partree_runner_workers 2",
		`partree_runner_spec_duration_seconds_count{backend="native"} 1`,
		`partree_build_total{alg="ORIG"}`,
		`partree_build_locks_total{alg="ORIG"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}
