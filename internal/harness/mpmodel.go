package harness

import (
	"fmt"
	"io"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/mp"
	"partree/internal/stats"
)

// mpCosts is the first-order communication model for the message-passing
// baseline on each platform: per-message latency and per-byte transfer
// cost. The SVM-class machines use their measured message parameters; the
// hardware shared-memory machines run message passing through shared
// buffers, so latency is a few memory round trips and bandwidth is the
// interconnect's.
func mpCosts(pl memsim.Platform) (latencyNs, nsPerByte float64) {
	switch pl.Kind {
	case memsim.HLRC:
		return pl.MsgNs, pl.PageXferNs / 4096
	case memsim.FineGrainSC:
		return pl.RemoteMissNs, pl.RemoteMissNs / float64(pl.LineSize)
	case memsim.Directory:
		return 3 * pl.RemoteMissNs, pl.RemoteMissNs / float64(pl.LineSize)
	default: // SnoopyBus
		return 3 * pl.LocalMissNs, pl.LocalMissNs / float64(pl.LineSize)
	}
}

// mpEstimate runs the message-passing step natively to obtain per-rank
// work and traffic counts, then prices them on the platform: per-rank time
// = compute + communication, total = slowest rank + barrier costs. This is
// a first-order model (no contention), which is exactly the regime message
// passing was prized for — predictable, latency-bound communication.
func mpEstimate(s *Session, pl memsim.Platform, p, n int) float64 {
	bodies := s.Bodies(n).Clone()
	// Settle the distribution one step, then measure the second, to
	// mirror the shared-memory methodology.
	mp.Step(bodies, mp.Options{P: p})
	st := mp.Step(bodies, mp.Options{P: p})

	lat, perByte := mpCosts(pl)
	const (
		interactionCycles = 52
		treeCyclesPerBody = 250 // local build + essential-set walks
		orbCyclesPerBody  = 60
	)
	var worst float64
	for _, r := range st.PerRank {
		compute := (float64(r.Interactions)*interactionCycles +
			float64(r.Bodies)*(treeCyclesPerBody+orbCyclesPerBody) +
			float64(r.RemoteItems)*treeCyclesPerBody) * pl.CycleNs
		comm := float64(r.MsgsSent)*lat + float64(r.BytesSent)*perByte
		if t := compute + comm; t > worst {
			worst = t
		}
	}
	// Three phase barriers per step, using the platform's barrier cost.
	worst += 3 * (pl.BarrierBase + pl.BarrierPerP*float64(p))
	return worst * float64(s.Opts.MeasuredSteps)
}

func ext3(s *Session, w io.Writer) {
	n := s.Opts.MaxSize()
	p := 16
	fmt.Fprintf(w, "Message passing (ORB + locally essential trees) vs shared address space,\n")
	fmt.Fprintf(w, "%dk bodies, %d processors. MP times are first-order estimates from the\n", n/1024, p)
	fmt.Fprintln(w, "native run's measured work and traffic; SAS times are full simulations.")
	fmt.Fprintln(w)
	t := stats.NewTable("platform", "MP est.", "LOCAL (SAS)", "SPACE (SAS)")
	platforms := []memsim.Platform{
		memsim.Challenge(), memsim.Origin2000(p), memsim.TyphoonSC(),
		memsim.TyphoonHLRC(), memsim.Paragon(),
	}
	for _, pl := range platforms {
		seq := s.Seq(pl, n).TotalNs()
		mpT := mpEstimate(s, pl, p, n)
		t.Row(pl.Name,
			fmt.Sprintf("%.1fx", seq/mpT),
			fmt.Sprintf("%.1fx", s.Speedup(pl, core.LOCAL, p, n)),
			fmt.Sprintf("%.1fx", s.Speedup(pl, core.SPACE, p, n)))
	}
	t.Write(w)
	fmt.Fprintln(w, "\nMessage passing's speedups stay healthy on every platform — the")
	fmt.Fprintln(w, "portability the paper set out to match. SPACE is the tree-building")
	fmt.Fprintln(w, "algorithm that lets the shared-address-space model keep pace.")
}
