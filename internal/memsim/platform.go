package memsim

// ProtocolKind selects the coherence model family.
type ProtocolKind int

const (
	// SnoopyBus is a bus-based write-invalidate protocol with centralized
	// memory (SGI Challenge): uniform miss cost plus bus contention.
	SnoopyBus ProtocolKind = iota
	// Directory is a CC-NUMA hardware directory protocol (SGI Origin
	// 2000): local/remote/dirty-3-hop miss costs plus home-hub occupancy.
	Directory
	// HLRC is home-based lazy release consistency over page-granularity
	// software shared virtual memory (Intel Paragon, Typhoon-0 page
	// mode): protocol activity happens at acquires, releases and
	// barriers; invalid-page accesses fault and fetch from home.
	HLRC
	// FineGrainSC is a sequentially consistent protocol at cache-block
	// granularity whose handlers run in software on a coprocessor
	// (Typhoon-0 fine-grain mode): every miss pays software occupancy,
	// but synchronization carries no protocol activity.
	FineGrainSC
)

func (k ProtocolKind) String() string {
	switch k {
	case SnoopyBus:
		return "snoopy-bus"
	case Directory:
		return "directory"
	case HLRC:
		return "hlrc-svm"
	case FineGrainSC:
		return "fine-grain-sc"
	}
	return "unknown"
}

// Platform bundles a machine model: protocol family plus latency and
// occupancy parameters, all in nanoseconds. The presets in platforms.go
// are calibrated to the paper's §3 descriptions; see DESIGN.md §4 for the
// two latencies the scraped text corrupted and the values chosen.
type Platform struct {
	Name string
	Kind ProtocolKind

	// CPU.
	CycleNs float64 // one processor cycle
	HitNs   float64 // cache-hit access cost charged per simulated access

	// Coherence granularity.
	LineSize int // bytes (SnoopyBus, Directory, FineGrainSC)
	PageSize int // bytes (HLRC)

	// Memory nodes: how many places memory lives in. procs map onto
	// nodes round-robin blocks (P/Nodes procs per node).
	Nodes int // 0 = one node per processor

	// SnoopyBus / Directory / FineGrainSC miss costs.
	LocalMissNs  float64 // miss satisfied by the local node (or uniform bus miss)
	RemoteMissNs float64 // miss to a remote home, clean
	DirtyMissNs  float64 // miss requiring intervention at a third node
	InvalNs      float64 // extra cost per sharer invalidated on a write

	// Contention: each miss occupies the bus (SnoopyBus) or the home
	// node's hub/protocol processor (Directory, FineGrainSC) this long.
	OccupancyNs float64

	// Synchronization (hardware-supported cases).
	LockNs      float64 // uncontended acquire
	LockHandoff float64 // extra cost transferring a contended lock
	BarrierBase float64 // flat barrier cost
	BarrierPerP float64 // additional barrier cost per processor

	// HLRC software protocol costs.
	MsgNs      float64 // one-way small-message latency
	PageXferNs float64 // transferring one page's data
	SoftNs     float64 // software handler overhead per fault/request
	TwinNs     float64 // copying a page into a twin on first write
	DiffNs     float64 // computing+sending one page's diff at release
	NoticeNs   float64 // applying one write notice (invalidating a page)
}

// NodeOf maps a processor to its memory node (exported for data-placement
// decisions in simulation programs).
func (pl Platform) NodeOf(proc, p int) int { return pl.nodeOf(proc, p) }

// nodeOf maps a processor to its memory node.
func (pl *Platform) nodeOf(proc, p int) int {
	nodes := pl.Nodes
	if nodes <= 0 || nodes > p {
		nodes = p
	}
	per := (p + nodes - 1) / nodes
	return proc / per
}

func (pl *Platform) numNodes(p int) int {
	nodes := pl.Nodes
	if nodes <= 0 || nodes > p {
		nodes = p
	}
	return nodes
}

// ProtocolStats counts protocol events over a run.
type ProtocolStats struct {
	Accesses      int64   `json:"accesses"`
	Hits          int64   `json:"hits"`
	ColdMisses    int64   `json:"cold_misses"`
	CoherenceMiss int64   `json:"coherence_misses"` // misses caused by invalidation
	LocalMisses   int64   `json:"local_misses"`
	RemoteMisses  int64   `json:"remote_misses"`
	DirtyMisses   int64   `json:"dirty_misses"`
	Invalidations int64   `json:"invalidations"`
	ContentionNs  float64 `json:"contention_ns"` // time spent waiting for bus/hub occupancy

	// HLRC.
	PageFaults   int64 `json:"page_faults"`
	Twins        int64 `json:"twins"`
	Diffs        int64 `json:"diffs"`
	WriteNotices int64 `json:"write_notices"` // notices applied (pages invalidated at sync)
}

// Protocol is one coherence model under the engine.
type Protocol interface {
	// Access charges a read (write=false) or write at virtual time now
	// and returns the latency.
	Access(proc int, addr uint64, write bool, now float64) float64
	// AcquireLock charges the synchronization cost of acquiring lockID
	// at virtual time now (the lock is already free).
	AcquireLock(proc, lockID int, now float64) float64
	// ReleaseLock charges the cost of releasing lockID (for HLRC this is
	// where the interval closes and diffs flush).
	ReleaseLock(proc, lockID int, now float64) float64
	// BarrierWork computes when a global barrier releases given the
	// arrival times, plus any per-processor cost paid after release
	// (e.g. applying write notices).
	BarrierWork(arrivals []float64, procs []int) (release float64, perProc []float64)
	// SetHome homes the pages overlapping [lo,hi) at the given node
	// (Directory, FineGrainSC, HLRC; no-op for SnoopyBus).
	SetHome(lo, hi uint64, node int)
	// Stats returns the counters so far.
	Stats() ProtocolStats
}

// newProtocol instantiates the model for a platform.
func newProtocol(pl Platform, p int) Protocol {
	switch pl.Kind {
	case SnoopyBus:
		return newBusProtocol(pl, p)
	case Directory:
		return newDirProtocol(pl, p, false)
	case FineGrainSC:
		return newDirProtocol(pl, p, true)
	case HLRC:
		return newHLRCProtocol(pl, p)
	}
	panic("memsim: unknown protocol kind")
}

// resource models a serially occupied unit (bus, hub, protocol CPU).
type resource struct {
	freeAt float64
}

// serve occupies the resource for occ ns starting no earlier than now;
// returns the queuing delay incurred.
func (r *resource) serve(now, occ float64) float64 {
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + occ
	return start - now
}
