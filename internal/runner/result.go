package runner

import (
	"encoding/json"
	"io"

	"partree/internal/memsim"
	"partree/internal/simalg"
	"partree/internal/trace"
)

// Result is the structured outcome of one spec. Time fields are
// simulated nanoseconds for the simulated backend and wall-clock
// nanoseconds for the native backend; WallNs is always the real time the
// run took on this machine. A cancelled or timed-out spec yields a
// partial Result with Err set and whatever was measured before the cut.
type Result struct {
	Spec Spec `json:"spec"`

	TreeNs    float64 `json:"tree_ns"`
	PartNs    float64 `json:"partition_ns"`
	ForceNs   float64 `json:"force_ns"`
	UpdateNs  float64 `json:"update_ns"`
	TotalNs   float64 `json:"total_ns"`
	TreeShare float64 `json:"tree_share"`

	LocksTotal    int64   `json:"locks_total"`
	LocksPerProc  []int64 `json:"locks_per_proc,omitempty"`
	Retries       int64   `json:"retries,omitempty"`
	Cells         int64   `json:"cells,omitempty"`
	Leaves        int64   `json:"leaves,omitempty"`
	MaxDepth      int64   `json:"max_depth,omitempty"`
	BarrierNsMean float64 `json:"barrier_ns_mean,omitempty"`
	Interactions  int64   `json:"interactions,omitempty"`

	// StepsDone counts the steps (or build repetitions) that completed;
	// it falls short of Spec.Steps only on cancellation or timeout.
	StepsDone int `json:"steps_done"`

	Protocol *memsim.ProtocolStats `json:"protocol,omitempty"`

	// WallNs is the real time the execution took on this machine,
	// excluding memoized body generation, which is reported separately as
	// GenNs (the full generation time for this spec's body set, charged
	// identically to every spec that shares it).
	WallNs int64  `json:"wall_ns"`
	GenNs  int64  `json:"gen_ns,omitempty"`
	Err    string `json:"error,omitempty"`
	// CheckFailure is the first tree-verification violation found when
	// the spec ran with Check set (empty otherwise).
	CheckFailure string `json:"check_failure,omitempty"`

	sim *simalg.Outcome
	// rec carries the run's trace recorder until Runner.execute writes it
	// to Spec.Trace — after the wall clock stops, so a traced spec's
	// WallNs never includes the file export.
	rec *trace.Recorder
	// transient marks a result that must not be memoized: an engine
	// admission rejection (queue full, draining) reflects momentary load,
	// not the spec, so an identical later request deserves a fresh try.
	transient bool
}

// TraceSummary returns the run's per-processor trace summary, when the
// spec ran with Trace set.
func (r Result) TraceSummary() (*trace.Summary, bool) {
	if r.rec == nil {
		return nil, false
	}
	return r.rec.Summarize(), true
}

// writeTrace exports the recorded trace to Spec.Trace. Called by
// Runner.execute outside the timed window; a no-op for untraced runs.
func (r *Result) writeTrace() error {
	if r.rec == nil || r.Spec.Trace == "" {
		return nil
	}
	return r.rec.WriteFile(r.Spec.Trace)
}

// Outcome returns the full simulated outcome behind a simulated-backend
// result (per-processor barrier times and protocol counters included).
func (r Result) Outcome() (simalg.Outcome, bool) {
	if r.sim == nil {
		return simalg.Outcome{}, false
	}
	return *r.sim, true
}

// Failed reports whether the spec did not run to completion, or ran but
// produced a tree that failed verification.
func (r Result) Failed() bool { return r.Err != "" || r.CheckFailure != "" }

// FailureMessage renders the failure for error output (empty when the
// spec succeeded).
func (r Result) FailureMessage() string {
	if r.Err != "" {
		return r.Err
	}
	if r.CheckFailure != "" {
		return "verification failed: " + r.CheckFailure
	}
	return ""
}

func resultFromOutcome(spec Spec, o simalg.Outcome) Result {
	return Result{
		Spec:          spec,
		TreeNs:        o.TreeNs,
		PartNs:        o.PartNs,
		ForceNs:       o.ForceNs,
		UpdateNs:      o.UpdateNs,
		TotalNs:       o.TotalNs(),
		TreeShare:     o.TreeShare(),
		LocksTotal:    o.TotalLocks(),
		LocksPerProc:  o.LocksPerProc,
		BarrierNsMean: o.MeanBarrierNs(),
		Interactions:  o.Interactions,
		StepsDone:     o.Steps,
		Protocol:      &o.Protocol,
		sim:           &o,
	}
}

// WriteJSON emits one JSON record per result, newline-delimited, for
// downstream tooling (the -json flag of every binary).
func WriteJSON(w io.Writer, results ...Result) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
