package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/phys"
)

func testInput(n, p int) *core.Input {
	b := phys.Generate(phys.ModelPlummer, n, 42)
	return &core.Input{Bodies: b, Assign: core.EvenAssign(n, p)}
}

func mustAcquire(t *testing.T, e *Engine, k Key) *Session {
	t.Helper()
	s, err := e.Acquire(context.Background(), k)
	if err != nil {
		t.Fatalf("Acquire(%v): %v", k, err)
	}
	return s
}

func TestSessionReuseSameKey(t *testing.T) {
	e := New(Options{MaxActive: 2})
	k := Key{Alg: core.LOCAL, P: 2, LeafCap: 8}
	in := testInput(512, 2)

	s1 := mustAcquire(t, e, k)
	tree, m := s1.Build(in)
	if m.TotalLocks() < 0 || tree.Root.IsNil() {
		t.Fatalf("bad first build")
	}
	s1.Release()

	s2 := mustAcquire(t, e, k)
	if s2 != s1 {
		t.Fatalf("same key did not reuse the pooled session")
	}
	tree2, _ := s2.Build(in)
	d := octree.BodyData{Pos: in.Bodies.Pos, Mass: in.Bodies.Mass}
	if err := octree.Check(tree2, d, octree.CheckOptions{Canonical: true, Moments: true, Tol: 1e-9}); err != nil {
		t.Fatalf("reused session built a bad tree: %v", err)
	}
	s2.Release()

	st := e.Stats()
	if st.Created != 1 || st.Reused != 1 {
		t.Fatalf("created=%d reused=%d, want 1/1", st.Created, st.Reused)
	}
	if st.Store.RetainedBytes == 0 || st.Store.Cells == 0 {
		t.Fatalf("pooled store reports no retained memory: %+v", st.Store)
	}
}

func TestDistinctKeysDistinctSessions(t *testing.T) {
	e := New(Options{MaxActive: 4})
	s1 := mustAcquire(t, e, Key{Alg: core.LOCAL, P: 2, LeafCap: 8})
	s2 := mustAcquire(t, e, Key{Alg: core.SPACE, P: 2, LeafCap: 8})
	s3 := mustAcquire(t, e, Key{Alg: core.LOCAL, P: 4, LeafCap: 8})
	if s1 == s2 || s1 == s3 || s2 == s3 {
		t.Fatalf("distinct keys shared a session")
	}
	s1.Release()
	s2.Release()
	s3.Release()
	if st := e.Stats(); st.Created != 3 || st.Idle != 3 {
		t.Fatalf("created=%d idle=%d, want 3/3", st.Created, st.Idle)
	}
}

func TestKeyNormalization(t *testing.T) {
	e := New(Options{MaxActive: 2})
	s1 := mustAcquire(t, e, Key{Alg: core.LOCAL}) // zero P/LeafCap/Margin
	s1.Release()
	s2 := mustAcquire(t, e, Key{Alg: core.LOCAL, P: 1, LeafCap: 8, Margin: 1e-4})
	defer s2.Release()
	if s1 != s2 {
		t.Fatalf("normalized-equal keys did not pool together")
	}
}

func TestConcurrentAcquireSameKeyGetsFreshSessions(t *testing.T) {
	e := New(Options{MaxActive: 2})
	k := Key{Alg: core.PARTREE, P: 2, LeafCap: 8}
	s1 := mustAcquire(t, e, k)
	s2 := mustAcquire(t, e, k) // s1 still held: must not be shared
	if s1 == s2 {
		t.Fatalf("held session handed out twice")
	}
	s1.Release()
	s2.Release()
}

func TestAdmissionQueueFullAndDeadline(t *testing.T) {
	e := New(Options{MaxActive: 1, MaxQueue: 1, MaxIdle: 4})
	k := Key{Alg: core.LOCAL, P: 1, LeafCap: 8}
	held := mustAcquire(t, e, k)

	// One waiter is admitted to the queue...
	waiterErr := make(chan error, 1)
	waiterGot := make(chan *Session, 1)
	go func() {
		s, err := e.Acquire(context.Background(), k)
		waiterGot <- s
		waiterErr <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// ...the next is rejected immediately.
	if _, err := e.Acquire(context.Background(), k); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-queue acquire: got %v, want ErrQueueFull", err)
	}

	// A queued acquire honors its context deadline. (It occupies the one
	// queue slot only briefly; run it after the rejection check above.)
	held.Release()
	s := <-waiterGot
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.Acquire(ctx, k); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline acquire: got %v, want DeadlineExceeded", err)
	}
	s.Release()

	st := e.Stats()
	if st.RejectedFull != 1 || st.RejectedCancelled != 1 {
		t.Fatalf("rejections full=%d cancelled=%d, want 1/1", st.RejectedFull, st.RejectedCancelled)
	}
}

func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	e := New(Options{MaxActive: 2})
	k := Key{Alg: core.SPACE, P: 2, LeafCap: 8}
	held := mustAcquire(t, e, k)

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainErr <- e.Drain(ctx)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !e.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatalf("drain never marked the engine draining")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := e.Acquire(context.Background(), k); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire during drain: got %v, want ErrDraining", err)
	}

	// The in-flight session finishes its work and releases; only then
	// does Drain return.
	select {
	case err := <-drainErr:
		t.Fatalf("drain returned before the in-flight build released: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	held.Release()
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := e.Stats()
	if st.Idle != 0 || st.InUse != 0 {
		t.Fatalf("post-drain idle=%d inUse=%d, want 0/0", st.Idle, st.InUse)
	}
	// Drain again: idempotent.
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestMaxIdleEvictsLRU(t *testing.T) {
	e := New(Options{MaxActive: 4, MaxIdle: 2})
	k1 := Key{Alg: core.LOCAL, P: 1, LeafCap: 8}
	k2 := Key{Alg: core.LOCAL, P: 2, LeafCap: 8}
	k3 := Key{Alg: core.LOCAL, P: 4, LeafCap: 8}
	s1 := mustAcquire(t, e, k1)
	s2 := mustAcquire(t, e, k2)
	s3 := mustAcquire(t, e, k3)
	s1.Release() // oldest
	s2.Release()
	s3.Release() // newest; s1 evicted

	st := e.Stats()
	if st.Evicted != 1 || st.Idle != 2 {
		t.Fatalf("evicted=%d idle=%d, want 1/2", st.Evicted, st.Idle)
	}
	if got := mustAcquire(t, e, k1); got == s1 {
		t.Fatalf("evicted session came back from the pool")
	} else {
		got.Release()
	}
}

// TestUpdateSessionServesFreshRequests checks the reuse contract for the
// stateful builder: UPDATE keeps its tree between steps, but a new
// request starting at Step 0 must rebuild from scratch and verify clean
// even on a pooled session that previously served a different body set.
func TestUpdateSessionServesFreshRequests(t *testing.T) {
	e := New(Options{MaxActive: 1})
	k := Key{Alg: core.UPDATE, P: 2, LeafCap: 8}

	s := mustAcquire(t, e, k)
	inA := testInput(700, 2)
	s.Build(inA) // step 0: fresh build
	inA.Step = 1
	s.Build(inA) // step 1: incremental repair
	s.Release()

	s2 := mustAcquire(t, e, k)
	if s2 != s {
		t.Fatalf("UPDATE session not pooled")
	}
	inB := testInput(1200, 2) // different size, new request
	tree, _ := s2.Build(inB)
	d := octree.BodyData{Pos: inB.Bodies.Pos, Mass: inB.Bodies.Mass}
	if err := octree.Check(tree, d, octree.CheckOptions{Canonical: true, Moments: true, Tol: 1e-9}); err != nil {
		t.Fatalf("pooled UPDATE session failed a fresh step-0 request: %v", err)
	}
	s2.Release()
}
