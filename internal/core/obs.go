package core

import (
	"sync/atomic"

	"partree/internal/octree"
)

// Package-level per-algorithm build totals, fed from each completed
// build's *Metrics by the wrapper New installs around every builder.
// Builders themselves stay allocation-free and untouched: the only cost
// is a handful of atomic adds per *build* (never per body insert), paid
// after the build's timed phases have finished. The totals are monotone
// process-lifetime counters; internal/obs exposes them over HTTP as the
// partree_build_* series (see internal/runner's registration).
//
// core deliberately does not import internal/obs — these are plain
// atomics, and the exposition layer adapts them, so the algorithms stay
// leaf dependencies.

// BuildTotals is a snapshot of one algorithm's cumulative build counts.
type BuildTotals struct {
	Builds  int64 // completed Build calls
	Locks   int64 // lock acquisitions across those builds
	Cells   int64 // cells allocated
	Leaves  int64 // leaves allocated
	Retries int64 // lost-race descent restarts
	Bodies  int64 // bodies loaded into trees
	Moved   int64 // UPDATE: bodies that crossed a leaf boundary
}

// algTotals is the atomic backing store, padded so algorithms written
// from concurrent builds don't share cache lines.
type algTotals struct {
	builds, locks, cells, leaves, retries, bodies, moved atomic.Int64
	_                                                    [8]int64
}

var buildTotals [NumAlgorithms]algTotals

// publishBuild folds one completed build's metrics into the totals.
func publishBuild(m *Metrics) {
	a := int(m.Alg)
	if a < 0 || a >= NumAlgorithms {
		return
	}
	t := &buildTotals[a]
	t.builds.Add(1)
	t.locks.Add(m.TotalLocks())
	t.cells.Add(m.TotalCells())
	t.leaves.Add(m.TotalLeaves())
	t.retries.Add(m.TotalRetries())
	t.moved.Add(m.TotalBodiesMoved())
	var bodies int64
	for i := range m.PerP {
		bodies += m.PerP[i].BodiesBuilt
	}
	t.bodies.Add(bodies)
}

// BuildTotalsFor snapshots the cumulative totals for one algorithm.
func BuildTotalsFor(a Algorithm) BuildTotals {
	t := &buildTotals[int(a)]
	return BuildTotals{
		Builds:  t.builds.Load(),
		Locks:   t.locks.Load(),
		Cells:   t.cells.Load(),
		Leaves:  t.leaves.Load(),
		Retries: t.retries.Load(),
		Bodies:  t.bodies.Load(),
		Moved:   t.moved.Load(),
	}
}

// obsBuilder wraps a builder to publish its per-build metrics. It is
// installed by New, so every builder constructed through the public API
// feeds the live totals; whitebox constructions in tests bypass it.
type obsBuilder struct {
	Builder
}

func (b obsBuilder) Build(in *Input) (t *octree.Tree, m *Metrics) {
	t, m = b.Builder.Build(in)
	publishBuild(m)
	return t, m
}

// StoresOf returns the octree stores a builder retains across Build
// calls — the memory a pooled session keeps warm. It unwraps the obs
// wrapper New installs; builders constructed outside this package (or
// future algorithms without a persistent store) yield nil.
func StoresOf(b Builder) []*octree.Store {
	if ob, ok := b.(obsBuilder); ok {
		b = ob.Builder
	}
	switch x := b.(type) {
	case *loadBuilder:
		return []*octree.Store{x.store}
	case *updateBuilder:
		return []*octree.Store{x.store}
	case *partreeBuilder:
		return []*octree.Store{x.store}
	case *spaceBuilder:
		return []*octree.Store{x.store}
	}
	return nil
}
