package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"
)

// Health is the /healthz document: build identity, uptime, and whatever
// readiness the binary reports. It is JSON so dashboards and the smoke
// target can assert on fields instead of scraping text.
type Health struct {
	Status    string  `json:"status"` // "ok" while the process serves
	Binary    string  `json:"binary"`
	PID       int     `json:"pid"`
	GoVersion string  `json:"go_version"`
	Procs     int     `json:"gomaxprocs"`
	StartedAt string  `json:"started_at"` // RFC 3339
	UptimeSec float64 `json:"uptime_seconds"`
	Ready     bool    `json:"ready"`
}

// Server is the observability endpoint of one binary: /metrics (the
// registry's Prometheus rendering), /healthz (JSON), /debug/pprof/* (CPU
// and memory profiling mid-sweep), and /debug/vars (expvar).
type Server struct {
	reg     *Registry
	binary  string
	started time.Time
	ready   func() bool
	ln      net.Listener
	srv     *http.Server
}

// Serve starts the observability server on addr (e.g. ":9090" or
// "127.0.0.1:0"). It binds synchronously — so the caller can report the
// resolved address, and ":0" works for tests and parallel CI — then
// serves in a background goroutine until Close. ready, when non-nil, is
// sampled by /healthz; a nil ready always reports true.
func Serve(addr, binary string, reg *Registry, ready func() bool) (*Server, error) {
	return ServeWith(addr, binary, reg, ready, nil)
}

// ServeWith is Serve with extra routes: mount, when non-nil, is called
// with the mux before the server starts, so a binary can hang its own
// API beside /metrics, /healthz and /debug/pprof on one listener (how
// cmd/partreed mounts /v1/*). Mounted patterns must not collide with the
// built-in ones.
func ServeWith(addr, binary string, reg *Registry, ready func() bool, mount func(*http.ServeMux)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, binary: binary, started: time.Now(), ready: ready, ln: ln}
	mux := http.NewServeMux()
	if mount != nil {
		mount(mux)
	}
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the resolved listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns "http://host:port" for the resolved address.
func (s *Server) URL() string {
	host, port, _ := net.SplitHostPort(s.Addr())
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops the listener but lets in-flight handlers finish writing
// (bounded by ctx) — what a graceful drain wants, where Close cuts them.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Health snapshots the /healthz document.
func (s *Server) Health() Health {
	ready := true
	if s.ready != nil {
		ready = s.ready()
	}
	return Health{
		Status:    "ok",
		Binary:    s.binary,
		PID:       os.Getpid(),
		GoVersion: runtime.Version(),
		Procs:     runtime.GOMAXPROCS(0),
		StartedAt: s.started.UTC().Format(time.RFC3339),
		UptimeSec: time.Since(s.started).Seconds(),
		Ready:     ready,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Health())
}
