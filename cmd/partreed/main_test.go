package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"partree/internal/runner"
)

// startDaemon brings a daemon up on an ephemeral port and tears it down
// with the test.
func startDaemon(t *testing.T, cfg daemonConfig) *daemon {
	t.Helper()
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	if err := d.start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { d.srv.Close() })
	return d
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeResult(t *testing.T, r io.Reader) runner.Result {
	t.Helper()
	var res runner.Result
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	return res
}

// buildSpec is a small verified native build-only spec; vary to avoid
// the daemon's memoizing cache collapsing distinct requests.
func buildSpec(n, p int) map[string]any {
	return map[string]any{
		"backend": "native", "algorithm": "LOCAL", "build_only": true,
		"procs": p, "bodies": n, "steps": 2, "check": true,
	}
}

// metricValue extracts the first sample of a family from a Prometheus
// text page (ignoring labeled series' labels).
func metricValue(t *testing.T, page, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? (\S+)$`)
	m := re.FindStringSubmatch(page)
	if m == nil {
		t.Fatalf("metric %s not found in /metrics", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: bad value %q", name, m[1])
	}
	return v
}

func TestDaemonConcurrentBuildsAndMetrics(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, maxQueue: 16, drainTimeout: 10 * time.Second})
	url := d.srv.URL()

	// Concurrent builds: distinct sizes plus one duplicated spec that
	// must share the memoized execution. All come back verified.
	sizes := []int{1500, 2000, 2500, 3000, 2000}
	var wg sync.WaitGroup
	results := make([]runner.Result, len(sizes))
	codes := make([]int, len(sizes))
	for i, n := range sizes {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			resp := postJSON(t, url+"/v1/build", buildSpec(n, 2))
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				results[i] = decodeResult(t, resp.Body)
			}
		}(i, n)
	}
	wg.Wait()
	for i, res := range results {
		if codes[i] != http.StatusOK {
			t.Fatalf("build %d: status %d", i, codes[i])
		}
		if res.Failed() {
			t.Fatalf("build %d failed: %s", i, res.FailureMessage())
		}
		if res.StepsDone != 2 || res.Cells == 0 || res.Leaves == 0 {
			t.Fatalf("build %d: implausible result %+v", i, res)
		}
	}

	// The engine pool's gauges moved: sessions were created, the stores
	// they retain are visible, and nothing is left running or queued.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	pg := string(page)
	if v := metricValue(t, pg, "partree_engine_sessions_created_total"); v < 1 {
		t.Errorf("sessions_created_total = %v, want >= 1", v)
	}
	if v := metricValue(t, pg, "partree_store_retained_bytes"); v <= 0 {
		t.Errorf("store_retained_bytes = %v, want > 0 (pooled stores retained)", v)
	}
	if v := metricValue(t, pg, "partree_engine_sessions_in_use"); v != 0 {
		t.Errorf("sessions_in_use = %v after all builds returned, want 0", v)
	}
	if v := metricValue(t, pg, "partree_engine_queue_depth"); v != 0 {
		t.Errorf("queue_depth = %v at idle, want 0", v)
	}
	// Four distinct specs executed through the pool bounded at 2
	// concurrent builds; the duplicate was a cache hit.
	created := metricValue(t, pg, "partree_engine_sessions_created_total")
	reused := metricValue(t, pg, "partree_engine_sessions_reused_total")
	if created > 2 {
		t.Errorf("sessions_created_total = %v, want <= max-active (2)", created)
	}
	if created+reused < 4 {
		t.Errorf("created(%v)+reused(%v) = %v acquisitions, want >= 4", created, reused, created+reused)
	}
}

func TestDaemonSweepStreamsNDJSON(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, maxQueue: 16, drainTimeout: 10 * time.Second})
	specs := []map[string]any{buildSpec(1024, 1), buildSpec(1536, 2), buildSpec(2048, 2)}
	resp := postJSON(t, d.srv.URL()+"/v1/sweep", specs)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("sweep: content-type %q", ct)
	}
	var got int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var res runner.Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("record %d: %v", got, err)
		}
		if res.Failed() {
			t.Fatalf("record %d failed: %s", got, res.FailureMessage())
		}
		got++
	}
	if got != len(specs) {
		t.Fatalf("sweep streamed %d records, want %d", got, len(specs))
	}
}

func TestDaemonDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, maxQueue: 4, drainTimeout: 2 * time.Minute})
	url := d.srv.URL()

	// A build slow enough to still be in flight when the drain begins.
	// The in-use poll below catches it within milliseconds of session
	// acquisition, so it need only outlast that — kept modest so the
	// post-drain wait stays well inside the timeout under -race.
	slow := map[string]any{
		"backend": "native", "algorithm": "LOCAL",
		"procs": 2, "bodies": 10000, "steps": 4,
	}
	type answer struct {
		code int
		res  runner.Result
	}
	slowDone := make(chan answer, 1)
	go func() {
		resp := postJSON(t, url+"/v1/build", slow)
		defer resp.Body.Close()
		a := answer{code: resp.StatusCode}
		if resp.StatusCode == http.StatusOK {
			a.res = decodeResult(t, resp.Body)
		}
		slowDone <- a
	}()

	// Wait until the build holds an engine session, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for d.eng.Stats().InUse == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow build never acquired a session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainDone := make(chan error, 1)
	go func() { drainDone <- d.drain(context.Background()) }()
	for !d.draining.Load() {
		time.Sleep(time.Millisecond)
	}

	// New work is rejected with 503 while the drain runs.
	resp := postJSON(t, url+"/v1/build", buildSpec(1024, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("build during drain: status %d, want 503", resp.StatusCode)
	}
	var e map[string]string
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if e["error"] == "" {
		t.Fatalf("503 carried no error document")
	}

	// The in-flight build is answered in full, and the drain completes.
	a := <-slowDone
	if a.code != http.StatusOK {
		t.Fatalf("in-flight build: status %d, want 200", a.code)
	}
	if a.res.Failed() {
		t.Fatalf("in-flight build failed: %s", a.res.FailureMessage())
	}
	if a.res.StepsDone != 4 {
		t.Fatalf("in-flight build cut short: %d/4 steps", a.res.StepsDone)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := d.eng.Stats(); st.InUse != 0 || st.Idle != 0 {
		t.Fatalf("post-drain pool not empty: %+v", st)
	}

	// The listener is down: a fresh connection is refused.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatalf("listener still accepting after drain")
	}
}
