package phys

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, m := range []Model{ModelPlummer, ModelUniform, ModelTwoClusters} {
		a := Generate(m, 500, 7)
		b := Generate(m, 500, 7)
		for i := range a.Pos {
			if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
				t.Fatalf("%v: generation not deterministic at body %d", m, i)
			}
		}
		c := Generate(m, 500, 8)
		same := true
		for i := range a.Pos {
			if a.Pos[i] != c.Pos[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: different seeds produced identical systems", m)
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	for _, m := range []Model{ModelPlummer, ModelUniform, ModelTwoClusters} {
		b := Generate(m, 2000, 1)
		if err := b.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := b.TotalMass(); math.Abs(got-1) > 1e-9 {
			t.Fatalf("%v: total mass = %g, want 1", m, got)
		}
	}
}

func TestPlummerCentrallyCondensed(t *testing.T) {
	b := Generate(ModelPlummer, 20000, 3)
	com := b.CenterOfMass()
	inner, outer := 0, 0
	for i := range b.Pos {
		if b.Pos[i].Dist(com) < 1 {
			inner++
		} else {
			outer++
		}
	}
	// A Plummer sphere holds ~35% of its mass inside one scale radius;
	// uniform-in-bounding-cube would hold far less. Loose bound: >20%.
	if frac := float64(inner) / float64(b.N()); frac < 0.20 {
		t.Fatalf("inner-mass fraction %.3f too small for a Plummer sphere", frac)
	}
}

func TestPlummerNearVirial(t *testing.T) {
	b := Generate(ModelPlummer, 4000, 11)
	ke := b.KineticEnergy()
	pe := b.PotentialEnergy(0)
	// Virial equilibrium: 2KE + PE = 0. Sampling noise allows slack.
	q := -2 * ke / pe
	if q < 0.6 || q > 1.4 {
		t.Fatalf("virial ratio -2KE/PE = %.3f, want ≈1", q)
	}
}

func TestUniformStaysInUnitCube(t *testing.T) {
	b := Generate(ModelUniform, 5000, 5)
	for i, p := range b.Pos {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 || p.Z < 0 || p.Z >= 1 {
			t.Fatalf("body %d at %v escapes the unit cube", i, p)
		}
	}
}

func TestTwoClustersSeparated(t *testing.T) {
	b := Generate(ModelTwoClusters, 4000, 9)
	left, right := 0, 0
	for _, p := range b.Pos {
		if p.X > 1 {
			right++
		}
		if p.X < -1 {
			left++
		}
	}
	if left < b.N()/4 || right < b.N()/4 {
		t.Fatalf("clusters not separated: left=%d right=%d of %d", left, right, b.N())
	}
}

func TestKickDrift(t *testing.T) {
	b := NewBodies(2)
	b.Mass[0], b.Mass[1] = 1, 1
	b.Acc[0].X = 2
	b.Vel[1].Y = 3
	b.Kick(0, 2, 1.0) // half-kick: v += a*0.5
	if b.Vel[0].X != 1 {
		t.Fatalf("kick: vel = %v, want x=1", b.Vel[0])
	}
	b.Drift(0, 2, 2.0)
	if b.Pos[0].X != 2 || b.Pos[1].Y != 6 {
		t.Fatalf("drift: pos = %v %v", b.Pos[0], b.Pos[1])
	}
}

func TestKickDriftRangeRespected(t *testing.T) {
	b := NewBodies(4)
	for i := range b.Acc {
		b.Acc[i].X = 1
		b.Vel[i].X = 1
	}
	b.Kick(1, 3, 2.0)
	b.Drift(1, 3, 1.0)
	if b.Vel[0].X != 1 || b.Vel[3].X != 1 || b.Pos[0].X != 0 || b.Pos[3].X != 0 {
		t.Fatal("kick/drift touched bodies outside the range")
	}
	if b.Vel[1].X != 2 || b.Pos[2].X != 2 {
		t.Fatal("kick/drift missed bodies inside the range")
	}
}

func TestEnergyTwoBody(t *testing.T) {
	b := NewBodies(2)
	b.Mass[0], b.Mass[1] = 2, 3
	b.Pos[1].X = 2
	b.Vel[0].Y = 1
	ke := b.KineticEnergy()
	if ke != 1 { // ½·2·1²
		t.Fatalf("KE = %g, want 1", ke)
	}
	pe := b.PotentialEnergy(0)
	if pe != -3 { // -2·3/2
		t.Fatalf("PE = %g, want -3", pe)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Generate(ModelUniform, 10, 1)
	c := a.Clone()
	c.Pos[0].X = 99
	if a.Pos[0].X == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	b := Generate(ModelUniform, 10, 1)
	b.Pos[3].X = math.NaN()
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted NaN position")
	}
	b = Generate(ModelUniform, 10, 1)
	b.Mass[2] = -1
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted negative mass")
	}
	b = Generate(ModelUniform, 10, 1)
	b.Vel = b.Vel[:5]
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted diverging slice lengths")
	}
}

func TestMomentumNearZero(t *testing.T) {
	b := Generate(ModelPlummer, 10000, 2)
	p := b.Momentum()
	// Drift-free Plummer sphere: momentum is sampling noise ~ m*v/sqrt(N).
	if p.Len() > 0.05 {
		t.Fatalf("net momentum %v too large", p)
	}
}
