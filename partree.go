// Package partree is a from-scratch Go reproduction of Shan & Singh,
// "Parallel Tree Building on a Range of Shared Address Space
// Multiprocessors: Algorithms and Application Performance" (IPPS 1998).
//
// The repository contains:
//
//   - internal/core: the paper's five parallel Barnes-Hut tree-building
//     algorithms (ORIG, LOCAL, UPDATE, PARTREE, SPACE) as native
//     concurrent Go;
//   - internal/octree, internal/phys, internal/force, internal/partition,
//     internal/nbody: the full N-body application around them;
//   - internal/memsim: a deterministic simulator of the paper's four 1998
//     shared-address-space machines (snoopy bus, CC-NUMA directory,
//     page-based HLRC SVM, fine-grain software SC);
//   - internal/simalg + internal/harness: the five algorithms re-expressed
//     over the simulator, and every table/figure of the paper's evaluation
//     as a regenerable experiment.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// modelling decisions, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmarks in bench_test.go regenerate each experiment at
// reduced scale; cmd/paperrepro runs them at full scale.
package partree
