package memsim

// dirProtocol models directory-based coherence over physically distributed
// memory. With software=false it is the SGI Origin 2000: hardware handlers,
// local vs remote vs dirty-3-hop miss costs, per-home-hub occupancy. With
// software=true it is Typhoon-0's fine-grain sequentially consistent mode:
// the same structure, but every miss also occupies a software protocol
// handler on the home node, which raises both latency and contention. In
// both cases synchronization carries no protocol activity beyond the
// memory transactions themselves — the crucial difference from HLRC.
type dirProtocol struct {
	pl       Platform
	p        int
	software bool
	lines    map[uint64]lineState
	touched  map[uint64]struct{}
	homes    *homeMap
	hubs     []resource
	st       ProtocolStats
}

func newDirProtocol(pl Platform, p int, software bool) *dirProtocol {
	if p > 64 {
		panic("memsim: more than 64 processors not supported")
	}
	return &dirProtocol{
		pl:       pl,
		p:        p,
		software: software,
		lines:    make(map[uint64]lineState),
		touched:  make(map[uint64]struct{}),
		homes:    newHomeMap(pl.PageSize, pl.numNodes(p)),
		hubs:     make([]resource, pl.numNodes(p)),
	}
}

func (d *dirProtocol) lineOf(addr uint64) uint64 { return addr / uint64(d.pl.LineSize) }

func (d *dirProtocol) Access(proc int, addr uint64, write bool, now float64) float64 {
	d.st.Accesses++
	ln := d.lineOf(addr)
	s, ok := d.lines[ln]
	if !ok {
		s.owner = -1
	}
	bit := uint64(1) << uint(proc)

	if write {
		if s.owner == int32(proc) {
			d.st.Hits++
			return d.pl.HitNs
		}
	} else if s.sharers&bit != 0 {
		d.st.Hits++
		return d.pl.HitNs
	}

	if _, seen := d.touched[ln]; !seen {
		d.st.ColdMisses++
		d.touched[ln] = struct{}{}
	} else {
		d.st.CoherenceMiss++
	}

	home := d.homes.nodeOf(addr)
	myNode := d.pl.nodeOf(proc, d.p)
	var lat float64
	switch {
	case s.owner >= 0 && s.owner != int32(proc) && d.pl.nodeOf(int(s.owner), d.p) != myNode:
		lat = d.pl.DirtyMissNs
		d.st.DirtyMisses++
	case home == myNode:
		lat = d.pl.LocalMissNs
		d.st.LocalMisses++
	default:
		lat = d.pl.RemoteMissNs
		d.st.RemoteMisses++
	}
	// The home's hub (hardware) or protocol processor (software) is a
	// serial resource.
	wait := d.hubs[home].serve(now, d.pl.OccupancyNs)
	d.st.ContentionNs += wait
	lat += wait
	if d.software {
		lat += d.pl.SoftNs // handler execution on the coprocessor
	}

	if write {
		n := popcount(s.sharers &^ bit)
		if n > 0 {
			d.st.Invalidations += int64(n)
			lat += float64(n) * d.pl.InvalNs
		}
		s.sharers = bit
		s.owner = int32(proc)
	} else {
		s.sharers |= bit
		s.owner = -1
	}
	d.lines[ln] = s
	return lat
}

func (d *dirProtocol) AcquireLock(proc, lockID int, now float64) float64 {
	// An LL/SC (or fetch&op at the home hub) pays a remote transaction.
	home := lockID % len(d.hubs)
	wait := d.hubs[home].serve(now, d.pl.OccupancyNs)
	d.st.ContentionNs += wait
	lat := d.pl.LockNs + wait
	if d.software {
		lat += d.pl.SoftNs
	}
	return lat
}

func (d *dirProtocol) ReleaseLock(proc, lockID int, now float64) float64 {
	return d.pl.HitNs
}

func (d *dirProtocol) BarrierWork(arrivals []float64, procs []int) (float64, []float64) {
	release := maxFloat(arrivals) + d.pl.BarrierBase + d.pl.BarrierPerP*float64(len(procs))
	return release, make([]float64, len(procs))
}

func (d *dirProtocol) SetHome(lo, hi uint64, node int) { d.homes.set(lo, hi, node) }

func (d *dirProtocol) Stats() ProtocolStats { return d.st }

// homeMap assigns memory pages to nodes: round-robin by default, with
// explicit placements (first-touch-style) from SetHome.
type homeMap struct {
	pageSize uint64
	nodes    int
	explicit map[uint64]int // page -> node
}

func newHomeMap(pageSize, nodes int) *homeMap {
	if pageSize <= 0 {
		pageSize = 4096
	}
	if nodes < 1 {
		nodes = 1
	}
	return &homeMap{pageSize: uint64(pageSize), nodes: nodes, explicit: make(map[uint64]int)}
}

func (h *homeMap) pageOf(addr uint64) uint64 { return addr / h.pageSize }

func (h *homeMap) nodeOf(addr uint64) int {
	pg := h.pageOf(addr)
	if n, ok := h.explicit[pg]; ok {
		return n
	}
	return int(pg % uint64(h.nodes))
}

func (h *homeMap) set(lo, hi uint64, node int) {
	if node < 0 {
		node = 0
	}
	if node >= h.nodes {
		node = node % h.nodes
	}
	for pg := lo / h.pageSize; pg*h.pageSize < hi; pg++ {
		h.explicit[pg] = node
	}
}
