package runner

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/engine"
	"partree/internal/phys"
	"partree/internal/reqtrace"
)

// Runner executes specs with a bounded worker pool and a memoizing,
// concurrency-safe result cache. Identical specs share one execution no
// matter how many goroutines request them; distinct specs run
// concurrently up to the worker bound. Bodies are memoized per
// (model, n, seed) and shared read-only across runs, so every backend
// sees the same deterministic initial conditions. Both caches are
// bounded LRUs (see Config), so a long-lived process — partreed serving
// requests forever — holds a fixed working set instead of leaking.
// Native builds run through a shared engine.Engine, reusing pooled
// builder sessions instead of allocating a store per spec.
type Runner struct {
	workers int
	sem     chan struct{}
	eng     *engine.Engine

	// execs counts spec executions (not cache hits); tests assert a spec
	// requested from many goroutines runs exactly once.
	execs int64

	mu         sync.Mutex
	cache      map[string]*entry
	cacheLRU   *list.List // *entry, front = most recently used
	maxResults int
	bodies     map[string]*bodiesEntry
	bodiesLRU  *list.List // *bodiesEntry, front = most recently used
	maxBodies  int

	// obs holds the live instrumentation counters (see obs.go). They are
	// always maintained — a few atomic adds per spec — and surfaced over
	// HTTP only when RegisterObs attaches them to a registry.
	obs *runnerObs
}

type entry struct {
	key  string
	spec Spec // normalized
	done chan struct{}
	res  Result
	elem *list.Element
	// rq is the initiating request's span context. execute runs on its
	// own goroutine with a fresh context, so the request handle is
	// carried through the entry; cache-hit followers share the entry
	// (and the execution's spans belong to the request that caused it).
	rq *reqtrace.Req
	// transient marks a result that must not be memoized (an engine
	// admission rejection): waiters still observe it, but the entry is
	// dropped so a later identical request retries.
	transient bool
}

type bodiesEntry struct {
	key   string
	done  chan struct{}
	b     *phys.Bodies
	genNs int64
	err   error
	elem  *list.Element
}

// Config sizes a runner for its lifetime. The zero value of every field
// selects the documented default, so Config{} behaves like New(0).
type Config struct {
	// Workers bounds concurrent spec executions (0 = GOMAXPROCS).
	Workers int
	// ResultCacheEntries bounds the memoized spec→result cache; past it
	// the least recently used completed entry is evicted (0 = 4096,
	// generous enough that CLI sweeps never evict).
	ResultCacheEntries int
	// BodiesCacheEntries bounds the (model, n, seed) body memo the same
	// way (0 = 64).
	BodiesCacheEntries int
	// Engine, when non-nil, is the builder-session pool native specs
	// execute through; nil creates one sized to Workers with no
	// admission queue pressure (the worker pool already bounds entry).
	Engine *engine.Engine
}

// New creates a runner; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Runner {
	return NewWithConfig(Config{Workers: workers})
}

// NewWithConfig creates a runner with explicit cache bounds and,
// optionally, a shared engine.
func NewWithConfig(cfg Config) *Runner {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ResultCacheEntries <= 0 {
		cfg.ResultCacheEntries = 4096
	}
	if cfg.BodiesCacheEntries <= 0 {
		cfg.BodiesCacheEntries = 64
	}
	if cfg.Engine == nil {
		// Sized so the runner's own worker pool is the only gate: every
		// worker can hold a session and queue behind a busy pool without
		// ever seeing ErrQueueFull.
		cfg.Engine = engine.New(engine.Options{MaxActive: cfg.Workers, MaxQueue: 2 * cfg.Workers})
	}
	return &Runner{
		workers:    cfg.Workers,
		sem:        make(chan struct{}, cfg.Workers),
		eng:        cfg.Engine,
		cache:      map[string]*entry{},
		cacheLRU:   list.New(),
		maxResults: cfg.ResultCacheEntries,
		bodies:     map[string]*bodiesEntry{},
		bodiesLRU:  list.New(),
		maxBodies:  cfg.BodiesCacheEntries,
		obs:        newRunnerObs(),
	}
}

// Workers returns the pool bound.
func (r *Runner) Workers() int { return r.workers }

// Engine returns the builder-session pool native specs execute through
// (for drain wiring and obs registration).
func (r *Runner) Engine() *engine.Engine { return r.eng }

// Run executes (or recalls) one spec. It blocks until the spec's result
// is available or ctx is done; on cancellation it returns immediately
// with an error Result while any in-flight execution completes into the
// cache for later callers. A context that is already cancelled on entry
// always yields the cancellation error, even if the result is cached.
// The per-spec Timeout bounds the execution itself, independently of
// the caller's context.
func (r *Runner) Run(ctx context.Context, spec Spec) Result {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Result{Spec: spec, Err: err.Error()}
	}
	if err := ctx.Err(); err != nil {
		return Result{Spec: spec, Err: fmt.Sprintf("runner: %v", err)}
	}
	key := spec.Key()
	r.obs.runs.Add(1)
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &entry{key: key, spec: spec, done: make(chan struct{}), rq: reqtrace.FromContext(ctx)}
		r.cache[key] = e
		e.elem = r.cacheLRU.PushFront(e)
		r.evictResultsLocked()
		r.obs.cacheMisses.Add(1)
		go r.execute(e)
	} else {
		if e.elem != nil {
			r.cacheLRU.MoveToFront(e.elem)
		}
		r.obs.cacheHits.Add(1)
	}
	r.mu.Unlock()
	select {
	case <-e.done:
		return e.res
	case <-ctx.Done():
		return Result{Spec: spec, Err: fmt.Sprintf("runner: %v", ctx.Err())}
	}
}

// evictResultsLocked drops least-recently-used *completed* entries until
// the result cache is back under its bound. In-flight entries are never
// evicted (their execution must publish somewhere), so under a burst of
// distinct in-flight specs the cache may transiently exceed the bound by
// the in-flight count. Caller holds r.mu.
func (r *Runner) evictResultsLocked() {
	for el := r.cacheLRU.Back(); el != nil && r.cacheLRU.Len() > r.maxResults; {
		prev := el.Prev()
		e := el.Value.(*entry)
		select {
		case <-e.done:
			r.cacheLRU.Remove(el)
			e.elem = nil
			delete(r.cache, e.key)
			r.obs.resultEvictions.Add(1)
		default: // still executing; skip
		}
		el = prev
	}
}

// evictBodiesLocked is evictResultsLocked for the body memo. Evicting a
// body set only drops the memo reference; executions already holding the
// *phys.Bodies keep it alive until they finish.
func (r *Runner) evictBodiesLocked() {
	for el := r.bodiesLRU.Back(); el != nil && r.bodiesLRU.Len() > r.maxBodies; {
		prev := el.Prev()
		be := el.Value.(*bodiesEntry)
		select {
		case <-be.done:
			r.bodiesLRU.Remove(el)
			be.elem = nil
			delete(r.bodies, be.key)
			r.obs.bodyEvictions.Add(1)
		default:
		}
		el = prev
	}
}

// RunAll fans the specs out across the worker pool and returns their
// results in spec order — concurrency never reorders or drops cells.
// Fan-out is bounded at the worker count: a full paperrepro sweep must
// not park one goroutine per grid cell, so a fixed set of launchers
// pulls spec indices from a shared counter instead. Launchers block in
// Run (not on a worker slot), so duplicated specs sharing one memoized
// execution cannot deadlock the pool.
func (r *Runner) RunAll(ctx context.Context, specs []Spec) []Result {
	return r.RunAllProgress(ctx, specs, nil)
}

// RunAllProgress is RunAll with a completion callback: done(i, res) fires
// once per spec as its result becomes available, from a launcher
// goroutine — so live progress (the harness's cells-done gauge) can tick
// mid-sweep. done may be nil.
func (r *Runner) RunAllProgress(ctx context.Context, specs []Spec, done func(i int, res Result)) []Result {
	out := make([]Result, len(specs))
	launchers := r.workers
	if launchers > len(specs) {
		launchers = len(specs)
	}
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < launchers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(specs) {
					return
				}
				out[i] = r.Run(ctx, specs[i])
				if done != nil {
					done(i, out[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// execute runs one cache entry to completion under a worker slot. Body
// generation happens before the wall clock starts: body sets are memoized
// across specs, so charging generation to whichever spec ran first would
// make sweep-cell wall times incomparable. GenNs instead reports the full
// generation time of the spec's body set, identically on every spec that
// shares it.
func (r *Runner) execute(e *entry) {
	r.obs.queueDepth.Add(1)
	var qstart time.Time
	if e.rq != nil {
		qstart = time.Now()
	}
	r.sem <- struct{}{}
	e.rq.SpanSince("queue", qstart)
	r.obs.queueDepth.Add(-1)
	r.obs.started.Add(1)
	r.obs.inFlight.Add(1)
	defer func() { <-r.sem }()
	// finish publishes the result. Counters settle *before* e.done is
	// closed, so a caller that just saw its Run return can audit the obs
	// counters against the cache without racing them (AuditObs relies on
	// this ordering). Transient results (engine admission rejections) are
	// published to waiters but dropped from the cache, so a later
	// identical request retries once the pressure has passed.
	finish := func(res Result) {
		e.res = res
		e.transient = res.transient
		if e.transient {
			r.mu.Lock()
			if e.elem != nil {
				r.cacheLRU.Remove(e.elem)
				e.elem = nil
			}
			delete(r.cache, e.key)
			r.obs.transientDropped.Add(1)
			r.mu.Unlock()
		}
		r.obs.observeExecuted(res)
		r.obs.inFlight.Add(-1)
		close(e.done)
	}
	atomic.AddInt64(&r.execs, 1)
	// The execution context is fresh (memoized results outlive their
	// initiating request) but carries the initiator's span handle so
	// the engine and backend can stamp queue/build spans onto it.
	ctx := reqtrace.NewContext(context.Background(), e.rq)
	if e.spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.spec.Timeout)
		defer cancel()
	}
	bodies, genNs, err := r.bodiesFor(e.spec.Model, e.spec.Bodies, e.spec.Seed)
	if err != nil {
		finish(Result{Spec: e.spec, Err: err.Error()})
		return
	}
	start := time.Now()
	var res Result
	switch e.spec.Backend {
	case Native:
		res = runNative(ctx, e.spec, bodies, r.eng)
	default:
		res = runSimulated(ctx, e.spec, bodies)
	}
	res.Spec = e.spec
	res.GenNs = genNs
	res.WallNs = time.Since(start).Nanoseconds()
	// Trace files are written after the wall clock stops, so tracing a
	// sweep never perturbs its measured times.
	if werr := res.writeTrace(); werr != nil && res.Err == "" {
		res.Err = fmt.Sprintf("runner: writing trace: %v", werr)
	}
	finish(res)
}

// Bodies returns the memoized body system for (model, n, seed). The
// returned slice set is shared and must be treated as read-only;
// backends clone before mutating.
func (r *Runner) Bodies(model phys.Model, n int, seed int64) *phys.Bodies {
	b, _, _ := r.bodiesFor(model.String(), n, seed) // typed models always parse
	return b
}

func (r *Runner) bodiesFor(model string, n int, seed int64) (*phys.Bodies, int64, error) {
	key := fmt.Sprintf("%s|%d|%d", model, n, seed)
	r.mu.Lock()
	be, ok := r.bodies[key]
	if !ok {
		be = &bodiesEntry{key: key, done: make(chan struct{})}
		r.bodies[key] = be
		be.elem = r.bodiesLRU.PushFront(be)
		r.evictBodiesLocked()
		r.obs.memoMisses.Add(1)
		r.mu.Unlock()
		if m, ok := phys.ParseModel(model); ok {
			start := time.Now()
			be.b = phys.Generate(m, n, seed)
			be.genNs = time.Since(start).Nanoseconds()
		} else {
			be.err = fmt.Errorf("runner: unknown mass model %q (valid: %s, %s, %s)",
				model, phys.ModelPlummer, phys.ModelUniform, phys.ModelTwoClusters)
		}
		close(be.done)
		return be.b, be.genNs, be.err
	}
	if be.elem != nil {
		r.bodiesLRU.MoveToFront(be.elem)
	}
	r.obs.memoHits.Add(1)
	r.mu.Unlock()
	<-be.done
	return be.b, be.genNs, be.err
}

// Results snapshots every completed result in the cache, sorted by spec
// key, for CSV/JSON dumps.
func (r *Runner) Results() []Result {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.cache))
	for _, e := range r.cache {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	var out []Result
	for _, e := range entries {
		select {
		case <-e.done:
			out = append(out, e.res)
		default:
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Key() < out[j].Spec.Key() })
	return out
}
