package reqtrace_test

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/phys"
	"partree/internal/reqtrace"
)

// The workload mirrors internal/trace's overhead gate (n=10k, p=4
// Plummer through ORIG) so the two disabled-path budgets are measured
// on the same build.
const (
	overheadN = 10000
	overheadP = 4
)

func overheadInput() (*core.Input, core.Builder) {
	bodies := phys.Generate(phys.ModelPlummer, overheadN, 1998)
	in := &core.Input{Bodies: bodies, Assign: core.SpatialAssign(bodies, overheadP)}
	return in, core.New(core.ORIG, core.Config{P: overheadP, LeafCap: 8})
}

// buildBare times one plain build — the pre-instrumentation baseline.
func buildBare(bld core.Builder, in *core.Input, step int) float64 {
	in.Step = step
	start := time.Now()
	bld.Build(in)
	return float64(time.Since(start).Nanoseconds())
}

// buildHooked times the same build wrapped in the exact disabled-mode
// hook sequence the serving path added (engine.acquireSlot, Lease.Step,
// runner.runNativeBuild): context recalls that miss, guarded time
// captures that stay zero, and nil-receiver method calls. This is the
// code a request pays when the flight recorder is off.
func buildHooked(bld core.Builder, in *core.Input, step int) float64 {
	in.Step = step
	ctx := context.Background()
	wall := time.Now()

	rq := reqtrace.FromContext(ctx) // always nil: recorder disabled
	var qstart time.Time
	if rq != nil {
		qstart = time.Now()
	}
	rq.SpanSince("queue", qstart) // zero start: ignored

	start := time.Now()
	bld.Build(in)
	el := time.Since(start)
	if rq2 := reqtrace.FromContext(ctx); rq2 != nil {
		rq2.SpanAt("build", start, start.Add(el))
		rq2.AddBuildPhases(0, 0, 0)
		rq2.BridgeTrace(nil)
	}
	return float64(time.Since(wall).Nanoseconds())
}

// TestDisabledReqtraceOverhead is the regression gate for the serving
// path's core promise: with the flight recorder off, a build surrounded
// by every reqtrace hook must cost within 2% of the bare build, because
// each hook reduces to a context-value miss or a nil check. Samples
// interleave the two shapes so frequency scaling and background noise
// hit both sides equally; the comparison uses medians and retries to
// ride out a noisy machine.
func TestDisabledReqtraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison: skipped with -short")
	}
	in, bld := overheadInput()

	const (
		rounds    = 21 // interleaved median samples per side
		limit     = 1.02
		attempts  = 3
		warmupPer = 3
	)
	for i := 0; i < warmupPer; i++ {
		buildBare(bld, in, i)
		buildHooked(bld, in, i)
	}
	var last string
	for attempt := 1; attempt <= attempts; attempt++ {
		bareTs := make([]float64, 0, rounds)
		hookedTs := make([]float64, 0, rounds)
		for i := 0; i < rounds; i++ {
			bareTs = append(bareTs, buildBare(bld, in, i))
			hookedTs = append(hookedTs, buildHooked(bld, in, i))
		}
		sort.Float64s(bareTs)
		sort.Float64s(hookedTs)
		ratio := hookedTs[rounds/2] / bareTs[rounds/2]
		if ratio <= limit {
			return
		}
		last = fmt.Sprintf("attempt %d: disabled-reqtrace median %.3fx the bare median (limit %.2fx)",
			attempt, ratio, limit)
		t.Log(last)
	}
	t.Errorf("disabled request tracing exceeds the overhead budget on %d consecutive attempts: %s", attempts, last)
}

// Companion benchmarks for the per-hook costs themselves:
//
//	go test ./internal/reqtrace -run=NONE -bench=. -benchtime=10000x
func BenchmarkDisabledHooks(b *testing.B) {
	ctx := context.Background()
	start := time.Unix(1700000000, 0)
	for i := 0; i < b.N; i++ {
		rq := reqtrace.FromContext(ctx)
		var qstart time.Time
		if rq != nil {
			qstart = time.Now()
		}
		rq.SpanSince("queue", qstart)
		rq.SpanAt("build", start, start)
		rq.AddBuildPhases(0, 0, 0)
		rq.BridgeTrace(nil)
	}
}

// BenchmarkRecordedRequest is one full enabled request lifecycle: start,
// the serving path's four spans plus the phase stamp, finish (ring
// publish, histograms, exemplar).
func BenchmarkRecordedRequest(b *testing.B) {
	rec := reqtrace.NewRecorder(reqtrace.Options{})
	t0 := time.Unix(1700000000, 0)
	for i := 0; i < b.N; i++ {
		rq := rec.StartAt("4bf92f3577b34da6a3ce929d0e0e4736", "/v1/build", t0)
		rq.SpanAt("read", t0, t0.Add(time.Millisecond))
		rq.SpanAt("queue", t0, t0.Add(time.Millisecond))
		rq.SpanAt("build", t0, t0.Add(10*time.Millisecond))
		rq.AddBuildPhases(time.Millisecond, time.Millisecond, time.Millisecond)
		rq.SpanAt("write", t0, t0.Add(time.Millisecond))
		rq.FinishAt(200, 4096, t0.Add(14*time.Millisecond))
	}
}
