package adapt

import (
	"testing"

	"partree/internal/core"
	"partree/internal/trace"
)

// tunedSummary builds a summary exhibiting the given signal fractions:
// one "slow" processor carries extra insert time for skew, and lock/
// barrier time is spread evenly.
func tunedSummary(p int, lockFrac, barrierFrac, skew float64) *trace.Summary {
	const base = 1_000_000
	s := &trace.Summary{PerProc: make([]trace.ProcSummary, p)}
	var insert [16]int64
	for w := 0; w < p; w++ {
		insert[w] = base
	}
	if skew > 1 && p > 1 {
		// max/mean = skew with mean held at base: max = skew*base, and
		// the others share the remainder evenly.
		rest := int64((float64(p) - skew) * base / float64(p-1))
		insert[0] = int64(skew * base)
		for w := 1; w < p; w++ {
			insert[w] = rest
		}
	}
	var insTotal int64
	for w := 0; w < p; w++ {
		insTotal += insert[w]
	}
	// Solve barrier so barrier/(insert+barrier) = barrierFrac.
	barTotal := int64(barrierFrac / (1 - barrierFrac) * float64(insTotal))
	for w := 0; w < p; w++ {
		s.PerProc[w].PhaseNs[trace.PhaseInsert] = insert[w]
		s.PerProc[w].PhaseNs[trace.PhaseBarrier] = barTotal / int64(p)
		s.PerProc[w].LockWaitNs = int64(lockFrac * float64(insTotal+barTotal) / float64(p))
	}
	return s
}

func TestTunerNeedsStreakAndCooldown(t *testing.T) {
	tn := NewTuner(TunerPolicy{Streak: 3, MinSteps: 5}, 8)
	cfg := core.Config{P: 8, LeafCap: 8}
	hot := tunedSummary(8, 0.5, 0, 1) // heavy lock contention
	for i := 0; i < 2; i++ {
		tn.Observe(hot)
	}
	// Streak unmet (2 < 3): no proposal even though cooldown... also unmet.
	if _, _, ok := tn.Propose(cfg, 10000); ok {
		t.Fatal("proposed before streak satisfied")
	}
	for i := 0; i < 3; i++ {
		tn.Observe(hot)
	}
	// Streak met (5 >= 3) and cooldown met (5 observed >= 5).
	next, knob, ok := tn.Propose(cfg, 10000)
	if !ok || knob != KnobLeafCap {
		t.Fatalf("want leafcap proposal, got ok=%v knob=%q", ok, knob)
	}
	if next.LeafCap != 16 {
		t.Fatalf("leafcap %d, want 16", next.LeafCap)
	}
	// Firing resets the cooldown: an immediate re-propose stands pat.
	if _, _, ok := tn.Propose(next, 10000); ok {
		t.Fatal("proposed again inside cooldown")
	}
}

func TestTunerStreakResetsOnRecovery(t *testing.T) {
	tn := NewTuner(TunerPolicy{Streak: 3, MinSteps: 1}, 8)
	cfg := core.Config{P: 8, LeafCap: 8}
	hot := tunedSummary(8, 0.5, 0, 1)
	calm := tunedSummary(8, 0, 0.2, 1)
	tn.Observe(hot)
	tn.Observe(hot)
	tn.Observe(calm) // breaks the lock streak
	tn.Observe(hot)
	tn.Observe(hot)
	if _, _, ok := tn.Propose(cfg, 10000); ok {
		t.Fatal("a broken streak still fired")
	}
}

func TestTunerKnobPriorityAndBounds(t *testing.T) {
	cases := []struct {
		name string
		sum  *trace.Summary
		cfg  core.Config
		knob string
		want func(core.Config) bool
	}{
		{
			name: "locks beat barrier and skew",
			sum:  tunedSummary(8, 0.5, 0.6, 3),
			cfg:  core.Config{P: 8, LeafCap: 8},
			knob: KnobLeafCap,
			want: func(c core.Config) bool { return c.LeafCap == 16 && c.P == 8 },
		},
		{
			name: "barrier halves P",
			sum:  tunedSummary(8, 0, 0.6, 1),
			cfg:  core.Config{P: 8, LeafCap: 8},
			knob: KnobPDown,
			want: func(c core.Config) bool { return c.P == 4 },
		},
		{
			name: "skew halves the space threshold",
			sum:  tunedSummary(8, 0, 0.2, 3),
			cfg:  core.Config{P: 8, LeafCap: 8, SpaceThreshold: 256},
			knob: KnobSpaceThreshold,
			want: func(c core.Config) bool { return c.SpaceThreshold == 128 },
		},
		{
			name: "skew resolves the implicit default threshold",
			sum:  tunedSummary(8, 0, 0.2, 3),
			cfg:  core.Config{P: 8, LeafCap: 8}, // default: 10000/(4*8) = 312
			knob: KnobSpaceThreshold,
			want: func(c core.Config) bool { return c.SpaceThreshold == 156 },
		},
		{
			name: "calm restores halved P",
			sum:  tunedSummary(4, 0, 0.01, 1),
			cfg:  core.Config{P: 4, LeafCap: 8},
			knob: KnobPUp,
			want: func(c core.Config) bool { return c.P == 8 },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tn := NewTuner(TunerPolicy{Streak: 2, MinSteps: 2}, 8)
			tn.Observe(tc.sum)
			tn.Observe(tc.sum)
			next, knob, ok := tn.Propose(tc.cfg, 10000)
			if !ok {
				t.Fatalf("no proposal (lastKnob %q)", tn.LastKnob())
			}
			if knob != tc.knob {
				t.Fatalf("knob %q, want %q", knob, tc.knob)
			}
			if !tc.want(next) {
				t.Fatalf("proposed config %+v fails the case's check", next)
			}
		})
	}
}

func TestTunerRespectsCeilings(t *testing.T) {
	// LeafCap at its cap: the lock rule cannot fire, and with nothing
	// else hot the tuner stands pat.
	tn := NewTuner(TunerPolicy{Streak: 1, MinSteps: 1, MaxLeafCap: 64}, 8)
	tn.Observe(tunedSummary(8, 0.5, 0, 1))
	if _, _, ok := tn.Propose(core.Config{P: 8, LeafCap: 64}, 10000); ok {
		t.Fatal("doubled leafcap past its cap")
	}
	// P already 1: the barrier rule cannot fire.
	tn2 := NewTuner(TunerPolicy{Streak: 1, MinSteps: 1}, 8)
	tn2.Observe(tunedSummary(1, 0, 0.6, 1))
	if _, _, ok := tn2.Propose(core.Config{P: 1, LeafCap: 8}, 10000); ok {
		t.Fatal("halved P below 1")
	}
	// P at the session ceiling: recovery cannot fire.
	tn3 := NewTuner(TunerPolicy{Streak: 1, MinSteps: 1}, 8)
	tn3.Observe(tunedSummary(8, 0, 0.01, 1))
	if _, _, ok := tn3.Propose(core.Config{P: 8, LeafCap: 8}, 10000); ok {
		t.Fatal("raised P past the session ceiling")
	}
}

func TestTunerIgnoresUntracedSteps(t *testing.T) {
	tn := NewTuner(TunerPolicy{Streak: 1, MinSteps: 1}, 8)
	tn.Observe(nil)
	tn.Observe(&trace.Summary{})
	if _, _, ok := tn.Propose(core.Config{P: 8, LeafCap: 8}, 10000); ok {
		t.Fatal("proposed off untraced steps")
	}
}
