package simalg

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"partree/internal/core"
	"partree/internal/force"
	"partree/internal/memsim"
	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/phys"
	"partree/internal/trace"
	"partree/internal/vec"
)

const chunkLen = 64 // addresses per batched access

// runState is the shared state of one simulated run. The engine executes
// at most one simulated processor at a time, and all cross-processor
// handoffs happen across simulated barriers, so plain fields suffice.
type runState struct {
	cfg    Config
	alg    core.Algorithm
	bodies *phys.Bodies
	store  *octree.Store
	tree   *octree.Tree
	assign [][]int32
	cube   vec.Cube
	orig   bool // ORIG's shared-arena bookkeeping
	// visLocks: on HLRC platforms the shared-tree algorithms take a lock
	// per descent level for visibility under lazy release consistency
	// (the paper: "the HLRC protocol requires additional synchronization
	// to make the code release consistent"). SPACE needs none: its only
	// cross-processor handoffs are barrier-separated.
	visLocks bool
	procs    []*sproc

	bodyLeaf []uint32 // UPDATE

	// Per-processor body arrays (LOCAL-family): a body's record lives in
	// its owner's region and physically moves on reassignment, as the
	// SPLASH-2 code does. ORIG keeps the single global array.
	bodyAddrOf []uint64
	bodyOwner  []int32
	freeSlots  [][]uint64
	nextSlot   []int
	moves      [][][2]uint64 // per proc: (old,new) addresses to migrate

	ownerAddrs [][]uint64 // per-proc node addresses (moments/rescale)

	space *spaceState

	// nodeLines is how many coherence units one node record spans (1 for
	// page-grained HLRC, 256/LineSize for the hardware protocols).
	nodeLines int

	interactions int64 // measured steps only
}

// Run simulates the whole application (warm + measured steps) for one
// algorithm on one platform and returns the measured outcome. The caller's
// bodies are not modified.
func Run(alg core.Algorithm, bodies *phys.Bodies, cfg Config) Outcome {
	st, res := run(alg, bodies, cfg)
	return st.outcome(res)
}

// run is Run exposing the final state, for white-box tests that verify
// the simulated builders produced a correct tree.
func run(alg core.Algorithm, bodies *phys.Bodies, cfg Config) (*runState, memsim.Result) {
	cfg = cfg.withDefaults(bodies.N())
	p := cfg.P
	st := &runState{
		cfg:    cfg,
		alg:    alg,
		bodies: bodies.Clone(),
		assign: core.EvenAssign(bodies.N(), p),
		orig:   alg == core.ORIG && !cfg.Sequential,
		procs:  make([]*sproc, p),
	}
	st.visLocks = cfg.Platform.Kind == memsim.HLRC && !cfg.Sequential && p > 1
	st.nodeLines = 1
	if cfg.Platform.Kind != memsim.HLRC && cfg.Platform.LineSize > 0 {
		st.nodeLines = 256 / cfg.Platform.LineSize
		if st.nodeLines < 1 {
			st.nodeLines = 1
		}
		if st.nodeLines > 4 {
			st.nodeLines = 4
		}
	}
	nArenas := p
	if st.orig {
		nArenas = 1
	}
	st.store = octree.NewStore(nArenas, cfg.LeafCap)
	st.initBodyAddrs()
	if alg == core.UPDATE {
		st.bodyLeaf = make([]uint32, bodies.N())
	}
	for w := 0; w < p; w++ {
		arena := w
		if st.orig {
			arena = 0
		}
		st.procs[w] = &sproc{w: w, st: st, arena: arena, tp: cfg.Trace.Proc(w)}
	}
	// A trace covers this run's measured steps (accumulated, matching how
	// Outcome.LocksPerProc accumulates), stamped in virtual time.
	if cfg.Trace.Active() {
		cfg.Trace.Reset()
	}

	eng := memsim.NewEngine(cfg.Platform, p)
	st.placeHomes(eng.Memory())
	res := eng.Run(func(mp *memsim.Proc) { st.program(mp) })
	return st, res
}

// initBodyAddrs seeds the per-processor body arrays from the initial even
// assignment (ORIG keeps the global array).
func (st *runState) initBodyAddrs() {
	n := st.bodies.N()
	p := st.cfg.P
	st.bodyAddrOf = make([]uint64, n)
	st.bodyOwner = make([]int32, n)
	st.moves = make([][][2]uint64, p)
	if st.orig {
		for b := 0; b < n; b++ {
			st.bodyAddrOf[b] = bodyAddr(int32(b))
		}
		return
	}
	st.freeSlots = make([][]uint64, p)
	st.nextSlot = make([]int, p)
	for w, chunk := range st.assign {
		for _, b := range chunk {
			st.bodyAddrOf[b] = bodySlotAddr(w, st.nextSlot[w])
			st.nextSlot[w]++
			st.bodyOwner[b] = int32(w)
		}
	}
}

// placeHomes homes each data region the way the real codes would:
// per-processor body arrays, node arenas, and private counters at their
// owner. ORIG's global body array and shared node arena keep the default
// round-robin placement — removing exactly that is the LOCAL redesign.
func (st *runState) placeHomes(mem memsim.Protocol) {
	p := st.cfg.P
	pl := st.cfg.Platform
	for w := 0; w < p; w++ {
		node := pl.NodeOf(w, p)
		mem.SetHome(privStatAddr(w), privStatAddr(w)+4096, node)
		if !st.orig {
			base := arenaBase + uint64(w)*arenaStride
			mem.SetHome(base, base+arenaStride, node)
			blo := bodySlotAddr(w, 0)
			mem.SetHome(blo, blo+bodyRegionStride, node)
		}
	}
}

// migrateBodies (processor 0, during partitioning) reassigns bodies to
// their new owners' arrays; the charged reads/writes are performed by the
// receiving processors at the start of the force phase.
func (st *runState) migrateBodies() {
	if st.orig {
		return
	}
	for w := range st.assign {
		st.moves[w] = st.moves[w][:0]
		for _, b := range st.assign[w] {
			if st.bodyOwner[b] == int32(w) {
				continue
			}
			old := st.bodyAddrOf[b]
			ow := int(st.bodyOwner[b])
			st.freeSlots[ow] = append(st.freeSlots[ow], old)
			var na uint64
			if k := len(st.freeSlots[w]); k > 0 {
				na = st.freeSlots[w][k-1]
				st.freeSlots[w] = st.freeSlots[w][:k-1]
			} else {
				na = bodySlotAddr(w, st.nextSlot[w])
				st.nextSlot[w]++
			}
			st.bodyAddrOf[b] = na
			st.bodyOwner[b] = int32(w)
			st.moves[w] = append(st.moves[w], [2]uint64{old, na})
		}
	}
}

func lbl(name string, s int) string { return fmt.Sprintf("%s@%d", name, s) }

// program is the per-processor main loop: the three phases of each time
// step, separated by barriers exactly as the real application is.
func (st *runState) program(mp *memsim.Proc) {
	sp := st.procs[mp.ID]
	sp.mp = mp
	total := st.cfg.WarmSteps + st.cfg.MeasuredSteps
	for s := 0; s < total; s++ {
		sp.meas = s >= st.cfg.WarmSteps
		st.buildPhase(sp, s)
		mp.Barrier(lbl("tree", s))
		st.partitionPhase(sp, s)
		mp.Barrier(lbl("part", s))
		st.forcePhase(sp, s)
		mp.Barrier(lbl("force", s))
		st.updatePhase(sp, s)
		mp.Barrier(lbl("update", s))
	}
}

// buildPhase sizes the root, runs the algorithm-specific load, and
// finishes with the center-of-mass pass — the paper's "tree building".
func (st *runState) buildPhase(sp *sproc, s int) {
	sp.inBuild = true
	defer func() { sp.inBuild = false }()
	cfg := st.cfg

	// Phase spans are stamped in virtual time; barriers become nested
	// barrier-wait spans (arrival to release — the simulated analogue of
	// the paper's Table 2 waiting times).
	traced := sp.meas && sp.tp.Active()
	vnow := func() int64 { return int64(sp.mp.Now()) }
	span := func(ph trace.Phase, t0 int64) {
		if traced {
			sp.tp.SpanAt(ph, t0, vnow())
		}
	}
	bar := func(label string) {
		if traced {
			t0 := vnow()
			sp.mp.Barrier(label)
			sp.tp.SpanAt(trace.PhaseBarrier, t0, vnow())
		} else {
			sp.mp.Barrier(label)
		}
	}
	tPart := vnow()

	// Root bounds: each processor reduces over its own bodies.
	sp.compute(float64(len(st.assign[sp.w])) * cfg.BoundsCycles)
	bar(lbl("bounds", s))

	incremental := st.alg == core.UPDATE && s > 0 && !cfg.Sequential
	if sp.w == 0 {
		st.cube = st.bodies.Bounds(1e-4)
		if incremental {
			// Keep the tree; refresh every node's bounds.
			rescaleNative(st.tree, st.cube)
			st.ownerAddrs = collectOwnerAddrs(st.tree, st.cfg.P, st.nodeLines)
		} else {
			st.store.Reset()
			st.tree = octree.NewTree(st.store, sp.arena, 0, st.cube)
			sp.writeNode(st.tree.Root)
			if st.alg == core.SPACE && !cfg.Sequential {
				st.space = newSpaceState(st)
			}
		}
	}
	bar(lbl("setup", s))

	if incremental {
		// Charge the distributed rescale pass.
		sp.writeChunks(st.ownerAddrs[sp.w])
		sp.compute(float64(len(st.ownerAddrs[sp.w])) * cfg.DescendCycles)
	}
	span(trace.PhasePartition, tPart)

	tIns := vnow()
	switch {
	case cfg.Sequential:
		for _, b := range st.assign[sp.w] {
			sp.insertPrivate(st.tree.Root, 0, b)
		}
	case st.alg == core.ORIG || st.alg == core.LOCAL:
		st.loadBodies(sp)
	case st.alg == core.UPDATE:
		if s == 0 {
			st.loadBodies(sp)
		} else {
			st.updateMove(sp)
		}
	case st.alg == core.PARTREE:
		st.partreeBuild(sp)
	case st.alg == core.SPACE:
		// spaceBuild emits its own partition/insert split: the counting
		// rounds belong to the partition phase, only the subtree
		// build/attach is insert work.
		st.spaceBuild(sp, s)
	}
	if cfg.Sequential || st.alg != core.SPACE {
		span(trace.PhaseInsert, tIns)
	}
	bar(lbl("load", s))

	// Moments: proc 0 computes the real values (cheap, native); every
	// processor is charged for the nodes it owns.
	tMom := vnow()
	if sp.w == 0 {
		octree.ComputeMomentsSerial(st.tree, st.data())
		st.ownerAddrs = collectOwnerAddrs(st.tree, st.cfg.P, st.nodeLines)
	}
	bar(lbl("mcol", s))
	addrs := st.ownerAddrs[sp.w]
	sp.readChunks(addrs)
	sp.writeChunks(addrs)
	sp.compute(float64(len(addrs)) * cfg.MomentCycles)
	span(trace.PhaseMoments, tMom)
}

func (st *runState) loadBodies(sp *sproc) {
	for _, b := range st.assign[sp.w] {
		sp.insert(st.tree.Root, 0, b)
	}
}

// partitionPhase computes costzones on processor 0 (the partitioning and
// the other phases are kept identical across algorithms, as in the paper).
func (st *runState) partitionPhase(sp *sproc, s int) {
	if sp.w != 0 {
		return
	}
	d := st.data()
	st.assign = partition.Costzones(st.tree, d, st.cfg.P)
	st.migrateBodies()
	var leafAddrs []uint64
	octree.Walk(st.tree, func(r octree.Ref, _ int) bool {
		if r.IsLeaf() {
			leafAddrs = append(leafAddrs, nodeAddr(r))
		}
		return true
	})
	sp.readChunks(leafAddrs)
	sp.compute(float64(st.bodies.N()) * st.cfg.PartitionCycles)
}

// forcePhase runs the real traversals natively to obtain each processor's
// interaction counts and distinct working set, then charges compute cycles
// and batched reads against the simulated machine.
func (st *runState) forcePhase(sp *sproc, s int) {
	own := st.assign[sp.w]
	// Pull in the bodies reassigned to us this step (read from the old
	// owner's array, write into ours).
	if mv := st.moves[sp.w]; len(mv) > 0 {
		olds := make([]uint64, len(mv))
		news := make([]uint64, len(mv))
		for i, m := range mv {
			olds[i], news[i] = m[0], m[1]
		}
		sp.readChunks(olds)
		sp.writeChunks(news)
	}
	d := st.data()
	params := st.cfg.forceParams()
	seen := make(map[octree.Ref]struct{}, 4*len(own))
	var nodeAddrs []uint64
	var inter int64
	stride := uint64(256 / st.nodeLines)
	for _, b := range own {
		r := force.AccelVisit(st.tree, d, b, params, func(ref octree.Ref) {
			if _, ok := seen[ref]; !ok {
				seen[ref] = struct{}{}
				base := nodeAddr(ref)
				for i := 0; i < st.nodeLines; i++ {
					nodeAddrs = append(nodeAddrs, base+uint64(i)*stride)
				}
			}
		})
		st.bodies.Acc[b] = r.Acc
		st.bodies.Cost[b] = r.Interactions
		inter += r.Interactions
	}
	if sp.meas {
		st.interactions += inter
	}

	// Own bodies are read, the working set of tree nodes is read, the
	// compute is spread across the node chunks so contention interleaves.
	sp.readChunks(st.bodyAddrs(own))
	nChunks := (len(nodeAddrs) + chunkLen - 1) / chunkLen
	if nChunks == 0 {
		nChunks = 1
	}
	perChunk := float64(inter) * st.cfg.InteractionCycles / float64(nChunks)
	for i := 0; i < len(nodeAddrs); i += chunkLen {
		end := i + chunkLen
		if end > len(nodeAddrs) {
			end = len(nodeAddrs)
		}
		sp.mp.ReadBatch(nodeAddrs[i:end])
		sp.compute(perChunk)
	}
	if len(nodeAddrs) == 0 {
		sp.compute(perChunk)
	}
	sp.writeChunks(st.bodyAddrs(own))
}

// updatePhase integrates the processor's bodies natively and charges the
// update work and body writes.
func (st *runState) updatePhase(sp *sproc, s int) {
	own := st.assign[sp.w]
	dt := st.cfg.Dt
	for _, b := range own {
		i := int(b)
		st.bodies.Vel[i] = st.bodies.Vel[i].MulAdd(dt, st.bodies.Acc[i])
		st.bodies.Pos[i] = st.bodies.Pos[i].MulAdd(dt, st.bodies.Vel[i])
	}
	sp.compute(float64(len(own)) * st.cfg.UpdateCycles)
	sp.writeChunks(st.bodyAddrs(own))
}

func (st *runState) data() octree.BodyData {
	return octree.BodyData{Pos: st.bodies.Pos, Mass: st.bodies.Mass, Cost: st.bodies.Cost}
}

func (sp *sproc) readChunks(addrs []uint64) {
	for i := 0; i < len(addrs); i += chunkLen {
		end := i + chunkLen
		if end > len(addrs) {
			end = len(addrs)
		}
		sp.mp.ReadBatch(addrs[i:end])
	}
}

func (sp *sproc) writeChunks(addrs []uint64) {
	for i := 0; i < len(addrs); i += chunkLen {
		end := i + chunkLen
		if end > len(addrs) {
			end = len(addrs)
		}
		sp.mp.WriteBatch(addrs[i:end])
	}
}

func (st *runState) bodyAddrs(bs []int32) []uint64 {
	out := make([]uint64, len(bs))
	for i, b := range bs {
		out[i] = st.bodyAddrOf[b]
	}
	return out
}

// collectOwnerAddrs walks the live tree grouping node addresses by the
// processor that created them (the paper has each processor compute the
// moments of the cells it created), expanded to coherence-unit granularity.
func collectOwnerAddrs(t *octree.Tree, p, nodeLines int) [][]uint64 {
	out := make([][]uint64, p)
	stride := uint64(256 / nodeLines)
	octree.Walk(t, func(r octree.Ref, _ int) bool {
		var owner int32
		if r.IsLeaf() {
			owner = t.Store.Leaf(r).Owner
		} else {
			owner = t.Store.Cell(r).Owner
		}
		if int(owner) >= p {
			owner = 0
		}
		base := nodeAddr(r)
		for i := 0; i < nodeLines; i++ {
			out[owner] = append(out[owner], base+uint64(i)*stride)
		}
		return true
	})
	return out
}

// rescaleNative rewrites every node's cube after the root resizes (the
// UPDATE algorithm's bounds refresh), without charging — the charges are
// distributed across processors by the caller.
func rescaleNative(t *octree.Tree, root vec.Cube) {
	s := t.Store
	var rec func(r octree.Ref, cube vec.Cube)
	rec = func(r octree.Ref, cube vec.Cube) {
		if r.IsLeaf() {
			s.Leaf(r).Cube = cube
			return
		}
		c := s.Cell(r)
		c.Cube = cube
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				rec(ch, cube.Child(o))
			}
		}
	}
	rec(t.Root, root)
}

// depthOfCube recovers a node's depth from exact cube halving.
func depthOfCube(t *octree.Tree, c vec.Cube) int {
	return int(math.Round(math.Log2(t.RootCube().Size / c.Size)))
}

// outcome extracts the measured phase times and counters.
func (st *runState) outcome(res memsim.Result) Outcome {
	o := Outcome{
		Alg:          st.alg,
		Platform:     st.cfg.Platform.Name,
		P:            st.cfg.P,
		N:            st.bodies.N(),
		Steps:        st.cfg.MeasuredSteps,
		Interactions: st.interactions,
		Protocol:     res.Protocol,
		LocksPerProc: make([]int64, st.cfg.P),
	}
	for w, sp := range st.procs {
		o.LocksPerProc[w] = sp.locks
	}

	// Phase boundaries from barrier records.
	release := map[string]float64{}
	for _, b := range res.Barriers {
		release[b.Label] = b.Release
	}
	prevEnd := 0.0
	for s := 0; s < st.cfg.WarmSteps+st.cfg.MeasuredSteps; s++ {
		tTree := release[lbl("tree", s)]
		tPart := release[lbl("part", s)]
		tForce := release[lbl("force", s)]
		tUpd := release[lbl("update", s)]
		if s >= st.cfg.WarmSteps {
			o.TreeNs += tTree - prevEnd
			o.PartNs += tPart - tTree
			o.ForceNs += tForce - tPart
			o.UpdateNs += tUpd - tForce
		}
		prevEnd = tUpd
	}

	// Barrier waits over measured steps (Table 2).
	o.BarrierNsPerProc = make([]float64, st.cfg.P)
	for _, b := range res.Barriers {
		at := strings.LastIndex(b.Label, "@")
		step, err := strconv.Atoi(b.Label[at+1:])
		if err != nil || step < st.cfg.WarmSteps {
			continue
		}
		for w, wait := range b.Waits {
			o.BarrierNsPerProc[w] += wait
		}
	}
	return o
}
