package core

import (
	"sort"
	"time"

	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/trace"
	"partree/internal/vec"
)

// spaceBuilder implements SPACE, the paper's new algorithm. Tree building
// gets its own *spatial* partition, different from the costzones body
// partition used by every other phase:
//
//  1. The domain is recursively subdivided, counting bodies per subspace
//     in parallel, until every subspace holds at most a threshold number
//     of bodies. The cells created along the way are exactly the top of
//     the final octree ("the UPPER part").
//  2. The resulting subspaces are assigned to processors (balanced by
//     body count).
//  3. Each processor privately builds one subtree per assigned subspace
//     and attaches it to the global tree without any locking: a given
//     attachment slot belongs to exactly one processor.
//
// Locking in the tree-build phase is eliminated entirely, at the cost of
// the counting passes, some load imbalance, and the loss of locality
// between the build partition and the force partition.
type spaceBuilder struct {
	cfg   Config
	store *octree.Store
}

func newSpace(cfg Config) Builder {
	return &spaceBuilder{cfg: cfg, store: octree.NewStore(cfg.P, cfg.LeafCap)}
}

func (sb *spaceBuilder) Algorithm() Algorithm { return SPACE }

// subspace is one finalized partition unit: an unfilled child slot of a
// prefix cell, plus the bodies that belong in it.
type subspace struct {
	parent octree.Ref // prefix cell the subtree will attach to
	oct    vec.Octant // slot within parent
	cube   vec.Cube
	depth  int // depth of the subspace node itself
	count  int
	owner  int
	bodies []int32
}

// spaceThreshold resolves the subdivision threshold for a SPACE-style
// partition: the configured value, or the documented default n/(4·p),
// never below the leaf capacity.
func spaceThreshold(cfg Config, n, p int) int {
	th := cfg.SpaceThreshold
	if th <= 0 {
		th = n / (4 * p)
	}
	if th < cfg.LeafCap {
		th = cfg.LeafCap
	}
	return th
}

func (sb *spaceBuilder) Build(in *Input) (*octree.Tree, *Metrics) {
	p := in.P()
	m := newMetrics(SPACE, p)
	s := sb.store

	tr := sb.cfg.traceStart()
	t0 := time.Now()
	cube := parallelBounds(in, sb.cfg.Margin, tr)
	s.Reset()
	tree := octree.NewTree(s, 0, 0, cube)
	subs := spacePartition(s, tree, in, spaceThreshold(sb.cfg, in.Bodies.N(), p), m, tr)
	assignSubspaces(tree.RootCube(), subs, p)
	t1 := time.Now()

	spaceAttach(s, in, subs, m, tr, func(w int) *inserter {
		return &inserter{s: s, arena: w, proc: w, pc: &m.PerP[w], tp: tr.Proc(w)}
	})
	t2 := time.Now()

	mt := traceNow(tr)
	octree.ComputeMomentsParallel(tree, bodyData(in.Bodies), p)
	spanAll(tr, trace.PhaseMoments, mt, p)
	t3 := time.Now()

	m.Timing.Bounds += t1.Sub(t0)
	m.Timing.Insert += t2.Sub(t1)
	m.Timing.Moments += t3.Sub(t2)
	if tr != nil {
		m.Trace = tr.Summarize()
	}
	return tree, m
}

// spaceAttach builds and attaches one subtree per finalized subspace —
// one processor per subspace, no locking: a given attachment slot
// belongs to exactly one processor. mkIns supplies each worker's
// inserter, so callers control the arena layout and whether a bodyLeaf
// map is maintained (UPDATE's session fallback rebuild threads its
// persistent map through here; plain SPACE passes none).
func spaceAttach(s *octree.Store, in *Input, subs []subspace, m *Metrics,
	tr *trace.Recorder, mkIns func(w int) *inserter) {

	p := in.P()
	pos := in.Bodies.Pos
	tracedDo(tr, trace.PhaseInsert, p, func(w int) {
		ins := mkIns(w)
		for i := range subs {
			ss := &subs[i]
			if ss.owner != w {
				continue
			}
			var node octree.Ref
			if ss.count <= s.LeafCap || ss.depth >= s.MaxDepth {
				lr, l := ins.allocLeaf(ss.cube, ss.parent)
				l.Bodies = append(l.Bodies, ss.bodies...)
				if ins.bodyLeaf != nil {
					for _, b := range ss.bodies {
						ins.setBodyLeaf(b, lr)
					}
				}
				node = lr
			} else {
				cr, _ := ins.allocCell(ss.cube, ss.parent)
				for _, b := range ss.bodies {
					ins.insertPrivate(cr, ss.depth, b, pos)
				}
				node = cr
			}
			// Attach without locking: this slot is ours alone.
			s.Cell(ss.parent).SetChild(ss.oct, node)
			ins.pc.Attached++
			m.PerP[w].BodiesBuilt += int64(ss.count)
		}
	})
}

// spacePartition runs the parallel counting/subdivision rounds. Each round,
// every processor histograms its own bodies over the current frontier
// cells' octants (no synchronization beyond the round barrier); frontier
// children above the threshold become new prefix cells, the rest become
// finalized subspaces with their body lists bucketed per processor.
func spacePartition(s *octree.Store, tree *octree.Tree, in *Input, threshold int, m *Metrics, tr *trace.Recorder) []subspace {
	p := in.P()
	pos := in.Bodies.Pos

	type frontierCell struct {
		ref   octree.Ref
		cube  vec.Cube
		depth int
	}
	frontier := []frontierCell{{tree.Root, tree.RootCube(), 0}}

	// Per-processor routing state: which frontier cell each of my bodies
	// currently belongs to.
	myBodies := make([][]int32, p)
	myCell := make([][]int32, p) // frontier index per body
	tracedDo(tr, trace.PhasePartition, p, func(w int) {
		myBodies[w] = append([]int32(nil), in.Assign[w]...)
		myCell[w] = make([]int32, len(myBodies[w]))
	})

	var subs []subspace
	counts := make([][]int64, p) // per proc: frontier×8 histogram
	octs := make([][]uint8, p)   // per proc: octant of each body this round

	for len(frontier) > 0 {
		f := len(frontier)
		// Count in parallel.
		tracedDo(tr, trace.PhasePartition, p, func(w int) {
			if cap(counts[w]) < f*8 {
				counts[w] = make([]int64, f*8)
			} else {
				counts[w] = counts[w][:f*8]
				for i := range counts[w] {
					counts[w][i] = 0
				}
			}
			if cap(octs[w]) < len(myBodies[w]) {
				octs[w] = make([]uint8, len(myBodies[w]))
			} else {
				octs[w] = octs[w][:len(myBodies[w])]
			}
			for i, b := range myBodies[w] {
				fc := myCell[w][i]
				o := frontier[fc].cube.OctantOf(pos[b])
				octs[w][i] = uint8(o)
				counts[w][int(fc)*8+int(o)]++
			}
		})

		// Reduce and decide (cheap, serial: the frontier is tiny).
		newIndex := make([]int32, f*8) // >=0: new frontier idx; -1: nil; -2-k: subspace k
		var next []frontierCell
		for fc := 0; fc < f; fc++ {
			for o := vec.Octant(0); o < vec.NOctants; o++ {
				var total int64
				for w := 0; w < p; w++ {
					total += counts[w][fc*8+int(o)]
				}
				slot := fc*8 + int(o)
				switch {
				case total == 0:
					newIndex[slot] = -1
				case int(total) > threshold && frontier[fc].depth+1 < s.MaxDepth:
					cr, _ := s.AllocCell(0, frontier[fc].cube.Child(o), frontier[fc].ref, 0)
					m.PerP[0].Cells++
					s.Cell(frontier[fc].ref).SetChild(o, cr)
					newIndex[slot] = int32(len(next))
					next = append(next, frontierCell{cr, frontier[fc].cube.Child(o), frontier[fc].depth + 1})
				default:
					newIndex[slot] = int32(-2 - len(subs))
					subs = append(subs, subspace{
						parent: frontier[fc].ref,
						oct:    o,
						cube:   frontier[fc].cube.Child(o),
						depth:  frontier[fc].depth + 1,
						count:  int(total),
					})
				}
			}
		}

		// Re-bucket bodies in parallel: keep the ones still in flight,
		// stash the finalized ones per (processor, subspace).
		final := make([][][]int32, p)
		tracedDo(tr, trace.PhasePartition, p, func(w int) {
			final[w] = make([][]int32, len(subs))
			keepB := myBodies[w][:0]
			keepC := myCell[w][:0]
			for i, b := range myBodies[w] {
				slot := int(myCell[w][i])*8 + int(octs[w][i])
				ni := newIndex[slot]
				switch {
				case ni >= 0:
					keepB = append(keepB, b)
					keepC = append(keepC, ni)
				case ni <= -2:
					k := int(-2 - ni)
					final[w][k] = append(final[w][k], b)
				default:
					panic("core: body routed to an empty octant")
				}
			}
			myBodies[w] = keepB
			myCell[w] = keepC
		})
		// Concatenate per-processor buckets deterministically.
		for k := range subs {
			for w := 0; w < p; w++ {
				if len(final[w]) > k && len(final[w][k]) > 0 {
					subs[k].bodies = append(subs[k].bodies, final[w][k]...)
				}
			}
		}

		frontier = next
	}
	return subs
}

// assignSubspaces assigns subspaces to processors in spatially contiguous
// groups of roughly equal body count: sorted by Morton key (octree
// depth-first order) and cut into P cost zones, the grouping the paper's
// Figure 5 draws. Contiguity limits the locality loss SPACE trades for
// its zero locking.
func assignSubspaces(root vec.Cube, subs []subspace, p int) {
	order := make([]int, len(subs))
	total := 0
	for i := range order {
		order[i] = i
		total += subs[i].count
	}
	sort.Slice(order, func(a, b int) bool {
		ka := partition.MortonKey(root, subs[order[a]].cube.Center)
		kb := partition.MortonKey(root, subs[order[b]].cube.Center)
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	if total == 0 {
		return
	}
	acc := 0
	for _, i := range order {
		w := acc * p / total
		if w >= p {
			w = p - 1
		}
		subs[i].owner = w
		acc += subs[i].count
	}
}
