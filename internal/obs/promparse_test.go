package obs

import (
	"bytes"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file is a minimal Prometheus text-format scraper used to validate
// WritePrometheus the way a real scrape would: every line must parse,
// every sample must belong to a declared family, and histograms must be
// internally consistent (cumulative buckets, +Inf == _count).

type parsedSample struct {
	labels map[string]string
	value  float64
}

type parsedFamily struct {
	typ     string
	help    string
	samples map[string][]parsedSample // keyed by sample name (base, _bucket, _sum, _count)
}

// parseExposition parses text-format 0.0.4 output, failing the test on
// any syntax violation.
func parseExposition(t *testing.T, text string) map[string]*parsedFamily {
	t.Helper()
	fams := map[string]*parsedFamily{}
	// base maps every legal sample name to its family (histograms own
	// their _bucket/_sum/_count expansions).
	base := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		ln++ // 1-based for messages
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln, line)
			}
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate HELP for %s", ln, name)
			}
			fams[name] = &parsedFamily{help: help, samples: map[string][]parsedSample{}}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: bad TYPE: %q", ln, line)
			}
			if err := checkMetricName(name); err != nil {
				t.Fatalf("line %d: %v", ln, err)
			}
			f := fams[name]
			if f == nil {
				f = &parsedFamily{samples: map[string][]parsedSample{}}
				fams[name] = f
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, name)
			}
			f.typ = typ
			base[name] = name
			if typ == "histogram" {
				base[name+"_bucket"] = name
				base[name+"_sum"] = name
				base[name+"_count"] = name
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln, line)
		}
		name, labels, value := parseSampleLine(t, ln, line)
		famName, ok := base[name]
		if !ok {
			t.Fatalf("line %d: sample %s has no preceding TYPE", ln, name)
		}
		f := fams[famName]
		f.samples[name] = append(f.samples[name], parsedSample{labels, value})
	}
	return fams
}

// parseSampleLine splits one `name{labels} value` line, undoing the
// label-value escaping.
func parseSampleLine(t *testing.T, ln int, line string) (string, map[string]string, float64) {
	t.Helper()
	labels := map[string]string{}
	rest := line
	name := rest
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed label in %q", ln, line)
			}
			lname := rest[:eq]
			if err := checkLabelName(lname); err != nil && lname != "le" {
				t.Fatalf("line %d: %v", ln, err)
			}
			rest = rest[eq+2:]
			var val strings.Builder
			i := 0
			for ; i < len(rest); i++ {
				c := rest[i]
				if c == '\\' {
					i++
					if i >= len(rest) {
						t.Fatalf("line %d: dangling escape", ln)
					}
					switch rest[i] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: unknown escape \\%c", ln, rest[i])
					}
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			if i >= len(rest) {
				t.Fatalf("line %d: unterminated label value", ln)
			}
			if _, dup := labels[lname]; dup {
				t.Fatalf("line %d: duplicate label %s", ln, lname)
			}
			labels[lname] = val.String()
			rest = rest[i+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "} ") {
				rest = rest[2:]
				break
			}
			t.Fatalf("line %d: malformed label block in %q", ln, line)
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value in %q", ln, line)
		}
		name, rest = rest[:sp], rest[sp+1:]
	}
	if err := checkMetricName(name); err != nil {
		t.Fatalf("line %d: %v", ln, err)
	}
	v, err := parseValue(rest)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, rest, err)
	}
	return name, labels, v
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// seriesKey identifies one histogram series by its labels minus le.
func seriesKey(labels map[string]string) string {
	var parts []string
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// checkHistogram asserts the exposition invariants of one histogram
// family: cumulative non-decreasing buckets per series, an explicit +Inf
// bucket equal to _count, and matching _sum/_count series sets.
func checkHistogram(t *testing.T, name string, f *parsedFamily) {
	t.Helper()
	type hist struct {
		buckets map[float64]float64
		sum     float64
		count   float64
	}
	series := map[string]*hist{}
	get := func(labels map[string]string) *hist {
		k := seriesKey(labels)
		h := series[k]
		if h == nil {
			h = &hist{buckets: map[float64]float64{}}
			series[k] = h
		}
		return h
	}
	for _, s := range f.samples[name+"_bucket"] {
		le, ok := s.labels["le"]
		if !ok {
			t.Fatalf("%s_bucket sample without le label", name)
		}
		ub, err := parseValue(le)
		if err != nil {
			t.Fatalf("%s: bad le %q", name, le)
		}
		get(s.labels).buckets[ub] = s.value
	}
	for _, s := range f.samples[name+"_sum"] {
		get(s.labels).sum = s.value
	}
	for _, s := range f.samples[name+"_count"] {
		get(s.labels).count = s.value
	}
	for key, h := range series {
		var bounds []float64
		for ub := range h.buckets {
			bounds = append(bounds, ub)
		}
		sort.Float64s(bounds)
		if len(bounds) == 0 || !math.IsInf(bounds[len(bounds)-1], 1) {
			t.Fatalf("%s{%s}: no +Inf bucket", name, key)
		}
		prev := -1.0
		for _, ub := range bounds {
			if h.buckets[ub] < prev {
				t.Fatalf("%s{%s}: bucket counts not cumulative at le=%v", name, key, ub)
			}
			prev = h.buckets[ub]
		}
		if inf := h.buckets[math.Inf(1)]; inf != h.count {
			t.Fatalf("%s{%s}: +Inf bucket %v != count %v", name, key, inf, h.count)
		}
	}
}

// TestScrapeRoundTrip renders a populated registry, re-parses the output
// as a scraper would, and checks the parsed families against the
// registry's in-memory state — names, types, label escaping, sample
// values, and histogram consistency all survive the trip.
func TestScrapeRoundTrip(t *testing.T) {
	reg := goldenRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())

	for name, f := range fams {
		if f.typ == "" {
			t.Fatalf("family %s has no TYPE line", name)
		}
		if f.typ == "histogram" {
			checkHistogram(t, name, f)
		}
	}

	want := map[string]float64{
		"partree_test_ops_total":   42,
		"partree_test_temperature": -3.5,
		"partree_test_ticks_total": 7,
	}
	for name, v := range want {
		samples := fams[name].samples[name]
		if len(samples) != 1 || samples[0].value != v {
			t.Fatalf("%s parsed as %+v, want single sample %v", name, samples, v)
		}
	}

	// The escaped label value must round-trip to the original bytes.
	events := fams["partree_test_events_total"]
	if events == nil {
		t.Fatal("events family missing")
	}
	found := false
	for _, s := range events.samples["partree_test_events_total"] {
		if s.labels["alg"] == "ORIG" {
			found = true
			if got := s.labels["note"]; got != "quote\" back\\slash\nnewline" {
				t.Fatalf("escaped label round-tripped to %q", got)
			}
			if s.value != 5 {
				t.Fatalf("ORIG events = %v, want 5", s.value)
			}
		}
	}
	if !found {
		t.Fatal("ORIG series missing")
	}

	// Histogram values: 3 observations, one beyond the last bound.
	h := fams["partree_test_duration_seconds"]
	if h == nil || h.typ != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", h)
	}
	counts := h.samples["partree_test_duration_seconds_count"]
	if len(counts) != 1 || counts[0].value != 3 {
		t.Fatalf("histogram count = %+v, want 3", counts)
	}
	sums := h.samples["partree_test_duration_seconds_sum"]
	wantSum := 0.0005 + 0.003 + 100
	if len(sums) != 1 || math.Abs(sums[0].value-wantSum) > 1e-12 {
		t.Fatalf("histogram sum = %+v, want %v", sums, wantSum)
	}

	// The empty vec still advertises its family, with no samples.
	idle := fams["partree_test_idle"]
	if idle == nil || idle.typ != "gauge" {
		t.Fatalf("empty vec family missing: %+v", idle)
	}
	if n := len(idle.samples["partree_test_idle"]); n != 0 {
		t.Fatalf("empty vec rendered %d samples", n)
	}

	// Family count: exactly the six registered ones.
	if len(fams) != 6 {
		var names []string
		for n := range fams {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Fatalf("parsed %d families, want 6: %v", len(fams), names)
	}
}
