package nbody

import (
	"math"
	"testing"

	"partree/internal/core"
)

// TestFMMSimulationConservesEnergy runs the whole application with the
// cell-cell solver in place of the Barnes-Hut traversal.
func TestFMMSimulationConservesEnergy(t *testing.T) {
	opts := DefaultOptions()
	opts.N = 1500
	opts.P = 4
	opts.Alg = core.SPACE
	opts.FMM = true
	opts.Dt = 0.01
	opts.Force.Theta = 0.6
	sim := New(opts)
	_, _, e0 := sim.Energy()
	sim.Run(8)
	_, _, e1 := sim.Energy()
	if drift := math.Abs(e1-e0) / math.Abs(e0); drift > 0.05 {
		t.Fatalf("energy drift %.3f%% with FMM solver", 100*drift)
	}
}

// TestFMMAndBHSimulationsAgree compares one step's accelerations.
func TestFMMAndBHSimulationsAgree(t *testing.T) {
	mk := func(useFMM bool) *Simulation {
		opts := DefaultOptions()
		opts.N = 1200
		opts.P = 4
		opts.Alg = core.LOCAL
		opts.FMM = useFMM
		opts.Force.Theta = 0.5
		return New(opts)
	}
	bh, fm := mk(false), mk(true)
	bh.Step()
	fm.Step()
	var worst float64
	for i := range bh.Bodies.Acc {
		e := fm.Bodies.Acc[i].Sub(bh.Bodies.Acc[i]).Len() / (bh.Bodies.Acc[i].Len() + 1e-12)
		if e > worst {
			worst = e
		}
	}
	// Both approximate the same field at the same θ; they agree to the
	// approximation scale, not to machine precision.
	if worst > 0.15 {
		t.Fatalf("FMM and BH accelerations diverge: worst relative difference %.3f", worst)
	}
}
