package obs

import (
	"runtime"
	"time"
)

// runtimeCollector exposes Go runtime health — goroutines, heap, GC —
// sampled once per scrape. ReadMemStats costs a stop-the-world on the
// order of tens of microseconds, so it runs at scrape frequency (human
// or Prometheus driven), never on the build hot path, and at most once
// per second even if something scrapes in a tight loop.
type runtimeCollector struct {
	minInterval time.Duration
	lastSample  time.Time
	last        runtime.MemStats
}

// RegisterRuntime adds the Go runtime gauges (go_goroutines,
// go_mem_heap_alloc_bytes, go_gc_pause_seconds_total, …) to reg.
func RegisterRuntime(reg *Registry) {
	reg.MustRegister(&runtimeCollector{minInterval: time.Second})
}

// Collect implements Collector.
func (rc *runtimeCollector) Collect(out []Family) []Family {
	if time.Since(rc.lastSample) >= rc.minInterval {
		runtime.ReadMemStats(&rc.last)
		rc.lastSample = time.Now()
	}
	m := &rc.last
	gauge := func(name, help string, v float64) {
		out = append(out, Family{Name: name, Help: help, Type: TypeGauge,
			Series: []Series{{Value: v}}})
	}
	counter := func(name, help string, v float64) {
		out = append(out, Family{Name: name, Help: help, Type: TypeCounter,
			Series: []Series{{Value: v}}})
	}
	gauge("go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	gauge("go_threads", "Number of OS threads created.", float64(threadCount()))
	gauge("go_mem_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(m.HeapAlloc))
	gauge("go_mem_heap_sys_bytes", "Bytes of heap obtained from the OS.", float64(m.HeapSys))
	gauge("go_mem_heap_objects", "Number of allocated heap objects.", float64(m.HeapObjects))
	gauge("go_mem_stack_inuse_bytes", "Bytes in stack spans in use.", float64(m.StackInuse))
	gauge("go_mem_next_gc_bytes", "Heap size target of the next GC cycle.", float64(m.NextGC))
	counter("go_mem_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", float64(m.TotalAlloc))
	counter("go_mem_mallocs_total", "Cumulative count of heap allocations.", float64(m.Mallocs))
	counter("go_gc_cycles_total", "Completed GC cycles.", float64(m.NumGC))
	counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		float64(m.PauseTotalNs)/1e9)
	gauge("go_gc_cpu_fraction", "Fraction of CPU time used by the GC since program start.", m.GCCPUFraction)
	return out
}

func threadCount() int {
	n, _ := runtime.ThreadCreateProfile(nil)
	return n
}
