package phys

import (
	"math"
	"math/rand"

	"partree/internal/vec"
)

// Model selects an initial mass distribution.
type Model int

const (
	// ModelPlummer is the Plummer (1911) sphere the SPLASH-2 BARNES code
	// generates: strongly centrally condensed, which is what stresses
	// adaptive subdivision depth in the tree build.
	ModelPlummer Model = iota
	// ModelUniform scatters bodies uniformly inside a unit cube — the
	// best case for spatial partitioning, used by ablation benches.
	ModelUniform
	// ModelTwoClusters places two Plummer spheres on a collision course,
	// the classic "galaxy collision" demo, and the worst case for a
	// static spatial decomposition.
	ModelTwoClusters
	// ModelDisk is a rotating exponential disk galaxy (thin vertical
	// profile, net angular momentum) — strong planar anisotropy that a
	// cubical octree subdivides very unevenly. Default DiskParams.
	ModelDisk
	// ModelHierarchical nests Plummer sub-halos recursively, producing
	// power-law density contrast at every scale — the distribution that
	// stresses cost-blind partitions hardest. Default HierarchicalParams.
	ModelHierarchical
)

// String names the model for CLI flags and reports.
func (m Model) String() string {
	switch m {
	case ModelPlummer:
		return "plummer"
	case ModelUniform:
		return "uniform"
	case ModelTwoClusters:
		return "twoclusters"
	case ModelDisk:
		return "disk"
	case ModelHierarchical:
		return "hierarchical"
	}
	return "unknown"
}

// Models lists every model in declaration order.
func Models() []Model {
	return []Model{ModelPlummer, ModelUniform, ModelTwoClusters, ModelDisk, ModelHierarchical}
}

// ModelNames lists the valid CLI names, for flag help and error text.
func ModelNames() []string {
	ms := Models()
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

// ParseModel converts a CLI name into a Model.
func ParseModel(s string) (Model, bool) {
	for _, m := range Models() {
		if s == m.String() {
			return m, true
		}
	}
	return 0, false
}

// Generate builds an n-body system from the given model using a
// deterministic stream seeded by seed. Total mass is 1 in model units
// (G=1), matching the standard N-body convention.
func Generate(m Model, n int, seed int64) *Bodies {
	switch m {
	case ModelUniform:
		return uniformCube(n, rand.New(rand.NewSource(seed)))
	case ModelTwoClusters:
		return twoClusters(n, rand.New(rand.NewSource(seed)))
	case ModelDisk:
		return Disk(n, seed, DiskParams{})
	case ModelHierarchical:
		return Hierarchical(n, seed, HierarchicalParams{})
	default:
		return plummer(n, rand.New(rand.NewSource(seed)), vec.V3{}, vec.V3{}, 1.0)
	}
}

// plummer samples n bodies from a Plummer sphere of total mass mtot
// centered at center with bulk velocity drift, using the classic
// Aarseth/Henon/Wielen (1974) rejection recipe. Positions use the scale
// radius a=1; velocities are drawn from the isotropic distribution
// consistent with the potential so the system starts near virial
// equilibrium.
func plummer(n int, r *rand.Rand, center, drift vec.V3, mtot float64) *Bodies {
	b := NewBodies(n)
	mPer := mtot / float64(n)
	for i := 0; i < n; i++ {
		// Radius from the cumulative mass profile. Clamp the mass
		// fraction away from 1 to avoid unbounded radii.
		x := r.Float64()
		if x > 0.999 {
			x = 0.999
		}
		rad := 1 / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
		b.Pos[i] = center.Add(isotropic(r).Scale(rad))

		// Speed by von Neumann rejection against g(q) = q²(1-q²)^3.5.
		var q float64
		for {
			q = r.Float64()
			g := q * q * math.Pow(1-q*q, 3.5)
			if 0.1*r.Float64() < g {
				break
			}
		}
		vesc := math.Sqrt(2) * math.Pow(1+rad*rad, -0.25) * math.Sqrt(mtot)
		b.Vel[i] = drift.Add(isotropic(r).Scale(q * vesc))
		b.Mass[i] = mPer
		b.Cost[i] = 1
	}
	return b
}

// isotropic returns a unit vector uniformly distributed on the sphere.
func isotropic(r *rand.Rand) vec.V3 {
	z := 2*r.Float64() - 1
	t := 2 * math.Pi * r.Float64()
	s := math.Sqrt(1 - z*z)
	return vec.V3{X: s * math.Cos(t), Y: s * math.Sin(t), Z: z}
}

func uniformCube(n int, r *rand.Rand) *Bodies {
	b := NewBodies(n)
	mPer := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		b.Pos[i] = vec.V3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
		b.Vel[i] = isotropic(r).Scale(0.05 * r.Float64())
		b.Mass[i] = mPer
		b.Cost[i] = 1
	}
	return b
}

func twoClusters(n int, r *rand.Rand) *Bodies {
	n1 := n / 2
	n2 := n - n1
	sep := vec.V3{X: 6}
	vrel := vec.V3{X: -0.25, Y: 0.05}
	a := plummer(n1, r, sep.Scale(0.5), vrel.Scale(0.5), 0.5)
	c := plummer(n2, r, sep.Scale(-0.5), vrel.Scale(-0.5), 0.5)
	b := NewBodies(n)
	copy(b.Pos, a.Pos)
	copy(b.Pos[n1:], c.Pos)
	copy(b.Vel, a.Vel)
	copy(b.Vel[n1:], c.Vel)
	copy(b.Mass, a.Mass)
	copy(b.Mass[n1:], c.Mass)
	copy(b.Cost, a.Cost)
	copy(b.Cost[n1:], c.Cost)
	return b
}
