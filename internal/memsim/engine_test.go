package memsim

import (
	"sync/atomic"
	"testing"
)

// tiny returns a minimal uniform platform for engine-semantics tests.
func tiny() Platform {
	return Platform{
		Name: "tiny", Kind: SnoopyBus,
		CycleNs: 1, HitNs: 1, LineSize: 64, PageSize: 4096, Nodes: 1,
		LocalMissNs: 100, DirtyMissNs: 120, InvalNs: 5, OccupancyNs: 10,
		LockNs: 50, BarrierBase: 10, BarrierPerP: 1,
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	e := NewEngine(tiny(), 1)
	res := e.Run(func(p *Proc) {
		p.Compute(500)
		p.Compute(250)
	})
	if res.Time != 750 {
		t.Fatalf("time = %v, want 750", res.Time)
	}
	if res.PerProc[0].ComputeNs != 750 {
		t.Fatalf("compute = %v", res.PerProc[0].ComputeNs)
	}
}

func TestReadMissThenHit(t *testing.T) {
	e := NewEngine(tiny(), 1)
	res := e.Run(func(p *Proc) {
		p.Read(64)  // cold miss: 100 + hit 0? miss latency only
		p.Read(64)  // hit: 1
		p.Read(65)  // same line: hit
		p.Read(128) // new line: miss
	})
	st := res.Protocol
	if st.ColdMisses != 2 || st.Hits != 2 {
		t.Fatalf("cold=%d hits=%d, want 2/2", st.ColdMisses, st.Hits)
	}
}

func TestInvalidationCausesCoherenceMiss(t *testing.T) {
	e := NewEngine(tiny(), 2)
	res := e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Read(0)      // cold
			p.Barrier("w") // proc 1 writes after this
			p.Barrier("x")
			p.Read(0) // invalidated by proc 1's write: coherence miss
		} else {
			p.Barrier("w")
			p.Write(0)
			p.Barrier("x")
		}
	})
	if res.Protocol.CoherenceMiss == 0 {
		t.Fatal("no coherence miss recorded")
	}
	if res.Protocol.Invalidations == 0 {
		t.Fatal("no invalidation recorded")
	}
}

func TestLockMutualExclusionInVirtualTime(t *testing.T) {
	// Two procs contend for one lock; critical sections must not overlap
	// in virtual time, and the loser's wait must show up in stats.
	e := NewEngine(tiny(), 2)
	type span struct{ start, end float64 }
	spans := make([]span, 2)
	res := e.Run(func(p *Proc) {
		p.Compute(float64(p.ID) * 5) // stagger slightly
		p.Lock(1)
		start := p.Now()
		p.Compute(1000)
		end := p.Now()
		p.Unlock(1)
		spans[p.ID] = span{start, end}
	})
	a, b := spans[0], spans[1]
	if a.start < b.end && b.start < a.end {
		t.Fatalf("critical sections overlap: %+v %+v", a, b)
	}
	if res.PerProc[1].LockWaitNs <= 0 {
		t.Fatalf("second proc waited %v, want > 0", res.PerProc[1].LockWaitNs)
	}
	if res.PerProc[0].Locks != 1 || res.PerProc[1].Locks != 1 {
		t.Fatal("lock counts wrong")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := NewEngine(tiny(), 4)
	after := make([]float64, 4)
	e.Run(func(p *Proc) {
		p.Compute(float64(p.ID+1) * 100)
		p.Barrier("sync")
		after[p.ID] = p.Now()
	})
	for i := 1; i < 4; i++ {
		if after[i] != after[0] {
			t.Fatalf("proc %d resumed at %v, proc 0 at %v", i, after[i], after[0])
		}
	}
	if after[0] < 400 {
		t.Fatalf("barrier released at %v before slowest arrival 400", after[0])
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		e := NewEngine(Origin2000(4), 4)
		return e.Run(func(p *Proc) {
			for i := 0; i < 200; i++ {
				addr := uint64((i*7+p.ID*13)%64) * 64
				if i%3 == 0 {
					p.Write(addr)
				} else {
					p.Read(addr)
				}
				if i%17 == 0 {
					p.Lock(i % 4)
					p.Compute(30)
					p.Unlock(i % 4)
				}
			}
			p.Barrier("end")
		})
	}
	a, b := run(), run()
	if a.Time != b.Time {
		t.Fatalf("nondeterministic total time: %v vs %v", a.Time, b.Time)
	}
	for i := range a.PerProc {
		if a.PerProc[i] != b.PerProc[i] {
			t.Fatalf("proc %d stats differ: %+v vs %+v", i, a.PerProc[i], b.PerProc[i])
		}
	}
	if a.Protocol != b.Protocol {
		t.Fatalf("protocol stats differ: %+v vs %+v", a.Protocol, b.Protocol)
	}
}

func TestEngineSerializesExecution(t *testing.T) {
	// At most one simulated processor executes real code between
	// operations — including immediately after barrier releases and lock
	// grants, when several processors resume in the same engine step. A
	// plain counter must never see concurrent access.
	e := NewEngine(tiny(), 8)
	var inside atomic.Int32
	violated := atomic.Bool{}
	check := func() {
		if inside.Add(1) != 1 {
			violated.Store(true)
		}
		inside.Add(-1)
	}
	e.Run(func(p *Proc) {
		check() // pre-first-op window
		for i := 0; i < 50; i++ {
			check()
			p.Compute(1)
			check()
			p.Lock(i % 3) // contended: grants release procs mid-step
			check()
			p.Compute(2)
			p.Unlock(i % 3)
			check()
			if i%10 == 0 {
				p.Barrier("b") // all procs released in one step
				check()
			}
		}
		p.Barrier("final")
		check()
	})
	if violated.Load() {
		t.Fatal("two simulated procs ran concurrently between ops")
	}
}

func TestContentionSlowsBus(t *testing.T) {
	// 8 procs each missing on distinct lines at the same instant: bus
	// occupancy must queue them.
	e := NewEngine(tiny(), 8)
	res := e.Run(func(p *Proc) {
		p.Read(uint64(p.ID) * 4096)
	})
	if res.Protocol.ContentionNs <= 0 {
		t.Fatal("no bus contention recorded")
	}
	// Last-served proc should finish ~7 occupancy slots later.
	if res.Time < 100+7*10 {
		t.Fatalf("total time %v too small for queued bus", res.Time)
	}
}

func TestFIFOLockGrantOrder(t *testing.T) {
	e := NewEngine(tiny(), 3)
	var order []int
	e.Run(func(p *Proc) {
		p.Compute(float64(p.ID) * 10)
		p.Lock(7)
		order = append(order, p.ID)
		p.Compute(500)
		p.Unlock(7)
	})
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v, want [0 1 2]", order)
	}
}

func TestBatchAccessCountsEach(t *testing.T) {
	e := NewEngine(tiny(), 1)
	res := e.Run(func(p *Proc) {
		p.ReadBatch([]uint64{0, 64, 128, 0})
		p.WriteBatch([]uint64{0, 64})
	})
	if res.Protocol.Accesses != 6 {
		t.Fatalf("accesses = %d, want 6", res.Protocol.Accesses)
	}
	if res.PerProc[0].Reads != 4 || res.PerProc[0].Writes != 2 {
		t.Fatalf("reads/writes = %d/%d", res.PerProc[0].Reads, res.PerProc[0].Writes)
	}
}

func TestPhaseTimesFromBarriers(t *testing.T) {
	e := NewEngine(tiny(), 2)
	res := e.Run(func(p *Proc) {
		p.Compute(100)
		p.Barrier("build")
		p.Compute(200)
		p.Barrier("force")
	})
	b, err := res.PhaseTime("", "build")
	if err != nil || b <= 0 {
		t.Fatalf("build phase: %v %v", b, err)
	}
	f, err := res.PhaseTime("build", "force")
	if err != nil || f < 200 {
		t.Fatalf("force phase %v: %v", f, err)
	}
	if _, err := res.PhaseTime("", "nope"); err == nil {
		t.Fatal("missing barrier not reported")
	}
}
