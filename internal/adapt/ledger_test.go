package adapt

import (
	"math"
	"testing"

	"partree/internal/octree"
	"partree/internal/trace"
)

// mkSummary builds a synthetic traced-step summary with the given
// per-processor insert-phase times — the only channel the ledger reads.
func mkSummary(insertNs ...int64) *trace.Summary {
	s := &trace.Summary{PerProc: make([]trace.ProcSummary, len(insertNs))}
	for w, v := range insertNs {
		s.PerProc[w].PhaseNs[trace.PhaseInsert] = v
	}
	return s
}

// seqAssign splits bodies 0..n-1 into even contiguous zones.
func seqAssign(n, p int) [][]int32 {
	out := make([][]int32, p)
	for w := 0; w < p; w++ {
		for i := n * w / p; i < n*(w+1)/p; i++ {
			out[w] = append(out[w], int32(i))
		}
	}
	return out
}

func TestLedgerAttributesMeasuredTime(t *testing.T) {
	lg := NewLedger(0.5)
	assign := seqAssign(8, 2)
	// Zone 0 measured 3x zone 1's time: its bodies' estimates must rise
	// above zone 1's after the blend.
	if !lg.Observe(assign, mkSummary(3000, 1000)) {
		t.Fatal("observe rejected a valid summary")
	}
	est := lg.Estimates()
	if len(est) != 8 {
		t.Fatalf("estimate sized %d, want 8", len(est))
	}
	for _, b := range assign[0] {
		for _, c := range assign[1] {
			if est[b] <= est[c] {
				t.Fatalf("slow zone body %d (%.3f) not costlier than fast zone body %d (%.3f)",
					b, est[b], c, est[c])
			}
		}
	}
	// Normalization: mean stays 1.
	var sum float64
	for _, e := range est {
		sum += e
	}
	if mean := sum / float64(len(est)); math.Abs(mean-1) > 1e-9 {
		t.Fatalf("estimates mean %.6f, want 1", mean)
	}
}

func TestLedgerConvergesToMeasuredRatio(t *testing.T) {
	lg := NewLedger(0.5)
	assign := seqAssign(4, 2)
	for i := 0; i < 30; i++ {
		lg.Observe(assign, mkSummary(3000, 1000))
	}
	est := lg.Estimates()
	// Steady state: zone 0's per-body share is 3x zone 1's.
	ratio := est[0] / est[2]
	if math.Abs(ratio-3) > 0.05 {
		t.Fatalf("converged ratio %.3f, want ~3", ratio)
	}
}

func TestLedgerSkipsUnusableSummaries(t *testing.T) {
	lg := NewLedger(0)
	assign := seqAssign(6, 2)
	if lg.Observe(assign, nil) {
		t.Fatal("accepted nil summary")
	}
	if lg.Observe(assign, mkSummary(10, 20, 30)) {
		t.Fatal("accepted proc-count mismatch")
	}
	if lg.Observe(assign, mkSummary(0, 0)) {
		t.Fatal("accepted zero measured time")
	}
	if lg.Observe([][]int32{{}, {}}, mkSummary(10, 20)) {
		t.Fatal("accepted empty assignment")
	}
}

func TestLedgerSeedsFromModeledCosts(t *testing.T) {
	lg := NewLedger(0)
	d := octree.BodyData{Cost: []int64{1, 1, 6, 1}}
	costs, total := lg.Costs(d, 4)
	if len(costs) != 4 {
		t.Fatalf("rendered %d costs, want 4", len(costs))
	}
	var sum int64
	for _, c := range costs {
		if c < 1 {
			t.Fatalf("rendered cost %d below floor", c)
		}
		sum += c
	}
	if sum != total {
		t.Fatalf("reported total %d, slice sums to %d", total, sum)
	}
	// Modeled shape survives: body 2 carries ~2/3 of the mass.
	if costs[2] <= 3*costs[0] {
		t.Fatalf("modeled skew lost in seeding: %v", costs)
	}
}

func TestLedgerCostsBounded(t *testing.T) {
	lg := NewLedger(1)
	assign := seqAssign(4, 2)
	// Pathological measurement: all time on one zone, repeated. Clamps
	// and normalization must keep every rendered cost in range.
	for i := 0; i < 50; i++ {
		lg.Observe(assign, mkSummary(1<<40, 0))
	}
	costs, total := lg.Costs(octree.BodyData{}, 4)
	if total <= 0 {
		t.Fatalf("total %d", total)
	}
	for i, c := range costs {
		if c < 1 || c > maxCostInt {
			t.Fatalf("cost[%d] = %d out of [1, %d]", i, c, maxCostInt)
		}
	}
}

func TestLedgerResetsOnResize(t *testing.T) {
	lg := NewLedger(0.5)
	lg.Observe(seqAssign(8, 2), mkSummary(100, 300))
	costs, _ := lg.Costs(octree.BodyData{}, 4)
	if len(costs) != 4 {
		t.Fatalf("rendered %d costs after resize, want 4", len(costs))
	}
	for _, e := range lg.Estimates() {
		if e != 1 {
			t.Fatalf("resize did not reset estimates: %v", lg.Estimates())
		}
	}
}
