package core

import (
	"sync"
	"sync/atomic"

	"partree/internal/octree"
	"partree/internal/trace"
	"partree/internal/vec"
)

// inserter is the locked concurrent-insertion discipline shared by ORIG,
// LOCAL, UPDATE, and PARTREE. Child-slot transitions follow a strict
// protocol (see package octree's concurrency contract):
//
//   - nil → node: holding the parent cell's striped lock, slot re-checked;
//   - leaf → cell (subdivision), leaf → nil (reclaim): holding the leaf's
//     striped lock, slot re-checked.
//
// Readers descend lock-free on atomic child loads and validate after
// locking: if the slot no longer holds the node they locked, they retry.
// Exactly one lock is ever held at a time, so stripe collisions cannot
// deadlock.
type inserter struct {
	s     *octree.Store
	arena int           // arena this processor allocates from
	proc  int           // processor id (Owner tag)
	pc    *procCounters // this processor's counters
	// bodyLeaf, when non-nil, maps body → containing leaf Ref (stored as
	// uint32, accessed atomically). UPDATE maintains it across steps.
	bodyLeaf []uint32
	// freeLeaves recycles retired leaf slots (UPDATE only). Leaves
	// retired during a step land in deferredFree and are promoted only at
	// the step barrier: reusing a slot mid-step would rewrite fields that
	// UPDATE's unlocked containment checks may still be reading through
	// stale bodyLeaf entries.
	freeLeaves   []octree.Ref
	deferredFree []octree.Ref
	// tp is this processor's trace handle (nil or disabled = tracing
	// off). The pending lock timestamps live on the handle: the inserter
	// holds exactly one striped lock at a time, so one slot suffices.
	tp *trace.P
}

// lockNode acquires r's striped lock, counting the acquisition and —
// when tracing — stamping the wait interval. All builder lock sites
// funnel through here so the trace's lock-event count equals
// procCounters.Locks by construction.
func (ins *inserter) lockNode(r octree.Ref) *sync.Mutex {
	if ins.tp.Active() {
		start := ins.tp.Now()
		mu := ins.s.Lock(r)
		ins.tp.LockAcquired(start)
		ins.pc.Locks++
		return mu
	}
	mu := ins.s.Lock(r)
	ins.pc.Locks++
	return mu
}

// unlockNode releases the lock and emits the pending lock event.
func (ins *inserter) unlockNode(mu *sync.Mutex) {
	mu.Unlock()
	ins.tp.LockReleased()
}

// promoteFreed moves the step's retired leaves onto the reusable free
// list. Call only at a barrier, when no other goroutine can hold a stale
// reference that it has not yet re-validated.
func (ins *inserter) promoteFreed() {
	ins.freeLeaves = append(ins.freeLeaves, ins.deferredFree...)
	ins.deferredFree = ins.deferredFree[:0]
}

func (ins *inserter) setBodyLeaf(b int32, r octree.Ref) {
	if ins.bodyLeaf != nil {
		atomic.StoreUint32(&ins.bodyLeaf[b], uint32(r))
	}
}

func (ins *inserter) getBodyLeaf(b int32) octree.Ref {
	return octree.Ref(atomic.LoadUint32(&ins.bodyLeaf[b]))
}

// allocLeaf allocates (or recycles) a leaf.
func (ins *inserter) allocLeaf(cube vec.Cube, parent octree.Ref) (octree.Ref, *octree.Leaf) {
	ins.pc.Leaves++
	if n := len(ins.freeLeaves); n > 0 {
		r := ins.freeLeaves[n-1]
		ins.freeLeaves = ins.freeLeaves[:n-1]
		l := ins.s.Leaf(r)
		l.Cube = cube
		l.Parent = parent
		l.Owner = int32(ins.proc)
		l.Retired = false
		l.Bodies = l.Bodies[:0]
		return r, l
	}
	return ins.s.AllocLeaf(ins.arena, cube, parent, ins.proc)
}

func (ins *inserter) allocCell(cube vec.Cube, parent octree.Ref) (octree.Ref, *octree.Cell) {
	ins.pc.Cells++
	return ins.s.AllocCell(ins.arena, cube, parent, ins.proc)
}

// insert places body b into the shared subtree rooted at cell from (at
// depth fromDepth), locking as the paper's algorithms do.
func (ins *inserter) insert(from octree.Ref, fromDepth int, b int32, pos []vec.V3) {
	s := ins.s
	p := pos[b]
	cur := from
	depth := fromDepth
	for {
		c := s.Cell(cur)
		o := c.Cube.OctantOf(p)
		ch := c.Child(o)
		switch {
		case ch.IsNil():
			mu := ins.lockNode(cur)
			if got := c.Child(o); !got.IsNil() {
				// Lost the race; someone filled the slot.
				ins.unlockNode(mu)
				ins.pc.Retries++
				continue
			}
			lr, l := ins.allocLeaf(c.Cube.Child(o), cur)
			l.Bodies = append(l.Bodies, b)
			ins.setBodyLeaf(b, lr)
			c.SetChild(o, lr)
			ins.unlockNode(mu)
			return

		case ch.IsLeaf():
			mu := ins.lockNode(ch)
			if c.Child(o) != ch {
				// The leaf was subdivided, reclaimed, or replaced
				// between our read and our lock.
				ins.unlockNode(mu)
				ins.pc.Retries++
				continue
			}
			l := s.Leaf(ch)
			if len(l.Bodies) < s.LeafCap || depth+1 >= s.MaxDepth {
				l.Bodies = append(l.Bodies, b)
				ins.setBodyLeaf(b, ch)
				ins.unlockNode(mu)
				return
			}
			// Subdivide: build the replacement subtree privately,
			// then publish it in place of the leaf.
			cr := ins.subdivide(cur, ch, l, depth, pos)
			c.SetChild(o, cr)
			ins.unlockNode(mu)
			cur = cr
			depth++

		default:
			cur = ch
			depth++
		}
	}
}

// subdivide converts full leaf lr (locked by the caller) into a private
// cell subtree holding the leaf's bodies, retires the leaf, and returns
// the new cell. The caller publishes the result and unlocks.
func (ins *inserter) subdivide(parent, lr octree.Ref, l *octree.Leaf, depth int, pos []vec.V3) octree.Ref {
	var t0 int64
	traced := ins.tp.Active()
	if traced {
		t0 = ins.tp.Now()
	}
	cr, _ := ins.allocCell(l.Cube, parent)
	for _, ob := range l.Bodies {
		ins.insertPrivate(cr, depth+1, ob, pos)
	}
	l.Retired = true
	if ins.bodyLeaf != nil {
		// The rebuilding algorithms reset their stores each step; only
		// UPDATE recycles, and only from the next step barrier onward.
		ins.deferredFree = append(ins.deferredFree, lr)
	}
	if traced {
		ins.tp.Span(trace.PhaseSubdivide, t0)
	}
	return cr
}

// insertPrivate inserts into a subtree that is not yet published, so no
// locks are needed. It still maintains bodyLeaf.
func (ins *inserter) insertPrivate(root octree.Ref, rootDepth int, b int32, pos []vec.V3) {
	s := ins.s
	p := pos[b]
	cur := root
	depth := rootDepth
	for {
		c := s.Cell(cur)
		o := c.Cube.OctantOf(p)
		ch := c.Child(o)
		switch {
		case ch.IsNil():
			nlr, nl := ins.allocLeaf(c.Cube.Child(o), cur)
			nl.Bodies = append(nl.Bodies, b)
			ins.setBodyLeaf(b, nlr)
			c.SetChild(o, nlr)
			return
		case ch.IsLeaf():
			nl := s.Leaf(ch)
			if len(nl.Bodies) < s.LeafCap || depth+1 >= s.MaxDepth {
				nl.Bodies = append(nl.Bodies, b)
				ins.setBodyLeaf(b, ch)
				return
			}
			cr := ins.subdivide(cur, ch, nl, depth, pos)
			c.SetChild(o, cr)
			cur = cr
			depth++
		default:
			cur = ch
			depth++
		}
	}
}

// remove takes body b out of its current leaf (UPDATE only). If the leaf
// empties, it is retired and unlinked from its parent. Returns the leaf's
// parent cell, from which the caller walks upward to reinsert.
func (ins *inserter) remove(b int32) octree.Ref {
	s := ins.s
	for {
		lr := ins.getBodyLeaf(b)
		mu := ins.lockNode(lr)
		if ins.getBodyLeaf(b) != lr {
			ins.unlockNode(mu)
			ins.pc.Retries++
			continue
		}
		l := s.Leaf(lr)
		// Delete b from the leaf.
		found := false
		for i, ob := range l.Bodies {
			if ob == b {
				last := len(l.Bodies) - 1
				l.Bodies[i] = l.Bodies[last]
				l.Bodies = l.Bodies[:last]
				found = true
				break
			}
		}
		if !found {
			panic("core: bodyLeaf map out of sync with leaf contents")
		}
		parent := l.Parent
		if len(l.Bodies) == 0 {
			// Reclaim the leaf, as the paper does.
			pc := s.Cell(parent)
			if o, ok := pc.SlotOf(lr); ok {
				pc.SetChild(o, octree.Nil)
			}
			l.Retired = true
			ins.deferredFree = append(ins.deferredFree, lr)
		}
		ins.unlockNode(mu)
		return parent
	}
}
