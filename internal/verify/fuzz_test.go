package verify

import (
	"encoding/binary"
	"testing"

	"partree/internal/core"
	"partree/internal/phys"
	"partree/internal/vec"
)

// FuzzOrigInsert drives the ORIG concurrent insert path (the richest
// locking discipline: nil→leaf races, leaf subdivision under lock,
// retry-on-invalidation) with fuzzer-chosen body positions and leaf cap,
// and differentially verifies the resulting tree against the serial
// reference. Byte layout: byte 0 is the leaf cap (1..16), then 6 bytes
// per body, two per coordinate, mapped onto [-1, 1]. Degenerate inputs —
// coincident bodies, collinear clusters, a single point — are exactly
// what shakes out MaxDepth overflow and deep-subdivision races.
func FuzzOrigInsert(f *testing.F) {
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0})
	// Two coincident bodies and one far away.
	f.Add([]byte{1, 1, 2, 3, 4, 5, 6, 1, 2, 3, 4, 5, 6, 255, 255, 255, 255, 255, 255})
	// A spread of bodies at cap 2.
	seed := []byte{2}
	for i := 0; i < 64; i++ {
		seed = append(seed, byte(i*37), byte(i*11), byte(i*53), byte(i*7), byte(i*101), byte(i*13))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		leafCap := 1 + int(data[0]%16)
		data = data[1:]
		n := len(data) / 6
		if n > 512 {
			n = 512
		}
		bodies := phys.NewBodies(n)
		for i := 0; i < n; i++ {
			rec := data[i*6 : i*6+6]
			coord := func(k int) float64 {
				return float64(binary.LittleEndian.Uint16(rec[k*2:]))/32767.5 - 1
			}
			bodies.Pos[i] = vec.V3{X: coord(0), Y: coord(1), Z: coord(2)}
			bodies.Mass[i] = 1 / float64(n)
			bodies.Cost[i] = 1
		}
		const p = 4
		bld := core.New(core.ORIG, core.Config{P: p, LeafCap: leafCap})
		in := &core.Input{Bodies: bodies, Assign: core.EvenAssign(n, p)}
		tree, m := bld.Build(in)
		if err := Build(core.ORIG, tree, m, bodies, 0); err != nil {
			t.Fatalf("n=%d k=%d: %v", n, leafCap, err)
		}
	})
}
