package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"partree/internal/stats"
)

// Table renders the summary as a per-processor breakdown table (one row
// per processor) in the internal/stats table model, so the harness can
// print it aligned or dump it as CSV.
func (s *Summary) Table() *stats.Table {
	t := stats.NewTable("proc",
		"partition_ns", "insert_ns", "subdivide_ns", "moments_ns", "barrier_ns",
		"spans", "lock_events", "lock_wait_ns", "lock_hold_ns",
		"hold_p50_ns", "hold_p95_ns", "hold_max_ns", "dropped")
	if s == nil {
		return t
	}
	for w := range s.PerProc {
		ps := &s.PerProc[w]
		t.Row(w,
			ps.PhaseNs[PhasePartition], ps.PhaseNs[PhaseInsert], ps.PhaseNs[PhaseSubdivide],
			ps.PhaseNs[PhaseMoments], ps.PhaseNs[PhaseBarrier],
			ps.Spans, ps.LockEvents, ps.LockWaitNs, ps.LockHoldNs,
			ps.HoldP50Ns, ps.HoldP95Ns, ps.HoldMaxNs, ps.Dropped)
	}
	return t
}

// WriteCSV writes the per-processor breakdown as CSV.
func (s *Summary) WriteCSV(w io.Writer) error { return s.Table().WriteCSV(w) }

// WriteCSV writes the recorder's current summary as CSV.
func (r *Recorder) WriteCSV(w io.Writer) error { return r.Summarize().WriteCSV(w) }

// us renders an epoch-relative nanosecond timestamp in the microseconds
// Chrome's trace_event format expects, with fixed sub-microsecond digits
// so the output is byte-deterministic for golden tests.
func us(ns int64) string { return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64) }

// WriteChromeTrace writes the buffered timeline as a Chrome trace_event
// JSON array — load it at chrome://tracing or https://ui.perfetto.dev.
// Each processor is one "thread" (tid = processor index) of pid 0; phase
// spans and lock events are complete ("X") events with microsecond
// timestamps, and lock events carry their wait/hold split in args. The
// JSON is assembled by hand (no encoding/json) so field order and number
// formatting stay stable for the exporter goldens.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		bw.WriteString("\n")
		fmt.Fprintf(bw, format, args...)
	}
	for p := 0; p < len(r.bufs); p++ {
		emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"proc %d"}}`, p, p)
		for _, e := range r.Events(p) {
			switch e.Kind {
			case KindSpan:
				emit(`{"name":%q,"cat":"build","ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s}`,
					e.Phase.String(), p, us(e.Start), us(e.End-e.Start))
			case KindLock:
				emit(`{"name":"lock","cat":"lock","ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"args":{"wait_ns":%d,"hold_ns":%d}}`,
					p, us(e.Start), us(e.End-e.Start), e.Acquired-e.Start, e.End-e.Acquired)
			}
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// WriteFile writes the trace to path, choosing the format from the
// extension: ".csv" gets the per-processor summary breakdown, anything
// else the Chrome trace_event timeline.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".csv") {
		werr = r.WriteCSV(f)
	} else {
		werr = r.WriteChromeTrace(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
