package runner

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"partree/internal/core"
	"partree/internal/phys"
)

// TestUnknownModelRejected is the regression test for bodiesFor silently
// generating bodies from the zero-value model: an invalid -model must be
// rejected at validation, and the generation layer itself must propagate
// the parse error rather than swallow it.
func TestUnknownModelRejected(t *testing.T) {
	spec := Spec{Backend: Native, Alg: core.LOCAL, Procs: 1, Bodies: 64, Steps: 1, Model: "bogus"}
	res := New(0).Run(context.Background(), spec)
	if !res.Failed() || !strings.Contains(res.Err, `unknown mass model "bogus"`) {
		t.Fatalf("bogus model accepted: %+v", res)
	}
	for _, m := range []phys.Model{phys.ModelPlummer, phys.ModelUniform, phys.ModelTwoClusters} {
		if !strings.Contains(res.Err, m.String()) {
			t.Fatalf("error %q does not list valid model %s", res.Err, m)
		}
	}

	r := New(0)
	b, _, err := r.bodiesFor("bogus", 64, 1)
	if err == nil || b != nil {
		t.Fatalf("bodiesFor generated %v bodies from an unknown model (err %v)", b, err)
	}
	// The error is memoized like a body set: the second caller sees it too.
	if _, _, err2 := r.bodiesFor("bogus", 64, 1); err2 == nil {
		t.Fatal("memoized bodiesFor error lost on second call")
	}
}

// TestRunAllBoundedFanOut pins the fix for RunAll launching one goroutine
// per spec: under bounded fan-out at most `workers` specs can be in
// flight (entered into the cache but not yet complete) at any instant,
// whereas the old regime enqueued all cells immediately. Results must
// still come back in spec order.
func TestRunAllBoundedFanOut(t *testing.T) {
	const workers, cells = 4, 64
	r := New(workers)
	specs := make([]Spec, cells)
	for i := range specs {
		specs[i] = Spec{Backend: Simulated, Platform: "challenge", Alg: core.LOCAL,
			Procs: 2, Bodies: 512, Steps: 1, Seed: int64(i + 1)}
	}

	peak := int64(0)
	stop := make(chan struct{})
	var mon sync.WaitGroup
	mon.Add(1)
	go func() {
		defer mon.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pending := int64(0)
			r.mu.Lock()
			for _, e := range r.cache {
				select {
				case <-e.done:
				default:
					pending++
				}
			}
			r.mu.Unlock()
			if pending > atomic.LoadInt64(&peak) {
				atomic.StoreInt64(&peak, pending)
			}
			runtime.Gosched()
		}
	}()
	results := r.RunAll(context.Background(), specs)
	close(stop)
	mon.Wait()

	for i, res := range results {
		if res.Failed() {
			t.Fatalf("cell %d failed: %s", i, res.Err)
		}
		if res.Spec.Seed != specs[i].Seed {
			t.Fatalf("result %d is for seed %d, want %d", i, res.Spec.Seed, specs[i].Seed)
		}
	}
	if p := atomic.LoadInt64(&peak); p == 0 || p > workers {
		t.Fatalf("peak of %d specs in flight for %d cells (worker bound %d): fan-out is not bounded",
			p, cells, workers)
	}
}

// TestGenNsSeparateFromWall pins the fix for memoized body generation
// being charged to whichever spec ran first: every spec sharing a body
// set reports the same generation time, outside WallNs.
func TestGenNsSeparateFromWall(t *testing.T) {
	r := New(1)
	first := r.Run(context.Background(), simSpec(core.LOCAL, 2, 8192))
	second := r.Run(context.Background(), simSpec(core.SPACE, 2, 8192))
	if first.Failed() || second.Failed() {
		t.Fatalf("runs failed: %q %q", first.Err, second.Err)
	}
	if first.GenNs <= 0 {
		t.Fatalf("generation time not reported: %d", first.GenNs)
	}
	if first.GenNs != second.GenNs {
		t.Fatalf("specs sharing one body set report different GenNs: %d vs %d",
			first.GenNs, second.GenNs)
	}
	if first.WallNs <= 0 || second.WallNs <= 0 {
		t.Fatalf("wall times missing: %d %d", first.WallNs, second.WallNs)
	}
}

// TestRunStressSharedSpec hammers one spec from many goroutines with a
// mix of cancelled and live contexts: the spec must execute exactly once,
// every live caller must see the same completed result, and cancelled
// callers must get an error without poisoning the cache.
func TestRunStressSharedSpec(t *testing.T) {
	r := New(2)
	spec := simSpec(core.ORIG, 2, 512)
	const callers = 64
	results := make([]Result, callers)
	cancelled := make([]bool, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				c, cancel := context.WithCancel(ctx)
				cancel()
				ctx, cancelled[i] = c, true
			}
			results[i] = r.Run(ctx, spec)
		}(i)
	}
	wg.Wait()

	if n := atomic.LoadInt64(&r.execs); n != 1 {
		t.Fatalf("spec executed %d times, want exactly 1", n)
	}
	var want Result
	for i := range results {
		if cancelled[i] {
			continue
		}
		want = results[i]
		break
	}
	if want.Failed() {
		t.Fatalf("live caller failed: %s", want.Err)
	}
	for i, res := range results {
		if cancelled[i] {
			if !res.Failed() || !strings.Contains(res.Err, "context canceled") {
				t.Fatalf("cancelled caller %d got %+v", i, res)
			}
			continue
		}
		if res.TotalNs != want.TotalNs || res.LocksTotal != want.LocksTotal {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
	// The execution a cancelled caller abandoned still completed into the
	// cache: a later call recalls it without re-executing.
	late := r.Run(context.Background(), spec)
	if late.Failed() || late.TotalNs != want.TotalNs {
		t.Fatalf("lost result: %+v", late)
	}
	if n := atomic.LoadInt64(&r.execs); n != 1 {
		t.Fatalf("late recall re-executed the spec (%d executions)", n)
	}
}

// TestCheckedSpecsPass runs Check-enabled specs through both backends:
// pristine builds must verify, and the flag must be part of the cache
// identity so checked and unchecked runs don't alias.
func TestCheckedSpecsPass(t *testing.T) {
	r := New(0)
	native := Spec{Backend: Native, Alg: core.SPACE, Procs: 4, Bodies: 1024, Steps: 2, Seed: 3, Check: true}
	build := Spec{Backend: Native, Alg: core.UPDATE, Procs: 2, Bodies: 512, Steps: 2, Seed: 3, BuildOnly: true, Check: true}
	sim := simSpec(core.PARTREE, 2, 512)
	sim.Check = true
	for _, spec := range []Spec{native, build, sim} {
		res := r.Run(context.Background(), spec)
		if res.Failed() {
			t.Fatalf("%v: %s", spec, res.FailureMessage())
		}
	}
	unchecked := native
	unchecked.Check = false
	if unchecked.Key() == native.Key() {
		t.Fatal("Check is not part of the spec identity")
	}
}
