package runner

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/phys"
)

// Runner executes specs with a bounded worker pool and a memoizing,
// concurrency-safe result cache. Identical specs share one execution no
// matter how many goroutines request them; distinct specs run
// concurrently up to the worker bound. Bodies are memoized per
// (model, n, seed) and shared read-only across runs, so every backend
// sees the same deterministic initial conditions.
type Runner struct {
	workers int
	sem     chan struct{}

	// execs counts spec executions (not cache hits); tests assert a spec
	// requested from many goroutines runs exactly once.
	execs int64

	mu     sync.Mutex
	cache  map[string]*entry
	bodies map[string]*bodiesEntry

	// obs holds the live instrumentation counters (see obs.go). They are
	// always maintained — a few atomic adds per spec — and surfaced over
	// HTTP only when RegisterObs attaches them to a registry.
	obs *runnerObs
}

type entry struct {
	spec Spec // normalized
	done chan struct{}
	res  Result
}

type bodiesEntry struct {
	done  chan struct{}
	b     *phys.Bodies
	genNs int64
	err   error
}

// New creates a runner; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   map[string]*entry{},
		bodies:  map[string]*bodiesEntry{},
		obs:     newRunnerObs(),
	}
}

// Workers returns the pool bound.
func (r *Runner) Workers() int { return r.workers }

// Run executes (or recalls) one spec. It blocks until the spec's result
// is available or ctx is done; on cancellation it returns immediately
// with an error Result while any in-flight execution completes into the
// cache for later callers. A context that is already cancelled on entry
// always yields the cancellation error, even if the result is cached.
// The per-spec Timeout bounds the execution itself, independently of
// the caller's context.
func (r *Runner) Run(ctx context.Context, spec Spec) Result {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Result{Spec: spec, Err: err.Error()}
	}
	if err := ctx.Err(); err != nil {
		return Result{Spec: spec, Err: fmt.Sprintf("runner: %v", err)}
	}
	key := spec.Key()
	r.obs.runs.Add(1)
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &entry{spec: spec, done: make(chan struct{})}
		r.cache[key] = e
		r.obs.cacheMisses.Add(1)
		go r.execute(e)
	} else {
		r.obs.cacheHits.Add(1)
	}
	r.mu.Unlock()
	select {
	case <-e.done:
		return e.res
	case <-ctx.Done():
		return Result{Spec: spec, Err: fmt.Sprintf("runner: %v", ctx.Err())}
	}
}

// RunAll fans the specs out across the worker pool and returns their
// results in spec order — concurrency never reorders or drops cells.
// Fan-out is bounded at the worker count: a full paperrepro sweep must
// not park one goroutine per grid cell, so a fixed set of launchers
// pulls spec indices from a shared counter instead. Launchers block in
// Run (not on a worker slot), so duplicated specs sharing one memoized
// execution cannot deadlock the pool.
func (r *Runner) RunAll(ctx context.Context, specs []Spec) []Result {
	return r.RunAllProgress(ctx, specs, nil)
}

// RunAllProgress is RunAll with a completion callback: done(i, res) fires
// once per spec as its result becomes available, from a launcher
// goroutine — so live progress (the harness's cells-done gauge) can tick
// mid-sweep. done may be nil.
func (r *Runner) RunAllProgress(ctx context.Context, specs []Spec, done func(i int, res Result)) []Result {
	out := make([]Result, len(specs))
	launchers := r.workers
	if launchers > len(specs) {
		launchers = len(specs)
	}
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < launchers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(specs) {
					return
				}
				out[i] = r.Run(ctx, specs[i])
				if done != nil {
					done(i, out[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// execute runs one cache entry to completion under a worker slot. Body
// generation happens before the wall clock starts: body sets are memoized
// across specs, so charging generation to whichever spec ran first would
// make sweep-cell wall times incomparable. GenNs instead reports the full
// generation time of the spec's body set, identically on every spec that
// shares it.
func (r *Runner) execute(e *entry) {
	r.obs.queueDepth.Add(1)
	r.sem <- struct{}{}
	r.obs.queueDepth.Add(-1)
	r.obs.started.Add(1)
	r.obs.inFlight.Add(1)
	defer func() { <-r.sem }()
	// finish publishes the result. Counters settle *before* e.done is
	// closed, so a caller that just saw its Run return can audit the obs
	// counters against the cache without racing them (AuditObs relies on
	// this ordering).
	finish := func(res Result) {
		e.res = res
		r.obs.observeExecuted(res)
		r.obs.inFlight.Add(-1)
		close(e.done)
	}
	atomic.AddInt64(&r.execs, 1)
	ctx := context.Background()
	if e.spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.spec.Timeout)
		defer cancel()
	}
	bodies, genNs, err := r.bodiesFor(e.spec.Model, e.spec.Bodies, e.spec.Seed)
	if err != nil {
		finish(Result{Spec: e.spec, Err: err.Error()})
		return
	}
	start := time.Now()
	var res Result
	switch e.spec.Backend {
	case Native:
		res = runNative(ctx, e.spec, bodies)
	default:
		res = runSimulated(ctx, e.spec, bodies)
	}
	res.Spec = e.spec
	res.GenNs = genNs
	res.WallNs = time.Since(start).Nanoseconds()
	// Trace files are written after the wall clock stops, so tracing a
	// sweep never perturbs its measured times.
	if werr := res.writeTrace(); werr != nil && res.Err == "" {
		res.Err = fmt.Sprintf("runner: writing trace: %v", werr)
	}
	finish(res)
}

// Bodies returns the memoized body system for (model, n, seed). The
// returned slice set is shared and must be treated as read-only;
// backends clone before mutating.
func (r *Runner) Bodies(model phys.Model, n int, seed int64) *phys.Bodies {
	b, _, _ := r.bodiesFor(model.String(), n, seed) // typed models always parse
	return b
}

func (r *Runner) bodiesFor(model string, n int, seed int64) (*phys.Bodies, int64, error) {
	key := fmt.Sprintf("%s|%d|%d", model, n, seed)
	r.mu.Lock()
	be, ok := r.bodies[key]
	if !ok {
		be = &bodiesEntry{done: make(chan struct{})}
		r.bodies[key] = be
		r.obs.memoMisses.Add(1)
		r.mu.Unlock()
		if m, ok := phys.ParseModel(model); ok {
			start := time.Now()
			be.b = phys.Generate(m, n, seed)
			be.genNs = time.Since(start).Nanoseconds()
		} else {
			be.err = fmt.Errorf("runner: unknown mass model %q (valid: %s, %s, %s)",
				model, phys.ModelPlummer, phys.ModelUniform, phys.ModelTwoClusters)
		}
		close(be.done)
		return be.b, be.genNs, be.err
	}
	r.obs.memoHits.Add(1)
	r.mu.Unlock()
	<-be.done
	return be.b, be.genNs, be.err
}

// Results snapshots every completed result in the cache, sorted by spec
// key, for CSV/JSON dumps.
func (r *Runner) Results() []Result {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.cache))
	for _, e := range r.cache {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	var out []Result
	for _, e := range entries {
		select {
		case <-e.done:
			out = append(out, e.res)
		default:
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Key() < out[j].Spec.Key() })
	return out
}
