package force

import (
	"fmt"
	"testing"

	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/phys"
)

func benchTree(n int) (*phys.Bodies, *octree.Tree, octree.BodyData) {
	b := phys.Generate(phys.ModelPlummer, n, 1)
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	octree.ComputeMomentsSerial(tr, d)
	return b, tr, d
}

func BenchmarkAccel(b *testing.B) {
	_, tr, d := benchTree(65536)
	for _, quad := range []bool{false, true} {
		b.Run(fmt.Sprintf("quad=%v", quad), func(b *testing.B) {
			p := DefaultParams()
			p.Quadrupole = quad
			var inter int64
			for i := 0; i < b.N; i++ {
				r := Accel(tr, d, int32(i%65536), p)
				inter = r.Interactions
			}
			b.ReportMetric(float64(inter), "interactions")
		})
	}
}

func BenchmarkComputeAll(b *testing.B) {
	bodies, tr, _ := benchTree(32768)
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			assign := core.EvenAssign(bodies.N(), p)
			for i := 0; i < b.N; i++ {
				ComputeAll(tr, bodies, assign, DefaultParams())
			}
		})
	}
}
