package core

import (
	"strings"
	"testing"

	"partree/internal/octree"
	"partree/internal/phys"
)

func input(t *testing.T, n, p int, seed int64) *Input {
	t.Helper()
	b := phys.Generate(phys.ModelPlummer, n, seed)
	return &Input{Bodies: b, Assign: EvenAssign(n, p)}
}

func checkAgainstSerial(t *testing.T, tr *octree.Tree, in *Input, canonical bool) {
	t.Helper()
	d := octree.BodyData{Pos: in.Bodies.Pos, Mass: in.Bodies.Mass, Cost: in.Bodies.Cost}
	if err := octree.Check(tr, d, octree.CheckOptions{Canonical: canonical, Moments: true, Tol: 1e-9}); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if canonical {
		ref := octree.BuildSerial(in.Bodies.Pos, tr.Store.LeafCap)
		if err := octree.Equal(tr, ref); err != nil {
			t.Fatalf("not equal to canonical serial tree: %v", err)
		}
	}
}

func TestBuildersMatchSerial(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, p := range []int{1, 2, 4, 8} {
			for _, n := range []int{0, 1, 100, 3000} {
				in := input(t, n, p, 42)
				bld := New(alg, Config{P: p, LeafCap: 8})
				tr, m := bld.Build(in)
				if m.Alg != alg {
					t.Fatalf("metrics tagged %v, want %v", m.Alg, alg)
				}
				// UPDATE's first step is a rebuild, so canonical too.
				checkAgainstSerial(t, tr, in, true)
				if t.Failed() {
					t.Fatalf("alg=%v p=%d n=%d failed", alg, p, n)
				}
			}
		}
	}
}

func TestBuildersLeafCapVariants(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, k := range []int{1, 4, 16} {
			in := input(t, 2000, 4, 7)
			bld := New(alg, Config{P: 4, LeafCap: k})
			tr, _ := bld.Build(in)
			checkAgainstSerial(t, tr, in, true)
			if t.Failed() {
				t.Fatalf("alg=%v k=%d failed", alg, k)
			}
		}
	}
}

func TestBuildersUniformAndClustered(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, model := range []phys.Model{phys.ModelUniform, phys.ModelTwoClusters} {
			b := phys.Generate(model, 4000, 5)
			in := &Input{Bodies: b, Assign: EvenAssign(b.N(), 6)}
			bld := New(alg, Config{P: 6, LeafCap: 8})
			tr, _ := bld.Build(in)
			checkAgainstSerial(t, tr, in, true)
			if t.Failed() {
				t.Fatalf("alg=%v model=%v failed", alg, model)
			}
		}
	}
}

func TestLockCountOrdering(t *testing.T) {
	// The design premise of the algorithm sequence (paper Figure 15):
	// lock operations fall from ORIG/LOCAL through PARTREE to SPACE = 0.
	in := input(t, 8000, 8, 3)
	locks := map[Algorithm]int64{}
	for _, alg := range Algorithms() {
		bld := New(alg, Config{P: 8, LeafCap: 8})
		_, m := bld.Build(in)
		locks[alg] = m.TotalLocks()
	}
	if locks[SPACE] != 0 {
		t.Fatalf("SPACE used %d locks, want 0", locks[SPACE])
	}
	if locks[PARTREE] == 0 || locks[PARTREE] >= locks[LOCAL] {
		t.Fatalf("PARTREE locks %d not in (0, LOCAL=%d)", locks[PARTREE], locks[LOCAL])
	}
	if locks[ORIG] < locks[LOCAL]/2 {
		t.Fatalf("ORIG locks %d unexpectedly below LOCAL %d", locks[ORIG], locks[LOCAL])
	}
	// Lock-per-body algorithms: at least one lock per body inserted.
	if locks[ORIG] < 8000 {
		t.Fatalf("ORIG locks %d < bodies", locks[ORIG])
	}
}

func TestSpaceZeroLocksAlways(t *testing.T) {
	for _, p := range []int{1, 3, 16} {
		in := input(t, 5000, p, 9)
		bld := New(SPACE, Config{P: p, LeafCap: 8})
		_, m := bld.Build(in)
		if m.TotalLocks() != 0 {
			t.Fatalf("p=%d: SPACE used %d locks", p, m.TotalLocks())
		}
	}
}

func TestUpdateAcrossSteps(t *testing.T) {
	// Simulate drifting bodies: UPDATE's tree must stay valid (all
	// structural invariants) though not canonical, and must keep
	// matching physics: every body in exactly one leaf at its position.
	n, p := 3000, 4
	b := phys.Generate(phys.ModelPlummer, n, 21)
	bld := New(UPDATE, Config{P: p, LeafCap: 8})
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}

	for step := 0; step < 8; step++ {
		in := &Input{Bodies: b, Assign: EvenAssign(n, p), Step: step}
		tr, m := bld.Build(in)
		if err := octree.Check(tr, d, octree.CheckOptions{Moments: true, Tol: 1e-9}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step > 0 && m.TotalBodiesMoved() == 0 {
			t.Fatalf("step %d: no bodies moved despite drift", step)
		}
		// Drift bodies.
		b.Drift(0, n, 0.05)
	}
}

func TestUpdateStationaryMovesNothing(t *testing.T) {
	n, p := 2000, 4
	b := phys.Generate(phys.ModelPlummer, n, 13)
	bld := New(UPDATE, Config{P: p, LeafCap: 8})
	for step := 0; step < 3; step++ {
		in := &Input{Bodies: b, Assign: EvenAssign(n, p), Step: step}
		_, m := bld.Build(in)
		if step > 0 {
			if mv := m.TotalBodiesMoved(); mv != 0 {
				t.Fatalf("step %d: %d bodies moved with no motion", step, mv)
			}
			if lk := m.TotalLocks(); lk != 0 {
				t.Fatalf("step %d: %d locks with no motion", step, lk)
			}
		}
	}
}

func TestUpdateFewerLocksThanRebuild(t *testing.T) {
	// With slow drift, UPDATE must lock far less than LOCAL's full
	// rebuild — the paper's motivation for the algorithm.
	n, p := 6000, 4
	b := phys.Generate(phys.ModelPlummer, n, 17)
	upd := New(UPDATE, Config{P: p, LeafCap: 8})
	loc := New(LOCAL, Config{P: p, LeafCap: 8})
	var updLocks, locLocks int64
	for step := 0; step < 4; step++ {
		in := &Input{Bodies: b, Assign: EvenAssign(n, p), Step: step}
		_, mu := upd.Build(in)
		_, ml := loc.Build(in)
		if step > 0 {
			updLocks += mu.TotalLocks()
			locLocks += ml.TotalLocks()
		}
		b.Drift(0, n, 0.01)
	}
	if updLocks*2 >= locLocks {
		t.Fatalf("UPDATE locks %d not well below LOCAL %d", updLocks, locLocks)
	}
}

func TestRepeatedBuildsReuseStore(t *testing.T) {
	// Rebuilding algorithms must be reusable step after step.
	in := input(t, 2000, 4, 31)
	for _, alg := range []Algorithm{ORIG, LOCAL, PARTREE, SPACE} {
		bld := New(alg, Config{P: 4, LeafCap: 8})
		var prev octree.Stats
		for step := 0; step < 3; step++ {
			in.Step = step
			tr, _ := bld.Build(in)
			checkAgainstSerial(t, tr, in, true)
			st := octree.CollectStats(tr)
			if step > 0 && st != prev {
				t.Fatalf("alg=%v: stats changed across identical rebuilds: %v vs %v", alg, st, prev)
			}
			prev = st
		}
	}
}

func TestEvenAssignCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, p := range []int{1, 3, 8} {
			a := EvenAssign(n, p)
			if len(a) != p {
				t.Fatalf("n=%d p=%d: %d chunks", n, p, len(a))
			}
			seen := make([]bool, n)
			for _, chunk := range a {
				for _, b := range chunk {
					if seen[b] {
						t.Fatalf("body %d assigned twice", b)
					}
					seen[b] = true
				}
			}
			for i, s := range seen {
				if !s {
					t.Fatalf("body %d unassigned", i)
				}
			}
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, alg := range Algorithms() {
		got, err := ParseAlgorithm(alg.String())
		if err != nil || got != alg {
			t.Fatalf("round trip failed for %v: %v", alg, err)
		}
		lower, err := ParseAlgorithm(strings.ToLower(alg.String()))
		if err != nil || lower != alg {
			t.Fatalf("case-insensitive parse failed for %v: %v", alg, err)
		}
	}
	_, err := ParseAlgorithm("bogus")
	if err == nil {
		t.Fatal("parsed bogus algorithm")
	}
	for _, name := range AlgorithmNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %s", err, name)
		}
	}
}

func TestSpaceThresholdConfig(t *testing.T) {
	// An explicit tiny threshold forces a deep prefix; a huge one makes
	// a single subspace. Both must still produce the canonical tree.
	for _, th := range []int{8, 50, 1 << 20} {
		in := input(t, 3000, 4, 3)
		bld := New(SPACE, Config{P: 4, LeafCap: 8, SpaceThreshold: th})
		tr, m := bld.Build(in)
		checkAgainstSerial(t, tr, in, true)
		if m.TotalLocks() != 0 {
			t.Fatalf("th=%d: SPACE locked", th)
		}
	}
}

func TestMetricsBodiesBuilt(t *testing.T) {
	in := input(t, 4096, 4, 8)
	for _, alg := range Algorithms() {
		bld := New(alg, Config{P: 4, LeafCap: 8})
		_, m := bld.Build(in)
		var built int64
		for i := range m.PerP {
			built += m.PerP[i].BodiesBuilt
		}
		if built != 4096 {
			t.Fatalf("alg=%v: %d bodies built, want 4096", alg, built)
		}
	}
}
