package verify

import (
	"strings"
	"testing"

	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/phys"
)

// TestCrossProduct is the acceptance grid: every algorithm × every mass
// model × several (p, leafCap) settings must produce a tree that is
// structurally identical to the serial reference with metrics satisfying
// the conservation laws. Run under -race this also exercises the
// builders' locking discipline.
func TestCrossProduct(t *testing.T) {
	models := []phys.Model{phys.ModelPlummer, phys.ModelUniform, phys.ModelTwoClusters}
	settings := []struct{ p, leafCap int }{
		{1, 8},
		{2, 1},
		{4, 16},
		{8, 4},
	}
	for _, alg := range core.Algorithms() {
		for _, model := range models {
			bodies := phys.Generate(model, 1500, 11)
			for _, s := range settings {
				bld := core.New(alg, core.Config{P: s.p, LeafCap: s.leafCap})
				in := &core.Input{Bodies: bodies, Assign: core.EvenAssign(bodies.N(), s.p)}
				tree, m := bld.Build(in)
				if err := Build(alg, tree, m, bodies, 0); err != nil {
					t.Fatalf("alg=%v model=%v p=%d k=%d: %v", alg, model, s.p, s.leafCap, err)
				}
			}
		}
	}
}

// TestUpdateRepairSteps verifies UPDATE's non-canonical repair path:
// structural invariants must hold every step even though the tree stops
// matching the serial reference, and the canonical check must notice
// that divergence (negative control for the differential layer).
func TestUpdateRepairSteps(t *testing.T) {
	bodies := phys.Generate(phys.ModelPlummer, 2000, 23)
	bld := core.New(core.UPDATE, core.Config{P: 4, LeafCap: 8})
	sawNonCanonical := false
	for step := 0; step < 6; step++ {
		in := &core.Input{Bodies: bodies, Assign: core.EvenAssign(bodies.N(), 4), Step: step}
		tree, m := bld.Build(in)
		if err := Build(core.UPDATE, tree, m, bodies, step); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step > 0 && !sawNonCanonical {
			if err := Tree(tree, bodies, Options{Canonical: true}); err != nil {
				sawNonCanonical = true
			}
		}
		bodies.Drift(0, bodies.N(), 0.1)
	}
	if !sawNonCanonical {
		t.Fatal("drifted UPDATE tree never diverged from the serial reference; differential check has no teeth")
	}
}

func buildFor(t *testing.T, alg core.Algorithm, n, p, leafCap int) (*octree.Tree, *core.Metrics, *phys.Bodies) {
	t.Helper()
	bodies := phys.Generate(phys.ModelPlummer, n, 5)
	bld := core.New(alg, core.Config{P: p, LeafCap: leafCap})
	in := &core.Input{Bodies: bodies, Assign: core.EvenAssign(n, p)}
	tree, m := bld.Build(in)
	if err := Build(alg, tree, m, bodies, 0); err != nil {
		t.Fatalf("pristine build rejected: %v", err)
	}
	return tree, m, bodies
}

func firstLiveLeaf(t *testing.T, tr *octree.Tree) *octree.Leaf {
	return leafWithAtLeast(t, tr, 1)
}

// leafWithAtLeast returns a live leaf holding at least k bodies.
func leafWithAtLeast(t *testing.T, tr *octree.Tree, k int) *octree.Leaf {
	t.Helper()
	for _, r := range octree.LiveLeaves(tr) {
		if l := tr.Store.Leaf(r); len(l.Bodies) >= k {
			return l
		}
	}
	t.Fatalf("tree has no live leaf with >= %d bodies", k)
	return nil
}

// TestCorruptedTreeRejected is the negative acceptance test: deliberate
// structural damage of every kind must be caught.
func TestCorruptedTreeRejected(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, tr *octree.Tree)
		want    string
	}{
		{"duplicated body", func(t *testing.T, tr *octree.Tree) {
			l := firstLiveLeaf(t, tr)
			l.Bodies = append(l.Bodies, l.Bodies[0])
		}, "appears in"},
		{"dropped body", func(t *testing.T, tr *octree.Tree) {
			l := leafWithAtLeast(t, tr, 2)
			l.Bodies = l.Bodies[:len(l.Bodies)-1]
		}, "appears in"},
		{"reachable retired leaf", func(t *testing.T, tr *octree.Tree) {
			firstLiveLeaf(t, tr).Retired = true
		}, "retired"},
		{"displaced cube", func(t *testing.T, tr *octree.Tree) {
			l := firstLiveLeaf(t, tr)
			l.Cube.Center.X += l.Cube.Size
		}, "cube"},
		{"broken parent link", func(t *testing.T, tr *octree.Tree) {
			firstLiveLeaf(t, tr).Parent = octree.Nil
		}, "parent link"},
		{"stale moments", func(t *testing.T, tr *octree.Tree) {
			firstLiveLeaf(t, tr).Mass *= 2
		}, "moments"},
		{"foreign body index", func(t *testing.T, tr *octree.Tree) {
			l := firstLiveLeaf(t, tr)
			l.Bodies[0] = 1 << 20
		}, "out-of-range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tree, _, bodies := buildFor(t, core.LOCAL, 1200, 4, 8)
			tc.corrupt(t, tree)
			err := Tree(tree, bodies, Options{Canonical: true, Moments: true})
			if err == nil {
				t.Fatal("corrupted tree accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestShapeDivergenceRejected corrupts the tree in a way that keeps it
// internally consistent but different from the serial reference: an
// unnecessary subdivision (legal leaf split below the cap). Only the
// differential layer can catch it.
func TestShapeDivergenceRejected(t *testing.T) {
	tree, _, bodies := buildFor(t, core.LOCAL, 1200, 4, 8)
	// Rebuild with a smaller leaf cap: same bodies, internally valid
	// tree, but not the tree the spec's leaf cap produces.
	finer := octree.BuildSerial(bodies.Pos, 4)
	if err := octree.Equal(tree, finer); err == nil {
		t.Fatal("k=8 and k=4 trees unexpectedly identical; pick a different workload")
	}
	err := Tree(finer, bodies, Options{Canonical: true})
	if err != nil {
		t.Fatalf("k=4 serial tree must self-verify: %v", err)
	}
	// Against the k=8 spec the k=4 tree must be rejected differentially.
	ref := octree.BuildSerial(bodies.Pos, 8)
	if err := octree.Equal(finer, ref); err == nil {
		t.Fatal("differential comparison missed a shape divergence")
	}
}

// TestMetricsLawsRejectCorruption audits each conservation law's teeth.
func TestMetricsLawsRejectCorruption(t *testing.T) {
	t.Run("bodies built", func(t *testing.T) {
		tree, m, bodies := buildFor(t, core.PARTREE, 1000, 4, 8)
		m.PerP[0].BodiesBuilt++
		if err := Metrics(m, tree, bodies.N(), true); err == nil || !strings.Contains(err.Error(), "BodiesBuilt") {
			t.Fatalf("inflated BodiesBuilt accepted: %v", err)
		}
	})
	t.Run("space locks", func(t *testing.T) {
		tree, m, bodies := buildFor(t, core.SPACE, 1000, 4, 8)
		m.PerP[2].Locks = 7
		if err := Metrics(m, tree, bodies.N(), true); err == nil || !strings.Contains(err.Error(), "locks") {
			t.Fatalf("locking SPACE accepted: %v", err)
		}
	})
	t.Run("lost allocation", func(t *testing.T) {
		tree, m, bodies := buildFor(t, core.LOCAL, 1000, 4, 8)
		zeroed := false
		for i := range m.PerP {
			if m.PerP[i].Cells > 0 {
				m.PerP[i].Cells = 0
				zeroed = true
				break
			}
		}
		if !zeroed {
			t.Fatal("no processor allocated cells; grow the workload")
		}
		if err := Metrics(m, tree, bodies.N(), true); err == nil || !strings.Contains(err.Error(), "cells") {
			t.Fatalf("undercounted cells accepted: %v", err)
		}
	})
	t.Run("leaf law", func(t *testing.T) {
		tree, m, bodies := buildFor(t, core.ORIG, 1000, 4, 8)
		m.PerP[0].Leaves += 3
		if err := Metrics(m, tree, bodies.N(), true); err == nil || !strings.Contains(err.Error(), "leaves") {
			t.Fatalf("inflated leaf count accepted: %v", err)
		}
	})
	t.Run("lock floor", func(t *testing.T) {
		tree, m, bodies := buildFor(t, core.ORIG, 1000, 4, 8)
		for i := range m.PerP {
			m.PerP[i].Locks = 0
		}
		if err := Metrics(m, tree, bodies.N(), true); err == nil || !strings.Contains(err.Error(), "locks") {
			t.Fatalf("lock-free ORIG accepted: %v", err)
		}
	})
}

// TestCostConservationLaw gives law 8 its teeth: a tampered root Cost
// moment on an otherwise pristine tree must be rejected, by the law
// directly and by the Build bundle.
func TestCostConservationLaw(t *testing.T) {
	tree, m, bodies := buildFor(t, core.SPACE, 1200, 4, 8)
	if tree.Root.IsLeaf() {
		t.Fatal("workload too small: root is a leaf")
	}
	tree.Store.Cell(tree.Root).Cost++
	if err := CostConservation(tree, bodies); err == nil || !strings.Contains(err.Error(), "cost conservation") {
		t.Fatalf("tampered root cost accepted: %v", err)
	}
	// Build also rejects it (the moments recomputation catches the same
	// tamper first; either way the corrupted total cannot pass).
	if err := Build(core.SPACE, tree, m, bodies, 0); err == nil {
		t.Fatal("Build missed the tampered root cost")
	}
}

// TestCostConservationUnderUpdateFallback is the law-8 session test: a
// resident UPDATE builder over non-uniform costs must conserve the cost
// total on every path — the step-0 load, incremental repairs after
// drift, and the policy-forced SPACE-fallback rebuild into the resident
// store (Input.Rebuild → FreshRequested), which re-partitions space and
// re-attaches every body without going through the repair queue.
func TestCostConservationUnderUpdateFallback(t *testing.T) {
	const n, p = 2000, 4
	bodies := phys.Generate(phys.ModelPlummer, n, 17)
	for i := range bodies.Cost {
		bodies.Cost[i] = 1 + int64(i%97) // non-trivial, position-independent
	}
	bld := core.New(core.UPDATE, core.Config{P: p, LeafCap: 8})
	sawRequested := false
	for step := 0; step < 6; step++ {
		in := &core.Input{
			Bodies:  bodies,
			Assign:  core.EvenAssign(n, p),
			Step:    step,
			Rebuild: step == 3,
		}
		tree, m := bld.Build(in)
		if step == 3 {
			if !m.FreshRebuild || m.FreshReason != core.FreshRequested {
				t.Fatalf("step 3: fallback rebuild not taken (fresh=%v reason=%q)", m.FreshRebuild, m.FreshReason)
			}
			sawRequested = true
		}
		if err := CostConservation(tree, bodies); err != nil {
			t.Fatalf("step %d (fresh=%v): %v", step, m.FreshRebuild, err)
		}
		if err := Build(core.UPDATE, tree, m, bodies, step); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		bodies.Drift(0, n, 0.05)
	}
	if !sawRequested {
		t.Fatal("fallback rebuild never exercised")
	}
}

// TestAlgorithmCompanionCheck exercises the self-contained entry point
// every simulated spec uses.
func TestAlgorithmCompanionCheck(t *testing.T) {
	bodies := phys.Generate(phys.ModelTwoClusters, 2048, 9)
	for _, alg := range core.Algorithms() {
		if err := Algorithm(alg, bodies, 4, 8); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
	if err := Algorithm(core.SPACE, phys.NewBodies(0), 3, 8); err != nil {
		t.Fatalf("empty system: %v", err)
	}
}

// TestEmptyAndTinySystems pins the degenerate ends of the grid.
func TestEmptyAndTinySystems(t *testing.T) {
	for _, n := range []int{0, 1, 2, 9} {
		for _, alg := range core.Algorithms() {
			bodies := phys.Generate(phys.ModelUniform, n, 3)
			bld := core.New(alg, core.Config{P: 2, LeafCap: 8})
			in := &core.Input{Bodies: bodies, Assign: core.EvenAssign(n, 2)}
			tree, m := bld.Build(in)
			if err := Build(alg, tree, m, bodies, 0); err != nil {
				t.Fatalf("alg=%v n=%d: %v", alg, n, err)
			}
		}
	}
}
