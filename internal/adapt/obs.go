package adapt

import (
	"math"
	"sync/atomic"

	"partree/internal/core"
)

// Package-level live totals, following core's observability discipline:
// this package keeps plain atomics and no obs import; the exposition
// adapter lives in the registering package (internal/engine renders these
// as the partree_adapt_* families). Counters aggregate across every
// controller in the process; the gauges are last-writer-wins snapshots of
// the most recent controller activity — with one adaptive session they
// read exactly as per-session values, with many they show the freshest.
var totals struct {
	sessions     atomic.Int64
	corrections  atomic.Int64
	knobChanges  atomic.Int64
	repartitions atomic.Int64

	skewBefore atomic.Uint64 // float64 bits
	skewAfter  atomic.Uint64 // float64 bits

	leafCap        atomic.Int64
	spaceThreshold atomic.Int64
	effectiveP     atomic.Int64
}

// Totals is one scrape-time snapshot of the package's adaptive activity.
type Totals struct {
	// Sessions counts controllers constructed.
	Sessions int64
	// Corrections counts ledger updates applied (one per traced step
	// whose measurements were attributed).
	Corrections int64
	// KnobChanges counts tuner decisions that moved a knob.
	KnobChanges int64
	// Repartitions counts measured-cost costzones cuts served.
	Repartitions int64
	// SkewBefore is the latest measured max/mean insert-time ratio —
	// the imbalance the hardware reported before correction.
	SkewBefore float64
	// SkewAfter is the latest predicted max/mean cost ratio of the
	// corrected partition — the imbalance the next step should see.
	SkewAfter float64
	// LeafCap, SpaceThreshold, EffectiveP are the latest published knob
	// values.
	LeafCap        int64
	SpaceThreshold int64
	EffectiveP     int64
}

// Snapshot reads the live totals (atomic loads only; scrape-cheap).
func Snapshot() Totals {
	return Totals{
		Sessions:       totals.sessions.Load(),
		Corrections:    totals.corrections.Load(),
		KnobChanges:    totals.knobChanges.Load(),
		Repartitions:   totals.repartitions.Load(),
		SkewBefore:     loadFloat(&totals.skewBefore),
		SkewAfter:      loadFloat(&totals.skewAfter),
		LeafCap:        totals.leafCap.Load(),
		SpaceThreshold: totals.spaceThreshold.Load(),
		EffectiveP:     totals.effectiveP.Load(),
	}
}

// publishKnobs records the knob gauges after construction or a retune.
func publishKnobs(cfg core.Config, spaceThreshold int) {
	lc := cfg.LeafCap
	if lc <= 0 {
		lc = 8
	}
	totals.leafCap.Store(int64(lc))
	totals.spaceThreshold.Store(int64(spaceThreshold))
	totals.effectiveP.Store(int64(resolveP(cfg.P)))
}

func storeFloat(u *atomic.Uint64, v float64) { u.Store(math.Float64bits(v)) }

func loadFloat(u *atomic.Uint64) float64 { return math.Float64frombits(u.Load()) }
