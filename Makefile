GO ?= go

.PHONY: all build vet test race check repro

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the native builders and the runner's
# worker pool / result cache.
race:
	$(GO) test -race ./internal/core ./internal/runner

# check is the tier-1+ gate: everything must pass before a PR lands.
check: build vet test race

# repro regenerates the paper's tables and figures into ./results.
repro:
	$(GO) run ./cmd/paperrepro -out results
