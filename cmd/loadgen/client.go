// The partreed-facing half of loadgen: one-shot /v1/build requests, the
// full-duplex /v1/session stream client (the same io.Pipe NDJSON shape
// the daemon's own tests use), and the /metrics scraper the report's
// counter deltas come from.
package main

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"partree/internal/core"
	"partree/internal/runner"
	"partree/internal/workload"
)

// arrivalResult is what one scheduled arrival produced. Outcome is one
// of ok, rejected (admission 503), failed (anything else went wrong),
// or unlaunched (the run timeout expired first). The server-reported
// fields are deterministic for non-adaptive runs; latency is measured
// and stays out of the report.
type arrivalResult struct {
	ID      int    `json:"id"`
	AtNs    int64  `json:"at_ns"`
	Outcome string `json:"outcome"`
	// RequestID is the server's X-Request-Id for this arrival. loadgen
	// mints a deterministic traceparent per (seed, arrival), so the
	// honored ID is a pure function of the flags — byte-stable in the
	// report, and a direct key into the daemon's /debug/requests.
	RequestID string `json:"request_id,omitempty"`
	// Session aggregates (session mode, ok outcomes).
	Steps     int     `json:"steps,omitempty"`
	Fallbacks int     `json:"fallbacks,omitempty"`
	Rebuilds  int     `json:"rebuilds,omitempty"`
	Moved     int64   `json:"moved,omitempty"`
	ChurnSum  float64 `json:"churn_sum,omitempty"`
	Closed    string  `json:"closed,omitempty"`

	latency time.Duration
	// Measured server-side breakdowns (never in the report): the
	// Server-Timing header's queue/build milliseconds for builds, the
	// summed per-step "timing" records for sessions, and each step's
	// total for the p99-step pointer.
	serverQueueMs float64
	serverBuildMs float64
	stepTotalsMs  []float64
}

// traceparentFor deterministically derives this arrival's trace
// context from (seed, id): the request ID the server will honor is a
// pure function of the run's flags, keeping the report byte-stable.
func traceparentFor(seed int64, id int) (rid, header string) {
	sum := sha256.Sum256([]byte(fmt.Sprintf("loadgen|%d|%d", seed, id)))
	rid = hex.EncodeToString(sum[:16])
	return rid, "00-" + rid + "-" + hex.EncodeToString(sum[16:24]) + "-01"
}

// parseServerTiming extracts the dur= values from a Server-Timing
// header ("queue;dur=0.012, build;dur=1.5, ...") as metric→ms.
func parseServerTiming(v string) map[string]float64 {
	out := map[string]float64{}
	for _, part := range strings.Split(v, ",") {
		name, attrs, ok := strings.Cut(strings.TrimSpace(part), ";")
		if !ok {
			continue
		}
		for _, attr := range strings.Split(attrs, ";") {
			if ms, found := strings.CutPrefix(strings.TrimSpace(attr), "dur="); found {
				if f, err := strconv.ParseFloat(ms, 64); err == nil {
					out[name] = f
				}
			}
		}
	}
	return out
}

// sessionWire is the union of the daemon's session stream records.
type sessionWire struct {
	Event     string  `json:"event"`
	Error     string  `json:"error"`
	N         int     `json:"n"`
	Step      int     `json:"step"`
	Mode      string  `json:"mode"`
	Fallback  bool    `json:"fallback"`
	Moved     int64   `json:"moved"`
	Churn     float64 `json:"churn"`
	Steps     int     `json:"steps"`
	Fallbacks int     `json:"fallbacks"`
	Reason    string  `json:"reason"`
	Timing    *struct {
		QueueMs   float64 `json:"queue_ms"`
		BuildMs   float64 `json:"build_ms"`
		MomentsMs float64 `json:"moments_ms"`
		TotalMs   float64 `json:"total_ms"`
	} `json:"timing"`
}

type sessionOpenWire struct {
	Procs         int     `json:"procs"`
	Bodies        int     `json:"bodies"`
	Model         string  `json:"model,omitempty"`
	Seed          int64   `json:"seed"`
	Dt            float64 `json:"dt,omitempty"`
	Adaptive      bool    `json:"adaptive,omitempty"`
	IdleTimeoutMs int64   `json:"idle_timeout_ms,omitempty"`
}

type sessionStepWire struct {
	Pos   [][3]float64 `json:"pos,omitempty"`
	Drift bool         `json:"drift,omitempty"`
	Close bool         `json:"close,omitempty"`
}

// runSession drives one streaming session through cfg.steps timesteps.
// When the scenario regenerates server-side (ServerModel ok), steps are
// cheap {"drift":true} records; otherwise loadgen evolves the bodies
// locally and streams full position arrays — the client-motion path
// that makes evolving and parameterized scenarios reach the daemon.
func runSession(ctx context.Context, cfg config, id int, at time.Duration) arrivalResult {
	res := arrivalResult{ID: id, AtNs: int64(at), Outcome: "failed"}
	seed := cfg.seed + int64(id)
	open := sessionOpenWire{
		Procs: cfg.procs, Bodies: cfg.n, Seed: seed,
		Adaptive: cfg.adaptive, IdleTimeoutMs: cfg.idleMs,
	}
	model, serverSide := cfg.scenario.ServerModel()
	var ev *workload.Evolver
	if serverSide {
		open.Model = model
		open.Dt = 0.01
	} else {
		// The server's own bodies are placeholders; every step overwrites
		// positions with the client's evolving scenario.
		b, err := cfg.scenario.Generate(cfg.n, seed)
		if err != nil {
			return res
		}
		ev = workload.NewEvolver(b, cfg.scenario.StepDt())
	}

	start := time.Now()
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.target(id)+"/v1/session", pr)
	if err != nil {
		return res
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	rid, tp := traceparentFor(cfg.seed, id)
	req.Header.Set("traceparent", tp)
	enc := json.NewEncoder(pw)
	go enc.Encode(open)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return res
	}
	defer resp.Body.Close()
	defer pw.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "" {
		rid = got
	}
	res.RequestID = rid
	if resp.StatusCode == http.StatusServiceUnavailable {
		res.Outcome = "rejected"
		res.latency = time.Since(start)
		return res
	}
	if resp.StatusCode != http.StatusOK {
		return res
	}
	dec := json.NewDecoder(resp.Body)
	var r sessionWire
	if err := dec.Decode(&r); err != nil || r.Event != "opened" {
		return res
	}
	for s := 0; s < cfg.steps; s++ {
		var step sessionStepWire
		if serverSide {
			step.Drift = s > 0
		} else {
			if s > 0 {
				ev.Step()
			}
			step.Pos = make([][3]float64, ev.B.N())
			for i, p := range ev.B.Pos {
				step.Pos[i] = [3]float64{p.X, p.Y, p.Z}
			}
		}
		if err := enc.Encode(step); err != nil {
			return res
		}
		if err := dec.Decode(&r); err != nil {
			return res
		}
		if r.Event != "step" {
			// In-stream error (or an early close under drain/eviction).
			res.Closed = r.Reason
			return res
		}
		res.Steps++
		res.Moved += r.Moved
		res.ChurnSum += r.Churn
		if r.Fallback {
			res.Fallbacks++
		}
		if r.Mode == "rebuild" {
			res.Rebuilds++
		}
		if r.Timing != nil {
			res.serverQueueMs += r.Timing.QueueMs
			res.serverBuildMs += r.Timing.BuildMs
			res.stepTotalsMs = append(res.stepTotalsMs, r.Timing.TotalMs)
		}
	}
	if cfg.linger {
		// Hold the lease: no close record. The session ends when the
		// server evicts it (idle timeout), drains, or the run's context
		// expires — whichever comes first. Reading the stream keeps the
		// eviction visible.
		for {
			if err := dec.Decode(&r); err != nil {
				res.Outcome = "ok"
				res.Closed = "ctx"
				res.latency = time.Since(start)
				return res
			}
			if r.Event == "closed" {
				res.Outcome = "ok"
				res.Closed = r.Reason
				res.latency = time.Since(start)
				return res
			}
		}
	}
	if err := enc.Encode(sessionStepWire{Close: true}); err != nil {
		return res
	}
	for {
		if err := dec.Decode(&r); err != nil {
			return res
		}
		if r.Event == "closed" {
			res.Outcome = "ok"
			res.Closed = r.Reason
			res.latency = time.Since(start)
			return res
		}
	}
}

// runBuild posts one /v1/build spec. Seeds vary per arrival so the
// runner's memo cache cannot collapse the load into one build.
func runBuild(ctx context.Context, cfg config, id int, at time.Duration) arrivalResult {
	res := arrivalResult{ID: id, AtNs: int64(at), Outcome: "failed"}
	model, _ := cfg.scenario.ServerModel()
	spec := runner.Spec{
		Backend: runner.Native, Alg: core.SPACE, Procs: cfg.procs,
		Bodies: cfg.n, Steps: 1, Seed: cfg.seed + int64(id),
		Model: model, BuildOnly: true,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return res
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.target(id)+"/v1/build", strings.NewReader(string(body)))
	if err != nil {
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	rid, tp := traceparentFor(cfg.seed, id)
	req.Header.Set("traceparent", tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return res
	}
	defer resp.Body.Close()
	res.latency = time.Since(start)
	if got := resp.Header.Get("X-Request-Id"); got != "" {
		rid = got
	}
	res.RequestID = rid
	if st := parseServerTiming(resp.Header.Get("Server-Timing")); len(st) > 0 {
		res.serverQueueMs = st["queue"]
		res.serverBuildMs = st["build"]
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var out runner.Result
		if json.NewDecoder(resp.Body).Decode(&out) == nil && !out.Failed() {
			res.Outcome = "ok"
		}
	case http.StatusServiceUnavailable:
		res.Outcome = "rejected"
	}
	io.Copy(io.Discard, resp.Body)
	return res
}

// metricsSnapshot is a flat view of one /metrics scrape: series name
// (with its label set, verbatim) → value.
type metricsSnapshot map[string]float64

// scrapeMetrics fetches and parses the Prometheus exposition page.
func scrapeMetrics(ctx context.Context, url string) (metricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	out := metricsSnapshot{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}

// sum adds every series whose name starts with prefix (covers labeled
// families like partree_engine_rejected_total{reason=...}).
func (m metricsSnapshot) sum(prefix string) float64 {
	var t float64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			t += v
		}
	}
	return t
}

// queueSampler scrapes partree_engine_queue_depth on a short cadence
// for the measured timings output.
type queueSampler struct {
	done    chan struct{}
	samples chan []float64
}

func startQueueSampler(ctx context.Context, url string) *queueSampler {
	s := &queueSampler{done: make(chan struct{}), samples: make(chan []float64, 1)}
	go func() {
		var out []float64
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.done:
				s.samples <- out
				return
			case <-ctx.Done():
				s.samples <- out
				return
			case <-tick.C:
				if snap, err := scrapeMetrics(ctx, url); err == nil {
					out = append(out, snap["partree_engine_queue_depth"])
				}
			}
		}
	}()
	return s
}

func (s *queueSampler) stop() []float64 {
	close(s.done)
	return <-s.samples
}
