// Package fmm implements a cell-cell fast summation solver (dual tree
// traversal with Cartesian expansions to quadrupole order, in the style
// of Dehnen's falcON and of the cell-cell interactions in fast multipole
// methods). The paper notes that its tree-building algorithms and issues
// "apply to all the methods" in the O(N log N) family, not just
// Barnes-Hut; this package substantiates that: it consumes the very same
// octrees — from any of the five builders — and replaces the per-body
// traversal with mutual cell interactions plus local-expansion push-down,
// cutting the number of force evaluations roughly in half again.
package fmm

import (
	"math"

	"partree/internal/force"
	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/vec"
)

// Params mirror the force package's knobs.
type Params struct {
	// Theta is the cell-cell acceptance parameter: two cells interact as
	// expansions when (sizeA + sizeB) < Theta · dist(comA, comB).
	Theta float64
	Eps   float64
	G     float64
	// Quadrupole includes source quadrupoles in cell-cell interactions.
	Quadrupole bool
}

// DefaultParams matches force.DefaultParams.
func DefaultParams() Params { return Params{Theta: 1.0, Eps: 0.05, G: 1, Quadrupole: true} }

// Stats counts the solver's work.
type Stats struct {
	CellCell int64 // expansion-expansion interactions (M2L)
	P2P      int64 // body-body interactions
}

// local is the field expansion accumulated at a sink cell's center of
// mass: the acceleration there and its Jacobian (first derivative), so
// bodies inside get a(x) ≈ Acc + J·(x − com).
type local struct {
	acc vec.V3
	jac [9]float64 // row-major ∂a_i/∂x_j
}

func (l *local) addJacTimes(d vec.V3) vec.V3 {
	return vec.V3{
		X: l.jac[0]*d.X + l.jac[1]*d.Y + l.jac[2]*d.Z,
		Y: l.jac[3]*d.X + l.jac[4]*d.Y + l.jac[5]*d.Z,
		Z: l.jac[6]*d.X + l.jac[7]*d.Y + l.jac[8]*d.Z,
	}
}

// solver carries one worker's private state: sink subtree locals plus
// accumulated per-body direct contributions.
type solver struct {
	t    *octree.Tree
	d    octree.BodyData
	p    Params
	eps2 float64
	st   Stats
	loc  map[octree.Ref]*local
	acc  []vec.V3 // indexed by body id; only sink-subtree bodies touched
}

// ComputeAll evaluates accelerations for every body using workers
// parallel sink subtrees. Acc and Cost are written into the body store.
func ComputeAll(t *octree.Tree, bodies *phys.Bodies, p Params, workers int) Stats {
	if p.Theta == 0 {
		p = DefaultParams()
	}
	if workers < 1 {
		workers = 1
	}
	d := octree.BodyData{Pos: bodies.Pos, Mass: bodies.Mass, Cost: bodies.Cost}

	// Sink decomposition: a frontier of subtrees, each handled by one
	// solver against the whole tree. Disjoint sinks mean disjoint local
	// maps and disjoint body writes. The frontier size is fixed (not a
	// function of workers) so results are bit-identical for any worker
	// count — the sink granularity slightly shapes which interactions
	// are accepted, and it must not vary with parallelism.
	sinks := sinkFrontier(t, 64)
	stats := make([]Stats, len(sinks))
	done := make(chan struct{}, workers)
	next := make(chan int, len(sinks))
	for i := range sinks {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range next {
				s := &solver{
					t: t, d: d, p: p, eps2: p.Eps * p.Eps,
					loc: make(map[octree.Ref]*local),
					acc: make([]vec.V3, len(bodies.Pos)),
				}
				s.interact(sinks[i], t.Root)
				s.push(sinks[i], local{})
				// Publish this sink's bodies.
				forBodies(t, sinks[i], func(b int32) {
					bodies.Acc[b] = s.acc[b]
				})
				stats[i] = s.st
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	var total Stats
	for _, s := range stats {
		total.CellCell += s.CellCell
		total.P2P += s.P2P
	}
	// Cost accounting for costzones: spread the solver's work over the
	// bodies it served (cell-cell work belongs to subtrees, so per-body
	// attribution is approximate by construction).
	n := int64(len(bodies.Pos))
	if n > 0 {
		per := (total.CellCell + total.P2P) / n
		if per < 1 {
			per = 1
		}
		for i := range bodies.Cost {
			bodies.Cost[i] = per
		}
	}
	return total
}

// sinkFrontier collects ~want disjoint subtree roots covering all bodies.
func sinkFrontier(t *octree.Tree, want int) []octree.Ref {
	frontier := []octree.Ref{t.Root}
	for len(frontier) < want {
		// Expand the largest cell (by subtree population).
		bestI, bestN := -1, int32(-1)
		for i, r := range frontier {
			if r.IsCell() {
				if n := t.Store.Cell(r).NBody; n > bestN {
					bestI, bestN = i, n
				}
			}
		}
		if bestI < 0 {
			break
		}
		c := t.Store.Cell(frontier[bestI])
		frontier = append(frontier[:bestI], frontier[bestI+1:]...)
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				frontier = append(frontier, ch)
			}
		}
	}
	return frontier
}

// nodeInfo extracts the geometry/moments either node kind shares.
func (s *solver) nodeInfo(r octree.Ref) (com vec.V3, mass float64, size float64, quad octree.Quadrupole, n int32) {
	if r.IsLeaf() {
		l := s.t.Store.Leaf(r)
		return l.COM, l.Mass, l.Cube.Size, l.Quad, int32(len(l.Bodies))
	}
	c := s.t.Store.Cell(r)
	return c.COM, c.Mass, c.Cube.Size, c.Quad, c.NBody
}

// interact processes the sink (a) × source (b) pair.
func (s *solver) interact(a, b octree.Ref) {
	comA, _, sizeA, _, nA := s.nodeInfo(a)
	comB, massB, sizeB, quadB, nB := s.nodeInfo(b)
	if nA == 0 || nB == 0 {
		return
	}

	if a != b {
		dist2 := comA.Dist2(comB)
		sum := sizeA + sizeB
		if sum*sum < s.p.Theta*s.p.Theta*dist2 {
			// Accepted: source expansion -> sink local expansion.
			s.m2l(a, comA, comB, massB, quadB)
			s.st.CellCell++
			return
		}
	}

	aLeaf, bLeaf := a.IsLeaf(), b.IsLeaf()
	switch {
	case aLeaf && bLeaf:
		s.p2p(a, b)
	case a == b:
		// Self interaction: all ordered child pairs.
		c := s.t.Store.Cell(a)
		for oa := vec.Octant(0); oa < vec.NOctants; oa++ {
			ca := c.Child(oa)
			if ca.IsNil() {
				continue
			}
			for ob := vec.Octant(0); ob < vec.NOctants; ob++ {
				cb := c.Child(ob)
				if cb.IsNil() {
					continue
				}
				s.interact(ca, cb)
			}
		}
	case bLeaf || (!aLeaf && sizeA >= sizeB):
		// Open the sink.
		c := s.t.Store.Cell(a)
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				s.interact(ch, b)
			}
		}
	default:
		// Open the source.
		c := s.t.Store.Cell(b)
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				s.interact(a, ch)
			}
		}
	}
}

// m2l adds source (massB, quadB at comB)'s field — value and Jacobian —
// to sink a's local expansion at comA.
func (s *solver) m2l(a octree.Ref, comA, comB vec.V3, massB float64, quadB octree.Quadrupole) {
	l := s.loc[a]
	if l == nil {
		l = &local{}
		s.loc[a] = l
	}
	g := s.p.G
	r := comA.Sub(comB)
	r2 := r.Len2() + s.eps2
	r1 := math.Sqrt(r2)
	inv3 := 1 / (r2 * r1)
	inv5 := inv3 / r2

	// Monopole field and Jacobian.
	l.acc = l.acc.MulAdd(-g*massB*inv3, r)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v := 3 * g * massB * inv5 * comp(r, i) * comp(r, j)
			if i == j {
				v -= g * massB * inv3
			}
			l.jac[3*i+j] += v
		}
	}
	if s.p.Quadrupole {
		qr, rqr := quadB.Apply(r)
		l.acc = l.acc.Add(qr.Scale(g*inv5).MulAdd(-2.5*g*rqr*inv5/r2, r))
	}
}

// p2p accumulates direct body-body forces of source leaf b onto sink leaf a.
func (s *solver) p2p(a, b octree.Ref) {
	la := s.t.Store.Leaf(a)
	lb := s.t.Store.Leaf(b)
	for _, i := range la.Bodies {
		pos := s.d.Pos[i]
		var acc vec.V3
		for _, j := range lb.Bodies {
			if i == j {
				continue
			}
			acc = acc.Add(force.PointAccel(pos, s.d.Pos[j], s.d.Mass[j], force.Params{Eps: s.p.Eps, G: s.p.G}))
			s.st.P2P++
		}
		s.acc[i] = s.acc[i].Add(acc)
	}
}

// push propagates accumulated local expansions down the sink subtree and
// deposits them on bodies.
func (s *solver) push(r octree.Ref, inherited local) {
	if l := s.loc[r]; l != nil {
		inherited.acc = inherited.acc.Add(l.acc)
		for i := range inherited.jac {
			inherited.jac[i] += l.jac[i]
		}
	}
	if r.IsLeaf() {
		lf := s.t.Store.Leaf(r)
		for _, b := range lf.Bodies {
			d := s.d.Pos[b].Sub(lf.COM)
			s.acc[b] = s.acc[b].Add(inherited.acc).Add(inherited.addJacTimes(d))
		}
		return
	}
	c := s.t.Store.Cell(r)
	for o := vec.Octant(0); o < vec.NOctants; o++ {
		ch := c.Child(o)
		if ch.IsNil() {
			continue
		}
		// Shift the expansion center from this cell's COM to the child's.
		shifted := inherited
		var dcom vec.V3
		if ch.IsLeaf() {
			dcom = s.t.Store.Leaf(ch).COM.Sub(c.COM)
		} else {
			dcom = s.t.Store.Cell(ch).COM.Sub(c.COM)
		}
		shifted.acc = shifted.acc.Add(inherited.addJacTimes(dcom))
		s.push(ch, shifted)
	}
}

// forBodies visits every body in the subtree.
func forBodies(t *octree.Tree, r octree.Ref, fn func(int32)) {
	if r.IsLeaf() {
		for _, b := range t.Store.Leaf(r).Bodies {
			fn(b)
		}
		return
	}
	c := t.Store.Cell(r)
	for o := vec.Octant(0); o < vec.NOctants; o++ {
		if ch := c.Child(o); !ch.IsNil() {
			forBodies(t, ch, fn)
		}
	}
}

func comp(v vec.V3, i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}
