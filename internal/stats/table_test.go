package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("a", 1)
	tab.Row("longer-name", 3.14159)
	var buf bytes.Buffer
	tab.Write(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[3], "3.14") {
		t.Fatalf("float not formatted: %q", lines[3])
	}
	// Column starts align between header and rows.
	idx := strings.Index(lines[0], "value")
	if idx < 0 || len(lines[2]) <= idx {
		t.Fatalf("misaligned header: %q", lines[0])
	}
}

func TestBarsScale(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "title", []string{"a", "bb"}, []float64{1, 2}, "x")
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "#") {
		t.Fatalf("bars output wrong:\n%s", out)
	}
	// The larger value must have the longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
}

func TestBarsZeroSafe(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "t", []string{"a"}, []float64{0}, "")
	if !strings.Contains(buf.String(), "0.00") {
		t.Fatal("zero bar missing value")
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		ns   float64
		want string
	}{
		{2.5e11, "250s"},
		{1.5e9, "1.50s"},
		{2.5e6, "2.5ms"},
		{900, "1µs"},
	}
	for _, c := range cases {
		if got := Seconds(c.ns); got != c.want {
			t.Errorf("Seconds(%g) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary wrong: %+v", s)
	}
	z := Summarize(nil)
	if z.Mean != 0 || z.Min != 0 || z.Max != 0 {
		t.Fatalf("empty summary wrong: %+v", z)
	}
}
