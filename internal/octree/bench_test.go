package octree

import (
	"fmt"
	"testing"

	"partree/internal/phys"
)

func BenchmarkBuildSerial(b *testing.B) {
	for _, n := range []int{1024, 16384, 131072} {
		bodies := phys.Generate(phys.ModelPlummer, n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BuildSerial(bodies.Pos, 8)
			}
		})
	}
}

func BenchmarkBuildSerialReused(b *testing.B) {
	bodies := phys.Generate(phys.ModelPlummer, 16384, 1)
	s := NewStore(1, 8)
	cube := bodies.Bounds(1e-4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		BuildSerialInto(s, cube, bodies.Pos)
	}
}

func BenchmarkMoments(b *testing.B) {
	bodies := phys.Generate(phys.ModelPlummer, 65536, 1)
	tr := BuildSerial(bodies.Pos, 8)
	d := BodyData{Pos: bodies.Pos, Mass: bodies.Mass, Cost: bodies.Cost}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ComputeMomentsSerial(tr, d)
		}
	})
	for _, w := range []int{2, 8} {
		b.Run(fmt.Sprintf("parallel-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ComputeMomentsParallel(tr, d, w)
			}
		})
	}
}

func BenchmarkWalk(b *testing.B) {
	bodies := phys.Generate(phys.ModelPlummer, 65536, 1)
	tr := BuildSerial(bodies.Pos, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		Walk(tr, func(Ref, int) bool { n++; return true })
	}
}
