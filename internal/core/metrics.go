package core

import (
	"fmt"

	"partree/internal/trace"
)

// procCounters is one processor's event counts, padded so that counters
// for different processors never share a cache line (the very false
// sharing the LOCAL data-structure redesign removes — our *measurement*
// must not suffer from it either).
type procCounters struct {
	Locks       int64 // lock acquisitions in the tree-build phase
	Cells       int64 // cells allocated
	Leaves      int64 // leaves allocated
	Retries     int64 // descents restarted after losing a race
	BodiesMoved int64 // UPDATE: bodies that crossed a leaf boundary
	MergeOps    int64 // PARTREE: nodes processed while merging
	Attached    int64 // PARTREE/SPACE: subtrees transplanted whole
	BodiesBuilt int64 // bodies this processor loaded into the tree
	_           [8]int64
}

// Reasons an UPDATE build rebuilt from scratch (Metrics.FreshReason).
const (
	// FreshFirst: the builder had no resident tree yet.
	FreshFirst = "first"
	// FreshStep0: the caller restarted the step sequence at step 0.
	FreshStep0 = "step0"
	// FreshRequested: the caller set Input.Rebuild (fallback policy or
	// an explicit client request) — served as a SPACE-style rebuild.
	FreshRequested = "requested"
	// FreshRestart: the body set was resized across a step-sequence
	// discontinuity — an intentional restart with a new body set.
	FreshRestart = "restart"
	// FreshSwap: the body set was resized while the step sequence stayed
	// continuous — an accidental body-set swap under a resident tree.
	// Before the continuity check this case was a silent fresh rebuild;
	// sessions count it as an unplanned rebuild.
	FreshSwap = "body-set swap"
	// FreshDiscontinuity: the step sequence jumped with the body set
	// unchanged; the retained bodyLeaf map can no longer be trusted.
	FreshDiscontinuity = "step discontinuity"
)

// DepthStats summarizes the leaf depths of a built tree — the shape
// signal the session fallback policy watches. UPDATE never collapses
// cells, so a long-resident tree's max leaf depth creeps up while the
// mean stays put; the ratio is the skew.
type DepthStats struct {
	MaxLeaf  int     // deepest live leaf
	MeanLeaf float64 // mean live-leaf depth
	Leaves   int     // live leaves
}

// Skew returns MaxLeaf/MeanLeaf, or 0 for an empty tree.
func (d DepthStats) Skew() float64 {
	if d.MeanLeaf <= 0 {
		return 0
	}
	return float64(d.MaxLeaf) / d.MeanLeaf
}

// Metrics aggregates per-processor counters for one build.
type Metrics struct {
	Alg    Algorithm
	PerP   []procCounters
	Timing Timing
	// FreshRebuild reports that a resident builder (UPDATE) discarded
	// its retained tree and rebuilt from scratch this step instead of
	// repairing incrementally. Always false for the rebuilding
	// algorithms, which have no resident tree to lose. Sessions use it
	// to count unplanned rebuilds: a fresh rebuild on a step where the
	// caller expected a repair (Step > 0 and Input.Rebuild unset) means
	// the resident state was invalidated under the caller.
	FreshRebuild bool
	// FreshReason names why FreshRebuild happened (Fresh* constants);
	// empty on incremental steps.
	FreshReason string
	// Depth carries leaf-depth statistics when the builder ran with
	// Config.DepthStats; nil otherwise.
	Depth *DepthStats
	// Trace is the per-processor trace summary of this build when the
	// builder ran with an enabled Config.Trace recorder; nil otherwise.
	// Its per-processor lock-event counts must equal PerP[w].Locks —
	// internal/verify audits that as a conservation law.
	Trace *trace.Summary
}

func newMetrics(a Algorithm, p int) *Metrics {
	return &Metrics{Alg: a, PerP: make([]procCounters, p)}
}

// TotalLocks sums lock acquisitions across processors.
func (m *Metrics) TotalLocks() int64 {
	var t int64
	for i := range m.PerP {
		t += m.PerP[i].Locks
	}
	return t
}

// LocksPerProc returns the per-processor lock counts (Figure 15).
func (m *Metrics) LocksPerProc() []int64 {
	out := make([]int64, len(m.PerP))
	for i := range m.PerP {
		out[i] = m.PerP[i].Locks
	}
	return out
}

// TotalCells sums cells allocated across processors.
func (m *Metrics) TotalCells() int64 {
	var t int64
	for i := range m.PerP {
		t += m.PerP[i].Cells
	}
	return t
}

// TotalLeaves sums leaves allocated across processors.
func (m *Metrics) TotalLeaves() int64 {
	var t int64
	for i := range m.PerP {
		t += m.PerP[i].Leaves
	}
	return t
}

// TotalRetries sums lost-race descent restarts.
func (m *Metrics) TotalRetries() int64 {
	var t int64
	for i := range m.PerP {
		t += m.PerP[i].Retries
	}
	return t
}

// TotalBodiesMoved sums UPDATE's cross-boundary moves.
func (m *Metrics) TotalBodiesMoved() int64 {
	var t int64
	for i := range m.PerP {
		t += m.PerP[i].BodiesMoved
	}
	return t
}

// String summarizes the metrics in one line.
func (m *Metrics) String() string {
	return fmt.Sprintf("%s: locks=%d cells=%d leaves=%d retries=%d moved=%d build=%v",
		m.Alg, m.TotalLocks(), m.TotalCells(), m.TotalLeaves(), m.TotalRetries(),
		m.TotalBodiesMoved(), m.Timing.Total())
}
