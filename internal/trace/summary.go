package trace

// ProcSummary is one processor's aggregated trace: time in each build
// sub-phase, lock-event totals, and hold-time percentiles. These are
// maintained incrementally at emit time, so they cover every event the
// processor emitted even when the ring buffer wrapped and dropped the
// oldest timeline records.
type ProcSummary struct {
	PhaseNs    [NumPhases]int64 `json:"phase_ns"`
	Spans      int64            `json:"spans"`
	LockEvents int64            `json:"lock_events"`
	LockWaitNs int64            `json:"lock_wait_ns"`
	LockHoldNs int64            `json:"lock_hold_ns"`
	HoldP50Ns  int64            `json:"hold_p50_ns"`
	HoldP95Ns  int64            `json:"hold_p95_ns"`
	HoldMaxNs  int64            `json:"hold_max_ns"`
	Dropped    int64            `json:"dropped,omitempty"` // timeline events evicted by ring wrap
}

// Summary is the per-processor aggregate view of one traced build,
// surfaced on core.Metrics and audited by internal/verify against the
// builder's own lock counters.
type Summary struct {
	PerProc []ProcSummary `json:"per_proc"`
}

// Summarize snapshots the recorder's aggregates. Call between builds.
func (r *Recorder) Summarize() *Summary {
	if r == nil {
		return nil
	}
	s := &Summary{PerProc: make([]ProcSummary, len(r.bufs))}
	for w := range r.bufs {
		b := &r.bufs[w]
		ps := &s.PerProc[w]
		ps.PhaseNs = b.phaseNs
		ps.Spans = b.spans
		ps.LockEvents = b.lockEvents
		ps.LockWaitNs = b.lockWaitNs
		ps.LockHoldNs = b.lockHoldNs
		ps.HoldP50Ns = b.hold.Quantile(0.50)
		ps.HoldP95Ns = b.hold.Quantile(0.95)
		ps.HoldMaxNs = b.hold.MaxNs
		if over := b.next - int64(len(b.ev)); over > 0 {
			ps.Dropped = over
		}
	}
	return s
}

// TotalLockEvents sums lock events across processors; it must equal
// core.Metrics.TotalLocks() for the build the trace covers.
func (s *Summary) TotalLockEvents() int64 {
	if s == nil {
		return 0
	}
	var t int64
	for i := range s.PerProc {
		t += s.PerProc[i].LockEvents
	}
	return t
}

// LockEventsPerProc returns the per-processor lock-event counts, aligned
// with core.Metrics.LocksPerProc.
func (s *Summary) LockEventsPerProc() []int64 {
	if s == nil {
		return nil
	}
	out := make([]int64, len(s.PerProc))
	for i := range s.PerProc {
		out[i] = s.PerProc[i].LockEvents
	}
	return out
}

// PhaseTotals sums each phase's time across processors, aligned with
// PhaseNames(). internal/reqtrace bridges these into a request's
// flight-recorder timeline.
func (s *Summary) PhaseTotals() [NumPhases]int64 {
	var out [NumPhases]int64
	if s == nil {
		return out
	}
	for i := range s.PerProc {
		for ph := 0; ph < NumPhases; ph++ {
			out[ph] += s.PerProc[i].PhaseNs[ph]
		}
	}
	return out
}

// ImbalanceRatio is max/mean of per-processor insert-phase time — the
// load-imbalance figure of merit from the paper's Table 2. It returns 1
// for a perfectly balanced build and 0 when no insert time was recorded
// (e.g. tracing was disabled).
func (s *Summary) ImbalanceRatio() float64 {
	if s == nil || len(s.PerProc) == 0 {
		return 0
	}
	var sum, max int64
	for i := range s.PerProc {
		v := s.PerProc[i].PhaseNs[PhaseInsert]
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.PerProc))
	return float64(max) / mean
}
