package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/vec"
)

// buildCase is a random configuration for builder property tests.
type buildCase struct {
	Pos     []vec.V3
	P       int
	LeafCap int
	Alg     Algorithm
}

// Generate implements quick.Generator: clustered positions with mixed
// scales, coincident runs, random processor counts and leaf capacities.
func (buildCase) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(600) // includes n == 0
	c := buildCase{
		Pos:     make([]vec.V3, n),
		P:       1 + r.Intn(10),
		LeafCap: 1 + r.Intn(12),
		Alg:     Algorithm(r.Intn(NumAlgorithms)),
	}
	nc := 1 + r.Intn(3)
	centers := make([]vec.V3, nc)
	for i := range centers {
		centers[i] = vec.V3{X: r.NormFloat64() * 5, Y: r.NormFloat64() * 5, Z: r.NormFloat64() * 5}
	}
	for i := range c.Pos {
		ctr := centers[r.Intn(nc)]
		scale := math.Pow(10, float64(r.Intn(4))-2)
		c.Pos[i] = ctr.Add(vec.V3{
			X: r.NormFloat64() * scale,
			Y: r.NormFloat64() * scale,
			Z: r.NormFloat64() * scale,
		})
		if i > 0 && r.Intn(25) == 0 {
			c.Pos[i] = c.Pos[i-1]
		}
	}
	return reflect.ValueOf(c)
}

func (c buildCase) bodies() *phys.Bodies {
	b := phys.NewBodies(len(c.Pos))
	copy(b.Pos, c.Pos)
	for i := range b.Mass {
		b.Mass[i] = 1
		b.Cost[i] = 1
	}
	return b
}

// TestPropertyBuildersCanonical: every builder, on any input, produces a
// tree identical to the canonical sequential tree with valid moments.
func TestPropertyBuildersCanonical(t *testing.T) {
	f := func(c buildCase) bool {
		b := c.bodies()
		in := &Input{Bodies: b, Assign: EvenAssign(b.N(), c.P)}
		bld := New(c.Alg, Config{P: c.P, LeafCap: c.LeafCap})
		tr, _ := bld.Build(in)
		d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
		if err := octree.Check(tr, d, octree.CheckOptions{Canonical: true, Moments: true, Tol: 1e-9}); err != nil {
			t.Logf("alg=%v p=%d k=%d n=%d: %v", c.Alg, c.P, c.LeafCap, b.N(), err)
			return false
		}
		ref := octree.BuildSerial(b.Pos, c.LeafCap)
		if err := octree.Equal(tr, ref); err != nil {
			t.Logf("alg=%v p=%d k=%d n=%d: %v", c.Alg, c.P, c.LeafCap, b.N(), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUpdateManySteps: UPDATE stays structurally valid while
// bodies random-walk, leaves get reclaimed, and cells empty out.
func TestPropertyUpdateManySteps(t *testing.T) {
	f := func(seed int64, pSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + int(pSeed)%6
		b := phys.Generate(phys.ModelTwoClusters, 400+r.Intn(800), seed)
		bld := New(UPDATE, Config{P: p, LeafCap: 4})
		d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
		for step := 0; step < 6; step++ {
			in := &Input{Bodies: b, Assign: EvenAssign(b.N(), p), Step: step}
			tr, _ := bld.Build(in)
			if err := octree.Check(tr, d, octree.CheckOptions{Moments: true, Tol: 1e-9}); err != nil {
				t.Logf("seed=%d p=%d step=%d: %v", seed, p, step, err)
				return false
			}
			// Random-walk the bodies, aggressively.
			for i := range b.Pos {
				b.Pos[i] = b.Pos[i].Add(vec.V3{
					X: r.NormFloat64() * 0.3,
					Y: r.NormFloat64() * 0.3,
					Z: r.NormFloat64() * 0.3,
				})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySpatialAssignCovers: SpatialAssign is a valid partition and
// produces spatially tighter chunks than index order on clustered input.
func TestPropertySpatialAssignCovers(t *testing.T) {
	f := func(seed int64, pSeed uint8) bool {
		p := 1 + int(pSeed)%8
		b := phys.Generate(phys.ModelPlummer, 500, seed)
		assign := SpatialAssign(b, p)
		seen := make([]bool, b.N())
		for _, chunk := range assign {
			for _, i := range chunk {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildersDegenerateInputs: pathological inputs must not hang or panic.
func TestBuildersDegenerateInputs(t *testing.T) {
	cases := map[string][]vec.V3{
		"all-coincident": repeated(vec.V3{X: 1, Y: 1, Z: 1}, 50),
		"collinear":      line(64),
		"two-points":     {{X: 0}, {X: 1e-12}},
		"huge-spread":    {{X: -1e9}, {X: 1e9}, {Y: 1e9}, {Z: -1e9}, {X: 1e-9}},
	}
	for name, pos := range cases {
		for _, alg := range Algorithms() {
			b := phys.NewBodies(len(pos))
			copy(b.Pos, pos)
			for i := range b.Mass {
				b.Mass[i] = 1
			}
			bld := New(alg, Config{P: 3, LeafCap: 2})
			tr, _ := bld.Build(&Input{Bodies: b, Assign: EvenAssign(b.N(), 3)})
			d := octree.BodyData{Pos: b.Pos, Mass: b.Mass}
			if err := octree.Check(tr, d, octree.CheckOptions{}); err != nil {
				t.Fatalf("%s/%v: %v", name, alg, err)
			}
		}
	}
}

func repeated(v vec.V3, n int) []vec.V3 {
	out := make([]vec.V3, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func line(n int) []vec.V3 {
	out := make([]vec.V3, n)
	for i := range out {
		out[i] = vec.V3{X: float64(i) * 0.001}
	}
	return out
}
