// Driver for hypothesis h1-adaptive-hierarchical: on the hierarchical
// clustering scenario, does the measured-cost adaptive loop
// (internal/adapt) end with strictly lower insert-phase skew than a
// single static costzones cut?
//
// The experiment is fully deterministic: bodies come from the seeded
// generator, the per-body "true" cost is a pure function of the
// positions (local crowding — neighbors within a fixed radius), and
// the "measured" per-processor times fed to the controller are
// synthesized from that model, so reruns emit byte-identical reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"partree/internal/adapt"
	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/phys"
	"partree/internal/trace"
)

type cell struct {
	P              int     `json:"p"`
	StaticSkew     float64 `json:"static_skew"`
	AdaptiveSkew   float64 `json:"adaptive_skew"`
	ImprovementPct float64 `json:"improvement_pct"`
	Confirmed      bool    `json:"confirmed"`
}

type reportOut struct {
	Experiment string  `json:"experiment"`
	Scenario   string  `json:"scenario"`
	Bodies     int     `json:"bodies"`
	Seed       int64   `json:"seed"`
	Radius     float64 `json:"radius"`
	Rounds     int     `json:"rounds"`
	Cells      []cell  `json:"cells"`
	Confirmed  bool    `json:"confirmed"`
}

// densityCosts: per-body cost proportional to local crowding, the
// regime hierarchical clustering creates (many separated dense knots).
// O(n²) but deterministic — no sampling, no timers.
func densityCosts(b *phys.Bodies, radius float64) []int64 {
	out := make([]int64, b.N())
	r2 := radius * radius
	for i := range out {
		n := int64(0)
		for j := 0; j < b.N(); j++ {
			if b.Pos[i].Dist2(b.Pos[j]) < r2 {
				n++
			}
		}
		out[i] = n
	}
	return out
}

// zoneSkew: max/mean of Σ true cost per zone.
func zoneSkew(assign [][]int32, truth []int64) float64 {
	var total, max int64
	for _, zone := range assign {
		var zc int64
		for _, b := range zone {
			zc += truth[b]
		}
		total += zc
		if zc > max {
			max = zc
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) / (float64(total) / float64(len(assign)))
}

// measuredSummary: the trace a build under assign would produce if each
// body cost exactly its true cost.
func measuredSummary(assign [][]int32, truth []int64) *trace.Summary {
	s := &trace.Summary{PerProc: make([]trace.ProcSummary, len(assign))}
	for w, zone := range assign {
		var ns int64
		for _, b := range zone {
			ns += truth[b]
		}
		s.PerProc[w].PhaseNs[trace.PhaseInsert] = ns
	}
	return s
}

func main() {
	var (
		n      = flag.Int("n", 4000, "bodies")
		seed   = flag.Int64("seed", 7, "generator seed")
		ps     = flag.String("p", "4,8", "comma-separated processor counts")
		rounds = flag.Int("rounds", 12, "feedback rounds per cell")
		radius = flag.Float64("radius", 0.2, "crowding radius for the true-cost model")
		out    = flag.String("report", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()

	var procs []int
	for _, f := range strings.Split(*ps, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "bad -p entry %q\n", f)
			os.Exit(2)
		}
		procs = append(procs, p)
	}

	b := phys.Hierarchical(*n, *seed, phys.HierarchicalParams{})
	truth := densityCosts(b, *radius)
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	octree.ComputeMomentsSerial(tr, d)

	rep := reportOut{
		Experiment: "h1-adaptive-hierarchical", Scenario: "hierarchical",
		Bodies: *n, Seed: *seed, Radius: *radius, Rounds: *rounds,
		Confirmed: true,
	}
	for _, p := range procs {
		static := partition.Costzones(tr, d, p)
		if err := partition.Validate(static, *n); err != nil {
			fmt.Fprintln(os.Stderr, "static partition invalid:", err)
			os.Exit(1)
		}
		ctrl := adapt.NewController(core.Config{P: p, LeafCap: 8},
			adapt.Options{Alpha: 0.5, DisableTuner: true})
		assign := static
		for r := 0; r < *rounds; r++ {
			ctrl.Observe(assign, measuredSummary(assign, truth))
			assign = ctrl.Partition(tr, d, p)
			if err := partition.Validate(assign, *n); err != nil {
				fmt.Fprintf(os.Stderr, "round %d partition invalid: %v\n", r, err)
				os.Exit(1)
			}
		}
		ss, as := zoneSkew(static, truth), zoneSkew(assign, truth)
		c := cell{
			P: p, StaticSkew: ss, AdaptiveSkew: as,
			ImprovementPct: 100 * (ss - as) / ss,
			Confirmed:      as < ss,
		}
		if !c.Confirmed {
			rep.Confirmed = false
		}
		rep.Cells = append(rep.Cells, c)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
