package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Process is a request arrival process scheduled in virtual time: a base
// Poisson stream optionally shaped by an on/off Markov burst envelope
// and a multi-period sinusoidal (diurnal) intensity profile. Schedule
// lays out the whole virtual-time horizon up front, deterministically in
// the seed, so a replay never has to wait real time to know what comes
// next — loadgen compresses or expands virtual time as it pleases.
//
// Intensity model: λ(t) = Rate · burst(t) · diurnal(t), where burst(t)
// alternates exponentially-distributed on (1) and off (0) phases with
// means OnMean/OffMean, and diurnal(t) = max(0, 1 + Σ Depthᵢ·sin(2πt/Periodᵢ)).
// Arrivals are drawn by thinning against λmax = Rate·(1+Σ|Depthᵢ|).
type Process struct {
	// Kind is the canonical family name: poisson, bursty, diurnal, or
	// trace (a deterministic replay of Trace).
	Kind string
	// Rate is the base intensity in arrivals per (virtual) second.
	Rate float64
	// OnMean/OffMean are the burst envelope's mean phase durations;
	// both zero means always-on.
	OnMean, OffMean time.Duration
	// Harmonics shape the diurnal profile; empty means flat.
	Harmonics []Harmonic
	// Trace is the literal schedule for Kind "trace".
	Trace []time.Duration
}

// Harmonic is one sinusoidal component of the diurnal profile.
type Harmonic struct {
	Period time.Duration
	Depth  float64
}

// ArrivalNames lists the valid arrival process families.
func ArrivalNames() []string { return []string{"poisson", "bursty", "diurnal", "trace"} }

// ParseArrival parses a CLI arrival spec: family, optionally followed by
// colon-separated k=v options, e.g.
//
//	poisson:rate=50
//	bursty:rate=80,on=300ms,off=200ms
//	diurnal:rate=40,period=2s,depth=0.8
//	bursty:rate=60,on=250ms,off=250ms,period=1s,depth=0.6   (bursty-diurnal)
//
// period/depth may repeat (period2=…, depth2=…) for multi-period
// profiles. Durations use Go syntax (300ms, 2s).
func ParseArrival(s string) (Process, error) {
	kind, rest, _ := strings.Cut(s, ":")
	kind = strings.TrimSpace(kind)
	p := Process{Kind: kind, Rate: 10}
	switch kind {
	case "poisson", "bursty", "diurnal":
	case "trace":
		return Process{}, fmt.Errorf("workload: trace arrivals come from a trace file, not a spec string")
	default:
		return Process{}, fmt.Errorf("workload: unknown arrival process %q (valid: %s)",
			kind, strings.Join(ArrivalNames(), ", "))
	}
	var periods, depths []float64
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, found := strings.Cut(strings.TrimSpace(kv), "=")
			if !found {
				return Process{}, fmt.Errorf("workload: arrival option %q is not k=v", kv)
			}
			key := strings.TrimRight(k, "0123456789")
			switch key {
			case "rate":
				x, err := strconv.ParseFloat(v, 64)
				if err != nil || x <= 0 {
					return Process{}, fmt.Errorf("workload: arrival rate %q must be a positive number", v)
				}
				p.Rate = x
			case "on", "off":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return Process{}, fmt.Errorf("workload: arrival %s %q must be a positive duration", key, v)
				}
				if key == "on" {
					p.OnMean = d
				} else {
					p.OffMean = d
				}
			case "period":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return Process{}, fmt.Errorf("workload: arrival period %q must be a positive duration", v)
				}
				periods = append(periods, float64(d))
			case "depth":
				x, err := strconv.ParseFloat(v, 64)
				if err != nil || x <= 0 || x > 1 {
					return Process{}, fmt.Errorf("workload: arrival depth %q must be in (0,1]", v)
				}
				depths = append(depths, x)
			default:
				return Process{}, fmt.Errorf("workload: arrival process %s has no option %q (valid: rate, on, off, period, depth)", kind, k)
			}
		}
	}
	if len(periods) != len(depths) {
		return Process{}, fmt.Errorf("workload: arrival needs matching period/depth pairs (got %d periods, %d depths)",
			len(periods), len(depths))
	}
	for i := range periods {
		p.Harmonics = append(p.Harmonics, Harmonic{Period: time.Duration(periods[i]), Depth: depths[i]})
	}
	// Family defaults: bursty without an envelope and diurnal without a
	// profile would silently degenerate to plain Poisson.
	switch kind {
	case "bursty":
		if p.OnMean == 0 && p.OffMean == 0 {
			p.OnMean, p.OffMean = 300*time.Millisecond, 200*time.Millisecond
		}
		if p.OnMean == 0 || p.OffMean == 0 {
			return Process{}, fmt.Errorf("workload: bursty arrivals need both on and off means")
		}
	case "diurnal":
		if len(p.Harmonics) == 0 {
			p.Harmonics = []Harmonic{{Period: 2 * time.Second, Depth: 0.8}}
		}
	case "poisson":
		if p.OnMean != 0 || p.OffMean != 0 {
			return Process{}, fmt.Errorf("workload: poisson arrivals take no on/off envelope (use bursty)")
		}
	}
	return p, nil
}

// TraceProcess wraps a literal schedule as a replayable process.
func TraceProcess(offsets []time.Duration) Process {
	return Process{Kind: "trace", Trace: offsets}
}

// Name renders the process canonically for reports.
func (p Process) Name() string {
	var b strings.Builder
	b.WriteString(p.Kind)
	if p.Kind == "trace" {
		fmt.Fprintf(&b, ":events=%d", len(p.Trace))
		return b.String()
	}
	fmt.Fprintf(&b, ":rate=%g", p.Rate)
	if p.OnMean > 0 || p.OffMean > 0 {
		fmt.Fprintf(&b, ",on=%s,off=%s", p.OnMean, p.OffMean)
	}
	for _, h := range p.Harmonics {
		fmt.Fprintf(&b, ",period=%s,depth=%g", h.Period, h.Depth)
	}
	return b.String()
}

// MeanRate returns the analytic long-run arrival rate (per second): the
// base rate scaled by the on-fraction of the burst envelope. The clamped
// sinusoid averages to 1 over whole periods as long as Σ depths ≤ 1.
func (p Process) MeanRate() float64 {
	if p.Kind == "trace" {
		return 0
	}
	r := p.Rate
	if p.OnMean > 0 && p.OffMean > 0 {
		r *= float64(p.OnMean) / float64(p.OnMean+p.OffMean)
	}
	return r
}

// diurnal evaluates the clamped sinusoidal intensity factor at virtual
// time t.
func (p Process) diurnal(t time.Duration) float64 {
	f := 1.0
	for _, h := range p.Harmonics {
		f += h.Depth * math.Sin(2*math.Pi*float64(t)/float64(h.Period))
	}
	return math.Max(0, f)
}

// Schedule lays out every arrival in [0, horizon) as offsets from the
// start, sorted ascending — a deterministic pure function of (horizon,
// seed, params). Trace processes return their literal schedule clipped
// to the horizon.
func (p Process) Schedule(horizon time.Duration, seed int64) []time.Duration {
	if p.Kind == "trace" {
		out := make([]time.Duration, 0, len(p.Trace))
		for _, t := range p.Trace {
			if t < horizon {
				out = append(out, t)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	lmax := p.Rate
	for _, h := range p.Harmonics {
		lmax += p.Rate * math.Abs(h.Depth)
	}
	var out []time.Duration

	// Walk burst phases; within an on phase, thin a rate-λmax Poisson
	// stream against the diurnal profile.
	bursty := p.OnMean > 0 && p.OffMean > 0
	t := time.Duration(0)
	for t < horizon {
		onEnd := horizon
		if bursty {
			on := time.Duration(rng.ExpFloat64() * float64(p.OnMean))
			if t+on < onEnd {
				onEnd = t + on
			}
		}
		for {
			gap := time.Duration(rng.ExpFloat64() / lmax * float64(time.Second))
			t += gap
			if t >= onEnd {
				break
			}
			if rng.Float64()*lmax < p.Rate*p.diurnal(t) {
				out = append(out, t)
			}
		}
		if !bursty {
			break
		}
		// t overshot into the off phase; add the off dwell from where the
		// on phase ended.
		off := time.Duration(rng.ExpFloat64() * float64(p.OffMean))
		t = onEnd + off
	}
	return out
}
