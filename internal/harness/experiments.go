package harness

import (
	"fmt"
	"io"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/stats"
)

// Experiment reproduces one table or figure from the paper.
type Experiment struct {
	ID    string
	Title string
	// Shape states the qualitative result the paper reports, which the
	// regenerated numbers should reproduce.
	Shape string
	Run   func(s *Session, w io.Writer)
}

// All returns the experiments in the paper's order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "T1",
			Title: "Table 1: best sequential execution time per platform and problem size",
			Shape: "times scale ~N·logN; ordering Origin < Challenge < Typhoon-0 < Paragon (per-cycle cost)",
			Run:   table1,
		},
		{
			ID:    "F6",
			Title: "Figure 6: whole-application speedups on SGI Challenge, 16 processors",
			Shape: "all five algorithms speed up well (paper: 12-15); ORIG worst; differences small",
			Run:   fig6,
		},
		{
			ID:    "F7",
			Title: "Figure 7: tree-building share of total time on Challenge (largest size)",
			Shape: "share grows with processors but stays modest for every algorithm but ORIG",
			Run:   fig7,
		},
		{
			ID:    "F8",
			Title: "Figure 8: whole-application speedups on Origin 2000, 30 processors",
			Shape: "LOCAL/UPDATE/PARTREE/SPACE close together and scaling; ORIG clearly below",
			Run:   fig8,
		},
		{
			ID:    "T2",
			Title: "Table 2: time spent in BARRIER operations on Origin 2000, 16 processors",
			Shape: "ORIG's barrier time far above the others (paper: ~15x LOCAL); UPDATE next",
			Run:   table2,
		},
		{
			ID:    "F9",
			Title: "Figure 9: tree-building phase speedups on Origin 2000, 30 processors",
			Shape: "same relative picture as Figure 8, with much lower absolute speedups",
			Run:   fig9,
		},
		{
			ID:    "F10",
			Title: "Figure 10: speedups on Origin 2000 for 16/24/30 processors (largest size)",
			Shape: "LOCAL/UPDATE/PARTREE/SPACE scale with processors; ORIG lags",
			Run:   fig10,
		},
		{
			ID:    "F11",
			Title: "Figure 11: tree-building share vs processors on Origin 2000 (largest size)",
			Shape: "ORIG's tree share grows toward ~60% at 30 processors; others stay low",
			Run:   fig11,
		},
		{
			ID:    "F12",
			Title: "Figure 12: speedups and tree-building share on Intel Paragon (HLRC SVM), 16 processors",
			Shape: "ORIG/LOCAL near or below 1 (slowdowns); UPDATE poor; PARTREE better; only SPACE performs well with small tree share",
			Run:   fig12,
		},
		{
			ID:    "F13",
			Title: "Figure 13: speedups and tree-building share on Typhoon-0 HLRC, 16 processors",
			Shape: "SPACE vastly outperforms; PARTREE second; ORIG/LOCAL/UPDATE deliver slowdowns or near it; their tree share dominates",
			Run:   fig13,
		},
		{
			ID:    "F14",
			Title: "Figure 14: tree-building phase speedups on Typhoon-0 HLRC, 16 processors",
			Shape: "SPACE the only clear speedup (paper: ~1.5); lock-based algorithms are slower than sequential",
			Run:   fig14,
		},
		{
			ID:    "S15",
			Title: "Section 4.4.2: Typhoon-0 fine-grain sequential consistency, 16 processors",
			Shape: "differences compress: SPACE best (paper: ~7), LOCAL/UPDATE/PARTREE ~4, ORIG worse (false sharing at 64B)",
			Run:   s15,
		},
		{
			ID:    "F15",
			Title: "Figure 15: dynamic lock counts per processor in tree building (Origin vs Typhoon-0 HLRC)",
			Shape: "lock counts fall off quickly ORIG -> LOCAL -> UPDATE -> PARTREE -> SPACE(=0); HLRC needs extra locks vs Origin for the same algorithm",
			Run:   fig15,
		},
		{
			ID:    "X1",
			Title: "Extension (paper §6 future work): algorithm comparison at larger scale on hardware coherence",
			Shape: "on the Origin model at 32-64 processors the lock-based algorithms' tree shares climb and SPACE/PARTREE keep scaling — the commodity-friendly algorithms are also the large-scale ones",
			Run:   ext1,
		},
		{
			ID:    "X2",
			Title: "Extension (paper §6 future work): does the best algorithm scale up on commodity architectures?",
			Shape: "SPACE on the Typhoon-0 HLRC model keeps gaining with processors while LOCAL saturates and then regresses",
			Run:   ext2,
		},
		{
			ID:    "X3",
			Title: "Extension (paper §1 premise): message-passing Barnes-Hut ports well everywhere",
			Shape: "the ORB+LET message-passing code gets healthy speedups on every platform — including the SVM-class machines where LOCAL collapses — matching the premise that motivated the paper; SPACE closes most of the gap for the shared-address-space model",
			Run:   ext3,
		},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func origin(p int) memsim.Platform { return memsim.Origin2000(p) }

func table1(s *Session, w io.Writer) {
	sizes := s.Opts.EffectiveSizes()
	header := []string{"platform"}
	for _, n := range sizes {
		header = append(header, fmt.Sprintf("%dk", n/1024))
	}
	t := stats.NewTable(header...)
	platforms := []memsim.Platform{origin(1), memsim.Challenge(), memsim.TyphoonSC(), memsim.Paragon()}
	for _, pl := range platforms {
		row := []any{pl.Name}
		for _, n := range sizes {
			row = append(row, stats.Seconds(s.Seq(pl, n).TotalNs()))
		}
		t.Row(row...)
	}
	t.Write(w)
}

// speedupSweep prints speedups for every algorithm across the size sweep.
func speedupSweep(s *Session, w io.Writer, pl memsim.Platform, p int, sizes []int) {
	header := []string{"algorithm"}
	for _, n := range sizes {
		header = append(header, fmt.Sprintf("%dk", n/1024))
	}
	t := stats.NewTable(header...)
	for _, alg := range core.Algorithms() {
		row := []any{alg.String()}
		for _, n := range sizes {
			row = append(row, s.Speedup(pl, alg, p, n))
		}
		t.Row(row...)
	}
	t.Write(w)
}

// shareSweep prints the tree-building share of total time (percent).
func shareSweep(s *Session, w io.Writer, pl memsim.Platform, p int, sizes []int) {
	header := []string{"algorithm"}
	for _, n := range sizes {
		header = append(header, fmt.Sprintf("%dk", n/1024))
	}
	t := stats.NewTable(header...)
	for _, alg := range core.Algorithms() {
		row := []any{alg.String()}
		for _, n := range sizes {
			row = append(row, fmt.Sprintf("%.1f%%", 100*s.Outcome(pl, alg, p, n).TreeShare()))
		}
		t.Row(row...)
	}
	t.Write(w)
}

func fig6(s *Session, w io.Writer) {
	fmt.Fprintln(w, "Whole-application speedup, SGI Challenge, 16 processors:")
	speedupSweep(s, w, memsim.Challenge(), 16, s.Opts.EffectiveSizes())
}

func fig7(s *Session, w io.Writer) {
	n := s.Opts.MaxSize()
	pl := memsim.Challenge()
	fmt.Fprintf(w, "Tree-building share of total time, Challenge, %dk bodies:\n", n/1024)
	t := stats.NewTable("algorithm", "1p", "8p", "16p")
	for _, alg := range core.Algorithms() {
		seqShare := 100 * s.Seq(pl, n).TreeShare()
		t.Row(alg.String(),
			fmt.Sprintf("%.1f%%", seqShare),
			fmt.Sprintf("%.1f%%", 100*s.Outcome(pl, alg, 8, n).TreeShare()),
			fmt.Sprintf("%.1f%%", 100*s.Outcome(pl, alg, 16, n).TreeShare()))
	}
	t.Write(w)
}

func fig8(s *Session, w io.Writer) {
	fmt.Fprintln(w, "Whole-application speedup, SGI Origin 2000, 30 processors:")
	speedupSweep(s, w, origin(30), 30, s.Opts.EffectiveSizes())
}

func table2(s *Session, w io.Writer) {
	sizes := s.Opts.EffectiveSizes()
	use := sizes
	if len(use) > 2 {
		use = use[len(use)-2:]
	}
	fmt.Fprintln(w, "Mean per-processor BARRIER time, Origin 2000, 16 processors:")
	header := []string{"algorithm"}
	for _, n := range use {
		header = append(header, fmt.Sprintf("%dk", n/1024))
	}
	t := stats.NewTable(header...)
	for _, alg := range core.Algorithms() {
		row := []any{alg.String()}
		for _, n := range use {
			row = append(row, stats.Seconds(s.Outcome(origin(16), alg, 16, n).MeanBarrierNs()))
		}
		t.Row(row...)
	}
	t.Write(w)
}

func fig9(s *Session, w io.Writer) {
	fmt.Fprintln(w, "Tree-building phase speedup, Origin 2000, 30 processors:")
	sizes := s.Opts.EffectiveSizes()
	header := []string{"algorithm"}
	for _, n := range sizes {
		header = append(header, fmt.Sprintf("%dk", n/1024))
	}
	t := stats.NewTable(header...)
	for _, alg := range core.Algorithms() {
		row := []any{alg.String()}
		for _, n := range sizes {
			row = append(row, s.TreeSpeedup(origin(30), alg, 30, n))
		}
		t.Row(row...)
	}
	t.Write(w)
}

func fig10(s *Session, w io.Writer) {
	n := s.Opts.MaxSize()
	fmt.Fprintf(w, "Whole-application speedup vs processors, Origin 2000, %dk bodies:\n", n/1024)
	t := stats.NewTable("algorithm", "16p", "24p", "30p")
	for _, alg := range core.Algorithms() {
		t.Row(alg.String(),
			s.Speedup(origin(16), alg, 16, n),
			s.Speedup(origin(24), alg, 24, n),
			s.Speedup(origin(30), alg, 30, n))
	}
	t.Write(w)
}

func fig11(s *Session, w io.Writer) {
	n := s.Opts.MaxSize()
	fmt.Fprintf(w, "Tree-building share vs processors, Origin 2000, %dk bodies:\n", n/1024)
	t := stats.NewTable("algorithm", "1p", "8p", "16p", "24p", "30p")
	for _, alg := range core.Algorithms() {
		row := []any{alg.String(), fmt.Sprintf("%.1f%%", 100*s.Seq(origin(1), n).TreeShare())}
		for _, p := range []int{8, 16, 24, 30} {
			row = append(row, fmt.Sprintf("%.1f%%", 100*s.Outcome(origin(p), alg, p, n).TreeShare()))
		}
		t.Row(row...)
	}
	t.Write(w)
}

func fig12(s *Session, w io.Writer) {
	pl := memsim.Paragon()
	fmt.Fprintln(w, "Whole-application speedup, Intel Paragon (HLRC SVM), 16 processors:")
	fmt.Fprintln(w, "(the paper could only afford to run PARTREE and SPACE; the lock-based")
	fmt.Fprintln(w, "algorithms were 'almost intolerably long' — visible below as ~1x or worse)")
	speedupSweep(s, w, pl, 16, s.Opts.EffectiveSizes())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Tree-building share of total time:")
	shareSweep(s, w, pl, 16, s.Opts.EffectiveSizes())
}

func fig13(s *Session, w io.Writer) {
	pl := memsim.TyphoonHLRC()
	fmt.Fprintln(w, "Whole-application speedup, Typhoon-0 (HLRC SVM), 16 processors:")
	speedupSweep(s, w, pl, 16, s.Opts.EffectiveSizes())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Tree-building share of total time:")
	shareSweep(s, w, pl, 16, s.Opts.EffectiveSizes())
}

func fig14(s *Session, w io.Writer) {
	pl := memsim.TyphoonHLRC()
	fmt.Fprintln(w, "Tree-building phase speedup, Typhoon-0 HLRC, 16 processors:")
	sizes := s.Opts.EffectiveSizes()
	header := []string{"algorithm"}
	for _, n := range sizes {
		header = append(header, fmt.Sprintf("%dk", n/1024))
	}
	t := stats.NewTable(header...)
	for _, alg := range core.Algorithms() {
		row := []any{alg.String()}
		for _, n := range sizes {
			row = append(row, s.TreeSpeedup(pl, alg, 16, n))
		}
		t.Row(row...)
	}
	t.Write(w)
}

func s15(s *Session, w io.Writer) {
	pl := memsim.TyphoonSC()
	n := s.Opts.MaxSize()
	fmt.Fprintf(w, "Whole-application speedup, Typhoon-0 fine-grain SC, 16 processors, %dk bodies:\n", n/1024)
	labels := make([]string, 0, core.NumAlgorithms)
	values := make([]float64, 0, core.NumAlgorithms)
	for _, alg := range core.Algorithms() {
		labels = append(labels, alg.String())
		values = append(values, s.Speedup(pl, alg, 16, n))
	}
	stats.Bars(w, "", labels, values, "x")
}

func ext1(s *Session, w io.Writer) {
	n := s.Opts.MaxSize()
	fmt.Fprintf(w, "Whole-application speedup and tree share, Origin 2000 model, %dk bodies:\n", n/1024)
	t := stats.NewTable("algorithm", "16p", "32p", "48p", "64p", "tree%@64p")
	for _, alg := range core.Algorithms() {
		row := []any{alg.String()}
		for _, p := range []int{16, 32, 48, 64} {
			row = append(row, s.Speedup(origin(p), alg, p, n))
		}
		row = append(row, fmt.Sprintf("%.1f%%", 100*s.Outcome(origin(64), alg, 64, n).TreeShare()))
		t.Row(row...)
	}
	t.Write(w)
	fmt.Fprintln(w, "\nThe paper asked whether algorithms that port well to commodity platforms")
	fmt.Fprintln(w, "are also the right algorithms for tightly-integrated systems at larger")
	fmt.Fprintln(w, "scale; the tree-share column answers it.")
}

func ext2(s *Session, w io.Writer) {
	n := s.Opts.MaxSize()
	pl := memsim.TyphoonHLRC()
	fmt.Fprintf(w, "Whole-application speedup vs processors, Typhoon-0 HLRC model, %dk bodies:\n", n/1024)
	t := stats.NewTable("algorithm", "4p", "8p", "16p", "32p")
	for _, alg := range []core.Algorithm{core.LOCAL, core.PARTREE, core.SPACE} {
		row := []any{alg.String()}
		for _, p := range []int{4, 8, 16, 32} {
			row = append(row, s.Speedup(pl, alg, p, n))
		}
		t.Row(row...)
	}
	t.Write(w)
}

func fig15(s *Session, w io.Writer) {
	n := s.Opts.MaxSize()
	fmt.Fprintf(w, "Tree-building lock acquisitions per processor, %dk bodies, 16 processors,\n", n/1024)
	fmt.Fprintf(w, "%d measured steps (mean [min..max] across processors):\n\n", s.Opts.MeasuredSteps)
	t := stats.NewTable("algorithm", "Origin2000", "Typhoon-0/HLRC")
	for _, alg := range core.Algorithms() {
		or := stats.Summarize(s.Outcome(origin(16), alg, 16, n).LocksPerProc)
		ty := stats.Summarize(s.Outcome(memsim.TyphoonHLRC(), alg, 16, n).LocksPerProc)
		t.Row(alg.String(),
			fmt.Sprintf("%.0f [%.0f..%.0f]", or.Mean, or.Min, or.Max),
			fmt.Sprintf("%.0f [%.0f..%.0f]", ty.Mean, ty.Min, ty.Max))
	}
	t.Write(w)
}
