package engine

import (
	"context"
	"testing"

	"partree/internal/core"
	"partree/internal/phys"
)

// BenchmarkSessionReuse measures the pooled steady state the engine
// exists for: one session acquired once, its store reset and reused
// every iteration. Compare allocs/op with BenchmarkFreshBuilder to see
// what pooling saves.
func BenchmarkSessionReuse(b *testing.B) {
	for _, alg := range core.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			e := New(Options{MaxActive: 1})
			in := benchInput(10000, 4)
			s, err := e.Acquire(context.Background(), Key{Alg: alg, P: 4, LeafCap: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Release()
			s.Build(in) // warm the store
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Build(in)
			}
		})
	}
}

// BenchmarkFreshBuilder is the one-shot baseline: a new builder (and a
// new store) per build, what the execution stack did before the engine.
func BenchmarkFreshBuilder(b *testing.B) {
	for _, alg := range core.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			in := benchInput(10000, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bld := core.New(alg, core.Config{P: 4, LeafCap: 8})
				bld.Build(in)
			}
		})
	}
}

func benchInput(n, p int) *core.Input {
	bodies := phys.Generate(phys.ModelPlummer, n, 7)
	return &core.Input{Bodies: bodies, Assign: core.EvenAssign(n, p)}
}

// TestSessionReuseSteadyStateAllocs pins the acceptance criterion:
// repeated builds through a pooled session allocate ~0 — a small
// constant independent of n (metrics, bounds scratch, fork/join
// plumbing), never the O(n) node storage a fresh store would cost.
func TestSessionReuseSteadyStateAllocs(t *testing.T) {
	const n = 10000
	in := benchInput(n, 1)
	// SPACE's partitioning phase allocates per-build scratch (frontier
	// histograms, per-round body lists) proportional to tree depth — not
	// store nodes, which the pool does retain. Its budget is looser but
	// still far below one alloc per body.
	budget := map[core.Algorithm]float64{
		core.ORIG: 100, core.LOCAL: 100, core.PARTREE: 100, core.SPACE: 1000,
	}
	for _, alg := range []core.Algorithm{core.ORIG, core.LOCAL, core.PARTREE, core.SPACE} {
		e := New(Options{MaxActive: 1})
		s, err := e.Acquire(context.Background(), Key{Alg: alg, P: 1, LeafCap: 8})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			s.Build(in) // warm up: install chunks, grow leaf body slices
		}
		steady := testing.AllocsPerRun(10, func() { s.Build(in) })

		fresh := testing.AllocsPerRun(3, func() {
			bld := core.New(alg, core.Config{P: 1, LeafCap: 8})
			bld.Build(in)
		})
		s.Release()

		// "~0": a constant far below one alloc per body, and far below
		// the fresh-builder path which reallocates the node storage.
		if steady > budget[alg] {
			t.Errorf("%v: steady-state build allocates %v allocs/op, want ~0 (<=%v)", alg, steady, budget[alg])
		}
		if fresh < 5*steady {
			t.Errorf("%v: fresh build %v allocs vs steady %v — pooling saves too little to be real reuse",
				alg, fresh, steady)
		}
	}
}
