// Package cluster is the multi-process serving tier: a Morton-order
// shard map that splits the simulation domain into spatially contiguous
// key ranges, the shard-side HTTP surface a partreed process mounts to
// own one range, and the locality-aware router that fronts a fleet —
// fanning build requests out, merging per-shard results under the same
// conservation laws internal/verify audits inside one process, and
// rolling each shard's /metrics up into one partree_cluster_* page.
//
// The design lifts the paper's local-build-then-merge structure one
// level: within a process, PARTREE has each processor build a local tree
// and merge it; across processes, each shard builds the subtree for its
// Morton range and the router merges the *measurements* (the trees stay
// resident where the bodies live, as in Dubinski's local essential
// trees). Morton ranges make the shard map locality-aware for free —
// sorting by partition.MortonKey recovers the octree's depth-first
// order, so a contiguous key range is a spatially compact subdomain and
// a body's shard is one binary search away from its position.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"partree/internal/partition"
	"partree/internal/vec"
)

// Domain is the cluster-wide bounding cube in a JSON-stable form. Every
// shard and the router key positions against this one cube; two
// processes with different domains would disagree about which shard owns
// a body, so the domain travels inside the versioned map rather than
// being derived from any one request's bodies.
type Domain struct {
	Center [3]float64 `json:"center"`
	Size   float64    `json:"size"`
}

// Cube returns the domain as the geometric type the keying uses.
func (d Domain) Cube() vec.Cube {
	return vec.Cube{Center: vec.V3{X: d.Center[0], Y: d.Center[1], Z: d.Center[2]}, Size: d.Size}
}

// Shard is one member of the map: a stable ID, the half-open Morton key
// range [Lo, Hi) it owns, and (on the router's copy) its address. Shard
// processes may carry an addr-less copy — a shard needs to know only its
// own range and the shared domain, while the router needs to reach
// everyone.
type Shard struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
}

// Map is the versioned shard map. The version is the consistency token
// of the whole tier: every shard-level request carries the sender's map
// version, and a shard that sees a different one answers 409 rather than
// silently acting on ranges that may have moved.
type Map struct {
	Version int     `json:"version"`
	Domain  Domain  `json:"domain"`
	Shards  []Shard `json:"shards"`
}

// UniformMap builds a version'd map splitting [0, partition.KeySpace)
// into n near-equal contiguous ranges with IDs s0..s(n-1). Addresses are
// left empty for the caller to fill.
func UniformMap(version int, d Domain, n int) Map {
	m := Map{Version: version, Domain: d, Shards: make([]Shard, n)}
	for i := 0; i < n; i++ {
		lo := partition.KeySpace / uint64(n) * uint64(i)
		hi := partition.KeySpace / uint64(n) * uint64(i+1)
		if i == n-1 {
			hi = partition.KeySpace
		}
		m.Shards[i] = Shard{ID: fmt.Sprintf("s%d", i), Lo: lo, Hi: hi}
	}
	return m
}

// Validate checks the structural invariants every user of a map relies
// on: a positive version, a usable domain, and ranges that are sorted,
// non-empty, pairwise contiguous, and exactly cover [0, KeySpace) — so
// ShardFor is total and no two shards can both claim a key. Addresses
// are not required here; the router additionally demands them.
func (m Map) Validate() error {
	if m.Version <= 0 {
		return fmt.Errorf("cluster: map version %d must be positive", m.Version)
	}
	if m.Domain.Size <= 0 {
		return fmt.Errorf("cluster: domain size %v must be positive", m.Domain.Size)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: map has no shards")
	}
	seen := make(map[string]bool, len(m.Shards))
	for i, s := range m.Shards {
		if s.ID == "" {
			return fmt.Errorf("cluster: shard %d has no id", i)
		}
		if seen[s.ID] {
			return fmt.Errorf("cluster: duplicate shard id %q", s.ID)
		}
		seen[s.ID] = true
		if s.Lo >= s.Hi {
			return fmt.Errorf("cluster: shard %q range [%#x, %#x) is empty", s.ID, s.Lo, s.Hi)
		}
		if s.Hi > partition.KeySpace {
			return fmt.Errorf("cluster: shard %q range ends at %#x past KeySpace %#x", s.ID, s.Hi, partition.KeySpace)
		}
		if i == 0 {
			if s.Lo != 0 {
				return fmt.Errorf("cluster: first shard starts at %#x, not 0", s.Lo)
			}
		} else if s.Lo != m.Shards[i-1].Hi {
			return fmt.Errorf("cluster: shard %q starts at %#x, previous ends at %#x (gap or overlap)",
				s.ID, s.Lo, m.Shards[i-1].Hi)
		}
	}
	if last := m.Shards[len(m.Shards)-1]; last.Hi != partition.KeySpace {
		return fmt.Errorf("cluster: last shard ends at %#x, not KeySpace %#x", last.Hi, partition.KeySpace)
	}
	return nil
}

// KeyOf returns the Morton key of a position under the map's domain.
func (m Map) KeyOf(p vec.V3) uint64 {
	return partition.MortonKey(m.Domain.Cube(), p)
}

// ShardFor returns the index of the shard owning a key. On a validated
// map every key in [0, KeySpace) has exactly one owner; keys past
// KeySpace (which MortonKey never produces) return -1.
func (m Map) ShardFor(key uint64) int {
	i := sort.Search(len(m.Shards), func(i int) bool { return key < m.Shards[i].Hi })
	if i == len(m.Shards) {
		return -1
	}
	return i
}

// ShardByID returns the index of the shard with the given ID, or -1.
func (m Map) ShardByID(id string) int {
	for i, s := range m.Shards {
		if s.ID == id {
			return i
		}
	}
	return -1
}

// WithoutAddrs returns a deep copy with every address cleared — the form
// a shard process is given, which must not depend on knowing where its
// peers live.
func (m Map) WithoutAddrs() Map {
	c := m
	c.Shards = append([]Shard(nil), m.Shards...)
	for i := range c.Shards {
		c.Shards[i].Addr = ""
	}
	return c
}

// Encode renders the map as byte-deterministic JSON: fixed field order
// (encoding/json emits struct fields in declaration order), two-space
// indentation, one trailing newline. Encoding the same map twice yields
// identical bytes, so a map file under version control diffs cleanly and
// a shard can compare documents bytewise.
func (m Map) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseMap decodes and validates a map document.
func ParseMap(b []byte) (Map, error) {
	var m Map
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Map{}, fmt.Errorf("cluster: parsing map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Map{}, err
	}
	return m, nil
}

// ReadMap loads and validates a map file.
func ReadMap(path string) (Map, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Map{}, fmt.Errorf("cluster: reading map: %w", err)
	}
	return ParseMap(b)
}
