package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"partree/internal/core"
	"partree/internal/engine"
	"partree/internal/obs"
	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/runner"
	"partree/internal/vec"
	"partree/internal/verify"
)

// BodyState is the per-body state a shard keeps resident and the
// handoff protocol ships between shards when a body crosses a range
// boundary. It is deliberately the minimal physical state: position
// (which decides ownership), velocity, and mass.
type BodyState struct {
	Pos  [3]float64 `json:"pos"`
	Vel  [3]float64 `json:"vel"`
	Mass float64    `json:"mass"`
}

// ShardBuildRequest is the shard-level build call: the sender's map
// version plus the full cluster spec. Every shard receives the same
// spec; each deterministically regenerates the full body set, keys it
// against the shared domain, and builds only its owned subset — the
// cluster analogue of SPLASH's "all processors read the shared body
// array, each builds its part".
type ShardBuildRequest struct {
	MapVersion int         `json:"map_version"`
	Spec       runner.Spec `json:"spec"`
	// Transient builds measure without establishing residency. Sweep
	// builds set it: a sweep fans out many specs concurrently, and
	// letting each build replace the resident set would leave shards
	// holding subsets of *different* body sets — whichever spec's build
	// finished last on each shard — breaking the single-residency
	// invariant across the fleet.
	Transient bool `json:"transient,omitempty"`
}

// ShardBuildResult is one shard's contribution to a merged build: the
// owned body count, the last repetition's tree metrics, and the best-of
// build time, with failures carried in-band like runner.Result.
type ShardBuildResult struct {
	Shard        string  `json:"shard"`
	N            int     `json:"n"`
	BodiesBuilt  int64   `json:"bodies_built"`
	TreeNs       float64 `json:"tree_ns"`
	LocksTotal   int64   `json:"locks_total"`
	Retries      int64   `json:"retries,omitempty"`
	Cells        int64   `json:"cells,omitempty"`
	Leaves       int64   `json:"leaves,omitempty"`
	MaxDepth     int64   `json:"max_depth,omitempty"`
	WallNs       int64   `json:"wall_ns"`
	Err          string  `json:"error,omitempty"`
	CheckFailure string  `json:"check_failure,omitempty"`
}

// Failed reports whether the shard's build failed (in-band).
func (r ShardBuildResult) Failed() bool { return r.Err != "" || r.CheckFailure != "" }

// MoveRequest asks the shard to apply a new position to a resident
// body. If the new position keys outside the shard's range, the shard
// evicts the body and answers a handoff instead of keeping state it no
// longer owns.
type MoveRequest struct {
	MapVersion int        `json:"map_version"`
	Body       int32      `json:"body"`
	Pos        [3]float64 `json:"pos"`
}

// Move statuses.
const (
	MoveOK      = "ok"      // body stayed; position updated in place
	MoveAbsent  = "absent"  // body is not resident here
	MoveHandoff = "handoff" // body evicted; State must be delivered to Key's owner
)

// MoveResponse is the shard's answer to a move (or accept).
type MoveResponse struct {
	Status string     `json:"status"`
	Shard  string     `json:"shard"`
	Body   int32      `json:"body"`
	Key    uint64     `json:"key,omitempty"`
	State  *BodyState `json:"state,omitempty"`
}

// AcceptRequest delivers an evicted body's state to its new owner. A
// shard that is not the owner under its own map answers 421
// (Misdirected Request) so a routing bug can never split a body across
// two shards.
type AcceptRequest struct {
	MapVersion int       `json:"map_version"`
	Body       int32     `json:"body"`
	State      BodyState `json:"state"`
}

// ShardInfo is the GET /v1/shard document.
type ShardInfo struct {
	ID         string `json:"id"`
	MapVersion int    `json:"map_version"`
	Lo         uint64 `json:"lo"`
	Hi         uint64 `json:"hi"`
	Resident   int    `json:"resident"`
}

// BodyDoc is the GET /v1/shard/body answer, used by tests and the smoke
// script to assert a handed-off body lives in exactly one shard.
type BodyDoc struct {
	Present bool       `json:"present"`
	Shard   string     `json:"shard"`
	Body    int32      `json:"body"`
	State   *BodyState `json:"state,omitempty"`
}

// ShardServer owns one Morton range of the cluster: it serves shard-
// level builds through the process's engine (so the engine's admission
// control composes shard by shard), keeps the resident body states for
// its range, and enforces the handoff protocol with the engine.Guard.
type ShardServer struct {
	m     Map
	idx   int
	guard engine.Guard
	eng   *engine.Engine

	mu       sync.Mutex
	resident map[int32]BodyState
	memoKey  string
	memo     *phys.Bodies

	builds    *obs.Counter
	built     *obs.Counter
	handoffs  *obs.Counter
	accepts   *obs.Counter
	conflicts *obs.Counter
	redirects *obs.Counter
}

// NewShardServer builds the serving state for shard index idx of the
// map. The map may be addr-less: a shard needs only the shared domain
// and its own range.
func NewShardServer(m Map, idx int, eng *engine.Engine) (*ShardServer, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(m.Shards) {
		return nil, fmt.Errorf("cluster: shard index %d out of range for %d-shard map", idx, len(m.Shards))
	}
	if eng == nil {
		return nil, fmt.Errorf("cluster: shard server needs an engine")
	}
	s := &ShardServer{
		m:   m,
		idx: idx,
		guard: engine.Guard{
			Domain: m.Domain.Cube(),
			Lo:     m.Shards[idx].Lo,
			Hi:     m.Shards[idx].Hi,
		},
		eng:       eng,
		resident:  make(map[int32]BodyState),
		builds:    obs.NewCounter("partree_shard_builds_total", "Shard-level builds served."),
		built:     obs.NewCounter("partree_shard_bodies_built_total", "Bodies loaded into trees by shard-level builds (last repetition of each)."),
		handoffs:  obs.NewCounter("partree_shard_handoffs_total", "Bodies evicted because a move keyed them outside the owned range."),
		accepts:   obs.NewCounter("partree_shard_accepts_total", "Bodies accepted into residency from a handoff."),
		conflicts: obs.NewCounter("partree_shard_version_conflicts_total", "Requests refused with 409 for carrying a different map version."),
		redirects: obs.NewCounter("partree_shard_misdirects_total", "Accepts refused with 421 because this shard does not own the body's key."),
	}
	return s, nil
}

// ID returns the shard's map ID.
func (s *ShardServer) ID() string { return s.m.Shards[s.idx].ID }

// Guard exposes the shard's ownership guard (tests key against it).
func (s *ShardServer) Guard() engine.Guard { return s.guard }

// Resident returns the number of resident bodies.
func (s *ShardServer) Resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.resident)
}

// ResidentIDs returns the resident body ids in ascending order (tests
// and debugging; the serving path never needs the full list).
func (s *ShardServer) ResidentIDs() []int32 {
	s.mu.Lock()
	ids := make([]int32, 0, len(s.resident))
	for id := range s.resident {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// RegisterObs registers the partree_shard_* families.
func (s *ShardServer) RegisterObs(reg *obs.Registry) error {
	return reg.Register(
		s.builds, s.built, s.handoffs, s.accepts, s.conflicts, s.redirects,
		obs.NewGaugeFunc("partree_shard_resident", "Bodies currently resident in this shard's range.",
			func() float64 { return float64(s.Resident()) }),
	)
}

// Middleware wraps one shard route; partreed passes its instrument
// middleware so shard routes get request IDs, spans, and access logs
// like every other endpoint.
type Middleware func(route string, h http.HandlerFunc) http.HandlerFunc

// Mount registers the shard routes on mux. A nil wrap mounts them bare.
func (s *ShardServer) Mount(mux *http.ServeMux, wrap Middleware) {
	if wrap == nil {
		wrap = func(_ string, h http.HandlerFunc) http.HandlerFunc { return h }
	}
	mux.HandleFunc("/v1/shard", wrap("/v1/shard", s.handleInfo))
	mux.HandleFunc("/v1/shard/build", wrap("/v1/shard/build", s.handleBuild))
	mux.HandleFunc("/v1/shard/move", wrap("/v1/shard/move", s.handleMove))
	mux.HandleFunc("/v1/shard/accept", wrap("/v1/shard/accept", s.handleAccept))
	mux.HandleFunc("/v1/shard/body", wrap("/v1/shard/body", s.handleBody))
}

// jsonError mirrors partreed's error document shape (the instrument
// middleware, when present, has already set X-Request-Id).
func jsonError(w http.ResponseWriter, code int, msg string) {
	doc := map[string]string{"error": msg}
	if id := w.Header().Get("X-Request-Id"); id != "" {
		doc["request_id"] = id
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(doc)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// checkVersion enforces the map-version consistency token: any mismatch
// is 409, never a silent misroute on stale ranges.
func (s *ShardServer) checkVersion(w http.ResponseWriter, got int) bool {
	if got != s.m.Version {
		s.conflicts.Inc()
		jsonError(w, http.StatusConflict,
			fmt.Sprintf("map version mismatch: shard %s has %d, request carries %d", s.ID(), s.m.Version, got))
		return false
	}
	return true
}

func (s *ShardServer) handleInfo(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET the shard info document")
		return
	}
	sh := s.m.Shards[s.idx]
	writeJSON(w, ShardInfo{ID: sh.ID, MapVersion: s.m.Version, Lo: sh.Lo, Hi: sh.Hi, Resident: s.Resident()})
}

func (s *ShardServer) handleBody(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET with ?id=<body>")
		return
	}
	id, err := strconv.ParseInt(req.URL.Query().Get("id"), 10, 32)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "id must be a body index")
		return
	}
	s.mu.Lock()
	st, ok := s.resident[int32(id)]
	s.mu.Unlock()
	doc := BodyDoc{Present: ok, Shard: s.ID(), Body: int32(id)}
	if ok {
		doc.State = &st
	}
	writeJSON(w, doc)
}

// bodiesFor regenerates (or reuses) the deterministic full body set for
// a spec. One memo entry suffices: cluster traffic repeats one spec
// shape at a time, and regeneration is always correct.
func (s *ShardServer) bodiesFor(spec runner.Spec) (*phys.Bodies, error) {
	model, ok := phys.ParseModel(spec.Model)
	if !ok {
		return nil, fmt.Errorf("unknown model %q", spec.Model)
	}
	key := fmt.Sprintf("%s|%d|%d", spec.Model, spec.Bodies, spec.Seed)
	s.mu.Lock()
	if s.memoKey == key {
		b := s.memo
		s.mu.Unlock()
		return b, nil
	}
	s.mu.Unlock()
	b := phys.Generate(model, spec.Bodies, spec.Seed)
	s.mu.Lock()
	s.memoKey, s.memo = key, b
	s.mu.Unlock()
	return b, nil
}

func (s *ShardServer) handleBuild(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST a ShardBuildRequest JSON document")
		return
	}
	var br ShardBuildRequest
	if err := json.NewDecoder(req.Body).Decode(&br); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parsing request: %v", err))
		return
	}
	if !s.checkVersion(w, br.MapVersion) {
		return
	}
	// The cluster tier executes real shard-local builds; the simulated
	// backend has no meaning here, so the field is pinned rather than
	// silently defaulting to a simulation.
	br.Spec.Backend = runner.Native
	spec := br.Spec.Normalized()
	if spec.Trace != "" {
		jsonError(w, http.StatusBadRequest, "trace is not supported over HTTP")
		return
	}
	if err := spec.Validate(); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}

	all, err := s.bodiesFor(spec)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Key the full set against the *map's* domain — every shard computes
	// identical keys, so the owned subsets tile the body set exactly.
	owned := make([]int32, 0, all.N()/len(s.m.Shards)+1)
	for i := 0; i < all.N(); i++ {
		if s.guard.Owns(s.guard.Key(all.Pos[i])) {
			owned = append(owned, int32(i))
		}
	}

	res := ShardBuildResult{Shard: s.ID(), N: len(owned)}
	start := time.Now()
	if len(owned) > 0 {
		s.runBuild(req.Context(), spec, all, owned, &res)
	}
	res.WallNs = time.Since(start).Nanoseconds()
	if res.Err != "" && engineRejected(res.Err) {
		jsonError(w, http.StatusServiceUnavailable, res.Err)
		return
	}
	s.builds.Inc()
	s.built.Add(float64(res.BodiesBuilt))

	// A completed build establishes residency: the shard now holds the
	// state of exactly the bodies it built. Transient builds (sweeps)
	// skip this — concurrent specs would otherwise race to be the
	// shard's resident set.
	if !res.Failed() && !br.Transient {
		states := make(map[int32]BodyState, len(owned))
		for _, i := range owned {
			states[i] = BodyState{
				Pos:  [3]float64{all.Pos[i].X, all.Pos[i].Y, all.Pos[i].Z},
				Vel:  [3]float64{all.Vel[i].X, all.Vel[i].Y, all.Vel[i].Z},
				Mass: all.Mass[i],
			}
		}
		s.mu.Lock()
		s.resident = states
		s.mu.Unlock()
	}
	writeJSON(w, res)
}

// engineRejected reports whether a shard-build error is an engine
// admission rejection — the sentinel texts are the 503 contract, same
// as partreed's.
func engineRejected(msg string) bool {
	return strings.Contains(msg, engine.ErrQueueFull.Error()) ||
		strings.Contains(msg, engine.ErrDraining.Error())
}

// vecOf converts the JSON-stable triple into the geometric type.
func vecOf(p [3]float64) vec.V3 {
	return vec.V3{X: p[0], Y: p[1], Z: p[2]}
}

// runBuild executes the owned subset's build through the engine,
// mirroring the single-process build-only path: best-of-Steps wall
// time, last repetition's tree metrics, optional per-shard verification
// under the same conservation laws.
func (s *ShardServer) runBuild(ctx context.Context, spec runner.Spec, all *phys.Bodies, owned []int32, res *ShardBuildResult) {
	sub := phys.NewBodies(len(owned))
	for j, i := range owned {
		sub.Pos[j] = all.Pos[i]
		sub.Vel[j] = all.Vel[i]
		sub.Acc[j] = all.Acc[i]
		sub.Mass[j] = all.Mass[i]
		sub.Cost[j] = all.Cost[i]
	}

	ses, err := s.eng.Acquire(ctx, engine.Key{Alg: spec.Alg, P: spec.Procs, LeafCap: spec.LeafCap})
	if err != nil {
		res.Err = fmt.Sprintf("shard %s build: %v", s.ID(), err)
		return
	}
	defer ses.Release()

	assign := core.EvenAssign(sub.N(), spec.Procs)
	if spec.Spatial {
		assign = core.SpatialAssign(sub, spec.Procs)
	}
	in := &core.Input{Bodies: sub, Assign: assign}
	best := time.Duration(1 << 62)
	for rep := 0; rep < spec.Steps; rep++ {
		if err := ctx.Err(); err != nil {
			res.Err = fmt.Sprintf("shard %s build: %v after %d/%d reps", s.ID(), err, rep, spec.Steps)
			return
		}
		in.Step = rep
		t0 := time.Now()
		tree, metrics := ses.Build(in)
		if el := time.Since(t0); el < best {
			best = el
		}
		if spec.Check {
			if err := verify.Build(spec.Alg, tree, metrics, sub, rep); err != nil {
				res.CheckFailure = fmt.Sprintf("shard %s: %v", s.ID(), err)
				return
			}
		}
		st := octree.CollectStats(tree)
		res.Cells = int64(st.Cells)
		res.Leaves = int64(st.Leaves)
		res.MaxDepth = int64(st.MaxDepth)
		res.LocksTotal = metrics.TotalLocks()
		res.Retries = metrics.TotalRetries()
		res.BodiesBuilt = totalBodiesBuilt(metrics)
	}
	res.TreeNs = float64(best)
}

func totalBodiesBuilt(m *core.Metrics) int64 {
	var t int64
	for i := range m.PerP {
		t += m.PerP[i].BodiesBuilt
	}
	return t
}

func (s *ShardServer) handleMove(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST a MoveRequest JSON document")
		return
	}
	var mr MoveRequest
	if err := json.NewDecoder(req.Body).Decode(&mr); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parsing request: %v", err))
		return
	}
	if !s.checkVersion(w, mr.MapVersion) {
		return
	}
	pos := vecOf(mr.Pos)

	s.mu.Lock()
	st, ok := s.resident[mr.Body]
	if !ok {
		s.mu.Unlock()
		writeJSON(w, MoveResponse{Status: MoveAbsent, Shard: s.ID(), Body: mr.Body})
		return
	}
	st.Pos = mr.Pos
	err := s.guard.Check(mr.Body, pos)
	if err == nil {
		s.resident[mr.Body] = st
		s.mu.Unlock()
		writeJSON(w, MoveResponse{Status: MoveOK, Shard: s.ID(), Body: mr.Body, Key: s.guard.Key(pos)})
		return
	}
	// The new position keys outside our range: evict now — keeping state
	// we no longer own is how a body ends up in two shards — and hand the
	// state back for delivery to the key's owner.
	delete(s.resident, mr.Body)
	s.mu.Unlock()
	s.handoffs.Inc()
	var re *engine.RedirectError
	errors.As(err, &re)
	writeJSON(w, MoveResponse{Status: MoveHandoff, Shard: s.ID(), Body: mr.Body, Key: re.Key, State: &st})
}

func (s *ShardServer) handleAccept(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST an AcceptRequest JSON document")
		return
	}
	var ar AcceptRequest
	if err := json.NewDecoder(req.Body).Decode(&ar); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parsing request: %v", err))
		return
	}
	if !s.checkVersion(w, ar.MapVersion) {
		return
	}
	if err := s.guard.Check(ar.Body, vecOf(ar.State.Pos)); err != nil {
		// Misdirected: accepting would claim a key another shard owns.
		s.redirects.Inc()
		jsonError(w, http.StatusMisdirectedRequest, err.Error())
		return
	}
	s.mu.Lock()
	s.resident[ar.Body] = ar.State
	s.mu.Unlock()
	s.accepts.Inc()
	writeJSON(w, MoveResponse{Status: MoveOK, Shard: s.ID(), Body: ar.Body, Key: s.guard.Key(vecOf(ar.State.Pos))})
}
