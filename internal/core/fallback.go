package core

// FallbackPolicy decides when a long-lived UPDATE session should give up
// on incremental repair and rebuild from scratch. UPDATE's repair cost
// tracks the fraction of bodies crossing leaf boundaries (churn), and
// its tree quality decays because cells are never collapsed — the max
// leaf depth creeps while the mean stays put (depth skew). Either signal
// crossing its threshold for Streak consecutive steps, after a MinSteps
// cooldown since the last fresh build, triggers one SPACE rebuild
// through the same session. Rebuild-vs-update crossover is workload
// dependent, so every knob is per-session.
type FallbackPolicy struct {
	// MaxChurnFrac is the boundary-crossing fraction above which a step
	// counts against the streak. <=0 selects the default 0.25.
	MaxChurnFrac float64
	// MaxDepthSkew is the max/mean leaf-depth ratio above which a step
	// counts against the streak. <=0 selects the default 2.5.
	MaxDepthSkew float64
	// Streak is how many consecutive over-threshold steps are required
	// before a rebuild fires — the hysteresis that stops a workload
	// sitting exactly on a threshold from flapping. <=0 selects 2.
	Streak int
	// MinSteps is the cooldown: no policy rebuild fires within MinSteps
	// steps of the last fresh build. <=0 selects 8.
	MinSteps int
}

// DefaultFallbackPolicy returns the documented defaults.
func DefaultFallbackPolicy() FallbackPolicy {
	return FallbackPolicy{}.withDefaults()
}

func (p FallbackPolicy) withDefaults() FallbackPolicy {
	if p.MaxChurnFrac <= 0 {
		p.MaxChurnFrac = 0.25
	}
	if p.MaxDepthSkew <= 0 {
		p.MaxDepthSkew = 2.5
	}
	if p.Streak <= 0 {
		p.Streak = 2
	}
	if p.MinSteps <= 0 {
		p.MinSteps = 8
	}
	return p
}

// FallbackController applies a FallbackPolicy to a stream of step
// outcomes. Not safe for concurrent use; a session owns exactly one.
type FallbackController struct {
	policy       FallbackPolicy
	streak       int
	sinceRebuild int
	pending      bool
}

// NewFallbackController returns a controller with zero-valued policy
// fields replaced by the defaults.
func NewFallbackController(p FallbackPolicy) *FallbackController {
	return &FallbackController{policy: p.withDefaults()}
}

// Policy returns the resolved (defaulted) policy.
func (c *FallbackController) Policy() FallbackPolicy { return c.policy }

// Observe consumes one step's signals and returns true when the NEXT
// step should be served as a fresh rebuild. fresh reports that the step
// just observed was itself a fresh build (of any cause): that resets the
// streak and restarts the cooldown, because a fresh tree invalidates
// both signals. The verdict latches: once true it stays true until a
// fresh build is observed, even if a later step dips back under the
// thresholds.
func (c *FallbackController) Observe(churnFrac, depthSkew float64, fresh bool) bool {
	if fresh {
		c.streak = 0
		c.sinceRebuild = 0
		c.pending = false
		return false
	}
	c.sinceRebuild++
	if churnFrac > c.policy.MaxChurnFrac || (depthSkew > 0 && depthSkew > c.policy.MaxDepthSkew) {
		c.streak++
	} else {
		c.streak = 0
	}
	if !c.pending && c.sinceRebuild >= c.policy.MinSteps && c.streak >= c.policy.Streak {
		c.pending = true
	}
	return c.pending
}
