package memsim

import "sort"

// hlrcProtocol models Home-based Lazy Release Consistency over software
// shared virtual memory at page granularity (Zhou, Iftode & Li), the
// protocol the paper runs on the Intel Paragon and on Typhoon-0's page
// mode. The model keeps real vector clocks and per-interval write
// notices, so the defining behaviours emerge rather than being asserted:
//
//   - all protocol activity happens at acquires, releases and barriers;
//   - a lock acquire merges the last releaser's vector clock and applies
//     write notices, invalidating pages written by others;
//   - a release closes the current interval, computing and flushing a
//     diff to the home for every page written (twin created at first
//     write to a non-home page);
//   - an access to an invalidated page faults and fetches the page from
//     its home — and a fault inside a critical section dilates it for
//     every waiting processor, the serialization the paper identifies as
//     the key bottleneck.
//
// Each processor is a node (a workstation in the cluster); a page's home
// processor always has a valid copy.
type hlrcProtocol struct {
	pl     Platform
	p      int
	homes  *homeMap
	pages  map[uint64]*svmPage
	procs  []svmProc
	lockVC map[int][]int32 // vector clock carried by each lock
	// nodes[i] is node i's protocol engine (the compute processor or
	// coprocessor running the SVM handlers): page fetches it serves,
	// diffs it applies, and lock requests it manages occupy it serially.
	// Under load this queues — the saturation that makes fine-grained
	// synchronization collapse on these systems.
	nodes []resource
	st    ProtocolStats
}

// svmPage is one shared page's SVM state.
type svmPage struct {
	valid   uint64 // bitmask of processors with a valid copy
	twinned uint64 // processors holding a twin in their current interval
}

// interval is one processor's closed write interval: the pages it dirtied
// between two release points.
type interval struct {
	pages []uint64
}

// svmProc is one processor's protocol state.
type svmProc struct {
	vc        []int32 // vector clock; vc[q] = last interval of q seen
	dirty     map[uint64]struct{}
	intervals []interval // my closed intervals, indexed by sequence-1
}

func newHLRCProtocol(pl Platform, p int) *hlrcProtocol {
	h := &hlrcProtocol{
		pl:     pl,
		p:      p,
		homes:  newHomeMap(pl.PageSize, p),
		pages:  make(map[uint64]*svmPage),
		procs:  make([]svmProc, p),
		lockVC: make(map[int][]int32),
		nodes:  make([]resource, p),
	}
	for i := range h.procs {
		h.procs[i] = svmProc{vc: make([]int32, p), dirty: make(map[uint64]struct{})}
	}
	return h
}

func (h *hlrcProtocol) pageOf(addr uint64) uint64 { return addr / uint64(h.pl.PageSize) }

func (h *hlrcProtocol) page(pg uint64) *svmPage {
	s := h.pages[pg]
	if s == nil {
		s = &svmPage{valid: ^uint64(0)} // untouched pages start valid everywhere
		h.pages[pg] = s
	}
	return s
}

// faultNs is the cost of fetching a page from its home.
func (h *hlrcProtocol) faultNs() float64 {
	return 2*h.pl.MsgNs + h.pl.PageXferNs + h.pl.SoftNs
}

func (h *hlrcProtocol) Access(proc int, addr uint64, write bool, now float64) float64 {
	h.st.Accesses++
	pg := h.pageOf(addr)
	s := h.page(pg)
	bit := uint64(1) << uint(proc)
	home := h.homes.nodeOf(addr)

	lat := h.pl.HitNs
	if s.valid&bit == 0 && home != proc {
		// Page fault: fetch the up-to-date copy from home, whose
		// protocol engine serves requests one at a time.
		h.st.PageFaults++
		wait := h.nodes[home].serve(now+h.pl.MsgNs, h.pl.SoftNs+h.pl.PageXferNs/2)
		h.st.ContentionNs += wait
		lat += h.faultNs() + wait
		s.valid |= bit
	} else {
		h.st.Hits++
	}
	if write {
		if home != proc && s.twinned&bit == 0 {
			// First write this interval: make a twin.
			h.st.Twins++
			lat += h.pl.TwinNs
			s.twinned |= bit
		}
		h.procs[proc].dirty[pg] = struct{}{}
	}
	return lat
}

// closeInterval flushes proc's dirty pages (diffs to homes) and records
// the interval's write notices. Returns the cost to the releaser; the
// homes' protocol engines are also occupied applying the diffs, delaying
// whoever faults to them next.
func (h *hlrcProtocol) closeInterval(proc int, now float64) float64 {
	ps := &h.procs[proc]
	if len(ps.dirty) == 0 {
		return 0
	}
	pages := make([]uint64, 0, len(ps.dirty))
	for pg := range ps.dirty {
		pages = append(pages, pg)
	}
	sortUint64(pages)
	var cost float64
	for _, pg := range pages {
		s := h.page(pg)
		bit := uint64(1) << uint(proc)
		if s.twinned&bit != 0 {
			// Compute the diff locally, send it; the home applies it.
			h.st.Diffs++
			cost += h.pl.DiffNs
			h.nodes[h.homeOfPage(pg)].serve(now+cost+h.pl.MsgNs, h.pl.SoftNs)
			s.twinned &^= bit
		}
		// Everyone else's copy is now stale relative to this interval.
	}
	// The release completes only when the homes have acknowledged.
	cost += 2 * h.pl.MsgNs
	ps.intervals = append(ps.intervals, interval{pages: pages})
	ps.vc[proc]++
	ps.dirty = make(map[uint64]struct{})
	return cost
}

// applyNotices merges remote into proc's vector clock, invalidating pages
// from every interval proc has not yet seen. Returns the cost.
func (h *hlrcProtocol) applyNotices(proc int, remote []int32) float64 {
	ps := &h.procs[proc]
	var applied int64
	for q := 0; q < h.p; q++ {
		if q == proc || remote[q] <= ps.vc[q] {
			continue
		}
		for seq := ps.vc[q]; seq < remote[q]; seq++ {
			for _, pg := range h.procs[q].intervals[seq].pages {
				s := h.page(pg)
				bit := uint64(1) << uint(proc)
				if s.valid&bit != 0 && h.homeOfPage(pg) != proc {
					s.valid &^= bit
					applied++
				}
			}
		}
		ps.vc[q] = remote[q]
	}
	h.st.WriteNotices += applied
	return float64(applied) * h.pl.NoticeNs
}

func (h *hlrcProtocol) homeOfPage(pg uint64) int {
	return h.homes.nodeOf(pg * uint64(h.pl.PageSize))
}

func (h *hlrcProtocol) AcquireLock(proc, lockID int, now float64) float64 {
	// Fetch the lock from its manager node (whose protocol engine is a
	// serial resource), then apply the write notices its vector clock
	// implies.
	mgr := lockID % h.p
	wait := h.nodes[mgr].serve(now+h.pl.MsgNs, h.pl.SoftNs)
	h.st.ContentionNs += wait
	lat := 2*h.pl.MsgNs + wait
	if vc := h.lockVC[lockID]; vc != nil {
		lat += h.applyNotices(proc, vc)
	}
	return lat + h.pl.SoftNs
}

func (h *hlrcProtocol) ReleaseLock(proc, lockID int, now float64) float64 {
	// Lazy release consistency: the interval closes here, and the lock
	// carries the releaser's vector clock to the next acquirer.
	cost := h.closeInterval(proc, now)
	vc := h.lockVC[lockID]
	if vc == nil {
		vc = make([]int32, h.p)
		h.lockVC[lockID] = vc
	}
	copy(vc, h.procs[proc].vc)
	return cost + h.pl.SoftNs
}

func (h *hlrcProtocol) BarrierWork(arrivals []float64, procs []int) (float64, []float64) {
	// Every processor closes its interval on arrival, the manager merges
	// all vector clocks, and every processor applies the notices it has
	// not seen before leaving.
	flushed := make([]float64, len(procs))
	var latest float64
	merged := make([]int32, h.p)
	for i, pr := range procs {
		c := h.closeInterval(pr, arrivals[i])
		flushed[i] = arrivals[i] + c
		if flushed[i] > latest {
			latest = flushed[i]
		}
	}
	for _, pr := range procs {
		for q := 0; q < h.p; q++ {
			if h.procs[pr].vc[q] > merged[q] {
				merged[q] = h.procs[pr].vc[q]
			}
		}
	}
	release := latest + h.pl.BarrierBase + h.pl.BarrierPerP*float64(len(procs)) + 2*h.pl.MsgNs
	perProc := make([]float64, len(procs))
	for i, pr := range procs {
		perProc[i] = h.applyNotices(pr, merged) + h.pl.SoftNs
	}
	return release, perProc
}

func (h *hlrcProtocol) SetHome(lo, hi uint64, node int) { h.homes.set(lo, hi, node) }

func (h *hlrcProtocol) Stats() ProtocolStats { return h.st }

func sortUint64(x []uint64) {
	sort.Slice(x, func(i, j int) bool { return x[i] < x[j] })
}
