package adapt

import (
	"partree/internal/core"
	"partree/internal/trace"
)

// TunerPolicy bounds the auto-tuner. Zero fields select the documented
// defaults, mirroring core.FallbackPolicy's style.
type TunerPolicy struct {
	// MaxLockWaitFrac is the lock-wait share of total build time above
	// which a step votes to raise the leaf capacity (fewer subdivisions,
	// fewer locks). <=0 selects 0.10.
	MaxLockWaitFrac float64
	// MaxBarrierFrac is the barrier-wait share above which a step votes
	// to halve the effective processor count — the parallelism is not
	// paying for its synchronization. <=0 selects 0.40.
	MaxBarrierFrac float64
	// MinBarrierFrac is the barrier share below which (with skew also
	// settled) a step votes to restore halved processors. <=0 selects
	// 0.05.
	MinBarrierFrac float64
	// MaxSkew is the max/mean insert-time ratio above which a step votes
	// to halve the SPACE threshold, so fallback rebuilds repartition
	// space more finely. <=0 selects 1.5.
	MaxSkew float64
	// Streak is how many consecutive over-threshold steps a signal needs
	// before its knob moves. <=0 selects 3.
	Streak int
	// MinSteps is the cooldown: no knob change within MinSteps steps of
	// the previous one, so one change's effect is observed before the
	// next. <=0 selects 8.
	MinSteps int
	// MaxLeafCap caps leaf-capacity doubling. <=0 selects 64.
	MaxLeafCap int
}

// DefaultTunerPolicy returns the documented defaults.
func DefaultTunerPolicy() TunerPolicy { return TunerPolicy{}.withDefaults() }

func (p TunerPolicy) withDefaults() TunerPolicy {
	if p.MaxLockWaitFrac <= 0 {
		p.MaxLockWaitFrac = 0.10
	}
	if p.MaxBarrierFrac <= 0 {
		p.MaxBarrierFrac = 0.40
	}
	if p.MinBarrierFrac <= 0 {
		p.MinBarrierFrac = 0.05
	}
	if p.MaxSkew <= 0 {
		p.MaxSkew = 1.5
	}
	if p.Streak <= 0 {
		p.Streak = 3
	}
	if p.MinSteps <= 0 {
		p.MinSteps = 8
	}
	if p.MaxLeafCap <= 0 {
		p.MaxLeafCap = 64
	}
	return p
}

// Knob names a tuner decision, for metrics and step records.
const (
	KnobLeafCap        = "leafcap"
	KnobSpaceThreshold = "space-threshold"
	KnobPDown          = "p-down"
	KnobPUp            = "p-up"
)

// Tuner turns live phase/lock fractions into knob changes with the same
// hysteresis shape as core.FallbackController: each signal must stay
// over its threshold for Streak consecutive steps, at most one knob moves
// per decision, and a cooldown separates decisions so each change's
// effect is measured before the next. A knob change costs the session one
// fresh rebuild (the stepper recreates its builder), which is why the
// hysteresis is deliberately sluggish.
type Tuner struct {
	policy TunerPolicy
	// maxP is the session's configured processor count — the ceiling
	// recovery can restore to (stores and recorders were sized for it).
	maxP int

	lockStreak    int
	barrierStreak int
	skewStreak    int
	recoverStreak int
	sinceChange   int
	lastKnob      string
}

// NewTuner returns a tuner for a session configured with maxP
// processors. The cooldown starts elapsed-from-zero, so the earliest
// change lands after MinSteps observed steps.
func NewTuner(policy TunerPolicy, maxP int) *Tuner {
	if maxP < 1 {
		maxP = 1
	}
	return &Tuner{policy: policy.withDefaults(), maxP: maxP}
}

// Policy returns the resolved (defaulted) policy.
func (tn *Tuner) Policy() TunerPolicy { return tn.policy }

// LastKnob names the most recent knob change ("" before any).
func (tn *Tuner) LastKnob() string { return tn.lastKnob }

// Observe consumes one traced step's summary, updating the signal
// streaks. Untraced or empty summaries leave the streaks alone (but the
// cooldown still advances — time passed).
func (tn *Tuner) Observe(sum *trace.Summary) {
	tn.sinceChange++
	lockFrac, barrierFrac, skew, ok := signals(sum)
	if !ok {
		return
	}
	bump(&tn.lockStreak, lockFrac > tn.policy.MaxLockWaitFrac)
	bump(&tn.barrierStreak, barrierFrac > tn.policy.MaxBarrierFrac)
	bump(&tn.skewStreak, skew > tn.policy.MaxSkew)
	bump(&tn.recoverStreak, barrierFrac < tn.policy.MinBarrierFrac && skew < tn.policy.MaxSkew)
}

// Propose returns the next configuration when a knob should move, or
// (cur, "", false) to stand pat. Priorities: lock contention first (it
// serializes everything), then oversynchronization, then spatial skew,
// then parallelism recovery. Firing resets every streak and the cooldown.
func (tn *Tuner) Propose(cur core.Config, n int) (core.Config, string, bool) {
	if tn.sinceChange < tn.policy.MinSteps {
		return cur, "", false
	}
	s := tn.policy.Streak
	next := cur
	knob := ""
	switch {
	case tn.lockStreak >= s && cur.LeafCap < tn.policy.MaxLeafCap:
		next.LeafCap = min(cur.LeafCap*2, tn.policy.MaxLeafCap)
		knob = KnobLeafCap
	case tn.barrierStreak >= s && cur.P > 1:
		next.P = cur.P / 2
		knob = KnobPDown
	case tn.skewStreak >= s && resolveSpaceThreshold(cur, n) > cur.LeafCap:
		th := resolveSpaceThreshold(cur, n) / 2
		if th < cur.LeafCap {
			th = cur.LeafCap
		}
		next.SpaceThreshold = th
		knob = KnobSpaceThreshold
	case tn.recoverStreak >= s && cur.P < tn.maxP:
		next.P = min(cur.P*2, tn.maxP)
		knob = KnobPUp
	default:
		return cur, "", false
	}
	tn.lockStreak, tn.barrierStreak, tn.skewStreak, tn.recoverStreak = 0, 0, 0, 0
	tn.sinceChange = 0
	tn.lastKnob = knob
	return next, knob, true
}

// resolveSpaceThreshold mirrors core's spaceThreshold defaulting
// (SpaceThreshold 0 means max(LeafCap, n/(4·P)) at build time), so the
// tuner halves the *effective* threshold, not a literal zero.
func resolveSpaceThreshold(cfg core.Config, n int) int {
	th := cfg.SpaceThreshold
	if th <= 0 && cfg.P > 0 {
		th = n / (4 * cfg.P)
	}
	if th < cfg.LeafCap {
		th = cfg.LeafCap
	}
	return th
}

// signals derives the tuner's three fractions from one step's summary.
// The denominator sums partition, insert, moments, and barrier time
// (subdivide is nested inside insert and would double-count).
func signals(sum *trace.Summary) (lockFrac, barrierFrac, skew float64, ok bool) {
	if sum == nil || len(sum.PerProc) == 0 {
		return 0, 0, 0, false
	}
	var totalNs, lockNs, barrierNs int64
	for w := range sum.PerProc {
		ps := &sum.PerProc[w]
		totalNs += ps.PhaseNs[trace.PhasePartition] + ps.PhaseNs[trace.PhaseInsert] +
			ps.PhaseNs[trace.PhaseMoments] + ps.PhaseNs[trace.PhaseBarrier]
		lockNs += ps.LockWaitNs
		barrierNs += ps.PhaseNs[trace.PhaseBarrier]
	}
	if totalNs <= 0 {
		return 0, 0, 0, false
	}
	return float64(lockNs) / float64(totalNs), float64(barrierNs) / float64(totalNs),
		sum.ImbalanceRatio(), true
}

func bump(streak *int, over bool) {
	if over {
		*streak++
	} else {
		*streak = 0
	}
}
