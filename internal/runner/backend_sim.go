package runner

import (
	"context"
	"fmt"

	"partree/internal/phys"
	"partree/internal/simalg"
	"partree/internal/trace"
	"partree/internal/verify"
)

// runSimulated replays the whole application on the platform model.
// simalg.Run has no internal preemption points, so cancellation is
// implemented by racing the run against the context: on timeout the
// caller gets a partial Result immediately and the abandoned run is left
// to finish on its goroutine (it only touches its own clone of bodies).
func runSimulated(ctx context.Context, spec Spec, bodies *phys.Bodies) Result {
	pl, err := ParsePlatform(spec.Platform, spec.Procs)
	if err != nil {
		return Result{Err: err.Error()}
	}
	cfg := simalg.Config{
		Platform:      pl,
		P:             spec.Procs,
		LeafCap:       spec.LeafCap,
		Theta:         spec.Theta,
		Dt:            spec.Dt,
		MeasuredSteps: spec.Steps,
		Sequential:    spec.Sequential,
	}
	var rec *trace.Recorder
	if spec.Trace != "" {
		// Simulated traces are stamped in virtual time and cover all
		// measured steps (warm steps are never recorded).
		rec = trace.New(spec.Procs)
		rec.SetEnabled(true)
		cfg.Trace = rec
	}
	if spec.Check && !spec.Sequential {
		// The replay's tree lives inside the platform model, so run the
		// native companion check of the same algorithm and workload. A
		// wrong algorithm makes the replayed timing meaningless, so skip
		// the replay on failure.
		if cerr := verify.Algorithm(spec.Alg, bodies, spec.Procs, spec.LeafCap); cerr != nil {
			return Result{CheckFailure: cerr.Error()}
		}
	}
	ch := make(chan simalg.Outcome, 1)
	go func() { ch <- simalg.Run(spec.Alg, bodies, cfg) }()
	select {
	case o := <-ch:
		res := resultFromOutcome(spec, o)
		res.rec = rec
		return res
	case <-ctx.Done():
		// The abandoned run still owns rec; drop it rather than export a
		// trace that is being concurrently written.
		return Result{Err: fmt.Sprintf("simulated run %s: %v", spec, ctx.Err())}
	}
}
