// Messagepassing runs the baseline the paper frames itself against: a
// Salmon-style message-passing Barnes-Hut (orthogonal recursive bisection
// + locally essential trees, ranks as goroutines, messages as channels),
// and prints the per-rank communication the shared-address-space model
// never has to spell out. Run:
//
//	go run ./examples/messagepassing [-n 16384] [-p 8] [-steps 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"partree/internal/mp"
	"partree/internal/phys"
	"partree/internal/stats"
)

func main() {
	n := flag.Int("n", 16384, "bodies")
	p := flag.Int("p", 8, "ranks")
	steps := flag.Int("steps", 3, "time steps")
	flag.Parse()

	b := phys.Generate(phys.ModelPlummer, *n, 1998)
	fmt.Printf("message-passing Barnes-Hut: %d bodies, %d ranks\n\n", *n, *p)
	for s := 0; s < *steps; s++ {
		st := mp.Step(b, mp.Options{P: *p})
		fmt.Printf("step %d: orb=%v tree+LET=%v force=%v update=%v  comm=%.1fKB in %d msgs\n",
			s, st.ORB, st.Tree, st.Force, st.Update,
			float64(st.TotalBytes())/1024, totalMsgs(st))
		if s == *steps-1 {
			fmt.Println()
			t := stats.NewTable("rank", "bodies", "tree nodes", "recv items", "sent KB", "interactions")
			for r, rs := range st.PerRank {
				t.Row(r, rs.Bodies, rs.TreeNodes, rs.RemoteItems,
					fmt.Sprintf("%.1f", float64(rs.BytesSent)/1024), rs.Interactions)
			}
			t.Write(os.Stdout)
		}
	}
	fmt.Println("\nEvery remote byte above is explicit — the programming cost the shared")
	fmt.Println("address space model removes, and whose performance the paper's SPACE")
	fmt.Println("algorithm makes portable.")
}

func totalMsgs(st mp.StepStats) int64 {
	var m int64
	for _, r := range st.PerRank {
		m += r.MsgsSent
	}
	return m
}
