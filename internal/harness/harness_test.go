package harness

import (
	"bytes"
	"strings"
	"testing"

	"partree/internal/core"
	"partree/internal/memsim"
)

func tinySession() *Session {
	return NewSession(Options{Sizes: []int{1024, 2048}, MeasuredSteps: 1})
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	s := tinySession()
	for _, e := range All() {
		if e.ID == "X1" || e.ID == "X2" || e.ID == "X3" {
			continue // extensions: large processor counts / subset of algorithms
		}
		var buf bytes.Buffer
		e.Run(s, &buf)
		out := buf.String()
		if len(out) == 0 {
			t.Fatalf("%s produced no output", e.ID)
		}
		for _, alg := range core.Algorithms() {
			if e.ID == "T1" {
				break // Table 1 is per-platform, not per-algorithm
			}
			if !strings.Contains(out, alg.String()) {
				t.Fatalf("%s output missing algorithm %v:\n%s", e.ID, alg, out)
			}
		}
	}
}

func TestSessionCSVDump(t *testing.T) {
	s := tinySession()
	s.Outcome(memsim.Challenge(), core.SPACE, 2, 1024)
	s.Seq(memsim.Challenge(), 1024)
	var buf bytes.Buffer
	if err := s.DumpCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "tree_share") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(buf.String(), "SEQUENTIAL") {
		t.Fatal("sequential row not tagged")
	}
}

func TestFindExperiments(t *testing.T) {
	for _, id := range []string{"T1", "T2", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "S15", "X1", "X2", "X3"} {
		if _, ok := Find(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if _, ok := Find("F99"); ok {
		t.Fatal("found bogus experiment")
	}
}

func TestSessionMemoizes(t *testing.T) {
	s := tinySession()
	a := s.Outcome(memsim.Challenge(), core.SPACE, 4, 1024)
	b := s.Outcome(memsim.Challenge(), core.SPACE, 4, 1024)
	if a.TotalNs() != b.TotalNs() {
		t.Fatal("memoized outcomes differ")
	}
	if len(s.Runner().Results()) != 1 {
		t.Fatalf("want exactly one cached result, got %d", len(s.Runner().Results()))
	}
}

func TestHeadlineShapesHold(t *testing.T) {
	// The paper's core quantitative claims, checked at small scale.
	s := NewSession(Options{Sizes: []int{8192}, MeasuredSteps: 1})
	n := 8192

	// HLRC: SPACE performs well, ORIG near/below 1, ordering holds.
	ty := memsim.TyphoonHLRC()
	spSpace := s.Speedup(ty, core.SPACE, 16, n)
	spPartree := s.Speedup(ty, core.PARTREE, 16, n)
	spLocal := s.Speedup(ty, core.LOCAL, 16, n)
	spOrig := s.Speedup(ty, core.ORIG, 16, n)
	if !(spSpace > spPartree && spPartree > spLocal && spLocal > spOrig) {
		t.Fatalf("HLRC ordering broken: SPACE=%.2f PARTREE=%.2f LOCAL=%.2f ORIG=%.2f",
			spSpace, spPartree, spLocal, spOrig)
	}
	if spOrig > 1.8 {
		t.Fatalf("ORIG on HLRC should be near slowdown, got %.2f", spOrig)
	}
	if spSpace < 4 {
		t.Fatalf("SPACE on HLRC should deliver a real speedup, got %.2f", spSpace)
	}

	// Challenge: everything speeds up decently.
	ch := memsim.Challenge()
	for _, alg := range core.Algorithms() {
		if sp := s.Speedup(ch, alg, 16, n); sp < 5 {
			t.Fatalf("%v on Challenge speedup %.2f too low", alg, sp)
		}
	}

	// Figure 15 ordering: locks fall ORIG >= LOCAL > UPDATE > PARTREE > SPACE=0,
	// and HLRC requires more locks than Origin for the same algorithm.
	or := memsim.Origin2000(16)
	locksOr := map[core.Algorithm]int64{}
	locksTy := map[core.Algorithm]int64{}
	for _, alg := range core.Algorithms() {
		locksOr[alg] = s.Outcome(or, alg, 16, n).TotalLocks()
		locksTy[alg] = s.Outcome(ty, alg, 16, n).TotalLocks()
	}
	if !(locksOr[core.ORIG] >= locksOr[core.LOCAL] &&
		locksOr[core.LOCAL] > locksOr[core.UPDATE] &&
		locksOr[core.UPDATE] > locksOr[core.PARTREE] &&
		locksOr[core.PARTREE] > 0 && locksOr[core.SPACE] == 0) {
		t.Fatalf("Origin lock ordering broken: %v", locksOr)
	}
	for _, alg := range []core.Algorithm{core.ORIG, core.LOCAL, core.UPDATE, core.PARTREE} {
		if locksTy[alg] <= locksOr[alg] {
			t.Fatalf("%v: HLRC locks %d not above Origin locks %d", alg, locksTy[alg], locksOr[alg])
		}
	}
}
