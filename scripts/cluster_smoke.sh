#!/bin/sh
# cluster_smoke.sh — smoke-test the sharded serving tier end to end with
# real processes: two partreed shard daemons (each owning half the
# Morton key space of a shared map) fronted by a partree-router. The
# script asserts:
#   - a fan-out /v1/build conserves bodies: every generated body is
#     built by exactly one shard and the merged result sums to n;
#   - a boundary-crossing /v1/move hands the body off through the
#     eviction/accept protocol, leaving it resident in exactly one
#     shard;
#   - a stale map version is refused with 409, never silently served;
#   - the router's partree_cluster_* rollup reflects the fleet
#     (shard_up per shard, summed builds/bodies/handoffs).
# Then SIGTERM must drain everything cleanly. Run via
# `make cluster-smoke` (part of `make check`).
set -e

GO=${GO:-go}
tmp=$(mktemp -d)
pids=
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/partreed" ./cmd/partreed
$GO build -o "$tmp/partree-router" ./cmd/partree-router

n=2000

# The shared map: two shards splitting [0, 2^48) at the halfway key.
# The shards run this addr-less form — a shard must not need to know
# where its peers live; only the router gets the addressed copy.
cat >"$tmp/map.json" <<'EOF'
{
  "version": 1,
  "domain": {
    "center": [0, 0, 0],
    "size": 4
  },
  "shards": [
    {"id": "s0", "lo": 0, "hi": 140737488355328},
    {"id": "s1", "lo": 140737488355328, "hi": 281474976710656}
  ]
}
EOF

# wait_url LOGFILE PID: poll a daemon's log for its serving URL.
wait_url() {
    wlog=$1
    wpid=$2
    wurl=
    i=0
    while [ $i -lt 100 ]; do
        wurl=$(sed -n 's/.*msg=serving .* url=\(http:[^ ]*\).*/\1/p' "$wlog" | head -1)
        [ -n "$wurl" ] && break
        if ! kill -0 "$wpid" 2>/dev/null; then
            echo "cluster-smoke: process exited before serving" >&2
            cat "$wlog" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$wurl" ]; then
        echo "cluster-smoke: no serving address in log" >&2
        cat "$wlog" >&2
        exit 1
    fi
    echo "$wurl"
}

"$tmp/partreed" -addr 127.0.0.1:0 -shard-map "$tmp/map.json" -shard s0 -v info 2>"$tmp/s0.log" &
s0pid=$!
pids="$pids $s0pid"
"$tmp/partreed" -addr 127.0.0.1:0 -shard-map "$tmp/map.json" -shard s1 -v info 2>"$tmp/s1.log" &
s1pid=$!
pids="$pids $s1pid"
s0url=$(wait_url "$tmp/s0.log" "$s0pid")
s1url=$(wait_url "$tmp/s1.log" "$s1pid")

# The router's addressed map: the same document plus each shard's
# resolved loopback address.
jq --arg a0 "${s0url#http://}" --arg a1 "${s1url#http://}" \
    '.shards[0].addr = $a0 | .shards[1].addr = $a1' \
    "$tmp/map.json" >"$tmp/map-addressed.json"

"$tmp/partree-router" -addr 127.0.0.1:0 -map "$tmp/map-addressed.json" -v info 2>"$tmp/router.log" &
rpid=$!
pids="$pids $rpid"
rurl=$(wait_url "$tmp/router.log" "$rpid")

# --- fan-out build: bodies conserved across the fleet -----------------
spec="{\"backend\":\"native\",\"algorithm\":\"PARTREE\",\"procs\":2,\"bodies\":$n,\"steps\":1,\"seed\":7,\"check\":true}"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$spec" \
    "$rurl/v1/build" >"$tmp/build.json"
err=$(jq -r '.error // empty' "$tmp/build.json")
if [ -n "$err" ]; then
    echo "cluster-smoke: fan-out build failed: $err" >&2
    exit 1
fi
built=$(jq -r .bodies_built "$tmp/build.json")
summed=$(jq -r '[.shards[].n] | add' "$tmp/build.json")
nshards=$(jq -r '.shards | length' "$tmp/build.json")
minn=$(jq -r '[.shards[].n] | min' "$tmp/build.json")
if [ "$built" != "$n" ] || [ "$summed" != "$n" ] || [ "$nshards" != 2 ]; then
    echo "cluster-smoke: conservation violated: built=$built shard-sum=$summed shards=$nshards want n=$n over 2 shards" >&2
    cat "$tmp/build.json" >&2
    exit 1
fi
if [ "$minn" -lt 1 ]; then
    echo "cluster-smoke: a shard built no bodies; the map split never engaged" >&2
    cat "$tmp/build.json" >&2
    exit 1
fi

# --- boundary-crossing handoff: body in exactly one shard -------------
# Find a body resident in s0, then move it deep into s1's half of the
# domain (the upper Morton range): the handoff protocol must evict it
# from s0 and deliver it to s1.
body=
i=0
while [ $i -lt 200 ]; do
    if [ "$(curl -fsS "$s0url/v1/shard/body?id=$i" | jq -r .present)" = true ]; then
        body=$i
        break
    fi
    i=$((i + 1))
done
if [ -z "$body" ]; then
    echo "cluster-smoke: no body resident in s0 among ids 0..199" >&2
    exit 1
fi
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"body\":$body,\"pos\":[0.9,0.9,1.5]}" \
    "$rurl/v1/move" >"$tmp/move.json"
status=$(jq -r .status "$tmp/move.json")
from=$(jq -r .from "$tmp/move.json")
to=$(jq -r .to "$tmp/move.json")
if [ "$status" != "moved" ] || [ "$from" != "s0" ] || [ "$to" != "s1" ]; then
    echo "cluster-smoke: move of body $body = status=$status from=$from to=$to, want moved s0->s1" >&2
    cat "$tmp/move.json" >&2
    exit 1
fi
in0=$(curl -fsS "$s0url/v1/shard/body?id=$body" | jq -r .present)
in1=$(curl -fsS "$s1url/v1/shard/body?id=$body" | jq -r .present)
if [ "$in0" != false ] || [ "$in1" != true ]; then
    echo "cluster-smoke: after handoff body $body present in s0=$in0 s1=$in1, want exactly s1" >&2
    exit 1
fi

# --- stale map version: refused with 409, never silently served -------
code=$(curl -s -o "$tmp/409.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' \
    -d "{\"map_version\":99,\"spec\":$spec}" "$s0url/v1/shard/build")
if [ "$code" != 409 ]; then
    echo "cluster-smoke: stale map version answered $code, want 409" >&2
    cat "$tmp/409.json" >&2
    exit 1
fi

# --- the rollup: the router's /metrics reflects the fleet -------------
metrics="$tmp/metrics.txt"
curl -fsS "$rurl/metrics" >"$metrics"
for series in \
    'partree_cluster_shard_up{shard="s0"} 1' \
    'partree_cluster_shard_up{shard="s1"} 1' \
    "partree_cluster_bodies_built_total $n" \
    'partree_cluster_builds_total 2' \
    'partree_cluster_handoffs_total 1' \
    'partree_cluster_accepts_total 1' \
    "partree_cluster_resident $n" \
    'partree_router_builds_total 1' \
    'partree_router_moves_total 1'; do
    grep -qF "$series" "$metrics" || {
        echo "cluster-smoke: /metrics is missing: $series" >&2
        grep 'partree_cluster\|partree_router' "$metrics" >&2
        exit 1
    }
done

# --- clean drain ------------------------------------------------------
for p in $rpid $s0pid $s1pid; do
    kill -TERM "$p"
done
for p in $rpid $s0pid $s1pid; do
    wait "$p" || {
        echo "cluster-smoke: a process did not drain cleanly on SIGTERM" >&2
        cat "$tmp/router.log" "$tmp/s0.log" "$tmp/s1.log" >&2
        exit 1
    }
done
pids=

echo "cluster-smoke: ok (router $rurl fronting s0=$s0url s1=$s1url; $n bodies conserved, body $body handed off s0->s1, stale version 409, rollup consistent)"
