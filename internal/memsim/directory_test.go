package memsim

import "testing"

func dirTest(p int) Platform {
	pl := Origin2000(p)
	return pl
}

func TestDirectoryDirtyThreeHop(t *testing.T) {
	// Proc 0 (node 0) dirties a line homed at node 1; proc 4 (node 2)
	// then reads it: that read must be classified as a dirty miss.
	pl := dirTest(8) // 4 nodes, 2 procs each
	e := NewEngine(pl, 8)
	e.Memory().SetHome(0, 4096, 1)
	res := e.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Write(64)
			p.Barrier("w")
		case 4:
			p.Barrier("w")
			p.Read(64)
		default:
			p.Barrier("w")
		}
	})
	if res.Protocol.DirtyMisses == 0 {
		t.Fatalf("no dirty (3-hop) miss recorded: %+v", res.Protocol)
	}
}

func TestDirectoryWriteInvalidatesAllSharers(t *testing.T) {
	e := NewEngine(dirTest(8), 8)
	res := e.Run(func(p *Proc) {
		p.Read(128) // everyone shares the line
		p.Barrier("r")
		if p.ID == 0 {
			p.Write(128) // must invalidate the other 7
		}
		p.Barrier("w")
	})
	if res.Protocol.Invalidations != 7 {
		t.Fatalf("invalidations = %d, want 7", res.Protocol.Invalidations)
	}
}

func TestDirectoryHomePlacementMatters(t *testing.T) {
	// The same access stream is cheaper when data is homed at the
	// accessor's node — the locality the LOCAL algorithm buys.
	run := func(home int) float64 {
		e := NewEngine(dirTest(4), 4)
		e.Memory().SetHome(1<<20, 1<<21, home)
		res := e.Run(func(p *Proc) {
			if p.ID == 0 {
				for i := 0; i < 64; i++ {
					p.Read(1<<20 + uint64(i)*4096) // distinct pages: all miss
				}
			}
		})
		return res.PerProc[0].MemNs
	}
	local := run(0)  // proc 0 lives on node 0
	remote := run(1) // homed on node 1
	if local >= remote {
		t.Fatalf("local-homed accesses %v not cheaper than remote %v", local, remote)
	}
}

func TestFGSCOccupancyQueues(t *testing.T) {
	// All processors missing to one home node at once must queue on its
	// software protocol processor.
	pl := TyphoonSC()
	e := NewEngine(pl, 8)
	e.Memory().SetHome(1<<20, 1<<21, 0)
	res := e.Run(func(p *Proc) {
		p.Read(1<<20 + uint64(p.ID)*4096)
	})
	if res.Protocol.ContentionNs < pl.OccupancyNs {
		t.Fatalf("contention %v too small for a saturated home", res.Protocol.ContentionNs)
	}
}

func TestOriginNodesArePaired(t *testing.T) {
	pl := Origin2000(8)
	if pl.NodeOf(0, 8) != pl.NodeOf(1, 8) {
		t.Fatal("procs 0 and 1 should share a node")
	}
	if pl.NodeOf(0, 8) == pl.NodeOf(2, 8) {
		t.Fatal("procs 0 and 2 should not share a node")
	}
}

func TestProtocolKindStrings(t *testing.T) {
	for _, k := range []ProtocolKind{SnoopyBus, Directory, HLRC, FineGrainSC} {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestAllPlatformsConstructible(t *testing.T) {
	for _, pl := range AllPlatforms(16) {
		e := NewEngine(pl, 4)
		res := e.Run(func(p *Proc) {
			p.Read(uint64(p.ID) * 64)
			p.Lock(1)
			p.Compute(10)
			p.Unlock(1)
			p.Barrier("end")
		})
		if res.Time <= 0 {
			t.Fatalf("%s: no time simulated", pl.Name)
		}
	}
}
