// Package partition implements the costzones partitioning scheme of Singh
// et al. for hierarchical N-body methods: the tree's total interaction
// cost is divided into P equal contiguous zones along the tree's in-order
// leaf sequence, and each processor receives the bodies whose accumulated
// cost falls inside its zone. Because nearby bodies sit close together in
// tree order, the zones are spatially coherent, giving both load balance
// and locality. The paper uses costzones for the force-calculation (and
// update) phases of every algorithm; the previous step's zones are also
// the tree-building partition for ORIG, LOCAL, UPDATE, and PARTREE.
//
// The costs the zones are cut along are *modeled*: each body carries the
// interaction count it incurred in the previous force pass (or 1 before
// any pass ran). Modeled costs drift from what the hardware actually
// spends when distributions are skewed or time-evolving; internal/adapt
// closes that gap by blending the measured per-processor phase time from
// internal/trace back into the per-body cost estimate and cutting the
// zones along the corrected costs instead.
package partition

import (
	"fmt"

	"partree/internal/octree"
	"partree/internal/vec"
)

// Costzones splits the bodies under t into p zones of roughly equal cost.
// The tree must have its moments (including Cost) computed. Every body
// appears in exactly one zone; zones follow the deterministic in-order
// traversal, so equal inputs give equal partitions.
//
// Degenerate costs still yield an exact cover: when the total subtree
// cost is zero (an all-zero Cost slice — e.g. the first step, before any
// measurement or force pass has run), every body is weighted 1 and the
// zones become an even split along the traversal; a negative per-body
// cost (a corrupt measurement) is clamped to zero rather than allowed to
// walk the accumulator backwards.
func Costzones(t *octree.Tree, d octree.BodyData, p int) [][]int32 {
	var total int64
	if !t.Root.IsNil() {
		total = rootCost(t)
	}
	return CostzonesTotal(t, d, p, total)
}

// CostzonesTotal is Costzones with the caller supplying the total cost of
// d over the bodies in t. Costzones reads the total from the tree's cost
// moments, which is only right when d carries the same costs the moments
// pass saw; callers partitioning on a substituted cost slice — like
// internal/adapt cutting zones along measurement-corrected costs without
// re-running the moments pass — must supply Σ d.CostOf themselves.
func CostzonesTotal(t *octree.Tree, d octree.BodyData, p int, total int64) [][]int32 {
	out := make([][]int32, p)
	if t.Root.IsNil() || p == 0 {
		return out
	}
	unit := total <= 0
	if unit {
		// Even-split fallback: weight every body 1 so the zones cover the
		// bodies evenly instead of leaving them unassigned (or piling them
		// all into zone 0).
		total = countBodies(t)
		if total == 0 {
			return out
		}
	}
	// Zone w covers accumulated cost [w*total/p, (w+1)*total/p).
	var acc int64
	var rec func(r octree.Ref)
	rec = func(r octree.Ref) {
		if r.IsLeaf() {
			l := t.Store.Leaf(r)
			for _, b := range l.Bodies {
				c := d.CostOf(b)
				if unit {
					c = 1
				} else if c < 0 {
					c = 0
				}
				w := int(acc * int64(p) / total)
				if w >= p {
					w = p - 1
				}
				out[w] = append(out[w], b)
				acc += c
			}
			return
		}
		c := t.Store.Cell(r)
		// Whole-subtree skip: if this subtree fits entirely inside the
		// current zone, it still has to be walked to collect bodies, so
		// no shortcut — costzones' benefit is placement, not speed.
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				rec(ch)
			}
		}
	}
	rec(t.Root)
	return out
}

func rootCost(t *octree.Tree) int64 {
	if t.Root.IsLeaf() {
		return t.Store.Leaf(t.Root).Cost
	}
	return t.Store.Cell(t.Root).Cost
}

// countBodies walks the tree and counts bodies in leaves. Used by the
// even-split fallback, where the body count stands in for total cost.
func countBodies(t *octree.Tree) int64 {
	var n int64
	var rec func(r octree.Ref)
	rec = func(r octree.Ref) {
		if r.IsLeaf() {
			n += int64(len(t.Store.Leaf(r).Bodies))
			return
		}
		c := t.Store.Cell(r)
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				rec(ch)
			}
		}
	}
	if !t.Root.IsNil() {
		rec(t.Root)
	}
	return n
}

// Validate checks that assign covers bodies 0..n-1 exactly once.
func Validate(assign [][]int32, n int) error {
	seen := make([]bool, n)
	for w, chunk := range assign {
		for _, b := range chunk {
			if b < 0 || int(b) >= n {
				return fmt.Errorf("partition: processor %d has out-of-range body %d", w, b)
			}
			if seen[b] {
				return fmt.Errorf("partition: body %d assigned twice", b)
			}
			seen[b] = true
		}
	}
	for b, s := range seen {
		if !s {
			return fmt.Errorf("partition: body %d unassigned", b)
		}
	}
	return nil
}

// Imbalance returns max/mean cost across processors (1.0 = perfect).
func Imbalance(assign [][]int32, d octree.BodyData) float64 {
	if len(assign) == 0 {
		return 1
	}
	var total, max int64
	for _, chunk := range assign {
		var c int64
		for _, b := range chunk {
			c += d.CostOf(b)
		}
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(assign))
	return float64(max) / mean
}
