package octree

import (
	"testing"

	"partree/internal/phys"
	"partree/internal/vec"
)

func testBodies(t *testing.T, n int, seed int64) *phys.Bodies {
	t.Helper()
	return phys.Generate(phys.ModelPlummer, n, seed)
}

func data(b *phys.Bodies) BodyData {
	return BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
}

func TestRefEncoding(t *testing.T) {
	cases := []struct {
		arena, idx int
		leaf       bool
	}{
		// Note leaf/arena63/indexMask is the reserved Nil encoding.
		{0, 0, false}, {0, 0, true}, {63, indexMask - 1, true}, {63, indexMask, false}, {17, 12345, false},
	}
	for _, tc := range cases {
		var r Ref
		if tc.leaf {
			r = LeafRef(tc.arena, tc.idx)
		} else {
			r = CellRef(tc.arena, tc.idx)
		}
		if r.IsNil() {
			t.Fatalf("ref %v unexpectedly nil", r)
		}
		if r.IsLeaf() != tc.leaf || r.Arena() != tc.arena || r.Index() != tc.idx {
			t.Fatalf("round trip failed: %v -> leaf=%v arena=%d idx=%d", r, r.IsLeaf(), r.Arena(), r.Index())
		}
	}
	if !Nil.IsNil() || Nil.IsLeaf() || Nil.IsCell() {
		t.Fatal("Nil misclassified")
	}
}

func TestBuildSerialInvariants(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 8, 9, 100, 5000} {
		b := testBodies(t, n, 42)
		tr := BuildSerial(b.Pos, 8)
		ComputeMomentsSerial(tr, data(b))
		if err := Check(tr, data(b), CheckOptions{Canonical: true, Moments: true}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBuildSerialLeafCaps(t *testing.T) {
	b := testBodies(t, 3000, 7)
	for _, k := range []int{1, 2, 4, 8, 16} {
		tr := BuildSerial(b.Pos, k)
		ComputeMomentsSerial(tr, data(b))
		if err := Check(tr, data(b), CheckOptions{Canonical: true, Moments: true}); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		st := CollectStats(tr)
		if st.Bodies != 3000 {
			t.Fatalf("k=%d: stats bodies = %d", k, st.Bodies)
		}
	}
}

func TestMomentsConserveMass(t *testing.T) {
	b := testBodies(t, 4000, 3)
	tr := BuildSerial(b.Pos, 8)
	ComputeMomentsSerial(tr, data(b))
	root := tr.Store.Cell(tr.Root)
	if !feq(root.Mass, b.TotalMass(), 1e-9) {
		t.Fatalf("root mass %g, want %g", root.Mass, b.TotalMass())
	}
	if int(root.NBody) != b.N() {
		t.Fatalf("root NBody %d, want %d", root.NBody, b.N())
	}
	if !veq(root.COM, b.CenterOfMass(), 1e-9) {
		t.Fatalf("root COM %v, want %v", root.COM, b.CenterOfMass())
	}
	var wantCost int64
	for _, c := range b.Cost {
		wantCost += c
	}
	if root.Cost != wantCost {
		t.Fatalf("root cost %d, want %d", root.Cost, wantCost)
	}
}

func TestParallelMomentsMatchSerial(t *testing.T) {
	b := testBodies(t, 6000, 9)
	tr := BuildSerial(b.Pos, 8)
	ComputeMomentsSerial(tr, data(b))
	serialMass := tr.Store.Cell(tr.Root).Mass
	serialCOM := tr.Store.Cell(tr.Root).COM

	tr2 := BuildSerial(b.Pos, 8)
	for _, w := range []int{1, 2, 4, 8} {
		ComputeMomentsParallel(tr2, data(b), w)
		if err := Check(tr2, data(b), CheckOptions{Moments: true, Tol: 1e-9}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		c := tr2.Store.Cell(tr2.Root)
		if !feq(c.Mass, serialMass, 1e-12) || !veq(c.COM, serialCOM, 1e-9) {
			t.Fatalf("workers=%d: parallel moments diverge: %g/%v vs %g/%v",
				w, c.Mass, c.COM, serialMass, serialCOM)
		}
	}
}

func TestCoincidentBodiesDepthCap(t *testing.T) {
	// 20 coincident bodies cannot be separated by subdivision; the depth
	// cap must stop recursion and produce one overflow leaf.
	n := 20
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{X: 0.25, Y: 0.25, Z: 0.25}
		mass[i] = 1
	}
	// A couple of distinct bodies so the tree is not a single stack.
	pos = append(pos, vec.V3{X: 0.9, Y: 0.9, Z: 0.9}, vec.V3{X: 0.1, Y: 0.9, Z: 0.1})
	mass = append(mass, 1, 1)

	tr := BuildSerial(pos, 4)
	d := BodyData{Pos: pos, Mass: mass}
	ComputeMomentsSerial(tr, d)
	if err := Check(tr, d, CheckOptions{Moments: true}); err != nil {
		t.Fatal(err)
	}
	st := CollectStats(tr)
	if st.MaxDepth > tr.Store.MaxDepth {
		t.Fatalf("depth %d exceeded cap %d", st.MaxDepth, tr.Store.MaxDepth)
	}
	if st.MaxLeafLen < n {
		t.Fatalf("expected an overflow leaf with ≥%d bodies, max is %d", n, st.MaxLeafLen)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	b := testBodies(t, 500, 11)
	t1 := BuildSerial(b.Pos, 8)
	t2 := BuildSerial(b.Pos, 8)
	if err := Equal(t1, t2); err != nil {
		t.Fatalf("identical builds compare unequal: %v", err)
	}
	t3 := BuildSerial(b.Pos, 4)
	if err := Equal(t1, t3); err == nil {
		t.Fatal("trees with different leaf caps compare equal")
	}
	b2 := testBodies(t, 500, 12)
	t4 := BuildSerial(b2.Pos, 8)
	if err := Equal(t1, t4); err == nil {
		t.Fatal("trees over different bodies compare equal")
	}
}

func TestWalkOrderDeterministic(t *testing.T) {
	b := testBodies(t, 1000, 5)
	tr := BuildSerial(b.Pos, 8)
	var a, c []Ref
	Walk(tr, func(r Ref, _ int) bool { a = append(a, r); return true })
	Walk(tr, func(r Ref, _ int) bool { c = append(c, r); return true })
	if len(a) != len(c) {
		t.Fatal("walk lengths differ")
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("walk order differs at %d", i)
		}
	}
	cells, leaves := CountNodes(tr)
	if cells+leaves != len(a) {
		t.Fatalf("CountNodes %d+%d != walk length %d", cells, leaves, len(a))
	}
}

func TestWalkPrune(t *testing.T) {
	b := testBodies(t, 1000, 5)
	tr := BuildSerial(b.Pos, 8)
	count := 0
	Walk(tr, func(r Ref, depth int) bool {
		count++
		return depth < 1 // visit root and its children only
	})
	if count > 9 {
		t.Fatalf("prune failed: visited %d nodes", count)
	}
}

func TestStoreReset(t *testing.T) {
	b := testBodies(t, 2000, 2)
	s := NewStore(1, 8)
	cube := vec.BoundingCube(len(b.Pos), func(i int) vec.V3 { return b.Pos[i] }, 1e-4)
	t1 := BuildSerialInto(s, cube, b.Pos)
	c1, l1 := CountNodes(t1)
	s.Reset()
	t2 := BuildSerialInto(s, cube, b.Pos)
	c2, l2 := CountNodes(t2)
	if c1 != c2 || l1 != l2 {
		t.Fatalf("rebuild after reset differs: %d/%d vs %d/%d", c1, l1, c2, l2)
	}
	ComputeMomentsSerial(t2, data(b))
	if err := Check(t2, data(b), CheckOptions{Canonical: true, Moments: true}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedArenaConcurrentAlloc(t *testing.T) {
	// The ORIG algorithm allocates all nodes from one shared arena; the
	// allocation cursor must hand out distinct slots under contention.
	s := NewStore(1, 8)
	const perG, nG = 2000, 8
	done := make(chan []Ref, nG)
	for g := 0; g < nG; g++ {
		go func(g int) {
			refs := make([]Ref, 0, perG)
			for i := 0; i < perG; i++ {
				r, _ := s.AllocCell(0, vec.Cube{Size: 1}, Nil, g)
				refs = append(refs, r)
			}
			done <- refs
		}(g)
	}
	seen := make(map[Ref]bool)
	for g := 0; g < nG; g++ {
		for _, r := range <-done {
			if seen[r] {
				t.Fatalf("duplicate ref %v", r)
			}
			seen[r] = true
		}
	}
	if s.CellsIn(0) != perG*nG {
		t.Fatalf("allocated %d, want %d", s.CellsIn(0), perG*nG)
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	b := testBodies(t, 300, 4)
	d := data(b)

	tr := BuildSerial(b.Pos, 8)
	ComputeMomentsSerial(tr, d)

	// Corrupt a leaf's body list: duplicate a body.
	leaves := LiveLeaves(tr)
	l := tr.Store.Leaf(leaves[0])
	saved := append([]int32(nil), l.Bodies...)
	l.Bodies = append(l.Bodies, l.Bodies[0])
	if err := Check(tr, d, CheckOptions{}); err == nil {
		t.Fatal("Check accepted duplicated body")
	}
	l.Bodies = saved

	// Corrupt moments.
	tr.Store.Cell(tr.Root).Mass *= 2
	if err := Check(tr, d, CheckOptions{Moments: true}); err == nil {
		t.Fatal("Check accepted corrupted mass")
	}
	ComputeMomentsSerial(tr, d)

	// Corrupt a parent link.
	l = tr.Store.Leaf(leaves[1])
	savedParent := l.Parent
	l.Parent = Nil
	if err := Check(tr, d, CheckOptions{}); err == nil {
		t.Fatal("Check accepted broken parent link")
	}
	l.Parent = savedParent

	if err := Check(tr, d, CheckOptions{Canonical: true, Moments: true}); err != nil {
		t.Fatalf("restored tree fails: %v", err)
	}
}

func TestStatsSane(t *testing.T) {
	b := testBodies(t, 4096, 6)
	tr := BuildSerial(b.Pos, 8)
	st := CollectStats(tr)
	if st.Bodies != 4096 {
		t.Fatalf("bodies %d", st.Bodies)
	}
	if st.AvgOcc <= 0 || st.AvgOcc > 8 {
		t.Fatalf("avg occupancy %f out of (0,8]", st.AvgOcc)
	}
	if st.MaxDepth < 3 {
		t.Fatalf("suspiciously shallow tree: depth %d", st.MaxDepth)
	}
	if st.Leaves == 0 || st.Cells == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
}
