package adapt

import (
	"testing"

	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/phys"
	"partree/internal/trace"
)

// trueCosts models what the hardware "actually" spends per body on the
// skewed Plummer distribution: cost falls off with radius, so the dense
// core is orders of magnitude more expensive than the outskirts — the
// regime where modeled-uniform costs mispartition worst. Deterministic
// in the body positions, hence in the generator seed.
func trueCosts(b *phys.Bodies) []int64 {
	out := make([]int64, b.N())
	for i := range out {
		r2 := b.Pos[i].Dot(b.Pos[i])
		out[i] = 1 + int64(4096/(1+16*r2))
	}
	return out
}

// zoneSkew is max/mean of Σ true cost per zone — the phase-time skew a
// build with those per-body costs would exhibit.
func zoneSkew(assign [][]int32, truth []int64) float64 {
	var total, max int64
	for _, zone := range assign {
		var zc int64
		for _, b := range zone {
			zc += truth[b]
		}
		total += zc
		if zc > max {
			max = zc
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) / (float64(total) / float64(len(assign)))
}

// measuredSummary synthesizes the trace a build under assign would
// produce if each body cost exactly its true cost: one insert-phase
// nanosecond per cost unit. Deterministic, so the gate cannot flake on
// scheduler noise the way wall-clock measurements would.
func measuredSummary(assign [][]int32, truth []int64) *trace.Summary {
	s := &trace.Summary{PerProc: make([]trace.ProcSummary, len(assign))}
	for w, zone := range assign {
		var ns int64
		for _, b := range zone {
			ns += truth[b]
		}
		s.PerProc[w].PhaseNs[trace.PhaseInsert] = ns
	}
	return s
}

// densityCosts models per-body cost on multi-center distributions:
// proportional to local crowding (neighbors within a fixed radius), the
// regime hierarchical clustering creates — many separated dense knots
// rather than one central cusp, so a zone that lands on a sub-halo pays
// far more than its body count suggests. O(n²), deterministic in seed.
func densityCosts(b *phys.Bodies, radius float64) []int64 {
	out := make([]int64, b.N())
	r2 := radius * radius
	for i := range out {
		n := int64(0)
		for j := 0; j < b.N(); j++ {
			if b.Pos[i].Dist2(b.Pos[j]) < r2 {
				n++
			}
		}
		out[i] = n // counts itself, so ≥ 1
	}
	return out
}

// TestAdaptiveBeatsStaticOnHierarchical extends the gate to the
// hierarchical clustering scenario (nested Plummer sub-halos): static
// costzones splits by modeled-uniform counts and lands zones across
// sub-halo boundaries; the measured-cost loop must cut the max/mean
// skew strictly below it at p ∈ {4, 8} — deterministically, since the
// "measured" times are synthesized from the density cost model.
func TestAdaptiveBeatsStaticOnHierarchical(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		p      int
		seed   int64
		rounds int
	}{
		{"p4", 4000, 4, 7, 12},
		{"p8", 4000, 8, 7, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := phys.Hierarchical(tc.n, tc.seed, phys.HierarchicalParams{})
			truth := densityCosts(b, 0.2)
			tr := octree.BuildSerial(b.Pos, 8)
			d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
			octree.ComputeMomentsSerial(tr, d)

			static := partition.Costzones(tr, d, tc.p)
			if err := partition.Validate(static, tc.n); err != nil {
				t.Fatal(err)
			}
			staticSkew := zoneSkew(static, truth)
			if staticSkew < 1.05 {
				t.Fatalf("static skew %.4f is already near-perfect; the scenario is not stressing the partition", staticSkew)
			}

			ctrl := NewController(core.Config{P: tc.p, LeafCap: 8},
				Options{Alpha: 0.5, DisableTuner: true})
			assign := static
			for r := 0; r < tc.rounds; r++ {
				ctrl.Observe(assign, measuredSummary(assign, truth))
				assign = ctrl.Partition(tr, d, tc.p)
				if err := partition.Validate(assign, tc.n); err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
			}
			adaptiveSkew := zoneSkew(assign, truth)

			if adaptiveSkew >= staticSkew {
				t.Fatalf("adaptive skew %.4f not strictly below static %.4f at p=%d", adaptiveSkew, staticSkew, tc.p)
			}
			if adaptiveSkew > 1.30 {
				t.Fatalf("adaptive skew %.4f did not converge near 1 (static was %.4f)", adaptiveSkew, staticSkew)
			}
		})
	}
}

// TestAdaptiveReducesSkew is the gate from the issue: on the skewed
// Plummer distribution, the measured-cost feedback loop must cut the
// max/mean phase-time skew strictly below what static costzones (cutting
// along the uniform modeled costs) leaves. Table-driven over
// deterministic seeds; the "measured" times are synthesized from the
// deterministic true-cost model, so the comparison is exact.
func TestAdaptiveReducesSkew(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		p      int
		seed   int64
		rounds int
	}{
		{"p4", 6000, 4, 29, 12},
		{"p8", 6000, 8, 31, 12},
		{"p16-small", 3000, 16, 37, 14},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := phys.Generate(phys.ModelPlummer, tc.n, tc.seed)
			truth := trueCosts(b)
			tr := octree.BuildSerial(b.Pos, 8)
			d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
			octree.ComputeMomentsSerial(tr, d)

			// Static: costzones over the modeled costs (uniform 1s from
			// the generator) — an even-count split, blind to the truth.
			static := partition.Costzones(tr, d, tc.p)
			if err := partition.Validate(static, tc.n); err != nil {
				t.Fatal(err)
			}
			staticSkew := zoneSkew(static, truth)

			// Adaptive: the same start, then the feedback loop — each
			// round observes the "measured" times its current partition
			// would produce and recuts.
			ctrl := NewController(core.Config{P: tc.p, LeafCap: 8},
				Options{Alpha: 0.5, DisableTuner: true})
			assign := static
			for r := 0; r < tc.rounds; r++ {
				ctrl.Observe(assign, measuredSummary(assign, truth))
				assign = ctrl.Partition(tr, d, tc.p)
				if err := partition.Validate(assign, tc.n); err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
			}
			adaptiveSkew := zoneSkew(assign, truth)

			if adaptiveSkew >= staticSkew {
				t.Fatalf("adaptive skew %.4f not strictly below static %.4f", adaptiveSkew, staticSkew)
			}
			// The loop should do much better than "strictly": with exact
			// feedback it must land within costzones' one-straddler bound
			// territory. 30% over perfect is a loose ceiling that still
			// fails if the attribution math regresses.
			if adaptiveSkew > 1.30 {
				t.Fatalf("adaptive skew %.4f did not converge near 1 (static was %.4f)", adaptiveSkew, staticSkew)
			}
		})
	}
}
