package core

import (
	"testing"

	"partree/internal/force"
	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/vec"
)

// TestHotSpotContention hammers one tiny region from many goroutines with
// k=1 (every insertion subdivides), the worst case for the locking
// discipline: racing subdivisions, retries, and slot revalidation. Run
// under -race this exercises every transition of the slot protocol.
func TestHotSpotContention(t *testing.T) {
	n, p := 4000, 8
	b := phys.NewBodies(n)
	// All bodies in a small ball, interleaved across processors so every
	// goroutine fights for the same subtree.
	src := phys.Generate(phys.ModelPlummer, n, 77)
	for i := range b.Pos {
		b.Pos[i] = src.Pos[i].Scale(0.01)
		b.Mass[i] = 1
		b.Cost[i] = 1
	}
	// Round-robin assignment maximizes overlap.
	assign := make([][]int32, p)
	for i := 0; i < n; i++ {
		assign[i%p] = append(assign[i%p], int32(i))
	}
	for _, alg := range []Algorithm{ORIG, LOCAL, PARTREE} {
		bld := New(alg, Config{P: p, LeafCap: 1})
		tr, m := bld.Build(&Input{Bodies: b, Assign: assign})
		d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
		if err := octree.Check(tr, d, octree.CheckOptions{Canonical: true, Moments: true}); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if alg != PARTREE && m.TotalRetries() == 0 {
			t.Logf("%v: no retries observed (contention did not materialize this run)", alg)
		}
	}
}

// TestUpdateTreeDegradation quantifies the known cost of UPDATE: since it
// never collapses cells, a drifting system accretes structure — more
// nodes to store, rescale, and traverse than a freshly rebuilt tree.
// (Interaction counts can even drop slightly: a non-minimal cell is
// approximated as one interaction where a canonical leaf costs up to k —
// the degradation is structural, not in the θ work.)
func TestUpdateTreeDegradation(t *testing.T) {
	n, p := 3000, 4
	b := phys.Generate(phys.ModelTwoClusters, n, 5)
	upd := New(UPDATE, Config{P: p, LeafCap: 8})
	params := force.DefaultParams()

	for step := 0; step < 10; step++ {
		in := &Input{Bodies: b, Assign: EvenAssign(n, p), Step: step}
		tr, _ := upd.Build(in)
		if step == 9 {
			d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
			fresh := octree.BuildSerial(b.Pos, 8)
			octree.ComputeMomentsSerial(fresh, d)
			us, fs := octree.CollectStats(tr), octree.CollectStats(fresh)
			updNodes := us.Cells + us.Leaves
			freshNodes := fs.Cells + fs.Leaves
			if updNodes <= freshNodes {
				t.Fatalf("UPDATE tree (%d nodes) not larger than fresh tree (%d)", updNodes, freshNodes)
			}
			if updNodes > freshNodes*4 {
				t.Fatalf("UPDATE tree ballooned: %d vs %d nodes", updNodes, freshNodes)
			}
			var updVisits, freshVisits int64
			for i := 0; i < n; i += 17 {
				updVisits += force.Accel(tr, d, int32(i), params).NodesVisited
				freshVisits += force.Accel(fresh, d, int32(i), params).NodesVisited
			}
			t.Logf("after 10 drifting steps: %d vs %d nodes (+%.0f%%), %d vs %d traversal visits",
				updNodes, freshNodes, 100*float64(updNodes-freshNodes)/float64(freshNodes),
				updVisits, freshVisits)
		}
		b.Drift(0, n, 0.08)
	}
}

// TestBuildersWithSpatialAssignment runs every builder from a costzones-
// like spatial partition (the steady-state input) and cross-checks
// PARTREE's promised lock reduction.
func TestBuildersWithSpatialAssignment(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 6000, 9)
	assign := SpatialAssign(b, 8)
	var partreeLocks, localLocks int64
	for _, alg := range Algorithms() {
		bld := New(alg, Config{P: 8, LeafCap: 8})
		tr, m := bld.Build(&Input{Bodies: b, Assign: assign})
		d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
		if err := octree.Check(tr, d, octree.CheckOptions{Canonical: true, Moments: true}); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		switch alg {
		case PARTREE:
			partreeLocks = m.TotalLocks()
		case LOCAL:
			localLocks = m.TotalLocks()
		}
	}
	// With spatial locality the merge unit is a subtree: locks should be
	// a tiny fraction of the per-body algorithms'.
	if partreeLocks*20 > localLocks {
		t.Fatalf("PARTREE locks %d not ≪ LOCAL %d under spatial partitioning", partreeLocks, localLocks)
	}
}

// TestSpaceEmptyProcessors exercises SPACE when some processors own no
// subspaces (more processors than subspaces).
func TestSpaceEmptyProcessors(t *testing.T) {
	b := phys.Generate(phys.ModelUniform, 64, 3)
	bld := New(SPACE, Config{P: 16, LeafCap: 8, SpaceThreshold: 64})
	tr, m := bld.Build(&Input{Bodies: b, Assign: EvenAssign(64, 16)})
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	if err := octree.Check(tr, d, octree.CheckOptions{Canonical: true, Moments: true}); err != nil {
		t.Fatal(err)
	}
	if m.TotalLocks() != 0 {
		t.Fatal("SPACE locked")
	}
}

// TestRootCubeConsistentAcrossBuilders: all builders must size the root
// identically or trees would not be comparable.
func TestRootCubeConsistentAcrossBuilders(t *testing.T) {
	b := phys.Generate(phys.ModelTwoClusters, 1000, 13)
	var want vec.Cube
	for i, alg := range Algorithms() {
		bld := New(alg, Config{P: 4, LeafCap: 8})
		tr, _ := bld.Build(&Input{Bodies: b, Assign: EvenAssign(1000, 4)})
		got := tr.RootCube()
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("%v root cube %v differs from %v", alg, got, want)
		}
	}
}
