package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOctantOfCorners(t *testing.T) {
	c := Cube{Center: V3{0, 0, 0}, Size: 2}
	cases := []struct {
		p    V3
		want Octant
	}{
		{V3{-0.5, -0.5, -0.5}, 0},
		{V3{0.5, -0.5, -0.5}, 1},
		{V3{-0.5, 0.5, -0.5}, 2},
		{V3{0.5, 0.5, -0.5}, 3},
		{V3{-0.5, -0.5, 0.5}, 4},
		{V3{0.5, -0.5, 0.5}, 5},
		{V3{-0.5, 0.5, 0.5}, 6},
		{V3{0.5, 0.5, 0.5}, 7},
	}
	for _, tc := range cases {
		if got := c.OctantOf(tc.p); got != tc.want {
			t.Errorf("OctantOf(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestOctantBoundaryGoesPositive(t *testing.T) {
	c := Cube{Center: V3{0, 0, 0}, Size: 2}
	if got := c.OctantOf(V3{0, 0, 0}); got != 7 {
		t.Fatalf("center point octant = %d, want 7 (all positive)", got)
	}
}

// Property: for points inside the cube, the child selected by OctantOf
// contains the point, the child's volume is 1/8 of the parent, and the
// eight children partition the parent (each point is in exactly one child).
func TestChildPartitionProperty(t *testing.T) {
	f := func(cx, cy, cz, fx, fy, fz float64, sizeSeed float64) bool {
		size := 1 + mod1(sizeSeed)*10
		ctr := V3{mod1(cx)*200 - 100, mod1(cy)*200 - 100, mod1(cz)*200 - 100}
		c := Cube{Center: ctr, Size: size}
		// Map f* into [0,1) then into the cube interior.
		p := V3{
			c.Center.X + (mod1(fx)-0.5)*size*0.999,
			c.Center.Y + (mod1(fy)-0.5)*size*0.999,
			c.Center.Z + (mod1(fz)-0.5)*size*0.999,
		}
		if !c.Contains(p) {
			return true // point landed on an excluded face due to rounding
		}
		inCount := 0
		for o := Octant(0); o < NOctants; o++ {
			if c.Child(o).Contains(p) {
				inCount++
			}
		}
		return inCount == 1 && c.Child(c.OctantOf(p)).Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func mod1(x float64) float64 {
	if x != x || math.IsInf(x, 0) {
		return 0.5
	}
	x = math.Mod(x, 1)
	if x < 0 {
		x++
	}
	return x
}

func TestChildSizeHalves(t *testing.T) {
	c := Cube{Center: V3{1, 2, 3}, Size: 8}
	for o := Octant(0); o < NOctants; o++ {
		ch := c.Child(o)
		if ch.Size != 4 {
			t.Fatalf("child size = %v, want 4", ch.Size)
		}
		if !c.Contains(ch.Center) {
			t.Fatalf("child center %v escapes parent %v", ch.Center, c)
		}
	}
}

func TestMinMaxCorners(t *testing.T) {
	c := Cube{Center: V3{1, 1, 1}, Size: 2}
	if c.Min() != (V3{0, 0, 0}) || c.Max() != (V3{2, 2, 2}) {
		t.Fatalf("corners wrong: %v %v", c.Min(), c.Max())
	}
}

func TestBoundingCubeContainsAll(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	pts := make([]V3, 1000)
	for i := range pts {
		pts[i] = V3{r.NormFloat64() * 10, r.NormFloat64() * 2, r.NormFloat64() * 30}
	}
	c := BoundingCube(len(pts), func(i int) V3 { return pts[i] }, 1e-3)
	for i, p := range pts {
		if !c.Contains(p) {
			t.Fatalf("point %d %v not in bounding cube %v", i, p, c)
		}
	}
}

func TestBoundingCubeDegenerate(t *testing.T) {
	// Zero points.
	c := BoundingCube(0, nil, 0)
	if c.Size <= 0 {
		t.Fatal("empty bounding cube has nonpositive size")
	}
	// All coincident points.
	p := V3{3, 3, 3}
	c = BoundingCube(5, func(int) V3 { return p }, 1e-3)
	if c.Size <= 0 || !c.Contains(p) {
		t.Fatalf("coincident bounding cube %v does not contain %v", c, p)
	}
}
