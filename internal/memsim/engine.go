// Package memsim is a deterministic discrete-event simulator of a shared
// address space multiprocessor. It stands in for the paper's four 1998
// machines (SGI Challenge, SGI Origin 2000, Intel Paragon, Wisconsin
// Typhoon-0), which we obviously cannot run on: simulated processors
// execute real Go code, but every shared memory access, lock, and barrier
// goes through the engine, which charges latency according to a pluggable
// coherence protocol model and serializes execution in virtual-time order.
//
// The engine is a conservative process-oriented DES in the style Effective
// Go suggests: one goroutine per simulated processor, communicating with
// the scheduler over channels. The scheduler only ever executes the
// operation of the minimum-virtual-time runnable processor (ties broken by
// processor id), so results are bit-for-bit reproducible. The scheduler
// also holds at most one outstanding reply at any real moment — after
// handing the execution token to a processor it waits for that processor's
// next request before doing anything else — so at most one simulated
// processor executes program code at a time. Program code may therefore
// mutate shared native data structures without real locks; the simulated
// locks and the virtual-time order are the only synchronization that
// matters.
package memsim

import "fmt"

// opKind enumerates simulated operations.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opReadBatch
	opWriteBatch
	opCompute
	opLock
	opUnlock
	opBarrier
	opDone
)

// request is one processor's pending operation.
type request struct {
	proc  *Proc
	kind  opKind
	addr  uint64
	addrs []uint64
	dur   float64
	lock  int
	label string
}

// Proc is a simulated processor handle, used by exactly one goroutine.
type Proc struct {
	ID  int
	eng *Engine
	now float64 // virtual ns
	rep chan float64

	// Stats, owned by the engine while the proc is blocked; reads by the
	// proc goroutine happen only after Run returns.
	stats ProcStats
}

// ProcStats accumulates one simulated processor's behaviour.
type ProcStats struct {
	ComputeNs  float64
	MemNs      float64 // latency of reads/writes
	LockNs     float64 // waiting for + acquiring locks
	BarrierNs  float64 // waiting at barriers
	Reads      int64
	Writes     int64
	Locks      int64 // lock acquisitions
	LockWaitNs float64
	UnlockNs   float64
	FinishedAt float64
}

// Now returns the processor's current virtual time (ns).
func (p *Proc) Now() float64 { return p.now }

// Read simulates a shared read of addr.
func (p *Proc) Read(addr uint64) { p.do(request{kind: opRead, addr: addr}) }

// Write simulates a shared write of addr.
func (p *Proc) Write(addr uint64) { p.do(request{kind: opWrite, addr: addr}) }

// ReadBatch simulates a sequence of reads in one scheduling step. The
// batch is atomic with respect to other processors, which is acceptable
// for conflict-free streams (e.g. the force phase's traversal reads) and
// cuts simulation overhead by the batch length.
func (p *Proc) ReadBatch(addrs []uint64) {
	if len(addrs) == 0 {
		return
	}
	p.do(request{kind: opReadBatch, addrs: addrs})
}

// WriteBatch simulates a sequence of writes in one scheduling step.
func (p *Proc) WriteBatch(addrs []uint64) {
	if len(addrs) == 0 {
		return
	}
	p.do(request{kind: opWriteBatch, addrs: addrs})
}

// Compute advances the processor's clock by ns of private work.
func (p *Proc) Compute(ns float64) {
	if ns <= 0 {
		return
	}
	p.do(request{kind: opCompute, dur: ns})
}

// Lock acquires the simulated lock id, blocking in virtual time.
func (p *Proc) Lock(id int) { p.do(request{kind: opLock, lock: id}) }

// Unlock releases the simulated lock id.
func (p *Proc) Unlock(id int) { p.do(request{kind: opUnlock, lock: id}) }

// Barrier joins the named global barrier; all live processors must reach
// it. The completion time is recorded in the result under the label.
func (p *Proc) Barrier(label string) { p.do(request{kind: opBarrier, label: label}) }

func (p *Proc) do(r request) {
	r.proc = p
	p.eng.reqs <- r
	p.now = <-p.rep
}

// lockState tracks one simulated lock.
type lockState struct {
	held         bool
	holder       int
	queue        []*Proc   // FIFO in virtual-time order of arrival
	acquireTimes []float64 // arrival time of queued procs (parallel to queue)
}

// BarrierRecord is one completed global barrier.
type BarrierRecord struct {
	Label   string
	Release float64   // virtual time all procs resumed
	Waits   []float64 // per-processor wait (indexed by processor id)
}

// Result is the outcome of a simulation run.
type Result struct {
	// Time is the virtual time at which the last processor finished.
	Time float64
	// PerProc holds each simulated processor's stats.
	PerProc []ProcStats
	// Barriers lists completed barriers in order.
	Barriers []BarrierRecord
	// Protocol exposes the coherence model's counters.
	Protocol ProtocolStats
}

// PhaseTime returns the duration between the barriers labelled from and
// to (from = "" means virtual time zero).
func (r *Result) PhaseTime(from, to string) (float64, error) {
	t0 := 0.0
	if from != "" {
		b, err := r.barrier(from)
		if err != nil {
			return 0, err
		}
		t0 = b
	}
	t1, err := r.barrier(to)
	if err != nil {
		return 0, err
	}
	return t1 - t0, nil
}

func (r *Result) barrier(label string) (float64, error) {
	for _, b := range r.Barriers {
		if b.Label == label {
			return b.Release, nil
		}
	}
	return 0, fmt.Errorf("memsim: no barrier labelled %q", label)
}

// TotalLockWait sums lock wait time across processors.
func (r *Result) TotalLockWait() float64 {
	var t float64
	for i := range r.PerProc {
		t += r.PerProc[i].LockWaitNs
	}
	return t
}

// TotalBarrierWait sums barrier wait time across processors.
func (r *Result) TotalBarrierWait() float64 {
	var t float64
	for i := range r.PerProc {
		t += r.PerProc[i].BarrierNs
	}
	return t
}

// Engine drives one simulation.
type Engine struct {
	P             int
	mem           Protocol
	plat          Platform
	reqs          chan request
	procs         []*Proc
	pending       []*request
	alive         int
	locks         map[int]*lockState
	barrier       []*Proc
	barrierArrive []float64
	barrierLabel  string
	records       []BarrierRecord
}

// NewEngine creates an engine for p processors over the given platform.
func NewEngine(plat Platform, p int) *Engine {
	return &Engine{
		P:     p,
		plat:  plat,
		mem:   newProtocol(plat, p),
		reqs:  make(chan request, p),
		locks: make(map[int]*lockState),
	}
}

// Memory exposes the protocol model (for region home placement).
func (e *Engine) Memory() Protocol { return e.mem }

// Run executes prog on each of the P simulated processors and returns the
// result. prog receives the processor handle; it must not share mutable
// state with other invocations except through the serialization the
// engine provides (at most one processor executes between operations).
func (e *Engine) Run(prog func(p *Proc)) Result {
	e.procs = make([]*Proc, e.P)
	e.pending = make([]*request, e.P)
	for i := 0; i < e.P; i++ {
		e.procs[i] = &Proc{ID: i, eng: e, rep: make(chan float64, 1)}
	}
	// Start the processor goroutines one at a time, collecting each one's
	// first request before launching the next, so that even the code
	// before the first simulated operation runs under mutual exclusion.
	for i := 0; i < e.P; i++ {
		go func(p *Proc) {
			prog(p)
			p.do(request{kind: opDone})
		}(e.procs[i])
		e.await(e.procs[i])
	}

	e.alive = e.P
	for e.alive > 0 {
		// Pick the minimum-virtual-time pending request (tie: lowest id).
		var pick *request
		for _, r := range e.pending {
			if r == nil {
				continue
			}
			if pick == nil || r.proc.now < pick.proc.now ||
				(r.proc.now == pick.proc.now && r.proc.ID < pick.proc.ID) {
				pick = r
			}
		}
		if pick == nil {
			panic("memsim: deadlock: every live processor is blocked on a lock or barrier")
		}
		e.pending[pick.proc.ID] = nil
		switch pick.kind {
		case opDone:
			pick.proc.stats.FinishedAt = pick.proc.now
			e.alive--
			pick.proc.rep <- pick.proc.now // goroutine exits; nothing to await
			e.checkBarrier()
		case opBarrier:
			if e.barrierLabel == "" {
				e.barrierLabel = pick.label
			} else if e.barrierLabel != pick.label {
				panic(fmt.Sprintf("memsim: barrier label mismatch: %q vs %q", e.barrierLabel, pick.label))
			}
			e.barrier = append(e.barrier, pick.proc)
			e.barrierArrive = append(e.barrierArrive, pick.proc.now)
			e.checkBarrier()
		case opLock:
			e.execLock(pick)
		default:
			e.execSimple(pick)
		}
	}

	res := Result{
		PerProc:  make([]ProcStats, e.P),
		Barriers: e.records,
		Protocol: e.mem.Stats(),
	}
	for i, p := range e.procs {
		res.PerProc[i] = p.stats
		if p.stats.FinishedAt > res.Time {
			res.Time = p.stats.FinishedAt
		}
	}
	return res
}

// replyAwait hands the execution token to proc p (completing its op at
// virtual time t) and blocks until p's next request is pending, preserving
// the at-most-one-executing invariant.
func (e *Engine) replyAwait(p *Proc, t float64) {
	p.rep <- t
	e.await(p)
}

// await receives the next request, which must come from p (it is the only
// proc executing), and stores it as pending.
func (e *Engine) await(p *Proc) {
	r := <-e.reqs
	if r.proc != p {
		panic("memsim: request from a processor that should not be running")
	}
	r2 := r
	e.pending[p.ID] = &r2
}

// execSimple handles operations that complete immediately in virtual time.
func (e *Engine) execSimple(r *request) {
	p := r.proc
	switch r.kind {
	case opRead, opWrite:
		lat := e.mem.Access(p.ID, r.addr, r.kind == opWrite, p.now)
		p.stats.MemNs += lat
		if r.kind == opWrite {
			p.stats.Writes++
		} else {
			p.stats.Reads++
		}
		e.replyAwait(p, p.now+lat)
	case opReadBatch, opWriteBatch:
		t := p.now
		for _, a := range r.addrs {
			t += e.mem.Access(p.ID, a, r.kind == opWriteBatch, t)
		}
		p.stats.MemNs += t - p.now
		if r.kind == opWriteBatch {
			p.stats.Writes += int64(len(r.addrs))
		} else {
			p.stats.Reads += int64(len(r.addrs))
		}
		e.replyAwait(p, t)
	case opCompute:
		p.stats.ComputeNs += r.dur
		e.replyAwait(p, p.now+r.dur)
	case opUnlock:
		l := e.lock(r.lock)
		if !l.held || l.holder != p.ID {
			panic(fmt.Sprintf("memsim: proc %d unlocking lock %d it does not hold", p.ID, r.lock))
		}
		relLat := e.mem.ReleaseLock(p.ID, r.lock, p.now)
		p.stats.UnlockNs += relLat
		releaseAt := p.now + relLat
		l.held = false
		e.replyAwait(p, releaseAt)
		if !l.held && len(l.queue) > 0 {
			w := l.queue[0]
			arrived := l.acquireTimes[0]
			l.queue = l.queue[1:]
			l.acquireTimes = l.acquireTimes[1:]
			e.grantLock(l, w, arrived, releaseAt, r.lock)
		}
	default:
		panic("memsim: bad op")
	}
}

// execLock handles a lock request: immediate grant or enqueue.
func (e *Engine) execLock(r *request) {
	p := r.proc
	l := e.lock(r.lock)
	if !l.held {
		e.grantLock(l, p, p.now, p.now, r.lock)
		return
	}
	l.queue = append(l.queue, p)
	l.acquireTimes = append(l.acquireTimes, p.now)
}

// grantLock completes a lock acquisition for proc w that requested at
// virtual time arrived; the lock became free at freeAt.
func (e *Engine) grantLock(l *lockState, w *Proc, arrived, freeAt float64, id int) {
	start := arrived
	if freeAt > start {
		start = freeAt
	}
	lat := e.mem.AcquireLock(w.ID, id, start)
	grant := start + lat
	w.stats.Locks++
	w.stats.LockWaitNs += grant - arrived
	w.stats.LockNs += grant - arrived
	l.held = true
	l.holder = w.ID
	e.replyAwait(w, grant)
}

// checkBarrier releases the barrier once every live processor is in it.
func (e *Engine) checkBarrier() {
	if len(e.barrier) == 0 || len(e.barrier) < e.alive {
		return
	}
	release, perProc := e.mem.BarrierWork(e.barrierArrive, procIDs(e.barrier))
	rec := BarrierRecord{Label: e.barrierLabel, Waits: make([]float64, e.P)}
	// Tail per-proc cost (e.g. applying HLRC write notices) lands after
	// the synchronization point. Processors are released one at a time
	// to preserve the at-most-one-executing invariant.
	maxEnd := release
	ends := make([]float64, len(e.barrier))
	for i, w := range e.barrier {
		ends[i] = release + perProc[i]
		w.stats.BarrierNs += ends[i] - e.barrierArrive[i]
		rec.Waits[w.ID] = ends[i] - e.barrierArrive[i]
		if ends[i] > maxEnd {
			maxEnd = ends[i]
		}
	}
	rec.Release = maxEnd
	e.records = append(e.records, rec)
	waiters := append([]*Proc(nil), e.barrier...)
	e.barrier = e.barrier[:0]
	e.barrierArrive = e.barrierArrive[:0]
	e.barrierLabel = ""
	for i, w := range waiters {
		e.replyAwait(w, ends[i])
	}
}

func procIDs(ps []*Proc) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

func (e *Engine) lock(id int) *lockState {
	l := e.locks[id]
	if l == nil {
		l = &lockState{}
		e.locks[id] = l
	}
	return l
}
