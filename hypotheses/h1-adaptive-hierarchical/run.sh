#!/bin/sh
# h1-adaptive-hierarchical: measured-cost adaptive partitioning beats
# static costzones on the hierarchical clustering scenario.
#
# Decision rule: at every p in {4, 8}, the adaptive loop's final
# max/mean insert skew must be strictly below static costzones' skew
# AND must converge below 1.30. Fully deterministic (seed 7, synthetic
# measured costs), so the report is byte-identical across reruns.
cd "$(dirname "$0")"
. ../lib/harness.sh
pt_init

drv="$PT_TMP/h1driver"
pt_run 120 "$GO" build -o "$drv" ./driver
pt_run 120 "$drv" -n 4000 -seed 7 -p 4,8 -rounds 12 -radius 0.2 \
    -report results/report.json

# Determinism: a second run must emit the same bytes.
pt_run 120 "$drv" -n 4000 -seed 7 -p 4,8 -rounds 12 -radius 0.2 \
    -report "$PT_TMP/report2.json"
cmp results/report.json "$PT_TMP/report2.json" || {
    echo "h1: report is not byte-deterministic" >&2
    exit 1
}

ok=$(jq -r '.confirmed and ([.cells[].adaptive_skew] | max) < 1.30' results/report.json)
jq -r '.cells[] | "p=\(.p)  static=\(.static_skew)  adaptive=\(.adaptive_skew)  improvement=\(.improvement_pct)%"' \
    results/report.json

if [ "$ok" = "true" ]; then
    pt_confirm "adaptive skew strictly below static at p=4 and p=8, converged under 1.30"
else
    pt_refute "adaptive did not beat static costzones on hierarchical clustering (see results/report.json)"
    exit 1
fi
