// Package obs is the repo's live observability layer: a dependency-free
// metrics registry (counters, gauges, histograms with deterministic
// buckets) that renders the Prometheus text exposition format, plus an
// HTTP server mounting /metrics, /healthz, /debug/pprof/* and expvar.
//
// The design splits metric *maintenance* from metric *exposition*:
// instrumented components (internal/runner, internal/core,
// internal/harness) keep their own cheap atomic counters whether or not
// anything is scraping, and register collectors into a Registry only
// when a binary runs with -http. That keeps the hot paths free of any
// registry lookups — observing a counter is one atomic add — and lets
// tests build isolated registries without global state.
//
// Metric names follow the Prometheus conventions: a partree_ prefix,
// _total suffix on counters, base units (seconds, bytes) on histograms
// and gauges. See DESIGN.md §2.8 for the full name table.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Collector is anything that can contribute metric families to a render
// pass. The built-in metric types all implement it; components with
// pre-existing counters (e.g. the runner) implement it to expose those
// without copying.
type Collector interface {
	// Collect appends the collector's current families. Implementations
	// must be safe for concurrent use with the updates they observe.
	Collect(out []Family) []Family
}

// Family is one named metric with its help text, type, and series.
type Family struct {
	Name   string
	Help   string
	Type   Type
	Series []Series
}

// Type is the Prometheus metric type of a family.
type Type string

// The exposition types the registry renders.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Series is one sample (or, for histograms, one bucketed distribution)
// within a family, identified by its label values.
type Series struct {
	// Labels are name=value pairs, rendered in the given order.
	Labels []Label
	// Value is the sample for counters and gauges.
	Value float64
	// Hist carries the distribution for histogram families.
	Hist *HistSnapshot
}

// Label is one name=value pair on a series.
type Label struct {
	Name  string
	Value string
}

// HistSnapshot is a consistent view of a histogram: cumulative bucket
// counts aligned with the histogram's upper bounds, plus sum and count.
type HistSnapshot struct {
	UpperBounds []float64 // exclusive of the implicit +Inf bucket
	Counts      []uint64  // cumulative, len == len(UpperBounds)
	Count       uint64
	Sum         float64
}

// Registry holds registered collectors and renders them. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	names      map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// Register adds a collector. Metrics created by this package register
// their family name so duplicates are rejected; foreign collectors are
// trusted to keep their names unique.
func (r *Registry) Register(cs ...Collector) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		if n, ok := c.(interface{ metricName() string }); ok {
			name := n.metricName()
			if r.names[name] {
				return fmt.Errorf("obs: duplicate metric %q", name)
			}
			if err := checkMetricName(name); err != nil {
				return err
			}
			r.names[name] = true
		}
		r.collectors = append(r.collectors, c)
	}
	return nil
}

// MustRegister is Register panicking on error (for init-time wiring).
func (r *Registry) MustRegister(cs ...Collector) {
	if err := r.Register(cs...); err != nil {
		panic(err)
	}
}

// Gather collects every registered family, sorted by name, with each
// family's series sorted by label values — so renders are deterministic
// regardless of registration or update order.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	var fams []Family
	for _, c := range collectors {
		fams = c.Collect(fams)
	}
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	for i := range fams {
		s := fams[i].Series
		sort.SliceStable(s, func(a, b int) bool { return labelKey(s[a].Labels) < labelKey(s[b].Labels) })
	}
	return fams
}

func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// checkMetricName enforces the Prometheus data-model name charset.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("obs: invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabelName enforces the Prometheus label-name charset.
func checkLabelName(name string) error {
	if name == "" || strings.HasPrefix(name, "__") {
		return fmt.Errorf("obs: invalid label name %q", name)
	}
	for i, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("obs: invalid label name %q", name)
		}
	}
	return nil
}

// desc is the shared identity of a metric family.
type desc struct {
	name string
	help string
}

func (d desc) metricName() string { return d.name }

// Counter is a monotonically increasing sample. All methods are safe for
// concurrent use; Add is one atomic operation.
type Counter struct {
	desc
	labels []Label
	bits   atomic.Uint64
}

// NewCounter creates a standalone counter (register it to expose it).
func NewCounter(name, help string) *Counter {
	return &Counter{desc: desc{name, help}}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Collect implements Collector.
func (c *Counter) Collect(out []Family) []Family {
	return append(out, Family{Name: c.name, Help: c.help, Type: TypeCounter,
		Series: []Series{{Labels: c.labels, Value: c.Value()}}})
}

// Gauge is a sample that can go up and down.
type Gauge struct {
	desc
	labels []Label
	bits   atomic.Uint64
}

// NewGauge creates a standalone gauge.
func NewGauge(name, help string) *Gauge {
	return &Gauge{desc: desc{name, help}}
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Collect implements Collector.
func (g *Gauge) Collect(out []Family) []Family {
	return append(out, Family{Name: g.name, Help: g.help, Type: TypeGauge,
		Series: []Series{{Labels: g.labels, Value: g.Value()}}})
}

// GaugeFunc samples a value at collect time — how cheap-to-read state
// (goroutine counts, cache sizes) is exposed without maintenance cost.
type GaugeFunc struct {
	desc
	labels []Label
	fn     func() float64
}

// NewGaugeFunc creates a gauge whose value is fn() at scrape time.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return &GaugeFunc{desc: desc{name, help}, fn: fn}
}

// Collect implements Collector.
func (g *GaugeFunc) Collect(out []Family) []Family {
	return append(out, Family{Name: g.name, Help: g.help, Type: TypeGauge,
		Series: []Series{{Labels: g.labels, Value: g.fn()}}})
}

// CounterFunc is GaugeFunc with counter semantics, for monotone totals
// maintained elsewhere (e.g. the runner's atomic execution counts).
type CounterFunc struct {
	desc
	labels []Label
	fn     func() float64
}

// NewCounterFunc creates a counter whose value is fn() at scrape time.
func NewCounterFunc(name, help string, fn func() float64) *CounterFunc {
	return &CounterFunc{desc: desc{name, help}, fn: fn}
}

// Collect implements Collector.
func (c *CounterFunc) Collect(out []Family) []Family {
	return append(out, Family{Name: c.name, Help: c.help, Type: TypeCounter,
		Series: []Series{{Labels: c.labels, Value: c.fn()}}})
}

// Histogram is a fixed-bucket distribution. Buckets are chosen at
// construction (deterministic — never resized at runtime), so Observe is
// a binary search plus two atomic adds and renders are reproducible.
type Histogram struct {
	desc
	labels []Label
	bounds []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative); last = +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// NewHistogram creates a histogram with the given strictly increasing
// upper bounds. An implicit +Inf bucket is always appended.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not increasing at %d", name, i))
		}
	}
	return &Histogram{
		desc:   desc{name, help},
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// ExpBuckets returns n upper bounds start, start·factor, start·factor²…
// — the deterministic bucket ladder used by the duration histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start>0, factor>1, n>=1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the cumulative bucket view rendered on scrape.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{
		UpperBounds: h.bounds,
		Counts:      make([]uint64, len(h.bounds)),
		Sum:         math.Float64frombits(h.sum.Load()),
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.Count = cum + h.counts[len(h.bounds)].Load()
	return s
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Collect implements Collector.
func (h *Histogram) Collect(out []Family) []Family {
	return append(out, Family{Name: h.name, Help: h.help, Type: TypeHistogram,
		Series: []Series{{Labels: h.labels, Hist: h.Snapshot()}}})
}

// Vec is a family of label-addressed children sharing one name — the
// labeled form of Counter/Gauge/Histogram. Children are created on first
// use and live forever (label cardinality here is algorithm/backend
// names, bounded by construction).
type Vec[M Collector] struct {
	desc
	labelNames []string
	make       func(labels []Label) M

	mu       sync.Mutex
	children map[string]M
	order    []string
}

func newVec[M Collector](name, help string, labelNames []string, mk func([]Label) M) *Vec[M] {
	for _, ln := range labelNames {
		if err := checkLabelName(ln); err != nil {
			panic(err)
		}
	}
	return &Vec[M]{
		desc: desc{name, help}, labelNames: labelNames, make: mk,
		children: map[string]M{},
	}
}

// With returns the child for the given label values (created on first
// use). The number of values must match the vec's label names.
func (v *Vec[M]) With(values ...string) M {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labelNames), len(values)))
	}
	key := strings.Join(values, "\x01")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	labels := make([]Label, len(values))
	for i := range values {
		labels[i] = Label{v.labelNames[i], values[i]}
	}
	c := v.make(labels)
	v.children[key] = c
	v.order = append(v.order, key)
	return c
}

// Collect implements Collector: one family holding every child's series.
func (v *Vec[M]) Collect(out []Family) []Family {
	v.mu.Lock()
	children := make([]M, len(v.order))
	for i, k := range v.order {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	var fam Family
	for _, c := range children {
		sub := c.Collect(nil)
		if fam.Name == "" {
			fam = Family{Name: sub[0].Name, Help: sub[0].Help, Type: sub[0].Type}
		}
		fam.Series = append(fam.Series, sub[0].Series...)
	}
	if fam.Name == "" { // no children yet: still advertise the family
		var zero M
		switch any(zero).(type) {
		case *Counter:
			fam = Family{Name: v.name, Help: v.help, Type: TypeCounter}
		case *Histogram:
			fam = Family{Name: v.name, Help: v.help, Type: TypeHistogram}
		default:
			fam = Family{Name: v.name, Help: v.help, Type: TypeGauge}
		}
	}
	return append(out, fam)
}

// NewCounterVec creates a labeled counter family.
func NewCounterVec(name, help string, labelNames ...string) *Vec[*Counter] {
	return newVec(name, help, labelNames, func(ls []Label) *Counter {
		return &Counter{desc: desc{name, help}, labels: ls}
	})
}

// NewGaugeVec creates a labeled gauge family.
func NewGaugeVec(name, help string, labelNames ...string) *Vec[*Gauge] {
	return newVec(name, help, labelNames, func(ls []Label) *Gauge {
		return &Gauge{desc: desc{name, help}, labels: ls}
	})
}

// NewHistogramVec creates a labeled histogram family with shared bounds.
func NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *Vec[*Histogram] {
	return newVec(name, help, labelNames, func(ls []Label) *Histogram {
		h := NewHistogram(name, help, bounds)
		h.labels = ls
		return h
	})
}

// formatValue renders a sample the way Prometheus expects: shortest
// round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
