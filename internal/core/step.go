package core

import (
	"partree/internal/octree"
	"partree/internal/phys"
)

// StepInput is one timestep of a long-lived session driven through a
// Stepper. The caller mutates the Stepper's bodies in place (drift, or
// overwriting positions from a client) before each Step call; StepInput
// carries only the per-step control knobs.
type StepInput struct {
	// Rebuild forces a fresh rebuild this step regardless of what the
	// fallback policy decided.
	Rebuild bool
}

// StepResult is the outcome of one Stepper step.
type StepResult struct {
	Step    int
	Tree    *octree.Tree
	Metrics *Metrics
	// ChurnFrac is the fraction of bodies that crossed their leaf
	// boundary this step (0 on fresh rebuilds, which move everything by
	// definition).
	ChurnFrac float64
	// DepthSkew is Metrics.Depth.Skew() — max/mean live-leaf depth.
	DepthSkew float64
	// Fresh reports the builder rebuilt from scratch; Reason names why.
	Fresh  bool
	Reason string
	// Fallback reports this step's rebuild was requested by the
	// auto-fallback policy rather than by the caller.
	Fallback bool
}

// Stepper drives a resident UPDATE builder step over step, the way a
// session does: it owns the step counter, keeps the body→processor
// assignment stable across steps, feeds each step's churn and depth-skew
// stats to a FallbackController, and converts the controller's verdict
// into an Input.Rebuild on the following step. This is the step-over-step
// surface internal/engine leases pin; internal/nbody keeps its own loop
// because it also owns integration and costzones repartitioning.
type Stepper struct {
	cfg    Config
	b      Builder
	ctrl   *FallbackController
	bodies *phys.Bodies
	assign [][]int32
	step   int
	// pendingRebuild is the controller's verdict from the previous step,
	// consumed (and reset) by the next Step call.
	pendingRebuild bool
}

// NewStepper pins a fresh UPDATE builder over bodies. DepthStats is
// forced on so the fallback policy always has its shape signal.
func NewStepper(cfg Config, bodies *phys.Bodies, policy FallbackPolicy) *Stepper {
	cfg.DepthStats = true
	return &Stepper{
		cfg:    cfg,
		b:      New(UPDATE, cfg),
		ctrl:   NewFallbackController(policy),
		bodies: bodies,
		assign: SpatialAssign(bodies, cfg.P),
	}
}

// Bodies returns the resident body state for in-place mutation between
// steps. The slice headers must not be replaced; N is fixed for the
// stepper's lifetime.
func (st *Stepper) Bodies() *phys.Bodies { return st.bodies }

// Builder exposes the pinned resident builder for storage accounting
// (engine.Stats aggregates its store via StoresOf).
func (st *Stepper) Builder() Builder { return st.b }

// Steps returns how many steps have been taken.
func (st *Stepper) Steps() int { return st.step }

// Step builds (or repairs) the tree for the current body state and
// advances the step counter.
func (st *Stepper) Step(in StepInput) *StepResult {
	fallback := st.pendingRebuild && !in.Rebuild
	st.pendingRebuild = false

	bi := &Input{
		Bodies:  st.bodies,
		Assign:  st.assign,
		Step:    st.step,
		Rebuild: in.Rebuild || fallback,
	}
	tree, m := st.b.Build(bi)

	res := &StepResult{
		Step:     st.step,
		Tree:     tree,
		Metrics:  m,
		Fresh:    m.FreshRebuild,
		Reason:   m.FreshReason,
		Fallback: fallback && m.FreshRebuild,
	}
	if n := st.bodies.N(); n > 0 && !m.FreshRebuild {
		res.ChurnFrac = float64(m.TotalBodiesMoved()) / float64(n)
	}
	if m.Depth != nil {
		res.DepthSkew = m.Depth.Skew()
	}
	st.pendingRebuild = st.ctrl.Observe(res.ChurnFrac, res.DepthSkew, m.FreshRebuild)
	st.step++
	return res
}
