// Command paperrepro regenerates every table and figure from the paper's
// evaluation section on the simulated platforms, writing each experiment's
// output under -out and echoing it to stdout. Each experiment's sweep
// cells run concurrently across the runner's worker pool; rendering stays
// serial so output is identical to a serial run.
//
// Usage:
//
//	paperrepro [-exp T1,F6,...|all] [-sizes 4096,8192] [-large] [-steps 2]
//	           [-workers 0] [-out results] [-check] [-http :9090] [-v info] [-json]
//
// With -http the whole sweep is observable live: scrape /metrics for
// runner throughput, per-algorithm build counters and harness progress
// (cells done/total, current figure), hit /healthz for liveness, and
// /debug/pprof to profile mid-sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"partree/internal/harness"
	"partree/internal/runner"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs (T1,T2,F6..F15,S15) or 'all'")
		sizes    = flag.String("sizes", "", "comma-separated body counts (default 4096,8192,16384)")
		large    = flag.Bool("large", false, "extend the sweep to 32k/64k/128k bodies (slow)")
		steps    = flag.Int("steps", 2, "measured time steps per run")
		seed     = flag.Int64("seed", 1998, "random seed for the Plummer model")
		leafCap  = flag.Int("leafcap", 8, "bodies per leaf (k)")
		workers  = flag.Int("workers", 0, "concurrent sweep cells (0 = GOMAXPROCS)")
		check    = flag.Bool("check", false, "verify every sweep cell's tree against the serial reference")
		traceDir = flag.String("trace", "", "write one Chrome trace_event file per sweep cell into this directory")
		outDir   = flag.String("out", "results", "directory for per-experiment output files")
		csvOut   = flag.Bool("csv", true, "also write every computed outcome to <out>/outcomes.csv")
		jsonOut  = flag.Bool("json", false, "also write every computed Result record to <out>/outcomes.jsonl")
		listOnly = flag.Bool("list", false, "list experiments and exit")
	)
	obsFlags := runner.RegisterObsFlags(flag.CommandLine)
	flag.Parse()
	if _, err := obsFlags.SetupLogging("paperrepro"); err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(2)
	}

	if *listOnly {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := harness.DefaultOptions()
	opts.Large = *large
	opts.MeasuredSteps = *steps
	opts.Seed = *seed
	opts.LeafCap = *leafCap
	opts.Workers = *workers
	opts.Check = *check
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			slog.Error("creating trace dir", "path", *traceDir, "err", err)
			os.Exit(1)
		}
		opts.TraceDir = *traceDir
	}
	if *sizes != "" {
		opts.Sizes = nil
		for _, f := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				slog.Error("bad -sizes entry", "value", f)
				os.Exit(2)
			}
			opts.Sizes = append(opts.Sizes, n)
		}
	}

	var exps []harness.Experiment
	if *expFlag == "all" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.Find(strings.TrimSpace(id))
			if !ok {
				slog.Error("unknown experiment (use -list)", "id", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		slog.Error("creating output dir", "path", *outDir, "err", err)
		os.Exit(1)
	}

	// Ctrl-C / SIGTERM cancels the sweep: in-flight cells cut short, the
	// experiment loop stops, and the partial CSV/JSON dumps still land.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	session := harness.NewSession(opts)
	srv, err := obsFlags.Serve("paperrepro", session.Runner(), session.RegisterObs)
	if err != nil {
		slog.Error("starting obs server", "err", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}
	interrupted := false
	for _, e := range exps {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		start := time.Now()
		path := filepath.Join(*outDir, e.ID+".txt")
		f, err := os.Create(path)
		if err != nil {
			slog.Error("creating experiment output", "experiment", e.ID, "path", path, "err", err)
			os.Exit(1)
		}
		w := io.MultiWriter(os.Stdout, f)
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprintf(w, "expected shape: %s\n\n", e.Shape)
		session.RunExperiment(ctx, e, w)
		fmt.Fprintf(w, "\n[regenerated in %v]\n\n", time.Since(start).Round(time.Millisecond))
		f.Close()
		if ctx.Err() != nil {
			interrupted = true
			break
		}
	}

	if *csvOut {
		path := filepath.Join(*outDir, "outcomes.csv")
		f, err := os.Create(path)
		if err != nil {
			slog.Error("creating CSV dump", "path", path, "err", err)
			os.Exit(1)
		}
		if err := session.DumpCSV(f); err != nil {
			slog.Error("writing CSV dump", "path", path, "err", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", path)
	}
	if *jsonOut {
		path := filepath.Join(*outDir, "outcomes.jsonl")
		f, err := os.Create(path)
		if err != nil {
			slog.Error("creating JSONL dump", "path", path, "err", err)
			os.Exit(1)
		}
		if err := runner.WriteJSON(f, session.Runner().Results()...); err != nil {
			slog.Error("writing JSONL dump", "path", path, "err", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", path)
	}
	if interrupted {
		slog.Warn("sweep interrupted; partial results written", "dir", *outDir)
		os.Exit(130)
	}
}
