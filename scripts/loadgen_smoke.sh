#!/bin/sh
# loadgen_smoke.sh — smoke-test the workload harness end to end: start
# partreed on an ephemeral port, replay a seeded bursty-diurnal session
# workload against it with cmd/loadgen twice, and assert the runs are
# byte-deterministic (identical report.json outside the measured
# p99-slowest pointer lines), internally consistent
# (every arrival accounted for, sessions_opened matches), and that the
# timings CSV carries the tail-latency percentiles. Then check SIGTERM
# drains cleanly. Run via `make loadgen-smoke` (part of `make check`).
set -e

GO=${GO:-go}
tmp=$(mktemp -d)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/partreed" ./cmd/partreed
$GO build -o "$tmp/loadgen" ./cmd/loadgen

log="$tmp/partreed.log"
"$tmp/partreed" -addr 127.0.0.1:0 -v info 2>"$log" &
pid=$!

url=
i=0
while [ $i -lt 100 ]; do
    url=$(sed -n 's/.*msg=serving .* url=\(http:[^ ]*\).*/\1/p' "$log" | head -1)
    [ -n "$url" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "loadgen-smoke: partreed exited before serving" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$url" ]; then
    echo "loadgen-smoke: no serving address in log" >&2
    cat "$log" >&2
    exit 1
fi

# The same seeded spec twice: a bursty-diurnal session workload on the
# disk-galaxy scenario, virtual time compressed (-speedup 0 = as fast
# as possible), mandatory timeout. The deterministic report must come
# out byte-identical; measured latencies go to the CSV.
for i in 1 2; do
    "$tmp/loadgen" -url "$url" -mode session \
        -scenario disk -arrival bursty:rate=30,on=250ms,off=250ms,period=1s,depth=0.6 \
        -horizon 1s -n 256 -procs 2 -steps 2 -seed 42 -timeout 60s \
        -report "$tmp/report$i.json" -timings "$tmp/timings$i.csv" >/dev/null 2>&1
done
# The slow-pointer block quotes measured p99 latencies, which vary run
# to run by design; everything else must stay byte-identical.
grep -v '"p99_' "$tmp/report1.json" >"$tmp/report1.det"
grep -v '"p99_' "$tmp/report2.json" >"$tmp/report2.det"
cmp "$tmp/report1.det" "$tmp/report2.det" || {
    echo "loadgen-smoke: reports differ between identical runs" >&2
    exit 1
}
grep -q '"request_id"' "$tmp/report1.json" || {
    echo "loadgen-smoke: report carries no per-session request IDs" >&2
    cat "$tmp/report1.json" >&2
    exit 1
}
grep -q '"p99_step_request_id"' "$tmp/report1.json" || {
    echo "loadgen-smoke: report has no slow-request pointer block" >&2
    cat "$tmp/report1.json" >&2
    exit 1
}

arrivals=$(jq -r .schedule.arrivals "$tmp/report1.json")
accounted=$(jq -r '.outcomes.ok + .outcomes.rejected + .outcomes.failed + .outcomes.unlaunched' "$tmp/report1.json")
ok=$(jq -r .outcomes.ok "$tmp/report1.json")
opened=$(jq -r .metrics_delta.sessions_opened "$tmp/report2.json")
if [ "$arrivals" -lt 1 ] || [ "$arrivals" != "$accounted" ]; then
    echo "loadgen-smoke: $arrivals arrivals but $accounted accounted for" >&2
    exit 1
fi
if [ "$ok" -lt 1 ] || [ "$opened" != "$ok" ]; then
    echo "loadgen-smoke: ok=$ok but run 2 opened $opened sessions on the daemon" >&2
    exit 1
fi
for m in p50_ms p95_ms p99_ms server_queue_ms_p99 server_build_ms_p99; do
    grep -q "^$m," "$tmp/timings1.csv" || {
        echo "loadgen-smoke: timings CSV is missing $m" >&2
        cat "$tmp/timings1.csv" >&2
        exit 1
    }
done

kill -TERM "$pid"
wait "$pid" || {
    echo "loadgen-smoke: partreed did not drain cleanly on SIGTERM" >&2
    cat "$log" >&2
    exit 1
}
pid=
echo "loadgen-smoke: ok ($url, $arrivals arrivals, $ok sessions, byte-identical reports)"
