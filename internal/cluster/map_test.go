package cluster

import (
	"bytes"
	"testing"

	"partree/internal/partition"
	"partree/internal/vec"
)

func TestUniformMapValidates(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		m := UniformMap(1, Domain{Size: 4}, n)
		if err := m.Validate(); err != nil {
			t.Fatalf("UniformMap(%d): %v", n, err)
		}
		if len(m.Shards) != n {
			t.Fatalf("UniformMap(%d) has %d shards", n, len(m.Shards))
		}
	}
}

func TestMapValidateRejects(t *testing.T) {
	d := Domain{Size: 4}
	half := partition.KeySpace / 2
	cases := []struct {
		name string
		m    Map
	}{
		{"zero version", Map{Domain: d, Shards: []Shard{{ID: "a", Lo: 0, Hi: partition.KeySpace}}}},
		{"no shards", Map{Version: 1, Domain: d}},
		{"zero domain", Map{Version: 1, Shards: []Shard{{ID: "a", Lo: 0, Hi: partition.KeySpace}}}},
		{"empty range", Map{Version: 1, Domain: d, Shards: []Shard{
			{ID: "a", Lo: 0, Hi: 0}, {ID: "b", Lo: 0, Hi: partition.KeySpace}}}},
		{"gap", Map{Version: 1, Domain: d, Shards: []Shard{
			{ID: "a", Lo: 0, Hi: half - 1}, {ID: "b", Lo: half, Hi: partition.KeySpace}}}},
		{"overlap", Map{Version: 1, Domain: d, Shards: []Shard{
			{ID: "a", Lo: 0, Hi: half + 1}, {ID: "b", Lo: half, Hi: partition.KeySpace}}}},
		{"not from zero", Map{Version: 1, Domain: d, Shards: []Shard{
			{ID: "a", Lo: 1, Hi: partition.KeySpace}}}},
		{"short cover", Map{Version: 1, Domain: d, Shards: []Shard{
			{ID: "a", Lo: 0, Hi: half}}}},
		{"dup id", Map{Version: 1, Domain: d, Shards: []Shard{
			{ID: "a", Lo: 0, Hi: half}, {ID: "a", Lo: half, Hi: partition.KeySpace}}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid map", tc.name)
		}
	}
}

// TestShardForBoundary pins the half-open routing convention for keys
// exactly on a range boundary: the boundary key belongs to the *upper*
// shard, matching engine.Guard's Owns.
func TestShardForBoundary(t *testing.T) {
	m := UniformMap(1, Domain{Size: 4}, 2)
	cut := m.Shards[0].Hi
	if got := m.ShardFor(cut - 1); got != 0 {
		t.Fatalf("ShardFor(cut-1) = %d, want 0", got)
	}
	if got := m.ShardFor(cut); got != 1 {
		t.Fatalf("ShardFor(cut) = %d, want 1 (half-open ranges)", got)
	}
	if got := m.ShardFor(0); got != 0 {
		t.Fatalf("ShardFor(0) = %d, want 0", got)
	}
	if got := m.ShardFor(partition.KeySpace - 1); got != 1 {
		t.Fatalf("ShardFor(KeySpace-1) = %d, want 1", got)
	}
	if got := m.ShardFor(partition.KeySpace); got != -1 {
		t.Fatalf("ShardFor(KeySpace) = %d, want -1", got)
	}

	// A body sitting exactly on the domain's splitting planes quantizes
	// to the positive side (vec.Cube.OctantOf's convention), so the
	// center point routes deterministically to the upper shard.
	if got := m.ShardFor(m.KeyOf(vec.V3{})); got != 1 {
		t.Fatalf("domain-center body routed to shard %d, want 1", got)
	}
}

func TestSingleShardMapDegenerate(t *testing.T) {
	m := UniformMap(3, Domain{Size: 4}, 1)
	if err := m.Validate(); err != nil {
		t.Fatalf("single-shard map invalid: %v", err)
	}
	for _, p := range []vec.V3{{}, {X: 1.9}, {X: -100, Y: 100, Z: 3}} {
		if got := m.ShardFor(m.KeyOf(p)); got != 0 {
			t.Fatalf("single-shard map routed %v to %d", p, got)
		}
	}
}

func TestMapEncodeDeterministic(t *testing.T) {
	m := UniformMap(2, Domain{Center: [3]float64{0.5, -0.25, 0}, Size: 8}, 3)
	m.Shards[0].Addr = "127.0.0.1:1"
	m.Shards[1].Addr = "127.0.0.1:2"
	m.Shards[2].Addr = "127.0.0.1:3"
	a, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("Encode is not byte-deterministic:\n%s\nvs\n%s", a, b)
	}
	back, err := ParseMap(a)
	if err != nil {
		t.Fatalf("ParseMap(Encode()): %v", err)
	}
	c, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("Encode → Parse → Encode changed bytes")
	}
}

func TestParseMapRejectsUnknownFields(t *testing.T) {
	if _, err := ParseMap([]byte(`{"version":1,"domain":{"center":[0,0,0],"size":4},"shards":[],"extra":1}`)); err == nil {
		t.Fatal("ParseMap accepted unknown fields")
	}
}

func TestWithoutAddrs(t *testing.T) {
	m := UniformMap(1, Domain{Size: 4}, 2)
	m.Shards[0].Addr = "x"
	c := m.WithoutAddrs()
	if c.Shards[0].Addr != "" || m.Shards[0].Addr != "x" {
		t.Fatal("WithoutAddrs must clear the copy and leave the original")
	}
}
