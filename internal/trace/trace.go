// Package trace is the low-overhead per-processor event recorder behind
// the -trace flag: the native builders (internal/core) and the platform
// replays (internal/simalg) emit span events for the build sub-phases
// (partition/assign, insert, subdivide, moments, barrier wait) and point
// events for lock acquire/hold/release into per-processor ring buffers.
//
// The design goals mirror the measurement discipline of the paper's own
// instrumentation (and of Valdarnini's and Dubinski's treecode studies,
// which both live and die by per-phase, per-processor breakdowns):
//
//   - No allocation on the hot path: every processor owns a preallocated
//     fixed-capacity ring of fixed-size Event records, padded so two
//     processors never share a cache line, and aggregation (time-in-phase,
//     lock-hold histogram) happens incrementally at emit time with a few
//     integer adds — so summaries stay exact even after the ring wraps.
//   - Compiled to a no-op when disabled: every emit hook is a method on a
//     possibly-nil *P handle that returns immediately when the handle is
//     nil or the recorder is disabled, so an untraced build pays one
//     pointer comparison per hook and nothing else.
//   - Timestamp-agnostic: events carry int64 nanoseconds relative to the
//     recorder's epoch. Native emitters stamp wall-clock time via Now;
//     the platform simulator stamps *virtual* time from memsim.Proc.Now,
//     so simulated timelines are exact rather than measured.
//
// Enabling, disabling, and resetting the recorder must happen between
// builds (outside any fork/join region); the builders' fork edges then
// publish the state to the workers.
package trace

import "time"

// Phase identifies a build sub-phase span.
type Phase uint8

const (
	// PhasePartition covers partitioning and assignment work: root
	// bounds, SPACE's counting/subdivision rounds, UPDATE's rescale.
	PhasePartition Phase = iota
	// PhaseInsert covers loading bodies into the tree (including
	// PARTREE's merge and SPACE's subtree build/attach).
	PhaseInsert
	// PhaseSubdivide covers converting a full leaf into a cell subtree
	// (emitted nested inside the insert phase).
	PhaseSubdivide
	// PhaseMoments covers the center-of-mass pass.
	PhaseMoments
	// PhaseBarrier covers time spent waiting at a fork/join or barrier
	// for the slowest processor — the load-imbalance signal of the
	// paper's Table 2.
	PhaseBarrier

	// NumPhases is the number of span phases.
	NumPhases = int(PhaseBarrier) + 1
)

// String returns the phase's CSV/timeline name.
func (ph Phase) String() string {
	switch ph {
	case PhasePartition:
		return "partition"
	case PhaseInsert:
		return "insert"
	case PhaseSubdivide:
		return "subdivide"
	case PhaseMoments:
		return "moments"
	case PhaseBarrier:
		return "barrier"
	}
	return "phase?"
}

// PhaseNames lists the span phases in order.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	for i := 0; i < NumPhases; i++ {
		out[i] = Phase(i).String()
	}
	return out
}

// Kind distinguishes event records.
type Kind uint8

const (
	// KindSpan is a phase interval: Start..End.
	KindSpan Kind = iota
	// KindLock is one lock acquire/hold/release: the processor started
	// waiting at Start, obtained the lock at Acquired, released it at
	// End.
	KindLock
)

// Event is one fixed-size trace record. Timestamps are nanoseconds since
// the recorder's epoch (virtual nanoseconds for simulated runs).
type Event struct {
	Kind     Kind
	Phase    Phase // KindSpan only
	Start    int64
	End      int64
	Acquired int64 // KindLock only
}

// DefaultCapacity is the per-processor ring capacity in events.
const DefaultCapacity = 1 << 14

// procBuf is one processor's ring buffer plus its incrementally
// maintained aggregates. The trailing padding keeps neighboring
// processors' write cursors off each other's cache lines — the same
// false-sharing discipline core.procCounters follows.
type procBuf struct {
	ev   []Event
	next int64 // records emitted; ring head is next mod cap

	spans      int64
	lockEvents int64
	lockWaitNs int64
	lockHoldNs int64
	phaseNs    [NumPhases]int64
	hold       Hist
	_          [8]int64
}

func (b *procBuf) put(e Event) {
	b.ev[b.next%int64(len(b.ev))] = e
	b.next++
}

// Recorder owns the per-processor buffers for one traced run.
type Recorder struct {
	epoch   time.Time
	enabled bool
	bufs    []procBuf
	ps      []P
}

// New creates a recorder for p processors with the default per-processor
// capacity. Recorders start disabled.
func New(p int) *Recorder { return NewWithCapacity(p, DefaultCapacity) }

// NewWithCapacity creates a recorder with an explicit per-processor ring
// capacity (events). The ring keeps the most recent events; aggregate
// counters and histograms cover every emitted event regardless.
func NewWithCapacity(p, perProc int) *Recorder {
	if p < 1 {
		p = 1
	}
	if perProc < 1 {
		perProc = 1
	}
	r := &Recorder{epoch: time.Now(), bufs: make([]procBuf, p), ps: make([]P, p)}
	for w := range r.bufs {
		r.bufs[w].ev = make([]Event, perProc)
		r.ps[w] = P{r: r, w: w, b: &r.bufs[w]}
	}
	return r
}

// Procs returns the processor count the recorder was created for.
func (r *Recorder) Procs() int {
	if r == nil {
		return 0
	}
	return len(r.bufs)
}

// Proc returns processor w's emit handle. Nil-safe: a nil recorder (or
// out-of-range w) yields a nil handle whose methods are no-ops, which is
// exactly how tracing compiles away when disabled.
func (r *Recorder) Proc(w int) *P {
	if r == nil || w < 0 || w >= len(r.ps) {
		return nil
	}
	return &r.ps[w]
}

// SetEnabled turns recording on or off. Toggle only between builds; the
// builders' fork/join edges publish the flag to their workers.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled = on
	}
}

// Active reports whether the recorder exists and is enabled. Nil-safe.
func (r *Recorder) Active() bool { return r != nil && r.enabled }

// Now returns nanoseconds since the recorder's epoch (the native
// emitters' time source; simulated emitters stamp virtual time instead).
func (r *Recorder) Now() int64 { return time.Since(r.epoch).Nanoseconds() }

// Reset clears every buffer and aggregate and restarts the epoch, so the
// next emitted event begins a fresh trace window. The enabled flag is
// kept. Call only between builds.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.epoch = time.Now()
	for w := range r.bufs {
		b := &r.bufs[w]
		ev := b.ev
		*b = procBuf{ev: ev}
		r.ps[w].lockStart, r.ps[w].lockAcquired = 0, 0
	}
}

// Events returns processor w's buffered events in chronological order
// (the most recent capacity's worth, if the ring wrapped).
func (r *Recorder) Events(w int) []Event {
	if r == nil || w < 0 || w >= len(r.bufs) {
		return nil
	}
	b := &r.bufs[w]
	c := int64(len(b.ev))
	if b.next <= c {
		return append([]Event(nil), b.ev[:b.next]...)
	}
	head := b.next % c
	out := make([]Event, 0, c)
	out = append(out, b.ev[head:]...)
	return append(out, b.ev[:head]...)
}

// P is one processor's emit handle. All methods are no-ops on a nil
// handle or a disabled recorder, so builders hold a *P unconditionally
// and the untraced hot path costs one nil comparison per hook.
type P struct {
	r *Recorder
	w int
	b *procBuf

	// lockStart/lockAcquired stage a pending native lock event between
	// LockBegin/LockAcquired and LockEnd — the native inserters hold at
	// most one traced lock at a time, so one slot suffices.
	lockStart    int64
	lockAcquired int64
}

// Active reports whether emitting through this handle records anything.
func (p *P) Active() bool { return p != nil && p.r.enabled }

// Now returns nanoseconds since the recorder's epoch. Nil-safe.
func (p *P) Now() int64 {
	if p == nil {
		return 0
	}
	return p.r.Now()
}

// SpanAt records a phase span covering [start, end].
func (p *P) SpanAt(ph Phase, start, end int64) {
	if p == nil || !p.r.enabled {
		return
	}
	b := p.b
	b.put(Event{Kind: KindSpan, Phase: ph, Start: start, End: end})
	b.spans++
	b.phaseNs[ph] += end - start
}

// Span records a phase span from start to now.
func (p *P) Span(ph Phase, start int64) {
	if p == nil || !p.r.enabled {
		return
	}
	p.SpanAt(ph, start, p.Now())
}

// LockAcquired stages a pending lock event: waiting for the lock began
// at start and the lock was obtained now. Pair with LockReleased; the
// native inserters hold one traced lock at a time, so the pending event
// lives on the handle and the hot path never allocates.
func (p *P) LockAcquired(start int64) {
	if p == nil || !p.r.enabled {
		return
	}
	p.lockStart = start
	p.lockAcquired = p.r.Now()
}

// LockReleased emits the lock event staged by the matching LockAcquired,
// with release time now.
func (p *P) LockReleased() {
	if p == nil || !p.r.enabled {
		return
	}
	p.LockAt(p.lockStart, p.lockAcquired, p.r.Now())
}

// LockAt records one lock event: waiting began at start, the lock was
// obtained at acquired and released at end.
func (p *P) LockAt(start, acquired, end int64) {
	if p == nil || !p.r.enabled {
		return
	}
	b := p.b
	b.put(Event{Kind: KindLock, Start: start, Acquired: acquired, End: end})
	b.lockEvents++
	b.lockWaitNs += acquired - start
	b.lockHoldNs += end - acquired
	b.hold.Add(end - acquired)
}
