package nbody

import (
	"math"
	"testing"

	"partree/internal/core"
	"partree/internal/phys"
	"partree/internal/vec"
)

func TestSimulationRunsAllAlgorithms(t *testing.T) {
	for _, alg := range core.Algorithms() {
		opts := DefaultOptions()
		opts.N = 2000
		opts.P = 4
		opts.Alg = alg
		opts.Verify = true // panics on any tree violation
		sim := New(opts)
		stats := sim.Run(4)
		if len(stats) != 4 {
			t.Fatalf("alg=%v: %d stats", alg, len(stats))
		}
		for _, st := range stats {
			if st.Phase.Interactions == 0 {
				t.Fatalf("alg=%v step %d: no interactions", alg, st.Step)
			}
			if st.TreeStats.Bodies != opts.N {
				t.Fatalf("alg=%v step %d: tree holds %d bodies", alg, st.Step, st.TreeStats.Bodies)
			}
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	opts := DefaultOptions()
	opts.N = 1500
	opts.P = 4
	opts.Dt = 0.01
	opts.Force.Theta = 0.6
	sim := New(opts)
	_, _, e0 := sim.Energy()
	sim.Run(10)
	_, _, e1 := sim.Energy()
	// |E| ~ 0.25 in model units for a virialized Plummer sphere; drift
	// over 10 small steps should be a few percent at most.
	if drift := math.Abs(e1-e0) / math.Abs(e0); drift > 0.05 {
		t.Fatalf("energy drift %.3f%% too large (E %g -> %g)", 100*drift, e0, e1)
	}
}

func TestMomentumConservation(t *testing.T) {
	opts := DefaultOptions()
	opts.N = 1000
	opts.P = 2
	opts.Dt = 0.01
	sim := New(opts)
	p0 := sim.Bodies.Momentum()
	sim.Run(8)
	p1 := sim.Bodies.Momentum()
	// Barnes-Hut cell approximations break Newton's third law at the
	// θ-error level, so momentum is conserved only approximately.
	if p1.Sub(p0).Len() > 1e-3 {
		t.Fatalf("momentum drifted %v -> %v", p0, p1)
	}
}

func TestAlgorithmsAgreeOnPhysics(t *testing.T) {
	// One step from identical initial conditions: accelerations must
	// agree across algorithms to floating-point reordering tolerance
	// (the trees are identical; only summation order differs).
	ref := accAfterOneStep(t, core.LOCAL)
	for _, alg := range []core.Algorithm{core.ORIG, core.UPDATE, core.PARTREE, core.SPACE} {
		acc := accAfterOneStep(t, alg)
		for i := range ref {
			if acc[i].Sub(ref[i]).Len() > 1e-9*(1+ref[i].Len()) {
				t.Fatalf("alg=%v: acc[%d] = %v, want %v", alg, i, acc[i], ref[i])
			}
		}
	}
}

func accAfterOneStep(t *testing.T, alg core.Algorithm) []vec.V3 {
	t.Helper()
	opts := DefaultOptions()
	opts.N = 1200
	opts.P = 4
	opts.Alg = alg
	sim := New(opts)
	sim.Step()
	out := make([]vec.V3, opts.N)
	copy(out, sim.Bodies.Acc)
	return out
}

func TestTreeShareComputed(t *testing.T) {
	opts := DefaultOptions()
	opts.N = 3000
	opts.P = 2
	sim := New(opts)
	st := sim.Step()
	if st.Total() <= 0 {
		t.Fatal("no time recorded")
	}
	if share := st.TreeShare(); share <= 0 || share >= 1 {
		t.Fatalf("tree share %.3f out of (0,1)", share)
	}
	if st.String() == "" {
		t.Fatal("empty step summary")
	}
}

func TestTwoClusterCollisionProgresses(t *testing.T) {
	opts := DefaultOptions()
	opts.Model = phys.ModelTwoClusters
	opts.N = 1000
	opts.P = 4
	opts.Alg = core.SPACE
	opts.Dt = 0.05
	sim := New(opts)
	sep0 := clusterSeparation(sim.Bodies)
	sim.Run(12)
	sep1 := clusterSeparation(sim.Bodies)
	if sep1 >= sep0 {
		t.Fatalf("clusters did not approach: %.3f -> %.3f", sep0, sep1)
	}
}

func clusterSeparation(b *phys.Bodies) float64 {
	n1 := b.N() / 2
	var c1, c2 vec.V3
	for i := 0; i < n1; i++ {
		c1 = c1.Add(b.Pos[i])
	}
	for i := n1; i < b.N(); i++ {
		c2 = c2.Add(b.Pos[i])
	}
	return c1.Scale(1 / float64(n1)).Dist(c2.Scale(1 / float64(b.N()-n1)))
}

func TestUpdateBuilderLongRun(t *testing.T) {
	// UPDATE across many steps of real dynamics, verified every step.
	opts := DefaultOptions()
	opts.N = 1500
	opts.P = 4
	opts.Alg = core.UPDATE
	opts.Verify = true
	opts.Dt = 0.03
	sim := New(opts)
	sim.Run(10)
}
