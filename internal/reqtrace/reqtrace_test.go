package reqtrace_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"partree/internal/reqtrace"
	"partree/internal/trace"
)

// epoch anchors every deterministic timeline; the golden files bake in
// its UnixNano, so it must never change.
var epoch = time.Unix(1700000000, 0)

func TestParseTraceparent(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in   string
		id   string
		want bool
	}{
		{valid, "4bf92f3577b34da6a3ce929d0e0e4736", true},
		{"", "", false},
		{valid[:54], "", false},       // truncated
		{valid + "x", "", false},      // too long
		{"01" + valid[2:], "", false}, // unknown version
		{"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "", false}, // bad separator
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", "", false}, // uppercase hex
		{"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", "", false}, // non-hex digit
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", "", false}, // reserved all-zero
	}
	for _, c := range cases {
		id, ok := reqtrace.ParseTraceparent(c.in)
		if ok != c.want || id != c.id {
			t.Errorf("ParseTraceparent(%q) = (%q, %v), want (%q, %v)", c.in, id, ok, c.id, c.want)
		}
	}
}

func TestMintID(t *testing.T) {
	a, b := reqtrace.MintID(), reqtrace.MintID()
	for _, id := range []string{a, b} {
		if _, ok := reqtrace.ParseTraceparent("00-" + id + "-00f067aa0ba902b7-01"); !ok {
			t.Errorf("minted ID %q is not a valid traceparent trace-id", id)
		}
	}
	if a == b {
		t.Errorf("two minted IDs collide: %q", a)
	}
}

// TestNilHandleNoOp pins the disabled mode: a nil Recorder yields a nil
// *Req, and every method on both is callable and inert.
func TestNilHandleNoOp(t *testing.T) {
	var rec *reqtrace.Recorder
	rq := rec.Start("id", "/v1/build")
	if rq != nil {
		t.Fatal("nil recorder handed out a non-nil Req")
	}
	rq.SpanSince("queue", time.Now())
	rq.SpanAt("build", epoch, epoch.Add(time.Millisecond))
	rq.AddBuildPhases(time.Millisecond, time.Millisecond, time.Millisecond)
	rq.BridgeTrace(&trace.Summary{})
	rq.Finish(200, 1)
	if q, b, m, tot := rq.Breakdown(); q+b+m+tot != 0 {
		t.Errorf("nil Req breakdown = %v %v %v %v, want zeros", q, b, m, tot)
	}
	if rq.ID() != "" || rq.Route() != "" || rq.Seq() != 0 || rq.Duration() != 0 {
		t.Error("nil Req identity accessors returned non-zero values")
	}
	if rq.Spans() != nil || rq.TraceSummary() != nil || (rq.Phases() != reqtrace.Phases{}) {
		t.Error("nil Req snapshots returned non-zero values")
	}
	if rec.Snapshot() != nil || rec.Slow() != nil || rec.Lookup("id") != nil {
		t.Error("nil recorder snapshots returned non-nil values")
	}
	if rec.InFlight() != 0 || rec.SlowTotal() != 0 || rec.Cap() != 0 {
		t.Error("nil recorder counters returned non-zero values")
	}

	// A context threads no value for a nil Req, and recalls nothing.
	ctx := reqtrace.NewContext(context.Background(), nil)
	if ctx != context.Background() {
		t.Error("NewContext(nil) wrapped the context")
	}
	if reqtrace.FromContext(ctx) != nil {
		t.Error("FromContext on an empty context returned a Req")
	}
}

func TestContextRoundTrip(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.Options{})
	rq := rec.StartAt("aabbccddeeff00112233445566778899", "/v1/build", epoch)
	ctx := reqtrace.NewContext(context.Background(), rq)
	if got := reqtrace.FromContext(ctx); got != rq {
		t.Fatalf("FromContext returned %p, want %p", got, rq)
	}
	rq.FinishAt(200, 0, epoch.Add(time.Millisecond))
}

// TestReqTimeline drives one request through the deterministic
// constructors and checks every accumulator: span offsets relative to
// the start, the queue/build station totals, the phase breakdown, the
// bridged trace (latest wins), and the final duration.
func TestReqTimeline(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.Options{})
	rq := rec.StartAt("4bf92f3577b34da6a3ce929d0e0e4736", "/v1/build", epoch)
	if rq.ID() != "4bf92f3577b34da6a3ce929d0e0e4736" || rq.Route() != "/v1/build" {
		t.Fatalf("identity = (%q, %q)", rq.ID(), rq.Route())
	}

	ms := func(n int) time.Time { return epoch.Add(time.Duration(n) * time.Millisecond) }
	rq.SpanAt("read", ms(0), ms(1))
	rq.SpanAt("queue", ms(1), ms(3))
	rq.SpanAt("build", ms(3), ms(13))
	rq.SpanAt("queue", ms(13), ms(14)) // second slot wait accumulates
	rq.SpanAt("write", ms(14), ms(15))
	rq.AddBuildPhases(6*time.Millisecond, 3*time.Millisecond, time.Millisecond)

	s1 := &trace.Summary{PerProc: make([]trace.ProcSummary, 1)}
	s2 := &trace.Summary{PerProc: make([]trace.ProcSummary, 2)}
	rq.BridgeTrace(s1)
	rq.BridgeTrace(nil) // ignored: untraced builds pass nil unconditionally
	rq.BridgeTrace(s2)  // latest traced build wins
	if got := rq.TraceSummary(); got != s2 {
		t.Errorf("TraceSummary = %p, want the last bridged summary %p", got, s2)
	}

	q, b, m, tot := rq.Breakdown()
	if q != 3*time.Millisecond {
		t.Errorf("queue = %v, want 3ms (two waits summed)", q)
	}
	if b != 9*time.Millisecond {
		t.Errorf("build = %v, want 9ms (bounds+insert phases)", b)
	}
	if m != time.Millisecond {
		t.Errorf("moments = %v, want 1ms", m)
	}
	if tot <= 0 {
		t.Errorf("in-flight total = %v, want > 0 (time since start)", tot)
	}

	spans := rq.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	want := reqtrace.Span{Name: "build", StartNs: 3e6, DurNs: 10e6}
	if spans[2] != want {
		t.Errorf("span[2] = %+v, want %+v", spans[2], want)
	}
	if ph := rq.Phases(); ph != (reqtrace.Phases{BoundsNs: 6e6, InsertNs: 3e6, MomentsNs: 1e6}) {
		t.Errorf("phases = %+v", ph)
	}

	rq.FinishAt(200, 4096, ms(15))
	if rq.Duration() != 15*time.Millisecond {
		t.Errorf("duration = %v, want 15ms", rq.Duration())
	}
	if _, _, _, tot := rq.Breakdown(); tot != 15*time.Millisecond {
		t.Errorf("finished total = %v, want the recorded 15ms", tot)
	}
	if rq.Seq() != 1 {
		t.Errorf("seq = %d, want 1 (first recorded request)", rq.Seq())
	}
	if got := rec.Lookup("4bf92f3577b34da6a3ce929d0e0e4736"); got != rq {
		t.Errorf("Lookup returned %p, want %p", got, rq)
	}
}

// TestSpanListCap stamps past the per-request span cap: the list stops
// growing, the queue accumulator stays exact, and negative-duration
// spans clamp to zero.
func TestSpanListCap(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.Options{})
	rq := rec.StartAt("00000000000000000000000000000001", "/v1/session", epoch)
	const stamped = 600 // past the 512-span cap
	for i := 0; i < stamped; i++ {
		at := epoch.Add(time.Duration(i) * time.Microsecond)
		rq.SpanAt("queue", at, at.Add(time.Microsecond))
	}
	rq.SpanAt("backwards", epoch.Add(time.Second), epoch) // end < start
	spans := rq.Spans()
	if len(spans) >= stamped {
		t.Fatalf("span list grew to %d; the cap never engaged", len(spans))
	}
	if q, _, _, _ := rq.Breakdown(); q != stamped*time.Microsecond {
		t.Errorf("queue total = %v, want exact %v despite dropped spans", q, stamped*time.Microsecond)
	}
	rq.FinishAt(200, 0, epoch.Add(time.Second))
}

// finishOne records one request with the given duration and returns it.
func finishOne(rec *reqtrace.Recorder, id string, d time.Duration) *reqtrace.Req {
	rq := rec.StartAt(id, "/v1/build", epoch)
	rq.FinishAt(200, 1, epoch.Add(d))
	return rq
}

func TestRingWrapAndSnapshot(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.Options{Cap: 4, SlowThreshold: time.Hour})
	if rec.Cap() != 4 {
		t.Fatalf("Cap = %d", rec.Cap())
	}
	for i := 1; i <= 10; i++ {
		finishOne(rec, fmt.Sprintf("%032d", i), time.Duration(i)*time.Millisecond)
	}
	snap := rec.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d requests, want the ring's 4", len(snap))
	}
	for i, r := range snap {
		if want := uint64(10 - i); r.Seq() != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d (newest first)", i, r.Seq(), want)
		}
	}
	// The wrapped-away requests are gone; the retained ones resolve.
	if rec.Lookup(fmt.Sprintf("%032d", 3)) != nil {
		t.Error("Lookup found a request the ring wrapped away")
	}
	if r := rec.Lookup(fmt.Sprintf("%032d", 9)); r == nil || r.Seq() != 9 {
		t.Errorf("Lookup(9) = %v", r)
	}
	// Duplicate IDs: the newest completion wins.
	finishOne(rec, "duplicate-id", time.Millisecond)
	dup2 := finishOne(rec, "duplicate-id", 2*time.Millisecond)
	if got := rec.Lookup("duplicate-id"); got != dup2 {
		t.Errorf("Lookup(duplicate) returned seq %d, want the newest %d", got.Seq(), dup2.Seq())
	}
}

func TestSlowListThresholdAndEviction(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.Options{Cap: 8, SlowThreshold: 10 * time.Millisecond, SlowK: 2})
	finishOne(rec, "00000000000000000000000000000aaa", 5*time.Millisecond) // under threshold
	finishOne(rec, "00000000000000000000000000000bbb", 20*time.Millisecond)
	finishOne(rec, "00000000000000000000000000000ccc", 30*time.Millisecond)
	finishOne(rec, "00000000000000000000000000000ddd", 25*time.Millisecond) // evicts the 20ms entry
	if got := rec.SlowTotal(); got != 3 {
		t.Errorf("SlowTotal = %d, want 3 (every crossing counts, evicted or not)", got)
	}
	slow := rec.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow list holds %d, want top-K 2", len(slow))
	}
	if slow[0].ID() != "00000000000000000000000000000ccc" || slow[1].ID() != "00000000000000000000000000000ddd" {
		t.Errorf("slow = [%s %s], want [ccc ddd] (slowest first)", slow[0].ID(), slow[1].ID())
	}
}

// TestLookupOutlivesRingViaSlowList wraps a slow request out of the
// ring and checks Lookup still resolves it from the slow list — the
// requests most worth debugging stay addressable longest.
func TestLookupOutlivesRingViaSlowList(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.Options{Cap: 2, SlowThreshold: 10 * time.Millisecond, SlowK: 4})
	slow := finishOne(rec, "00000000000000000000000000005105", 50*time.Millisecond)
	finishOne(rec, "00000000000000000000000000000001", time.Millisecond)
	finishOne(rec, "00000000000000000000000000000002", time.Millisecond)
	for _, r := range rec.Snapshot() {
		if r == slow {
			t.Fatal("test setup: the slow request should have wrapped out of the ring")
		}
	}
	if got := rec.Lookup(slow.ID()); got != slow {
		t.Errorf("Lookup(%s) = %v, want the slow-list entry", slow.ID(), got)
	}
}

func TestInFlightGauge(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.Options{})
	a := rec.Start("00000000000000000000000000000001", "/v1/build")
	b := rec.Start("00000000000000000000000000000002", "/v1/build")
	if got := rec.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	a.Finish(200, 0)
	b.Finish(500, 0)
	if got := rec.InFlight(); got != 0 {
		t.Fatalf("InFlight after finishes = %d, want 0", got)
	}
}

// TestConcurrentWritersAndReaders is the race-detector workout: many
// request lifecycles (spans from two goroutines each, as handler and
// runner stamp concurrently) against readers of every snapshot surface.
// Invariants checked after the storm: nothing in flight, sequence
// numbers dense and unique, ring bounded at capacity.
func TestConcurrentWritersAndReaders(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.Options{Cap: 8, SlowThreshold: time.Nanosecond, SlowK: 4})
	const writers, perWriter = 8, 50

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, r := range rec.Snapshot() {
					r.Spans()
					r.Breakdown()
				}
				rec.Slow()
				rec.Lookup("00000000000000000000000000000007")
				rec.InFlight()
			}
		}()
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				rq := rec.Start(fmt.Sprintf("%031d%d", i, w), "/v1/build")
				var inner sync.WaitGroup
				inner.Add(1)
				go func() { // the runner-goroutine stamping path
					defer inner.Done()
					rq.SpanAt("build", epoch, epoch.Add(time.Millisecond))
					rq.AddBuildPhases(time.Microsecond, time.Microsecond, time.Microsecond)
					rq.BridgeTrace(&trace.Summary{})
				}()
				rq.SpanAt("queue", epoch, epoch.Add(time.Microsecond))
				rq.Breakdown()
				inner.Wait()
				rq.Finish(200, 128)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	if got := rec.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after every request finished", got)
	}
	if got := rec.SlowTotal(); got != writers*perWriter {
		t.Errorf("SlowTotal = %d, want %d (threshold 1ns catches all)", got, writers*perWriter)
	}
	snap := rec.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot holds %d, want the full ring 8", len(snap))
	}
	seen := map[uint64]bool{}
	for _, r := range snap {
		if seen[r.Seq()] || r.Seq() == 0 || r.Seq() > writers*perWriter {
			t.Errorf("bad sequence number %d in snapshot", r.Seq())
		}
		seen[r.Seq()] = true
	}
}
