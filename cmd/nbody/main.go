// Command nbody runs the native (real goroutines, real locks) Barnes-Hut
// galaxy simulation with a selectable tree-building algorithm and prints
// per-step phase times — the paper's measurement, on your machine.
//
// Usage:
//
//	nbody [-n 16384] [-steps 5] [-p 8] [-alg SPACE] [-model plummer]
//	      [-theta 1.0] [-leafcap 8] [-dt 0.025] [-verify] [-energy]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"partree/internal/core"
	"partree/internal/nbody"
	"partree/internal/phys"
)

func main() {
	var (
		n       = flag.Int("n", 16384, "number of bodies")
		steps   = flag.Int("steps", 5, "time steps to run")
		p       = flag.Int("p", runtime.GOMAXPROCS(0), "processors (goroutines)")
		algName = flag.String("alg", "SPACE", "tree builder: ORIG, LOCAL, UPDATE, PARTREE, SPACE")
		model   = flag.String("model", "plummer", "mass model: plummer, uniform, twoclusters")
		theta   = flag.Float64("theta", 1.0, "Barnes-Hut opening angle")
		leafCap = flag.Int("leafcap", 8, "bodies per leaf (k)")
		dt      = flag.Float64("dt", 0.025, "time step")
		seed    = flag.Int64("seed", 1, "random seed")
		verify  = flag.Bool("verify", false, "check tree invariants every step")
		energy  = flag.Bool("energy", false, "report energy drift (O(N²), slow for large N)")
		quad    = flag.Bool("quad", false, "use quadrupole cell expansions (better accuracy per θ)")
		useFMM  = flag.Bool("fmm", false, "use the cell-cell fast summation solver instead of Barnes-Hut traversal")
		load    = flag.String("load", "", "restart from a snapshot file instead of generating bodies")
		save    = flag.String("save", "", "write a snapshot file after the last step")
	)
	flag.Parse()

	alg, ok := core.ParseAlgorithm(*algName)
	if !ok {
		fmt.Fprintf(os.Stderr, "nbody: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	m, ok := phys.ParseModel(*model)
	if !ok {
		fmt.Fprintf(os.Stderr, "nbody: unknown model %q\n", *model)
		os.Exit(2)
	}

	opts := nbody.DefaultOptions()
	opts.N = *n
	opts.P = *p
	opts.Alg = alg
	opts.Model = m
	opts.LeafCap = *leafCap
	opts.Dt = *dt
	opts.Seed = *seed
	opts.Verify = *verify
	opts.Force.Theta = *theta
	opts.Force.Quadrupole = *quad
	opts.FMM = *useFMM

	var sim *nbody.Simulation
	if *load != "" {
		bodies, err := phys.LoadSnapshot(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbody: %v\n", err)
			os.Exit(1)
		}
		opts.N = bodies.N()
		sim = nbody.NewFromBodies(opts, bodies)
		fmt.Printf("nbody: restarted %d bodies from %s\n", bodies.N(), *load)
	} else {
		sim = nbody.New(opts)
	}
	fmt.Printf("nbody: %d bodies (%s), %d procs, builder %v, θ=%.2f, k=%d\n",
		opts.N, m, *p, alg, *theta, *leafCap)

	var e0 float64
	if *energy {
		_, _, e0 = sim.Energy()
	}
	for i := 0; i < *steps; i++ {
		st := sim.Step()
		fmt.Printf("%v  [%v]\n", st, st.Build)
	}
	if *energy {
		_, _, e1 := sim.Energy()
		fmt.Printf("energy: %.6f -> %.6f (drift %.3f%%)\n", e0, e1, 100*(e1-e0)/e0)
	}
	if *save != "" {
		if err := sim.Bodies.SaveSnapshot(*save); err != nil {
			fmt.Fprintf(os.Stderr, "nbody: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("snapshot written to %s\n", *save)
	}
}
