package harness

import (
	"sync"
	"sync/atomic"

	"partree/internal/obs"
)

// sessionObs is the session's sweep-progress instrumentation: how many
// grid cells the current reproduction has enqueued and finished, and
// which figure is being regenerated right now. Maintained always (a few
// atomic adds per experiment, one per cell); exposed when a binary runs
// with -http so `paperrepro -http :9090` can be watched mid-sweep.
type sessionObs struct {
	experiments atomic.Int64 // experiments started
	cellsTotal  atomic.Int64 // sweep cells enqueued across experiments
	cellsDone   atomic.Int64 // sweep cells whose result is available

	mu         sync.Mutex
	currentID  string // experiment being regenerated ("" when idle)
	currentTit string
}

func (o *sessionObs) setCurrent(id, title string) {
	o.mu.Lock()
	o.currentID, o.currentTit = id, title
	o.mu.Unlock()
}

// RegisterObs exposes the session's sweep progress on reg.
func (s *Session) RegisterObs(reg *obs.Registry) error {
	o := &s.obs
	return reg.Register(
		obs.NewCounterFunc("partree_harness_experiments_started_total",
			"Experiments (tables/figures) started this session.",
			func() float64 { return float64(o.experiments.Load()) }),
		obs.NewGaugeFunc("partree_harness_cells_total",
			"Sweep cells enqueued across all experiments so far.",
			func() float64 { return float64(o.cellsTotal.Load()) }),
		obs.NewGaugeFunc("partree_harness_cells_done",
			"Sweep cells whose result is available.",
			func() float64 { return float64(o.cellsDone.Load()) }),
		currentExperiment{o},
	)
}

// currentExperiment renders the in-progress figure as an info-style
// gauge: value 1 with the experiment's id/title as labels, and no series
// at all while the session is idle.
type currentExperiment struct{ o *sessionObs }

// Collect implements obs.Collector.
func (c currentExperiment) Collect(out []obs.Family) []obs.Family {
	c.o.mu.Lock()
	id, title := c.o.currentID, c.o.currentTit
	c.o.mu.Unlock()
	fam := obs.Family{
		Name: "partree_harness_current_experiment",
		Help: "The experiment currently being regenerated (1 while one is running).",
		Type: obs.TypeGauge,
	}
	if id != "" {
		fam.Series = []obs.Series{{
			Labels: []obs.Label{{Name: "id", Value: id}, {Name: "title", Value: title}},
			Value:  1,
		}}
	}
	return append(out, fam)
}
