package octree

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"partree/internal/vec"
)

const (
	chunkShift = 12 // 4096 nodes per chunk
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
	maxChunks  = (indexMask + 1) >> chunkShift

	// nLockStripes sizes the striped lock table. The SPLASH codes hash
	// cells onto a fixed lock array the same way; 1024 stripes keeps
	// false contention negligible for the processor counts studied.
	nLockStripes = 1024

	// DefaultMaxDepth bounds subdivision. Beyond it a leaf accepts any
	// number of bodies, which keeps coincident bodies from recursing
	// forever. 48 halvings of any realistic root cube reach below
	// physical resolution long before this.
	DefaultMaxDepth = 48
)

// arena holds the cells and leaves created by one allocator (one processor,
// or everyone when shared). Chunks never move once installed, so a *Cell
// or *Leaf obtained from a published Ref stays valid for the arena's
// lifetime. The chunk directories are fixed-size arrays of atomic
// pointers: installation races between allocators in a shared arena are
// resolved with compare-and-swap, and readers get the necessary
// happens-before edge from the atomic load.
type arena struct {
	cellChunks [maxChunks]atomic.Pointer[[chunkSize]Cell]
	leafChunks [maxChunks]atomic.Pointer[[chunkSize]Leaf]
	nCells     int64 // allocation cursors, atomic
	nLeaves    int64
}

// Store owns the node arenas, the striped lock table, and the build
// parameters shared by every tree built into it.
type Store struct {
	// LeafCap is k, the subdivision threshold: a leaf with more than
	// LeafCap bodies splits (except at MaxDepth).
	LeafCap int
	// MaxDepth bounds subdivision depth.
	MaxDepth int

	arenas []arena
	locks  [nLockStripes]sync.Mutex
	// lockCount counts acquisitions per stripe owner; the builders keep
	// their own per-processor counters, this one exists for cheap global
	// sanity checks.
	lockCount int64
}

// NewStore creates a store with nArenas arenas (arena 0 is conventionally
// the shared/sequential arena; 1..P belong to processors) and subdivision
// threshold leafCap.
func NewStore(nArenas, leafCap int) *Store {
	if nArenas < 1 || nArenas > MaxArenas {
		panic(fmt.Sprintf("octree: nArenas %d out of range [1,%d]", nArenas, MaxArenas))
	}
	if leafCap < 1 {
		panic("octree: leafCap must be ≥ 1")
	}
	return &Store{
		LeafCap:  leafCap,
		MaxDepth: DefaultMaxDepth,
		arenas:   make([]arena, nArenas),
	}
}

// NumArenas returns the number of arenas in the store.
func (s *Store) NumArenas() int { return len(s.arenas) }

// Cell resolves a cell reference. The reference must be a cell.
func (s *Store) Cell(r Ref) *Cell {
	if !r.IsCell() {
		panic("octree: Cell() on " + r.String())
	}
	i := r.Index()
	return &s.arenas[r.Arena()].cellChunks[i>>chunkShift].Load()[i&chunkMask]
}

// Leaf resolves a leaf reference. The reference must be a leaf.
func (s *Store) Leaf(r Ref) *Leaf {
	if !r.IsLeaf() {
		panic("octree: Leaf() on " + r.String())
	}
	i := r.Index()
	return &s.arenas[r.Arena()].leafChunks[i>>chunkShift].Load()[i&chunkMask]
}

// AllocCell allocates a new cell in the given arena with every child Nil.
// Safe for concurrent use by multiple goroutines on the same arena (the
// ORIG algorithm's single shared array); allocation order, and therefore
// the Ref handed out, is then scheduling-dependent.
func (s *Store) AllocCell(arenaID int, cube vec.Cube, parent Ref, owner int) (Ref, *Cell) {
	a := &s.arenas[arenaID]
	idx := int(atomic.AddInt64(&a.nCells, 1) - 1)
	if idx > indexMask {
		panic("octree: arena cell capacity exhausted")
	}
	ci := idx >> chunkShift
	chunk := a.cellChunks[ci].Load()
	if chunk == nil {
		chunk = installChunk(&a.cellChunks[ci])
	}
	c := &chunk[idx&chunkMask]
	c.initChildren()
	c.Cube = cube
	c.Parent = parent
	c.Owner = int32(owner)
	c.Mass, c.COM, c.NBody, c.Cost, c.pending = 0, vec.V3{}, 0, 0, 0
	c.Quad = Quadrupole{}
	return CellRef(arenaID, idx), c
}

// AllocLeaf allocates a new leaf in the given arena. Same concurrency
// contract as AllocCell.
func (s *Store) AllocLeaf(arenaID int, cube vec.Cube, parent Ref, owner int) (Ref, *Leaf) {
	a := &s.arenas[arenaID]
	idx := int(atomic.AddInt64(&a.nLeaves, 1) - 1)
	if idx > indexMask {
		panic("octree: arena leaf capacity exhausted")
	}
	ci := idx >> chunkShift
	chunk := a.leafChunks[ci].Load()
	if chunk == nil {
		chunk = installChunk(&a.leafChunks[ci])
	}
	l := &chunk[idx&chunkMask]
	l.Cube = cube
	l.Parent = parent
	l.Owner = int32(owner)
	l.Retired = false
	if l.Bodies == nil {
		l.Bodies = make([]int32, 0, s.LeafCap)
	} else {
		l.Bodies = l.Bodies[:0]
	}
	l.Mass, l.COM, l.Cost = 0, vec.V3{}, 0
	l.Quad = Quadrupole{}
	return LeafRef(arenaID, idx), l
}

// installChunk publishes a fresh chunk into slot, keeping the winner if
// several allocators race.
func installChunk[T any](slot *atomic.Pointer[[chunkSize]T]) *[chunkSize]T {
	fresh := new([chunkSize]T)
	if slot.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return slot.Load()
}

// Lock acquires the striped lock guarding node r and returns it for the
// caller to unlock. Distinct nodes may share a stripe; that is the same
// compromise the SPLASH lock-hashing scheme makes and is safe (coarser
// exclusion, never finer).
func (s *Store) Lock(r Ref) *sync.Mutex {
	m := &s.locks[lockStripe(r)]
	m.Lock()
	atomic.AddInt64(&s.lockCount, 1)
	return m
}

// LockCount reports total striped-lock acquisitions since the last Reset.
func (s *Store) LockCount() int64 { return atomic.LoadInt64(&s.lockCount) }

func lockStripe(r Ref) int {
	// Fibonacci hashing spreads sequential indices across stripes.
	return int((uint32(r) * 2654435769) >> (32 - 10))
}

// CellsIn reports how many cells arena a has allocated.
func (s *Store) CellsIn(a int) int { return int(atomic.LoadInt64(&s.arenas[a].nCells)) }

// LeavesIn reports how many leaves arena a has allocated.
func (s *Store) LeavesIn(a int) int { return int(atomic.LoadInt64(&s.arenas[a].nLeaves)) }

// TotalCells reports the number of cells allocated across all arenas.
func (s *Store) TotalCells() int {
	n := 0
	for i := range s.arenas {
		n += s.CellsIn(i)
	}
	return n
}

// TotalLeaves reports the number of leaves allocated across all arenas.
func (s *Store) TotalLeaves() int {
	n := 0
	for i := range s.arenas {
		n += s.LeavesIn(i)
	}
	return n
}

// StoreStats is a snapshot of one store's memory accounting: how many
// nodes the current tree holds (rewound by Reset) versus how much chunk
// memory the store retains across resets. Retention is the point of
// session pooling — RetainedBytes is what a pooled builder keeps warm
// instead of reallocating — so the engine exposes these as the
// partree_store_* gauges.
type StoreStats struct {
	Cells  int64 // cells allocated since the last Reset, across arenas
	Leaves int64 // leaves allocated since the last Reset
	// CellChunks and LeafChunks count installed chunks, which survive
	// Reset and are reused by later builds.
	CellChunks int64
	LeafChunks int64
	// RetainedBytes is the chunk memory the store holds onto: installed
	// chunks times their node size. Leaf body slices (reused in place by
	// AllocLeaf) are not counted.
	RetainedBytes int64
}

// Add accumulates b into a (for aggregating over several stores).
func (a StoreStats) Add(b StoreStats) StoreStats {
	a.Cells += b.Cells
	a.Leaves += b.Leaves
	a.CellChunks += b.CellChunks
	a.LeafChunks += b.LeafChunks
	a.RetainedBytes += b.RetainedBytes
	return a
}

// Stats snapshots the store's live node counts and retained chunk
// memory. Safe for concurrent use with builds (atomic loads only); a
// snapshot taken mid-build is a consistent-enough lower bound.
func (s *Store) Stats() StoreStats {
	var st StoreStats
	for i := range s.arenas {
		a := &s.arenas[i]
		st.Cells += atomic.LoadInt64(&a.nCells)
		st.Leaves += atomic.LoadInt64(&a.nLeaves)
		for c := range a.cellChunks {
			if a.cellChunks[c].Load() != nil {
				st.CellChunks++
			}
		}
		for c := range a.leafChunks {
			if a.leafChunks[c].Load() != nil {
				st.LeafChunks++
			}
		}
	}
	st.RetainedBytes = st.CellChunks*chunkSize*int64(unsafe.Sizeof(Cell{})) +
		st.LeafChunks*chunkSize*int64(unsafe.Sizeof(Leaf{}))
	return st
}

// Reset rewinds every arena so the store's memory can be reused for the
// next time step without reallocating chunks. Outstanding Refs become
// invalid. The UPDATE algorithm does not call this — it keeps its tree.
func (s *Store) Reset() {
	for i := range s.arenas {
		atomic.StoreInt64(&s.arenas[i].nCells, 0)
		atomic.StoreInt64(&s.arenas[i].nLeaves, 0)
	}
	atomic.StoreInt64(&s.lockCount, 0)
}

// Tree couples a store with the root reference of a built tree.
type Tree struct {
	Store *Store
	Root  Ref
}

// RootCube returns the cube of the root node.
func (t *Tree) RootCube() vec.Cube {
	if t.Root.IsNil() {
		return vec.Cube{}
	}
	if t.Root.IsLeaf() {
		return t.Store.Leaf(t.Root).Cube
	}
	return t.Store.Cell(t.Root).Cube
}
