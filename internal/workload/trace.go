package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Replayable traffic traces: one JSON object per line, ascending virtual
// timestamps. The format is the loadgen's interchange: a generated
// schedule can be written out (-trace-out), inspected or edited, and
// replayed bit-for-bit (-trace-in), which is what makes an experiment's
// traffic reproducible independently of the process parameters that
// produced it.
//
//	{"at_ns":0,"op":"session"}
//	{"at_ns":12500000,"op":"session"}
//
// at_ns is the virtual-time offset from the start of the run. op is
// optional free-form ("session", "build"); replays that care filter on
// it, replays that don't ignore it.

// Event is one traced arrival.
type Event struct {
	AtNs int64  `json:"at_ns"`
	Op   string `json:"op,omitempty"`
}

// At returns the event's virtual-time offset.
func (e Event) At() time.Duration { return time.Duration(e.AtNs) }

// EventsFromOffsets converts a schedule into trace events with one op.
func EventsFromOffsets(offsets []time.Duration, op string) []Event {
	out := make([]Event, len(offsets))
	for i, t := range offsets {
		out[i] = Event{AtNs: int64(t), Op: op}
	}
	return out
}

// Offsets extracts the virtual schedule from trace events.
func Offsets(evs []Event) []time.Duration {
	out := make([]time.Duration, len(evs))
	for i, e := range evs {
		out[i] = e.At()
	}
	return out
}

// WriteTrace writes events as NDJSON. Encoding is canonical (fixed field
// order, no indent), so identical schedules produce identical bytes.
func WriteTrace(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range evs {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("workload: trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses an NDJSON trace. Every malformed line is a
// line-numbered error; timestamps must be non-negative and
// non-decreasing (a trace is a schedule, not a log). Blank lines are
// allowed so hand-edited traces stay forgiving.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var out []Event
	line := 0
	prev := int64(-1)
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %v", line, err)
		}
		if e.AtNs < 0 {
			return nil, fmt.Errorf("workload: trace line %d: at_ns %d is negative", line, e.AtNs)
		}
		if e.AtNs < prev {
			return nil, fmt.Errorf("workload: trace line %d: at_ns %d goes backwards (previous %d)", line, e.AtNs, prev)
		}
		prev = e.AtNs
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace after line %d: %w", line, err)
	}
	return out, nil
}
