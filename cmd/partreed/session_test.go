package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// sessionRecord is the union of every server stream record, for test
// decoding.
type sessionRecord struct {
	Event     string      `json:"event"`
	Error     string      `json:"error"`
	N         int         `json:"n"`
	Step      int         `json:"step"`
	Mode      string      `json:"mode"`
	Reason    string      `json:"reason"`
	Fallback  bool        `json:"fallback"`
	Moved     int64       `json:"moved"`
	Churn     float64     `json:"churn"`
	DepthSkew float64     `json:"depth_skew"`
	Locks     int64       `json:"locks"`
	BuildNs   int64       `json:"build_ns"`
	Verified  bool        `json:"verified"`
	Steps     int         `json:"steps"`
	Fallbacks int         `json:"fallbacks"`
	Timing    *stepTiming `json:"timing"`
}

// sessionClient drives one /v1/session stream: requests go out through a
// pipe (so the body stays open for the session's life), responses come
// back on the same exchange.
type sessionClient struct {
	t    *testing.T
	pw   *io.PipeWriter
	enc  *json.Encoder
	resp *http.Response
	dec  *json.Decoder
}

// openSession opens a stream and consumes the "opened" record. A nil
// return means the server answered non-200 (the status is returned).
func openSession(t *testing.T, url string, open sessionOpen) (*sessionClient, int) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/session", pr)
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(pw)
	// The server reads the open record before answering with headers, so
	// it must be in flight before Do returns.
	go enc.Encode(open)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/session: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		pw.Close()
		return nil, resp.StatusCode
	}
	c := &sessionClient{t: t, pw: pw, enc: enc, resp: resp, dec: json.NewDecoder(resp.Body)}
	t.Cleanup(c.close)
	if r := c.recv(); r.Event != "opened" || r.N != open.Bodies {
		t.Fatalf("first record = %+v, want opened with n=%d", r, open.Bodies)
	}
	return c, resp.StatusCode
}

func (c *sessionClient) send(s sessionStep) {
	c.t.Helper()
	if err := c.enc.Encode(s); err != nil {
		c.t.Fatalf("sending step: %v", err)
	}
}

func (c *sessionClient) recv() sessionRecord {
	c.t.Helper()
	var r sessionRecord
	if err := c.dec.Decode(&r); err != nil {
		c.t.Fatalf("reading stream record: %v", err)
	}
	return r
}

func (c *sessionClient) close() {
	c.pw.Close()
	c.resp.Body.Close()
}

func metricsPage(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	return string(page)
}

// TestSessionStream100Steps is the tentpole e2e: 100 drifting timesteps
// against one resident tree, every step's tree differentially verified
// server-side, all but the first step served as incremental updates.
func TestSessionStream100Steps(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, drainTimeout: 10 * time.Second})
	open := sessionOpen{Procs: 2, Bodies: 3000, Seed: 1, Dt: 0.005, Check: true}
	c, _ := openSession(t, d.srv.URL(), open)

	const steps = 100
	rebuilds := 0
	for i := 0; i < steps; i++ {
		c.send(sessionStep{Drift: i > 0})
		r := c.recv()
		if r.Event != "step" {
			t.Fatalf("step %d: got %+v", i, r)
		}
		if r.Step != i {
			t.Fatalf("step %d: server says step %d", i, r.Step)
		}
		if !r.Verified {
			t.Fatalf("step %d: not verified", i)
		}
		if r.Mode == "rebuild" {
			rebuilds++
			if i == 0 && r.Reason != "first" {
				t.Fatalf("step 0: reason %q, want first", r.Reason)
			}
		} else if r.Mode != "update" {
			t.Fatalf("step %d: mode %q", i, r.Mode)
		}
	}
	if rebuilds != 1 {
		t.Fatalf("%d rebuild steps across a gentle drift, want exactly 1 (step 0)", rebuilds)
	}
	c.send(sessionStep{Close: true})
	if r := c.recv(); r.Event != "closed" || r.Steps != steps {
		t.Fatalf("close ack = %+v, want closed with steps=%d", r, steps)
	}

	pg := metricsPage(t, d.srv.URL())
	if v := metricValue(t, pg, "partree_session_opened_total"); v != 1 {
		t.Errorf("session_opened_total = %v, want 1", v)
	}
	if v := metricValue(t, pg, "partree_session_closed_total"); v != 1 {
		t.Errorf("session_closed_total = %v, want 1", v)
	}
	if v := metricValue(t, pg, "partree_session_unplanned_rebuilds_total"); v != 0 {
		t.Errorf("session_unplanned_rebuilds_total = %v, want 0", v)
	}
	// The per-step histogram saw both serving modes.
	for _, mode := range []string{"update", "rebuild"} {
		name := fmt.Sprintf(`partree_session_step_seconds_count{mode=%q}`, mode)
		if v := metricValue(t, pg, name); v < 1 {
			t.Errorf("%s = %v, want >= 1", name, v)
		}
	}
}

// TestSessionAdaptiveStream opens an adaptive session end to end: every
// step must verify exactly like a static session's, and the
// measured-cost feedback loop must leave its partree_adapt_* footprint
// on /metrics — a controller constructed, a correction and a recut per
// step, knob gauges published. Counter assertions are lower bounds
// because the adapt totals are package-global across the test binary.
func TestSessionAdaptiveStream(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, drainTimeout: 10 * time.Second})
	open := sessionOpen{Procs: 2, Bodies: 3000, Seed: 7, Dt: 0.005, Check: true, Adaptive: true}
	c, _ := openSession(t, d.srv.URL(), open)

	const steps = 12
	for i := 0; i < steps; i++ {
		c.send(sessionStep{Drift: i > 0})
		r := c.recv()
		if r.Event != "step" || r.Step != i {
			t.Fatalf("step %d: got %+v", i, r)
		}
		if !r.Verified {
			t.Fatalf("step %d: not verified", i)
		}
	}
	c.send(sessionStep{Close: true})
	if r := c.recv(); r.Event != "closed" || r.Steps != steps {
		t.Fatalf("close ack = %+v, want closed with steps=%d", r, steps)
	}

	pg := metricsPage(t, d.srv.URL())
	if v := metricValue(t, pg, "partree_adapt_sessions_total"); v < 1 {
		t.Errorf("adapt_sessions_total = %v, want >= 1", v)
	}
	if v := metricValue(t, pg, "partree_adapt_repartitions_total"); v < steps {
		t.Errorf("adapt_repartitions_total = %v, want >= %d", v, steps)
	}
	if v := metricValue(t, pg, "partree_adapt_corrections_total"); v < steps-1 {
		t.Errorf("adapt_corrections_total = %v, want >= %d", v, steps-1)
	}
	if v := metricValue(t, pg, "partree_adapt_leafcap"); v < 1 {
		t.Errorf("adapt_leafcap gauge = %v, want >= 1", v)
	}
	if v := metricValue(t, pg, "partree_adapt_effective_p"); v < 1 {
		t.Errorf("adapt_effective_p gauge = %v, want >= 1", v)
	}
}

// TestSessionFasterThanOneShotBuilds is the acceptance benchmark: a
// 100-step Plummer session must spend measurably less wall time than
// 100 one-shot /v1/build requests at equal n and P, because the session
// repairs a resident tree while every one-shot starts cold.
func TestSessionFasterThanOneShotBuilds(t *testing.T) {
	const n, p, steps = 10000, 2, 100
	d := startDaemon(t, daemonConfig{maxActive: 2, drainTimeout: 10 * time.Second})
	url := d.srv.URL()

	t0 := time.Now()
	for i := 0; i < steps; i++ {
		// Distinct seeds so the runner's memoizing result cache cannot
		// serve repeats — each request must really build.
		spec := map[string]any{
			"backend": "native", "algorithm": "LOCAL", "build_only": true,
			"procs": p, "bodies": n, "steps": 1, "seed": 1000 + i,
		}
		resp := postJSON(t, url+"/v1/build", spec)
		res := decodeResult(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || res.Failed() {
			t.Fatalf("one-shot %d: status %d, %s", i, resp.StatusCode, res.FailureMessage())
		}
	}
	oneShots := time.Since(t0)

	c, _ := openSession(t, url, sessionOpen{Procs: p, Bodies: n, Seed: 7, Dt: 0.005})
	t0 = time.Now()
	for i := 0; i < steps; i++ {
		c.send(sessionStep{Drift: i > 0})
		if r := c.recv(); r.Event != "step" {
			t.Fatalf("session step %d: %+v", i, r)
		}
	}
	session := time.Since(t0)
	c.send(sessionStep{Close: true})
	c.recv()

	t.Logf("100 one-shot builds: %v; 100-step session: %v (%.1fx)",
		oneShots, session, float64(oneShots)/float64(session))
	if session >= oneShots {
		t.Fatalf("session (%v) not faster than one-shots (%v)", session, oneShots)
	}
}

// TestSessionFallbackUnderHighChurn opens a session with a tight churn
// threshold and collapses the cluster until the auto-fallback policy
// must fire a SPACE rebuild — visible in-stream and in /metrics.
func TestSessionFallbackUnderHighChurn(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, drainTimeout: 10 * time.Second})
	open := sessionOpen{Procs: 2, Bodies: 3000, Seed: 3, Check: true}
	open.Policy.MaxChurnFrac = 0.1
	open.Policy.Streak = 2
	open.Policy.MinSteps = 3
	c, _ := openSession(t, d.srv.URL(), open)

	fallbacks := 0
	for i := 0; i < 20; i++ {
		c.send(sessionStep{Collapse: 0.4})
		r := c.recv()
		if r.Event != "step" || !r.Verified {
			t.Fatalf("step %d: %+v", i, r)
		}
		if r.Fallback {
			fallbacks++
			if r.Mode != "rebuild" || r.Reason != "requested" {
				t.Fatalf("fallback step %d: mode=%q reason=%q", i, r.Mode, r.Reason)
			}
			if r.Locks != 0 {
				t.Fatalf("fallback step %d took %d locks, want 0 (SPACE path)", i, r.Locks)
			}
		}
	}
	if fallbacks == 0 {
		t.Fatal("no auto-fallback rebuild across 20 high-churn steps")
	}
	c.send(sessionStep{Close: true})
	c.recv()

	pg := metricsPage(t, d.srv.URL())
	if v := metricValue(t, pg, "partree_session_fallbacks_total"); v != float64(fallbacks) {
		t.Errorf("session_fallbacks_total = %v, want %d", v, fallbacks)
	}
}

// TestSessionIdleEviction lets a session go quiet past its idle timeout
// and expects the server to end the stream with an eviction record.
func TestSessionIdleEviction(t *testing.T) {
	d := startDaemon(t, daemonConfig{
		maxActive: 2, leaseTick: 5 * time.Millisecond, drainTimeout: 10 * time.Second,
	})
	open := sessionOpen{Procs: 1, Bodies: 500, Seed: 1, IdleTimeoutMs: 50}
	c, _ := openSession(t, d.srv.URL(), open)
	c.send(sessionStep{})
	if r := c.recv(); r.Event != "step" {
		t.Fatalf("step: %+v", r)
	}
	// Go quiet. The janitor must evict and the server must say so
	// in-stream before closing.
	r := c.recv()
	if r.Event != "error" || r.Error != "session closed: idle timeout" {
		t.Fatalf("eviction record = %+v", r)
	}
	if r = c.recv(); r.Event != "closed" || r.Reason != "idle timeout" {
		t.Fatalf("final record = %+v", r)
	}
	if v := metricValue(t, metricsPage(t, d.srv.URL()), "partree_session_evicted_total"); v != 1 {
		t.Errorf("session_evicted_total = %v, want 1", v)
	}
}

// TestSessionLeaseExhaustion503 checks lease capacity surfaces as a 503
// before the stream opens, and frees up when a session closes.
func TestSessionLeaseExhaustion503(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, maxSessions: 1, drainTimeout: 10 * time.Second})
	open := sessionOpen{Procs: 1, Bodies: 500, Seed: 1}
	c, _ := openSession(t, d.srv.URL(), open)
	if _, code := openSession(t, d.srv.URL(), open); code != http.StatusServiceUnavailable {
		t.Fatalf("second session: status %d, want 503", code)
	}
	c.send(sessionStep{Close: true})
	c.recv()
	// The lease is released on handler exit; capacity returns shortly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, code := openSession(t, d.srv.URL(), open); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease capacity never freed after session close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionDrainClosesStreams checks graceful drain: in-flight
// sessions get an in-stream notice and a clean close, new sessions get
// 503, and the drain itself completes.
func TestSessionDrainClosesStreams(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, drainTimeout: time.Minute})
	open := sessionOpen{Procs: 1, Bodies: 500, Seed: 1}
	c, _ := openSession(t, d.srv.URL(), open)
	c.send(sessionStep{})
	if r := c.recv(); r.Event != "step" {
		t.Fatalf("step: %+v", r)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- d.drain(context.Background()) }()

	r := c.recv()
	if r.Event != "error" || r.Error != "session closed: draining" {
		t.Fatalf("drain record = %+v", r)
	}
	if r = c.recv(); r.Event != "closed" || r.Reason != "draining" {
		t.Fatalf("final record = %+v", r)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}
