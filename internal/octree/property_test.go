package octree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"partree/internal/vec"
)

// randomSystem is a generated body set for property tests: arbitrary
// cluster structure, including coincident points and extreme aspect
// ratios, to stress the builders harder than a Plummer model does.
type randomSystem struct {
	Pos  []vec.V3
	Mass []float64
}

// Generate implements quick.Generator.
func (randomSystem) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(400)
	s := randomSystem{Pos: make([]vec.V3, n), Mass: make([]float64, n)}
	// A few cluster centers with wildly different scales.
	nc := 1 + r.Intn(4)
	centers := make([]vec.V3, nc)
	scales := make([]float64, nc)
	for i := range centers {
		centers[i] = vec.V3{X: r.NormFloat64() * 10, Y: r.NormFloat64() * 10, Z: r.NormFloat64() * 10}
		scales[i] = math.Pow(10, float64(r.Intn(5))-2) // 1e-2 .. 1e2
	}
	for i := range s.Pos {
		c := r.Intn(nc)
		s.Pos[i] = centers[c].Add(vec.V3{
			X: r.NormFloat64() * scales[c],
			Y: r.NormFloat64() * scales[c],
			Z: r.NormFloat64() * scales[c],
		})
		if r.Intn(20) == 0 && i > 0 {
			s.Pos[i] = s.Pos[i-1] // deliberate coincident bodies
		}
		s.Mass[i] = r.Float64() + 0.01
	}
	return reflect.ValueOf(s)
}

func TestPropertySerialBuildInvariants(t *testing.T) {
	f := func(sys randomSystem) bool {
		tr := BuildSerial(sys.Pos, 4)
		d := BodyData{Pos: sys.Pos, Mass: sys.Mass}
		ComputeMomentsSerial(tr, d)
		return Check(tr, d, CheckOptions{Canonical: true, Moments: true}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMassConservation(t *testing.T) {
	f := func(sys randomSystem) bool {
		tr := BuildSerial(sys.Pos, 8)
		d := BodyData{Pos: sys.Pos, Mass: sys.Mass}
		ComputeMomentsSerial(tr, d)
		var want float64
		for _, m := range sys.Mass {
			want += m
		}
		root := tr.Store.Cell(tr.Root)
		return feq(root.Mass, want, 1e-9) && int(root.NBody) == len(sys.Pos)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyParallelMomentsMatchSerial(t *testing.T) {
	f := func(sys randomSystem, workers uint8) bool {
		w := 1 + int(workers)%8
		d := BodyData{Pos: sys.Pos, Mass: sys.Mass}
		a := BuildSerial(sys.Pos, 4)
		ComputeMomentsSerial(a, d)
		b := BuildSerial(sys.Pos, 4)
		ComputeMomentsParallel(b, d, w)
		ra, rb := a.Store.Cell(a.Root), b.Store.Cell(b.Root)
		return feq(ra.Mass, rb.Mass, 1e-12) && veq(ra.COM, rb.COM, 1e-9) &&
			ra.NBody == rb.NBody && ra.Cost == rb.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLeafDepthConsistency(t *testing.T) {
	// The cube of every node halves exactly per level: size must equal
	// rootSize / 2^depth.
	f := func(sys randomSystem) bool {
		tr := BuildSerial(sys.Pos, 4)
		root := tr.RootCube().Size
		ok := true
		Walk(tr, func(r Ref, depth int) bool {
			var size float64
			if r.IsLeaf() {
				size = tr.Store.Leaf(r).Cube.Size
			} else {
				size = tr.Store.Cell(r).Cube.Size
			}
			want := root / math.Pow(2, float64(depth))
			if !feq(size, want, 1e-12) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
