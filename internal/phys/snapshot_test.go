package phys

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	a := Generate(ModelTwoClusters, 1234, 9)
	a.Acc[5].X = 3.25
	a.Cost[7] = 42
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != a.N() {
		t.Fatalf("count %d != %d", b.N(), a.N())
	}
	for i := 0; i < a.N(); i++ {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] || a.Acc[i] != b.Acc[i] ||
			a.Mass[i] != b.Mass[i] || a.Cost[i] != b.Cost[i] {
			t.Fatalf("body %d differs after round trip", i)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	a := Generate(ModelPlummer, 256, 3)
	if err := a.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 256 || b.Pos[100] != a.Pos[100] {
		t.Fatal("file round trip corrupted data")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := ReadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	a := Generate(ModelUniform, 100, 1)
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadSnapshot(bytes.NewReader(cut)); err == nil {
		t.Fatal("accepted truncated snapshot")
	}
}

func TestSnapshotRejectsCorruptValues(t *testing.T) {
	a := Generate(ModelUniform, 10, 1)
	a.Pos[3].X = math.NaN()
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("accepted NaN positions")
	}
}

func TestSnapshotEmptySystem(t *testing.T) {
	var buf bytes.Buffer
	if err := NewBodies(0).WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 0 {
		t.Fatalf("empty snapshot produced %d bodies", b.N())
	}
}
