// Benchmarks regenerating each of the paper's tables and figures at
// reduced scale, plus native-execution and ablation benchmarks. Metrics
// reported beyond ns/op carry the experiment's headline number (speedup,
// tree-build share, lock counts) so `go test -bench` output documents the
// reproduced shapes directly. cmd/paperrepro runs the same experiments at
// full scale with formatted tables.
package partree_test

import (
	"fmt"
	"io"
	"testing"

	"partree/internal/core"
	"partree/internal/harness"
	"partree/internal/memsim"
	"partree/internal/mp"
	"partree/internal/nbody"
	"partree/internal/phys"
	"partree/internal/simalg"
)

const (
	benchN = 4096 // bodies per benchmarked run
	benchP = 16   // simulated processors (the paper's common count)
)

func benchBodies(n int) *phys.Bodies { return phys.Generate(phys.ModelPlummer, n, 1998) }

func simCfg(pl memsim.Platform, p int) simalg.Config {
	return simalg.Config{Platform: pl, P: p, LeafCap: 8, WarmSteps: 1, MeasuredSteps: 1}
}

func seqCfg(pl memsim.Platform) simalg.Config {
	c := simCfg(pl, 1)
	c.Sequential = true
	return c
}

// runExperiment drives a harness experiment for b.N iterations.
func runExperiment(b *testing.B, id string) {
	e, ok := harness.Find(id)
	if !ok {
		b.Fatalf("experiment %s not found", id)
	}
	opts := harness.Options{Sizes: []int{benchN}, MeasuredSteps: 1}
	for i := 0; i < b.N; i++ {
		s := harness.NewSession(opts)
		e.Run(s, io.Discard)
	}
}

// ---- One benchmark per table and figure ----------------------------------

func BenchmarkTable1SequentialTime(b *testing.B)    { runExperiment(b, "T1") }
func BenchmarkFig6ChallengeSpeedup(b *testing.B)    { runExperiment(b, "F6") }
func BenchmarkFig7ChallengeTreeShare(b *testing.B)  { runExperiment(b, "F7") }
func BenchmarkFig8OriginSpeedup(b *testing.B)       { runExperiment(b, "F8") }
func BenchmarkTable2OriginBarrier(b *testing.B)     { runExperiment(b, "T2") }
func BenchmarkFig9OriginTreeSpeedup(b *testing.B)   { runExperiment(b, "F9") }
func BenchmarkFig10OriginScaling(b *testing.B)      { runExperiment(b, "F10") }
func BenchmarkFig11OriginTreeShare(b *testing.B)    { runExperiment(b, "F11") }
func BenchmarkFig12ParagonSpeedup(b *testing.B)     { runExperiment(b, "F12") }
func BenchmarkFig13TyphoonHLRC(b *testing.B)        { runExperiment(b, "F13") }
func BenchmarkFig14TyphoonTreeSpeedup(b *testing.B) { runExperiment(b, "F14") }
func BenchmarkS15TyphoonFineGrain(b *testing.B)     { runExperiment(b, "S15") }
func BenchmarkFig15LockCounts(b *testing.B)         { runExperiment(b, "F15") }

// ---- Per-algorithm simulated runs (the figures' underlying points) -------

// BenchmarkSimWholeApp reports each algorithm's simulated whole-application
// speedup and tree share on each platform family at the bench scale.
func BenchmarkSimWholeApp(b *testing.B) {
	bodies := benchBodies(benchN)
	platforms := []memsim.Platform{
		memsim.Challenge(),
		memsim.Origin2000(benchP),
		memsim.TyphoonHLRC(),
		memsim.TyphoonSC(),
		memsim.Paragon(),
	}
	for _, pl := range platforms {
		seq := simalg.Run(core.LOCAL, bodies, seqCfg(pl))
		for _, alg := range core.Algorithms() {
			b.Run(fmt.Sprintf("%s/%v", pl.Name, alg), func(b *testing.B) {
				var last simalg.Outcome
				for i := 0; i < b.N; i++ {
					last = simalg.Run(alg, bodies, simCfg(pl, benchP))
				}
				b.ReportMetric(seq.TotalNs()/last.TotalNs(), "speedup")
				b.ReportMetric(100*last.TreeShare(), "tree%")
				b.ReportMetric(float64(last.TotalLocks()), "locks")
			})
		}
	}
}

// ---- Native benchmarks (real goroutines on this machine) -----------------

func BenchmarkNativeTreeBuild(b *testing.B) {
	bodies := benchBodies(65536)
	for _, alg := range core.Algorithms() {
		for _, p := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%v/p=%d", alg, p), func(b *testing.B) {
				bld := core.New(alg, core.Config{P: p, LeafCap: 8})
				in := &core.Input{Bodies: bodies, Assign: core.SpatialAssign(bodies, p)}
				b.ResetTimer()
				var locks int64
				for i := 0; i < b.N; i++ {
					in.Step = i
					_, m := bld.Build(in)
					locks = m.TotalLocks()
				}
				b.ReportMetric(float64(locks), "locks")
			})
		}
	}
}

func BenchmarkNativeStep(b *testing.B) {
	for _, alg := range core.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			opts := nbody.DefaultOptions()
			opts.N = 16384
			opts.P = 8
			opts.Alg = alg
			sim := nbody.New(opts)
			sim.Step() // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

// BenchmarkMessagePassingStep runs the native ORB+LET message-passing
// baseline (extension X3) and reports its communication volume.
func BenchmarkMessagePassingStep(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			bodies := benchBodies(16384)
			var bytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := mp.Step(bodies, mp.Options{P: p})
				bytes = st.TotalBytes()
			}
			b.ReportMetric(float64(bytes), "commBytes")
		})
	}
}

// ---- Ablations (DESIGN.md §5) --------------------------------------------

// BenchmarkAblationLeafCapacity sweeps k: the paper notes that allowing
// multiple bodies per leaf "essentially eliminated the difference between
// tree-building algorithms" on hardware-coherent machines; k=1 restores it.
func BenchmarkAblationLeafCapacity(b *testing.B) {
	bodies := benchBodies(benchN)
	pl := memsim.Origin2000(benchP)
	for _, k := range []int{1, 4, 8, 16} {
		for _, alg := range []core.Algorithm{core.LOCAL, core.PARTREE} {
			b.Run(fmt.Sprintf("k=%d/%v", k, alg), func(b *testing.B) {
				cfg := simCfg(pl, benchP)
				cfg.LeafCap = k
				var last simalg.Outcome
				for i := 0; i < b.N; i++ {
					last = simalg.Run(alg, bodies, cfg)
				}
				b.ReportMetric(float64(last.TotalLocks()), "locks")
				b.ReportMetric(100*last.TreeShare(), "tree%")
			})
		}
	}
}

// BenchmarkAblationSpaceThreshold sweeps SPACE's subdivision threshold:
// the paper's load-balance versus partitioning-time trade-off.
func BenchmarkAblationSpaceThreshold(b *testing.B) {
	bodies := benchBodies(benchN)
	pl := memsim.TyphoonHLRC()
	for _, th := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("th=%d", th), func(b *testing.B) {
			cfg := simCfg(pl, benchP)
			cfg.SpaceThreshold = th
			var last simalg.Outcome
			for i := 0; i < b.N; i++ {
				last = simalg.Run(core.SPACE, bodies, cfg)
			}
			b.ReportMetric(last.TreeNs/1e6, "treeMs")
		})
	}
}

// BenchmarkAblationTheta sweeps the opening angle, which sets how heavily
// the force phase dominates and therefore how visible tree building is.
func BenchmarkAblationTheta(b *testing.B) {
	bodies := benchBodies(benchN)
	pl := memsim.TyphoonHLRC()
	for _, theta := range []float64{0.5, 0.8, 1.0, 1.5} {
		b.Run(fmt.Sprintf("theta=%.1f", theta), func(b *testing.B) {
			cfg := simCfg(pl, benchP)
			cfg.Theta = theta
			var last simalg.Outcome
			for i := 0; i < b.N; i++ {
				last = simalg.Run(core.LOCAL, bodies, cfg)
			}
			b.ReportMetric(100*last.TreeShare(), "tree%")
		})
	}
}

// BenchmarkAblationGranularity sweeps the SVM page size: larger pages mean
// more false sharing, more diffs, and costlier faults.
func BenchmarkAblationGranularity(b *testing.B) {
	bodies := benchBodies(benchN)
	for _, pageSize := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("page=%d", pageSize), func(b *testing.B) {
			pl := memsim.TyphoonHLRC()
			pl.PageSize = pageSize
			var last simalg.Outcome
			for i := 0; i < b.N; i++ {
				last = simalg.Run(core.LOCAL, bodies, simCfg(pl, benchP))
			}
			b.ReportMetric(float64(last.Protocol.PageFaults), "faults")
			b.ReportMetric(100*last.TreeShare(), "tree%")
		})
	}
}

// BenchmarkAblationLatency halves/doubles the corrupted-in-scrape message
// latency to show the qualitative results are insensitive (DESIGN.md §4).
func BenchmarkAblationLatency(b *testing.B) {
	bodies := benchBodies(benchN)
	for _, scale := range []float64{0.5, 1, 2} {
		b.Run(fmt.Sprintf("msg=x%.1f", scale), func(b *testing.B) {
			pl := memsim.TyphoonHLRC()
			pl.MsgNs *= scale
			seq := simalg.Run(core.LOCAL, bodies, seqCfg(pl))
			var local, space simalg.Outcome
			for i := 0; i < b.N; i++ {
				local = simalg.Run(core.LOCAL, bodies, simCfg(pl, benchP))
				space = simalg.Run(core.SPACE, bodies, simCfg(pl, benchP))
			}
			b.ReportMetric(seq.TotalNs()/local.TotalNs(), "localSpeedup")
			b.ReportMetric(seq.TotalNs()/space.TotalNs(), "spaceSpeedup")
		})
	}
}
