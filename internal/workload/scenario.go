// Package workload opens the scenario axis the evaluation was missing:
// every sweep used to be uniform-or-Plummer at fixed n, which hides the
// load-imbalance pathologies that skewed, time-evolving distributions
// expose in tree builders. The package has two halves:
//
//   - Physical scenarios (this file + evolve.go): parameterized initial
//     conditions layered on internal/phys — disk galaxy, colliding
//     clusters with a tunable impact parameter, hierarchical clustering —
//     plus a time-evolving wrapper that advances any scenario through
//     leapfrog steps so churn profiles stress UPDATE's incremental path
//     and SPACE/costzones load balance.
//
//   - Traffic arrival processes (arrival.go + trace.go): Poisson, bursty
//     (on/off Markov), diurnal (multi-period sinusoid) streams scheduled
//     in virtual time, and a replayable NDJSON trace format, driving a
//     live partreed through cmd/loadgen.
//
// Everything is a pure function of (params, n, seed): a fixed seed is
// byte-reproducible, which is what makes loadgen reports deterministic
// and the hypothesis experiments replayable.
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"partree/internal/phys"
)

// Scenario names one parameterized physical distribution, optionally
// wrapped in leapfrog time evolution. The zero value of every option
// selects the generator's documented default, so the canonical Name of
// "disk" really is "disk".
type Scenario struct {
	// Kind is one of ScenarioNames(): plummer, uniform, twoclusters,
	// disk, collision, hierarchical.
	Kind string
	// Opts holds the generator's numeric options (e.g. impact, zscale),
	// in the generator's units. Unset keys select defaults.
	Opts map[string]float64
	// EvolveSteps > 0 wraps the scenario in time evolution: the
	// generated bodies advance that many leapfrog steps of EvolveDt
	// before being returned, so the distribution is the churned,
	// dynamically relaxing one rather than the pristine initial state.
	EvolveSteps int
	EvolveDt    float64
}

// scenarioOpts lists the legal option keys per kind, for parse-time
// validation (a typo must be an error, not a silently ignored knob).
var scenarioOpts = map[string][]string{
	"plummer":      {},
	"uniform":      {},
	"twoclusters":  {},
	"disk":         {"rscale", "zscale", "dispersion"},
	"collision":    {"sep", "impact", "speed"},
	"hierarchical": {"levels", "branch", "contract"},
}

// ScenarioNames lists the valid scenario kinds.
func ScenarioNames() []string {
	out := make([]string, 0, len(scenarioOpts))
	for k := range scenarioOpts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseScenario parses a CLI scenario spec: a kind, optionally followed
// by colon-separated k=v options, e.g.
//
//	disk
//	collision:impact=1.5,speed=0.4
//	hierarchical:levels=3,branch=8,evolve=10,dt=0.02
//
// The pseudo-options evolve (step count) and dt (step size) wrap any
// kind in leapfrog time evolution.
func ParseScenario(s string) (Scenario, error) {
	kind, rest, _ := strings.Cut(s, ":")
	kind = strings.TrimSpace(kind)
	legal, ok := scenarioOpts[kind]
	if !ok {
		return Scenario{}, fmt.Errorf("workload: unknown scenario %q (valid: %s)",
			kind, strings.Join(ScenarioNames(), ", "))
	}
	sc := Scenario{Kind: kind}
	if rest == "" {
		return sc, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found {
			return Scenario{}, fmt.Errorf("workload: scenario option %q is not k=v", kv)
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Scenario{}, fmt.Errorf("workload: scenario option %s: %v", k, err)
		}
		switch k {
		case "evolve":
			sc.EvolveSteps = int(x)
		case "dt":
			sc.EvolveDt = x
		default:
			if !contains(legal, k) {
				return Scenario{}, fmt.Errorf("workload: scenario %s has no option %q (valid: %s, evolve, dt)",
					kind, k, strings.Join(append([]string{}, legal...), ", "))
			}
			if sc.Opts == nil {
				sc.Opts = map[string]float64{}
			}
			sc.Opts[k] = x
		}
	}
	return sc, nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Name renders the scenario canonically (options sorted), so reports and
// cache keys are stable regardless of how the spec was typed.
func (sc Scenario) Name() string {
	var b strings.Builder
	b.WriteString(sc.Kind)
	keys := make([]string, 0, len(sc.Opts))
	for k := range sc.Opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sep := ":"
	for _, k := range keys {
		fmt.Fprintf(&b, "%s%s=%g", sep, k, sc.Opts[k])
		sep = ","
	}
	if sc.EvolveSteps > 0 {
		fmt.Fprintf(&b, "%sevolve=%d,dt=%g", sep, sc.EvolveSteps, sc.StepDt())
	}
	return b.String()
}

// StepDt returns the scenario's leapfrog timestep (the documented
// default when EvolveDt is unset) — also the dt a client-motion loadgen
// session advances by between streamed frames.
func (sc Scenario) StepDt() float64 {
	if sc.EvolveDt > 0 {
		return sc.EvolveDt
	}
	return 0.025
}

func (sc Scenario) opt(key string, def float64) float64 {
	if v, ok := sc.Opts[key]; ok {
		return v
	}
	return def
}

// Generate builds the scenario's n-body system, deterministic in seed.
func (sc Scenario) Generate(n int, seed int64) (*phys.Bodies, error) {
	var b *phys.Bodies
	switch sc.Kind {
	case "plummer":
		b = phys.Generate(phys.ModelPlummer, n, seed)
	case "uniform":
		b = phys.Generate(phys.ModelUniform, n, seed)
	case "twoclusters":
		b = phys.Generate(phys.ModelTwoClusters, n, seed)
	case "disk":
		b = phys.Disk(n, seed, phys.DiskParams{
			ScaleLength: sc.opt("rscale", 0),
			ScaleHeight: sc.opt("zscale", 0),
			Dispersion:  sc.opt("dispersion", 0),
		})
	case "collision":
		b = phys.Collision(n, seed, phys.CollisionParams{
			Separation: sc.opt("sep", 0),
			Impact:     sc.opt("impact", 0),
			Speed:      sc.opt("speed", 0),
		})
	case "hierarchical":
		b = phys.Hierarchical(n, seed, phys.HierarchicalParams{
			Levels:   int(sc.opt("levels", 0)),
			Branch:   int(sc.opt("branch", 0)),
			Contract: sc.opt("contract", 0),
		})
	default:
		return nil, fmt.Errorf("workload: unknown scenario %q (valid: %s)",
			sc.Kind, strings.Join(ScenarioNames(), ", "))
	}
	if sc.EvolveSteps > 0 {
		Evolve(b, sc.EvolveSteps, sc.StepDt())
	}
	return b, nil
}

// ServerModel reports the phys model name when the scenario can be
// regenerated server-side from (model, n, seed) alone — no non-default
// options and no evolution. Scenarios that fail this test need their
// positions streamed by the client (loadgen's client-motion path).
func (sc Scenario) ServerModel() (string, bool) {
	if len(sc.Opts) > 0 || sc.EvolveSteps > 0 {
		return "", false
	}
	switch sc.Kind {
	case "plummer", "uniform", "twoclusters", "disk", "hierarchical":
		return sc.Kind, true
	case "collision":
		// Default collision is head-on at the twoclusters geometry, which
		// the server knows by that name.
		return "twoclusters", true
	}
	return "", false
}

// HalfCentroids returns the centroids of the first and second halves of
// the body set — for Collision scenarios these are the two clusters, so
// diagnostics (and the colliding-clusters test) can track their
// approach over evolution steps.
func HalfCentroids(b *phys.Bodies) (a, c [3]float64) {
	n := b.N()
	n1 := n / 2
	if n1 == 0 {
		return
	}
	var av, cv [3]float64
	for i := 0; i < n1; i++ {
		av[0] += b.Pos[i].X
		av[1] += b.Pos[i].Y
		av[2] += b.Pos[i].Z
	}
	for i := n1; i < n; i++ {
		cv[0] += b.Pos[i].X
		cv[1] += b.Pos[i].Y
		cv[2] += b.Pos[i].Z
	}
	for k := 0; k < 3; k++ {
		av[k] /= float64(n1)
		cv[k] /= float64(n - n1)
	}
	return av, cv
}

// virtual-time pacing helper shared by loadgen and tests: Pace converts
// a virtual schedule offset into the real delay to wait, compressing
// virtual time by speedup (0 or negative = replay as fast as possible
// while preserving order).
func Pace(offset, elapsed time.Duration, speedup float64) time.Duration {
	if speedup <= 0 {
		return 0
	}
	target := time.Duration(float64(offset) / speedup)
	if target <= elapsed {
		return 0
	}
	return target - elapsed
}
