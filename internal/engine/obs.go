package engine

import (
	"sync/atomic"

	"partree/internal/adapt"
	"partree/internal/obs"
)

// RegisterObs exposes the pool's live state on reg: session lifecycle
// counters, the admission gauges, and the partree_store_* gauges
// aggregating octree storage retained across every pooled session —
// exactly the memory session pooling trades for allocation-free steady
// state, so a dashboard can see what the pool holds. Call once per
// (engine, registry) pair.
func (e *Engine) RegisterObs(reg *obs.Registry) error {
	ctr := func(name, help string, v *atomic.Int64) obs.Collector {
		return obs.NewCounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	return reg.Register(
		ctr("partree_engine_sessions_created_total", "Builder sessions constructed (pool misses).", &e.created),
		ctr("partree_engine_sessions_reused_total", "Acquires served by a pooled session (pool hits).", &e.reused),
		ctr("partree_engine_sessions_evicted_total", "Idle sessions evicted past the MaxIdle bound.", &e.evicted),
		obs.NewGaugeFunc("partree_engine_sessions_idle", "Sessions pooled and ready for reuse.",
			func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				return float64(e.lru.Len())
			}),
		obs.NewGaugeFunc("partree_engine_sessions_in_use", "Sessions exclusively held by running builds.",
			func() float64 { return float64(e.inUse.Load()) }),
		obs.NewGaugeFunc("partree_engine_queue_depth", "Acquires admitted and waiting for a build slot.",
			func() float64 { return float64(e.queued.Load()) }),
		obs.NewGaugeFunc("partree_engine_max_active", "Concurrent-build bound (admission capacity).",
			func() float64 { return float64(e.opts.MaxActive) }),
		obs.NewGaugeFunc("partree_engine_draining", "1 once Drain has begun, 0 before.",
			func() float64 {
				if e.isDraining() {
					return 1
				}
				return 0
			}),
		ctr("partree_session_opened_total", "Streaming session leases opened.", &e.leasesOpened),
		ctr("partree_session_closed_total", "Session leases closed by their owner (or by drain).", &e.leasesClosed),
		ctr("partree_session_evicted_total", "Session leases evicted by the idle-deadline janitor.", &e.leasesEvicted),
		ctr("partree_session_rejected_total", "Session opens rejected (lease capacity or draining).", &e.leaseRejected),
		ctr("partree_session_fallbacks_total", "Policy-triggered SPACE rebuilds inside live sessions.", &e.leaseFallbacks),
		ctr("partree_session_unplanned_rebuilds_total", "Fresh rebuilds on steps that expected incremental repair.", &e.leaseUnplanned),
		obs.NewGaugeFunc("partree_session_active", "Session leases currently open.",
			func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				return float64(len(e.leases))
			}),
		obs.NewGaugeFunc("partree_session_max_leases", "Lease capacity (MaxLeases; -1 = unbounded).",
			func() float64 { return float64(e.opts.MaxLeases) }),
		e.stepSeconds,
		rejectedCollector{e},
		storeCollector{e},
		adaptCollector{},
	)
}

// rejectedCollector renders the rejection counters as one family labeled
// by reason, so alerting can key off any rejection without enumerating.
type rejectedCollector struct{ e *Engine }

// Collect implements obs.Collector.
func (c rejectedCollector) Collect(out []obs.Family) []obs.Family {
	return append(out, obs.Family{
		Name: "partree_engine_rejected_total",
		Help: "Acquires rejected by admission control, by reason.",
		Type: obs.TypeCounter,
		Series: []obs.Series{
			{Labels: []obs.Label{{Name: "reason", Value: "cancelled"}}, Value: float64(c.e.rejectedCancelled.Load())},
			{Labels: []obs.Label{{Name: "reason", Value: "draining"}}, Value: float64(c.e.rejectedDraining.Load())},
			{Labels: []obs.Label{{Name: "reason", Value: "queue_full"}}, Value: float64(c.e.rejectedFull.Load())},
		},
	})
}

// adaptCollector renders internal/adapt's package totals (the
// measured-cost feedback loop behind adaptive sessions) as the
// partree_adapt_* families. adapt keeps plain atomics with no obs
// dependency, so exposition lives here with the rest of the daemon's
// families.
type adaptCollector struct{}

// Collect implements obs.Collector.
func (adaptCollector) Collect(out []obs.Family) []obs.Family {
	s := adapt.Snapshot()
	fam := func(name, help string, typ obs.Type, v float64) obs.Family {
		return obs.Family{Name: name, Help: help, Type: typ,
			Series: []obs.Series{{Value: v}}}
	}
	return append(out,
		fam("partree_adapt_sessions_total", "Adaptive controllers constructed.",
			obs.TypeCounter, float64(s.Sessions)),
		fam("partree_adapt_corrections_total", "Measured-cost ledger updates applied to traced steps.",
			obs.TypeCounter, float64(s.Corrections)),
		fam("partree_adapt_knob_changes_total", "Auto-tuner decisions that moved a knob.",
			obs.TypeCounter, float64(s.KnobChanges)),
		fam("partree_adapt_repartitions_total", "Measured-cost costzones cuts served to steppers.",
			obs.TypeCounter, float64(s.Repartitions)),
		fam("partree_adapt_skew_before", "Latest measured max/mean insert-time skew before correction.",
			obs.TypeGauge, s.SkewBefore),
		fam("partree_adapt_skew_after", "Latest predicted max/mean cost skew of the corrected partition.",
			obs.TypeGauge, s.SkewAfter),
		fam("partree_adapt_leafcap", "Latest tuned leaf capacity.",
			obs.TypeGauge, float64(s.LeafCap)),
		fam("partree_adapt_space_threshold", "Latest tuned SPACE partition threshold.",
			obs.TypeGauge, float64(s.SpaceThreshold)),
		fam("partree_adapt_effective_p", "Latest tuned effective processor count.",
			obs.TypeGauge, float64(s.EffectiveP)),
	)
}

// storeCollector aggregates octree.Store.Stats over every live session
// at scrape time (atomic loads only; cheap relative to a scrape).
type storeCollector struct{ e *Engine }

// Collect implements obs.Collector.
func (c storeCollector) Collect(out []obs.Family) []obs.Family {
	st := c.e.Stats().Store
	gauge := func(name, help string, v int64) obs.Family {
		return obs.Family{Name: name, Help: help, Type: obs.TypeGauge,
			Series: []obs.Series{{Value: float64(v)}}}
	}
	return append(out,
		gauge("partree_store_cells", "Live cells across pooled sessions' stores.", st.Cells),
		gauge("partree_store_leaves", "Live leaves across pooled sessions' stores.", st.Leaves),
		gauge("partree_store_cell_chunks", "Installed cell chunks retained across resets.", st.CellChunks),
		gauge("partree_store_leaf_chunks", "Installed leaf chunks retained across resets.", st.LeafChunks),
		gauge("partree_store_retained_bytes", "Chunk memory retained by pooled sessions' stores.", st.RetainedBytes),
	)
}
