// Package verify is the differential-testing and invariant-audit layer
// behind the -check flag: every tree a parallel builder produces can be
// compared structurally against the sequential reference build
// (octree.BuildSerial), and every build's core.Metrics audited against
// conservation laws. The paper's timing comparisons are only meaningful
// because all five algorithms produce the same octree as the sequential
// code; this package turns that assumption into an always-on oracle
// (Dubinski's parallel tree code validates against a serial build the
// same way).
//
// The checks are layered:
//
//   - Tree: structural invariants (every body in exactly one live leaf,
//     body-in-cube containment, parent/child link consistency, octant
//     sub-cube geometry, no reachable retired nodes, leaf-cap respected)
//     plus, for canonical builds, node-for-node equality with the serial
//     reference — same cells, same leaf body-sets up to ordering — and,
//     optionally, moments recomputation.
//   - Metrics: per-processor counter conservation (BodiesBuilt sums to
//     n, allocation counters consistent with the live tree, SPACE's
//     zero-lock guarantee).
//   - Build: Tree + Metrics for one Builder.Build outcome.
//   - Algorithm: a self-contained companion check that builds a fresh
//     tree with the given algorithm and verifies it (what simulated
//     specs run, since the platform simulator's tree is internal).
//
// UPDATE repairs the previous step's tree rather than rebuilding, so
// after step 0 its tree is legitimately non-canonical (cells are never
// collapsed); differential equality is only demanded of rebuilding
// steps, structural invariants always.
package verify

import (
	"fmt"

	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/phys"
)

// Options select which layers Tree verifies.
type Options struct {
	// Canonical demands node-for-node equality with the serial reference
	// tree (and minimality). True for every rebuilding build; false for
	// UPDATE's repair steps.
	Canonical bool
	// Moments additionally recomputes Mass/COM/NBody/Cost from the body
	// data and compares within Tol.
	Moments bool
	// Tol is the relative tolerance for moment comparison (default 1e-9).
	Tol float64
}

// Canonical reports whether a build of alg at the given time step must
// reproduce the serial reference tree exactly: every algorithm rebuilds
// from scratch except UPDATE after its first step.
func Canonical(alg core.Algorithm, step int) bool {
	return alg != core.UPDATE || step == 0
}

// Tree verifies one built tree against the body data it was built from.
// It checks the structural invariants, and — when opt.Canonical — builds
// the serial reference over the same positions and demands structural
// equality (same cells, same leaf body-sets up to ordering) and matching
// live node counts. The first violation found is returned.
func Tree(t *octree.Tree, bodies *phys.Bodies, opt Options) error {
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	d := octree.BodyData{Pos: bodies.Pos, Mass: bodies.Mass, Cost: bodies.Cost}
	if err := octree.Check(t, d, octree.CheckOptions{
		Canonical: opt.Canonical, Moments: opt.Moments, Tol: opt.Tol,
	}); err != nil {
		return fmt.Errorf("verify: invariants: %w", err)
	}
	if !opt.Canonical {
		return nil
	}
	ref := octree.BuildSerial(bodies.Pos, t.Store.LeafCap)
	if err := octree.Equal(t, ref); err != nil {
		return fmt.Errorf("verify: differs from serial reference: %w", err)
	}
	// Equality implies matching shape; pin the aggregate counts too so a
	// regression in Equal itself cannot silently pass.
	got, want := octree.CollectStats(t), octree.CollectStats(ref)
	if got.Cells != want.Cells || got.Leaves != want.Leaves || got.MaxDepth != want.MaxDepth {
		return fmt.Errorf("verify: stats diverge from serial reference: %dc/%dl d%d vs %dc/%dl d%d",
			got.Cells, got.Leaves, got.MaxDepth, want.Cells, want.Leaves, want.MaxDepth)
	}
	return nil
}

// Metrics audits one build's counters against the conservation laws the
// builders guarantee. t is the tree the metrics describe, n the number of
// bodies loaded, rebuild whether this build started from an empty store
// (every algorithm's every step except UPDATE's repair steps, whose
// counters are incremental and carry no whole-tree laws).
//
// Laws, in order of generality:
//
//  1. Σ_p BodiesBuilt == n — every body loaded exactly once, whichever
//     processor did it (all algorithms, all steps).
//  2. SPACE takes zero tree-build locks and therefore zero retries (the
//     algorithm's entire point).
//  3. Rebuilds allocate every live node this step: TotalLeaves ≥ live
//     leaves, and TotalCells ≥ live cells − 1 (the root is allocated by
//     the builder directly, outside the per-processor counters).
//  4. ORIG, LOCAL, and SPACE never discard an allocated cell, so for
//     them law 3's cell bound is an equality; PARTREE drops local roots
//     and cells whose subspace already exists globally, so only the
//     inequality holds.
//  5. For ORIG and LOCAL every allocated cell replaced exactly one
//     subdivided (retired) leaf: TotalLeaves == live leaves + TotalCells.
//     They also lock at least once per body loaded.
//  6. When the build was traced, the trace is a faithful witness of the
//     lock counters: one recorded lock event per counted lock, processor
//     by processor.
//
// (Law 7 is the runner's observability audit, Runner.AuditObs; law 8 is
// CostConservation below — it needs the bodies, so it lives on Build's
// path rather than here.)
func Metrics(m *core.Metrics, t *octree.Tree, n int, rebuild bool) error {
	var built int64
	for i := range m.PerP {
		built += m.PerP[i].BodiesBuilt
	}
	if built != int64(n) {
		return fmt.Errorf("verify: metrics: BodiesBuilt sums to %d, want %d", built, n)
	}
	if m.Alg == core.SPACE {
		if l := m.TotalLocks(); l != 0 {
			return fmt.Errorf("verify: metrics: SPACE took %d tree-build locks, want 0", l)
		}
		if r := m.TotalRetries(); r != 0 {
			return fmt.Errorf("verify: metrics: SPACE reports %d retries without locking", r)
		}
	}
	if m.Trace != nil {
		if got, want := len(m.Trace.PerProc), len(m.PerP); got != want {
			return fmt.Errorf("verify: metrics: trace covers %d processors, metrics %d", got, want)
		}
		for w := range m.Trace.PerProc {
			if got, want := m.Trace.PerProc[w].LockEvents, m.PerP[w].Locks; got != want {
				return fmt.Errorf("verify: metrics: proc %d recorded %d lock events, counters say %d locks",
					w, got, want)
			}
		}
	}
	if !rebuild {
		return nil
	}
	live := octree.CollectStats(t)
	cells, leaves := m.TotalCells(), m.TotalLeaves()
	liveCells := int64(live.Cells - 1) // root uncounted
	if liveCells < 0 {
		liveCells = 0
	}
	if leaves < int64(live.Leaves) {
		return fmt.Errorf("verify: metrics: %d leaves allocated < %d live leaves", leaves, live.Leaves)
	}
	if cells < liveCells {
		return fmt.Errorf("verify: metrics: %d cells allocated < %d live non-root cells", cells, liveCells)
	}
	switch m.Alg {
	case core.ORIG, core.LOCAL, core.UPDATE, core.SPACE:
		// UPDATE only reaches here on its full-rebuild step, which uses
		// the ORIG/LOCAL load path.
		if cells != liveCells {
			return fmt.Errorf("verify: metrics: %s allocated %d cells, want exactly %d (live non-root)",
				m.Alg, cells, liveCells)
		}
	}
	switch m.Alg {
	case core.ORIG, core.LOCAL, core.UPDATE:
		if leaves != int64(live.Leaves)+cells {
			return fmt.Errorf("verify: metrics: %s allocated %d leaves, want live %d + subdivided %d",
				m.Alg, leaves, live.Leaves, cells)
		}
		if n > 0 && m.TotalLocks() < int64(n) {
			return fmt.Errorf("verify: metrics: %s took %d locks for %d bodies (at least one per body expected)",
				m.Alg, m.TotalLocks(), n)
		}
	}
	return nil
}

// CostConservation is conservation law 8: the root's Cost moment must
// equal the sum of the per-body costs the moments pass was fed —
// whatever path built or repaired the tree, no body's cost may be
// dropped or double-counted on the way up. The law earns its keep on
// UPDATE's paths: the incremental repair re-aggregates a tree whose
// shape it only partially touched, and its policy-forced fallback
// rebuild runs the SPACE partition/attach machinery into the resident
// store — both must still hand the moments pass every body exactly once.
func CostConservation(t *octree.Tree, bodies *phys.Bodies) error {
	d := octree.BodyData{Pos: bodies.Pos, Mass: bodies.Mass, Cost: bodies.Cost}
	var want int64
	for b := int32(0); int(b) < bodies.N(); b++ {
		want += d.CostOf(b)
	}
	if t.Root.IsNil() {
		if want != 0 {
			return fmt.Errorf("verify: cost conservation: empty tree over bodies with total cost %d", want)
		}
		return nil
	}
	var got int64
	if t.Root.IsLeaf() {
		got = t.Store.Leaf(t.Root).Cost
	} else {
		got = t.Store.Cell(t.Root).Cost
	}
	if got != want {
		return fmt.Errorf("verify: cost conservation: root cost %d, bodies sum to %d", got, want)
	}
	return nil
}

// Build verifies one Builder.Build outcome end to end: the tree against
// the bodies (differentially, when the step is a rebuild), the metrics
// against the conservation laws, and the cost moments against law 8.
func Build(alg core.Algorithm, t *octree.Tree, m *core.Metrics, bodies *phys.Bodies, step int) error {
	canonical := Canonical(alg, step)
	if err := Tree(t, bodies, Options{Canonical: canonical, Moments: true}); err != nil {
		return fmt.Errorf("%s step %d: %w", alg, step, err)
	}
	if err := CostConservation(t, bodies); err != nil {
		return fmt.Errorf("%s step %d: %w", alg, step, err)
	}
	if m != nil {
		if err := Metrics(m, t, bodies.N(), canonical); err != nil {
			return fmt.Errorf("%s step %d: %w", alg, step, err)
		}
	}
	return nil
}

// Algorithm is the self-contained companion check: it builds one fresh
// tree over bodies with the given algorithm and configuration and
// verifies it differentially. Simulated specs run this (the platform
// simulator's tree is internal to the replay), and it is the cheapest
// way to assert "this algorithm is correct for this workload" without a
// whole simulation.
func Algorithm(alg core.Algorithm, bodies *phys.Bodies, p, leafCap int) error {
	if p <= 0 {
		p = 1
	}
	bld := core.New(alg, core.Config{P: p, LeafCap: leafCap})
	in := &core.Input{Bodies: bodies, Assign: core.EvenAssign(bodies.N(), p)}
	t, m := bld.Build(in)
	return Build(alg, t, m, bodies, 0)
}
