// Command treebench benchmarks the five native tree builders on this
// machine: wall-clock per build, lock counts, and tree statistics across
// algorithms and processor counts. Each (algorithm, procs) cell is a
// build-only spec executed through the shared internal/runner engine
// (serially, so wall-clock timings stay honest).
//
// Usage:
//
//	treebench [-alg all] [-n 65536] [-p 1,2,4,8] [-reps 5] [-leafcap 8]
//	          [-model plummer] [-timeout 0] [-check] [-trace out.json]
//	          [-benchout BENCH_treebuild.json] [-benchcmp BENCH_treebuild.json]
//	          [-benchthreshold 0.30] [-http :9090] [-v info] [-json]
//
// With -benchcmp the sweep is taken from the named baseline file instead
// of the flags, fresh timings are diffed against it, and the exit status
// is non-zero if any cell regressed past -benchthreshold (make benchcmp).
// With -http the run can be watched and profiled live (make obs-smoke).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"partree/internal/core"
	"partree/internal/runner"
	"partree/internal/stats"
)

// benchFile is the machine-readable regression baseline -benchout emits
// (committed as BENCH_treebuild.json; `make bench` regenerates it).
type benchFile struct {
	Bodies  int         `json:"bodies"`
	LeafCap int         `json:"leafcap"`
	Reps    int         `json:"reps"`
	Spatial bool        `json:"spatial"`
	Cells   []benchCell `json:"cells"`
}

type benchCell struct {
	Alg        string `json:"alg"`
	P          int    `json:"p"`
	NsPerBuild int64  `json:"ns_per_build"`
	Locks      int64  `json:"locks"`
}

// traceName derives a per-cell trace filename from the -trace argument
// when the sweep has more than one cell (base.json -> base_ORIG_p4.json).
func traceName(base string, alg core.Algorithm, p int) string {
	ext := ".json"
	stem := base
	if i := strings.LastIndex(base, "."); i > 0 {
		stem, ext = base[:i], base[i:]
	}
	return fmt.Sprintf("%s_%s_p%d%s", stem, alg, p, ext)
}

// specContext returns the slog attrs that identify one sweep cell, so
// every failure names the exact configuration that produced it.
func specContext(sp runner.Spec) []any {
	return []any{"alg", sp.Alg.String(), "n", sp.Bodies, "p", sp.Procs, "seed", sp.Seed}
}

// runCells executes the sweep one cell at a time, settling the heap
// before each so a GC cycle provoked by an earlier cell's garbage (or by
// the engine's retained builder stores) never lands inside a later
// cell's measured phase — the same discipline testing.B applies between
// benchmarks.
func runCells(r *runner.Runner, specs []runner.Spec) []runner.Result {
	results := make([]runner.Result, len(specs))
	for i, sp := range specs {
		runtime.GC()
		results[i] = r.Run(context.Background(), sp)
	}
	return results
}

func main() {
	sf := runner.RegisterSpecFlags(flag.CommandLine, runner.Spec{
		Backend:   runner.Native,
		Bodies:    65536,
		Seed:      1,
		BuildOnly: true,
	}, "alg", "p", "steps", "theta", "dt")
	obsFlags := runner.RegisterObsFlags(flag.CommandLine)
	var (
		algFlag  = flag.String("alg", "", "restrict the sweep to one tree builder: "+strings.Join(core.AlgorithmNames(), ", ")+" (default all)")
		procs    = flag.String("p", "1,2,4,8", "comma-separated processor counts")
		reps     = flag.Int("reps", 5, "builds per configuration (best time reported)")
		spatial  = flag.Bool("spatial", true, "spatially coherent body partition (like settled costzones)")
		benchout = flag.String("benchout", "", "write a machine-readable ns-per-build baseline to this JSON file")
		benchcmp = flag.String("benchcmp", "", "diff a fresh run against this baseline JSON and fail past -benchthreshold")
		benchthr = flag.Float64("benchthreshold", 0.30, "allowed fractional ns-per-build regression for -benchcmp (0.30 = 30%)")
	)
	flag.Parse()
	if _, err := obsFlags.SetupLogging("treebench"); err != nil {
		fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
		os.Exit(2)
	}

	base, err := sf.Spec()
	if err != nil {
		slog.Error("bad spec flags", "err", err)
		os.Exit(2)
	}
	base.BuildOnly = true
	base.Steps = *reps
	base.Spatial = *spatial

	// One worker: concurrent wall-clock benchmarks would contend for the
	// same cores and corrupt each other's timings.
	r := runner.New(1)
	srv, err := obsFlags.Serve("treebench", r)
	if err != nil {
		slog.Error("starting obs server", "err", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}

	if *benchcmp != "" {
		os.Exit(runBenchcmp(r, base, *benchcmp, *benchthr))
	}

	algs := core.Algorithms()
	if *algFlag != "" {
		a, err := core.ParseAlgorithm(*algFlag)
		if err != nil {
			slog.Error("bad -alg", "err", err)
			os.Exit(2)
		}
		algs = []core.Algorithm{a}
	}

	var ps []int
	for _, f := range strings.Split(*procs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			slog.Error("bad processor count", "value", f)
			os.Exit(2)
		}
		ps = append(ps, v)
	}

	var specs []runner.Spec
	for _, alg := range algs {
		for _, p := range ps {
			spec := base
			spec.Alg = alg
			spec.Procs = p
			if spec.Trace != "" && (len(algs) > 1 || len(ps) > 1) {
				// One file per sweep cell, so cells don't overwrite each
				// other's traces.
				spec.Trace = traceName(base.Trace, alg, p)
			}
			specs = append(specs, spec)
		}
	}

	results := runCells(r, specs)

	if *benchout != "" {
		bf := benchFile{Bodies: base.Bodies, LeafCap: base.LeafCap, Reps: base.Steps, Spatial: base.Spatial}
		for _, res := range results {
			if res.Failed() {
				slog.Error("spec failed", append(specContext(res.Spec), "err", res.FailureMessage())...)
				os.Exit(1)
			}
			bf.Cells = append(bf.Cells, benchCell{
				Alg: res.Spec.Alg.String(), P: res.Spec.Procs,
				NsPerBuild: int64(res.TreeNs), Locks: res.LocksTotal,
			})
		}
		buf, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			slog.Error("encoding baseline", "err", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchout, append(buf, '\n'), 0o644); err != nil {
			slog.Error("writing baseline", "path", *benchout, "err", err)
			os.Exit(1)
		}
		slog.Info("wrote baseline", "path", *benchout)
	}

	if sf.JSON() {
		if err := runner.WriteJSON(os.Stdout, results...); err != nil {
			slog.Error("writing JSON results", "err", err)
			os.Exit(1)
		}
		for _, res := range results {
			if res.Failed() {
				os.Exit(1)
			}
		}
		return
	}

	fmt.Printf("treebench: %d bodies (%s), k=%d, best of %d builds\n\n",
		base.Bodies, base.Model, base.LeafCap, base.Steps)

	header := []string{"algorithm"}
	for _, p := range ps {
		header = append(header, fmt.Sprintf("%dp", p))
	}
	header = append(header, "locks(8p)", "tree")
	t := stats.NewTable(header...)

	i := 0
	for _, alg := range algs {
		row := []any{alg.String()}
		var locks int64
		var treeDesc string
		for pi, p := range ps {
			res := results[i]
			i++
			if res.Failed() {
				slog.Error("spec failed", append(specContext(res.Spec), "err", res.FailureMessage())...)
				row = append(row, "-")
				continue
			}
			if p == 8 || (pi == len(ps)-1 && locks == 0) {
				locks = res.LocksTotal
				treeDesc = fmt.Sprintf("%dc/%dl d%d", res.Cells, res.Leaves, res.MaxDepth)
			}
			row = append(row, time.Duration(res.TreeNs).Round(10*time.Microsecond).String())
		}
		row = append(row, locks, treeDesc)
		t.Row(row...)
	}
	t.Write(os.Stdout)
}

// runBenchcmp re-runs the sweep recorded in the baseline file and diffs
// fresh ns-per-build against it. Returns the process exit code: 0 when
// every cell is within threshold, 1 past it, 2 on a bad baseline.
// Timings are machine-relative — regenerate the baseline on this machine
// (make bench) before trusting small deltas.
func runBenchcmp(r *runner.Runner, base runner.Spec, path string, threshold float64) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		slog.Error("reading baseline", "path", path, "err", err)
		return 2
	}
	var bf benchFile
	if err := json.Unmarshal(buf, &bf); err != nil {
		slog.Error("parsing baseline", "path", path, "err", err)
		return 2
	}
	if len(bf.Cells) == 0 {
		slog.Error("baseline has no cells", "path", path)
		return 2
	}

	specs := make([]runner.Spec, 0, len(bf.Cells))
	for _, c := range bf.Cells {
		alg, err := core.ParseAlgorithm(c.Alg)
		if err != nil {
			slog.Error("baseline names unknown algorithm", "path", path, "err", err)
			return 2
		}
		sp := base
		sp.Alg = alg
		sp.Procs = c.P
		sp.Bodies = bf.Bodies
		sp.LeafCap = bf.LeafCap
		sp.Steps = bf.Reps
		sp.Spatial = bf.Spatial
		sp.Trace = ""
		specs = append(specs, sp)
	}
	results := runCells(r, specs)

	fmt.Printf("treebench: benchcmp vs %s (%d bodies, k=%d, best of %d, threshold +%.0f%%)\n\n",
		path, bf.Bodies, bf.LeafCap, bf.Reps, 100*threshold)
	t := stats.NewTable("algorithm", "p", "baseline", "fresh", "delta")
	exit := 0
	for i, c := range bf.Cells {
		res := results[i]
		if res.Failed() {
			slog.Error("spec failed", append(specContext(res.Spec), "err", res.FailureMessage())...)
			exit = 1
			t.Row(c.Alg, c.P, time.Duration(c.NsPerBuild).String(), "-", "FAILED")
			continue
		}
		fresh := int64(res.TreeNs)
		delta := float64(fresh-c.NsPerBuild) / float64(c.NsPerBuild)
		mark := ""
		if delta > threshold {
			mark = "  REGRESSED"
			exit = 1
			slog.Error("benchmark regression",
				"alg", c.Alg, "p", c.P, "n", bf.Bodies, "seed", res.Spec.Seed,
				"baseline", time.Duration(c.NsPerBuild).String(),
				"fresh", time.Duration(fresh).String(),
				"delta", fmt.Sprintf("%+.1f%%", 100*delta))
		}
		t.Row(c.Alg, c.P,
			time.Duration(c.NsPerBuild).Round(10*time.Microsecond).String(),
			time.Duration(fresh).Round(10*time.Microsecond).String(),
			fmt.Sprintf("%+.1f%%%s", 100*delta, mark))
	}
	t.Write(os.Stdout)
	if exit != 0 {
		slog.Error("benchcmp failed", "threshold", fmt.Sprintf("+%.0f%%", 100*threshold))
	}
	return exit
}
