package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"partree/internal/obs"
	"partree/internal/runner"
)

// RouterOptions configure a router over a shard map. The map must carry
// an address for every shard.
type RouterOptions struct {
	Map    Map
	Client ClientOptions
	// SweepConcurrency bounds how many cluster builds a sweep runs at
	// once (default 4). Each cluster build already fans out to every
	// shard, so this bounds fan-out squared.
	SweepConcurrency int
	// ScrapeTimeout bounds the rollup collector's per-shard /metrics
	// scrape (default 2s), keeping a dead shard from stalling the
	// router's own /metrics page.
	ScrapeTimeout time.Duration
}

// ClusterResult is a merged build: the same measurement fields as
// runner.Result under the same JSON names (so existing clients decode
// it unchanged), plus the per-shard breakdown. Sums and maxima follow
// the conservation laws internal/verify audits within one process:
// counters that partition across processors (bodies, locks, cells,
// leaves) also partition across shards and are summed; depth and
// build time are maxima (shards build concurrently, so the cluster's
// build time is its slowest shard's).
type ClusterResult struct {
	Spec         runner.Spec        `json:"spec"`
	TreeNs       float64            `json:"tree_ns"`
	LocksTotal   int64              `json:"locks_total"`
	Retries      int64              `json:"retries,omitempty"`
	Cells        int64              `json:"cells,omitempty"`
	Leaves       int64              `json:"leaves,omitempty"`
	MaxDepth     int64              `json:"max_depth,omitempty"`
	BodiesBuilt  int64              `json:"bodies_built"`
	WallNs       int64              `json:"wall_ns"`
	Err          string             `json:"error,omitempty"`
	CheckFailure string             `json:"check_failure,omitempty"`
	Shards       []ShardBuildResult `json:"shards"`
}

// Failed reports whether the merged build failed (in-band).
func (r ClusterResult) Failed() bool { return r.Err != "" || r.CheckFailure != "" }

// ClusterMoveResult is the router-level answer to a /v1/move: which
// shard held the body and, after a handoff, which shard holds it now.
type ClusterMoveResult struct {
	Status string `json:"status"` // "ok" (stayed) or "moved" (handed off)
	Body   int32  `json:"body"`
	From   string `json:"from"`
	To     string `json:"to"`
	Key    uint64 `json:"key"`
}

// Router fronts a partreed fleet: it owns the addressed map, a client
// per shard, and the fan-out/merge logic for builds, sweeps, and
// cross-shard body moves.
type Router struct {
	m       Map
	clients []*Client
	sweepC  int
	scrapeT time.Duration

	builds    *obs.Counter
	sweeps    *obs.Counter
	moves     *obs.Counter
	handoffs  *obs.Counter
	rejected  *obs.Counter
	errors    *obs.Counter
	conflicts *obs.Counter
}

// NewRouter validates the map (including addresses) and builds one
// client per shard.
func NewRouter(o RouterOptions) (*Router, error) {
	if err := o.Map.Validate(); err != nil {
		return nil, err
	}
	for _, s := range o.Map.Shards {
		if s.Addr == "" {
			return nil, fmt.Errorf("cluster: router map shard %q has no address", s.ID)
		}
	}
	if o.SweepConcurrency <= 0 {
		o.SweepConcurrency = 4
	}
	if o.ScrapeTimeout <= 0 {
		o.ScrapeTimeout = 2 * time.Second
	}
	rt := &Router{
		m:         o.Map,
		sweepC:    o.SweepConcurrency,
		scrapeT:   o.ScrapeTimeout,
		builds:    obs.NewCounter("partree_router_builds_total", "Cluster builds fanned out and merged."),
		sweeps:    obs.NewCounter("partree_router_sweeps_total", "Cluster sweeps served."),
		moves:     obs.NewCounter("partree_router_moves_total", "Cross-shard move requests served."),
		handoffs:  obs.NewCounter("partree_router_handoffs_total", "Moves that crossed a shard boundary and were handed off."),
		rejected:  obs.NewCounter("partree_router_rejected_total", "Cluster builds answered 503 because a shard's admission control rejected."),
		errors:    obs.NewCounter("partree_router_shard_errors_total", "Shard calls that failed at transport level or with an unexpected status."),
		conflicts: obs.NewCounter("partree_router_version_conflicts_total", "Shard calls refused with 409 (fleet running a different map version)."),
	}
	for _, s := range o.Map.Shards {
		rt.clients = append(rt.clients, NewClient(s.ID, s.Addr, o.Client))
	}
	return rt, nil
}

// Map returns the router's addressed map.
func (rt *Router) Map() Map { return rt.m }

// RegisterObs registers the router's own families plus the cluster
// rollup collector, which scrapes every shard's /metrics at gather time
// and sums the build and admission families into partree_cluster_*.
func (rt *Router) RegisterObs(reg *obs.Registry) error {
	if err := reg.Register(rt.builds, rt.sweeps, rt.moves, rt.handoffs,
		rt.rejected, rt.errors, rt.conflicts); err != nil {
		return err
	}
	return reg.Register(&rollupCollector{rt: rt})
}

// Mount registers the router routes on mux. A nil wrap mounts them bare.
func (rt *Router) Mount(mux *http.ServeMux, wrap Middleware) {
	if wrap == nil {
		wrap = func(_ string, h http.HandlerFunc) http.HandlerFunc { return h }
	}
	mux.HandleFunc("/v1/build", wrap("/v1/build", rt.handleBuild))
	mux.HandleFunc("/v1/sweep", wrap("/v1/sweep", rt.handleSweep))
	mux.HandleFunc("/v1/move", wrap("/v1/move", rt.handleMove))
	mux.HandleFunc("/v1/map", wrap("/v1/map", rt.handleMap))
}

func (rt *Router) handleMap(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET the shard map")
		return
	}
	b, err := rt.m.Encode()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// decodeClusterSpec vets a spec for cluster execution, mirroring
// partreed's rules.
func decodeClusterSpec(dec *json.Decoder) (runner.Spec, error) {
	var spec runner.Spec
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("parsing spec: %w", err)
	}
	if spec.Trace != "" {
		return spec, fmt.Errorf("trace is not supported over HTTP")
	}
	// Cluster builds are always native shard builds; see ShardServer.
	spec.Backend = runner.Native
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// shardAnswer is one shard's build outcome in fan-out arrival order.
type shardAnswer struct {
	idx   int
	order int // completion order, for "slowest shard's reason"
	res   ShardBuildResult
	err   error
}

// fanOutBuild sends the spec to every shard concurrently and returns
// the answers indexed by shard, plus completion order for error
// attribution. Transient builds (sweeps) do not establish residency on
// the shards.
func (rt *Router) fanOutBuild(ctx context.Context, spec runner.Spec, transient bool) []shardAnswer {
	answers := make([]shardAnswer, len(rt.clients))
	var mu sync.Mutex
	order := 0
	var wg sync.WaitGroup
	for i, c := range rt.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			var res ShardBuildResult
			err := c.Call(ctx, http.MethodPost, "/v1/shard/build",
				ShardBuildRequest{MapVersion: rt.m.Version, Spec: spec, Transient: transient}, &res)
			mu.Lock()
			answers[i] = shardAnswer{idx: i, order: order, res: res, err: err}
			order++
			mu.Unlock()
		}(i, c)
	}
	wg.Wait()
	return answers
}

// mergeBuild folds per-shard results into one ClusterResult and audits
// the cluster-level conservation law: the shards' owned subsets must
// tile the body set exactly, so ΣN == ΣBodiesBuilt == spec.Bodies.
func mergeBuild(spec runner.Spec, answers []shardAnswer) ClusterResult {
	out := ClusterResult{Spec: spec, Shards: make([]ShardBuildResult, 0, len(answers))}
	var sumN int64
	for _, a := range answers {
		r := a.res
		out.Shards = append(out.Shards, r)
		sumN += int64(r.N)
		out.BodiesBuilt += r.BodiesBuilt
		out.LocksTotal += r.LocksTotal
		out.Retries += r.Retries
		out.Cells += r.Cells
		out.Leaves += r.Leaves
		if r.MaxDepth > out.MaxDepth {
			out.MaxDepth = r.MaxDepth
		}
		if r.TreeNs > out.TreeNs {
			out.TreeNs = r.TreeNs
		}
		if r.WallNs > out.WallNs {
			out.WallNs = r.WallNs
		}
		if r.CheckFailure != "" && out.CheckFailure == "" {
			out.CheckFailure = r.CheckFailure
		}
		if r.Err != "" && out.Err == "" {
			out.Err = fmt.Sprintf("shard %s: %s", r.Shard, r.Err)
		}
	}
	if out.Err == "" && out.CheckFailure == "" {
		if sumN != int64(spec.Bodies) {
			out.CheckFailure = fmt.Sprintf(
				"cluster conservation: shards own %d bodies, spec has %d (shard ranges do not tile the set)",
				sumN, spec.Bodies)
		} else if out.BodiesBuilt != int64(spec.Bodies) {
			out.CheckFailure = fmt.Sprintf(
				"cluster conservation: shards built %d bodies, spec has %d",
				out.BodiesBuilt, spec.Bodies)
		}
	}
	return out
}

// buildOnce runs one full fan-out/merge. The error return carries an
// HTTP status to propagate (409/502/503); in-band failures travel
// inside the ClusterResult.
func (rt *Router) buildOnce(ctx context.Context, spec runner.Spec, transient bool) (ClusterResult, int, string) {
	answers := rt.fanOutBuild(ctx, spec, transient)
	// Transport failures and deliberate rejections are per-status; a 503
	// surfaces the *slowest* rejecting shard's reason — the request was
	// held until that shard answered, so its reason is what the caller
	// actually waited on.
	var reject *shardAnswer
	for i := range answers {
		a := &answers[i]
		if a.err == nil {
			continue
		}
		if se, ok := a.err.(*StatusError); ok {
			switch se.Code {
			case http.StatusServiceUnavailable:
				rt.rejected.Inc()
				if reject == nil || a.order > reject.order {
					reject = a
				}
				continue
			case http.StatusConflict:
				rt.conflicts.Inc()
				return ClusterResult{}, http.StatusConflict,
					fmt.Sprintf("shard %s: %s", rt.m.Shards[a.idx].ID, se.Msg)
			}
		}
		rt.errors.Inc()
		return ClusterResult{}, http.StatusBadGateway,
			fmt.Sprintf("shard %s: %v", rt.m.Shards[a.idx].ID, a.err)
	}
	if reject != nil {
		se := reject.err.(*StatusError)
		return ClusterResult{}, http.StatusServiceUnavailable,
			fmt.Sprintf("shard %s: %s", rt.m.Shards[reject.idx].ID, se.Msg)
	}
	rt.builds.Inc()
	return mergeBuild(spec, answers), 0, ""
}

func (rt *Router) handleBuild(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST a runner.Spec JSON document")
		return
	}
	spec, err := decodeClusterSpec(json.NewDecoder(req.Body))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, code, msg := rt.buildOnce(req.Context(), spec, false)
	if code != 0 {
		jsonError(w, code, msg)
		return
	}
	writeJSON(w, res)
}

func (rt *Router) handleSweep(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST a JSON array of runner.Spec documents")
		return
	}
	var specs []runner.Spec
	if err := json.NewDecoder(req.Body).Decode(&specs); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parsing spec list: %v", err))
		return
	}
	for i := range specs {
		if specs[i].Trace != "" {
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: trace is not supported over HTTP", i))
			return
		}
		specs[i].Backend = runner.Native
		specs[i] = specs[i].Normalized()
		if err := specs[i].Validate(); err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
			return
		}
	}
	rt.sweeps.Inc()

	// The NDJSON stream is deterministic in *order*: results are emitted
	// strictly in input-spec order regardless of which cluster build
	// finishes first, so interleaved per-shard timing can never reorder
	// the stream. Failures travel in-band per record, like a sweep
	// against a single partreed.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	results := make([]ClusterResult, len(specs))
	done := make([]chan struct{}, len(specs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, rt.sweepC)
	for i := range specs {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; close(done[i]) }()
			res, code, msg := rt.buildOnce(req.Context(), specs[i], true)
			if code != 0 {
				res = ClusterResult{Spec: specs[i], Err: msg}
			}
			results[i] = res
		}(i)
	}
	enc := json.NewEncoder(w)
	for i := range specs {
		<-done[i]
		enc.Encode(results[i])
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleMove routes a body's position change: every shard is asked to
// apply it (exactly one can hold the body), and a handoff answer is
// delivered to the key's owner. The invariant this preserves is the
// acceptance criterion of the tier: after a boundary-crossing move the
// body is resident in exactly one shard.
func (rt *Router) handleMove(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST {\"body\": N, \"pos\": [x,y,z]}")
		return
	}
	var mr struct {
		Body int32      `json:"body"`
		Pos  [3]float64 `json:"pos"`
	}
	if err := json.NewDecoder(req.Body).Decode(&mr); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parsing request: %v", err))
		return
	}
	rt.moves.Inc()

	// Broadcast: residency is the shards' truth, not the router's guess
	// (the body may have been handed off before, so its key under the
	// *old* position is not reliable routing).
	type moveAnswer struct {
		idx int
		res MoveResponse
		err error
	}
	answers := make([]moveAnswer, len(rt.clients))
	var wg sync.WaitGroup
	for i, c := range rt.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			var res MoveResponse
			err := c.Call(req.Context(), http.MethodPost, "/v1/shard/move",
				MoveRequest{MapVersion: rt.m.Version, Body: mr.Body, Pos: mr.Pos}, &res)
			answers[i] = moveAnswer{idx: i, res: res, err: err}
		}(i, c)
	}
	wg.Wait()

	var holder *moveAnswer
	for i := range answers {
		a := &answers[i]
		if a.err != nil {
			if se, ok := a.err.(*StatusError); ok && se.Code == http.StatusConflict {
				rt.conflicts.Inc()
				jsonError(w, http.StatusConflict, fmt.Sprintf("shard %s: %s", rt.m.Shards[a.idx].ID, se.Msg))
				return
			}
			rt.errors.Inc()
			jsonError(w, http.StatusBadGateway, fmt.Sprintf("shard %s: %v", rt.m.Shards[a.idx].ID, a.err))
			return
		}
		if a.res.Status != MoveAbsent {
			if holder != nil {
				jsonError(w, http.StatusInternalServerError,
					fmt.Sprintf("body %d resident in both %s and %s", mr.Body,
						rt.m.Shards[holder.idx].ID, rt.m.Shards[a.idx].ID))
				return
			}
			holder = a
		}
	}
	if holder == nil {
		jsonError(w, http.StatusNotFound, fmt.Sprintf("body %d is not resident in any shard", mr.Body))
		return
	}
	from := rt.m.Shards[holder.idx].ID
	if holder.res.Status == MoveOK {
		writeJSON(w, ClusterMoveResult{Status: "ok", Body: mr.Body, From: from, To: from, Key: holder.res.Key})
		return
	}

	// Handoff: deliver the evicted state to the key's owner.
	owner := rt.m.ShardFor(holder.res.Key)
	if owner < 0 || holder.res.State == nil {
		jsonError(w, http.StatusInternalServerError,
			fmt.Sprintf("handoff of body %d has no owner for key %#x", mr.Body, holder.res.Key))
		return
	}
	err := rt.clients[owner].Call(req.Context(), http.MethodPost, "/v1/shard/accept",
		AcceptRequest{MapVersion: rt.m.Version, Body: mr.Body, State: *holder.res.State}, nil)
	if err != nil {
		// The body has already left the source; surface loudly rather
		// than pretending the move completed.
		rt.errors.Inc()
		jsonError(w, http.StatusBadGateway,
			fmt.Sprintf("handoff of body %d to shard %s failed: %v", mr.Body, rt.m.Shards[owner].ID, err))
		return
	}
	rt.handoffs.Inc()
	writeJSON(w, ClusterMoveResult{Status: "moved", Body: mr.Body, From: from,
		To: rt.m.Shards[owner].ID, Key: holder.res.Key})
}

// rollupFamilies maps each aggregated partree_cluster_* family to the
// shard-side prefix it sums (series names keep their labels, so a
// labeled family like partree_engine_rejected_total{reason=...} sums
// across reasons and shards alike).
var rollupFamilies = []struct {
	name, prefix, help string
}{
	{"partree_cluster_builds_total", "partree_shard_builds_total", "Shard-level builds served, summed across the fleet."},
	{"partree_cluster_bodies_built_total", "partree_shard_bodies_built_total", "Bodies loaded into shard trees, summed across the fleet."},
	{"partree_cluster_handoffs_total", "partree_shard_handoffs_total", "Boundary-crossing evictions, summed across the fleet."},
	{"partree_cluster_accepts_total", "partree_shard_accepts_total", "Handoff acceptances, summed across the fleet."},
	{"partree_cluster_resident", "partree_shard_resident", "Resident bodies, summed across the fleet."},
	{"partree_cluster_build_total", "partree_build_total", "Process-level builds, summed across the fleet."},
	{"partree_cluster_build_bodies_total", "partree_build_bodies_total", "Process-level bodies built, summed across the fleet."},
	{"partree_cluster_build_locks_total", "partree_build_locks_total", "Process-level build lock acquisitions, summed across the fleet."},
	{"partree_cluster_engine_rejected_total", "partree_engine_rejected_total", "Engine admission rejections, summed across reasons and the fleet."},
}

// rollupCollector aggregates the fleet's metrics at gather time: one
// concurrent scrape per shard (bounded by ScrapeTimeout), summed into
// partree_cluster_* families, plus a per-shard partree_cluster_shard_up
// gauge from scrape success. A dead shard degrades to up=0 and drops
// out of the sums instead of failing the router's page.
type rollupCollector struct {
	rt *Router
}

func (rc *rollupCollector) Collect(out []obs.Family) []obs.Family {
	rt := rc.rt
	ctx, cancel := context.WithTimeout(context.Background(), rt.scrapeT)
	defer cancel()
	snaps := make([]map[string]float64, len(rt.clients))
	var wg sync.WaitGroup
	for i, c := range rt.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			snaps[i], _ = c.Metrics(ctx)
		}(i, c)
	}
	wg.Wait()

	up := obs.Family{Name: "partree_cluster_shard_up", Type: obs.TypeGauge,
		Help: "1 when the shard's last /metrics scrape succeeded."}
	for i, s := range rt.m.Shards {
		v := 0.0
		if snaps[i] != nil {
			v = 1
		}
		up.Series = append(up.Series, obs.Series{
			Labels: []obs.Label{{Name: "shard", Value: s.ID}}, Value: v})
	}
	out = append(out, up)

	for _, rf := range rollupFamilies {
		var sum float64
		seen := false
		for _, snap := range snaps {
			for k, v := range snap {
				if metricMatches(k, rf.prefix) {
					sum += v
					seen = true
				}
			}
		}
		if !seen {
			continue
		}
		typ := obs.TypeCounter
		if !strings.HasSuffix(rf.name, "_total") {
			typ = obs.TypeGauge
		}
		out = append(out, obs.Family{Name: rf.name, Type: typ, Help: rf.help,
			Series: []obs.Series{{Value: sum}}})
	}
	return out
}

// metricMatches reports whether a scraped series line (name plus
// optional label block) belongs to a family name: an exact match or the
// name followed by '{'.
func metricMatches(series, family string) bool {
	if !strings.HasPrefix(series, family) {
		return false
	}
	return len(series) == len(family) || series[len(family)] == '{'
}
