package simalg

import (
	"partree/internal/memsim"
	"partree/internal/octree"
	"partree/internal/trace"
	"partree/internal/vec"
)

// sproc is one simulated processor's view of the run: the memsim handle
// plus the charging helpers and the per-processor build state. The engine
// guarantees at most one sproc executes at a time, so the shared octree
// needs no real locks — the simulated locks below exist to charge the
// synchronization costs and to order the build in virtual time exactly as
// the real algorithms would.
type sproc struct {
	w       int
	mp      *memsim.Proc
	st      *runState
	arena   int
	inBuild bool // currently in the tree-build phase (lock accounting)
	meas    bool // current step is measured
	locks   int64
	scratch [4]uint64
	// tp is this processor's trace handle (nil/disabled = off); events
	// are stamped in virtual time. lockT/lockD stage pending lock events:
	// the deepest nesting is a node lock around chargeAlloc's allocation
	// lock (depth 2), so a small fixed stack suffices.
	tp    *trace.P
	lockT [4][2]float64
	lockD int
}

// traced reports whether this processor records events right now: only
// in measured tree-build phases, matching exactly the lock accounting —
// that shared gate is what makes trace lock events equal Outcome locks.
func (sp *sproc) traced() bool { return sp.inBuild && sp.meas && sp.tp.Active() }

// readNode / writeNode charge an access to every coherence unit a node
// record spans: one page under HLRC, 256/LineSize cache lines under the
// hardware-coherent protocols (2 on the 128-byte Challenge and Origin, 4
// on Typhoon-0's 64-byte blocks — fine granularity means more transfers).
func (sp *sproc) readNode(r octree.Ref) {
	n := sp.st.nodeLines
	if n == 1 {
		sp.mp.Read(nodeAddr(r))
		return
	}
	base := nodeAddr(r)
	stride := uint64(256 / n)
	for i := 0; i < n; i++ {
		sp.scratch[i] = base + uint64(i)*stride
	}
	sp.mp.ReadBatch(sp.scratch[:n])
}

func (sp *sproc) writeNode(r octree.Ref) {
	n := sp.st.nodeLines
	if n == 1 {
		sp.mp.Write(nodeAddr(r))
		return
	}
	base := nodeAddr(r)
	stride := uint64(256 / n)
	for i := 0; i < n; i++ {
		sp.scratch[i] = base + uint64(i)*stride
	}
	sp.mp.WriteBatch(sp.scratch[:n])
}

// compute charges cycles of private work.
func (sp *sproc) compute(cycles float64) {
	sp.mp.Compute(cycles * sp.st.cfg.Platform.CycleNs)
}

// lockNode acquires a simulated node lock, counting it if we are in a
// measured tree-build phase (Figure 15 counts exactly those) and — when
// tracing — staging the virtual wait/acquire timestamps.
func (sp *sproc) lockNode(id int) {
	if sp.traced() && sp.lockD < len(sp.lockT) {
		start := sp.mp.Now()
		sp.mp.Lock(id)
		sp.lockT[sp.lockD] = [2]float64{start, sp.mp.Now()}
		sp.lockD++
	} else {
		sp.mp.Lock(id)
	}
	if sp.inBuild && sp.measured() {
		sp.locks++
	}
}

func (sp *sproc) unlockNode(id int) {
	sp.mp.Unlock(id)
	if sp.lockD > 0 && sp.traced() {
		sp.lockD--
		t := sp.lockT[sp.lockD]
		sp.tp.LockAt(int64(t[0]), int64(t[1]), int64(sp.mp.Now()))
	}
}

func (sp *sproc) measured() bool { return sp.meas }

// allocCell allocates a cell, charging the allocation path: ORIG takes the
// global allocation lock and bumps the shared cursor and its slot in the
// shared stats array (false sharing and contention); the others bump a
// private padded counter.
func (sp *sproc) allocCell(cube vec.Cube, parent octree.Ref) (octree.Ref, *octree.Cell) {
	sp.chargeAlloc()
	r, c := sp.st.store.AllocCell(sp.arena, cube, parent, sp.w)
	sp.writeNode(r)
	return r, c
}

func (sp *sproc) allocLeaf(cube vec.Cube, parent octree.Ref) (octree.Ref, *octree.Leaf) {
	sp.chargeAlloc()
	r, l := sp.st.store.AllocLeaf(sp.arena, cube, parent, sp.w)
	sp.writeNode(r)
	return r, l
}

func (sp *sproc) chargeAlloc() {
	sp.compute(sp.st.cfg.AllocCycles)
	if sp.st.orig {
		sp.lockNode(lockAlloc)
		sp.mp.Read(sharedCounterAddr())
		sp.mp.Write(sharedCounterAddr())
		sp.unlockNode(lockAlloc)
		sp.mp.Write(sharedStatAddr(sp.w))
	} else {
		sp.mp.Write(privStatAddr(sp.w))
	}
}

// insert places body b into the shared tree with the locking discipline of
// the concurrent algorithms (mirrors core.inserter, with charges). On
// hardware-coherent platforms only modifications lock; on HLRC platforms
// every level of the descent additionally takes the cell's lock, because
// under lazy release consistency another processor's insertion is only
// guaranteed visible through an acquire — the paper observes exactly this
// ("the HLRC protocol requires additional synchronization to make the
// code release consistent"), and it is why Figure 15 shows higher lock
// counts on Typhoon-0 than on the Origin for the same algorithm.
func (sp *sproc) insert(from octree.Ref, fromDepth int, b int32) {
	st := sp.st
	s := st.store
	pos := st.bodies.Pos
	vis := st.visLocks
	p := pos[b]
	sp.mp.Read(sp.st.bodyAddrOf[b])
	cur := from
	depth := fromDepth
	for {
		c := s.Cell(cur)
		if vis {
			sp.lockNode(lockOf(cur))
		}
		sp.readNode(cur)
		sp.compute(st.cfg.DescendCycles)
		o := c.Cube.OctantOf(p)
		ch := c.Child(o)
		switch {
		case ch.IsNil():
			if !vis {
				sp.lockNode(lockOf(cur))
			}
			if got := c.Child(o); !got.IsNil() {
				sp.unlockNode(lockOf(cur))
				continue
			}
			lr, l := sp.allocLeaf(c.Cube.Child(o), cur)
			l.Bodies = append(l.Bodies, b)
			sp.setBodyLeaf(b, lr)
			c.SetChild(o, lr)
			sp.writeNode(cur)
			sp.unlockNode(lockOf(cur))
			return

		case ch.IsLeaf():
			if vis {
				sp.unlockNode(lockOf(cur))
			}
			sp.lockNode(lockOf(ch))
			sp.readNode(ch)
			if c.Child(o) != ch {
				sp.unlockNode(lockOf(ch))
				continue
			}
			l := s.Leaf(ch)
			if len(l.Bodies) < s.LeafCap || depth+1 >= s.MaxDepth {
				l.Bodies = append(l.Bodies, b)
				sp.setBodyLeaf(b, ch)
				sp.writeNode(ch)
				sp.unlockNode(lockOf(ch))
				return
			}
			cr := sp.subdivide(cur, ch, l, depth)
			c.SetChild(o, cr)
			sp.writeNode(cur)
			sp.unlockNode(lockOf(ch))
			cur = cr
			depth++

		default:
			if vis {
				sp.unlockNode(lockOf(cur))
			}
			cur = ch
			depth++
		}
	}
}

// subdivide replaces the locked full leaf with a private subtree.
func (sp *sproc) subdivide(parent, lr octree.Ref, l *octree.Leaf, depth int) octree.Ref {
	traced := sp.traced()
	var t0 float64
	if traced {
		t0 = sp.mp.Now()
	}
	cr, _ := sp.allocCell(l.Cube, parent)
	for _, ob := range l.Bodies {
		sp.insertPrivate(cr, depth+1, ob)
	}
	l.Retired = true
	if traced {
		sp.tp.SpanAt(trace.PhaseSubdivide, int64(t0), int64(sp.mp.Now()))
	}
	return cr
}

// insertPrivate inserts into an unpublished subtree: same charges minus
// the locks.
func (sp *sproc) insertPrivate(root octree.Ref, rootDepth int, b int32) {
	st := sp.st
	s := st.store
	pos := st.bodies.Pos
	p := pos[b]
	sp.mp.Read(sp.st.bodyAddrOf[b])
	cur := root
	depth := rootDepth
	for {
		c := s.Cell(cur)
		sp.compute(st.cfg.DescendCycles)
		o := c.Cube.OctantOf(p)
		ch := c.Child(o)
		switch {
		case ch.IsNil():
			lr, l := sp.allocLeaf(c.Cube.Child(o), cur)
			l.Bodies = append(l.Bodies, b)
			sp.setBodyLeaf(b, lr)
			c.SetChild(o, lr)
			sp.writeNode(cur)
			return
		case ch.IsLeaf():
			l := s.Leaf(ch)
			if len(l.Bodies) < s.LeafCap || depth+1 >= s.MaxDepth {
				l.Bodies = append(l.Bodies, b)
				sp.setBodyLeaf(b, ch)
				sp.writeNode(ch)
				return
			}
			cr := sp.subdivide(cur, ch, l, depth)
			c.SetChild(o, cr)
			sp.writeNode(cur)
			cur = cr
			depth++
		default:
			sp.readNode(cur)
			cur = ch
			depth++
		}
	}
}

func (sp *sproc) setBodyLeaf(b int32, r octree.Ref) {
	if sp.st.bodyLeaf != nil {
		sp.st.bodyLeaf[b] = uint32(r)
	}
}

// remove takes body b out of its leaf (UPDATE), reclaiming empty leaves;
// returns the parent cell to reinsert from.
func (sp *sproc) remove(b int32) octree.Ref {
	st := sp.st
	s := st.store
	for {
		lr := octree.Ref(st.bodyLeaf[b])
		sp.lockNode(lockOf(lr))
		sp.readNode(lr)
		if octree.Ref(st.bodyLeaf[b]) != lr {
			sp.unlockNode(lockOf(lr))
			continue
		}
		l := s.Leaf(lr)
		for i, ob := range l.Bodies {
			if ob == b {
				last := len(l.Bodies) - 1
				l.Bodies[i] = l.Bodies[last]
				l.Bodies = l.Bodies[:last]
				break
			}
		}
		sp.writeNode(lr)
		parent := l.Parent
		if len(l.Bodies) == 0 {
			pc := s.Cell(parent)
			if o, ok := pc.SlotOf(lr); ok {
				pc.SetChild(o, octree.Nil)
				sp.writeNode(parent)
			}
			l.Retired = true
		}
		sp.unlockNode(lockOf(lr))
		return parent
	}
}
