package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/phys"
	"partree/internal/simalg"
)

func simSpec(alg core.Algorithm, p, n int) Spec {
	return Spec{Backend: Simulated, Platform: "challenge", Alg: alg, Procs: p, Bodies: n, Steps: 1, Seed: 7}
}

func TestSimulatedMatchesDirectRun(t *testing.T) {
	spec := simSpec(core.SPACE, 4, 512)
	res := New(0).Run(context.Background(), spec)
	if res.Failed() {
		t.Fatalf("run failed: %s", res.Err)
	}
	direct := simalg.Run(core.SPACE, phys.Generate(phys.ModelPlummer, 512, 7), simalg.Config{
		Platform: memsim.Challenge(), P: 4, LeafCap: 8, MeasuredSteps: 1,
	})
	if res.TotalNs != direct.TotalNs() {
		t.Fatalf("runner %v != direct %v", res.TotalNs, direct.TotalNs())
	}
	if o, ok := res.Outcome(); !ok || o.TotalLocks() != direct.TotalLocks() {
		t.Fatalf("outcome mismatch: %v vs %v", o, direct)
	}
	if res.WallNs <= 0 || res.StepsDone != 1 {
		t.Fatalf("bookkeeping wrong: wall=%d steps=%d", res.WallNs, res.StepsDone)
	}
}

func TestMemoizesAndSharesExecution(t *testing.T) {
	r := New(2)
	spec := simSpec(core.LOCAL, 2, 256)
	const callers = 16
	results := make([]Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(context.Background(), spec)
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Failed() {
			t.Fatalf("caller %d failed: %s", i, res.Err)
		}
		if res.TotalNs != results[0].TotalNs {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
	if got := len(r.Results()); got != 1 {
		t.Fatalf("want one cached execution, got %d", got)
	}
}

func TestRunAllKeepsSpecOrder(t *testing.T) {
	r := New(0)
	var specs []Spec
	for _, alg := range core.Algorithms() {
		specs = append(specs, simSpec(alg, 2, 256))
	}
	results := r.RunAll(context.Background(), specs)
	if len(results) != len(specs) {
		t.Fatalf("want %d results, got %d", len(specs), len(results))
	}
	for i, res := range results {
		if res.Failed() {
			t.Fatalf("%v failed: %s", specs[i], res.Err)
		}
		if res.Spec.Alg != specs[i].Alg {
			t.Fatalf("result %d is for %v, want %v", i, res.Spec.Alg, specs[i].Alg)
		}
	}
	// Deterministic: a fresh runner reproduces the same numbers.
	again := New(1).RunAll(context.Background(), specs)
	for i := range results {
		if results[i].TotalNs != again[i].TotalNs || results[i].LocksTotal != again[i].LocksTotal {
			t.Fatalf("nondeterministic result for %v", specs[i])
		}
	}
}

func TestCancelledContextReturnsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := New(0).Run(ctx, simSpec(core.ORIG, 4, 2048))
	if !res.Failed() || !strings.Contains(res.Err, "context canceled") {
		t.Fatalf("want cancellation error, got %+v", res)
	}
}

func TestTimeoutYieldsPartialNativeResult(t *testing.T) {
	spec := Spec{Backend: Native, Alg: core.SPACE, Procs: 2, Bodies: 1024, Steps: 8, Seed: 3, Timeout: time.Nanosecond}
	res := New(0).Run(context.Background(), spec)
	if !res.Failed() {
		t.Fatal("want timeout error")
	}
	if !strings.Contains(res.Err, "deadline") {
		t.Fatalf("error %q does not mention the deadline", res.Err)
	}
	if res.StepsDone >= spec.Steps {
		t.Fatalf("partial result claims %d/%d steps", res.StepsDone, spec.Steps)
	}
}

func TestTimeoutSimulated(t *testing.T) {
	spec := simSpec(core.LOCAL, 4, 4096)
	spec.Timeout = time.Nanosecond
	res := New(0).Run(context.Background(), spec)
	if !res.Failed() {
		t.Fatal("want timeout error")
	}
}

func TestNativeWholeApp(t *testing.T) {
	spec := Spec{Backend: Native, Alg: core.LOCAL, Procs: 2, Bodies: 512, Steps: 2, Seed: 3}
	res := New(0).Run(context.Background(), spec)
	if res.Failed() {
		t.Fatalf("native run failed: %s", res.Err)
	}
	if res.TotalNs <= 0 || res.StepsDone != 2 || res.Cells == 0 || res.Interactions == 0 {
		t.Fatalf("implausible native result: %+v", res)
	}
}

func TestBuildOnly(t *testing.T) {
	r := New(1)
	mk := func(alg core.Algorithm) Spec {
		return Spec{Backend: Native, Alg: alg, Procs: 4, Bodies: 2048, Steps: 2, Seed: 3, BuildOnly: true, Spatial: true}
	}
	local := r.Run(context.Background(), mk(core.LOCAL))
	space := r.Run(context.Background(), mk(core.SPACE))
	if local.Failed() || space.Failed() {
		t.Fatalf("build-only runs failed: %q %q", local.Err, space.Err)
	}
	if local.LocksTotal == 0 {
		t.Fatal("LOCAL build should take locks")
	}
	if space.LocksTotal != 0 {
		t.Fatalf("SPACE build took %d locks", space.LocksTotal)
	}
	if space.Cells == 0 || space.Leaves == 0 || space.TreeNs <= 0 {
		t.Fatalf("implausible build-only result: %+v", space)
	}
}

func TestValidate(t *testing.T) {
	res := New(0).Run(context.Background(), Spec{Backend: Simulated, Platform: "cray"})
	if !res.Failed() {
		t.Fatal("bogus platform accepted")
	}
	for _, name := range PlatformNames() {
		if !strings.Contains(res.Err, name) {
			t.Fatalf("error %q does not list platform %s", res.Err, name)
		}
	}
	res = New(0).Run(context.Background(), Spec{Backend: Simulated, Platform: "origin", BuildOnly: true})
	if !res.Failed() {
		t.Fatal("simulated build-only accepted")
	}
	res = New(0).Run(context.Background(), Spec{Backend: "quantum"})
	if !res.Failed() {
		t.Fatal("bogus backend accepted")
	}
}

func TestParsePlatformForms(t *testing.T) {
	for _, name := range []string{"origin", "ORIGIN", "Origin2000"} {
		pl, err := ParsePlatform(name, 8)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if pl.Name != "Origin2000" {
			t.Fatalf("%q resolved to %s", name, pl.Name)
		}
	}
	if _, err := ParsePlatform("typhoon-hlrc", 16); err != nil {
		t.Fatal(err)
	}
	if canon, ok := CanonicalPlatform("Typhoon-0/HLRC"); !ok || canon != "typhoon-hlrc" {
		t.Fatalf("display-name canonicalization broken: %q %v", canon, ok)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res := New(0).Run(context.Background(), simSpec(core.PARTREE, 2, 256))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, `"algorithm":"PARTREE"`) {
		t.Fatalf("algorithm not serialized by name: %s", line)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec.Alg != core.PARTREE || back.TotalNs != res.TotalNs || back.LocksTotal != res.LocksTotal {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, res)
	}
}

func TestKeyDistinguishesSpecs(t *testing.T) {
	base := simSpec(core.LOCAL, 2, 256)
	variants := []func(Spec) Spec{
		func(s Spec) Spec { s.Alg = core.SPACE; return s },
		func(s Spec) Spec { s.Procs = 4; return s },
		func(s Spec) Spec { s.Bodies = 512; return s },
		func(s Spec) Spec { s.Sequential = true; s.Procs = 1; return s },
		func(s Spec) Spec { s.Platform = "origin"; return s },
		func(s Spec) Spec { s.Backend = Native; s.Platform = ""; return s },
		func(s Spec) Spec { s.LeafCap = 16; return s },
		func(s Spec) Spec { s.Seed = 8; return s },
		func(s Spec) Spec { s.Timeout = time.Second; return s },
		func(s Spec) Spec { s.Check = true; return s },
	}
	seen := map[string]bool{base.Key(): true}
	for i, v := range variants {
		k := v(base).Key()
		if seen[k] {
			t.Fatalf("variant %d collides: %s", i, k)
		}
		seen[k] = true
	}
}
