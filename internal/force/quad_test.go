package force

import (
	"math"
	"testing"

	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/vec"
)

// TestQuadrupoleTwoMassAnalytic checks the quadrupole term against the
// closed form for two equal masses at ±d on the x-axis, evaluated far
// away on the x-axis: the exact axial field exceeds the monopole one, and
// the quadrupole correction recovers most of the difference.
func TestQuadrupoleTwoMassAnalytic(t *testing.T) {
	d := 0.5
	pos := []vec.V3{{X: -d}, {X: d}, {X: 4}}
	mass := []float64{1, 1, 1e-12} // third body = test probe
	tr := octree.BuildSerial(pos, 2)
	data := octree.BodyData{Pos: pos, Mass: mass}
	octree.ComputeMomentsSerial(tr, data)

	exact := Direct(data, 2, Params{Theta: 1, Eps: 0, G: 1})
	mono := Accel(tr, data, 2, Params{Theta: 10, Eps: 0, G: 1}) // θ huge: forced approximation
	quad := Accel(tr, data, 2, Params{Theta: 10, Eps: 0, G: 1, Quadrupole: true})

	if mono.Interactions != 1 || quad.Interactions != 1 {
		t.Fatalf("approximation not used: %d/%d interactions", mono.Interactions, quad.Interactions)
	}
	errMono := math.Abs(mono.Acc.X - exact.X)
	errQuad := math.Abs(quad.Acc.X - exact.X)
	if errQuad >= errMono/4 {
		t.Fatalf("quadrupole error %g not ≪ monopole error %g (exact %g mono %g quad %g)",
			errQuad, errMono, exact.X, mono.Acc.X, quad.Acc.X)
	}
	// Direction check: the pair is extended along x, so the true axial
	// pull is stronger than the monopole; the correction must be negative
	// (toward the pair, i.e. more negative X).
	if quad.Acc.X >= mono.Acc.X {
		t.Fatalf("quadrupole corrected the wrong way: mono %g quad %g exact %g",
			mono.Acc.X, quad.Acc.X, exact.X)
	}
}

// TestQuadrupoleImprovesAccuracy compares whole-system force errors with
// and without the quadrupole term at the same θ.
func TestQuadrupoleImprovesAccuracy(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 2000, 11)
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass}
	octree.ComputeMomentsSerial(tr, d)

	var errMono, errQuad float64
	n := 0
	for i := 0; i < b.N(); i += 23 {
		exact := Direct(d, int32(i), Params{Theta: 1, Eps: 0.05, G: 1})
		mono := Accel(tr, d, int32(i), Params{Theta: 1.0, Eps: 0.05, G: 1}).Acc
		quad := Accel(tr, d, int32(i), Params{Theta: 1.0, Eps: 0.05, G: 1, Quadrupole: true}).Acc
		scale := exact.Len() + 1e-12
		errMono += mono.Sub(exact).Len() / scale
		errQuad += quad.Sub(exact).Len() / scale
		n++
	}
	errMono /= float64(n)
	errQuad /= float64(n)
	// At θ=1 the expansion converges slowly (the octupole term is not
	// small), so expect a solid but not dramatic improvement.
	if errQuad >= 0.8*errMono {
		t.Fatalf("quadrupole mean error %.3g not below monopole %.3g", errQuad, errMono)
	}
}

// TestQuadrupoleZeroForPoint: a subtree whose mass is concentrated at one
// point has a vanishing quadrupole, so the correction must be ~0.
func TestQuadrupoleZeroForPoint(t *testing.T) {
	pos := []vec.V3{{X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}, {X: -3}}
	mass := []float64{1, 1, 1e-12}
	tr := octree.BuildSerial(pos, 1)
	d := octree.BodyData{Pos: pos, Mass: mass}
	octree.ComputeMomentsSerial(tr, d)
	mono := Accel(tr, d, 2, Params{Theta: 10, Eps: 0, G: 1})
	quad := Accel(tr, d, 2, Params{Theta: 10, Eps: 0, G: 1, Quadrupole: true})
	if diff := quad.Acc.Sub(mono.Acc).Len(); diff > 1e-12 {
		t.Fatalf("coincident masses produced a quadrupole correction %g", diff)
	}
}

// TestQuadrupoleTraceless: the accumulated tensor must stay traceless
// through leaf accumulation and parallel-axis transport.
func TestQuadrupoleTraceless(t *testing.T) {
	b := phys.Generate(phys.ModelTwoClusters, 3000, 5)
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass}
	octree.ComputeMomentsSerial(tr, d)
	octree.Walk(tr, func(r octree.Ref, _ int) bool {
		var q octree.Quadrupole
		if r.IsLeaf() {
			q = tr.Store.Leaf(r).Quad
		} else {
			q = tr.Store.Cell(r).Quad
		}
		trace := q[0] + q[1] + q[2]
		scale := math.Abs(q[0]) + math.Abs(q[1]) + math.Abs(q[2]) + 1
		if math.Abs(trace)/scale > 1e-9 {
			t.Fatalf("node %v trace %g not ~0", r, trace)
		}
		return true
	})
}

// TestQuadrupoleParallelMatchesSerial: the parallel moments pass fills the
// same tensors as the serial one.
func TestQuadrupoleParallelMatchesSerial(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 3000, 9)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass}
	a := octree.BuildSerial(b.Pos, 8)
	octree.ComputeMomentsSerial(a, d)
	c := octree.BuildSerial(b.Pos, 8)
	octree.ComputeMomentsParallel(c, d, 7)
	qa := a.Store.Cell(a.Root).Quad
	qc := c.Store.Cell(c.Root).Quad
	for i := range qa {
		if math.Abs(qa[i]-qc[i]) > 1e-9*(1+math.Abs(qa[i])) {
			t.Fatalf("component %d differs: %g vs %g", i, qa[i], qc[i])
		}
	}
}
