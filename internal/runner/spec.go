// Package runner is the single spec→result execution layer shared by the
// experiment harness and every cmd/ binary. A Spec names one cell of the
// paper's evaluation grid (backend × platform × algorithm × processors ×
// bodies × tuning); a Runner executes specs through either the native
// (real goroutines, wall clock) or the simulated (memsim platform model)
// backend, memoizes outcomes behind a concurrency-safe cache, bounds
// parallelism with a worker pool, and honors context cancellation and
// per-spec timeouts. A given Spec always maps to the same Result
// regardless of how runs are scheduled, so concurrent sweeps stay
// deterministic.
package runner

import (
	"fmt"
	"strings"
	"time"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/phys"
)

// Backend selects the execution engine for a spec.
type Backend string

const (
	// Native runs the real concurrent Go implementation and measures
	// wall-clock time on this machine.
	Native Backend = "native"
	// Simulated replays the application on a memsim platform model and
	// measures simulated time.
	Simulated Backend = "simulated"
)

// Spec is one cell of the evaluation grid. The zero value of every
// optional field selects the documented default, so specs parsed from
// flags or JSON stay terse. Timeout bounds the execution; it is part of
// the spec's identity, so re-running with a longer timeout re-executes.
type Spec struct {
	Backend Backend `json:"backend"`
	// Platform names the simulated machine model (Simulated backend
	// only): challenge, origin, paragon, typhoon-hlrc, typhoon-sc.
	Platform string         `json:"platform,omitempty"`
	Alg      core.Algorithm `json:"algorithm"`
	Procs    int            `json:"procs"`
	Bodies   int            `json:"bodies"`
	LeafCap  int            `json:"leaf_cap"`
	Theta    float64        `json:"theta"`
	Dt       float64        `json:"dt"`
	// Steps is measured time steps, or repetitions when BuildOnly is set.
	Steps int   `json:"steps"`
	Seed  int64 `json:"seed"`
	// Model is the native backend's mass model — any phys scenario
	// model (plummer, uniform, twoclusters, disk, hierarchical). The
	// simulated harness always uses plummer.
	Model string `json:"model,omitempty"`
	// Sequential runs the lock-free single-processor baseline (the
	// paper's speedup denominator). Forces Procs = 1.
	Sequential bool `json:"sequential,omitempty"`
	// BuildOnly benchmarks just the tree-building phase natively,
	// best-of-Steps repetitions (cmd/treebench).
	BuildOnly bool `json:"build_only,omitempty"`
	// Spatial uses a Morton-ordered body assignment for BuildOnly runs,
	// standing in for a settled costzones partition.
	Spatial bool `json:"spatial,omitempty"`
	// Check verifies every tree built during the run against the serial
	// reference (internal/verify) and audits the metrics conservation
	// laws; a violation is recorded in Result.CheckFailure. Simulated
	// specs run a native companion check of the same algorithm and
	// workload, since the platform replay's tree is internal to it.
	Check bool `json:"check,omitempty"`
	// Trace, when set, writes a per-processor trace of the run to this
	// file: the final build for build-only and whole-app native runs, the
	// measured steps (in virtual time) for simulated runs. The format
	// follows the extension — ".csv" gets the summary breakdown table,
	// anything else a Chrome trace_event JSON timeline. The file is
	// written after the wall clock stops, so WallNs is unperturbed; it is
	// part of the spec's identity so traced and untraced runs never share
	// a cache entry.
	Trace   string        `json:"trace,omitempty"`
	Timeout time.Duration `json:"timeout_ns,omitempty"`
}

func (s Spec) withDefaults() Spec {
	if s.Backend == "" {
		s.Backend = Simulated
	}
	if s.Sequential {
		s.Procs = 1
	}
	if s.Procs <= 0 {
		s.Procs = 1
	}
	if s.Bodies <= 0 {
		s.Bodies = 4096
	}
	if s.LeafCap <= 0 {
		s.LeafCap = 8
	}
	if s.Theta == 0 {
		s.Theta = 1.0
	}
	if s.Dt == 0 {
		s.Dt = 0.025
	}
	if s.Steps <= 0 {
		s.Steps = 2
	}
	if s.Seed == 0 {
		s.Seed = 1998
	}
	if s.Model == "" {
		s.Model = phys.ModelPlummer.String()
	}
	if s.Backend == Simulated && s.Platform == "" {
		s.Platform = "origin"
	}
	return s
}

// Normalized returns the spec with every documented default filled in —
// the form Run executes and caches. Validate a spec in this form;
// cmd/partreed normalizes request specs before vetting them.
func (s Spec) Normalized() Spec { return s.withDefaults() }

// Validate reports whether the spec names a runnable cell.
func (s Spec) Validate() error {
	switch s.Backend {
	case Native, Simulated:
	default:
		return fmt.Errorf("runner: unknown backend %q (valid: %s, %s)", s.Backend, Native, Simulated)
	}
	if s.Backend == Simulated {
		if _, err := ParsePlatform(s.Platform, s.Procs); err != nil {
			return err
		}
		if s.BuildOnly {
			return fmt.Errorf("runner: build-only specs require the native backend")
		}
	}
	if _, ok := phys.ParseModel(s.Model); !ok {
		return fmt.Errorf("runner: unknown mass model %q (valid: %s)",
			s.Model, strings.Join(phys.ModelNames(), ", "))
	}
	if int(s.Alg) < 0 || int(s.Alg) >= core.NumAlgorithms {
		return fmt.Errorf("runner: unknown algorithm %d", int(s.Alg))
	}
	return nil
}

// Key is the spec's canonical cache identity: two specs with equal keys
// produce interchangeable results.
func (s Spec) Key() string {
	s = s.withDefaults()
	return fmt.Sprintf("%s|%s|%s|p%d|n%d|k%d|th%g|dt%g|s%d|seed%d|%s|seq%t|build%t|spat%t|chk%t|tr%s|to%d",
		s.Backend, s.Platform, s.Alg, s.Procs, s.Bodies, s.LeafCap, s.Theta, s.Dt,
		s.Steps, s.Seed, s.Model, s.Sequential, s.BuildOnly, s.Spatial, s.Check, s.Trace, int64(s.Timeout))
}

// String renders the spec compactly for logs and labels.
func (s Spec) String() string {
	s = s.withDefaults()
	where := string(s.Backend)
	if s.Backend == Simulated {
		where = s.Platform
	}
	alg := s.Alg.String()
	if s.Sequential {
		alg = "SEQUENTIAL"
	}
	return fmt.Sprintf("%s/%s p=%d n=%d", where, alg, s.Procs, s.Bodies)
}

// platformDefs maps CLI platform names to their constructors. Origin is
// the only preset whose topology depends on the processor count.
var platformDefs = []struct {
	name string
	make func(p int) memsim.Platform
}{
	{"challenge", func(int) memsim.Platform { return memsim.Challenge() }},
	{"origin", memsim.Origin2000},
	{"paragon", func(int) memsim.Platform { return memsim.Paragon() }},
	{"typhoon-hlrc", func(int) memsim.Platform { return memsim.TyphoonHLRC() }},
	{"typhoon-sc", func(int) memsim.Platform { return memsim.TyphoonSC() }},
}

// PlatformNames lists the valid -platform values.
func PlatformNames() []string {
	out := make([]string, len(platformDefs))
	for i, d := range platformDefs {
		out[i] = d.name
	}
	return out
}

// CanonicalPlatform maps either a CLI name or a memsim display name
// (e.g. "Origin2000", "Typhoon-0/HLRC") to the canonical CLI name.
func CanonicalPlatform(name string) (string, bool) {
	for _, d := range platformDefs {
		if strings.EqualFold(name, d.name) || strings.EqualFold(name, d.make(1).Name) {
			return d.name, true
		}
	}
	return "", false
}

// ParsePlatform resolves a platform name (case-insensitive, CLI or
// display form) into the machine model sized for p processors.
func ParsePlatform(name string, p int) (memsim.Platform, error) {
	if canon, ok := CanonicalPlatform(name); ok {
		for _, d := range platformDefs {
			if d.name == canon {
				return d.make(p), nil
			}
		}
	}
	return memsim.Platform{}, fmt.Errorf("runner: unknown platform %q (valid: %s)",
		name, strings.Join(PlatformNames(), ", "))
}
