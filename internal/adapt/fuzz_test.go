package adapt

import (
	"math"
	"testing"

	"partree/internal/octree"
)

// FuzzLedgerBlend hammers the EWMA update with arbitrary blend weights,
// measured times (including negatives and extremes), and modeled seed
// costs: whatever comes in, the estimates must stay finite, positive,
// inside the clamp band, and normalized, and the rendered integer costs
// must stay in [1, maxCostInt] with a non-overflowing positive total.
func FuzzLedgerBlend(f *testing.F) {
	f.Add(0.3, int64(1000), int64(2000), int64(3000), int64(1), uint8(3))
	f.Add(1.0, int64(1<<62), int64(0), int64(-5), int64(1<<40), uint8(1))
	f.Add(-2.5, int64(-1), int64(-1), int64(-1), int64(0), uint8(7))
	f.Add(math.Inf(1), int64(7), int64(7), int64(7), int64(math.MaxInt64), uint8(2))
	f.Fuzz(func(t *testing.T, alpha float64, ns0, ns1, ns2 int64, seedCost int64, rounds uint8) {
		const n, p = 30, 3
		lg := NewLedger(alpha)
		if !(lg.alpha > 0) || lg.alpha > 1 {
			t.Fatalf("constructor let alpha %v through as %v", alpha, lg.alpha)
		}
		modeled := make([]int64, n)
		for i := range modeled {
			modeled[i] = seedCost
		}
		d := octree.BodyData{Cost: modeled}
		assign := seqAssign(n, p)
		sum := mkSummary(ns0, ns1, ns2)
		lg.Costs(d, n) // seed from modeled first, like a step-0 partition
		for r := 0; r < int(rounds%16)+1; r++ {
			lg.Observe(assign, sum)
		}
		var estSum float64
		for i, e := range lg.Estimates() {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("estimate[%d] = %v", i, e)
			}
			if e < minEst || e > maxEst {
				t.Fatalf("estimate[%d] = %v escaped clamp [%v, %v]", i, e, float64(minEst), float64(maxEst))
			}
			estSum += e
		}
		if len(lg.Estimates()) != n {
			t.Fatalf("estimate sized %d, want %d", len(lg.Estimates()), n)
		}
		costs, total := lg.Costs(d, n)
		var check int64
		for i, c := range costs {
			if c < 1 || c > maxCostInt {
				t.Fatalf("cost[%d] = %d out of [1, %d]", i, c, int64(maxCostInt))
			}
			check += c
		}
		if total != check || total <= 0 {
			t.Fatalf("total %d, slice sums to %d", total, check)
		}
	})
}
