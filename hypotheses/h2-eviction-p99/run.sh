#!/bin/sh
# h2-eviction-p99: session idle eviction keeps p99 session latency
# bounded under diurnal overload.
#
# Setup: one partreed with a tight lease limit (-max-sessions 8), and
# lingering loadgen sessions (-linger: clients hold the lease open
# after their steps instead of closing). Under a diurnal overload
# arrival the leases are the bottleneck; the only thing that frees
# them is the server's idle eviction.
#
# Two arms, identical traffic (same scenario, arrival, seed — the
# schedule digest in the reports proves it):
#   evict:    -idle-ms 200    (eviction reclaims leases promptly)
#   no-evict: -idle-ms 10000  (eviction so slow it never helps in-run)
#
# Decision rule: the evict arm's p99 stays under 2000 ms AND the
# no-evict arm's p99 is at least 3x the evict arm's AND the evict arm
# actually evicted sessions (metrics_delta.sessions_evicted > 0).
cd "$(dirname "$0")"
. ../lib/harness.sh
pt_init

lg="$PT_TMP/loadgen"
pd="$PT_TMP/partreed"
pt_run 120 "$GO" build -o "$lg" ../../cmd/loadgen
pt_run 120 "$GO" build -o "$pd" ../../cmd/partreed

pt_daemon_start "$pd" -max-sessions 8
echo "h2: partreed at $PT_URL (max-sessions 8)"

common="-url $PT_URL -mode session -scenario plummer \
    -arrival diurnal:rate=40,period=2s,depth=0.9 -horizon 3s -speedup 1 \
    -n 512 -procs 2 -steps 3 -seed 1998 -linger -timeout 30s"

pt_run 60 "$lg" $common -idle-ms 200 \
    -report results/evict.report.json -timings results/evict.timings.csv
pt_run 60 "$lg" $common -idle-ms 10000 \
    -report results/noevict.report.json -timings results/noevict.timings.csv

# Same traffic in both arms?
d1=$(jq -r .schedule.digest results/evict.report.json)
d2=$(jq -r .schedule.digest results/noevict.report.json)
if [ "$d1" != "$d2" ]; then
    echo "h2: arms saw different schedules ($d1 vs $d2)" >&2
    exit 1
fi

p99() { awk -F, '$1 == "p99_ms" { print int($2) }' "$1"; }
p99_evict=$(p99 results/evict.timings.csv)
p99_noevict=$(p99 results/noevict.timings.csv)
evicted=$(jq -r .metrics_delta.sessions_evicted results/evict.report.json)
ok_evict=$(jq -r .outcomes.ok results/evict.report.json)
ok_noevict=$(jq -r .outcomes.ok results/noevict.report.json)
rej_evict=$(jq -r .outcomes.rejected results/evict.report.json)
rej_noevict=$(jq -r .outcomes.rejected results/noevict.report.json)

echo "h2: evict    p99=${p99_evict}ms ok=$ok_evict rejected=$rej_evict evicted=$evicted"
echo "h2: no-evict p99=${p99_noevict}ms ok=$ok_noevict rejected=$rej_noevict"

if [ "$evicted" -gt 0 ] && [ "$p99_evict" -lt 2000 ] &&
    [ "$p99_noevict" -ge $((3 * p99_evict)) ] &&
    [ "$ok_evict" -gt "$ok_noevict" ]; then
    pt_confirm "eviction bounds p99 at ${p99_evict}ms (vs ${p99_noevict}ms) and admits $ok_evict vs $ok_noevict sessions on identical traffic"
else
    pt_refute "p99 evict=${p99_evict}ms no-evict=${p99_noevict}ms evicted=$evicted (see results/)"
    exit 1
fi
