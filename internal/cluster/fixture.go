package cluster

import (
	"fmt"
	"net/http"
	"runtime"

	"partree/internal/engine"
	"partree/internal/obs"
	"partree/internal/partition"
	"partree/internal/runner"
)

// Fixture is a whole cluster inside one process: N shard servers and a
// router, each on its own loopback listener, wired together by a real
// addressed map. The e2e tests and cmd/treebench's cluster bench cell
// run against it; scripts/cluster_smoke.sh runs the same topology with
// real partreed and partree-router processes.
//
// Caveat: the process-global build counters (partree_build_*) are
// shared by every in-process shard, so each shard's /metrics reports
// process totals and the rollup's sums over those families multiply-
// count. Assertions against a Fixture should use the per-instance
// partree_shard_* families and merged ClusterResults; the process-
// global rollups are meaningful only for the real multi-process
// deployment.
type Fixture struct {
	Map     Map
	Shards  []*ShardServer
	Engines []*engine.Engine
	Router  *Router

	shardSrvs []*obs.Server
	routerSrv *obs.Server
}

// FixtureOptions size an in-process cluster.
type FixtureOptions struct {
	Shards int
	// Version stamps the map (default 1).
	Version int
	// Domain is the shared keying cube (default centered 4-cube, which
	// contains the standard scenario models at their default scale).
	Domain Domain
	// Engine configures each shard's engine; the zero value uses the
	// engine defaults (MaxActive = GOMAXPROCS).
	Engine engine.Options
	// Client tunes the router's shard clients.
	Client ClientOptions
	// Cuts, when non-nil, overrides the uniform split: len(Cuts)+1
	// shards with boundaries at the given keys (each cut in (0,
	// KeySpace), strictly increasing). Edge-case tests use it to build
	// deliberately skewed maps (e.g. a near-empty first shard).
	Cuts []uint64
}

// StartLocal brings up the fixture: shards first (each obtains its
// loopback address by binding :0), then the router over the addressed
// map. The shards themselves run on addr-less map copies — a shard
// never needs to know where its peers live.
func StartLocal(o FixtureOptions) (*Fixture, error) {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Version == 0 {
		o.Version = 1
	}
	if o.Domain.Size == 0 {
		o.Domain = Domain{Size: 4}
	}
	if o.Engine.MaxActive == 0 {
		o.Engine.MaxActive = runtime.GOMAXPROCS(0)
	}
	var m Map
	if o.Cuts != nil {
		m = Map{Version: o.Version, Domain: o.Domain}
		bounds := append(append([]uint64{0}, o.Cuts...), partition.KeySpace)
		for i := 0; i+1 < len(bounds); i++ {
			m.Shards = append(m.Shards, Shard{ID: fmt.Sprintf("s%d", i), Lo: bounds[i], Hi: bounds[i+1]})
		}
		o.Shards = len(m.Shards)
		if err := m.Validate(); err != nil {
			return nil, err
		}
	} else {
		m = UniformMap(o.Version, o.Domain, o.Shards)
	}
	f := &Fixture{}

	fail := func(err error) (*Fixture, error) {
		f.Close()
		return nil, err
	}
	for i := 0; i < o.Shards; i++ {
		eng := engine.New(o.Engine)
		ss, err := NewShardServer(m.WithoutAddrs(), i, eng)
		if err != nil {
			return fail(err)
		}
		reg := obs.NewRegistry()
		if err := ss.RegisterObs(reg); err != nil {
			return fail(err)
		}
		if err := eng.RegisterObs(reg); err != nil {
			return fail(err)
		}
		if err := runner.RegisterBuildObs(reg); err != nil {
			return fail(err)
		}
		srv, err := obs.ServeWith("127.0.0.1:0", "partree-shard", reg,
			func() bool { return true }, func(mux *http.ServeMux) { ss.Mount(mux, nil) })
		if err != nil {
			return fail(fmt.Errorf("starting shard %d: %w", i, err))
		}
		m.Shards[i].Addr = srv.Addr()
		f.Shards = append(f.Shards, ss)
		f.Engines = append(f.Engines, eng)
		f.shardSrvs = append(f.shardSrvs, srv)
	}

	rt, err := NewRouter(RouterOptions{Map: m, Client: o.Client})
	if err != nil {
		return fail(err)
	}
	reg := obs.NewRegistry()
	if err := rt.RegisterObs(reg); err != nil {
		return fail(err)
	}
	srv, err := obs.ServeWith("127.0.0.1:0", "partree-router", reg,
		func() bool { return true }, func(mux *http.ServeMux) { rt.Mount(mux, nil) })
	if err != nil {
		return fail(fmt.Errorf("starting router: %w", err))
	}
	f.Map = m
	f.Router = rt
	f.routerSrv = srv
	return f, nil
}

// RouterURL returns the router's base URL.
func (f *Fixture) RouterURL() string { return f.routerSrv.URL() }

// ShardURL returns shard i's base URL.
func (f *Fixture) ShardURL(i int) string { return f.shardSrvs[i].URL() }

// Close tears the fixture down (idempotent; safe on a half-built
// fixture).
func (f *Fixture) Close() {
	if f.routerSrv != nil {
		f.routerSrv.Close()
		f.routerSrv = nil
	}
	for _, s := range f.shardSrvs {
		s.Close()
	}
	f.shardSrvs = nil
}
