package mp

import (
	"partree/internal/octree"
	"partree/internal/vec"
)

// MassPoint is a multipole summary of a remote subtree, shipped between
// ranks. Any body inside the destination box satisfies the θ criterion
// against it by construction, so the receiver sums it directly.
type MassPoint struct {
	COM  vec.V3
	Mass float64
	Quad octree.Quadrupole
}

// RemoteBody is an individual body shipped because its leaf sat too close
// to the destination box to summarize.
type RemoteBody struct {
	Pos  vec.V3
	Mass float64
}

// Wire sizes (bytes) used for communication accounting.
const (
	MassPointBytes  = 80 // COM(24) + mass(8) + quadrupole(48)
	RemoteBodyBytes = 32 // pos(24) + mass(8)
	HeaderBytes     = 16
)

// Essential extracts the locally essential set of tree t for a remote
// domain box: walking from the root, a node whose cell satisfies
// size < θ·dist(box, COM) can never be opened by any body in the box and
// is exported as a single MassPoint; leaves that fail the test export
// their bodies. The receiver needs no further communication during force
// evaluation — Salmon's locally essential tree, in its flattened form.
func Essential(t *octree.Tree, d octree.BodyData, box vec.Box, theta float64) ([]MassPoint, []RemoteBody) {
	var mps []MassPoint
	var rbs []RemoteBody
	if t.Root.IsNil() {
		return nil, nil
	}
	var rec func(r octree.Ref)
	rec = func(r octree.Ref) {
		if r.IsLeaf() {
			l := t.Store.Leaf(r)
			dist := box.Dist(l.COM)
			if l.Cube.Size < theta*dist {
				mps = append(mps, MassPoint{COM: l.COM, Mass: l.Mass, Quad: l.Quad})
				return
			}
			for _, b := range l.Bodies {
				rbs = append(rbs, RemoteBody{Pos: d.Pos[b], Mass: d.Mass[b]})
			}
			return
		}
		c := t.Store.Cell(r)
		if c.NBody == 0 {
			return
		}
		dist := box.Dist(c.COM)
		if c.Cube.Size < theta*dist {
			mps = append(mps, MassPoint{COM: c.COM, Mass: c.Mass, Quad: c.Quad})
			return
		}
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				rec(ch)
			}
		}
	}
	rec(t.Root)
	return mps, rbs
}

// letBytes is the wire size of one essential set.
func letBytes(mps []MassPoint, rbs []RemoteBody) int64 {
	return HeaderBytes + int64(len(mps))*MassPointBytes + int64(len(rbs))*RemoteBodyBytes
}
