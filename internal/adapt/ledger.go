// Package adapt closes the measured-cost feedback gap: costzones cuts
// its zones along *modeled* per-body costs (interaction counts from the
// previous force pass), while internal/trace measures what each processor
// actually spent building its zone. On skewed or time-evolving
// distributions the two disagree — the exact load-imbalance failure
// Singh's scheme was built to remove. This package attributes each step's
// measured per-processor phase time back to the bodies the processor
// owned, blends it into a per-body cost estimate with an exponentially
// weighted update, and cuts the next step's zones along the corrected
// estimate instead; a companion tuner adjusts the build knobs (leaf
// capacity, SPACE threshold, effective P) from live phase and lock
// fractions with FallbackController-style hysteresis. Controller
// implements core.Adapter, so a core.Stepper (and through it an
// internal/engine lease and a partreed session) carries the loop.
package adapt

import (
	"partree/internal/octree"
	"partree/internal/trace"
)

const (
	// defaultAlpha is the EWMA blend weight for the measured estimate.
	defaultAlpha = 0.3
	// minEst/maxEst clamp a body's relative estimate so one bad
	// measurement (or a NaN from a zero division upstream) can neither
	// zero a body out of the partition nor monopolize it.
	minEst = 1e-6
	maxEst = 1e6
	// costScale is the mean integer cost Costs renders the estimates at:
	// large enough that estimate ratios survive rounding, small enough
	// that n·maxCostInt cannot overflow costzones' acc*p accumulator.
	costScale = 1024
	// maxCostInt caps a single rendered cost at 2^24, so even 2^22
	// bodies of maximal cost keep Σcost·p below int64 range.
	maxCostInt = 1 << 24
)

// Ledger maintains the measurement-corrected per-body cost estimate. The
// estimate is kept *relative* — normalized to mean 1 after every update —
// because the two inputs have incompatible units (modeled interaction
// counts vs measured nanoseconds); only each body's share of the total
// matters to a partition.
type Ledger struct {
	alpha float64
	est   []float64
	// work and rendered are scratch reused across steps so the per-step
	// loop stays allocation-free once warm.
	work     []int64
	rendered []int64
}

// NewLedger returns a ledger blending measurements at weight alpha
// (0 < alpha ≤ 1); out-of-range values select the default 0.3.
func NewLedger(alpha float64) *Ledger {
	if !(alpha > 0) || alpha > 1 {
		alpha = defaultAlpha
	}
	return &Ledger{alpha: alpha}
}

// seed sizes the estimate for n bodies, initializing each body's share
// from the modeled costs in d (uniform when they carry no signal). A
// body-count change resets the ledger: the estimate indexes bodies by
// position, which a resize invalidates.
func (lg *Ledger) seed(d octree.BodyData, n int) {
	if len(lg.est) == n {
		return
	}
	lg.est = make([]float64, n)
	var total int64
	if d.Cost != nil {
		for b := int32(0); int(b) < n; b++ {
			total += d.CostOf(b)
		}
	}
	if total <= 0 {
		for i := range lg.est {
			lg.est[i] = 1
		}
		return
	}
	mean := float64(total) / float64(n)
	for b := int32(0); int(b) < n; b++ {
		lg.est[b] = clampEst(float64(d.CostOf(b)) / mean)
	}
	lg.normalize()
}

// Observe attributes one step's measured per-processor insert time back
// to the bodies each processor owned and blends it into the estimate:
// zone w's bodies collectively earn work_w/Σwork of the total estimate
// mass, distributed within the zone proportionally to their current
// estimates (the trace cannot see inside a zone, so intra-zone shape is
// preserved). Returns whether a correction was applied; mismatched or
// signal-free summaries (untraced builds, zero insert time) are skipped.
func (lg *Ledger) Observe(assign [][]int32, sum *trace.Summary) bool {
	if sum == nil || len(sum.PerProc) != len(assign) || len(assign) == 0 {
		return false
	}
	n := 0
	for _, zone := range assign {
		n += len(zone)
	}
	if n == 0 {
		return false
	}
	if len(lg.est) != n {
		// First contact through Observe (Partition has not seeded yet):
		// start uniform; the modeled shape arrives with the next seed.
		lg.est = make([]float64, n)
		for i := range lg.est {
			lg.est[i] = 1
		}
	}
	if cap(lg.work) < len(assign) {
		lg.work = make([]int64, len(assign))
	}
	work := lg.work[:len(assign)]
	var totalNs int64
	for w := range sum.PerProc {
		v := sum.PerProc[w].PhaseNs[trace.PhaseInsert]
		if v < 0 {
			v = 0
		}
		work[w] = v
		totalNs += v
	}
	if totalNs <= 0 {
		return false
	}
	var totalEst float64
	zoneEst := make([]float64, len(assign))
	for w, zone := range assign {
		var ze float64
		for _, b := range zone {
			ze += lg.est[b]
		}
		zoneEst[w] = ze
		totalEst += ze
	}
	if !(totalEst > 0) {
		return false
	}
	for w, zone := range assign {
		if len(zone) == 0 {
			continue
		}
		target := float64(work[w]) / float64(totalNs) * totalEst
		scale := 0.0
		if zoneEst[w] > 0 {
			scale = target / zoneEst[w]
		}
		for _, b := range zone {
			measured := lg.est[b] * scale
			if zoneEst[w] <= 0 {
				measured = target / float64(len(zone))
			}
			lg.est[b] = clampEst((1-lg.alpha)*lg.est[b] + lg.alpha*measured)
		}
	}
	lg.normalize()
	return true
}

// Costs renders the estimate as integer per-body costs (mean costScale,
// clamped to [1, maxCostInt]) plus their exact sum — the pair
// partition.CostzonesTotal consumes. The ledger is seeded from d's
// modeled costs if this is its first sight of the body set. The returned
// slice is the ledger's scratch: valid until the next Costs call.
func (lg *Ledger) Costs(d octree.BodyData, n int) ([]int64, int64) {
	lg.seed(d, n)
	if cap(lg.rendered) < n {
		lg.rendered = make([]int64, n)
	}
	out := lg.rendered[:n]
	var total int64
	for i, e := range lg.est {
		c := int64(e * costScale)
		if c < 1 {
			c = 1
		} else if c > maxCostInt {
			c = maxCostInt
		}
		out[i] = c
		total += c
	}
	return out, total
}

// Estimates exposes the relative per-body estimate for tests and
// diagnostics; the slice is live, not a copy.
func (lg *Ledger) Estimates() []float64 { return lg.est }

// clampEst bounds one estimate, mapping NaN (which fails every
// comparison) to the floor.
func clampEst(v float64) float64 {
	if !(v > minEst) {
		return minEst
	}
	if v > maxEst {
		return maxEst
	}
	return v
}

// normalize rescales the estimate to mean 1 so EWMA drift cannot walk
// the whole distribution toward a clamp over many steps.
func (lg *Ledger) normalize() {
	if len(lg.est) == 0 {
		return
	}
	var sum float64
	for _, e := range lg.est {
		sum += e
	}
	mean := sum / float64(len(lg.est))
	if !(mean > 0) {
		for i := range lg.est {
			lg.est[i] = 1
		}
		return
	}
	for i := range lg.est {
		lg.est[i] = clampEst(lg.est[i] / mean)
	}
}
