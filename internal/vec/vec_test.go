package vec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)+math.Abs(b)) }

func TestAddSubRoundTrip(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3{ax, ay, az}
		b := V3{bx, by, bz}
		r := a.Add(b).Sub(b)
		return almostEq(r.X, a.X) && almostEq(r.Y, a.Y) && almostEq(r.Z, a.Z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3{ax, ay, az}
		b := V3{bx, by, bz}
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		c := a.Cross(b)
		scale := a.Len()*b.Len() + 1
		return math.Abs(c.Dot(a))/scale/scale < 1e-9 && math.Abs(c.Dot(b))/scale/scale < 1e-9
	}
	cfg := &quick.Config{Values: func(vals []reflect.Value, r *rand.Rand) {
		for i := range vals {
			vals[i] = reflect.ValueOf(r.NormFloat64() * 100)
		}
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestScaleDistributes(t *testing.T) {
	a := V3{1, -2, 3}
	b := V3{4, 5, -6}
	l := a.Add(b).Scale(2.5)
	r := a.Scale(2.5).Add(b.Scale(2.5))
	if l != r {
		t.Fatalf("scale does not distribute: %v vs %v", l, r)
	}
}

func TestMulAdd(t *testing.T) {
	a := V3{1, 2, 3}
	b := V3{10, 20, 30}
	got := a.MulAdd(0.5, b)
	want := V3{6, 12, 18}
	if got != want {
		t.Fatalf("MulAdd = %v, want %v", got, want)
	}
}

func TestLenDist(t *testing.T) {
	a := V3{3, 4, 0}
	if a.Len() != 5 {
		t.Fatalf("Len = %v, want 5", a.Len())
	}
	if d := a.Dist(V3{0, 0, 0}); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d2 := a.Dist2(V3{3, 4, 12}); d2 != 144 {
		t.Fatalf("Dist2 = %v, want 144", d2)
	}
}

func TestMinMaxComponentwise(t *testing.T) {
	a := V3{1, 5, -2}
	b := V3{0, 9, -1}
	if got := a.Min(b); got != (V3{0, 5, -2}) {
		t.Fatalf("Min = %v", got)
	}
	if got := a.Max(b); got != (V3{1, 9, -1}) {
		t.Fatalf("Max = %v", got)
	}
	if mc := a.MaxComponent(); mc != 5 {
		t.Fatalf("MaxComponent = %v", mc)
	}
}

func TestIsFinite(t *testing.T) {
	if !(V3{1, 2, 3}).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	for _, bad := range []V3{
		{math.NaN(), 0, 0},
		{0, math.Inf(1), 0},
		{0, 0, math.Inf(-1)},
	} {
		if bad.IsFinite() {
			t.Fatalf("%v reported finite", bad)
		}
	}
}

func TestNeg(t *testing.T) {
	if got := (V3{1, -2, 3}).Neg(); got != (V3{-1, 2, -3}) {
		t.Fatalf("Neg = %v", got)
	}
}
