package phys

import "math"

// Kick applies half a velocity update: v += acc * dt/2 for bodies in
// [lo,hi). The leapfrog scheme used by BARNES is kick-drift-kick; callers
// split the range so processors update only their assigned bodies, exactly
// the "update phase" of the paper.
func (b *Bodies) Kick(lo, hi int, dt float64) {
	h := dt / 2
	for i := lo; i < hi; i++ {
		b.Vel[i] = b.Vel[i].MulAdd(h, b.Acc[i])
	}
}

// Drift advances positions: x += v * dt for bodies in [lo,hi).
func (b *Bodies) Drift(lo, hi int, dt float64) {
	for i := lo; i < hi; i++ {
		b.Pos[i] = b.Pos[i].MulAdd(dt, b.Vel[i])
	}
}

// KineticEnergy returns the total kinetic energy ½Σmv².
func (b *Bodies) KineticEnergy() float64 {
	var ke float64
	for i := range b.Vel {
		ke += 0.5 * b.Mass[i] * b.Vel[i].Len2()
	}
	return ke
}

// PotentialEnergy returns the exact pairwise potential -ΣΣ m_i m_j / r_ij
// with Plummer softening eps. O(N²): used by tests and diagnostics only.
func (b *Bodies) PotentialEnergy(eps float64) float64 {
	var pe float64
	e2 := eps * eps
	for i := 0; i < b.N(); i++ {
		for j := i + 1; j < b.N(); j++ {
			d2 := b.Pos[i].Dist2(b.Pos[j]) + e2
			pe -= b.Mass[i] * b.Mass[j] / math.Sqrt(d2)
		}
	}
	return pe
}
