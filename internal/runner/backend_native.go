package runner

import (
	"context"
	"fmt"
	"time"

	"partree/internal/core"
	"partree/internal/engine"
	"partree/internal/force"
	"partree/internal/nbody"
	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/reqtrace"
	"partree/internal/trace"
	"partree/internal/verify"
)

// sessionFor acquires a pooled engine session for the spec, or reports
// (nil, nil, true) when the spec must construct its own builder: traced
// specs pin a recorder at construction, which a shared session cannot
// carry. A non-nil error is an admission rejection.
func sessionFor(ctx context.Context, spec Spec, eng *engine.Engine) (*engine.Session, error, bool) {
	if eng == nil || spec.Trace != "" {
		return nil, nil, true
	}
	s, err := eng.Acquire(ctx, engine.Key{Alg: spec.Alg, P: spec.Procs, LeafCap: spec.LeafCap})
	return s, err, false
}

// admissionResult renders an engine admission rejection as a failed,
// transient Result: waiters on the in-flight entry observe it, but the
// cache drops it, so the same spec retried later is admitted fresh.
func admissionResult(spec Spec, err error) Result {
	return Result{Spec: spec, Err: fmt.Sprintf("native run %s: %v", spec, err), transient: true}
}

// runNative executes the real concurrent implementation. Steps are
// natural preemption points, so cancellation and timeouts yield a
// partial Result carrying whatever completed. With a non-nil engine, the
// build runs through a pooled session's persistent builder.
func runNative(ctx context.Context, spec Spec, bodies *phys.Bodies, eng *engine.Engine) Result {
	if spec.BuildOnly {
		return runNativeBuild(ctx, spec, bodies, eng)
	}
	m, _ := phys.ParseModel(spec.Model)
	opts := nbody.DefaultOptions()
	opts.Model = m
	opts.N = bodies.N()
	opts.Seed = spec.Seed
	opts.P = spec.Procs
	opts.Alg = spec.Alg
	opts.LeafCap = spec.LeafCap
	opts.Dt = spec.Dt
	opts.Force = force.DefaultParams()
	opts.Force.Theta = spec.Theta
	opts.Check = spec.Check
	var rec *trace.Recorder
	if spec.Trace != "" {
		// Every build resets the recorder, so the exported trace covers
		// the final step's build.
		rec = trace.New(spec.Procs)
		rec.SetEnabled(true)
		opts.Trace = rec
	}
	if ses, err, own := sessionFor(ctx, spec, eng); err != nil {
		return admissionResult(spec, err)
	} else if !own {
		defer ses.Release()
		opts.Builder = ses.Builder()
	}
	sim := nbody.NewFromBodies(opts, bodies.Clone())

	rq := reqtrace.FromContext(ctx)
	var stepsStart time.Time
	if rq != nil {
		stepsStart = time.Now()
	}
	res := Result{Spec: spec, LocksPerProc: make([]int64, spec.Procs), rec: rec}
	finalize := func() Result {
		rq.SpanSince("steps", stepsStart)
		res.TotalNs = res.TreeNs + res.PartNs + res.ForceNs + res.UpdateNs
		if res.TotalNs > 0 {
			res.TreeShare = res.TreeNs / res.TotalNs
		}
		return res
	}
	for i := 0; i < spec.Steps; i++ {
		if err := ctx.Err(); err != nil {
			res.Err = fmt.Sprintf("native run %s: %v after %d/%d steps", spec, err, i, spec.Steps)
			return finalize()
		}
		st := sim.Step()
		if rq != nil {
			t := st.Build.Timing
			rq.AddBuildPhases(t.Bounds, t.Insert, t.Moments)
			rq.BridgeTrace(st.Build.Trace)
		}
		res.TreeNs += float64(st.TreeBuild)
		res.PartNs += float64(st.Partition)
		res.ForceNs += float64(st.Force)
		res.UpdateNs += float64(st.Update)
		res.LocksTotal += st.Build.TotalLocks()
		res.Retries += st.Build.TotalRetries()
		for w, l := range st.Build.LocksPerProc() {
			res.LocksPerProc[w] += l
		}
		res.Cells = int64(st.TreeStats.Cells)
		res.Leaves = int64(st.TreeStats.Leaves)
		res.MaxDepth = int64(st.TreeStats.MaxDepth)
		res.Interactions += st.Phase.Interactions
		res.StepsDone = i + 1
		if st.CheckErr != nil {
			// A wrong tree makes every later step's timing meaningless;
			// stop here with what was measured.
			res.CheckFailure = st.CheckErr.Error()
			return finalize()
		}
	}
	return finalize()
}

// runNativeBuild benchmarks just the tree-building phase: Steps
// repetitions of one build, reporting the best wall-clock time (what
// cmd/treebench measures). With a non-nil engine, the repetitions run
// through a pooled session, so only the first-ever rep for a key pays
// store allocation.
func runNativeBuild(ctx context.Context, spec Spec, bodies *phys.Bodies, eng *engine.Engine) Result {
	var bld core.Builder
	var rec *trace.Recorder
	if ses, err, own := sessionFor(ctx, spec, eng); err != nil {
		return admissionResult(spec, err)
	} else if own {
		cfg := core.Config{P: spec.Procs, LeafCap: spec.LeafCap}
		if spec.Trace != "" {
			rec = trace.New(spec.Procs)
			cfg.Trace = rec
		}
		bld = core.New(spec.Alg, cfg)
	} else {
		defer ses.Release()
		bld = ses.Builder()
	}
	assign := core.EvenAssign(bodies.N(), spec.Procs)
	if spec.Spatial {
		assign = core.SpatialAssign(bodies, spec.Procs)
	}
	in := &core.Input{Bodies: bodies.Clone(), Assign: assign}
	rq := reqtrace.FromContext(ctx)
	res := Result{Spec: spec, rec: rec}
	best := time.Duration(1 << 62)
	for rep := 0; rep < spec.Steps; rep++ {
		if err := ctx.Err(); err != nil {
			res.Err = fmt.Sprintf("native build %s: %v after %d/%d reps", spec, err, rep, spec.Steps)
			return res
		}
		// Record only the last repetition, so warm-up builds neither
		// perturb the best-of timing nor pollute the exported trace.
		rec.SetEnabled(rep == spec.Steps-1)
		in.Step = rep
		start := time.Now()
		tree, metrics := bld.Build(in)
		el := time.Since(start)
		if el < best {
			best = el
		}
		// One "build" span per repetition; the phase breakdown
		// accumulates across reps (total build work this request did),
		// and the traced summary — recorded on the last rep only — is
		// bridged verbatim.
		if rq != nil {
			rq.SpanAt("build", start, start.Add(el))
			t := metrics.Timing
			rq.AddBuildPhases(t.Bounds, t.Insert, t.Moments)
			rq.BridgeTrace(metrics.Trace)
		}
		if spec.Check {
			if err := verify.Build(spec.Alg, tree, metrics, in.Bodies, rep); err != nil {
				res.CheckFailure = err.Error()
				res.StepsDone = rep + 1
				return res
			}
		}
		st := octree.CollectStats(tree)
		res.Cells = int64(st.Cells)
		res.Leaves = int64(st.Leaves)
		res.MaxDepth = int64(st.MaxDepth)
		res.LocksTotal = metrics.TotalLocks()
		res.LocksPerProc = metrics.LocksPerProc()
		res.Retries = metrics.TotalRetries()
		res.StepsDone = rep + 1
	}
	res.TreeNs = float64(best)
	res.TotalNs = res.TreeNs
	res.TreeShare = 1
	return res
}
