package core

import (
	"time"

	"partree/internal/octree"
	"partree/internal/trace"
	"partree/internal/vec"
)

// partreeBuilder implements PARTREE: each processor builds a private local
// tree over its assigned bodies with no synchronization at all, then the
// local trees are merged into the global tree. The unit of merge work is a
// cell or whole subtree rather than a single body, which cuts the number
// of global (locked) insert operations dramatically — the paper's step
// between the lock-per-body algorithms and the lock-free SPACE.
type partreeBuilder struct {
	cfg   Config
	store *octree.Store
}

func newPartree(cfg Config) Builder {
	// Arena p is processor p's local-tree arena; the global root lives in
	// arena 0 (processor 0 creates it).
	return &partreeBuilder{cfg: cfg, store: octree.NewStore(cfg.P, cfg.LeafCap)}
}

func (pb *partreeBuilder) Algorithm() Algorithm { return PARTREE }

func (pb *partreeBuilder) Build(in *Input) (*octree.Tree, *Metrics) {
	p := in.P()
	m := newMetrics(PARTREE, p)
	s := pb.store

	tr := pb.cfg.traceStart()
	t0 := time.Now()
	cube := parallelBounds(in, pb.cfg.Margin, tr)
	s.Reset()
	tree := octree.NewTree(s, 0, 0, cube)
	t1 := time.Now()

	pos := in.Bodies.Pos
	tracedDo(tr, trace.PhaseInsert, p, func(w int) {
		ins := &inserter{s: s, arena: w, proc: w, pc: &m.PerP[w], tp: tr.Proc(w)}

		// Phase 1: private local tree; InsertParticlesInTree in the
		// paper's skeleton. The local root's dimensions are precomputed
		// to match the global root, so a cell in one tree represents
		// exactly the same subspace as in any other.
		localRoot, _ := ins.allocCell(cube, octree.Nil)
		for _, b := range in.Assign[w] {
			ins.insertPrivate(localRoot, 0, b, pos)
		}
		m.PerP[w].BodiesBuilt += int64(len(in.Assign[w]))

		// Phase 2: MergeLocalTrees.
		lc := s.Cell(localRoot)
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := lc.Child(o); !ch.IsNil() {
				ins.mergeChild(tree.Root, o, ch, 0, pos)
			}
		}
	})
	t2 := time.Now()

	mt := traceNow(tr)
	octree.ComputeMomentsParallel(tree, bodyData(in.Bodies), p)
	spanAll(tr, trace.PhaseMoments, mt, p)
	t3 := time.Now()

	m.Timing.Bounds += t1.Sub(t0)
	m.Timing.Insert += t2.Sub(t1)
	m.Timing.Moments += t3.Sub(t2)
	if tr != nil {
		m.Trace = tr.Summarize()
	}
	return tree, m
}

// mergeChild merges local node lc (private to this processor) into the
// global tree as a child of gcell at octant o. gcell sits at gdepth.
// Merging decisions depend only on the *types* of the global slot and the
// local node, exactly as in the paper: local cells match global cells by
// construction because both trees share the root dimensions.
func (ins *inserter) mergeChild(gcell octree.Ref, o vec.Octant, lc octree.Ref, gdepth int, pos []vec.V3) {
	s := ins.s
	for {
		ins.pc.MergeOps++
		c := s.Cell(gcell)
		slot := c.Child(o)
		switch {
		case slot.IsNil():
			// Transplant the whole private subtree in one shot.
			mu := ins.lockNode(gcell)
			if !c.Child(o).IsNil() {
				ins.unlockNode(mu)
				ins.pc.Retries++
				continue
			}
			if lc.IsLeaf() {
				s.Leaf(lc).Parent = gcell
			} else {
				s.Cell(lc).Parent = gcell
			}
			c.SetChild(o, lc)
			ins.pc.Attached++
			ins.unlockNode(mu)
			return

		case slot.IsLeaf():
			mu := ins.lockNode(slot)
			if c.Child(o) != slot {
				ins.unlockNode(mu)
				ins.pc.Retries++
				continue
			}
			l := s.Leaf(slot)
			if lc.IsLeaf() {
				ll := s.Leaf(lc)
				if len(l.Bodies)+len(ll.Bodies) <= s.LeafCap || gdepth+2 >= s.MaxDepth {
					// Two part-full leaves combine into one.
					l.Bodies = append(l.Bodies, ll.Bodies...)
					for _, b := range ll.Bodies {
						ins.setBodyLeaf(b, slot)
					}
					ins.unlockNode(mu)
					return
				}
				// Overflow: replace the global leaf with a private
				// cell holding both leaves' bodies, then publish.
				cr, _ := ins.allocCell(l.Cube, gcell)
				for _, ob := range l.Bodies {
					ins.insertPrivate(cr, gdepth+1, ob, pos)
				}
				for _, ob := range ll.Bodies {
					ins.insertPrivate(cr, gdepth+1, ob, pos)
				}
				l.Retired = true
				c.SetChild(o, cr)
				ins.unlockNode(mu)
				return
			}
			// Global leaf vs local cell: push the leaf's bodies down
			// into the (still private) local subtree, then transplant
			// it in place of the leaf.
			for _, ob := range l.Bodies {
				ins.insertPrivate(lc, gdepth+1, ob, pos)
			}
			s.Cell(lc).Parent = gcell
			l.Retired = true
			c.SetChild(o, lc)
			ins.pc.Attached++
			ins.unlockNode(mu)
			return

		default: // global cell
			if lc.IsLeaf() {
				// The bodies of the local leaf must descend into the
				// existing global subtree one by one (locked).
				for _, ob := range s.Leaf(lc).Bodies {
					ins.insert(slot, gdepth+1, ob, pos)
				}
				return
			}
			// Cell vs cell: recurse; the local cell node itself is
			// discarded (its subspace already exists globally).
			lcc := s.Cell(lc)
			for oo := vec.Octant(0); oo < vec.NOctants; oo++ {
				if ch := lcc.Child(oo); !ch.IsNil() {
					ins.mergeChild(slot, oo, ch, gdepth+1, pos)
				}
			}
			return
		}
	}
}
