// Quickstart: build a Barnes-Hut octree in parallel with the paper's
// lock-free SPACE algorithm, compute one step of forces, and print what
// happened. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"

	"partree/internal/core"
	"partree/internal/force"
	"partree/internal/nbody"
	"partree/internal/octree"
	"partree/internal/phys"
)

func main() {
	// A 16k-body Plummer-model galaxy, the same workload the paper uses.
	opts := nbody.DefaultOptions()
	opts.N = 16384
	opts.P = runtime.GOMAXPROCS(0)
	opts.Alg = core.SPACE // try core.ORIG, core.LOCAL, core.UPDATE, core.PARTREE
	sim := nbody.New(opts)

	// One full time step: tree build -> costzones partition -> forces ->
	// update, with per-phase timing.
	st := sim.Step()
	fmt.Println("step:", st)
	fmt.Println("tree:", st.TreeStats)
	fmt.Printf("build synchronization: %d lock acquisitions (%v)\n",
		st.Build.TotalLocks(), opts.Alg)

	// The pieces are usable on their own, too: here is a direct force
	// evaluation against the tree the step just built.
	d := octree.BodyData{Pos: sim.Bodies.Pos, Mass: sim.Bodies.Mass, Cost: sim.Bodies.Cost}
	r := force.Accel(sim.Tree, d, 0, force.DefaultParams())
	fmt.Printf("body 0: acc=%v from %d interactions (%d nodes visited)\n",
		r.Acc, r.Interactions, r.NodesVisited)

	// And a standalone tree build outside the simulation driver.
	bodies := phys.Generate(phys.ModelUniform, 4096, 7)
	builder := core.New(core.PARTREE, core.Config{P: 4, LeafCap: 8})
	tree, metrics := builder.Build(&core.Input{
		Bodies: bodies,
		Assign: core.SpatialAssign(bodies, 4),
	})
	fmt.Println("standalone build:", octree.CollectStats(tree))
	fmt.Println("metrics:", metrics)
}
