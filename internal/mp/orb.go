// Package mp implements the message-passing Barnes-Hut baseline the paper
// frames the whole study against: "although message passing may have ease
// of programming disadvantages, it ports quite well in performance across
// all these systems". It follows Salmon's design — orthogonal recursive
// bisection (ORB) assigns each process a spatial domain, every process
// builds a tree over its own bodies, and processes exchange *locally
// essential* tree data (the branches a remote domain could ever need
// under the θ criterion) so the force phase runs with no further
// communication at all.
//
// Ranks are goroutines and messages are Go channels; the package counts
// messages and bytes so the harness can estimate the same run on the
// simulated 1998 platforms with a first-order cost model.
package mp

import (
	"fmt"
	"sort"

	"partree/internal/phys"
	"partree/internal/vec"
)

// Domain is one rank's share of space and bodies after ORB.
type Domain struct {
	Rank   int
	Box    vec.Box
	Bodies []int32
}

// ORB recursively bisects the bodies into p spatial domains of near-equal
// population, cutting the longest axis at the median each time (Salmon's
// orthogonal recursive bisection). p need not be a power of two: counts
// split proportionally.
func ORB(b *phys.Bodies, p int) []Domain {
	all := make([]int32, b.N())
	for i := range all {
		all[i] = int32(i)
	}
	box := vec.BoxOf(b.N(), func(i int) vec.V3 { return b.Pos[i] })
	out := make([]Domain, 0, p)
	orbRec(b, all, box, 0, p, &out)
	return out
}

func orbRec(b *phys.Bodies, idx []int32, box vec.Box, rank0, p int, out *[]Domain) {
	if p == 1 {
		*out = append(*out, Domain{Rank: rank0, Box: box, Bodies: idx})
		return
	}
	pLo := p / 2
	// Proportional cut: pLo/p of the bodies go to the low side.
	k := len(idx) * pLo / p
	axis := box.LongestAxis()
	coord := func(i int32) float64 {
		switch axis {
		case 0:
			return b.Pos[i].X
		case 1:
			return b.Pos[i].Y
		default:
			return b.Pos[i].Z
		}
	}
	// Order by the cut axis; ties by index for determinism.
	sort.Slice(idx, func(a, c int) bool {
		ca, cc := coord(idx[a]), coord(idx[c])
		if ca != cc {
			return ca < cc
		}
		return idx[a] < idx[c]
	})
	var cutC float64
	switch {
	case len(idx) == 0:
		cutC = (boxAxisLo(box, axis) + boxAxisHi(box, axis)) / 2
	case k == 0:
		cutC = coord(idx[0])
	case k >= len(idx):
		cutC = coord(idx[len(idx)-1])
	default:
		cutC = (coord(idx[k-1]) + coord(idx[k])) / 2
	}
	lo, hi := box.Split(axis, cutC)
	orbRec(b, idx[:k], lo, rank0, pLo, out)
	orbRec(b, idx[k:], hi, rank0+pLo, p-pLo, out)
}

func boxAxisLo(b vec.Box, axis int) float64 {
	switch axis {
	case 0:
		return b.Lo.X
	case 1:
		return b.Lo.Y
	default:
		return b.Lo.Z
	}
}

func boxAxisHi(b vec.Box, axis int) float64 {
	switch axis {
	case 0:
		return b.Hi.X
	case 1:
		return b.Hi.Y
	default:
		return b.Hi.Z
	}
}

// Validate checks that the domains partition all n bodies and that every
// body lies in (or on the boundary of) its domain's box.
func Validate(b *phys.Bodies, doms []Domain) error {
	seen := make([]bool, b.N())
	for _, d := range doms {
		for _, i := range d.Bodies {
			if seen[i] {
				return fmt.Errorf("mp: body %d assigned twice", i)
			}
			seen[i] = true
			if !d.Box.Contains(b.Pos[i]) {
				return fmt.Errorf("mp: body %d outside rank %d's box", i, d.Rank)
			}
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("mp: body %d unassigned", i)
		}
	}
	return nil
}
