package partition

import (
	"fmt"
	"testing"

	"partree/internal/octree"
	"partree/internal/phys"
)

func BenchmarkCostzones(b *testing.B) {
	for _, n := range []int{16384, 131072} {
		bodies := phys.Generate(phys.ModelPlummer, n, 1)
		tr := octree.BuildSerial(bodies.Pos, 8)
		d := octree.BodyData{Pos: bodies.Pos, Mass: bodies.Mass, Cost: bodies.Cost}
		octree.ComputeMomentsSerial(tr, d)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Costzones(tr, d, 16)
			}
		})
	}
}
