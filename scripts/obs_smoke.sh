#!/bin/sh
# obs_smoke.sh — smoke-test the live observability layer end to end:
# launch treebench with -http, wait for the server to come up, assert
# /healthz reports ok and /metrics exposes the key series, then let the
# sweep finish and check it exited cleanly. Run via `make obs-smoke`
# (part of `make check`).
set -e

GO=${GO:-go}
tmp=$(mktemp -d)
bin="$tmp/treebench"
log="$tmp/treebench.log"
metrics="$tmp/metrics.txt"
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$bin" ./cmd/treebench

# :0 picks a free port; the resolved URL is read from the serving log
# line, so parallel CI jobs never collide.
"$bin" -n 100000 -p 1,2,4 -reps 3 -http 127.0.0.1:0 -v info >/dev/null 2>"$log" &
pid=$!

url=
i=0
while [ $i -lt 100 ]; do
    url=$(sed -n 's/.*msg="obs: serving".* url=\(http:[^ ]*\).*/\1/p' "$log" | head -1)
    [ -n "$url" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "obs-smoke: treebench exited before serving" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$url" ]; then
    echo "obs-smoke: no serving address in log" >&2
    cat "$log" >&2
    exit 1
fi

curl -fsS "$url/healthz" | grep -q '"status": "ok"' || {
    echo "obs-smoke: /healthz did not report ok" >&2
    exit 1
}

# The duration histogram only grows series once a spec completes, so
# keep scraping until every expected series shows up (or the sweep
# finishes without them, which is a failure).
series_list="
partree_runner_specs_started_total
partree_runner_cache_misses_total
partree_runner_in_flight
partree_runner_queue_depth
partree_runner_spec_duration_seconds_bucket
partree_runner_body_memo_misses_total
partree_build_total
partree_build_locks_total
go_goroutines
go_mem_heap_alloc_bytes
go_gc_pause_seconds_total
"
i=0
while :; do
    curl -fsS "$url/metrics" >"$metrics"
    missing=
    for series in $series_list; do
        grep -q "^$series" "$metrics" || missing="$missing $series"
    done
    [ -z "$missing" ] && break
    i=$((i + 1))
    if [ $i -ge 120 ] || ! kill -0 "$pid" 2>/dev/null; then
        echo "obs-smoke: /metrics is missing series:$missing" >&2
        exit 1
    fi
    sleep 0.5
done

wait "$pid" || {
    echo "obs-smoke: treebench exited non-zero" >&2
    cat "$log" >&2
    exit 1
}
pid=
echo "obs-smoke: ok ($url, $(wc -l <"$metrics") metric lines)"
