package simalg

import (
	"testing"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/phys"
)

func smallCfg(pl memsim.Platform, p int) Config {
	return Config{Platform: pl, P: p, LeafCap: 8, WarmSteps: 1, MeasuredSteps: 1}
}

func TestRunAllAlgorithmsAllPlatforms(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 1500, 7)
	for _, pl := range memsim.AllPlatforms(4) {
		for _, alg := range core.Algorithms() {
			o := Run(alg, b, smallCfg(pl, 4))
			if o.TotalNs() <= 0 {
				t.Fatalf("%v on %s: nonpositive total", alg, pl.Name)
			}
			if o.TreeNs <= 0 || o.ForceNs <= 0 || o.UpdateNs <= 0 {
				t.Fatalf("%v on %s: empty phase: %+v", alg, pl.Name, o)
			}
			if o.Interactions <= 0 {
				t.Fatalf("%v on %s: no interactions", alg, pl.Name)
			}
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 1200, 3)
	a1 := Run(core.PARTREE, b, smallCfg(memsim.TyphoonHLRC(), 4))
	a2 := Run(core.PARTREE, b, smallCfg(memsim.TyphoonHLRC(), 4))
	if a1.TotalNs() != a2.TotalNs() || a1.TotalLocks() != a2.TotalLocks() {
		t.Fatalf("nondeterministic: %v vs %v", a1, a2)
	}
}

func TestSimLockOrdering(t *testing.T) {
	// SPACE must use zero locks; PARTREE far fewer than LOCAL; UPDATE
	// (incremental, little motion) fewer than LOCAL.
	b := phys.Generate(phys.ModelPlummer, 3000, 5)
	cfg := smallCfg(memsim.Origin2000(8), 8)
	locks := map[core.Algorithm]int64{}
	for _, alg := range core.Algorithms() {
		locks[alg] = Run(alg, b, cfg).TotalLocks()
	}
	if locks[core.SPACE] != 0 {
		t.Fatalf("SPACE locks = %d", locks[core.SPACE])
	}
	if locks[core.PARTREE] == 0 || locks[core.PARTREE]*2 >= locks[core.LOCAL] {
		t.Fatalf("PARTREE locks %d not well below LOCAL %d", locks[core.PARTREE], locks[core.LOCAL])
	}
	if locks[core.UPDATE]*2 >= locks[core.LOCAL] {
		t.Fatalf("UPDATE locks %d not well below LOCAL %d", locks[core.UPDATE], locks[core.LOCAL])
	}
	if locks[core.ORIG] < locks[core.LOCAL] {
		t.Fatalf("ORIG locks %d below LOCAL %d", locks[core.ORIG], locks[core.LOCAL])
	}
}

func TestSimTreesAreCorrect(t *testing.T) {
	// The simulated builders run real algorithm logic on a real octree;
	// their trees must carry every body exactly once. We verify via a
	// dedicated instrumented run that exposes the final structure —
	// here, indirectly: interactions must equal a native reference run.
	b := phys.Generate(phys.ModelPlummer, 1000, 11)
	var ref int64
	for i, alg := range core.Algorithms() {
		o := Run(alg, b, smallCfg(memsim.Challenge(), 4))
		if i == 0 {
			ref = o.Interactions
			continue
		}
		// UPDATE's tree shape can drift slightly (never collapses), so
		// interaction counts may differ marginally; others are canonical
		// and identical.
		if alg == core.UPDATE {
			if o.Interactions < ref*9/10 || o.Interactions > ref*11/10 {
				t.Fatalf("%v interactions %d far from reference %d", alg, o.Interactions, ref)
			}
			continue
		}
		if o.Interactions != ref {
			t.Fatalf("%v interactions %d != reference %d", alg, o.Interactions, ref)
		}
	}
}

func TestHLRCPunishesLockHeavyBuilders(t *testing.T) {
	// The paper's headline: on page-based SVM, the lock-per-body
	// algorithms spend most of their time in tree building, while SPACE
	// keeps it small; SPACE beats LOCAL overall by a wide margin.
	b := phys.Generate(phys.ModelPlummer, 4000, 13)
	cfg := smallCfg(memsim.TyphoonHLRC(), 8)
	local := Run(core.LOCAL, b, cfg)
	space := Run(core.SPACE, b, cfg)
	if space.TotalNs() >= local.TotalNs() {
		t.Fatalf("SPACE %v not faster than LOCAL %v on HLRC", space.TotalNs(), local.TotalNs())
	}
	if local.TreeShare() < 0.4 {
		t.Fatalf("LOCAL tree share %.2f unexpectedly small on HLRC", local.TreeShare())
	}
	if space.TreeShare() > 0.35 {
		t.Fatalf("SPACE tree share %.2f unexpectedly large on HLRC", space.TreeShare())
	}
}

func TestHardwareCoherentToleratesLocks(t *testing.T) {
	// On the Origin model the algorithms should be comparable: LOCAL
	// within 2x of SPACE overall.
	b := phys.Generate(phys.ModelPlummer, 4000, 17)
	cfg := smallCfg(memsim.Origin2000(8), 8)
	local := Run(core.LOCAL, b, cfg)
	space := Run(core.SPACE, b, cfg)
	ratio := local.TotalNs() / space.TotalNs()
	if ratio > 2.0 || ratio < 0.5 {
		t.Fatalf("Origin: LOCAL/SPACE ratio %.2f outside [0.5,2]", ratio)
	}
}

func TestSequentialBaseline(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 1500, 19)
	cfg := smallCfg(memsim.Origin2000(1), 1)
	cfg.Sequential = true
	o := Run(core.LOCAL, b, cfg)
	if o.TotalLocks() != 0 {
		t.Fatalf("sequential run took %d locks", o.TotalLocks())
	}
	if o.TreeShare() > 0.15 {
		t.Fatalf("sequential tree share %.2f; paper says <3%%-ish", o.TreeShare())
	}
	// Parallel run should be faster in simulated time.
	par := Run(core.LOCAL, b, smallCfg(memsim.Origin2000(8), 8))
	if par.TotalNs() >= o.TotalNs() {
		t.Fatalf("8-proc Origin run %v not faster than sequential %v", par.TotalNs(), o.TotalNs())
	}
}

func TestSpeedupSanityChallenge(t *testing.T) {
	// On the bus model all algorithms should deliver decent speedups at
	// moderate processor counts.
	b := phys.Generate(phys.ModelPlummer, 4000, 23)
	seqCfg := smallCfg(memsim.Challenge(), 1)
	seqCfg.Sequential = true
	seq := Run(core.LOCAL, b, seqCfg).TotalNs()
	for _, alg := range core.Algorithms() {
		par := Run(alg, b, smallCfg(memsim.Challenge(), 8)).TotalNs()
		sp := seq / par
		if sp < 3 {
			t.Fatalf("%v speedup %.2f on Challenge too low", alg, sp)
		}
	}
}

func TestUpdateMovesFewBodies(t *testing.T) {
	// With the default dt the vast majority of bodies stay in their
	// leaves between steps; UPDATE's measured lock count must be a small
	// fraction of a rebuild's.
	b := phys.Generate(phys.ModelPlummer, 3000, 29)
	cfg := smallCfg(memsim.Origin2000(4), 4)
	cfg.MeasuredSteps = 2
	upd := Run(core.UPDATE, b, cfg)
	loc := Run(core.LOCAL, b, cfg)
	if upd.TotalLocks()*3 >= loc.TotalLocks() {
		t.Fatalf("UPDATE locks %d not ≪ LOCAL %d", upd.TotalLocks(), loc.TotalLocks())
	}
}
