package trace

import (
	"sync/atomic"

	"partree/internal/obs"
)

// MetricsBridge folds per-build trace Summaries into monotone live
// counters — the summary → metrics bridge. Post-hoc trace files answer
// "where did *that* build's time go"; the bridge answers the same
// question continuously over every traced build a process runs, as
// scrapeable totals: time per sub-phase, lock wait vs hold, lock events.
// Recording one summary is a few atomic adds per processor; nothing is
// recorded at all for untraced builds.
type MetricsBridge struct {
	builds     atomic.Int64
	phaseNs    [NumPhases]atomic.Int64
	lockEvents atomic.Int64
	lockWaitNs atomic.Int64
	lockHoldNs atomic.Int64
}

// NewMetricsBridge creates an empty bridge.
func NewMetricsBridge() *MetricsBridge { return &MetricsBridge{} }

// Record accumulates one build's summary. A nil summary is a no-op.
func (b *MetricsBridge) Record(s *Summary) {
	if b == nil || s == nil {
		return
	}
	b.builds.Add(1)
	for w := range s.PerProc {
		ps := &s.PerProc[w]
		for ph := 0; ph < NumPhases; ph++ {
			b.phaseNs[ph].Add(ps.PhaseNs[ph])
		}
		b.lockEvents.Add(ps.LockEvents)
		b.lockWaitNs.Add(ps.LockWaitNs)
		b.lockHoldNs.Add(ps.LockHoldNs)
	}
}

// TracedBuilds returns the number of summaries recorded.
func (b *MetricsBridge) TracedBuilds() int64 { return b.builds.Load() }

// Collect implements obs.Collector: phase seconds as one labeled family
// plus lock wait/hold/event totals, all summed across processors.
func (b *MetricsBridge) Collect(out []obs.Family) []obs.Family {
	phase := obs.Family{
		Name: "partree_trace_phase_seconds_total",
		Help: "Per-processor time in each build sub-phase, summed over traced builds.",
		Type: obs.TypeCounter,
	}
	for ph := 0; ph < NumPhases; ph++ {
		phase.Series = append(phase.Series, obs.Series{
			Labels: []obs.Label{{Name: "phase", Value: Phase(ph).String()}},
			Value:  float64(b.phaseNs[ph].Load()) / 1e9,
		})
	}
	one := func(name, help string, typ obs.Type, v float64) obs.Family {
		return obs.Family{Name: name, Help: help, Type: typ, Series: []obs.Series{{Value: v}}}
	}
	return append(out,
		phase,
		one("partree_trace_builds_total", "Builds whose trace summary was recorded.",
			obs.TypeCounter, float64(b.builds.Load())),
		one("partree_trace_lock_events_total", "Lock acquisitions observed by tracing.",
			obs.TypeCounter, float64(b.lockEvents.Load())),
		one("partree_trace_lock_wait_seconds_total", "Time spent waiting to acquire tree locks.",
			obs.TypeCounter, float64(b.lockWaitNs.Load())/1e9),
		one("partree_trace_lock_hold_seconds_total", "Time spent holding tree locks.",
			obs.TypeCounter, float64(b.lockHoldNs.Load())/1e9),
	)
}
