// Package stats provides the small formatting and aggregation helpers the
// experiment harness uses: aligned text tables, ASCII bar series for
// "figures", and numeric summaries.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v (floats with %.2f).
func (t *Table) Row(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// WriteCSV renders the table as RFC-4180 CSV (header row first) —
// machine-readable twin of Write for trace breakdowns and sweep dumps.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bars renders a labelled horizontal ASCII bar series, scaled to maxWidth
// characters — the harness's stand-in for the paper's figures.
func Bars(w io.Writer, title string, labels []string, values []float64, unit string) {
	fmt.Fprintln(w, title)
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	const maxWidth = 46
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(math.Round(v / max * maxWidth))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %s  %s %.2f%s\n", pad(labels[i], lw), strings.Repeat("#", n), v, unit)
	}
}

// Seconds renders simulated nanoseconds as seconds with sensible digits.
func Seconds(ns float64) string {
	s := ns / 1e9
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}

// Summary is a mean/min/max aggregate over a slice.
type Summary struct {
	Mean, Min, Max float64
}

// Summarize computes a Summary over int64 values.
func Summarize(xs []int64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: float64(xs[0]), Max: float64(xs[0])}
	var sum float64
	for _, x := range xs {
		v := float64(x)
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(xs))
	return s
}
