package adapt

import (
	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/trace"
)

// Options configures a Controller. The zero value is the documented
// default behavior.
type Options struct {
	// Alpha is the ledger's EWMA blend weight; out of (0,1] selects 0.3.
	Alpha float64
	// Tuner bounds the knob auto-tuner; zero fields select defaults.
	Tuner TunerPolicy
	// DisableTuner keeps the measured-cost repartitioning but never
	// changes a knob — for benchmarking the ledger in isolation, or
	// sessions whose knobs are externally managed.
	DisableTuner bool
}

// Controller is the session-side end of the feedback loop: one per
// adaptive core.Stepper, implementing core.Adapter. Not safe for
// concurrent use — like the Stepper it serves, a session owns exactly
// one. Every controller also folds its activity into the package-level
// totals that internal/engine exposes as partree_adapt_* metrics.
type Controller struct {
	ledger *Ledger
	tuner  *Tuner
	opts   Options
	// n is the body count of the last partition, which the tuner needs
	// to resolve the SPACE threshold's n-dependent default.
	n int
}

// NewController builds the adapter for a session configured with cfg.
// cfg.P caps how far the tuner's recovery rule can restore parallelism.
func NewController(cfg core.Config, opts Options) *Controller {
	c := &Controller{
		ledger: NewLedger(opts.Alpha),
		tuner:  NewTuner(opts.Tuner, resolveP(cfg.P)),
		opts:   opts,
	}
	totals.sessions.Add(1)
	publishKnobs(cfg, resolveSpaceThreshold(cfg, 0))
	return c
}

// resolveP mirrors core.Config's processor defaulting.
func resolveP(p int) int {
	if p < 1 {
		return 1
	}
	return p
}

// Ledger exposes the controller's cost ledger for tests and diagnostics.
func (c *Controller) Ledger() *Ledger { return c.ledger }

// Observe implements core.Adapter: it feeds the finished step's measured
// per-processor times to the ledger (cost attribution) and the tuner
// (knob signals). Untraced steps are a no-op beyond advancing the
// tuner's cooldown clock.
func (c *Controller) Observe(assign [][]int32, sum *trace.Summary) {
	if c.ledger.Observe(assign, sum) {
		totals.corrections.Add(1)
	}
	c.tuner.Observe(sum)
	if sum != nil {
		if r := sum.ImbalanceRatio(); r > 0 {
			storeFloat(&totals.skewBefore, r)
		}
	}
}

// Retune implements core.Adapter: at most one knob moves per decision,
// behind the tuner's streak + cooldown hysteresis.
func (c *Controller) Retune(cur core.Config) (core.Config, bool) {
	if c.opts.DisableTuner {
		return cur, false
	}
	next, _, changed := c.tuner.Propose(cur, c.n)
	if changed {
		totals.knobChanges.Add(1)
		publishKnobs(next, resolveSpaceThreshold(next, c.n))
	}
	return next, changed
}

// Partition implements core.Adapter: costzones over the ledger's
// measurement-corrected costs instead of the modeled costs baked into
// the tree's moments — CostzonesTotal because the corrected total no
// longer matches the root's Cost moment.
func (c *Controller) Partition(t *octree.Tree, d octree.BodyData, p int) [][]int32 {
	n := len(d.Pos)
	c.n = n
	costs, total := c.ledger.Costs(d, n)
	dd := octree.BodyData{Pos: d.Pos, Mass: d.Mass, Cost: costs}
	assign := partition.CostzonesTotal(t, dd, p, total)
	totals.repartitions.Add(1)
	storeFloat(&totals.skewAfter, partition.Imbalance(assign, dd))
	return assign
}

var _ core.Adapter = (*Controller)(nil)
