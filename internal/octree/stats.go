package octree

import "fmt"

// Stats summarizes a built tree for reports and regression tests.
type Stats struct {
	Cells      int     // live internal cells
	Leaves     int     // live leaves
	Bodies     int     // bodies across live leaves
	MaxDepth   int     // deepest node
	AvgDepth   float64 // mean leaf depth
	AvgOcc     float64 // mean bodies per leaf
	MaxLeafLen int     // largest leaf (>LeafCap only at MaxDepth)
}

// CollectStats walks the tree once and gathers Stats.
func CollectStats(t *Tree) Stats {
	var st Stats
	var depthSum int64
	Walk(t, func(r Ref, depth int) bool {
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		if r.IsLeaf() {
			l := t.Store.Leaf(r)
			st.Leaves++
			st.Bodies += len(l.Bodies)
			depthSum += int64(depth)
			if len(l.Bodies) > st.MaxLeafLen {
				st.MaxLeafLen = len(l.Bodies)
			}
		} else {
			st.Cells++
		}
		return true
	})
	if st.Leaves > 0 {
		st.AvgDepth = float64(depthSum) / float64(st.Leaves)
		st.AvgOcc = float64(st.Bodies) / float64(st.Leaves)
	}
	return st
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("cells=%d leaves=%d bodies=%d maxDepth=%d avgDepth=%.1f avgOcc=%.2f maxLeaf=%d",
		s.Cells, s.Leaves, s.Bodies, s.MaxDepth, s.AvgDepth, s.AvgOcc, s.MaxLeafLen)
}
