package trace_test

import (
	"fmt"
	"testing"

	"partree/internal/core"
	"partree/internal/phys"
	"partree/internal/trace"
	"partree/internal/verify"
)

// TestTraceLockConservation builds with every algorithm at p=8 with
// tracing enabled and demands the trace be a faithful witness of the
// builders' own lock counters: exactly one recorded lock event per
// counted lock, processor by processor, cross-checked again by
// internal/verify's conservation audit. Run under -race (make race) this
// doubles as the data-race gate for the emit path: eight goroutines
// recording into the shared recorder while the fork/join edges publish
// the enabled flag.
func TestTraceLockConservation(t *testing.T) {
	const (
		p = 8
		n = 4096
	)
	bodies := phys.Generate(phys.ModelPlummer, n, 1998)
	for _, alg := range core.Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			rec := trace.New(p)
			rec.SetEnabled(true)
			bld := core.New(alg, core.Config{P: p, LeafCap: 8, Trace: rec})
			in := &core.Input{Bodies: bodies.Clone(), Assign: core.EvenAssign(n, p)}
			// Two steps so UPDATE exercises its incremental repair path
			// (a fresh build, then a repair) under tracing.
			for step := 0; step < 2; step++ {
				in.Step = step
				tree, m := bld.Build(in)
				if m.Trace == nil {
					t.Fatalf("step %d: traced build produced no trace summary", step)
				}
				perProc := m.LocksPerProc()
				if len(m.Trace.PerProc) != len(perProc) {
					t.Fatalf("step %d: trace covers %d procs, metrics %d",
						step, len(m.Trace.PerProc), len(perProc))
				}
				for w, locks := range perProc {
					if got := m.Trace.PerProc[w].LockEvents; got != locks {
						t.Errorf("step %d proc %d: %d lock events recorded, counters say %d",
							step, w, got, locks)
					}
				}
				if got, want := m.Trace.TotalLockEvents(), m.TotalLocks(); got != want {
					t.Errorf("step %d: %d total lock events, counters say %d", step, got, want)
				}
				if err := verify.Build(alg, tree, m, in.Bodies, step); err != nil {
					t.Errorf("step %d: %v", step, err)
				}
				// Insert spans must exist for every processor on a traced
				// parallel build (each worker loaded bodies).
				for w := 0; w < p; w++ {
					if m.Trace.PerProc[w].Spans == 0 {
						t.Errorf("step %d proc %d: no spans recorded", step, w)
					}
				}
			}
		})
	}
}

// TestTraceDisabledLeavesMetricsBare pins the untraced contract: no
// recorder (or a disabled one) must leave Metrics.Trace nil, so result
// consumers can rely on its presence meaning "this build was traced".
func TestTraceDisabledLeavesMetricsBare(t *testing.T) {
	const p = 4
	bodies := phys.Generate(phys.ModelPlummer, 2048, 7)
	in := &core.Input{Bodies: bodies, Assign: core.EvenAssign(bodies.N(), p)}
	for name, cfg := range map[string]core.Config{
		"no recorder":       {P: p, LeafCap: 8},
		"disabled recorder": {P: p, LeafCap: 8, Trace: trace.New(p)},
	} {
		_, m := core.New(core.LOCAL, cfg).Build(in)
		if m.Trace != nil {
			t.Errorf("%s: Metrics.Trace = %+v, want nil", name, m.Trace)
		}
	}
}

// TestTracePerBuildWindow pins that each traced build re-arms the
// recorder: summaries describe that build alone, not an accumulation.
func TestTracePerBuildWindow(t *testing.T) {
	const p = 4
	bodies := phys.Generate(phys.ModelPlummer, 2048, 7)
	rec := trace.New(p)
	rec.SetEnabled(true)
	bld := core.New(core.ORIG, core.Config{P: p, LeafCap: 8, Trace: rec})
	in := &core.Input{Bodies: bodies, Assign: core.EvenAssign(bodies.N(), p)}
	var prev int64
	for step := 0; step < 3; step++ {
		in.Step = step
		_, m := bld.Build(in)
		total := m.Trace.TotalLockEvents()
		if total != m.TotalLocks() {
			t.Fatalf("step %d: %d lock events vs %d locks", step, total, m.TotalLocks())
		}
		if step > 0 && total > 2*prev {
			t.Fatalf("step %d: lock events grew from %d to %d — recorder accumulating across builds",
				step, prev, total)
		}
		prev = total
	}
}

// ExampleRecorder documents the emit API end to end.
func ExampleRecorder() {
	rec := trace.NewWithCapacity(1, 8)
	rec.SetEnabled(true)
	p := rec.Proc(0)
	p.SpanAt(trace.PhaseInsert, 0, 1000)
	p.LockAt(100, 150, 400)
	s := rec.Summarize()
	fmt.Println(s.PerProc[0].PhaseNs[trace.PhaseInsert], s.PerProc[0].LockEvents, s.PerProc[0].LockHoldNs)
	// Output: 1000 1 250
}
