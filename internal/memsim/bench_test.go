package memsim

import (
	"fmt"
	"testing"
)

// BenchmarkEngineThroughput measures raw simulated-operation throughput:
// it bounds how large a configuration the whole-application simulations
// can afford.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, p := range []int{1, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			e := NewEngine(Origin2000(p), p)
			opsPerProc := b.N/p + 1
			b.ResetTimer()
			e.Run(func(pr *Proc) {
				for i := 0; i < opsPerProc; i++ {
					pr.Read(uint64(pr.ID*1024+i%256) * 64)
				}
			})
		})
	}
}

// BenchmarkEngineBatch shows the batched-access fast path.
func BenchmarkEngineBatch(b *testing.B) {
	e := NewEngine(Origin2000(4), 4)
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	b.ResetTimer()
	e.Run(func(pr *Proc) {
		for i := 0; i < b.N/4+1; i++ {
			pr.ReadBatch(addrs)
		}
	})
}

func BenchmarkHLRCLockCycle(b *testing.B) {
	e := NewEngine(TyphoonHLRC(), 2)
	b.ResetTimer()
	e.Run(func(pr *Proc) {
		for i := 0; i < b.N/2+1; i++ {
			pr.Lock(1)
			pr.Write(4096)
			pr.Unlock(1)
		}
	})
}
