# harness.sh — shared guardrails for hypothesis run.sh scripts.
#
# Every experiment sources this file instead of reinventing its own
# timeout wrapping and daemon lifecycle handling. The contract:
#
#   . "$(dirname "$0")/../lib/harness.sh"
#   pt_init                      # scratch dir, results/, traps
#   pt_run 120 some-command ...  # mandatory wall-clock limit
#   pt_daemon_start ./partreed -max-sessions 8   # background partreed
#   pt_confirm "one-line verdict"   (or pt_refute "...")
#
# Rules enforced here, per the experiment methodology in
# hypotheses/README.md:
#   - No command runs without a timeout: pt_run requires an explicit
#     per-invocation limit and fails the experiment on expiry (exit
#     124 from coreutils timeout) instead of hanging the session.
#   - Background daemons are always reaped: pt_init installs an EXIT
#     trap that kills anything registered via pt_daemon_start and
#     removes the scratch dir, so a failing experiment cannot leak a
#     partreed onto the machine.
#   - Verdicts are explicit: run.sh must end by calling pt_confirm or
#     pt_refute, which prints the verdict in a grep-friendly form and
#     records it in results/verdict.txt for FINDINGS.md to cite.

GO=${GO:-go}

# pt_init: create the scratch dir and results/ (relative to the
# experiment directory, which must be the caller's cwd) and install the
# cleanup trap.
pt_init() {
    set -e
    PT_TMP=$(mktemp -d)
    PT_PIDS=
    mkdir -p results
    trap pt_cleanup EXIT INT TERM
}

pt_cleanup() {
    for p in $PT_PIDS; do
        kill "$p" 2>/dev/null || true
    done
    [ -n "$PT_TMP" ] && rm -rf "$PT_TMP"
}

# pt_run <seconds> <cmd...>: run cmd under a mandatory wall-clock
# limit. Exit 124 (timed out) is converted into an experiment failure
# with a diagnostic, never a hang.
pt_run() {
    _pt_limit=$1
    shift
    if [ -z "$_pt_limit" ] || [ "$_pt_limit" -le 0 ] 2>/dev/null; then
        echo "harness: pt_run needs a positive timeout in seconds" >&2
        exit 2
    fi
    timeout "$_pt_limit" "$@"
    _pt_rc=$?
    if [ $_pt_rc -eq 124 ]; then
        echo "harness: TIMEOUT after ${_pt_limit}s: $*" >&2
        exit 124
    fi
    return $_pt_rc
}

# pt_daemon_start <binary> [args...]: launch a partree daemon on an
# ephemeral port, wait for its serving log line, and export PT_URL.
# The process is registered for cleanup; its log lands in $PT_TMP.
pt_daemon_start() {
    _pt_log="$PT_TMP/daemon.$$.log"
    "$@" -addr 127.0.0.1:0 -v info 2>"$_pt_log" &
    _pt_pid=$!
    PT_PIDS="$PT_PIDS $_pt_pid"
    PT_URL=
    _pt_i=0
    while [ $_pt_i -lt 100 ]; do
        PT_URL=$(sed -n 's/.*msg=serving .* url=\(http:[^ ]*\).*/\1/p' "$_pt_log" | head -1)
        [ -n "$PT_URL" ] && break
        if ! kill -0 "$_pt_pid" 2>/dev/null; then
            echo "harness: daemon exited before serving" >&2
            cat "$_pt_log" >&2
            exit 1
        fi
        sleep 0.1
        _pt_i=$((_pt_i + 1))
    done
    if [ -z "$PT_URL" ]; then
        echo "harness: no serving address in daemon log" >&2
        cat "$_pt_log" >&2
        exit 1
    fi
    PT_DAEMON_PID=$_pt_pid
    PT_DAEMON_LOG=$_pt_log
}

pt_verdict() {
    echo "$1: $2" | tee results/verdict.txt
}

pt_confirm() { pt_verdict CONFIRMED "$1"; }
pt_refute() { pt_verdict REFUTED "$1"; }
