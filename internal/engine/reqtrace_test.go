package engine

import (
	"context"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/phys"
	"partree/internal/reqtrace"
	"partree/internal/trace"
)

// TestLeaseStepStampsRequestContext is the bridge-agreement contract:
// stepping a traced lease under a request context must reproduce the
// build's own accounting on the request handle, exactly — the phase
// accumulators equal the summed core.Metrics.Timing, and the bridged
// trace summary is the last step's res.Metrics.Trace verbatim (the same
// pointer, not a copy).
func TestLeaseStepStampsRequestContext(t *testing.T) {
	const n, p, steps = 1200, 2, 3
	e := New(Options{MaxActive: 1})
	bodies := phys.Generate(phys.ModelPlummer, n, 3)
	cfg := core.Config{P: p, LeafCap: 8, Trace: trace.New(p)}
	cfg.Trace.SetEnabled(true)
	l, err := e.OpenLease(core.NewStepper(cfg, bodies, core.DefaultFallbackPolicy()), time.Minute)
	if err != nil {
		t.Fatalf("OpenLease: %v", err)
	}
	defer l.Close()

	rec := reqtrace.NewRecorder(reqtrace.Options{})
	rq := rec.Start("4bf92f3577b34da6a3ce929d0e0e4736", "/v1/session")
	ctx := reqtrace.NewContext(context.Background(), rq)

	var wantBounds, wantInsert, wantMoments time.Duration
	var last *trace.Summary
	for i := 0; i < steps; i++ {
		if i > 0 {
			l.Stepper().Bodies().Drift(0, n, 0.01)
		}
		res, err := l.Step(ctx, core.StepInput{})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		tm := res.Metrics.Timing
		wantBounds += tm.Bounds
		wantInsert += tm.Insert
		wantMoments += tm.Moments
		if res.Metrics.Trace == nil {
			t.Fatalf("step %d: traced stepper produced no summary", i)
		}
		last = res.Metrics.Trace
	}

	ph := rq.Phases()
	if ph.BoundsNs != wantBounds.Nanoseconds() ||
		ph.InsertNs != wantInsert.Nanoseconds() ||
		ph.MomentsNs != wantMoments.Nanoseconds() {
		t.Errorf("request phases = %+v, want exact sums bounds=%d insert=%d moments=%d",
			ph, wantBounds.Nanoseconds(), wantInsert.Nanoseconds(), wantMoments.Nanoseconds())
	}
	if got := rq.TraceSummary(); got != last {
		t.Errorf("bridged summary = %p, want the last step's res.Metrics.Trace %p (verbatim)", got, last)
	}

	// One "build" wall span per step, and the breakdown's build total is
	// the phase view (bounds+insert), consistent with what it reported.
	var builds int
	for _, s := range rq.Spans() {
		if s.Name == "build" {
			builds++
		}
	}
	if builds != steps {
		t.Errorf("%d build wall spans, want one per step (%d)", builds, steps)
	}
	queue, build, moments, _ := rq.Breakdown()
	if build != wantBounds+wantInsert || moments != wantMoments {
		t.Errorf("breakdown (build=%v moments=%v) disagrees with summed timings (%v, %v)",
			build, moments, wantBounds+wantInsert, wantMoments)
	}
	if queue != 0 {
		t.Errorf("queue = %v on an uncontended engine, want 0", queue)
	}
}

// TestQueueWaitStampedOnRequest occupies the engine's only build slot
// and checks both waiting paths — a queued Acquire and a lease Step —
// stamp a "queue" span onto the request context covering the wait.
func TestQueueWaitStampedOnRequest(t *testing.T) {
	const hold = 30 * time.Millisecond
	e := New(Options{MaxActive: 1, MaxQueue: 4})
	rec := reqtrace.NewRecorder(reqtrace.Options{})

	// Path 1: Acquire behind a held session.
	s, err := e.Acquire(context.Background(), Key{Alg: core.LOCAL, P: 1})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	go func() {
		time.Sleep(hold)
		s.Release()
	}()
	rq := rec.Start("00000000000000000000000000000001", "/v1/build")
	ctx := reqtrace.NewContext(context.Background(), rq)
	s2, err := e.Acquire(ctx, Key{Alg: core.LOCAL, P: 1})
	if err != nil {
		t.Fatalf("queued Acquire: %v", err)
	}
	if q, _, _, _ := rq.Breakdown(); q < hold/2 {
		t.Errorf("queued Acquire stamped %v of queue wait, want ~%v", q, hold)
	}

	// Path 2: a lease Step waiting on the same slot (s2 still holds it).
	bodies := phys.Generate(phys.ModelPlummer, 300, 7)
	l, err := e.OpenLease(core.NewStepper(core.Config{P: 1, LeafCap: 8}, bodies, core.DefaultFallbackPolicy()), time.Minute)
	if err != nil {
		t.Fatalf("OpenLease: %v", err)
	}
	defer l.Close()
	go func() {
		time.Sleep(hold)
		s2.Release()
	}()
	rq2 := rec.Start("00000000000000000000000000000002", "/v1/session")
	if _, err := l.Step(reqtrace.NewContext(context.Background(), rq2), core.StepInput{}); err != nil {
		t.Fatalf("step: %v", err)
	}
	if q, _, _, _ := rq2.Breakdown(); q < hold/2 {
		t.Errorf("waiting Step stamped %v of queue wait, want ~%v", q, hold)
	}
}
