package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"partree/internal/core"
	"partree/internal/memsim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDumpCSVGolden pins DumpCSV's column order, formatting, and row
// ordering byte-for-byte, so the concurrent runner cache can't silently
// reorder or drop rows. Regenerate with: go test ./internal/harness -run Golden -update
func TestDumpCSVGolden(t *testing.T) {
	s := NewSession(Options{Sizes: []int{1024}, MeasuredSteps: 1})
	// A deliberate mix of platforms, algorithms, and the sequential
	// baseline, computed out of sorted order to prove ordering is
	// imposed by DumpCSV, not by execution order.
	s.Outcome(memsim.TyphoonHLRC(), core.LOCAL, 2, 1024)
	s.Outcome(memsim.Challenge(), core.SPACE, 2, 1024)
	s.Seq(memsim.Challenge(), 1024)
	s.Outcome(memsim.Origin2000(2), core.ORIG, 2, 1024)
	s.Outcome(memsim.Challenge(), core.ORIG, 2, 1024)

	var buf bytes.Buffer
	if err := s.DumpCSV(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "dumpcsv.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("DumpCSV output diverged from golden file %s.\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}
