package phys

import (
	"math"
	"math/rand"

	"partree/internal/vec"
)

// Parameterized initial-condition generators beyond the classic SPLASH-2
// trio. Uniform-or-Plummer inputs hide load-imbalance pathologies; the
// distributions here are the ones the tree-building literature evaluates
// on because they stress adaptive subdivision depth and partition
// balance: a rotating exponential disk (strong planar anisotropy), two
// clusters on an off-axis collision course (time-evolving bimodality),
// and hierarchical clustering (power-law density contrast at every
// scale). Each generator is a pure function of (n, seed, params), so a
// fixed seed is byte-reproducible through Snapshot.

// DiskParams tunes the disk-galaxy generator. Zero fields select the
// documented defaults.
type DiskParams struct {
	// ScaleLength is the exponential surface-density scale R_d: the disk
	// holds ~26% of its mass inside one scale length. Default 1.
	ScaleLength float64
	// ScaleHeight is the vertical double-exponential scale h. Default
	// 0.1·ScaleLength — a thin disk, the worst case for octree depth
	// because the distribution is two-dimensional at large scales.
	ScaleHeight float64
	// Dispersion is the random velocity fraction added on top of the
	// circular rotation (0.1 = 10% of local v_circ). Default 0.1.
	Dispersion float64
}

func (p DiskParams) withDefaults() DiskParams {
	if p.ScaleLength <= 0 {
		p.ScaleLength = 1
	}
	if p.ScaleHeight <= 0 {
		p.ScaleHeight = 0.1 * p.ScaleLength
	}
	if p.Dispersion <= 0 {
		p.Dispersion = 0.1
	}
	return p
}

// Disk samples an exponential disk galaxy with near-circular rotation:
// surface density Σ(r) ∝ exp(-r/R_d), vertical profile ∝ exp(-|z|/h),
// and tangential velocities set from the enclosed-mass circular speed
// (spherical approximation, G=1) plus isotropic dispersion. Net angular
// momentum points along +z.
func Disk(n int, seed int64, p DiskParams) *Bodies {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(seed))
	b := NewBodies(n)
	mPer := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		// Radius from the cumulative mass profile M(<r) ∝ 1-(1+x)e^-x,
		// x = r/R_d, inverted by bisection (montone, so exact to tol).
		u := r.Float64()
		rad := p.ScaleLength * diskRadius(u)
		phi := 2 * math.Pi * r.Float64()
		// Double-exponential vertical profile: |z| ~ Exp(h), random sign.
		z := -p.ScaleHeight * math.Log(1-r.Float64())
		if r.Float64() < 0.5 {
			z = -z
		}
		cos, sin := math.Cos(phi), math.Sin(phi)
		b.Pos[i] = vec.V3{X: rad * cos, Y: rad * sin, Z: z}

		// Circular speed from the enclosed disk mass at this radius.
		vc := math.Sqrt(diskMass(rad/p.ScaleLength) / math.Max(rad, 1e-6))
		tangent := vec.V3{X: -sin, Y: cos}
		b.Vel[i] = tangent.Scale(vc).Add(isotropic(r).Scale(p.Dispersion * vc * r.Float64()))
		b.Mass[i] = mPer
		b.Cost[i] = 1
	}
	return b
}

// diskMass is the normalized enclosed-mass profile of an exponential
// disk: M(<x)/M_tot = 1-(1+x)e^-x for x = r/R_d.
func diskMass(x float64) float64 { return 1 - (1+x)*math.Exp(-x) }

// diskRadius inverts diskMass by bisection: returns x with
// diskMass(x) = u, clamped to x ≤ 30 (u → 1 gives unbounded radii).
func diskRadius(u float64) float64 {
	if u >= diskMass(30) {
		return 30
	}
	lo, hi := 0.0, 30.0
	for k := 0; k < 60; k++ {
		mid := (lo + hi) / 2
		if diskMass(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// CollisionParams tunes the colliding-clusters generator.
type CollisionParams struct {
	// Separation is the initial center-to-center distance along x.
	// Default 6 (the classic twoclusters setup).
	Separation float64
	// Impact is the impact parameter: the perpendicular (y) offset
	// between the approach axes. 0 (the default) is a head-on collision;
	// larger values make the clusters swing past each other, shearing
	// the density field.
	Impact float64
	// Speed is the closing speed along x. Default 0.25.
	Speed float64
}

func (p CollisionParams) withDefaults() CollisionParams {
	if p.Separation <= 0 {
		p.Separation = 6
	}
	if p.Impact < 0 {
		p.Impact = 0 // head-on
	}
	if p.Speed <= 0 {
		p.Speed = 0.25
	}
	return p
}

// Collision places two equal-mass Plummer spheres on a collision course
// with a tunable impact parameter: cluster A starts at (+sep/2, +b/2),
// cluster B at (-sep/2, -b/2), closing along x. The first ⌈n/2⌉ bodies
// belong to cluster A, the rest to B, so diagnostics can track the two
// centroids by index range.
func Collision(n int, seed int64, p CollisionParams) *Bodies {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(seed))
	n1 := n / 2
	n2 := n - n1
	offA := vec.V3{X: p.Separation / 2, Y: p.Impact / 2}
	offB := vec.V3{X: -p.Separation / 2, Y: -p.Impact / 2}
	vA := vec.V3{X: -p.Speed / 2}
	vB := vec.V3{X: p.Speed / 2}
	a := plummer(n1, r, offA, vA, 0.5)
	c := plummer(n2, r, offB, vB, 0.5)
	b := NewBodies(n)
	copy(b.Pos, a.Pos)
	copy(b.Pos[n1:], c.Pos)
	copy(b.Vel, a.Vel)
	copy(b.Vel[n1:], c.Vel)
	copy(b.Mass, a.Mass)
	copy(b.Mass[n1:], c.Mass)
	copy(b.Cost, a.Cost)
	copy(b.Cost[n1:], c.Cost)
	return b
}

// HierarchicalParams tunes the nested-Plummer clustering generator.
type HierarchicalParams struct {
	// Levels is the nesting depth. Default 3.
	Levels int
	// Branch is the number of sub-halos per level. Default 8.
	Branch int
	// Contract is the scale ratio between a halo and its sub-halos
	// (smaller = more contrast). Default 0.3.
	Contract float64
}

func (p HierarchicalParams) withDefaults() HierarchicalParams {
	if p.Levels <= 0 {
		p.Levels = 3
	}
	if p.Branch <= 1 {
		p.Branch = 8
	}
	if p.Contract <= 0 || p.Contract >= 1 {
		p.Contract = 0.3
	}
	return p
}

// Hierarchical samples nested Plummer sub-halos: at each level the body
// budget splits across Branch sub-halos whose centers are themselves
// Plummer-distributed at the current scale, and each sub-halo recurses
// with its scale contracted. The result has power-law density contrast
// at every scale — the hardest case for a cost-blind spatial partition,
// and the distribution hierarchical-clustering evaluations in the
// literature use for exactly that reason.
func Hierarchical(n int, seed int64, p HierarchicalParams) *Bodies {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(seed))
	b := NewBodies(n)
	mPer := 1.0 / float64(n)
	i := 0
	var place func(cnt, level int, center vec.V3, scale float64)
	place = func(cnt, level int, center vec.V3, scale float64) {
		if cnt <= 0 {
			return
		}
		if level == 0 {
			for k := 0; k < cnt; k++ {
				b.Pos[i] = center.Add(isotropic(r).Scale(plummerRadius(r) * scale))
				b.Vel[i] = isotropic(r).Scale(0.05 * math.Sqrt(scale) * r.Float64())
				b.Mass[i] = mPer
				b.Cost[i] = 1
				i++
			}
			return
		}
		per := cnt / p.Branch
		rem := cnt % p.Branch
		for s := 0; s < p.Branch; s++ {
			sub := per
			if s < rem {
				sub++
			}
			sc := center.Add(isotropic(r).Scale(plummerRadius(r) * scale))
			place(sub, level-1, sc, scale*p.Contract)
		}
	}
	place(n, p.Levels, vec.V3{}, 1.0)
	return b
}

// plummerRadius samples a radius from the Plummer cumulative mass
// profile at scale radius 1, clamped like the full generator.
func plummerRadius(r *rand.Rand) float64 {
	x := r.Float64()
	if x > 0.999 {
		x = 0.999
	}
	return 1 / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
}
