// Package force implements the force-calculation phase of the Barnes-Hut
// method: the θ-criterion tree traversal, a direct O(N²) reference
// implementation for accuracy tests, and the parallel per-partition driver.
// The paper keeps this phase identical across all tree-building algorithms
// (it is >97% of sequential time and parallelizes well everywhere); it
// lives here so the whole application can be timed and simulated.
package force

import (
	"math"

	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/vec"
)

// Params are the physics knobs of the force pass.
type Params struct {
	// Theta is the Barnes-Hut opening angle: a cell of size s at distance
	// d is approximated by its center of mass when s/d < Theta.
	Theta float64
	// Eps is the Plummer softening length.
	Eps float64
	// G is the gravitational constant (1 in model units).
	G float64
	// Quadrupole adds the second-order term of each approximated cell's
	// multipole expansion, as the original BARNES code can: markedly
	// better accuracy at the same θ for a few extra flops per cell.
	Quadrupole bool
}

// DefaultParams mirror the SPLASH-2 BARNES defaults.
func DefaultParams() Params { return Params{Theta: 1.0, Eps: 0.05, G: 1} }

// Result is the outcome of one body's tree traversal.
type Result struct {
	Acc vec.V3
	// Interactions counts body-body plus body-cell force evaluations;
	// it is the body's cost for costzones partitioning.
	Interactions int64
	// NodesVisited counts tree nodes touched during the traversal
	// (opened cells and leaves); the platform simulator charges the
	// force phase's communication from it.
	NodesVisited int64
}

// Accel computes the Barnes-Hut acceleration on body self.
func Accel(t *octree.Tree, d octree.BodyData, self int32, p Params) Result {
	return AccelVisit(t, d, self, p, nil)
}

// AccelVisit is Accel with an optional callback invoked once per tree node
// the traversal touches; the platform simulator uses it to charge the
// force phase's communication against the real working set.
func AccelVisit(t *octree.Tree, d octree.BodyData, self int32, p Params, visit func(octree.Ref)) Result {
	return accelAt(t, d, d.Pos[self], self, p, visit)
}

// AccelAt evaluates the tree's field at an arbitrary position with no
// self-exclusion — the message-passing baseline uses it to traverse the
// tree built from a rank's received (remote) data.
func AccelAt(t *octree.Tree, d octree.BodyData, pos vec.V3, p Params) Result {
	return accelAt(t, d, pos, -1, p, nil)
}

func accelAt(t *octree.Tree, d octree.BodyData, pos vec.V3, self int32, p Params, visit func(octree.Ref)) Result {
	var res Result
	if t.Root.IsNil() {
		return res
	}
	eps2 := p.Eps * p.Eps
	var rec func(r octree.Ref)
	rec = func(r octree.Ref) {
		res.NodesVisited++
		if visit != nil {
			visit(r)
		}
		if r.IsLeaf() {
			l := t.Store.Leaf(r)
			for _, b := range l.Bodies {
				if b == self {
					continue
				}
				res.Acc = res.Acc.Add(pairAccel(pos, d.Pos[b], d.Mass[b], eps2, p.G))
				res.Interactions++
			}
			return
		}
		c := t.Store.Cell(r)
		if c.NBody == 0 {
			return
		}
		dist2 := pos.Dist2(c.COM)
		if c.Cube.Size*c.Cube.Size < p.Theta*p.Theta*dist2 {
			// Far enough: one interaction with the cell's moments.
			res.Acc = res.Acc.Add(pairAccel(pos, c.COM, c.Mass, eps2, p.G))
			if p.Quadrupole {
				res.Acc = res.Acc.Add(quadAccel(pos.Sub(c.COM), c.Quad, eps2, p.G))
			}
			res.Interactions++
			return
		}
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				rec(ch)
			}
		}
	}
	rec(t.Root)
	return res
}

// pairAccel is the softened gravitational acceleration at pos due to a
// point mass m at q.
func pairAccel(pos, q vec.V3, m, eps2, g float64) vec.V3 {
	dv := q.Sub(pos)
	d2 := dv.Len2() + eps2
	inv := 1 / (d2 * math.Sqrt(d2))
	return dv.Scale(g * m * inv)
}

// quadAccel is the quadrupole correction to the acceleration at offset r
// from the expansion center (r = field point − COM):
//
//	a_Q = G [ Q·r / r⁵ − (5/2) (rᵀQr) r / r⁷ ]
//
// which is −∇ of the quadrupole potential φ_Q = −G (rᵀQr) / (2 r⁵).
func quadAccel(r vec.V3, q octree.Quadrupole, eps2, g float64) vec.V3 {
	r2 := r.Len2() + eps2
	r1 := math.Sqrt(r2)
	inv5 := 1 / (r2 * r2 * r1)
	qr, rqr := q.Apply(r)
	return qr.Scale(g*inv5).MulAdd(-2.5*g*rqr*inv5/r2, r)
}

// PointAccel returns the acceleration at pos due to a point mass m at q —
// exported for the message-passing baseline's remote-body contributions.
func PointAccel(pos, q vec.V3, m float64, p Params) vec.V3 {
	return pairAccel(pos, q, m, p.Eps*p.Eps, p.G)
}

// ExpansionAccel returns the acceleration at pos due to a multipole
// expansion: mass at com, plus the quadrupole term when enabled —
// exported for the message-passing baseline's mass-point contributions.
func ExpansionAccel(pos, com vec.V3, mass float64, q octree.Quadrupole, p Params) vec.V3 {
	a := pairAccel(pos, com, mass, p.Eps*p.Eps, p.G)
	if p.Quadrupole {
		a = a.Add(quadAccel(pos.Sub(com), q, p.Eps*p.Eps, p.G))
	}
	return a
}

// Direct computes the exact softened acceleration on body self by summing
// over all bodies: the O(N²) reference used by accuracy tests.
func Direct(d octree.BodyData, self int32, p Params) vec.V3 {
	var acc vec.V3
	eps2 := p.Eps * p.Eps
	pos := d.Pos[self]
	for b := range d.Pos {
		if int32(b) == self {
			continue
		}
		acc = acc.Add(pairAccel(pos, d.Pos[b], d.Mass[b], eps2, p.G))
	}
	return acc
}

// PhaseStats aggregates a force pass.
type PhaseStats struct {
	Interactions int64
	NodesVisited int64
}

// ComputeAll runs the force phase over the given per-processor partition:
// processor w computes accelerations and costs for the bodies in assign[w],
// in parallel. It returns aggregate counts. Acc and Cost are written into
// the body store (each body is owned by exactly one processor, so the
// writes never conflict).
func ComputeAll(t *octree.Tree, bodies *phys.Bodies, assign [][]int32, p Params) PhaseStats {
	d := octree.BodyData{Pos: bodies.Pos, Mass: bodies.Mass, Cost: bodies.Cost}
	nw := len(assign)
	stats := make([]PhaseStats, nw)
	done := make(chan struct{}, nw)
	for w := 0; w < nw; w++ {
		go func(w int) {
			var st PhaseStats
			for _, b := range assign[w] {
				r := Accel(t, d, b, p)
				bodies.Acc[b] = r.Acc
				bodies.Cost[b] = r.Interactions
				st.Interactions += r.Interactions
				st.NodesVisited += r.NodesVisited
			}
			stats[w] = st
			done <- struct{}{}
		}(w)
	}
	var total PhaseStats
	for w := 0; w < nw; w++ {
		<-done
	}
	for _, st := range stats {
		total.Interactions += st.Interactions
		total.NodesVisited += st.NodesVisited
	}
	return total
}
