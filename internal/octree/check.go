package octree

import (
	"fmt"
	"math"
	"sort"

	"partree/internal/vec"
)

// CheckOptions selects which invariants Check verifies.
type CheckOptions struct {
	// Canonical additionally requires minimality: every live cell's
	// subtree holds more than LeafCap bodies (i.e. the cell had to be
	// subdivided). Rebuilding builders produce canonical trees; UPDATE
	// legitimately does not (it never collapses cells), so it is checked
	// with Canonical false.
	Canonical bool
	// Moments additionally verifies Mass/COM/NBody/Cost against a fresh
	// recomputation from the body data, within tolerance.
	Moments bool
	// Tol is the relative tolerance for moment comparison (default 1e-9).
	Tol float64
}

// Check verifies the structural invariants of t against the body data:
//
//   - every body index in [0,n) appears in exactly one live leaf;
//   - every body lies inside its leaf's cube;
//   - each child's cube is exactly its parent's octant sub-cube, in the
//     matching slot;
//   - parent links agree with child links;
//   - live leaves hold ≤ LeafCap bodies unless at MaxDepth;
//   - no live leaf is marked Retired, no live leaf is empty.
//
// It returns the first violation found, or nil.
func Check(t *Tree, d BodyData, opt CheckOptions) error {
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	n := len(d.Pos)
	seen := make([]int32, n)
	s := t.Store
	if t.Root.IsNil() {
		if n != 0 {
			return fmt.Errorf("octree: nil root with %d bodies", n)
		}
		return nil
	}
	if !t.Root.IsCell() {
		return fmt.Errorf("octree: root %v is not a cell", t.Root)
	}

	var errOut error
	fail := func(format string, args ...any) bool {
		if errOut == nil {
			errOut = fmt.Errorf("octree: "+format, args...)
		}
		return false
	}

	var rec func(r Ref, parent Ref, want vec.Cube, depth int) bool
	rec = func(r Ref, parent Ref, want vec.Cube, depth int) bool {
		if r.IsLeaf() {
			l := s.Leaf(r)
			if l.Retired {
				return fail("live leaf %v marked retired", r)
			}
			if l.Parent != parent {
				return fail("leaf %v parent link %v, want %v", r, l.Parent, parent)
			}
			if !cubeEq(l.Cube, want) {
				return fail("leaf %v cube %v, want %v", r, l.Cube, want)
			}
			if len(l.Bodies) == 0 {
				return fail("empty live leaf %v", r)
			}
			if len(l.Bodies) > s.LeafCap && depth < s.MaxDepth {
				return fail("leaf %v holds %d bodies > cap %d at depth %d", r, len(l.Bodies), s.LeafCap, depth)
			}
			for _, b := range l.Bodies {
				if b < 0 || int(b) >= n {
					return fail("leaf %v holds out-of-range body %d", r, b)
				}
				// Bodies are *placed* by OctantOf routing (>= center), and
				// with rounding a child cube's face can land exactly on a
				// body's coordinate, so geometric containment and routing
				// can disagree at boundaries. Either one legitimizes the
				// placement: geometric containment is what UPDATE maintains
				// for stationary bodies; routing is exact for every body a
				// rebuilding pass inserted.
				if !l.Cube.Contains(d.Pos[b]) && !routesToLeaf(t, r, d.Pos[b]) {
					return fail("body %d at %v outside leaf %v cube %v and not routed to it", b, d.Pos[b], r, l.Cube)
				}
				seen[b]++
			}
			return true
		}
		c := s.Cell(r)
		if c.Parent != parent {
			return fail("cell %v parent link %v, want %v", r, c.Parent, parent)
		}
		if !cubeEq(c.Cube, want) {
			return fail("cell %v cube %v, want %v", r, c.Cube, want)
		}
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			ch := c.Child(o)
			if ch.IsNil() {
				continue
			}
			if !rec(ch, r, c.Cube.Child(o), depth+1) {
				return false
			}
		}
		return true
	}
	rec(t.Root, Nil, t.RootCube(), 0)
	if errOut != nil {
		return errOut
	}

	for b, k := range seen {
		if k != 1 {
			return fmt.Errorf("octree: body %d appears in %d leaves, want 1", b, k)
		}
	}

	if opt.Canonical {
		if err := checkCanonical(t, d); err != nil {
			return err
		}
	}
	if opt.Moments {
		if err := checkMoments(t, d, opt.Tol); err != nil {
			return err
		}
	}
	return nil
}

// routesToLeaf reports whether descending from the root by OctantOf at
// each cell — exactly how the builders place bodies — arrives at leaf r.
func routesToLeaf(t *Tree, r Ref, p vec.V3) bool {
	s := t.Store
	cur := t.Root
	for cur.IsCell() {
		c := s.Cell(cur)
		cur = c.Child(c.Cube.OctantOf(p))
	}
	return cur == r
}

// checkCanonical verifies minimality: every live non-root cell's subtree
// holds more than LeafCap bodies.
func checkCanonical(t *Tree, d BodyData) error {
	s := t.Store
	var count func(r Ref) int
	count = func(r Ref) int {
		if r.IsLeaf() {
			return len(s.Leaf(r).Bodies)
		}
		c := s.Cell(r)
		total := 0
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				total += count(ch)
			}
		}
		return total
	}
	var err error
	Walk(t, func(r Ref, depth int) bool {
		if err != nil {
			return false
		}
		if r.IsCell() && r != t.Root {
			if n := count(r); n <= s.LeafCap {
				err = fmt.Errorf("octree: non-canonical cell %v holds only %d bodies (cap %d)", r, n, s.LeafCap)
				return false
			}
		}
		return true
	})
	return err
}

// checkMoments recomputes moments into scratch and compares.
func checkMoments(t *Tree, d BodyData, tol float64) error {
	s := t.Store
	var err error
	var rec func(r Ref) (float64, vec.V3, int32, int64)
	rec = func(r Ref) (float64, vec.V3, int32, int64) {
		if r.IsLeaf() {
			l := s.Leaf(r)
			var mass float64
			var wsum vec.V3
			var cost int64
			for _, b := range l.Bodies {
				mass += d.Mass[b]
				wsum = wsum.MulAdd(d.Mass[b], d.Pos[b])
				cost += d.CostOf(b)
			}
			com := l.Cube.Center
			if mass > 0 {
				com = wsum.Scale(1 / mass)
			}
			if err == nil {
				if !feq(mass, l.Mass, tol) || !veq(com, l.COM, tol) || l.Cost != cost {
					err = fmt.Errorf("octree: leaf %v moments stale: mass %g/%g com %v/%v cost %d/%d",
						r, l.Mass, mass, l.COM, com, l.Cost, cost)
				}
			}
			return mass, com, int32(len(l.Bodies)), cost
		}
		c := s.Cell(r)
		var mass float64
		var wsum vec.V3
		var n int32
		var cost int64
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if ch := c.Child(o); !ch.IsNil() {
				m, cm, cn, cc := rec(ch)
				mass += m
				wsum = wsum.MulAdd(m, cm)
				n += cn
				cost += cc
			}
		}
		com := c.Cube.Center
		if mass > 0 {
			com = wsum.Scale(1 / mass)
		}
		if err == nil {
			if !feq(mass, c.Mass, tol) || !veq(com, c.COM, tol) || n != c.NBody || c.Cost != cost {
				err = fmt.Errorf("octree: cell %v moments stale: mass %g/%g com %v/%v n %d/%d cost %d/%d",
					r, c.Mass, mass, c.COM, com, c.NBody, n, c.Cost, cost)
			}
		}
		return mass, com, n, cost
	}
	rec(t.Root)
	return err
}

func feq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func veq(a, b vec.V3, tol float64) bool {
	return feq(a.X, b.X, tol) && feq(a.Y, b.Y, tol) && feq(a.Z, b.Z, tol)
}

func cubeEq(a, b vec.Cube) bool {
	// Cubes derive from exact halving of the same root, so equality is
	// exact, with a hair of slack for roots computed independently.
	return feq(a.Size, b.Size, 1e-12) && veq(a.Center, b.Center, 1e-12)
}

// Equal reports whether two trees are structurally identical: same shape,
// same cubes, and the same *set* of bodies in each corresponding leaf
// (insertion order may differ between builders). It is how the parallel
// builders are verified against the canonical sequential tree.
func Equal(a, b *Tree) error {
	var rec func(ra, rb Ref, path string) error
	rec = func(ra, rb Ref, path string) error {
		if ra.IsNil() != rb.IsNil() {
			return fmt.Errorf("octree: shape differs at %s: %v vs %v", path, ra, rb)
		}
		if ra.IsNil() {
			return nil
		}
		if ra.IsLeaf() != rb.IsLeaf() {
			return fmt.Errorf("octree: node kind differs at %s: %v vs %v", path, ra, rb)
		}
		if ra.IsLeaf() {
			la, lb := a.Store.Leaf(ra), b.Store.Leaf(rb)
			if !cubeEq(la.Cube, lb.Cube) {
				return fmt.Errorf("octree: leaf cube differs at %s: %v vs %v", path, la.Cube, lb.Cube)
			}
			sa := append([]int32(nil), la.Bodies...)
			sb := append([]int32(nil), lb.Bodies...)
			sort.Slice(sa, func(i, j int) bool { return sa[i] < sa[j] })
			sort.Slice(sb, func(i, j int) bool { return sb[i] < sb[j] })
			if len(sa) != len(sb) {
				return fmt.Errorf("octree: leaf at %s holds %d vs %d bodies", path, len(sa), len(sb))
			}
			for i := range sa {
				if sa[i] != sb[i] {
					return fmt.Errorf("octree: leaf at %s body sets differ (%d vs %d)", path, sa[i], sb[i])
				}
			}
			return nil
		}
		ca, cb := a.Store.Cell(ra), b.Store.Cell(rb)
		if !cubeEq(ca.Cube, cb.Cube) {
			return fmt.Errorf("octree: cell cube differs at %s: %v vs %v", path, ca.Cube, cb.Cube)
		}
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			if err := rec(ca.Child(o), cb.Child(o), fmt.Sprintf("%s/%d", path, o)); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(a.Root, b.Root, "root")
}
