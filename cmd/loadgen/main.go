// Command loadgen drives a live partreed with a scenario × arrival
// process workload and writes a replayable report. It is the traffic
// half of internal/workload: a physical scenario picks what each
// request computes (disk galaxy, colliding clusters, hierarchical
// halos, evolving variants), an arrival process picks when requests
// fire (Poisson, bursty, diurnal, or a replayed NDJSON trace), and the
// daemon's admission control decides what survives.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:9732 [-targets u1,u2,...] [-mode session|build]
//	        [-scenario disk] [-arrival bursty:rate=60,on=250ms,off=250ms]
//	        [-horizon 5s] [-speedup 0] [-n 2048] [-procs 2] [-steps 8]
//	        [-seed 1998] [-timeout 60s] [-adaptive] [-idle-ms 0] [-linger]
//	        [-trace-in f] [-trace-out f] [-report f] [-timings f]
//
// Two outputs, split by determinism:
//
//   - The report (-report, default stdout) is byte-deterministic for a
//     fixed (scenario, arrival, seed, flags) as long as the server
//     rejects nothing and sessions are non-adaptive: run config, the
//     schedule digest, outcome counts, per-session server-reported
//     step aggregates (including each arrival's request ID, which
//     loadgen mints deterministically via traceparent), and /metrics
//     counter deltas. Two identical runs produce identical bytes — the
//     replay contract. The one exception is the "slow" section: the
//     p99_* request-ID pointers name whichever request *measured*
//     slowest, so determinism comparisons strip lines matching "p99_.
//   - The timings CSV (-timings, optional) holds everything measured:
//     latency percentiles (p50/p95/p99), queue-depth samples. Never
//     byte-stable, by design.
//
// With -targets, arrivals round-robin across several daemons (or
// routers) by arrival ID — a pure function of the schedule, so the
// determinism contract holds — and the report gains a per-target
// outcome section; counter deltas are summed across the fleet.
//
// The -timeout bound is mandatory: a load run that can hang is worse
// than no run, so loadgen refuses to start without one and exits 1 if
// the horizon's work does not complete inside it.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"partree/internal/workload"
)

type config struct {
	targets  []string
	mode     string
	scenario workload.Scenario
	arrival  workload.Process
	horizon  time.Duration
	speedup  float64
	n        int
	procs    int
	steps    int
	seed     int64
	timeout  time.Duration
	adaptive bool
	idleMs   int64
	linger   bool
}

// target picks the base URL arrival id fires at: round-robin by ID, so
// the target assignment is a pure function of the schedule and stays
// byte-deterministic in the report.
func (c config) target(id int) string {
	return c.targets[id%len(c.targets)]
}

func main() {
	var (
		url      = flag.String("url", "", "base URL of a running partreed (required unless -targets is given)")
		targets  = flag.String("targets", "", "comma-separated base URLs; arrivals round-robin across them (overrides -url)")
		mode     = flag.String("mode", "session", "what each arrival does: session (streaming /v1/session) or build (one-shot /v1/build)")
		scenario = flag.String("scenario", "plummer", "physical scenario spec, e.g. disk, collision:impact=1.5, hierarchical:evolve=4")
		arrival  = flag.String("arrival", "poisson:rate=20", "arrival process spec, e.g. bursty:rate=60,on=250ms,off=250ms,period=1s,depth=0.6")
		horizon  = flag.Duration("horizon", 5*time.Second, "virtual-time horizon the arrival schedule covers")
		speedup  = flag.Float64("speedup", 0, "virtual seconds per real second (0 = fire as fast as possible, order preserved)")
		n        = flag.Int("n", 2048, "bodies per request")
		procs    = flag.Int("procs", 2, "processors per request")
		steps    = flag.Int("steps", 8, "timesteps per session")
		seed     = flag.Int64("seed", 1998, "base seed; request i uses seed+i")
		timeout  = flag.Duration("timeout", 60*time.Second, "mandatory wall-clock bound for the whole run")
		adaptive = flag.Bool("adaptive", false, "open adaptive sessions (measured-cost partitioning; reports stop being byte-stable)")
		idleMs   = flag.Int64("idle-ms", 0, "per-session idle eviction timeout in ms (0 = server default)")
		linger   = flag.Bool("linger", false, "sessions hold their lease open after their steps instead of closing (eviction pressure)")
		traceIn  = flag.String("trace-in", "", "replay this NDJSON trace instead of sampling the arrival process")
		traceOut = flag.String("trace-out", "", "write the effective schedule as an NDJSON trace")
		report   = flag.String("report", "", "deterministic JSON report path (default stdout)")
		timings  = flag.String("timings", "", "measured-latency CSV path (optional)")
	)
	flag.Parse()
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)).With("bin", "loadgen"))
	urls := *targets
	if urls == "" {
		urls = *url
	}
	if err := run(urls, *mode, *scenario, *arrival, *horizon, *speedup, *n, *procs,
		*steps, *seed, *timeout, *adaptive, *idleMs, *linger,
		*traceIn, *traceOut, *report, *timings); err != nil {
		slog.Error("loadgen failed", "err", err)
		os.Exit(1)
	}
}

func run(urls, mode, scenarioSpec, arrivalSpec string, horizon time.Duration,
	speedup float64, n, procs, steps int, seed int64, timeout time.Duration,
	adaptive bool, idleMs int64, linger bool,
	traceIn, traceOut, reportPath, timingsPath string) error {

	// urls is -targets (or the lone -url): comma-separated base URLs the
	// arrivals round-robin across.
	var tg []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			tg = append(tg, u)
		}
	}
	if len(tg) == 0 {
		return fmt.Errorf("-url or -targets is required (running partreed/router base URLs)")
	}
	if timeout <= 0 {
		return fmt.Errorf("a positive -timeout is mandatory: a load run must not be able to hang")
	}
	if mode != "session" && mode != "build" {
		return fmt.Errorf("-mode must be session or build, got %q", mode)
	}
	sc, err := workload.ParseScenario(scenarioSpec)
	if err != nil {
		return err
	}
	cfg := config{
		targets: tg, mode: mode, scenario: sc,
		horizon: horizon, speedup: speedup, n: n, procs: procs, steps: steps,
		seed: seed, timeout: timeout, adaptive: adaptive, idleMs: idleMs, linger: linger,
	}
	if _, ok := sc.ServerModel(); !ok && mode == "build" {
		return fmt.Errorf("scenario %s needs client-driven motion, which build mode cannot stream (use -mode session)", sc.Name())
	}

	// The schedule: sampled from the arrival process, or replayed.
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		evs, rerr := workload.ReadTrace(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		cfg.arrival = workload.TraceProcess(workload.Offsets(evs))
	} else {
		p, err := workload.ParseArrival(arrivalSpec)
		if err != nil {
			return err
		}
		cfg.arrival = p
	}
	schedule := cfg.arrival.Schedule(horizon, seed)
	evs := workload.EventsFromOffsets(schedule, mode)
	var traceBytes bytes.Buffer
	if err := workload.WriteTrace(&traceBytes, evs); err != nil {
		return err
	}
	if traceOut != "" {
		if err := os.WriteFile(traceOut, traceBytes.Bytes(), 0o644); err != nil {
			return err
		}
	}
	if len(schedule) == 0 {
		return fmt.Errorf("the arrival schedule is empty (horizon %s at rate %g)", horizon, cfg.arrival.MeanRate())
	}
	slog.Info("run starting", "mode", mode, "scenario", sc.Name(),
		"arrival", cfg.arrival.Name(), "arrivals", len(schedule), "timeout", timeout)

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Counter deltas are accounted per target and summed in the report;
	// the queue sampler watches the first target only (the measured CSV
	// is not byte-stable anyway, and one depth series keeps it readable).
	before := make([]metricsSnapshot, len(cfg.targets))
	for ti, u := range cfg.targets {
		if before[ti], err = scrapeMetrics(ctx, u); err != nil {
			return fmt.Errorf("scraping %s/metrics before the run: %w", u, err)
		}
	}
	sampler := startQueueSampler(ctx, cfg.targets[0])

	// Fire the schedule. Each arrival runs on its own goroutine; pacing
	// happens here on the launch path so ordering is the schedule's.
	results := make([]arrivalResult, len(schedule))
	var wg sync.WaitGroup
	start := time.Now()
	for i, at := range schedule {
		if d := workload.Pace(at, time.Since(start), speedup); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			// Past the timeout: mark the rest unlaunched and stop.
			for j := i; j < len(schedule); j++ {
				results[j] = arrivalResult{ID: j, AtNs: int64(schedule[j]), Outcome: "unlaunched"}
			}
			break
		}
		wg.Add(1)
		go func(i int, at time.Duration) {
			defer wg.Done()
			if mode == "build" {
				results[i] = runBuild(ctx, cfg, i, at)
			} else {
				results[i] = runSession(ctx, cfg, i, at)
			}
		}(i, at)
	}
	wg.Wait()
	wall := time.Since(start)
	depths := sampler.stop()

	after := make([]metricsSnapshot, len(cfg.targets))
	for ti, u := range cfg.targets {
		if after[ti], err = scrapeMetrics(context.Background(), u); err != nil {
			return fmt.Errorf("scraping %s/metrics after the run: %w", u, err)
		}
	}

	rep := buildReport(cfg, schedule, traceBytes.Bytes(), results, before, after)
	if err := writeReport(reportPath, rep); err != nil {
		return err
	}
	if timingsPath != "" {
		if err := writeTimings(timingsPath, results, depths, wall); err != nil {
			return err
		}
	}
	slog.Info("run complete", "ok", rep.Outcomes.OK, "rejected", rep.Outcomes.Rejected,
		"failed", rep.Outcomes.Failed, "wall", wall.Round(time.Millisecond))
	if ctx.Err() != nil {
		return fmt.Errorf("run exceeded the mandatory -timeout %s (%d arrivals unlaunched)",
			timeout, rep.Outcomes.Unlaunched)
	}
	return nil
}

// percentile returns the p-th percentile (nearest-rank) of sorted
// durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func sortedLatencies(results []arrivalResult) []time.Duration {
	var out []time.Duration
	for _, r := range results {
		if r.Outcome == "ok" {
			out = append(out, r.latency)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
