package fmm

import (
	"fmt"
	"math"
	"testing"

	"partree/internal/core"
	"partree/internal/force"
	"partree/internal/octree"
	"partree/internal/phys"
)

func prepared(n int, seed int64) (*phys.Bodies, *octree.Tree, octree.BodyData) {
	b := phys.Generate(phys.ModelPlummer, n, seed)
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	octree.ComputeMomentsSerial(tr, d)
	return b, tr, d
}

func meanErr(b *phys.Bodies, d octree.BodyData, p force.Params, stride int) float64 {
	var sum float64
	n := 0
	for i := 0; i < b.N(); i += stride {
		exact := force.Direct(d, int32(i), p)
		sum += b.Acc[i].Sub(exact).Len() / (exact.Len() + 1e-12)
		n++
	}
	return sum / float64(n)
}

func TestFMMAccuracyComparableToBH(t *testing.T) {
	b, tr, d := prepared(3000, 7)
	fp := force.Params{Theta: 0.7, Eps: 0.05, G: 1}

	// BH reference errors.
	bh := b.Clone()
	force.ComputeAll(tr, bh, core.EvenAssign(b.N(), 1), fp)
	errBH := meanErr(bh, d, fp, 13)

	// FMM at the same θ.
	ComputeAll(tr, b, Params{Theta: 0.7, Eps: 0.05, G: 1, Quadrupole: true}, 4)
	errFMM := meanErr(b, d, fp, 13)

	if errFMM > 3*errBH+0.01 {
		t.Fatalf("FMM mean error %.4g not comparable to BH %.4g", errFMM, errBH)
	}
	if errFMM > 0.06 {
		t.Fatalf("FMM mean error %.4g too large", errFMM)
	}
	t.Logf("mean relative error: FMM %.4f vs BH %.4f at θ=0.7", errFMM, errBH)
}

func TestFMMFewerInteractionsThanBH(t *testing.T) {
	// The cell-cell algorithm's whole point: far fewer force evaluations
	// than body-cell Barnes-Hut for the same tree and θ.
	b, tr, _ := prepared(20000, 3)
	fp := force.Params{Theta: 0.8, Eps: 0.05, G: 1}
	bh := b.Clone()
	st := force.ComputeAll(tr, bh, core.EvenAssign(b.N(), 1), fp)
	fs := ComputeAll(tr, b, Params{Theta: 0.8, Eps: 0.05, G: 1, Quadrupole: true}, 4)
	fmmOps := fs.CellCell + fs.P2P
	if fmmOps >= st.Interactions {
		t.Fatalf("FMM ops %d not below BH interactions %d", fmmOps, st.Interactions)
	}
	t.Logf("ops at θ=0.8, n=20000: FMM %d (cc=%d p2p=%d) vs BH %d (%.1fx fewer)",
		fmmOps, fs.CellCell, fs.P2P, st.Interactions, float64(st.Interactions)/float64(fmmOps))
}

func TestFMMWorksOnAllBuildersTrees(t *testing.T) {
	// The same solver runs on trees produced by every one of the paper's
	// five parallel builders — the "applies to all methods" claim.
	b := phys.Generate(phys.ModelPlummer, 2000, 9)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	fp := force.Params{Theta: 0.8, Eps: 0.05, G: 1}

	var ref []float64
	for i, alg := range core.Algorithms() {
		bld := core.New(alg, core.Config{P: 4, LeafCap: 8})
		tr, _ := bld.Build(&core.Input{Bodies: b, Assign: core.EvenAssign(b.N(), 4)})
		run := b.Clone()
		ComputeAll(tr, run, Params{Theta: 0.8, Eps: 0.05, G: 1, Quadrupole: true}, 4)
		if err := meanErr(run, d, fp, 31); err > 0.06 {
			t.Fatalf("%v tree: FMM error %.4g", alg, err)
		}
		if i == 0 {
			for j := 0; j < b.N(); j += 31 {
				ref = append(ref, run.Acc[j].Len())
			}
			continue
		}
		k := 0
		for j := 0; j < b.N(); j += 31 {
			if math.Abs(run.Acc[j].Len()-ref[k]) > 1e-9*(1+ref[k]) {
				t.Fatalf("%v tree: FMM result differs from canonical tree's", alg)
			}
			k++
		}
	}
}

func TestFMMWorkerCountsAgree(t *testing.T) {
	b, tr, _ := prepared(2500, 11)
	fp := Params{Theta: 0.8, Eps: 0.05, G: 1, Quadrupole: true}
	one := b.Clone()
	ComputeAll(tr, one, fp, 1)
	many := b.Clone()
	ComputeAll(tr, many, fp, 8)
	for i := range one.Acc {
		if one.Acc[i].Sub(many.Acc[i]).Len() > 1e-9*(1+one.Acc[i].Len()) {
			t.Fatalf("worker counts disagree at body %d: %v vs %v", i, one.Acc[i], many.Acc[i])
		}
	}
}

func TestFMMMomentumConservation(t *testing.T) {
	// Cell-cell interactions are not applied symmetrically here (each
	// sink integrates the full source field), so momentum conservation
	// holds only to the expansion's accuracy — but must be small.
	b, tr, _ := prepared(3000, 13)
	ComputeAll(tr, b, DefaultParams(), 4)
	var net float64
	for i := range b.Acc {
		net += b.Mass[i] * b.Acc[i].Len()
	}
	var imbalance struct{ x, y, z float64 }
	for i := range b.Acc {
		imbalance.x += b.Mass[i] * b.Acc[i].X
		imbalance.y += b.Mass[i] * b.Acc[i].Y
		imbalance.z += b.Mass[i] * b.Acc[i].Z
	}
	tot := math.Sqrt(imbalance.x*imbalance.x + imbalance.y*imbalance.y + imbalance.z*imbalance.z)
	if tot > 0.02*net {
		t.Fatalf("net force %.3g exceeds 2%% of gross %.3g", tot, net)
	}
}

func TestFMMTinySystems(t *testing.T) {
	for _, n := range []int{1, 2, 9} {
		b, tr, d := prepared(n, 17)
		ComputeAll(tr, b, DefaultParams(), 4)
		fp := force.Params{Theta: 1, Eps: 0.05, G: 1}
		for i := 0; i < n; i++ {
			exact := force.Direct(d, int32(i), fp)
			if b.Acc[i].Sub(exact).Len() > 1e-9*(1+exact.Len()) {
				t.Fatalf("n=%d body %d: %v want %v", n, i, b.Acc[i], exact)
			}
		}
	}
}

func BenchmarkFMMvsBH(b *testing.B) {
	bodies, tr, _ := prepared(32768, 1)
	for _, solver := range []string{"bh", "fmm"} {
		b.Run(fmt.Sprintf("%s/n=32768", solver), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if solver == "bh" {
					force.ComputeAll(tr, bodies, core.EvenAssign(bodies.N(), 8), force.DefaultParams())
				} else {
					ComputeAll(tr, bodies, DefaultParams(), 8)
				}
			}
		})
	}
}
