// Package harness defines the paper's experiments — every table and figure
// in the evaluation section — as runnable units over the platform
// simulator, plus the native-execution extras. cmd/paperrepro drives it.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/phys"
	"partree/internal/simalg"
)

// Options configure a reproduction session.
type Options struct {
	// Sizes are the problem sizes swept (bodies). The paper uses 8k-512k;
	// the default keeps runs quick, -large extends it.
	Sizes []int
	// Large switches to the extended size sweep.
	Large bool
	// Seed for the Plummer model.
	Seed int64
	// LeafCap is the bodies-per-leaf threshold k.
	LeafCap int
	// MeasuredSteps per run (the paper times a few steps after warmup).
	MeasuredSteps int
}

// DefaultOptions returns the quick configuration.
func DefaultOptions() Options {
	return Options{
		Sizes:         []int{4096, 8192, 16384},
		Seed:          1998,
		LeafCap:       8,
		MeasuredSteps: 2,
	}
}

// EffectiveSizes returns the size sweep honoring Large.
func (o Options) EffectiveSizes() []int {
	if o.Large {
		return append(append([]int{}, o.Sizes...), 32768, 65536, 131072)
	}
	return o.Sizes
}

// MaxSize returns the largest size in the sweep (used by the experiments
// that the paper runs at a single large size).
func (o Options) MaxSize() int {
	max := 0
	for _, n := range o.EffectiveSizes() {
		if n > max {
			max = n
		}
	}
	return max
}

// Session memoizes simulation outcomes so experiments can share runs (the
// speedup figures and the phase-share figures reuse the same sweeps).
type Session struct {
	Opts   Options
	bodies map[int]*phys.Bodies
	cache  map[string]simalg.Outcome
}

// NewSession creates a session.
func NewSession(opts Options) *Session {
	if opts.LeafCap == 0 {
		opts.LeafCap = 8
	}
	if opts.MeasuredSteps == 0 {
		opts.MeasuredSteps = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1998
	}
	if len(opts.Sizes) == 0 {
		opts.Sizes = DefaultOptions().Sizes
	}
	return &Session{Opts: opts, bodies: map[int]*phys.Bodies{}, cache: map[string]simalg.Outcome{}}
}

// Bodies returns the memoized Plummer system of size n.
func (s *Session) Bodies(n int) *phys.Bodies {
	b := s.bodies[n]
	if b == nil {
		b = phys.Generate(phys.ModelPlummer, n, s.Opts.Seed)
		s.bodies[n] = b
	}
	return b
}

// Outcome runs (or recalls) algorithm alg on the platform with p simulated
// processors and n bodies.
func (s *Session) Outcome(pl memsim.Platform, alg core.Algorithm, p, n int) simalg.Outcome {
	key := fmt.Sprintf("%s|%v|%d|%d", pl.Name, alg, p, n)
	if o, ok := s.cache[key]; ok {
		return o
	}
	o := simalg.Run(alg, s.Bodies(n), simalg.Config{
		Platform:      pl,
		P:             p,
		LeafCap:       s.Opts.LeafCap,
		MeasuredSteps: s.Opts.MeasuredSteps,
	})
	s.cache[key] = o
	return o
}

// Seq returns the best-sequential baseline on the platform at size n: one
// processor, no locking anywhere (the paper's speedup denominator).
func (s *Session) Seq(pl memsim.Platform, n int) simalg.Outcome {
	key := fmt.Sprintf("%s|seq|%d", pl.Name, n)
	if o, ok := s.cache[key]; ok {
		return o
	}
	o := simalg.Run(core.LOCAL, s.Bodies(n), simalg.Config{
		Platform:      pl,
		P:             1,
		LeafCap:       s.Opts.LeafCap,
		MeasuredSteps: s.Opts.MeasuredSteps,
		Sequential:    true,
	})
	s.cache[key] = o
	return o
}

// Speedup is whole-application speedup over the platform's sequential run.
func (s *Session) Speedup(pl memsim.Platform, alg core.Algorithm, p, n int) float64 {
	return s.Seq(pl, n).TotalNs() / s.Outcome(pl, alg, p, n).TotalNs()
}

// TreeSpeedup is the tree-building phase's speedup alone (paper Figures 9
// and 14).
func (s *Session) TreeSpeedup(pl memsim.Platform, alg core.Algorithm, p, n int) float64 {
	return s.Seq(pl, n).TreeNs / s.Outcome(pl, alg, p, n).TreeNs
}

// DumpCSV writes every outcome the session has computed as CSV, for
// external plotting. Rows are sorted by cache key so output is stable.
func (s *Session) DumpCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"platform", "algorithm", "procs", "bodies", "steps",
		"tree_ns", "partition_ns", "force_ns", "update_ns", "total_ns",
		"tree_share", "locks_total", "barrier_ns_mean", "interactions",
		"page_faults", "diffs", "write_notices", "coherence_misses", "contention_ns",
	}); err != nil {
		return err
	}
	keys := make([]string, 0, len(s.cache))
	for k := range s.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		o := s.cache[k]
		alg := o.Alg.String()
		if strings.Contains(k, "|seq|") {
			alg = "SEQUENTIAL"
		}
		rec := []string{
			o.Platform, alg,
			strconv.Itoa(o.P), strconv.Itoa(o.N), strconv.Itoa(o.Steps),
			fmt.Sprintf("%.0f", o.TreeNs), fmt.Sprintf("%.0f", o.PartNs),
			fmt.Sprintf("%.0f", o.ForceNs), fmt.Sprintf("%.0f", o.UpdateNs),
			fmt.Sprintf("%.0f", o.TotalNs()),
			fmt.Sprintf("%.4f", o.TreeShare()),
			strconv.FormatInt(o.TotalLocks(), 10),
			fmt.Sprintf("%.0f", o.MeanBarrierNs()),
			strconv.FormatInt(o.Interactions, 10),
			strconv.FormatInt(o.Protocol.PageFaults, 10),
			strconv.FormatInt(o.Protocol.Diffs, 10),
			strconv.FormatInt(o.Protocol.WriteNotices, 10),
			strconv.FormatInt(o.Protocol.CoherenceMiss, 10),
			fmt.Sprintf("%.0f", o.Protocol.ContentionNs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
