package trace

import (
	"math"
	"math/bits"
)

// HistBuckets is the number of regular power-of-two buckets; one extra
// overflow bucket follows. Bucket 0 holds the value 0, bucket i (i >= 1)
// holds [2^(i-1), 2^i - 1], so bucket 39 tops out near 9 virtual
// minutes — far beyond any plausible lock hold — and everything larger
// lands in the overflow bucket.
const HistBuckets = 40

// Hist is a log-spaced (power-of-two) histogram of nanosecond durations.
// Adding is two integer ops and a compare — cheap enough to run on the
// lock-release path — and quantile queries resolve to a deterministic
// per-bucket upper bound, which is what makes the exporter goldens and
// the percentile unit tests byte-stable.
type Hist struct {
	Counts [HistBuckets + 1]int64 // Counts[HistBuckets] is the overflow bucket
	Total  int64
	MaxNs  int64
}

func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= HistBuckets {
		return HistBuckets
	}
	return i
}

// bucketUpper is bucket i's largest representable value.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

// Add records one duration. Negative durations (possible only through a
// misuse of the explicit-timestamp API) clamp to zero rather than
// corrupting a bucket index.
func (h *Hist) Add(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.Counts[bucketOf(ns)]++
	h.Total++
	if ns > h.MaxNs {
		h.MaxNs = ns
	}
}

// Quantile returns an upper bound for the q-quantile of the recorded
// durations: the upper edge of the smallest bucket whose cumulative
// count reaches ceil(q*Total), tightened to never exceed the exact
// recorded maximum. An empty histogram yields 0; the overflow bucket
// yields the exact maximum. q is clamped to [0, 1].
func (h *Hist) Quantile(q float64) int64 {
	if h.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= HistBuckets; i++ {
		cum += h.Counts[i]
		if cum >= rank {
			if i == HistBuckets {
				return h.MaxNs
			}
			if ub := bucketUpper(i); ub < h.MaxNs {
				return ub
			}
			return h.MaxNs
		}
	}
	return h.MaxNs
}
