package engine

import (
	"errors"
	"testing"

	"partree/internal/partition"
	"partree/internal/vec"
)

func TestGuardCheck(t *testing.T) {
	domain := vec.Cube{Size: 2}
	full := Guard{Domain: domain, Lo: 0, Hi: partition.KeySpace}
	if err := full.Check(7, vec.V3{X: 0.9, Y: -0.9, Z: 0.3}); err != nil {
		t.Fatalf("full-range guard rejected an in-domain body: %v", err)
	}
	// Out-of-domain positions clamp to a face key, which the full range
	// still owns: a single-shard deployment never redirects.
	if err := full.Check(8, vec.V3{X: 50, Y: 50, Z: 50}); err != nil {
		t.Fatalf("full-range guard rejected a clamped body: %v", err)
	}

	half := Guard{Domain: domain, Lo: 0, Hi: partition.KeySpace / 2}
	lowBody := vec.V3{X: -0.9, Y: -0.9, Z: -0.9}
	highBody := vec.V3{X: 0.9, Y: 0.9, Z: 0.9}
	if err := half.Check(1, lowBody); err != nil {
		t.Fatalf("low-half guard rejected a low body: %v", err)
	}
	err := half.Check(2, highBody)
	if err == nil {
		t.Fatalf("low-half guard admitted a high body")
	}
	var re *RedirectError
	if !errors.As(err, &re) {
		t.Fatalf("guard rejection is %T, want *RedirectError", err)
	}
	if re.Body != 2 {
		t.Fatalf("redirect names body %d, want 2", re.Body)
	}
	if re.Key != half.Key(highBody) {
		t.Fatalf("redirect key %#x != guard key %#x", re.Key, half.Key(highBody))
	}
	if re.Key < partition.KeySpace/2 || re.Key >= partition.KeySpace {
		t.Fatalf("redirect key %#x not in the complementary range", re.Key)
	}
	if re.Lo != half.Lo || re.Hi != half.Hi {
		t.Fatalf("redirect range [%#x, %#x) != guard range [%#x, %#x)", re.Lo, re.Hi, half.Lo, half.Hi)
	}
}

// TestGuardBoundaryKey pins the half-open convention: a key equal to Hi
// belongs to the next shard, a key equal to Lo belongs to this one.
func TestGuardBoundaryKey(t *testing.T) {
	cut := partition.KeySpace / 2
	low := Guard{Lo: 0, Hi: cut}
	high := Guard{Lo: cut, Hi: partition.KeySpace}
	if low.Owns(cut) {
		t.Fatalf("low shard owns its exclusive upper bound %#x", cut)
	}
	if !high.Owns(cut) {
		t.Fatalf("high shard does not own its inclusive lower bound %#x", cut)
	}
	if !low.Owns(0) || !low.Owns(cut-1) {
		t.Fatalf("low shard missing interior keys")
	}
	if high.Owns(partition.KeySpace) {
		t.Fatalf("high shard owns KeySpace, which no key reaches")
	}
}
