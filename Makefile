GO ?= go

.PHONY: all build vet test race smoke obs-smoke loadgen-smoke cluster-smoke check repro bench benchcmp

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the native builders, the engine's
# session pool, lease lifecycle (idle-eviction wheel, lease-vs-build
# contention) and admission control, the runner's worker pool / result
# cache, the differential verifier's algorithm cross-product, the tracing
# layer's emit path under all five builders, the adaptive feedback loop
# driving traced steppers, the partreed daemon's concurrent HTTP
# serving, streaming-session e2e, and drain, the workload
# generators' concurrent use from loadgen's per-arrival goroutines, and
# the request flight recorder's lock-free ring under concurrent
# writers and readers, and the cluster tier's fan-out/merge router and
# shard servers under concurrent builds, moves, and metric rollups.
race:
	$(GO) test -race ./internal/core ./internal/engine ./internal/runner ./internal/verify ./internal/trace ./internal/adapt ./internal/workload ./internal/reqtrace ./internal/cluster ./cmd/partreed

# smoke builds real trees with every algorithm and verifies each against
# the sequential reference (-check), end to end through cmd/treebench.
smoke:
	$(GO) run ./cmd/treebench -n 4096 -p 1,2 -reps 1 -check

# obs-smoke exercises the live observability layer end to end: treebench
# runs with -http in the background while the script asserts /healthz and
# the key /metrics series (runner, per-algorithm build, Go runtime).
obs-smoke:
	sh scripts/obs_smoke.sh

# loadgen-smoke replays a seeded bursty-diurnal session workload
# against a live partreed twice and asserts the reports come out
# byte-identical, internally consistent with the daemon's counters,
# and that the daemon drains cleanly afterwards.
loadgen-smoke:
	sh scripts/loadgen_smoke.sh

# cluster-smoke stands up the real sharded serving tier — two partreed
# shard daemons plus a partree-router fronting them — and asserts a
# fan-out build conserves bodies across shards, a boundary-crossing
# move hands the body off to exactly one owner, a stale map version is
# refused with 409, and the router's partree_cluster_* rollup reflects
# the fleet.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# check is the tier-1+ gate: everything must pass before a PR lands.
check: build vet test race smoke obs-smoke loadgen-smoke cluster-smoke

# repro regenerates the paper's tables and figures into ./results.
repro:
	$(GO) run ./cmd/paperrepro -out results

# bench refreshes the committed native tree-build baseline: best-of-3
# ns per build for every algorithm at p in {1,4,8} on 10k bodies, SPACE
# builds on the disk-galaxy and hierarchical-clustering scenarios, plus
# the session serving modes (50 drift steps on one resident tree, UPDATE
# repair vs rebuild-per-step vs measured-cost adaptive repair, ns per
# step), and the router-fronted cluster cells (2-shard fan-out vs a
# single-shard control). Compare a fresh run against the committed file
# to spot regressions. The reqtrace gate re-asserts that a disabled
# request recorder adds <2% to a bare build before timing anything.
bench:
	$(GO) test ./internal/reqtrace -run TestDisabledReqtraceOverhead -count 1
	$(GO) run ./cmd/treebench -n 10000 -p 1,4,8 -reps 3 -steps 50 -adaptive -scenario-cells disk,hierarchical -cluster -benchout BENCH_treebuild.json

# benchcmp re-runs the committed baseline's sweep and fails if any cell's
# ns-per-build regressed more than 30%. Timings are machine-relative:
# regenerate the baseline on this machine (make bench) before trusting
# small deltas across hardware.
benchcmp:
	$(GO) run ./cmd/treebench -benchcmp BENCH_treebuild.json
