// Command treebench benchmarks the five native tree builders on this
// machine: wall-clock per build, lock counts, and tree statistics across
// algorithms and processor counts. Each (algorithm, procs) cell is a
// build-only spec executed through the shared internal/runner engine
// (serially, so wall-clock timings stay honest).
//
// Usage:
//
//	treebench [-alg all] [-n 65536] [-p 1,2,4,8] [-reps 5] [-leafcap 8]
//	          [-model plummer] [-timeout 0] [-check] [-trace out.json]
//	          [-steps 0] [-adaptive] [-scenario-cells disk,hierarchical]
//	          [-cluster]
//	          [-benchout BENCH_treebuild.json]
//	          [-benchcmp BENCH_treebuild.json] [-benchthreshold 0.30]
//	          [-http :9090] [-v info] [-json]
//
// -model accepts any workload scenario kind with a direct mass model:
// plummer, uniform, twoclusters, disk, hierarchical. With
// -scenario-cells the sweep appends one SPACE build cell per listed
// scenario per processor count — the skewed-distribution regression
// cells the -benchcmp gate watches alongside the algorithm grid.
//
// With -steps k the sweep also benchmarks the session serving mode: k
// drift timesteps against one resident tree, UPDATE repairing it step
// over step versus a fresh rebuild forced every step, reported as ns per
// step (step 0's unavoidable fresh build excluded). Adding -adaptive
// appends a session-adaptive cell: the same repair loop with
// measured-cost adaptive partitioning (internal/adapt) closing the
// feedback path each step.
//
// With -cluster the sweep appends router-fronted cells per processor
// count: the same SPACE build served through an in-process
// internal/cluster fixture (router + 2 shards, plus a single-shard
// control), reporting the merged tree_ns — the slowest shard's best
// build — so sharded serving reads directly against the single-process
// space row.
//
// With -benchcmp the sweep is taken from the named baseline file instead
// of the flags, fresh timings are diffed against it, and the exit status
// is non-zero if any cell regressed past -benchthreshold (make benchcmp).
// With -http the run can be watched and profiled live (make obs-smoke).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"partree/internal/adapt"
	"partree/internal/cluster"
	"partree/internal/core"
	"partree/internal/phys"
	"partree/internal/runner"
	"partree/internal/stats"
	"partree/internal/workload"
)

// benchFile is the machine-readable regression baseline -benchout emits
// (committed as BENCH_treebuild.json; `make bench` regenerates it).
type benchFile struct {
	Bodies  int `json:"bodies"`
	LeafCap int `json:"leafcap"`
	Reps    int `json:"reps"`
	// Steps is the session-mode step count (cells with a mode), 0 when
	// the baseline has no session cells.
	Steps   int         `json:"steps,omitempty"`
	Spatial bool        `json:"spatial"`
	Cells   []benchCell `json:"cells"`
}

type benchCell struct {
	// Exactly one of Alg and Mode is set: Alg names a one-shot builder
	// cell (ns per build), Mode a session cell (ns per step).
	Alg  string `json:"alg,omitempty"`
	Mode string `json:"mode,omitempty"`
	// Scenario, on an Alg cell, marks a workload-scenario cell: the same
	// build-only measurement but on that internal/workload scenario's
	// mass model instead of -model (e.g. disk, hierarchical).
	Scenario   string `json:"scenario,omitempty"`
	P          int    `json:"p"`
	NsPerBuild int64  `json:"ns_per_build"`
	Locks      int64  `json:"locks"`
}

// Session-mode cell names: the same Stepper surface and the same motion,
// differing in whether the resident tree is repaired or rebuilt and in
// whether the partition comes from modeled or measured costs.
const (
	modeUpdate  = "session-update"  // resident UPDATE repairs step over step
	modeRebuild = "session-rebuild" // fresh rebuild forced every step
	// modeAdaptive repairs like modeUpdate but closes the feedback loop:
	// each step's traced phase times correct the next step's costzones
	// cut through an adapt.Controller (the daemon's -adaptive path).
	modeAdaptive = "session-adaptive"
	// Cluster cells (-cluster) run the same SPACE build through an
	// in-process router-fronted fixture (internal/cluster): modeCluster
	// fans out over two shards, modeClusterSingle puts the whole domain
	// on one shard — the router-overhead control. NsPerBuild is the
	// merged tree_ns (the slowest shard's best build), so the pair reads
	// directly against the single-process space cell at the same p.
	modeCluster       = "cluster"
	modeClusterSingle = "cluster-single"
)

// sessionModes lists the session cells a sweep produces; the adaptive
// cell is opt-in so existing baselines stay comparable.
func sessionModes(adaptive bool) []string {
	modes := []string{modeUpdate, modeRebuild}
	if adaptive {
		modes = append(modes, modeAdaptive)
	}
	return modes
}

// traceName derives a per-cell trace filename from the -trace argument
// when the sweep has more than one cell (base.json -> base_ORIG_p4.json).
func traceName(base string, alg core.Algorithm, p int) string {
	ext := ".json"
	stem := base
	if i := strings.LastIndex(base, "."); i > 0 {
		stem, ext = base[:i], base[i:]
	}
	return fmt.Sprintf("%s_%s_p%d%s", stem, alg, p, ext)
}

// specContext returns the slog attrs that identify one sweep cell, so
// every failure names the exact configuration that produced it.
func specContext(sp runner.Spec) []any {
	return []any{"alg", sp.Alg.String(), "n", sp.Bodies, "p", sp.Procs, "seed", sp.Seed}
}

// runCells executes the sweep one cell at a time, settling the heap
// before each so a GC cycle provoked by an earlier cell's garbage (or by
// the engine's retained builder stores) never lands inside a later
// cell's measured phase — the same discipline testing.B applies between
// benchmarks.
func runCells(r *runner.Runner, specs []runner.Spec) []runner.Result {
	results := make([]runner.Result, len(specs))
	for i, sp := range specs {
		runtime.GC()
		results[i] = r.Run(context.Background(), sp)
	}
	return results
}

// runSessionCell benchmarks one session cell: steps drift timesteps
// against a resident tree through core.Stepper at p processors — exactly
// the surface partreed's /v1/session leases pin. Step 0's unavoidable
// fresh build is excluded; the remaining steps either let UPDATE repair
// the tree in place or (session-rebuild) force a fresh build each —
// session-adaptive repairs with the measured-cost feedback loop in the
// path — and the best mean ns per step over reps independent runs is
// reported with the lock total of the winning run's measured steps.
func runSessionCell(base runner.Spec, p, steps, reps int, mode string) (nsPerStep, locks int64) {
	sp := base.Normalized()
	model, _ := phys.ParseModel(sp.Model)
	rebuild := mode == modeRebuild
	best, bestLocks := int64(-1), int64(0)
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		// Fresh bodies each rep so every rep walks the same trajectory.
		bodies := phys.Generate(model, sp.Bodies, sp.Seed)
		cfg := core.Config{P: p, LeafCap: sp.LeafCap}
		var st *core.Stepper
		if mode == modeAdaptive {
			st = core.NewAdaptiveStepper(cfg, bodies, core.DefaultFallbackPolicy(),
				adapt.NewController(cfg, adapt.Options{}))
		} else {
			st = core.NewStepper(cfg, bodies, core.DefaultFallbackPolicy())
		}
		st.Step(core.StepInput{})
		var total, reqLocks int64
		for i := 1; i < steps; i++ {
			bodies.Drift(0, bodies.N(), sp.Dt)
			res := st.Step(core.StepInput{Rebuild: rebuild})
			total += res.Metrics.Timing.Total().Nanoseconds()
			reqLocks += res.Metrics.TotalLocks()
		}
		ns := total / int64(steps-1)
		if best < 0 || ns < best {
			best, bestLocks = ns, reqLocks
		}
	}
	return best, bestLocks
}

// clusterShards maps a cluster cell mode to its shard count.
func clusterShards(mode string) int {
	if mode == modeClusterSingle {
		return 1
	}
	return 2
}

// runClusterCell benchmarks one router-fronted build: an in-process
// fixture (router + shards on loopback), one /v1/build carrying the
// same build-only spec the grid uses, best-of-reps inside the request
// (the shard engines report their best build). The merged tree_ns is
// the cluster's critical path — its slowest shard's best build — and
// locks sum across shards under the conservation laws.
func runClusterCell(base runner.Spec, p, shards, reps int) (benchCell, error) {
	f, err := cluster.StartLocal(cluster.FixtureOptions{Shards: shards})
	if err != nil {
		return benchCell{}, fmt.Errorf("starting cluster fixture: %w", err)
	}
	defer f.Close()
	sp := base
	sp.Alg = core.SPACE
	sp.Procs = p
	sp.Steps = reps
	sp.Trace = ""
	buf, err := json.Marshal(sp)
	if err != nil {
		return benchCell{}, err
	}
	runtime.GC()
	resp, err := http.Post(f.RouterURL()+"/v1/build", "application/json", bytes.NewReader(buf))
	if err != nil {
		return benchCell{}, fmt.Errorf("cluster build: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return benchCell{}, fmt.Errorf("cluster build: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var out cluster.ClusterResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return benchCell{}, fmt.Errorf("decoding cluster result: %w", err)
	}
	if out.Failed() {
		return benchCell{}, fmt.Errorf("cluster build failed: %s%s", out.Err, out.CheckFailure)
	}
	mode := modeCluster
	if shards == 1 {
		mode = modeClusterSingle
	}
	return benchCell{Mode: mode, P: p, NsPerBuild: int64(out.TreeNs), Locks: out.LocksTotal}, nil
}

// runClusterCells produces the router-fronted cells: per processor
// count, the two-shard fan-out and the single-shard control.
func runClusterCells(base runner.Spec, ps []int, reps int) ([]benchCell, error) {
	var cells []benchCell
	for _, p := range ps {
		for _, mode := range []string{modeCluster, modeClusterSingle} {
			c, err := runClusterCell(base, p, clusterShards(mode), reps)
			if err != nil {
				return nil, fmt.Errorf("%s p=%d: %w", mode, p, err)
			}
			cells = append(cells, c)
		}
	}
	return cells, nil
}

// scenarioCellDef pairs a canonical workload scenario name with the
// phys model that regenerates it, for the -scenario-cells sweep.
type scenarioCellDef struct {
	name  string
	model string
}

// parseScenarioCells resolves a comma-separated -scenario-cells list.
// Cells must be plain scenario kinds (no options, no evolution): a
// build-only runner spec regenerates bodies from (model, n, seed), so
// only scenarios with a direct mass model are benchable here.
func parseScenarioCells(arg string) ([]scenarioCellDef, error) {
	if arg == "" {
		return nil, nil
	}
	var out []scenarioCellDef
	for _, f := range strings.Split(arg, ",") {
		sc, err := workload.ParseScenario(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		model, ok := sc.ServerModel()
		if !ok {
			return nil, fmt.Errorf("scenario %s carries options or evolution; scenario cells take plain kinds (%s)",
				sc.Name(), strings.Join(workload.ScenarioNames(), ", "))
		}
		out = append(out, scenarioCellDef{name: sc.Name(), model: model})
	}
	return out, nil
}

// scenarioCellSpecs lays out the extra SPACE build cells, one per
// scenario × processor count.
func scenarioCellSpecs(base runner.Spec, defs []scenarioCellDef, ps []int) []runner.Spec {
	var specs []runner.Spec
	for _, def := range defs {
		for _, p := range ps {
			spec := base
			spec.Alg = core.SPACE
			spec.Procs = p
			spec.Model = def.model
			spec.Trace = ""
			specs = append(specs, spec)
		}
	}
	return specs
}

// runSessionCells produces the session-mode baseline cells for every
// processor count, one cell per serving mode.
func runSessionCells(base runner.Spec, ps []int, steps, reps int, modes []string) []benchCell {
	var cells []benchCell
	for _, p := range ps {
		for _, mode := range modes {
			ns, locks := runSessionCell(base, p, steps, reps, mode)
			cells = append(cells, benchCell{Mode: mode, P: p, NsPerBuild: ns, Locks: locks})
		}
	}
	return cells
}

func main() {
	sf := runner.RegisterSpecFlags(flag.CommandLine, runner.Spec{
		Backend:   runner.Native,
		Bodies:    65536,
		Seed:      1,
		BuildOnly: true,
	}, "alg", "p", "steps", "theta", "dt")
	obsFlags := runner.RegisterObsFlags(flag.CommandLine)
	var (
		algFlag   = flag.String("alg", "", "restrict the sweep to one tree builder: "+strings.Join(core.AlgorithmNames(), ", ")+" (default all)")
		procs     = flag.String("p", "1,2,4,8", "comma-separated processor counts")
		reps      = flag.Int("reps", 5, "builds per configuration (best time reported)")
		spatial   = flag.Bool("spatial", true, "spatially coherent body partition (like settled costzones)")
		steps     = flag.Int("steps", 0, "session-mode benchmark: drift timesteps per resident session, update vs rebuild-per-step (0 = off, min 2)")
		adaptive  = flag.Bool("adaptive", false, "add a session-adaptive cell (measured-cost adaptive partitioning) to the session sweep")
		scenarios = flag.String("scenario-cells", "", "comma-separated workload scenarios benchmarked as extra SPACE build cells, e.g. disk,hierarchical (valid kinds: "+strings.Join(workload.ScenarioNames(), ", ")+"; each must resolve to a server-side mass model)")
		clusterF  = flag.Bool("cluster", false, "add router-fronted cluster cells: an in-process router + 2 shards fan-out and a single-shard control, per processor count")
		benchout  = flag.String("benchout", "", "write a machine-readable ns-per-build baseline to this JSON file")
		benchcmp  = flag.String("benchcmp", "", "diff a fresh run against this baseline JSON and fail past -benchthreshold")
		benchthr  = flag.Float64("benchthreshold", 0.30, "allowed fractional ns-per-build regression for -benchcmp (0.30 = 30%)")
	)
	flag.Parse()
	if _, err := obsFlags.SetupLogging("treebench"); err != nil {
		fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
		os.Exit(2)
	}

	base, err := sf.Spec()
	if err != nil {
		slog.Error("bad spec flags", "err", err)
		os.Exit(2)
	}
	base.BuildOnly = true
	base.Steps = *reps
	base.Spatial = *spatial
	if *steps == 1 || *steps < 0 {
		slog.Error("bad -steps: a session needs at least 2 steps", "steps", *steps)
		os.Exit(2)
	}

	// One worker: concurrent wall-clock benchmarks would contend for the
	// same cores and corrupt each other's timings.
	r := runner.New(1)
	srv, err := obsFlags.Serve("treebench", r)
	if err != nil {
		slog.Error("starting obs server", "err", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}

	if *benchcmp != "" {
		os.Exit(runBenchcmp(r, base, *benchcmp, *benchthr))
	}

	algs := core.Algorithms()
	if *algFlag != "" {
		a, err := core.ParseAlgorithm(*algFlag)
		if err != nil {
			slog.Error("bad -alg", "err", err)
			os.Exit(2)
		}
		algs = []core.Algorithm{a}
	}

	var ps []int
	for _, f := range strings.Split(*procs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			slog.Error("bad processor count", "value", f)
			os.Exit(2)
		}
		ps = append(ps, v)
	}

	scDefs, err := parseScenarioCells(*scenarios)
	if err != nil {
		slog.Error("bad -scenario-cells", "err", err)
		os.Exit(2)
	}

	var specs []runner.Spec
	for _, alg := range algs {
		for _, p := range ps {
			spec := base
			spec.Alg = alg
			spec.Procs = p
			if spec.Trace != "" && (len(algs) > 1 || len(ps) > 1) {
				// One file per sweep cell, so cells don't overwrite each
				// other's traces.
				spec.Trace = traceName(base.Trace, alg, p)
			}
			specs = append(specs, spec)
		}
	}

	results := runCells(r, specs)
	scenarioResults := runCells(r, scenarioCellSpecs(base, scDefs, ps))

	modes := sessionModes(*adaptive)
	var sessionCells []benchCell
	if *steps > 0 {
		sessionCells = runSessionCells(base, ps, *steps, *reps, modes)
	}

	var clusterCells []benchCell
	if *clusterF {
		if clusterCells, err = runClusterCells(base, ps, *reps); err != nil {
			slog.Error("cluster cells failed", "err", err)
			os.Exit(1)
		}
	}

	if *benchout != "" {
		bf := benchFile{Bodies: base.Bodies, LeafCap: base.LeafCap, Reps: base.Steps, Steps: *steps, Spatial: base.Spatial}
		for _, res := range results {
			if res.Failed() {
				slog.Error("spec failed", append(specContext(res.Spec), "err", res.FailureMessage())...)
				os.Exit(1)
			}
			bf.Cells = append(bf.Cells, benchCell{
				Alg: res.Spec.Alg.String(), P: res.Spec.Procs,
				NsPerBuild: int64(res.TreeNs), Locks: res.LocksTotal,
			})
		}
		si := 0
		for _, def := range scDefs {
			for range ps {
				res := scenarioResults[si]
				si++
				if res.Failed() {
					slog.Error("scenario cell failed", append(specContext(res.Spec), "scenario", def.name, "err", res.FailureMessage())...)
					os.Exit(1)
				}
				bf.Cells = append(bf.Cells, benchCell{
					Alg: res.Spec.Alg.String(), Scenario: def.name, P: res.Spec.Procs,
					NsPerBuild: int64(res.TreeNs), Locks: res.LocksTotal,
				})
			}
		}
		bf.Cells = append(bf.Cells, sessionCells...)
		bf.Cells = append(bf.Cells, clusterCells...)
		buf, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			slog.Error("encoding baseline", "err", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchout, append(buf, '\n'), 0o644); err != nil {
			slog.Error("writing baseline", "path", *benchout, "err", err)
			os.Exit(1)
		}
		slog.Info("wrote baseline", "path", *benchout)
	}

	if sf.JSON() {
		if err := runner.WriteJSON(os.Stdout, results...); err != nil {
			slog.Error("writing JSON results", "err", err)
			os.Exit(1)
		}
		for _, res := range results {
			if res.Failed() {
				os.Exit(1)
			}
		}
		return
	}

	fmt.Printf("treebench: %d bodies (%s), k=%d, best of %d builds\n\n",
		base.Bodies, base.Model, base.LeafCap, base.Steps)

	header := []string{"algorithm"}
	for _, p := range ps {
		header = append(header, fmt.Sprintf("%dp", p))
	}
	header = append(header, "locks(8p)", "tree")
	t := stats.NewTable(header...)

	i := 0
	for _, alg := range algs {
		row := []any{alg.String()}
		var locks int64
		var treeDesc string
		for pi, p := range ps {
			res := results[i]
			i++
			if res.Failed() {
				slog.Error("spec failed", append(specContext(res.Spec), "err", res.FailureMessage())...)
				row = append(row, "-")
				continue
			}
			if p == 8 || (pi == len(ps)-1 && locks == 0) {
				locks = res.LocksTotal
				treeDesc = fmt.Sprintf("%dc/%dl d%d", res.Cells, res.Leaves, res.MaxDepth)
			}
			row = append(row, time.Duration(res.TreeNs).Round(10*time.Microsecond).String())
		}
		row = append(row, locks, treeDesc)
		t.Row(row...)
	}
	t.Write(os.Stdout)

	if len(scDefs) > 0 {
		fmt.Printf("\nscenario cells: SPACE build on workload scenarios\n\n")
		sh := []string{"scenario"}
		for _, p := range ps {
			sh = append(sh, fmt.Sprintf("%dp", p))
		}
		ts := stats.NewTable(sh...)
		si := 0
		for _, def := range scDefs {
			row := []any{def.name}
			for range ps {
				res := scenarioResults[si]
				si++
				if res.Failed() {
					slog.Error("scenario cell failed", append(specContext(res.Spec), "scenario", def.name, "err", res.FailureMessage())...)
					row = append(row, "-")
					continue
				}
				row = append(row, time.Duration(res.TreeNs).Round(10*time.Microsecond).String())
			}
			ts.Row(row...)
		}
		ts.Write(os.Stdout)
	}

	if len(sessionCells) > 0 {
		fmt.Printf("\nsession mode: %d drift steps on one resident tree, ns/step (step 0 excluded)\n\n", *steps)
		sh := []string{"mode"}
		for _, p := range ps {
			sh = append(sh, fmt.Sprintf("%dp", p))
		}
		sh = append(sh, "locks")
		ts := stats.NewTable(sh...)
		for mi, mode := range modes {
			row := []any{mode}
			var locks int64
			for pi := range ps {
				c := sessionCells[pi*len(modes)+mi]
				row = append(row, time.Duration(c.NsPerBuild).Round(time.Microsecond).String())
				locks = c.Locks
			}
			ts.Row(append(row, locks)...)
		}
		ts.Write(os.Stdout)
	}

	if len(clusterCells) > 0 {
		fmt.Printf("\ncluster mode: router-fronted SPACE build, merged tree_ns (slowest shard's best)\n\n")
		sh := []string{"mode"}
		for _, p := range ps {
			sh = append(sh, fmt.Sprintf("%dp", p))
		}
		sh = append(sh, "locks")
		ts := stats.NewTable(sh...)
		cmodes := []string{modeCluster, modeClusterSingle}
		for mi, mode := range cmodes {
			row := []any{mode}
			var locks int64
			for pi := range ps {
				c := clusterCells[pi*len(cmodes)+mi]
				row = append(row, time.Duration(c.NsPerBuild).Round(10*time.Microsecond).String())
				locks = c.Locks
			}
			ts.Row(append(row, locks)...)
		}
		ts.Write(os.Stdout)
	}
}

// runBenchcmp re-runs the sweep recorded in the baseline file and diffs
// fresh ns-per-build against it. Returns the process exit code: 0 when
// every cell is within threshold, 1 past it, 2 on a bad baseline.
// Timings are machine-relative — regenerate the baseline on this machine
// (make bench) before trusting small deltas.
func runBenchcmp(r *runner.Runner, base runner.Spec, path string, threshold float64) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		slog.Error("reading baseline", "path", path, "err", err)
		return 2
	}
	var bf benchFile
	if err := json.Unmarshal(buf, &bf); err != nil {
		slog.Error("parsing baseline", "path", path, "err", err)
		return 2
	}
	if len(bf.Cells) == 0 {
		slog.Error("baseline has no cells", "path", path)
		return 2
	}

	// Session cells (a mode instead of an algorithm) re-run through the
	// Stepper, not the runner; specIdx maps each baseline cell to its
	// runner result, -1 for session cells.
	specIdx := make([]int, len(bf.Cells))
	var specs []runner.Spec
	for i, c := range bf.Cells {
		if c.Mode != "" {
			switch c.Mode {
			case modeUpdate, modeRebuild, modeAdaptive:
				if bf.Steps < 2 {
					slog.Error("baseline has session cells but no steps count", "path", path)
					return 2
				}
			case modeCluster, modeClusterSingle:
				// Re-run through the in-process fixture, not the runner.
			default:
				slog.Error("baseline names unknown mode", "path", path, "mode", c.Mode)
				return 2
			}
			specIdx[i] = -1
			continue
		}
		alg, err := core.ParseAlgorithm(c.Alg)
		if err != nil {
			slog.Error("baseline names unknown algorithm", "path", path, "err", err)
			return 2
		}
		sp := base
		sp.Alg = alg
		sp.Procs = c.P
		sp.Bodies = bf.Bodies
		sp.LeafCap = bf.LeafCap
		sp.Steps = bf.Reps
		sp.Spatial = bf.Spatial
		sp.Trace = ""
		if c.Scenario != "" {
			sc, err := workload.ParseScenario(c.Scenario)
			if err != nil {
				slog.Error("baseline names unknown scenario", "path", path, "err", err)
				return 2
			}
			model, ok := sc.ServerModel()
			if !ok {
				slog.Error("baseline scenario cell has no direct mass model", "path", path, "scenario", c.Scenario)
				return 2
			}
			sp.Model = model
		}
		specIdx[i] = len(specs)
		specs = append(specs, sp)
	}
	results := runCells(r, specs)

	sessBase := base
	sessBase.Bodies = bf.Bodies
	sessBase.LeafCap = bf.LeafCap

	fmt.Printf("treebench: benchcmp vs %s (%d bodies, k=%d, best of %d, threshold +%.0f%%)\n\n",
		path, bf.Bodies, bf.LeafCap, bf.Reps, 100*threshold)
	t := stats.NewTable("cell", "p", "baseline", "fresh", "delta")
	exit := 0
	for i, c := range bf.Cells {
		name := c.Alg
		if c.Scenario != "" {
			name = c.Scenario
		}
		var fresh int64
		if j := specIdx[i]; j >= 0 {
			res := results[j]
			if res.Failed() {
				slog.Error("spec failed", append(specContext(res.Spec), "err", res.FailureMessage())...)
				exit = 1
				t.Row(name, c.P, time.Duration(c.NsPerBuild).String(), "-", "FAILED")
				continue
			}
			fresh = int64(res.TreeNs)
		} else if c.Mode == modeCluster || c.Mode == modeClusterSingle {
			name = c.Mode
			cc, err := runClusterCell(sessBase, c.P, clusterShards(c.Mode), bf.Reps)
			if err != nil {
				slog.Error("cluster cell failed", "mode", c.Mode, "p", c.P, "err", err)
				exit = 1
				t.Row(name, c.P, time.Duration(c.NsPerBuild).String(), "-", "FAILED")
				continue
			}
			fresh = cc.NsPerBuild
		} else {
			name = c.Mode
			fresh, _ = runSessionCell(sessBase, c.P, bf.Steps, bf.Reps, c.Mode)
		}
		delta := float64(fresh-c.NsPerBuild) / float64(c.NsPerBuild)
		mark := ""
		if delta > threshold {
			mark = "  REGRESSED"
			exit = 1
			slog.Error("benchmark regression",
				"cell", name, "p", c.P, "n", bf.Bodies,
				"baseline", time.Duration(c.NsPerBuild).String(),
				"fresh", time.Duration(fresh).String(),
				"delta", fmt.Sprintf("%+.1f%%", 100*delta))
		}
		t.Row(name, c.P,
			time.Duration(c.NsPerBuild).Round(10*time.Microsecond).String(),
			time.Duration(fresh).Round(10*time.Microsecond).String(),
			fmt.Sprintf("%+.1f%%%s", 100*delta, mark))
	}
	t.Write(os.Stdout)
	if exit != 0 {
		slog.Error("benchcmp failed", "threshold", fmt.Sprintf("+%.0f%%", 100*threshold))
	}
	return exit
}
