package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder builds a small deterministic trace through the
// explicit-timestamp API: two processors, a partition/insert/barrier
// skeleton, a nested subdivide, and a few lock events with distinct
// wait/hold splits (including a sub-microsecond one, to pin the fixed
// three-digit microsecond formatting).
func goldenRecorder() *Recorder {
	r := NewWithCapacity(2, 16)
	r.SetEnabled(true)
	p0, p1 := r.Proc(0), r.Proc(1)

	p0.SpanAt(PhasePartition, 0, 1500)
	p0.SpanAt(PhaseSubdivide, 2500, 4000)
	p0.SpanAt(PhaseInsert, 1500, 901500)
	p0.LockAt(2000, 2050, 2300)
	p0.LockAt(5000, 5000, 5125)
	p0.SpanAt(PhaseBarrier, 901500, 902000)

	p1.SpanAt(PhasePartition, 0, 1400)
	p1.SpanAt(PhaseInsert, 1400, 800000)
	p1.LockAt(3000, 3600, 3660)
	p1.SpanAt(PhaseBarrier, 800000, 902000)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output diverged from golden file %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestChromeTraceGolden pins the Chrome trace_event exporter
// byte-for-byte: field order, metadata events, microsecond formatting,
// and the wait/hold args. Regenerate with:
// go test ./internal/trace -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome.golden", buf.Bytes())
}

// TestCSVGolden pins the per-processor summary breakdown: column order
// and every aggregate the emit path maintains (phase times, lock
// totals, histogram percentiles).
func TestCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summary_csv.golden", buf.Bytes())
}

// TestChromeTraceNil pins the degenerate exporter outputs, which keep
// -trace safe on an untraced code path.
func TestChromeTraceNil(t *testing.T) {
	var buf bytes.Buffer
	if err := (*Recorder)(nil).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("nil recorder trace = %q, want %q", got, "[]\n")
	}
}

// TestWriteFileDispatch pins extension-based format selection.
func TestWriteFileDispatch(t *testing.T) {
	r := goldenRecorder()
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "out.json")
	if err := r.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	j, _ := os.ReadFile(jsonPath)
	if !bytes.HasPrefix(j, []byte("[")) || !bytes.Contains(j, []byte(`"cat":"build"`)) {
		t.Errorf("%s does not look like a Chrome trace: %.80s", jsonPath, j)
	}

	csvPath := filepath.Join(dir, "out.csv")
	if err := r.WriteFile(csvPath); err != nil {
		t.Fatal(err)
	}
	c, _ := os.ReadFile(csvPath)
	if !bytes.HasPrefix(c, []byte("proc,partition_ns")) {
		t.Errorf("%s does not look like a summary CSV: %.80s", csvPath, c)
	}
}
