package simalg

import (
	"fmt"

	"partree/internal/core"
	"partree/internal/force"
	"partree/internal/memsim"
	"partree/internal/trace"
)

// Config parameterizes one simulated whole-application run.
type Config struct {
	Platform memsim.Platform
	P        int
	LeafCap  int
	// SpaceThreshold tunes SPACE (0 = default max(LeafCap, N/(16·P))).
	SpaceThreshold int

	Theta float64
	Eps   float64
	Dt    float64

	// WarmSteps run at full detail but unmeasured (the paper begins
	// timing after two steps "to eliminate unrepresentative cold-start
	// and let the partitioning scheme settle down").
	WarmSteps int
	// MeasuredSteps are timed.
	MeasuredSteps int

	// Sequential builds the tree without any locking (the "best
	// sequential version" used as the speedup baseline). Requires P=1.
	Sequential bool

	// Trace, when non-nil and enabled, records per-processor build-phase
	// spans and lock events in *virtual* nanoseconds over the measured
	// steps (warm steps are never recorded). The recorder's per-processor
	// lock-event totals equal Outcome.LocksPerProc by construction.
	Trace *trace.Recorder

	// Work costs in processor cycles (defaults mirror a classic RISC of
	// the era; scaled by the platform's cycle time).
	InteractionCycles float64 // one body-body or body-cell evaluation
	DescendCycles     float64 // one level of tree descent
	AllocCycles       float64 // allocating/initializing a node
	UpdateCycles      float64 // integrating one body
	BoundsCycles      float64 // per body, computing the root bounds
	PartitionCycles   float64 // per body, costzones (on proc 0)
	CountCycles       float64 // per body per SPACE counting round
	MomentCycles      float64 // per node, center-of-mass pass
}

func (c Config) withDefaults(n int) Config {
	if c.P <= 0 {
		c.P = 1
	}
	if c.LeafCap <= 0 {
		c.LeafCap = 8
	}
	if c.Theta == 0 {
		c.Theta = 1.0
	}
	if c.Eps == 0 {
		c.Eps = 0.05
	}
	if c.Dt == 0 {
		c.Dt = 0.025
	}
	if c.WarmSteps == 0 {
		c.WarmSteps = 1
	}
	if c.MeasuredSteps == 0 {
		c.MeasuredSteps = 2
	}
	if c.InteractionCycles == 0 {
		c.InteractionCycles = 52
	}
	if c.DescendCycles == 0 {
		c.DescendCycles = 14
	}
	if c.AllocCycles == 0 {
		c.AllocCycles = 40
	}
	if c.UpdateCycles == 0 {
		c.UpdateCycles = 30
	}
	if c.BoundsCycles == 0 {
		c.BoundsCycles = 6
	}
	if c.PartitionCycles == 0 {
		c.PartitionCycles = 12
	}
	if c.CountCycles == 0 {
		c.CountCycles = 8
	}
	if c.MomentCycles == 0 {
		c.MomentCycles = 24
	}
	if c.Sequential && c.P != 1 {
		panic("simalg: Sequential requires P == 1")
	}
	return c
}

func (c Config) forceParams() force.Params {
	return force.Params{Theta: c.Theta, Eps: c.Eps, G: 1}
}

// Outcome is the simulated result of the measured steps.
type Outcome struct {
	Alg      core.Algorithm
	Platform string
	P        int
	N        int
	Steps    int

	// Per-phase simulated time, summed over measured steps (ns).
	TreeNs   float64
	PartNs   float64
	ForceNs  float64
	UpdateNs float64

	// LocksPerProc counts tree-build lock acquisitions per processor
	// over the measured steps (the paper's Figure 15).
	LocksPerProc []int64
	// BarrierNsPerProc is each processor's total barrier time over the
	// measured steps (the paper's Table 2).
	BarrierNsPerProc []float64

	Interactions int64
	Protocol     memsim.ProtocolStats
}

// TotalNs is the whole-application simulated time for the measured steps.
func (o Outcome) TotalNs() float64 { return o.TreeNs + o.PartNs + o.ForceNs + o.UpdateNs }

// TreeShare is the fraction of total time spent building the tree.
func (o Outcome) TreeShare() float64 {
	t := o.TotalNs()
	if t == 0 {
		return 0
	}
	return o.TreeNs / t
}

// TotalLocks sums lock acquisitions across processors.
func (o Outcome) TotalLocks() int64 {
	var t int64
	for _, l := range o.LocksPerProc {
		t += l
	}
	return t
}

// MeanBarrierNs is the mean per-processor barrier time.
func (o Outcome) MeanBarrierNs() float64 {
	if len(o.BarrierNsPerProc) == 0 {
		return 0
	}
	var t float64
	for _, b := range o.BarrierNsPerProc {
		t += b
	}
	return t / float64(len(o.BarrierNsPerProc))
}

// String summarizes the outcome.
func (o Outcome) String() string {
	return fmt.Sprintf("%s on %s p=%d n=%d: total=%.2fms tree=%.1f%% locks=%d",
		o.Alg, o.Platform, o.P, o.N, o.TotalNs()/1e6, 100*o.TreeShare(), o.TotalLocks())
}
