package memsim

// busProtocol is the SGI Challenge model: MESI-style write-invalidate
// snooping on a single shared bus with centralized memory. Every
// processor sees the same miss latency; the bus is the contended resource.
// Caches are modeled as infinite with invalidation-based coherence: an
// access hits if the processor's copy is still valid, and the first access
// (or the first after an invalidation) misses.
type busProtocol struct {
	pl      Platform
	p       int
	lines   map[uint64]lineState
	bus     resource
	st      ProtocolStats
	touched map[uint64]struct{} // lines ever cached by anyone (cold-miss accounting)
}

// lineState is the directory-ish view of one cache line: which processors
// hold it and which (if any) holds it dirty.
type lineState struct {
	sharers uint64
	owner   int32 // dirty owner, -1 if clean
}

func newBusProtocol(pl Platform, p int) *busProtocol {
	if p > 64 {
		panic("memsim: more than 64 processors not supported")
	}
	return &busProtocol{pl: pl, p: p, lines: make(map[uint64]lineState), touched: make(map[uint64]struct{})}
}

func (b *busProtocol) lineOf(addr uint64) uint64 { return addr / uint64(b.pl.LineSize) }

func (b *busProtocol) Access(proc int, addr uint64, write bool, now float64) float64 {
	b.st.Accesses++
	ln := b.lineOf(addr)
	s, ok := b.lines[ln]
	if !ok {
		s.owner = -1
	}
	bit := uint64(1) << uint(proc)

	if write {
		if s.owner == int32(proc) {
			b.st.Hits++
			return b.pl.HitNs
		}
	} else if s.sharers&bit != 0 {
		b.st.Hits++
		return b.pl.HitNs
	}

	// Miss: classify, pay the bus, update state.
	if _, cold := b.touched[ln]; !cold {
		b.st.ColdMisses++
		b.touched[ln] = struct{}{}
	} else {
		b.st.CoherenceMiss++
	}
	lat := b.pl.LocalMissNs
	if s.owner >= 0 && s.owner != int32(proc) {
		// Dirty elsewhere: snoop supplies the data (same bus cost class
		// on the Challenge).
		lat = b.pl.DirtyMissNs
		b.st.DirtyMisses++
	} else {
		b.st.LocalMisses++
	}
	wait := b.bus.serve(now, b.pl.OccupancyNs)
	b.st.ContentionNs += wait
	lat += wait

	if write {
		n := popcount(s.sharers &^ bit)
		if n > 0 {
			b.st.Invalidations += int64(n)
			lat += float64(n) * b.pl.InvalNs
		}
		s.sharers = bit
		s.owner = int32(proc)
	} else {
		// Any dirty copy downgrades to shared.
		s.sharers |= bit
		s.owner = -1
	}
	b.lines[ln] = s
	return lat
}

func (b *busProtocol) AcquireLock(proc, lockID int, now float64) float64 {
	wait := b.bus.serve(now, b.pl.OccupancyNs)
	b.st.ContentionNs += wait
	return wait + b.pl.LockNs
}

func (b *busProtocol) ReleaseLock(proc, lockID int, now float64) float64 {
	return b.pl.HitNs
}

func (b *busProtocol) BarrierWork(arrivals []float64, procs []int) (float64, []float64) {
	release := maxFloat(arrivals) + b.pl.BarrierBase + b.pl.BarrierPerP*float64(len(procs))
	return release, make([]float64, len(procs))
}

func (b *busProtocol) SetHome(lo, hi uint64, node int) {} // centralized memory

func (b *busProtocol) Stats() ProtocolStats { return b.st }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func maxFloat(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}
