// Package nbody is the whole-application driver: it strings the three
// phases of a Barnes-Hut time step — tree build, force calculation,
// update — together around a pluggable tree-building algorithm, with
// per-phase timing. It is the native-execution counterpart of the paper's
// "entire application" measurements; the platform simulator replays the
// same structure under modelled memory systems.
package nbody

import (
	"fmt"
	"time"

	"partree/internal/core"
	"partree/internal/fmm"
	"partree/internal/force"
	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/phys"
	"partree/internal/trace"
	"partree/internal/verify"
)

// Options configure a simulation.
type Options struct {
	Model phys.Model
	N     int
	Seed  int64

	P       int // processors (goroutines)
	LeafCap int // bodies per leaf (k)
	Alg     core.Algorithm
	// SpaceThreshold tunes SPACE's partitioning (0 = default).
	SpaceThreshold int

	Force force.Params
	Dt    float64 // time step

	// FMM switches the force phase from the per-body Barnes-Hut
	// traversal to the cell-cell fast summation solver (internal/fmm),
	// which consumes the same trees from the same builders.
	FMM bool

	// Verify makes every Step check the freshly built tree's invariants
	// (and canonicality for the rebuilding algorithms) before using it,
	// panicking on violation. For tests and debugging.
	Verify bool

	// Check runs the full differential verification (internal/verify) on
	// every freshly built tree — structural invariants, node-for-node
	// equality with the serial reference for rebuilding steps, and the
	// metrics conservation laws — reporting the first violation in
	// StepStats.CheckErr instead of panicking. Check time is excluded
	// from every measured phase.
	Check bool

	// Trace, when non-nil, records per-processor phase spans and lock
	// events during each tree build. The builder resets it at the start
	// of every build, so after a step the recorder (and the summary on
	// StepStats.Build.Trace) covers that step's build only.
	Trace *trace.Recorder

	// Builder, when non-nil, is used instead of constructing a fresh one
	// — how engine sessions lend their pooled builder (and its warmed
	// store) to a simulation. It must match Alg/P/LeafCap, and the caller
	// keeps ownership: the simulation never frees it. Incompatible with
	// Trace (a builder's recorder is fixed at construction).
	Builder core.Builder
}

// DefaultOptions mirror the SPLASH-2 BARNES defaults at a small size.
func DefaultOptions() Options {
	return Options{
		Model:   phys.ModelPlummer,
		N:       16384,
		Seed:    1,
		P:       1,
		LeafCap: 8,
		Alg:     core.LOCAL,
		Force:   force.DefaultParams(),
		Dt:      0.025,
	}
}

// StepStats is one step's timing and counters.
type StepStats struct {
	Step      int
	TreeBuild time.Duration
	Partition time.Duration
	Force     time.Duration
	Update    time.Duration
	Build     *core.Metrics
	Phase     force.PhaseStats
	TreeStats octree.Stats

	// CheckErr is the first verification violation found when the
	// simulation runs with Options.Check (nil otherwise).
	CheckErr error
}

// Total is the step's wall-clock total.
func (s StepStats) Total() time.Duration {
	return s.TreeBuild + s.Partition + s.Force + s.Update
}

// TreeShare is the fraction of the step spent building the tree — the
// paper's "percentage of time spent in tree building".
func (s StepStats) TreeShare() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.TreeBuild) / float64(t)
}

// String renders the step in one line.
func (s StepStats) String() string {
	return fmt.Sprintf("step %d: tree=%v part=%v force=%v update=%v (tree %.1f%%) inter=%d",
		s.Step, s.TreeBuild, s.Partition, s.Force, s.Update, 100*s.TreeShare(), s.Phase.Interactions)
}

// Simulation is a running N-body system.
type Simulation struct {
	Opts    Options
	Bodies  *phys.Bodies
	Builder core.Builder
	Tree    *octree.Tree

	assign [][]int32
	step   int
}

// New generates the bodies and prepares the builder.
func New(opts Options) *Simulation {
	if opts.P <= 0 {
		opts.P = 1
	}
	if opts.LeafCap <= 0 {
		opts.LeafCap = 8
	}
	if opts.Dt == 0 {
		opts.Dt = 0.025
	}
	if opts.Force.Theta == 0 {
		opts.Force = force.DefaultParams()
	}
	b := phys.Generate(opts.Model, opts.N, opts.Seed)
	return NewFromBodies(opts, b)
}

// NewFromBodies wraps an existing body set (the caller keeps ownership).
func NewFromBodies(opts Options, b *phys.Bodies) *Simulation {
	bld := opts.Builder
	if bld == nil {
		bld = core.New(opts.Alg, core.Config{
			P:              opts.P,
			LeafCap:        opts.LeafCap,
			SpaceThreshold: opts.SpaceThreshold,
			Trace:          opts.Trace,
		})
	}
	return &Simulation{
		Opts:    opts,
		Bodies:  b,
		Builder: bld,
		assign:  core.EvenAssign(b.N(), opts.P),
	}
}

// Step advances the system one time step and reports per-phase stats.
// Phase order follows the paper: (1) build the tree from the previous
// step's partition, (2) repartition with costzones and compute forces,
// (3) update positions and velocities.
func (s *Simulation) Step() StepStats {
	st := StepStats{Step: s.step}
	in := &core.Input{Bodies: s.Bodies, Assign: s.assign, Step: s.step}

	t0 := time.Now()
	tree, m := s.Builder.Build(in)
	t1 := time.Now()
	s.Tree = tree
	st.Build = m
	st.TreeBuild = t1.Sub(t0)

	d := octree.BodyData{Pos: s.Bodies.Pos, Mass: s.Bodies.Mass, Cost: s.Bodies.Cost}
	if s.Opts.Verify {
		canonical := s.Opts.Alg != core.UPDATE
		if err := octree.Check(tree, d, octree.CheckOptions{Canonical: canonical, Moments: true, Tol: 1e-9}); err != nil {
			panic(fmt.Sprintf("nbody: step %d tree verification failed: %v", s.step, err))
		}
	}
	if s.Opts.Check {
		st.CheckErr = verify.Build(s.Opts.Alg, tree, m, s.Bodies, s.step)
		// The serial reference build is not part of the step; restart the
		// clock so it is not charged to the partition phase.
		t1 = time.Now()
	}
	assign := partition.Costzones(tree, d, s.Opts.P)
	t2 := time.Now()

	if s.Opts.FMM {
		fs := fmm.ComputeAll(tree, s.Bodies, fmm.Params{
			Theta: s.Opts.Force.Theta, Eps: s.Opts.Force.Eps,
			G: s.Opts.Force.G, Quadrupole: true,
		}, s.Opts.P)
		st.Phase = force.PhaseStats{Interactions: fs.CellCell + fs.P2P}
	} else {
		st.Phase = force.ComputeAll(tree, s.Bodies, assign, s.Opts.Force)
	}
	t3 := time.Now()

	// Update phase: symplectic-Euler integration, each processor
	// updating the bodies it computed forces for.
	dt := s.Opts.Dt
	done := make(chan struct{}, s.Opts.P)
	for w := 0; w < s.Opts.P; w++ {
		go func(w int) {
			for _, b := range assign[w] {
				i := int(b)
				s.Bodies.Vel[i] = s.Bodies.Vel[i].MulAdd(dt, s.Bodies.Acc[i])
				s.Bodies.Pos[i] = s.Bodies.Pos[i].MulAdd(dt, s.Bodies.Vel[i])
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < s.Opts.P; w++ {
		<-done
	}
	t4 := time.Now()

	s.assign = assign
	s.step++

	st.Partition = t2.Sub(t1)
	st.Force = t3.Sub(t2)
	st.Update = t4.Sub(t3)
	st.TreeStats = octree.CollectStats(tree)
	return st
}

// Run advances the simulation n steps and returns per-step stats.
func (s *Simulation) Run(n int) []StepStats {
	out := make([]StepStats, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Step())
	}
	return out
}

// Energy returns kinetic, exact potential, and total energy (O(N²);
// diagnostics only).
func (s *Simulation) Energy() (ke, pe, total float64) {
	ke = s.Bodies.KineticEnergy()
	pe = s.Bodies.PotentialEnergy(s.Opts.Force.Eps)
	return ke, pe, ke + pe
}
