// JSON exposition for the flight recorder: /debug/requests (the ring,
// newest first), /debug/requests/slow (top-K by duration), and
// /debug/requests/<id> (one request's full timeline). Rendering is a
// pure function of the recorded requests — struct fields in fixed
// order, spans in stamp order with offsets relative to the request
// start, MarshalIndent — so identical recordings render identical
// bytes (pinned by the golden test).
package reqtrace

import (
	"encoding/json"
	"net/http"
	"strings"

	"partree/internal/trace"
)

// reqJSON is the rendered form of one completed request.
type reqJSON struct {
	ID     string `json:"id"`
	Route  string `json:"route"`
	Seq    uint64 `json:"seq"`
	Status int    `json:"status"`
	Bytes  int64  `json:"bytes"`
	// StartUnixNs anchors the timeline in wall-clock time; span offsets
	// are relative to it.
	StartUnixNs int64 `json:"start_unix_ns"`
	DurNs       int64 `json:"dur_ns"`
	// QueueNs/BuildWallNs sum the "queue" and "build" spans (exact even
	// when the span list saturated).
	QueueNs     int64  `json:"queue_ns"`
	BuildWallNs int64  `json:"build_wall_ns"`
	Phases      Phases `json:"phases"`
	Spans       []Span `json:"spans,omitempty"`
	// DroppedSpans counts spans lost to the per-request cap.
	DroppedSpans int64 `json:"dropped_spans,omitempty"`
	// TracePhaseNs sums the bridged per-processor summary's time in
	// each build sub-phase across processors (present only when a
	// traced — e.g. adaptive — build ran under this request).
	TracePhaseNs map[string]int64 `json:"trace_phase_ns,omitempty"`
	// Trace is the bridged internal/trace summary, verbatim.
	Trace *trace.Summary `json:"trace,omitempty"`
}

func renderReq(r *Req) reqJSON {
	r.mu.Lock()
	out := reqJSON{
		ID:           r.id,
		Route:        r.route,
		Seq:          r.seq,
		Status:       r.status,
		Bytes:        r.bytes,
		StartUnixNs:  r.start.UnixNano(),
		DurNs:        r.durNs,
		QueueNs:      r.queueNs,
		BuildWallNs:  r.buildNs,
		Phases:       r.phases,
		DroppedSpans: r.dropped,
		Trace:        r.bridged,
	}
	out.Spans = make([]Span, len(r.spans))
	copy(out.Spans, r.spans)
	r.mu.Unlock()
	if out.Trace != nil {
		totals := out.Trace.PhaseTotals()
		out.TracePhaseNs = make(map[string]int64, len(totals))
		for i, ns := range totals {
			out.TracePhaseNs[trace.Phase(i).String()] = ns
		}
	}
	return out
}

// ringDoc is the /debug/requests (and /slow) response envelope.
type ringDoc struct {
	Capacity int `json:"capacity"`
	Count    int `json:"count"`
	// SlowThresholdMs/SlowTotal render only on /debug/requests/slow.
	SlowThresholdMs float64   `json:"slow_threshold_ms,omitempty"`
	SlowTotal       int64     `json:"slow_total,omitempty"`
	Requests        []reqJSON `json:"requests"`
}

func renderList(reqs []*Req) []reqJSON {
	out := make([]reqJSON, len(reqs))
	for i, r := range reqs {
		out[i] = renderReq(r)
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(out, '\n'))
}

// Mount registers the /debug/requests handlers on mux. Safe to skip
// entirely when the recorder is disabled (nil).
func (rec *Recorder) Mount(mux *http.ServeMux) {
	if rec == nil {
		return
	}
	mux.HandleFunc("/debug/requests", rec.handleRequests)
	mux.HandleFunc("/debug/requests/slow", rec.handleSlow)
	mux.HandleFunc("/debug/requests/", rec.handleByID)
}

func (rec *Recorder) handleRequests(w http.ResponseWriter, _ *http.Request) {
	reqs := rec.Snapshot()
	writeJSON(w, http.StatusOK, ringDoc{
		Capacity: rec.opts.Cap,
		Count:    len(reqs),
		Requests: renderList(reqs),
	})
}

func (rec *Recorder) handleSlow(w http.ResponseWriter, _ *http.Request) {
	reqs := rec.Slow()
	writeJSON(w, http.StatusOK, ringDoc{
		Capacity:        rec.opts.SlowK,
		Count:           len(reqs),
		SlowThresholdMs: float64(rec.opts.SlowThreshold.Nanoseconds()) / 1e6,
		SlowTotal:       rec.SlowTotal(),
		Requests:        renderList(reqs),
	})
}

func (rec *Recorder) handleByID(w http.ResponseWriter, req *http.Request) {
	id := strings.TrimPrefix(req.URL.Path, "/debug/requests/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "not found"})
		return
	}
	r := rec.Lookup(id)
	if r == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown request id " + id})
		return
	}
	writeJSON(w, http.StatusOK, renderReq(r))
}
