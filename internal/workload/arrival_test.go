package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestScheduleEmpiricalRate checks each stochastic arrival family against
// its analytic mean rate over a long virtual horizon. Virtual time is
// free, so the horizon can be hours and tolerances tight without the
// test taking more than milliseconds of wall clock.
func TestScheduleEmpiricalRate(t *testing.T) {
	const horizon = 30 * time.Minute
	for _, tc := range []struct {
		spec string
	}{
		{"poisson:rate=50"},
		{"bursty:rate=80,on=300ms,off=200ms"},
		{"diurnal:rate=40,period=2s,depth=0.8"},
		{"bursty:rate=60,on=250ms,off=250ms,period=1s,depth=0.6"},
		{"diurnal:rate=30,period=3s,depth=0.5,period2=700ms,depth2=0.3"},
	} {
		t.Run(tc.spec, func(t *testing.T) {
			p, err := ParseArrival(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{1, 99} {
				sched := p.Schedule(horizon, seed)
				got := float64(len(sched)) / horizon.Seconds()
				want := p.MeanRate()
				if got < 0.9*want || got > 1.1*want {
					t.Errorf("seed %d: empirical rate %.2f/s, want within 10%% of analytic %.2f/s (%d arrivals)",
						seed, got, want, len(sched))
				}
				for i := 1; i < len(sched); i++ {
					if sched[i] < sched[i-1] {
						t.Fatalf("seed %d: schedule not sorted at %d", seed, i)
					}
				}
				if len(sched) > 0 && (sched[0] < 0 || sched[len(sched)-1] >= horizon) {
					t.Errorf("seed %d: schedule escapes [0, horizon)", seed)
				}
			}
		})
	}
}

// TestScheduleDeterministic pins that a schedule is a pure function of
// (params, horizon, seed) — the property loadgen's byte-identical
// reports depend on.
func TestScheduleDeterministic(t *testing.T) {
	p, err := ParseArrival("bursty:rate=60,on=250ms,off=250ms,period=1s,depth=0.6")
	if err != nil {
		t.Fatal(err)
	}
	a := p.Schedule(10*time.Second, 42)
	b := p.Schedule(10*time.Second, 42)
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := p.Schedule(10*time.Second, 43)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}
}

// TestDiurnalModulation checks the sinusoid actually shapes intensity:
// over many periods, the half-period around the peak must collect
// substantially more arrivals than the trough half.
func TestDiurnalModulation(t *testing.T) {
	p, err := ParseArrival("diurnal:rate=50,period=2s,depth=0.8")
	if err != nil {
		t.Fatal(err)
	}
	const period = 2 * time.Second
	sched := p.Schedule(5*time.Minute, 7)
	peak, trough := 0, 0
	for _, at := range sched {
		phase := float64(at%period) / float64(period)
		// sin peaks at phase 0.25, troughs at 0.75.
		if phase < 0.5 {
			peak++
		} else {
			trough++
		}
	}
	if peak < 2*trough {
		t.Errorf("peak half collected %d arrivals vs trough half %d, want ≥ 2x modulation", peak, trough)
	}
}

// TestTraceRoundTrip generates a schedule, writes it as NDJSON, reads it
// back, and replays it: the replayed schedule must be identical, and the
// re-encoded bytes must match the first encoding (canonical format).
func TestTraceRoundTrip(t *testing.T) {
	p, err := ParseArrival("poisson:rate=100")
	if err != nil {
		t.Fatal(err)
	}
	sched := p.Schedule(5*time.Second, 1)
	evs := EventsFromOffsets(sched, "session")

	var buf bytes.Buffer
	if err := WriteTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	got, err := ReadTrace(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	replayed := TraceProcess(Offsets(got)).Schedule(5*time.Second, 0 /* seed unused */)
	if len(replayed) != len(sched) {
		t.Fatalf("replay has %d arrivals, want %d", len(replayed), len(sched))
	}
	for i := range sched {
		if replayed[i] != sched[i] {
			t.Fatalf("replay diverges at %d: %v vs %v", i, replayed[i], sched[i])
		}
		if got[i].Op != "session" {
			t.Fatalf("event %d lost its op: %q", i, got[i].Op)
		}
	}

	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Error("re-encoding a read trace changed its bytes; trace format is not canonical")
	}
}

// TestReadTraceErrors pins that malformed traces fail with the offending
// line number — the difference between a fixable hand-edited trace and a
// mystery.
func TestReadTraceErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in, wantSub string
	}{
		{"bad-json", "{\"at_ns\":0}\nnot json\n", "line 2"},
		{"unknown-field", "{\"at_ns\":0,\"when\":5}\n", "line 1"},
		{"negative", "{\"at_ns\":0}\n\n{\"at_ns\":-3}\n", "line 3"},
		{"backwards", "{\"at_ns\":100}\n{\"at_ns\":50}\n", "line 2"},
		{"wrong-type", "{\"at_ns\":\"soon\"}\n", "line 1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("malformed trace parsed without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not name %q", err, tc.wantSub)
			}
		})
	}
	// Blank lines and a trailing newline are fine.
	evs, err := ReadTrace(strings.NewReader("\n{\"at_ns\":5}\n\n{\"at_ns\":9,\"op\":\"build\"}\n"))
	if err != nil {
		t.Fatalf("lenient trace rejected: %v", err)
	}
	if len(evs) != 2 || evs[1].Op != "build" {
		t.Fatalf("lenient trace parsed wrong: %+v", evs)
	}
}

// TestParseArrivalErrors covers the spec grammar's rejection paths.
func TestParseArrivalErrors(t *testing.T) {
	for _, in := range []string{
		"storm",
		"trace",
		"poisson:rate=0",
		"poisson:rate=abc",
		"poisson:on=100ms,off=100ms",
		"bursty:rate=10,on=100ms",
		"diurnal:rate=10,period=1s",
		"diurnal:rate=10,depth=2,period=1s",
		"poisson:loudness=11",
		"poisson:rate",
	} {
		if _, err := ParseArrival(in); err == nil {
			t.Errorf("ParseArrival(%q) succeeded, want error", in)
		}
	}
	p, err := ParseArrival("bursty:rate=80")
	if err != nil {
		t.Fatalf("bursty defaults rejected: %v", err)
	}
	if p.OnMean != 300*time.Millisecond || p.OffMean != 200*time.Millisecond {
		t.Errorf("bursty defaults = on %s, off %s", p.OnMean, p.OffMean)
	}
	if got, want := p.MeanRate(), 48.0; got != want {
		t.Errorf("bursty mean rate = %g, want %g", got, want)
	}
}

// TestPace pins the virtual-to-real time conversion loadgen uses.
func TestPace(t *testing.T) {
	if d := Pace(time.Second, 0, 0); d != 0 {
		t.Errorf("speedup 0 (as fast as possible) waited %s", d)
	}
	if d := Pace(time.Second, 200*time.Millisecond, 1); d != 800*time.Millisecond {
		t.Errorf("1x pace = %s, want 800ms", d)
	}
	if d := Pace(time.Second, 200*time.Millisecond, 4); d != 50*time.Millisecond {
		t.Errorf("4x pace = %s, want 50ms", d)
	}
	if d := Pace(time.Second, 2*time.Second, 1); d != 0 {
		t.Errorf("already-late arrival waited %s", d)
	}
}
