package workload

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math"
	"sort"
	"testing"

	"partree/internal/phys"
)

// TestDiskGalaxyShape checks the disk generator's physical signature,
// table-driven over seeds: bodies hug the midplane within the scale
// height's statistical bounds, and the net angular momentum is strongly
// nonzero (the disk rotates).
func TestDiskGalaxyShape(t *testing.T) {
	const n = 4000
	for _, tc := range []struct {
		name   string
		seed   int64
		params phys.DiskParams
		h      float64 // effective scale height
	}{
		{"default-seed1", 1, phys.DiskParams{}, 0.1},
		{"default-seed7", 7, phys.DiskParams{}, 0.1},
		{"thin", 42, phys.DiskParams{ScaleHeight: 0.05}, 0.05},
		{"thick", 42, phys.DiskParams{ScaleHeight: 0.3}, 0.3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := phys.Disk(n, tc.seed, tc.params)
			if err := b.Validate(); err != nil {
				t.Fatal(err)
			}
			// |z| is Exp(h): the max of n draws concentrates near h·ln n
			// (≈8.3h at n=4000); 15h leaves five e-foldings of slack, so a
			// failure means the profile is wrong, not unlucky. The 3h mass
			// fraction is 1-e⁻³ ≈ 0.950 in expectation.
			maxZ, in3h := 0.0, 0
			var lz float64
			for i := 0; i < n; i++ {
				z := math.Abs(b.Pos[i].Z)
				if z > maxZ {
					maxZ = z
				}
				if z <= 3*tc.h {
					in3h++
				}
				lz += b.Mass[i] * (b.Pos[i].X*b.Vel[i].Y - b.Pos[i].Y*b.Vel[i].X)
			}
			if maxZ > 15*tc.h {
				t.Errorf("max |z| = %.3f exceeds 15 scale heights (h=%g)", maxZ, tc.h)
			}
			if frac := float64(in3h) / n; frac < 0.92 {
				t.Errorf("only %.3f of bodies within 3 scale heights, want ≥ 0.92", frac)
			}
			// Total mass 1 and v_circ ~ O(1) near the scale length put a
			// coherently rotating disk's L_z near 1; an isotropic cloud's
			// would cancel to ~n^-1/2.
			if lz < 0.5 {
				t.Errorf("net angular momentum L_z = %.4f, want > 0.5 (disk must rotate)", lz)
			}
		})
	}
}

// TestCollidingClustersApproach drives the collision scenario through
// leapfrog steps and checks the two cluster centroids close in — the
// time-evolving bimodality that stresses a static spatial partition.
func TestCollidingClustersApproach(t *testing.T) {
	for _, tc := range []struct {
		name string
		seed int64
		opts map[string]float64
	}{
		{"head-on", 1, map[string]float64{"speed": 0.5}},
		{"impact-1.5", 7, map[string]float64{"impact": 1.5, "speed": 0.5}},
		{"impact-3", 42, map[string]float64{"impact": 3, "speed": 0.5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := Scenario{Kind: "collision", Opts: tc.opts}
			b, err := sc.Generate(3000, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			dist := func() float64 {
				a, c := HalfCentroids(b)
				return math.Sqrt((a[0]-c[0])*(a[0]-c[0]) + (a[1]-c[1])*(a[1]-c[1]) + (a[2]-c[2])*(a[2]-c[2]))
			}
			d0 := dist()
			Evolve(b, 8, 0.2)
			d1 := dist()
			if d1 >= d0-0.3 {
				t.Errorf("centroid distance %.3f -> %.3f over 8 steps, want a closing approach (≥ 0.3 nearer)", d0, d1)
			}
		})
	}
}

// nnDistances returns each body's distance to its 8th nearest neighbor —
// an inverse local-density probe (ρ ∝ nn⁻³). O(n²), test-only.
func nnDistances(b *phys.Bodies) []float64 {
	n := b.N()
	out := make([]float64, n)
	d2s := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d2s[j] = b.Pos[i].Dist2(b.Pos[j])
		}
		sort.Float64s(d2s)
		out[i] = math.Sqrt(d2s[8]) // d2s[0] is the self-distance
	}
	return out
}

// TestHierarchicalDensitySteeperThanUniform checks the nested-halo
// generator's defining property through the local density field: the
// typical density around a body is far above uniform's (its radial
// profile falls off steeply away from every sub-halo), and the 90/10
// density contrast is a multiple of uniform's (power-law structure at
// every scale, not one smooth blob).
func TestHierarchicalDensitySteeperThanUniform(t *testing.T) {
	const n = 2000
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			h := phys.Hierarchical(n, seed, phys.HierarchicalParams{})
			u := phys.Generate(phys.ModelUniform, n, seed)
			stats := func(b *phys.Bodies) (mean, contrast float64) {
				nn := nnDistances(b)
				com := b.CenterOfMass()
				var rmax float64
				for i := range nn {
					mean += nn[i]
					if r := b.Pos[i].Dist(com); r > rmax {
						rmax = r
					}
				}
				mean /= float64(len(nn)) * rmax
				sort.Float64s(nn)
				return mean, nn[len(nn)*9/10] / nn[len(nn)/10]
			}
			hMean, hContrast := stats(h)
			uMean, uContrast := stats(u)
			// Measured across seeds: hier mean ≈ 0.02-0.04 vs uniform
			// ≈ 0.12; contrast ≈ 3.4 vs ≈ 1.5.
			if hMean >= 0.5*uMean {
				t.Errorf("hierarchical normalized NN distance %.4f not below half of uniform's %.4f", hMean, uMean)
			}
			if hContrast <= 2*uContrast {
				t.Errorf("hierarchical density contrast %.2f not above 2x uniform's %.2f", hContrast, uContrast)
			}
		})
	}
}

// goldenSnapshots pins every generator's byte-exact output at n=512,
// seed=1998 (SHA-256 of phys.Snapshot bytes). A hash change means the
// sampling recipe changed — committed benchmarks, loadgen reports, and
// hypothesis FINDINGS all assume these streams are stable. Regenerate
// deliberately if a generator is redesigned.
var goldenSnapshots = map[string]string{
	"plummer":                        "a07691a14b2f6cc1096974d77564f0c7632de74c5f18f7b99ac94755bd3eff7a",
	"uniform":                        "b65b63876a5e0e6e78d24a1309af656d8fd1f1da20deaa1c159347f78f90ea0d",
	"twoclusters":                    "f08285539dd996ff93d27ca1cf67dc3d6ed47d447cc5262c3517119066ac4aba",
	"disk":                           "5507740effad2c642122d6c501527e19a4d2e224da9e4bc787baa760fa22aeb9",
	"hierarchical":                   "5a3c08fcf0fa1e000b7f9d7fffc058a6d86a4859fad6c6454f3e54956fa2cac0",
	"collision:impact=1.5,speed=0.5": "9878caf53e82976aeb60786ee77b1b03618a96d3bd54ac735f59ad958632e073",
	"disk:zscale=0.05":               "47087f3ea42124fcfab8a7dd585e7fa7bd831e6a61763c302b66244cb3fd7c91",
	"hierarchical:branch=6,levels=2": "897ba4947ffaf96230472409e82d32dde5f4ca71b8ab76f864c1bd9eff349323",
	"collision:evolve=3,dt=0.05":     "cedf396b749b110c291bd4349f079d13cd54984ee0cd8b3b3052b06b72d12da5",
}

func TestGeneratorsGoldenSnapshots(t *testing.T) {
	for spec, want := range goldenSnapshots {
		t.Run(spec, func(t *testing.T) {
			sc, err := ParseScenario(spec)
			if err != nil {
				t.Fatal(err)
			}
			hash := func() string {
				b, err := sc.Generate(512, 1998)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := b.WriteSnapshot(&buf); err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
			}
			h1, h2 := hash(), hash()
			if h1 != h2 {
				t.Fatalf("two generations of %q differ: %s vs %s", spec, h1, h2)
			}
			if h1 != want {
				t.Errorf("snapshot hash of %q = %s, want %s (generator output changed)", spec, h1, want)
			}
		})
	}
}

// TestParseScenario covers the spec grammar: canonical names, option
// validation, the evolve/dt wrapper, and the server-model contract.
func TestParseScenario(t *testing.T) {
	cases := []struct {
		in      string
		name    string
		server  string
		ok      bool
		wantErr bool
	}{
		{in: "disk", name: "disk", server: "disk", ok: true},
		{in: "collision", name: "collision", server: "twoclusters", ok: true},
		{in: "collision:impact=2", name: "collision:impact=2", ok: false},
		{in: "hierarchical:branch=6,levels=2", name: "hierarchical:branch=6,levels=2", ok: false},
		{in: "uniform", name: "uniform", server: "uniform", ok: true},
		{in: "plummer:evolve=5", name: "plummer:evolve=5,dt=0.025", ok: false},
		{in: "galaxy", wantErr: true},
		{in: "disk:warp=3", wantErr: true},
		{in: "disk:zscale", wantErr: true},
		{in: "disk:zscale=abc", wantErr: true},
	}
	for _, tc := range cases {
		sc, err := ParseScenario(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseScenario(%q) succeeded, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", tc.in, err)
			continue
		}
		if got := sc.Name(); got != tc.name {
			t.Errorf("ParseScenario(%q).Name() = %q, want %q", tc.in, got, tc.name)
		}
		model, ok := sc.ServerModel()
		if ok != tc.ok || (ok && model != tc.server) {
			t.Errorf("ParseScenario(%q).ServerModel() = (%q, %t), want (%q, %t)",
				tc.in, model, ok, tc.server, tc.ok)
		}
	}
}

// TestEvolveProducesChurn pins the reason the evolving wrapper exists:
// advancing a scenario moves a meaningful fraction of bodies, so a
// session replaying the frames exercises UPDATE's incremental path.
func TestEvolveProducesChurn(t *testing.T) {
	sc := Scenario{Kind: "collision", Opts: map[string]float64{"speed": 0.5}}
	b, err := sc.Generate(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]float64, b.N())
	for i := range before {
		before[i] = b.Pos[i].X
	}
	Evolve(b, 3, 0.05)
	moved := 0
	for i := range before {
		if b.Pos[i].X != before[i] {
			moved++
		}
	}
	if frac := float64(moved) / float64(b.N()); frac < 0.99 {
		t.Errorf("only %.3f of bodies moved after 3 evolution steps", frac)
	}
}
