package partition

import (
	"testing"

	"partree/internal/force"
	"partree/internal/octree"
	"partree/internal/phys"
)

func prepared(t *testing.T, n int, seed int64, withCosts bool) (*phys.Bodies, *octree.Tree, octree.BodyData) {
	t.Helper()
	b := phys.Generate(phys.ModelPlummer, n, seed)
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	octree.ComputeMomentsSerial(tr, d)
	if withCosts {
		// Run one real force pass so costs reflect actual interaction
		// counts, then refresh the tree's cost moments.
		force.ComputeAll(tr, b, [][]int32{allBodies(n)}, force.DefaultParams())
		octree.ComputeMomentsSerial(tr, d)
	}
	return b, tr, d
}

func allBodies(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func TestCostzonesCoversAllBodies(t *testing.T) {
	for _, p := range []int{1, 2, 7, 16} {
		_, tr, d := prepared(t, 3000, 5, false)
		assign := Costzones(tr, d, p)
		if len(assign) != p {
			t.Fatalf("p=%d: got %d zones", p, len(assign))
		}
		if err := Validate(assign, 3000); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestCostzonesBalanced(t *testing.T) {
	_, tr, d := prepared(t, 20000, 7, true)
	for _, p := range []int{4, 16} {
		assign := Costzones(tr, d, p)
		if err := Validate(assign, 20000); err != nil {
			t.Fatal(err)
		}
		if imb := Imbalance(assign, d); imb > 1.10 {
			t.Fatalf("p=%d: imbalance %.3f exceeds 1.10", p, imb)
		}
	}
}

func TestCostzonesDeterministic(t *testing.T) {
	_, tr, d := prepared(t, 2000, 9, true)
	a := Costzones(tr, d, 8)
	b := Costzones(tr, d, 8)
	for w := range a {
		if len(a[w]) != len(b[w]) {
			t.Fatalf("zone %d lengths differ", w)
		}
		for i := range a[w] {
			if a[w][i] != b[w][i] {
				t.Fatalf("zone %d element %d differs", w, i)
			}
		}
	}
}

func TestCostzonesSpatialLocality(t *testing.T) {
	// Zones follow tree order, so a zone's bodies should be clustered:
	// the mean intra-zone spread must be well below the global spread.
	b, tr, d := prepared(t, 8000, 11, true)
	assign := Costzones(tr, d, 16)
	globalSpread := meanDistToCentroid(b, allBodies(b.N()))
	var zoneSpread float64
	for _, zone := range assign {
		zoneSpread += meanDistToCentroid(b, zone)
	}
	zoneSpread /= float64(len(assign))
	if zoneSpread > 0.8*globalSpread {
		t.Fatalf("zones not spatially coherent: zone spread %.3f vs global %.3f", zoneSpread, globalSpread)
	}
}

func meanDistToCentroid(b *phys.Bodies, idx []int32) float64 {
	if len(idx) == 0 {
		return 0
	}
	var c = b.Pos[idx[0]]
	for _, i := range idx[1:] {
		c = c.Add(b.Pos[i])
	}
	c = c.Scale(1 / float64(len(idx)))
	var sum float64
	for _, i := range idx {
		sum += b.Pos[i].Dist(c)
	}
	return sum / float64(len(idx))
}

// TestCostzonesSkewedCosts drives costzones with heavily skewed per-body
// costs shaped by the Plummer density profile itself: cost falls off with
// radius, so the dense core is orders of magnitude more expensive than
// the outskirts — the regime costzones exists for. Coverage must stay
// exact, and each zone's cost must stay within the scheme's theoretical
// bound: a zone covers a total/p window of the accumulated cost sequence,
// so it can exceed the mean by at most one body's cost (the straddler).
func TestCostzonesSkewedCosts(t *testing.T) {
	const n = 12000
	b := phys.Generate(phys.ModelPlummer, n, 13)
	var maxCost, total int64
	for i := range b.Cost {
		r2 := b.Pos[i].Dot(b.Pos[i])
		c := 1 + int64(4096/(1+16*r2))
		b.Cost[i] = c
		total += c
		if c > maxCost {
			maxCost = c
		}
	}
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	octree.ComputeMomentsSerial(tr, d)

	for _, p := range []int{2, 5, 16} {
		assign := Costzones(tr, d, p)
		if err := Validate(assign, n); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		bound := total/int64(p) + maxCost
		for w, zone := range assign {
			var zc int64
			for _, i := range zone {
				zc += d.CostOf(i)
			}
			if zc > bound {
				t.Errorf("p=%d zone %d: cost %d exceeds total/p+max = %d+%d",
					p, w, zc, total/int64(p), maxCost)
			}
		}
		if imb := Imbalance(assign, d); imb > 1+float64(p)*float64(maxCost)/float64(total) {
			t.Errorf("p=%d: imbalance %.4f beyond the one-straddler bound", p, imb)
		}
	}
}

func TestCostzonesEmptyAndTiny(t *testing.T) {
	tr := octree.BuildSerial(nil, 8)
	assign := Costzones(tr, octree.BodyData{}, 4)
	if err := Validate(assign, 0); err != nil {
		t.Fatal(err)
	}
	_, tr2, d2 := prepared(t, 3, 1, false)
	assign = Costzones(tr2, d2, 8)
	if err := Validate(assign, 3); err != nil {
		t.Fatal(err)
	}
}

// TestCostzonesZeroTotalCost is the regression test for the degenerate
// total==0 case: before a force pass or any measurement runs, every
// Cost entry can legitimately be zero. Costzones must still hand out an
// exact cover — and an even one, not all bodies piled into zone 0.
func TestCostzonesZeroTotalCost(t *testing.T) {
	const n = 1000
	b := phys.Generate(phys.ModelPlummer, n, 17)
	for i := range b.Cost {
		b.Cost[i] = 0
	}
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	octree.ComputeMomentsSerial(tr, d)
	if got := rootCost(tr); got != 0 {
		t.Fatalf("setup: root cost = %d, want 0", got)
	}
	for _, p := range []int{1, 4, 7} {
		assign := Costzones(tr, d, p)
		if err := Validate(assign, n); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		min, max := n, 0
		for _, zone := range assign {
			if len(zone) < min {
				min = len(zone)
			}
			if len(zone) > max {
				max = len(zone)
			}
		}
		if max-min > 1 {
			t.Fatalf("p=%d: zero-cost fallback not an even split: zone sizes range [%d,%d]", p, min, max)
		}
	}
}

// TestCostzonesSingleHeavyBody pins the other degenerate edge: one body
// carrying the entire tree cost. All zone boundaries land on that one
// body, but coverage must stay exact — bodies before it share zone 0,
// bodies after it land in the last zone, nothing is dropped.
func TestCostzonesSingleHeavyBody(t *testing.T) {
	const n = 500
	b := phys.Generate(phys.ModelPlummer, n, 19)
	for i := range b.Cost {
		b.Cost[i] = 0
	}
	b.Cost[n/2] = 1 << 20
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	octree.ComputeMomentsSerial(tr, d)
	for _, p := range []int{2, 8} {
		assign := Costzones(tr, d, p)
		if err := Validate(assign, n); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestCostzonesNegativeCostClamped: a negative per-body cost (corrupt
// measurement) must not walk the accumulator backwards or break the
// exact-cover invariant.
func TestCostzonesNegativeCostClamped(t *testing.T) {
	const n = 800
	b := phys.Generate(phys.ModelPlummer, n, 23)
	for i := range b.Cost {
		b.Cost[i] = 10
	}
	for i := 0; i < n; i += 7 {
		b.Cost[i] = -50
	}
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
	octree.ComputeMomentsSerial(tr, d)
	for _, p := range []int{3, 8} {
		assign := Costzones(tr, d, p)
		if err := Validate(assign, n); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	if err := Validate([][]int32{{0, 1}, {1}}, 3); err == nil {
		t.Fatal("accepted duplicate")
	}
	if err := Validate([][]int32{{0}}, 2); err == nil {
		t.Fatal("accepted missing body")
	}
	if err := Validate([][]int32{{5}}, 2); err == nil {
		t.Fatal("accepted out-of-range body")
	}
}
