package mp

import (
	"sync"
	"time"

	"partree/internal/force"
	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/vec"
)

// Options configure the message-passing run.
type Options struct {
	P       int
	LeafCap int
	Force   force.Params
	Dt      float64
}

// RankStats is one rank's counters for a step.
type RankStats struct {
	Bodies       int
	Interactions int64
	MsgsSent     int64
	BytesSent    int64
	TreeNodes    int // local tree size
	RemoteItems  int // mass points + bodies received
}

// StepStats summarizes one message-passing time step.
type StepStats struct {
	ORB     time.Duration
	Tree    time.Duration // local builds + LET exchange
	Force   time.Duration
	Update  time.Duration
	PerRank []RankStats
}

// Total is the step's wall-clock total.
func (s StepStats) Total() time.Duration { return s.ORB + s.Tree + s.Force + s.Update }

// TotalBytes sums bytes sent by all ranks.
func (s StepStats) TotalBytes() int64 {
	var t int64
	for _, r := range s.PerRank {
		t += r.BytesSent
	}
	return t
}

// TotalInteractions sums force interactions across ranks.
func (s StepStats) TotalInteractions() int64 {
	var t int64
	for _, r := range s.PerRank {
		t += r.Interactions
	}
	return t
}

// letMsg is the payload rank src ships to rank dst.
type letMsg struct {
	src    int
	points []MassPoint
	bodies []RemoteBody
}

// Step advances the system one time step with the message-passing
// structure: ORB domain decomposition, per-rank local trees over private
// stores (separate "address spaces"), all-to-all locally-essential-tree
// exchange over channels, then fully local force evaluation and update.
func Step(b *phys.Bodies, opts Options) StepStats {
	if opts.P <= 0 {
		opts.P = 1
	}
	if opts.LeafCap <= 0 {
		opts.LeafCap = 8
	}
	if opts.Force.Theta == 0 {
		opts.Force = force.DefaultParams()
	}
	if opts.Dt == 0 {
		opts.Dt = 0.025
	}
	p := opts.P
	st := StepStats{PerRank: make([]RankStats, p)}

	t0 := time.Now()
	doms := ORB(b, p)
	t1 := time.Now()

	// Global root cube: in a real MP code this is an allreduce over the
	// per-rank bounds (counted as one message per rank).
	cube := b.Bounds(1e-4)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}

	// Phase 1: local trees + LET exchange. Every pair of ranks gets a
	// buffered channel; rank r computes the essential set of its tree
	// for every other domain and sends it.
	trees := make([]*octree.Tree, p)
	inbox := make([]chan letMsg, p)
	for r := range inbox {
		inbox[r] = make(chan letMsg, p)
	}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := octree.NewStore(1, opts.LeafCap)
			tr := octree.NewTree(s, 0, r, cube)
			for _, i := range doms[r].Bodies {
				s.Insert(tr.Root, 0, 0, r, i, b.Pos)
			}
			octree.ComputeMomentsSerial(tr, d)
			trees[r] = tr
			st.PerRank[r].Bodies = len(doms[r].Bodies)
			cells, leaves := octree.CountNodes(tr)
			st.PerRank[r].TreeNodes = cells + leaves

			for q := 0; q < p; q++ {
				if q == r {
					continue
				}
				mps, rbs := Essential(tr, d, doms[q].Box, opts.Force.Theta)
				st.PerRank[r].MsgsSent++
				st.PerRank[r].BytesSent += letBytes(mps, rbs)
				inbox[q] <- letMsg{src: r, points: mps, bodies: rbs}
			}
			// The allreduce for the root bounds.
			st.PerRank[r].MsgsSent++
			st.PerRank[r].BytesSent += 48
		}(r)
	}
	wg.Wait()
	t2 := time.Now()

	// Phase 2: force evaluation, fully local. The received mass points
	// and bodies become a second, remote tree each rank traverses with
	// the ordinary θ criterion — the locally essential tree proper.
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var rpos []vec.V3
			var rmass []float64
			for q := 0; q < p-1; q++ {
				m := <-inbox[r]
				for _, pt := range m.points {
					rpos = append(rpos, pt.COM)
					rmass = append(rmass, pt.Mass)
				}
				for _, rb := range m.bodies {
					rpos = append(rpos, rb.Pos)
					rmass = append(rmass, rb.Mass)
				}
			}
			var rtree *octree.Tree
			rd := octree.BodyData{Pos: rpos, Mass: rmass}
			if len(rpos) > 0 {
				rtree = octree.BuildSerial(rpos, opts.LeafCap)
				octree.ComputeMomentsSerial(rtree, rd)
			}
			st.PerRank[r].RemoteItems = len(rpos)

			var inter int64
			for _, i := range doms[r].Bodies {
				res := force.Accel(trees[r], d, i, opts.Force)
				acc := res.Acc
				cost := res.Interactions
				if rtree != nil {
					rres := force.AccelAt(rtree, rd, b.Pos[i], opts.Force)
					acc = acc.Add(rres.Acc)
					cost += rres.Interactions
				}
				inter += cost
				b.Acc[i] = acc
				b.Cost[i] = cost
			}
			st.PerRank[r].Interactions = inter
		}(r)
	}
	wg.Wait()
	t3 := time.Now()

	// Phase 3: update, each rank its own bodies.
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for _, i := range doms[r].Bodies {
				b.Vel[i] = b.Vel[i].MulAdd(opts.Dt, b.Acc[i])
				b.Pos[i] = b.Pos[i].MulAdd(opts.Dt, b.Vel[i])
			}
		}(r)
	}
	wg.Wait()
	t4 := time.Now()

	st.ORB = t1.Sub(t0)
	st.Tree = t2.Sub(t1)
	st.Force = t3.Sub(t2)
	st.Update = t4.Sub(t3)
	return st
}

// AccelOn evaluates the message-passing force on one body without
// advancing the system — used by accuracy tests.
func AccelOn(b *phys.Bodies, opts Options, body int32) vec.V3 {
	saved := b.Clone()
	Step(b, opts)
	acc := b.Acc[body]
	copy(b.Pos, saved.Pos)
	copy(b.Vel, saved.Vel)
	copy(b.Acc, saved.Acc)
	copy(b.Cost, saved.Cost)
	return acc
}
