// Package engine is the long-lived execution layer under every native
// tree build: a pool of builder *sessions*, each wrapping a persistent
// core.Builder whose octree store is Reset() and reused across requests,
// with admission control in front. The paper's finding is that build cost
// is dominated by synchronization and memory behaviour, not arithmetic —
// so a process that serves builds continuously must not re-pay store
// allocation on every request. Sessions are keyed by the builder's full
// identity (algorithm, processors, leaf capacity, SPACE threshold,
// margin); acquiring a session for a key the pool has seen before reuses
// its warmed store, and the steady-state hot path of a repeated build
// allocates (near) zero.
//
// Admission control bounds what a long-lived process lets in: at most
// MaxActive builds run concurrently, at most MaxQueue more may wait
// (with the wait honoring the request context's deadline), anything
// beyond is rejected immediately with ErrQueueFull, and once Drain
// begins every new acquire is rejected with ErrDraining while in-flight
// builds run to completion. internal/runner's native backend,
// harness.Session sweeps, and cmd/partreed all execute through one
// shared Engine, so the whole process observes a single budget.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/core"
	"partree/internal/obs"
	"partree/internal/octree"
	"partree/internal/reqtrace"
)

// Rejection sentinels. They surface to HTTP callers as 503s, so their
// text is part of the service contract.
var (
	// ErrQueueFull rejects an acquire that would exceed MaxActive running
	// plus MaxQueue waiting builds.
	ErrQueueFull = errors.New("engine: queue full")
	// ErrDraining rejects every acquire after Drain has begun.
	ErrDraining = errors.New("engine: draining")
)

// Key is a session's identity: two requests with equal keys can share a
// pooled builder (and therefore its retained store). The fields mirror
// core.Config plus the algorithm; zero values normalize to the
// documented core defaults so equivalent configurations pool together.
type Key struct {
	Alg            core.Algorithm
	P              int
	LeafCap        int
	SpaceThreshold int
	Margin         float64
}

func (k Key) normalized() Key {
	if k.P <= 0 {
		k.P = 1
	}
	if k.LeafCap <= 0 {
		k.LeafCap = 8
	}
	if k.Margin <= 0 {
		k.Margin = 1e-4
	}
	return k
}

// String renders the key for logs.
func (k Key) String() string {
	k = k.normalized()
	return fmt.Sprintf("%s/p%d/k%d/st%d/m%g", k.Alg, k.P, k.LeafCap, k.SpaceThreshold, k.Margin)
}

// Options bound the engine. The zero value selects sane service
// defaults.
type Options struct {
	// MaxActive is the number of builds allowed to run concurrently
	// (0 = GOMAXPROCS).
	MaxActive int
	// MaxQueue is how many acquires may wait for a slot beyond
	// MaxActive before new ones are rejected with ErrQueueFull
	// (0 = 4×MaxActive).
	MaxQueue int
	// MaxIdle bounds the sessions retained in the pool across all keys;
	// the least recently used is evicted past it (0 = 32; negative =
	// retain nothing, every release frees the session).
	MaxIdle int
	// MaxLeases bounds concurrently open session leases — the resident
	// streaming sessions of OpenLease, accounted separately from build
	// slots because an idle lease holds memory, not CPU (0 = 256;
	// negative = unbounded).
	MaxLeases int
	// LeaseIdle is the idle-eviction timeout applied to leases opened
	// without their own (0 = 2m).
	LeaseIdle time.Duration
	// LeaseTick is the deadline wheel's granularity — the idle janitor's
	// eviction resolution (0 = 100ms).
	LeaseTick time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxActive <= 0 {
		o.MaxActive = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 4 * o.MaxActive
	}
	if o.MaxIdle == 0 {
		o.MaxIdle = 32
	}
	if o.MaxLeases == 0 {
		o.MaxLeases = 256
	}
	if o.LeaseIdle <= 0 {
		o.LeaseIdle = 2 * time.Minute
	}
	if o.LeaseTick <= 0 {
		o.LeaseTick = 100 * time.Millisecond
	}
	return o
}

// Engine is the session pool. Create with New; safe for concurrent use.
type Engine struct {
	opts Options
	// slots is the active-build semaphore: holding a token = holding a
	// session. Drain seizes every token to wait out in-flight builds.
	slots chan struct{}

	// drainCh is closed the moment a drain begins, waking lease steps
	// (and queued acquires) that would otherwise wait on a slot Drain is
	// busy seizing.
	drainCh chan struct{}

	mu             sync.Mutex
	idle           map[Key][]*Session
	lru            *list.List // *Session, front = most recently released
	sessions       map[*Session]struct{}
	leases         map[*Lease]struct{}
	janitorRunning bool
	draining       bool
	drainDone      chan struct{} // non-nil once a drain has started

	// wheelMu guards the deadline wheel and every lease's deadline/slot.
	wheelMu sync.Mutex
	wheel   [wheelSlots]map[*Lease]struct{}

	queued            atomic.Int64
	inUse             atomic.Int64
	created           atomic.Int64
	reused            atomic.Int64
	evicted           atomic.Int64
	rejectedFull      atomic.Int64
	rejectedDraining  atomic.Int64
	rejectedCancelled atomic.Int64

	leasesOpened   atomic.Int64
	leasesClosed   atomic.Int64
	leasesEvicted  atomic.Int64
	leaseRejected  atomic.Int64
	leaseFallbacks atomic.Int64
	leaseUnplanned atomic.Int64
	// stepSeconds is the per-step duration histogram, labeled by mode
	// (update vs rebuild). Created eagerly so steps can observe whether
	// or not RegisterObs was called.
	stepSeconds *obs.Vec[*obs.Histogram]
}

// New creates an engine.
func New(o Options) *Engine {
	o = o.withDefaults()
	return &Engine{
		opts:     o,
		slots:    make(chan struct{}, o.MaxActive),
		drainCh:  make(chan struct{}),
		idle:     map[Key][]*Session{},
		lru:      list.New(),
		sessions: map[*Session]struct{}{},
		leases:   map[*Lease]struct{}{},
		stepSeconds: obs.NewHistogramVec("partree_session_step_seconds",
			"Session step wall time, by serving mode (incremental update vs fresh rebuild).",
			obs.ExpBuckets(1e-5, 2, 20), "mode"),
	}
}

// Session is one exclusively-held pooled builder. Build through it (or
// take Builder() and drive it directly), then Release it back to the
// pool. A session is never handed to two holders at once.
type Session struct {
	eng      *Engine
	key      Key
	b        core.Builder
	elem     *list.Element // LRU position while idle, nil while held
	released bool
}

// Key returns the session's identity.
func (s *Session) Key() Key { return s.key }

// Builder returns the persistent builder for callers that drive it
// directly (nbody injects it into a Simulation). The builder must not be
// used after Release.
func (s *Session) Builder() core.Builder { return s.b }

// Build runs one build through the session's persistent builder.
func (s *Session) Build(in *core.Input) (*octree.Tree, *core.Metrics) {
	return s.b.Build(in)
}

func (e *Engine) isDraining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Acquire takes exclusive ownership of a session for key, reusing a
// pooled one when available and creating one otherwise. It blocks while
// MaxActive builds are running, up to ctx's deadline; it rejects
// immediately with ErrQueueFull when MaxQueue acquires are already
// waiting, and with ErrDraining once Drain has begun.
func (e *Engine) Acquire(ctx context.Context, k Key) (*Session, error) {
	k = k.normalized()
	if e.isDraining() {
		e.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
	select {
	case e.slots <- struct{}{}:
		// Fast path: a build slot was free.
	default:
		// Every slot is busy; this acquire would wait. Only real waiters
		// count against MaxQueue — fast-path acquires never do.
		if q := e.queued.Add(1); int(q) > e.opts.MaxQueue {
			e.queued.Add(-1)
			e.rejectedFull.Add(1)
			return nil, ErrQueueFull
		}
		// The admission queue is where a request's latency stops being
		// its own fault; stamp the wait onto its span context (nil-safe
		// no-op for untraced callers).
		rq := reqtrace.FromContext(ctx)
		var qstart time.Time
		if rq != nil {
			qstart = time.Now()
		}
		select {
		case e.slots <- struct{}{}:
			e.queued.Add(-1)
			rq.SpanSince("queue", qstart)
		case <-ctx.Done():
			e.queued.Add(-1)
			e.rejectedCancelled.Add(1)
			return nil, fmt.Errorf("engine: acquire: %w", ctx.Err())
		}
	}

	e.mu.Lock()
	if e.draining {
		// Drain began while this acquire waited for a slot; it must not
		// start a new build.
		e.mu.Unlock()
		<-e.slots
		e.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
	var s *Session
	if l := e.idle[k]; len(l) > 0 {
		s = l[len(l)-1]
		if len(l) == 1 {
			delete(e.idle, k)
		} else {
			e.idle[k] = l[:len(l)-1]
		}
		e.lru.Remove(s.elem)
		s.elem = nil
		s.released = false
		e.reused.Add(1)
	}
	e.mu.Unlock()

	if s == nil {
		// Built outside the lock: store allocation is the expensive part
		// pooling exists to amortize.
		s = &Session{eng: e, key: k, b: core.New(k.Alg, core.Config{
			P: k.P, LeafCap: k.LeafCap, SpaceThreshold: k.SpaceThreshold, Margin: k.Margin,
		})}
		e.created.Add(1)
		e.mu.Lock()
		e.sessions[s] = struct{}{}
		e.mu.Unlock()
	}
	e.inUse.Add(1)
	return s, nil
}

// Release returns the session to the pool (or frees it past MaxIdle, or
// while draining) and gives up its build slot.
func (s *Session) Release() {
	e := s.eng
	e.mu.Lock()
	if s.released {
		e.mu.Unlock()
		panic("engine: session released twice")
	}
	s.released = true
	switch {
	case e.draining || e.opts.MaxIdle < 0:
		delete(e.sessions, s)
	default:
		e.idle[s.key] = append(e.idle[s.key], s)
		s.elem = e.lru.PushFront(s)
		if e.lru.Len() > e.opts.MaxIdle {
			e.evictLocked(e.lru.Back().Value.(*Session))
		}
	}
	e.mu.Unlock()
	e.inUse.Add(-1)
	<-e.slots
}

// evictLocked drops an idle session from the pool. Caller holds e.mu.
func (e *Engine) evictLocked(victim *Session) {
	l := e.idle[victim.key]
	for i := range l {
		if l[i] == victim {
			l = append(l[:i], l[i+1:]...)
			break
		}
	}
	if len(l) == 0 {
		delete(e.idle, victim.key)
	} else {
		e.idle[victim.key] = l
	}
	e.lru.Remove(victim.elem)
	victim.elem = nil
	delete(e.sessions, victim)
	e.evicted.Add(1)
}

// Drain gracefully shuts the engine down: new acquires are rejected with
// ErrDraining immediately, pooled idle sessions are freed, and Drain
// blocks until every in-flight build has Released — or ctx expires, in
// which case the engine stays draining (still rejecting) with the
// stragglers unwaited. Concurrent and repeated calls share one drain.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	first := e.drainDone == nil
	if first {
		e.drainDone = make(chan struct{})
		// Wake lease steps and queued acquires blocked on a slot before
		// the seize loop below starves them.
		close(e.drainCh)
	}
	done := e.drainDone
	e.draining = true
	for _, l := range e.idle {
		for _, s := range l {
			delete(e.sessions, s)
		}
	}
	e.idle = map[Key][]*Session{}
	e.lru.Init()
	leases := make([]*Lease, 0, len(e.leases))
	for l := range e.leases {
		leases = append(leases, l)
	}
	e.mu.Unlock()

	// Close every lease. Lease.Close takes l.mu, which a mid-step lease
	// holds until its current step finishes — so this loop is exactly
	// "finish the in-flight step, then close the stream". Steps *waiting*
	// for a slot were already woken by drainCh with ErrDraining.
	for _, l := range leases {
		l.Close()
	}

	if !first {
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("engine: drain: %w (%d builds still in flight)", ctx.Err(), e.inUse.Load())
		}
	}
	// Seize every build slot: once all tokens are held here, no build is
	// in flight and none can start.
	for i := 0; i < cap(e.slots); i++ {
		select {
		case e.slots <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("engine: drain: %w (%d builds still in flight)", ctx.Err(), e.inUse.Load())
		}
	}
	close(done)
	return nil
}

// Stats is a snapshot of the pool for tests, audits, and exposition.
type Stats struct {
	Created, Reused, Evicted int64
	RejectedFull             int64
	RejectedDraining         int64
	RejectedCancelled        int64
	InUse, Idle, Queued      int64
	Draining                 bool
	// Lease lifecycle (streaming sessions).
	LeasesActive  int64
	LeasesOpened  int64
	LeasesClosed  int64
	LeasesEvicted int64
	LeaseRejected int64
	// LeaseFallbacks counts policy-triggered SPACE rebuilds;
	// LeaseUnplanned counts fresh rebuilds nobody asked for (resident
	// state invalidated under the session).
	LeaseFallbacks int64
	LeaseUnplanned int64
	// Store aggregates retained octree storage over every live session
	// (idle and in use) and every open lease's resident builder.
	Store octree.StoreStats
}

// Stats snapshots the engine. Store figures read each session's store
// atomically; a snapshot taken while builds run is a consistent-enough
// lower bound.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	sessions := make([]*Session, 0, len(e.sessions))
	for s := range e.sessions {
		sessions = append(sessions, s)
	}
	steppers := make([]*core.Stepper, 0, len(e.leases))
	for l := range e.leases {
		steppers = append(steppers, l.st)
	}
	idle := int64(e.lru.Len())
	draining := e.draining
	e.mu.Unlock()
	st := Stats{
		Created:           e.created.Load(),
		Reused:            e.reused.Load(),
		Evicted:           e.evicted.Load(),
		RejectedFull:      e.rejectedFull.Load(),
		RejectedDraining:  e.rejectedDraining.Load(),
		RejectedCancelled: e.rejectedCancelled.Load(),
		InUse:             e.inUse.Load(),
		Idle:              idle,
		Queued:            e.queued.Load(),
		Draining:          draining,
		LeasesActive:      int64(len(steppers)),
		LeasesOpened:      e.leasesOpened.Load(),
		LeasesClosed:      e.leasesClosed.Load(),
		LeasesEvicted:     e.leasesEvicted.Load(),
		LeaseRejected:     e.leaseRejected.Load(),
		LeaseFallbacks:    e.leaseFallbacks.Load(),
		LeaseUnplanned:    e.leaseUnplanned.Load(),
	}
	for _, s := range sessions {
		for _, store := range core.StoresOf(s.b) {
			st.Store = st.Store.Add(store.Stats())
		}
	}
	for _, sp := range steppers {
		for _, store := range core.StoresOf(sp.Builder()) {
			st.Store = st.Store.Add(store.Stats())
		}
	}
	return st
}
