package workload

import (
	"partree/internal/force"
	"partree/internal/octree"
	"partree/internal/phys"
)

// Evolver advances a body set through leapfrog (kick-drift-kick) steps
// using the serial octree and the Barnes-Hut force pass. It exists to
// turn static initial conditions into time-evolving workloads: the
// per-step position churn is what stresses UPDATE's incremental repair
// and shifts the costzones load balance under a running session.
//
// Determinism: the serial build, moments, and per-body traversals are
// all deterministic, and each body's acceleration is written to its own
// slot, so the trajectory is a pure function of the initial bodies and
// dt regardless of scheduling.
type Evolver struct {
	B       *phys.Bodies
	Dt      float64
	Par     force.Params
	LeafCap int

	primed bool
	assign [][]int32
}

// NewEvolver wraps a body set (the caller keeps ownership; steps mutate
// it in place) with the default force parameters.
func NewEvolver(b *phys.Bodies, dt float64) *Evolver {
	return &Evolver{B: b, Dt: dt, Par: force.DefaultParams(), LeafCap: 8}
}

// Step advances one leapfrog step: kick half, drift, re-evaluate
// accelerations on the fresh tree, kick half.
func (e *Evolver) Step() {
	if !e.primed {
		e.accel()
		e.primed = true
	}
	n := e.B.N()
	e.B.Kick(0, n, e.Dt)
	e.B.Drift(0, n, e.Dt)
	e.accel()
	e.B.Kick(0, n, e.Dt)
}

func (e *Evolver) accel() {
	n := e.B.N()
	if e.assign == nil {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		e.assign = [][]int32{all}
	}
	t := octree.BuildSerial(e.B.Pos, e.LeafCap)
	d := octree.BodyData{Pos: e.B.Pos, Mass: e.B.Mass, Cost: e.B.Cost}
	octree.ComputeMomentsSerial(t, d)
	force.ComputeAll(t, e.B, e.assign, e.Par)
}

// Evolve advances b through steps leapfrog steps of dt in place.
func Evolve(b *phys.Bodies, steps int, dt float64) {
	e := NewEvolver(b, dt)
	for i := 0; i < steps; i++ {
		e.Step()
	}
}
