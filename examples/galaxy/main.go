// Galaxy collision: two Plummer spheres on a collision course, integrated
// with the full parallel Barnes-Hut pipeline and rendered as ASCII density
// maps while the clusters merge. Run with:
//
//	go run ./examples/galaxy [-n 8192] [-steps 40] [-alg UPDATE]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"partree/internal/core"
	"partree/internal/nbody"
	"partree/internal/phys"
)

func main() {
	var (
		n     = flag.Int("n", 8192, "bodies")
		steps = flag.Int("steps", 40, "time steps")
		alg   = flag.String("alg", "UPDATE", "tree builder")
		every = flag.Int("every", 10, "render every k steps")
	)
	flag.Parse()

	a, err := core.ParseAlgorithm(*alg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "galaxy: %v\n", err)
		os.Exit(2)
	}
	opts := nbody.DefaultOptions()
	opts.Model = phys.ModelTwoClusters
	opts.N = *n
	opts.P = runtime.GOMAXPROCS(0)
	opts.Alg = a
	opts.Dt = 0.05
	sim := nbody.New(opts)

	_, _, e0 := sim.Energy()
	fmt.Printf("two Plummer spheres, %d bodies, builder %v, %d procs\n", *n, a, opts.P)
	render(sim)
	var treeTotal, allTotal float64
	for i := 0; i < *steps; i++ {
		st := sim.Step()
		treeTotal += st.TreeBuild.Seconds()
		allTotal += st.Total().Seconds()
		if (i+1)%*every == 0 {
			fmt.Printf("\nafter step %d (moved bodies this step: %d):\n",
				i+1, st.Build.TotalBodiesMoved())
			render(sim)
		}
	}
	_, _, e1 := sim.Energy()
	fmt.Printf("\nenergy drift over %d steps: %.2f%%\n", *steps, 100*(e1-e0)/e0)
	fmt.Printf("tree building: %.1f%% of run time (%v)\n", 100*treeTotal/allTotal, a)
}

// render draws an XY density map of the system.
func render(sim *nbody.Simulation) {
	const w, h = 72, 24
	var grid [h][w]int
	cube := sim.Bodies.Bounds(0)
	min := cube.Min()
	max := grid[0][0]
	for _, p := range sim.Bodies.Pos {
		x := int((p.X - min.X) / cube.Size * (w - 1))
		y := int((p.Y - min.Y) / cube.Size * (h - 1))
		if x >= 0 && x < w && y >= 0 && y < h {
			grid[y][x]++
			if grid[y][x] > max {
				max = grid[y][x]
			}
		}
	}
	shades := " .:-=+*#%@"
	var sb strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := grid[y][x]
			idx := 0
			if max > 0 && v > 0 {
				idx = 1 + v*(len(shades)-2)/max
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
}
