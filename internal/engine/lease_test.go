package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/phys"
)

func testStepper(t *testing.T, n, p int, seed int64) *core.Stepper {
	t.Helper()
	b := phys.Generate(phys.ModelPlummer, n, seed)
	return core.NewStepper(core.Config{P: p, LeafCap: 8}, b, core.DefaultFallbackPolicy())
}

func TestLeaseLifecycle(t *testing.T) {
	e := New(Options{MaxActive: 2})
	l, err := e.OpenLease(testStepper(t, 500, 2, 1), time.Minute)
	if err != nil {
		t.Fatalf("OpenLease: %v", err)
	}
	for i := 0; i < 5; i++ {
		if i > 0 {
			l.Stepper().Bodies().Drift(0, 500, 0.01)
		}
		res, err := l.Step(context.Background(), core.StepInput{})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if res.Step != i {
			t.Fatalf("step %d: result.Step = %d", i, res.Step)
		}
		if (i == 0) != res.Fresh {
			t.Fatalf("step %d: fresh = %v", i, res.Fresh)
		}
	}
	st := e.Stats()
	if st.LeasesActive != 1 || st.LeasesOpened != 1 {
		t.Fatalf("stats: active=%d opened=%d, want 1/1", st.LeasesActive, st.LeasesOpened)
	}
	if st.Store.Leaves == 0 {
		t.Fatal("stats: lease's resident store not aggregated")
	}
	l.Close()
	if _, err := l.Step(context.Background(), core.StepInput{}); !errors.Is(err, ErrLeaseClosed) {
		t.Fatalf("step after close: %v, want ErrLeaseClosed", err)
	}
	l.Close() // idempotent
	st = e.Stats()
	if st.LeasesActive != 0 || st.LeasesClosed != 1 {
		t.Fatalf("stats after close: active=%d closed=%d, want 0/1", st.LeasesActive, st.LeasesClosed)
	}
}

func TestLeaseCapacity(t *testing.T) {
	e := New(Options{MaxActive: 2, MaxLeases: 2})
	l1, err := e.OpenLease(testStepper(t, 100, 1, 1), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.OpenLease(testStepper(t, 100, 1, 2), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := e.OpenLease(testStepper(t, 100, 1, 3), time.Minute); !errors.Is(err, ErrLeasesFull) {
		t.Fatalf("third open: %v, want ErrLeasesFull", err)
	}
	if got := e.Stats().LeaseRejected; got != 1 {
		t.Fatalf("LeaseRejected = %d, want 1", got)
	}
	l1.Close()
	if _, err := e.OpenLease(testStepper(t, 100, 1, 4), time.Minute); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

func TestLeaseIdleEviction(t *testing.T) {
	e := New(Options{MaxActive: 2, LeaseTick: 5 * time.Millisecond})
	l, err := e.OpenLease(testStepper(t, 200, 1, 1), 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Step(context.Background(), core.StepInput{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-l.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("idle lease was never evicted")
	}
	if !l.Evicted() {
		t.Fatal("Done fired but lease not marked evicted")
	}
	if _, err := l.Step(context.Background(), core.StepInput{}); !errors.Is(err, ErrLeaseEvicted) {
		t.Fatalf("step after eviction: %v, want ErrLeaseEvicted", err)
	}
	st := e.Stats()
	if st.LeasesEvicted != 1 || st.LeasesActive != 0 {
		t.Fatalf("stats: evicted=%d active=%d, want 1/0", st.LeasesEvicted, st.LeasesActive)
	}
}

// TestLeaseStepKeepsAlive steps more often than the idle timeout and
// checks the janitor leaves the lease alone: the lazy deadline refresh
// must actually move the eviction point.
func TestLeaseStepKeepsAlive(t *testing.T) {
	e := New(Options{MaxActive: 2, LeaseTick: 5 * time.Millisecond})
	l, err := e.OpenLease(testStepper(t, 200, 1, 1), 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := l.Step(context.Background(), core.StepInput{}); err != nil {
			t.Fatalf("live lease evicted under active stepping: %v", err)
		}
		time.Sleep(15 * time.Millisecond)
	}
	l.Close()
}

// TestLeaseDrain checks the drain contract: a step waiting for a build
// slot aborts with ErrDraining instead of deadlocking against Drain's
// slot seizure, and every lease's Done fires.
func TestLeaseDrain(t *testing.T) {
	e := New(Options{MaxActive: 1})
	l, err := e.OpenLease(testStepper(t, 200, 1, 1), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only build slot with a one-shot session.
	s, err := e.Acquire(context.Background(), Key{Alg: core.ORIG, P: 1})
	if err != nil {
		t.Fatal(err)
	}
	stepErr := make(chan error, 1)
	go func() {
		_, err := l.Step(context.Background(), core.StepInput{})
		stepErr <- err
	}()
	// Give the step time to block on the slot, then drain. Drain cannot
	// seize the slot until the one-shot releases, so the waiting step
	// must be woken by drainCh, not by a token.
	time.Sleep(20 * time.Millisecond)
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- e.Drain(ctx)
	}()
	if err := <-stepErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("step during drain: %v, want ErrDraining", err)
	}
	s.Release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case <-l.Done():
	case <-time.After(time.Second):
		t.Fatal("lease Done did not fire on drain")
	}
	if _, err := e.OpenLease(testStepper(t, 100, 1, 2), time.Minute); !errors.Is(err, ErrDraining) {
		t.Fatalf("open after drain: %v, want ErrDraining", err)
	}
}

// TestLeaseContention hammers the engine from both sides at once —
// streaming sessions stepping and one-shot builds acquiring — to give
// the race detector something to chew on and to check the shared
// MaxActive budget never wedges.
func TestLeaseContention(t *testing.T) {
	const leases, stepsEach, oneShots = 8, 20, 40
	e := New(Options{MaxActive: 4, MaxQueue: 1024, MaxLeases: leases})
	var wg sync.WaitGroup
	for i := 0; i < leases; i++ {
		l, err := e.OpenLease(testStepper(t, 300, 2, int64(i)), time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(l *Lease) {
			defer wg.Done()
			defer l.Close()
			for s := 0; s < stepsEach; s++ {
				l.Stepper().Bodies().Drift(0, 300, 0.01)
				if _, err := l.Step(context.Background(), core.StepInput{}); err != nil {
					t.Errorf("lease step: %v", err)
					return
				}
			}
		}(l)
	}
	for i := 0; i < oneShots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := e.Acquire(context.Background(), Key{Alg: core.SPACE, P: 2})
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			defer s.Release()
			b := phys.Generate(phys.ModelPlummer, 300, int64(i))
			s.Build(&core.Input{Bodies: b, Assign: core.EvenAssign(300, 2)})
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.InUse != 0 || st.Queued != 0 {
		t.Fatalf("quiesced stats: inUse=%d queued=%d, want 0/0", st.InUse, st.Queued)
	}
	if st.LeasesActive != 0 || st.LeasesOpened != leases {
		t.Fatalf("lease stats: active=%d opened=%d, want 0/%d", st.LeasesActive, st.LeasesOpened, leases)
	}
}
