// The flight recorder: a fixed-capacity ring of completed requests, a
// threshold-gated top-K of the slowest, and the partree_req_* metric
// families. The ring write (the per-request hot path) is one atomic
// sequence increment plus one atomic pointer store — no lock — so a
// request burst never serializes on its own observability. The slow
// list and the per-route max exemplar are off the common path (only
// requests past the threshold, only new maxima) and take a small mutex.
package reqtrace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/obs"
)

// Options size a Recorder. Zero values select the documented defaults.
type Options struct {
	// Cap is the ring capacity — how many completed requests
	// /debug/requests can look back on (0 = 256).
	Cap int
	// SlowThreshold gates the slow list: a request at least this slow
	// is counted and retained in /debug/requests/slow (0 = 250ms).
	SlowThreshold time.Duration
	// SlowK bounds the slow list; past it the fastest slow request is
	// evicted (0 = 16).
	SlowK int
}

func (o Options) withDefaults() Options {
	if o.Cap <= 0 {
		o.Cap = 256
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.SlowK <= 0 {
		o.SlowK = 16
	}
	return o
}

// Recorder owns the flight-recorder state for one daemon. A nil
// *Recorder is valid and disables everything: Start returns a nil *Req
// and every downstream hook no-ops.
type Recorder struct {
	opts Options

	ring []atomic.Pointer[Req]
	seq  atomic.Uint64

	inFlight  atomic.Int64
	slowTotal atomic.Int64

	slowMu sync.Mutex
	slow   []*Req

	// maxMu guards the per-route duration maximum — the "poor man's
	// exemplar": the request ID behind the current top of the duration
	// histogram, replaced (not accumulated) when a slower request for
	// the route finishes.
	maxMu sync.Mutex
	max   map[string]maxEntry

	durSeconds   *obs.Vec[*obs.Histogram]
	queueSeconds *obs.Histogram
}

type maxEntry struct {
	id    string
	durNs int64
}

// NewRecorder creates a flight recorder. The metric instruments are
// created eagerly (like the engine's step histogram) so requests
// observe whether or not RegisterObs was called.
func NewRecorder(o Options) *Recorder {
	o = o.withDefaults()
	return &Recorder{
		opts: o,
		ring: make([]atomic.Pointer[Req], o.Cap),
		max:  map[string]maxEntry{},
		durSeconds: obs.NewHistogramVec("partree_req_duration_seconds",
			"Request duration through the serving path, by route.",
			obs.ExpBuckets(1e-4, 2, 20), "route"),
		queueSeconds: obs.NewHistogram("partree_req_queue_wait_seconds",
			"Time requests spent waiting for an engine build slot.",
			obs.ExpBuckets(1e-5, 2, 20)),
	}
}

// Cap returns the ring capacity (0 on nil).
func (rec *Recorder) Cap() int {
	if rec == nil {
		return 0
	}
	return rec.opts.Cap
}

// Start opens a request. On a nil Recorder it returns a nil *Req — the
// disabled mode every downstream hook understands.
func (rec *Recorder) Start(id, route string) *Req {
	return rec.StartAt(id, route, time.Now())
}

// StartAt is Start with an explicit start time (deterministic tests).
func (rec *Recorder) StartAt(id, route string, t time.Time) *Req {
	if rec == nil {
		return nil
	}
	rec.inFlight.Add(1)
	return &Req{rec: rec, id: id, route: route, start: t}
}

// record publishes a finished request: ring (lock-free), histograms,
// slow list, max exemplar. Called exactly once per Req by FinishAt.
func (rec *Recorder) record(r *Req, dur, queue time.Duration) {
	rec.inFlight.Add(-1)
	// Sequence numbers start at 1; slot i of epoch e holds seq e·cap+i+1,
	// so the ring always contains the last Cap finished requests and
	// renderers sort by seq to recover completion order.
	seq := rec.seq.Add(1)
	r.seq = seq
	rec.ring[int((seq-1)%uint64(len(rec.ring)))].Store(r)

	rec.durSeconds.With(r.route).Observe(dur.Seconds())
	rec.queueSeconds.Observe(queue.Seconds())

	rec.maxMu.Lock()
	if m := rec.max[r.route]; dur.Nanoseconds() > m.durNs {
		rec.max[r.route] = maxEntry{id: r.id, durNs: dur.Nanoseconds()}
	}
	rec.maxMu.Unlock()

	if dur >= rec.opts.SlowThreshold {
		rec.slowTotal.Add(1)
		rec.slowMu.Lock()
		rec.slow = append(rec.slow, r)
		if len(rec.slow) > rec.opts.SlowK {
			// Evict the fastest (oldest on ties): the list holds the
			// top-K by duration.
			min := 0
			for i := 1; i < len(rec.slow); i++ {
				if rec.slow[i].durNs < rec.slow[min].durNs {
					min = i
				}
			}
			rec.slow = append(rec.slow[:min], rec.slow[min+1:]...)
		}
		rec.slowMu.Unlock()
	}
}

// Snapshot returns the ring's completed requests, newest first.
func (rec *Recorder) Snapshot() []*Req {
	if rec == nil {
		return nil
	}
	out := make([]*Req, 0, len(rec.ring))
	for i := range rec.ring {
		if r := rec.ring[i].Load(); r != nil {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// Slow returns the retained slowest requests, slowest first (newest
// first on ties).
func (rec *Recorder) Slow() []*Req {
	if rec == nil {
		return nil
	}
	rec.slowMu.Lock()
	out := make([]*Req, len(rec.slow))
	copy(out, rec.slow)
	rec.slowMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].durNs != out[j].durNs {
			return out[i].durNs > out[j].durNs
		}
		return out[i].seq > out[j].seq
	})
	return out
}

// Lookup finds a completed request by ID — the ring first (newest
// match wins), then the slow list, which outlives ring wrap for the
// requests most worth debugging.
func (rec *Recorder) Lookup(id string) *Req {
	if rec == nil {
		return nil
	}
	var best *Req
	for i := range rec.ring {
		if r := rec.ring[i].Load(); r != nil && r.id == id {
			if best == nil || r.seq > best.seq {
				best = r
			}
		}
	}
	if best != nil {
		return best
	}
	rec.slowMu.Lock()
	defer rec.slowMu.Unlock()
	for _, r := range rec.slow {
		if r.id == id && (best == nil || r.seq > best.seq) {
			best = r
		}
	}
	return best
}

// InFlight returns the number of started-but-unfinished requests.
func (rec *Recorder) InFlight() int64 {
	if rec == nil {
		return 0
	}
	return rec.inFlight.Load()
}

// SlowTotal returns the number of requests that crossed SlowThreshold.
func (rec *Recorder) SlowTotal() int64 {
	if rec == nil {
		return 0
	}
	return rec.slowTotal.Load()
}

// RegisterObs attaches the partree_req_* families to reg:
//
//	partree_req_duration_seconds{route}            histogram
//	partree_req_queue_wait_seconds                 histogram
//	partree_req_in_flight                          gauge
//	partree_req_slow_total                         counter
//	partree_req_duration_max_seconds{route,request_id}  gauge (exemplar)
func (rec *Recorder) RegisterObs(reg *obs.Registry) error {
	return reg.Register(
		rec.durSeconds,
		rec.queueSeconds,
		obs.NewGaugeFunc("partree_req_in_flight",
			"Requests currently being served.",
			func() float64 { return float64(rec.inFlight.Load()) }),
		obs.NewCounterFunc("partree_req_slow_total",
			"Requests that crossed the slow threshold.",
			func() float64 { return float64(rec.slowTotal.Load()) }),
		maxCollector{rec: rec},
	)
}

// maxCollector renders the per-route duration maximum with the request
// ID as a label — the cheapest possible exemplar: the one request
// behind the histogram's current top, addressable in /debug/requests.
type maxCollector struct{ rec *Recorder }

func (c maxCollector) Collect(out []obs.Family) []obs.Family {
	c.rec.maxMu.Lock()
	routes := make([]string, 0, len(c.rec.max))
	for route := range c.rec.max {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	series := make([]obs.Series, 0, len(routes))
	for _, route := range routes {
		m := c.rec.max[route]
		series = append(series, obs.Series{
			Labels: []obs.Label{{Name: "request_id", Value: m.id}, {Name: "route", Value: route}},
			Value:  float64(m.durNs) / 1e9,
		})
	}
	c.rec.maxMu.Unlock()
	return append(out, obs.Family{
		Name:   "partree_req_duration_max_seconds",
		Help:   "Slowest request seen per route, with its request ID (exemplar).",
		Type:   obs.TypeGauge,
		Series: series,
	})
}
