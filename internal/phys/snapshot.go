package phys

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"partree/internal/vec"
)

// Snapshot I/O: a compact binary format for checkpointing and restarting
// simulations. Layout: magic, version, body count, then per-body records
// (pos, vel, acc, mass, cost), all little-endian float64/int64.

const (
	snapshotMagic   = uint64(0x7061727472656531) // "partree1"
	snapshotVersion = uint32(1)
)

// WriteSnapshot serializes the bodies to w.
func (b *Bodies) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []any{snapshotMagic, snapshotVersion, uint64(b.N())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("phys: snapshot header: %w", err)
		}
	}
	for i := 0; i < b.N(); i++ {
		rec := [11]float64{
			b.Pos[i].X, b.Pos[i].Y, b.Pos[i].Z,
			b.Vel[i].X, b.Vel[i].Y, b.Vel[i].Z,
			b.Acc[i].X, b.Acc[i].Y, b.Acc[i].Z,
			b.Mass[i],
			float64(b.Cost[i]),
		}
		if err := binary.Write(bw, binary.LittleEndian, rec[:]); err != nil {
			return fmt.Errorf("phys: snapshot body %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a body set written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Bodies, error) {
	br := bufio.NewReader(r)
	var magic uint64
	var version uint32
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("phys: snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("phys: not a partree snapshot (magic %#x)", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("phys: snapshot version: %w", err)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("phys: unsupported snapshot version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("phys: snapshot count: %w", err)
	}
	const maxBodies = 1 << 28
	if n > maxBodies {
		return nil, fmt.Errorf("phys: snapshot claims %d bodies (corrupt?)", n)
	}
	b := NewBodies(int(n))
	var rec [11]float64
	for i := 0; i < int(n); i++ {
		if err := binary.Read(br, binary.LittleEndian, rec[:]); err != nil {
			return nil, fmt.Errorf("phys: snapshot body %d: %w", i, err)
		}
		b.Pos[i] = vec.V3{X: rec[0], Y: rec[1], Z: rec[2]}
		b.Vel[i] = vec.V3{X: rec[3], Y: rec[4], Z: rec[5]}
		b.Acc[i] = vec.V3{X: rec[6], Y: rec[7], Z: rec[8]}
		b.Mass[i] = rec[9]
		b.Cost[i] = int64(rec[10])
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("phys: snapshot contents invalid: %w", err)
	}
	return b, nil
}

// SaveSnapshot writes the bodies to the named file.
func (b *Bodies) SaveSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshot reads a body set from the named file.
func LoadSnapshot(path string) (*Bodies, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
