package memsim

import "testing"

func hlrcTest() Platform {
	return Platform{
		Name: "hlrc-test", Kind: HLRC,
		CycleNs: 1, HitNs: 1, PageSize: 4096, LineSize: 64,
		MsgNs: 1000, PageXferNs: 500, SoftNs: 100, TwinNs: 50, DiffNs: 80, NoticeNs: 10,
		BarrierBase: 100, BarrierPerP: 10,
	}
}

// addrOnPage returns an address on the given page, homed by default at
// page % P.
func addrOnPage(page int) uint64 { return uint64(page)*4096 + 8 }

func TestHLRCNoProtocolTrafficWithoutSync(t *testing.T) {
	// Writes to valid pages cost nothing until a release point.
	e := NewEngine(hlrcTest(), 2)
	res := e.Run(func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Write(addrOnPage(p.ID*10 + i%3))
		}
	})
	if res.Protocol.PageFaults != 0 {
		t.Fatalf("page faults before any sync: %d", res.Protocol.PageFaults)
	}
	// Twins only on non-home pages.
	if res.Protocol.Twins == 0 {
		t.Fatal("expected twins for non-home writes")
	}
}

func TestHLRCInvalidationAtAcquire(t *testing.T) {
	// Proc 0 writes a page under a lock; proc 1 then acquires the same
	// lock and must fault on its next access to that page. The page is
	// homed at a third processor so the writer needs a twin + diff and
	// the reader is not the home.
	e := NewEngine(hlrcTest(), 3)
	e.Memory().SetHome(0, 4096, 2) // page 0 homed at proc 2
	res := e.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Lock(1)
			p.Write(addrOnPage(0))
			p.Unlock(1)
			p.Barrier("end")
		case 1:
			p.Compute(100000) // ensure proc 0 gets the lock first
			p.Lock(1)
			p.Read(addrOnPage(0)) // must fault: invalidated by notice
			p.Unlock(1)
			p.Barrier("end")
		default:
			p.Barrier("end")
		}
	})
	if res.Protocol.WriteNotices == 0 {
		t.Fatal("no write notices applied at acquire")
	}
	if res.Protocol.PageFaults == 0 {
		t.Fatal("no page fault after invalidation")
	}
	if res.Protocol.Diffs == 0 {
		t.Fatal("no diff flushed at release")
	}
}

func TestHLRCHomeNeverFaults(t *testing.T) {
	e := NewEngine(hlrcTest(), 2)
	e.Memory().SetHome(0, 4096, 1) // page 0 homed at proc 1
	res := e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Lock(1)
			p.Write(addrOnPage(0))
			p.Unlock(1)
			p.Barrier("end")
		} else {
			p.Compute(100000)
			p.Lock(1)
			p.Read(addrOnPage(0)) // home copy: no fault
			p.Unlock(1)
			p.Barrier("end")
		}
	})
	if res.Protocol.PageFaults != 0 {
		t.Fatalf("home node faulted: %d", res.Protocol.PageFaults)
	}
}

func TestHLRCBarrierPropagatesWrites(t *testing.T) {
	e := NewEngine(hlrcTest(), 4)
	res := e.Run(func(p *Proc) {
		p.Write(addrOnPage(100 + p.ID)) // each proc dirties its own page
		p.Barrier("flush")
		p.Read(addrOnPage(100 + (p.ID+1)%4)) // read a neighbour's page
		p.Barrier("end")
	})
	// 3 of 4 reads hit non-home invalidated pages (one reader is home).
	if res.Protocol.PageFaults < 2 {
		t.Fatalf("page faults = %d, want ≥ 2", res.Protocol.PageFaults)
	}
	if res.Protocol.WriteNotices == 0 {
		t.Fatal("no notices at barrier")
	}
}

func TestHLRCLazyNoInvalidationWithoutAcquire(t *testing.T) {
	// LRC: a write by proc 0 does NOT invalidate proc 1's copy until
	// proc 1 synchronizes with proc 0.
	e := NewEngine(hlrcTest(), 2)
	e.Memory().SetHome(0, 4096, 0)
	res := e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Lock(1)
			p.Write(addrOnPage(0))
			p.Unlock(1)
		} else {
			p.Read(addrOnPage(0)) // concurrent read: stays valid, no fault
			p.Read(addrOnPage(0))
		}
	})
	if res.Protocol.PageFaults != 0 {
		t.Fatalf("eager invalidation happened: %d faults", res.Protocol.PageFaults)
	}
}

func TestHLRCCriticalSectionDilation(t *testing.T) {
	// A page fault inside a critical section extends every waiter's
	// lock wait: compare a run whose critical section faults against
	// one whose doesn't.
	run := func(fault bool) float64 {
		e := NewEngine(hlrcTest(), 3)
		e.Memory().SetHome(0, 2*4096, 0)
		res := e.Run(func(p *Proc) {
			if p.ID == 0 {
				// Dirty the page others will touch in their critical
				// sections.
				p.Lock(9)
				if fault {
					p.Write(addrOnPage(1))
				}
				p.Unlock(9)
				p.Barrier("go")
				p.Barrier("end")
				return
			}
			p.Barrier("go")
			p.Lock(9)
			p.Read(addrOnPage(1)) // faults iff proc 0 dirtied it
			p.Compute(10)
			p.Unlock(9)
			p.Barrier("end")
		})
		return res.TotalLockWait()
	}
	with, without := run(true), run(false)
	if with <= without {
		t.Fatalf("no dilation: wait with fault %v <= without %v", with, without)
	}
}

func TestDirectoryLocalVsRemote(t *testing.T) {
	pl := Origin2000(4)
	e := NewEngine(pl, 4)
	e.Memory().SetHome(0, 1<<20, 0) // everything homed at node 0
	res := e.Run(func(p *Proc) {
		p.Read(uint64(p.ID) * 4096) // distinct pages, all homed node 0
	})
	if res.Protocol.LocalMisses == 0 || res.Protocol.RemoteMisses == 0 {
		t.Fatalf("want both local and remote misses: %+v", res.Protocol)
	}
	// Node 0's procs (0,1) should finish before remote ones on average.
	if res.PerProc[0].MemNs >= res.PerProc[3].MemNs {
		t.Fatalf("local access %v not cheaper than remote %v",
			res.PerProc[0].MemNs, res.PerProc[3].MemNs)
	}
}

func TestFineGrainSCPaysSoftwareOverhead(t *testing.T) {
	sc := TyphoonSC()
	e1 := NewEngine(sc, 2)
	r1 := e1.Run(func(p *Proc) { p.Read(uint64(p.ID) * 4096) })
	or := Origin2000(2)
	e2 := NewEngine(or, 2)
	r2 := e2.Run(func(p *Proc) { p.Read(uint64(p.ID) * 4096) })
	if r1.Time <= r2.Time {
		t.Fatalf("software SC %v not slower than hardware directory %v", r1.Time, r2.Time)
	}
}

func TestHLRCLocksDearerThanDirectoryLocks(t *testing.T) {
	// The paper's central observation, in miniature: the same lock-heavy
	// program is far slower under HLRC than under hardware coherence.
	prog := func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Lock(3)
			p.Write(addrOnPage(0))
			p.Unlock(3)
		}
		p.Barrier("end")
	}
	hl := NewEngine(TyphoonHLRC(), 4).Run(prog)
	dir := NewEngine(Origin2000(4), 4).Run(prog)
	if hl.Time < 5*dir.Time {
		t.Fatalf("HLRC %v not ≫ directory %v for lock-heavy code", hl.Time, dir.Time)
	}
}
