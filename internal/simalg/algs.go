package simalg

import (
	"sort"

	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/trace"
	"partree/internal/vec"
)

// ---- UPDATE -------------------------------------------------------------

// updateMove is UPDATE's incremental step: check every owned body against
// its leaf's refreshed bounds, move only the ones that crossed.
func (st *runState) updateMove(sp *sproc) {
	s := st.store
	pos := st.bodies.Pos
	for _, b := range st.assign[sp.w] {
		lr := octree.Ref(st.bodyLeaf[b])
		sp.mp.Read(sp.st.bodyAddrOf[b])
		if st.visLocks {
			// Under LRC the leaf's current state is only guaranteed
			// visible through an acquire.
			sp.lockNode(lockOf(lr))
		}
		sp.readNode(lr)
		sp.compute(st.cfg.DescendCycles)
		in := s.Leaf(lr).Cube.Contains(pos[b])
		if st.visLocks {
			sp.unlockNode(lockOf(lr))
		}
		if in {
			continue
		}
		parent := sp.remove(b)
		cur := parent
		for {
			c := s.Cell(cur)
			sp.readNode(cur)
			sp.compute(st.cfg.DescendCycles)
			if c.Cube.Contains(pos[b]) || c.Parent.IsNil() {
				break
			}
			cur = c.Parent
		}
		sp.insert(cur, depthOfCube(st.tree, s.Cell(cur).Cube), b)
	}
}

// ---- PARTREE ------------------------------------------------------------

// partreeBuild builds a private local tree (no synchronization at all) and
// merges it into the global tree, cell/subtree at a time.
func (st *runState) partreeBuild(sp *sproc) {
	localRoot, _ := sp.allocCell(st.cube, octree.Nil)
	for _, b := range st.assign[sp.w] {
		sp.insertPrivate(localRoot, 0, b)
	}
	lc := st.store.Cell(localRoot)
	for o := vec.Octant(0); o < vec.NOctants; o++ {
		if ch := lc.Child(o); !ch.IsNil() {
			sp.mergeChild(st.tree.Root, o, ch, 0)
		}
	}
}

// mergeChild merges the private node lc into the global tree under gcell's
// octant o (gcell at depth gdepth). Mirrors core.inserter.mergeChild.
func (sp *sproc) mergeChild(gcell octree.Ref, o vec.Octant, lc octree.Ref, gdepth int) {
	st := sp.st
	s := st.store
	vis := st.visLocks
	for {
		sp.compute(st.cfg.DescendCycles)
		c := s.Cell(gcell)
		if vis {
			sp.lockNode(lockOf(gcell))
		}
		sp.readNode(gcell)
		slot := c.Child(o)
		if vis && !slot.IsNil() {
			sp.unlockNode(lockOf(gcell))
		}
		switch {
		case slot.IsNil():
			if !vis {
				sp.lockNode(lockOf(gcell))
			}
			if !c.Child(o).IsNil() {
				sp.unlockNode(lockOf(gcell))
				continue
			}
			if lc.IsLeaf() {
				s.Leaf(lc).Parent = gcell
			} else {
				s.Cell(lc).Parent = gcell
			}
			c.SetChild(o, lc)
			sp.writeNode(gcell)
			sp.unlockNode(lockOf(gcell))
			return

		case slot.IsLeaf():
			sp.lockNode(lockOf(slot))
			sp.readNode(slot)
			if c.Child(o) != slot {
				sp.unlockNode(lockOf(slot))
				continue
			}
			l := s.Leaf(slot)
			if lc.IsLeaf() {
				ll := s.Leaf(lc)
				if len(l.Bodies)+len(ll.Bodies) <= s.LeafCap || gdepth+2 >= s.MaxDepth {
					l.Bodies = append(l.Bodies, ll.Bodies...)
					sp.writeNode(slot)
					sp.unlockNode(lockOf(slot))
					return
				}
				cr, _ := sp.allocCell(l.Cube, gcell)
				for _, ob := range l.Bodies {
					sp.insertPrivate(cr, gdepth+1, ob)
				}
				for _, ob := range ll.Bodies {
					sp.insertPrivate(cr, gdepth+1, ob)
				}
				l.Retired = true
				c.SetChild(o, cr)
				sp.writeNode(gcell)
				sp.unlockNode(lockOf(slot))
				return
			}
			for _, ob := range l.Bodies {
				sp.insertPrivate(lc, gdepth+1, ob)
			}
			s.Cell(lc).Parent = gcell
			l.Retired = true
			c.SetChild(o, lc)
			sp.writeNode(gcell)
			sp.unlockNode(lockOf(slot))
			return

		default:
			if lc.IsLeaf() {
				for _, ob := range s.Leaf(lc).Bodies {
					sp.insert(slot, gdepth+1, ob)
				}
				return
			}
			lcc := s.Cell(lc)
			for oo := vec.Octant(0); oo < vec.NOctants; oo++ {
				if ch := lcc.Child(oo); !ch.IsNil() {
					sp.mergeChild(slot, oo, ch, gdepth+1)
				}
			}
			return
		}
	}
}

// ---- SPACE --------------------------------------------------------------

// spaceState is the shared state of SPACE's counting/partitioning rounds.
type spaceState struct {
	threshold int
	frontier  []spaceFrontier
	myBodies  [][]int32
	myCell    [][]int32
	counts    [][]int64
	octs      [][]uint8
	newIndex  []int32
	subs      []spaceSub
}

type spaceFrontier struct {
	ref   octree.Ref
	cube  vec.Cube
	depth int
}

type spaceSub struct {
	parent octree.Ref
	oct    vec.Octant
	cube   vec.Cube
	depth  int
	count  int
	owner  int
	bodies []int32
}

func newSpaceState(st *runState) *spaceState {
	p := st.cfg.P
	n := st.bodies.N()
	th := st.cfg.SpaceThreshold
	if th <= 0 {
		th = n / (4 * p)
	}
	if th < st.cfg.LeafCap {
		th = st.cfg.LeafCap
	}
	ss := &spaceState{
		threshold: th,
		frontier:  []spaceFrontier{{st.tree.Root, st.tree.RootCube(), 0}},
		myBodies:  make([][]int32, p),
		myCell:    make([][]int32, p),
		counts:    make([][]int64, p),
		octs:      make([][]uint8, p),
	}
	for w := 0; w < p; w++ {
		ss.myBodies[w] = append([]int32(nil), st.assign[w]...)
		ss.myCell[w] = make([]int32, len(ss.myBodies[w]))
	}
	return ss
}

// spaceBuild runs SPACE's rounds and then builds and attaches the
// processor's subtrees — with zero lock operations.
func (st *runState) spaceBuild(sp *sproc, step int) {
	ss := st.space
	pos := st.bodies.Pos
	p := st.cfg.P
	s := st.store
	// SPACE's counting/subdivision rounds are partition work, not insert
	// work (they are the price it pays for zero locks), so this function
	// emits its own phase split instead of buildPhase's generic one.
	traced := sp.traced()
	vnow := func() int64 { return int64(sp.mp.Now()) }
	bar := func(label string) {
		if traced {
			t0 := vnow()
			sp.mp.Barrier(label)
			sp.tp.SpanAt(trace.PhaseBarrier, t0, vnow())
		} else {
			sp.mp.Barrier(label)
		}
	}
	tPart := vnow()
	round := 0
	for {
		if len(ss.frontier) == 0 {
			break
		}
		f := len(ss.frontier)
		w := sp.w
		// Count my bodies against the frontier (private histogram).
		ss.counts[w] = make([]int64, f*8)
		if cap(ss.octs[w]) < len(ss.myBodies[w]) {
			ss.octs[w] = make([]uint8, len(ss.myBodies[w]))
		}
		ss.octs[w] = ss.octs[w][:len(ss.myBodies[w])]
		for i, b := range ss.myBodies[w] {
			fc := ss.myCell[w][i]
			o := ss.frontier[fc].cube.OctantOf(pos[b])
			ss.octs[w][i] = uint8(o)
			ss.counts[w][int(fc)*8+int(o)]++
		}
		sp.compute(float64(len(ss.myBodies[w])) * st.cfg.CountCycles)
		bar(lbl("scount", step*1000+round))

		// Processor 0 reduces and extends the prefix of the octree.
		if w == 0 {
			st.spaceReduce(sp)
		}
		bar(lbl("sreduce", step*1000+round))

		// Re-bucket my bodies; no barrier needed before the next count,
		// both touch only per-processor state plus the stable frontier.
		st.spaceRebucket(sp)
		sp.compute(float64(len(ss.myBodies[w])) * st.cfg.CountCycles / 2)
		round++
	}

	// Assign subspaces (processor 0) and build them, lock-free.
	if sp.w == 0 {
		assignSpaceSubs(st.tree.RootCube(), ss.subs, p)
	}
	bar(lbl("sassign", step))
	if traced {
		sp.tp.SpanAt(trace.PhasePartition, tPart, vnow())
	}
	tIns := vnow()
	for i := range ss.subs {
		sub := &ss.subs[i]
		if sub.owner != sp.w {
			continue
		}
		var node octree.Ref
		if sub.count <= s.LeafCap || sub.depth >= s.MaxDepth {
			lr, l := sp.allocLeaf(sub.cube, sub.parent)
			l.Bodies = append(l.Bodies, sub.bodies...)
			sp.readChunks(st.bodyAddrs(sub.bodies))
			node = lr
		} else {
			cr, _ := sp.allocCell(sub.cube, sub.parent)
			for _, b := range sub.bodies {
				sp.insertPrivate(cr, sub.depth, b)
			}
			node = cr
		}
		s.Cell(sub.parent).SetChild(sub.oct, node)
		sp.writeNode(sub.parent)
	}
	if traced {
		sp.tp.SpanAt(trace.PhaseInsert, tIns, vnow())
	}
}

// spaceReduce (processor 0) merges the round's histograms, creates prefix
// cells for over-threshold octants and finalizes the rest as subspaces.
// The decisions are published via newIndex encoded into the frontier map:
// handled directly in spaceRebucket through ss fields.
func (st *runState) spaceReduce(sp *sproc) {
	ss := st.space
	p := st.cfg.P
	s := st.store
	f := len(ss.frontier)
	ss.newIndex = make([]int32, f*8)
	var next []spaceFrontier
	for fc := 0; fc < f; fc++ {
		for o := vec.Octant(0); o < vec.NOctants; o++ {
			var total int64
			for w := 0; w < p; w++ {
				total += ss.counts[w][fc*8+int(o)]
			}
			slot := fc*8 + int(o)
			switch {
			case total == 0:
				ss.newIndex[slot] = -1
			case int(total) > ss.threshold && ss.frontier[fc].depth+1 < s.MaxDepth:
				cr, _ := sp.allocCell(ss.frontier[fc].cube.Child(o), ss.frontier[fc].ref)
				s.Cell(ss.frontier[fc].ref).SetChild(o, cr)
				sp.writeNode(ss.frontier[fc].ref)
				ss.newIndex[slot] = int32(len(next))
				next = append(next, spaceFrontier{cr, ss.frontier[fc].cube.Child(o), ss.frontier[fc].depth + 1})
			default:
				ss.newIndex[slot] = int32(-2 - len(ss.subs))
				ss.subs = append(ss.subs, spaceSub{
					parent: ss.frontier[fc].ref,
					oct:    o,
					cube:   ss.frontier[fc].cube.Child(o),
					depth:  ss.frontier[fc].depth + 1,
					count:  int(total),
				})
			}
		}
	}
	ss.frontier = next
	sp.compute(float64(f*8) * st.cfg.CountCycles)
}

// spaceRebucket routes this processor's bodies per the reduce decisions.
func (st *runState) spaceRebucket(sp *sproc) {
	ss := st.space
	w := sp.w
	keepB := ss.myBodies[w][:0]
	keepC := ss.myCell[w][:0]
	for i, b := range ss.myBodies[w] {
		slot := int(ss.myCell[w][i])*8 + int(ss.octs[w][i])
		ni := ss.newIndex[slot]
		switch {
		case ni >= 0:
			keepB = append(keepB, b)
			keepC = append(keepC, ni)
		case ni <= -2:
			k := int(-2 - ni)
			ss.subs[k].bodies = append(ss.subs[k].bodies, b)
		default:
			panic("simalg: body routed to an empty octant")
		}
	}
	ss.myBodies[w] = keepB
	ss.myCell[w] = keepC
}

// assignSpaceSubs assigns subspaces to processors in spatially contiguous
// groups of roughly equal body count: subspaces sort by their Morton key
// (depth-first tree order) and are cut into P cost zones, exactly the
// grouping the paper's Figure 5 draws. Spatial contiguity keeps a
// processor's build bodies — and the tree pages it writes — close to the
// costzones region it will compute forces for, limiting the locality loss
// SPACE trades for its zero locking.
func assignSpaceSubs(root vec.Cube, subs []spaceSub, p int) {
	order := make([]int, len(subs))
	total := 0
	for i := range order {
		order[i] = i
		total += subs[i].count
	}
	sort.Slice(order, func(a, b int) bool {
		ka := partition.MortonKey(root, subs[order[a]].cube.Center)
		kb := partition.MortonKey(root, subs[order[b]].cube.Center)
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	if total == 0 {
		return
	}
	acc := 0
	for _, i := range order {
		w := acc * p / total
		if w >= p {
			w = p - 1
		}
		subs[i].owner = w
		acc += subs[i].count
	}
}
