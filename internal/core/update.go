package core

import (
	"math"
	"time"

	"partree/internal/octree"
	"partree/internal/trace"
	"partree/internal/vec"
)

// updateBuilder implements UPDATE: instead of rebuilding every step, it
// keeps the previous step's tree and moves only the bodies that crossed
// their old leaf's boundary. The tree's *shape* persists across steps
// (cells keep their relative positions); only the root's dimensions — and
// therefore every node's absolute bounds — are refreshed, which is why the
// node structures store their bounds explicitly. A moved body walks up the
// parent links until an enclosing cell is found and is reinserted from
// there with the usual locking; leaves that empty out are reclaimed.
type updateBuilder struct {
	cfg      Config
	store    *octree.Store
	tree     *octree.Tree
	bodyLeaf []uint32
	// insPerProc persists so leaf free-lists survive across steps.
	insPerProc []*inserter
	// lastStep is the Step of the most recent build, so a gap in the
	// sequence (or a body-set swap hiding behind an unchanged count's
	// inverse — a resize on a continuous sequence) is detected instead
	// of silently repairing against a stale bodyLeaf map.
	lastStep int
}

func newUpdate(cfg Config) Builder {
	return &updateBuilder{cfg: cfg, store: octree.NewStore(cfg.P, cfg.LeafCap)}
}

func (ub *updateBuilder) Algorithm() Algorithm { return UPDATE }

// freshReason decides whether this build must start from scratch and
// why; "" means the resident tree can be repaired incrementally.
func (ub *updateBuilder) freshReason(in *Input) string {
	resized := len(ub.bodyLeaf) != in.Bodies.N()
	discontinuous := in.Step != ub.lastStep+1
	switch {
	case ub.tree == nil:
		return FreshFirst
	case in.Rebuild:
		return FreshRequested
	case in.Step == 0:
		return FreshStep0
	case resized && discontinuous:
		return FreshRestart
	case resized:
		return FreshSwap
	case discontinuous:
		return FreshDiscontinuity
	}
	return ""
}

func (ub *updateBuilder) Build(in *Input) (*octree.Tree, *Metrics) {
	p := in.P()
	m := newMetrics(UPDATE, p)
	t, m := ub.build(in, m)
	ub.lastStep = in.Step
	if ub.cfg.DepthStats {
		st := octree.CollectStats(t)
		m.Depth = &DepthStats{MaxLeaf: st.MaxDepth, MeanLeaf: st.AvgDepth, Leaves: st.Leaves}
	}
	return t, m
}

func (ub *updateBuilder) build(in *Input, m *Metrics) (*octree.Tree, *Metrics) {
	p := in.P()
	if reason := ub.freshReason(in); reason != "" {
		m.FreshRebuild = true
		m.FreshReason = reason
		if reason == FreshRequested {
			// A requested rebuild runs inside a live session: take
			// SPACE's zero-lock path so the reset costs no lock traffic.
			ub.rebuildSpace(in, m)
			return ub.tree, m
		}
		ub.bodyLeaf = make([]uint32, in.Bodies.N())
		ub.insPerProc = make([]*inserter, p)
		ub.tree = buildShared(ub.store, in, ub.cfg, m, func(w int) int { return w }, ub.bodyLeaf)
		return ub.tree, m
	}

	s := ub.store
	tree := ub.tree
	pos := in.Bodies.Pos

	// Phase 1: refresh the root bounds and rescale every node's cube;
	// the tree keeps its shape but the space it maps onto breathes.
	tr := ub.cfg.traceStart()
	t0 := time.Now()
	cube := parallelBounds(in, ub.cfg.Margin, tr)
	rescale(tree, cube, p, tr)
	t1 := time.Now()

	// Phase 2: move bodies that crossed their leaf boundary.
	tracedDo(tr, trace.PhaseInsert, p, func(w int) {
		ins := ub.insPerProc[w]
		if ins == nil {
			ins = &inserter{s: s, arena: w, proc: w, bodyLeaf: ub.bodyLeaf}
			ub.insPerProc[w] = ins
		}
		ins.pc = &m.PerP[w]
		ins.tp = tr.Proc(w)
		ins.promoteFreed()
		for _, b := range in.Assign[w] {
			lr := ins.getBodyLeaf(b)
			if s.Leaf(lr).Cube.Contains(pos[b]) {
				continue // still home; the common case
			}
			ins.pc.BodiesMoved++
			parent := ins.remove(b)
			// Walk up until an enclosing cell is found (the root
			// encloses everything by construction).
			cur := parent
			for {
				c := s.Cell(cur)
				if c.Cube.Contains(pos[b]) || c.Parent.IsNil() {
					break
				}
				cur = c.Parent
			}
			ins.insert(cur, depthOf(tree, s.Cell(cur).Cube), b, pos)
		}
		m.PerP[w].BodiesBuilt += int64(len(in.Assign[w]))
	})
	t2 := time.Now()

	mt := traceNow(tr)
	octree.ComputeMomentsParallel(tree, bodyData(in.Bodies), p)
	spanAll(tr, trace.PhaseMoments, mt, p)
	t3 := time.Now()

	m.Timing.Bounds += t1.Sub(t0)
	m.Timing.Insert += t2.Sub(t1)
	m.Timing.Moments += t3.Sub(t2)
	if tr != nil {
		m.Trace = tr.Summarize()
	}
	return tree, m
}

// rebuildSpace discards the resident tree and rebuilds it with SPACE's
// zero-lock spatial partition — the session fallback path. The rebuild
// runs in the builder's own store with inserters that carry the
// persistent bodyLeaf map, so subsequent steps can resume incremental
// repair against the fresh tree.
func (ub *updateBuilder) rebuildSpace(in *Input, m *Metrics) {
	p := in.P()
	s := ub.store
	ub.bodyLeaf = make([]uint32, in.Bodies.N())
	ub.insPerProc = make([]*inserter, p)

	tr := ub.cfg.traceStart()
	t0 := time.Now()
	cube := parallelBounds(in, ub.cfg.Margin, tr)
	s.Reset()
	tree := octree.NewTree(s, 0, 0, cube)
	subs := spacePartition(s, tree, in, spaceThreshold(ub.cfg, in.Bodies.N(), p), m, tr)
	assignSubspaces(tree.RootCube(), subs, p)
	t1 := time.Now()

	spaceAttach(s, in, subs, m, tr, func(w int) *inserter {
		ins := &inserter{s: s, arena: w, proc: w, pc: &m.PerP[w], tp: tr.Proc(w), bodyLeaf: ub.bodyLeaf}
		ub.insPerProc[w] = ins
		return ins
	})
	t2 := time.Now()

	mt := traceNow(tr)
	octree.ComputeMomentsParallel(tree, bodyData(in.Bodies), p)
	spanAll(tr, trace.PhaseMoments, mt, p)
	t3 := time.Now()

	m.Timing.Bounds += t1.Sub(t0)
	m.Timing.Insert += t2.Sub(t1)
	m.Timing.Moments += t3.Sub(t2)
	if tr != nil {
		m.Trace = tr.Summarize()
	}
	ub.tree = tree
}

// depthOf recovers a node's depth from its cube size: cubes halve exactly
// at every level, so the ratio to the root size is a power of two.
func depthOf(t *octree.Tree, c vec.Cube) int {
	root := t.RootCube()
	return int(math.Round(math.Log2(root.Size / c.Size)))
}

// rescale rewrites every live node's cube after the root was resized:
// proc 0 handles the top two levels, then the depth-2 subtrees are fanned
// out across processors.
func rescale(t *octree.Tree, root vec.Cube, p int, tr *trace.Recorder) {
	s := t.Store
	rc := s.Cell(t.Root)
	rc.Cube = root

	type job struct {
		ref  octree.Ref
		cube vec.Cube
	}
	var jobs []job
	for o := vec.Octant(0); o < vec.NOctants; o++ {
		ch := rc.Child(o)
		if ch.IsNil() {
			continue
		}
		cc := root.Child(o)
		if ch.IsLeaf() {
			s.Leaf(ch).Cube = cc
			continue
		}
		c := s.Cell(ch)
		c.Cube = cc
		for oo := vec.Octant(0); oo < vec.NOctants; oo++ {
			if g := c.Child(oo); !g.IsNil() {
				jobs = append(jobs, job{g, cc.Child(oo)})
			}
		}
	}
	tracedDo(tr, trace.PhasePartition, p, func(w int) {
		for i := w; i < len(jobs); i += p {
			var rec func(r octree.Ref, cube vec.Cube)
			rec = func(r octree.Ref, cube vec.Cube) {
				if r.IsLeaf() {
					s.Leaf(r).Cube = cube
					return
				}
				c := s.Cell(r)
				c.Cube = cube
				for o := vec.Octant(0); o < vec.NOctants; o++ {
					if ch := c.Child(o); !ch.IsNil() {
						rec(ch, cube.Child(o))
					}
				}
			}
			rec(jobs[i].ref, jobs[i].cube)
		}
	})
}
