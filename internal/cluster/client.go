package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ClientOptions tune one shard client. The zero value selects the
// defaults below.
type ClientOptions struct {
	// Timeout bounds each attempt (not the whole call); a retried call
	// restarts the clock.
	Timeout time.Duration
	// Retries is how many extra attempts follow a transport failure.
	// HTTP-level errors (4xx/5xx) are answers, not failures, and are
	// never retried: a 503 means the shard chose to reject, and retrying
	// would defeat its admission control.
	Retries int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	return o
}

// StatusError is a non-2xx answer from a shard: the status code plus the
// error text from its JSON error document (or raw body). It is a
// deliberate response, carried as an error so callers can branch on the
// code (409 version conflict, 421 misdirect, 503 admission) without
// string matching.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("shard answered %d: %s", e.Code, e.Msg)
}

// Client speaks to one shard with per-attempt timeouts, transport-only
// retries, and a consecutive-failure health count the router exports per
// shard.
type Client struct {
	id    string
	base  string // http://host:port
	hc    *http.Client
	opts  ClientOptions
	fails atomic.Int64 // consecutive transport failures; 0 = healthy
}

// NewClient builds a client for one shard address.
func NewClient(id, addr string, o ClientOptions) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{id: id, base: strings.TrimSuffix(base, "/"), hc: &http.Client{}, opts: o.withDefaults()}
}

// ID returns the shard ID this client fronts.
func (c *Client) ID() string { return c.id }

// Healthy reports whether the last attempt reached the shard.
func (c *Client) Healthy() bool { return c.fails.Load() == 0 }

// ConsecutiveFailures returns the current transport-failure streak.
func (c *Client) ConsecutiveFailures() int64 { return c.fails.Load() }

// Call POSTs (or GETs, with nil in) a JSON document and decodes the JSON
// answer into out (skipped when out is nil). Transport failures are
// retried up to Retries times with a fresh per-attempt timeout; a non-2xx
// status returns a *StatusError carrying the shard's error text.
func (c *Client) Call(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("shard %s: encoding request: %w", c.id, err)
		}
	}
	var last error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("shard %s: %w", c.id, err)
		}
		err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			c.fails.Store(0)
			return nil
		}
		var se *StatusError
		if isStatus := asStatusError(err, &se); isStatus {
			// An HTTP answer means the shard is reachable and chose this
			// response; it is final and counts as healthy transport.
			c.fails.Store(0)
			return err
		}
		c.fails.Add(1)
		last = err
	}
	return fmt.Errorf("shard %s: %w", c.id, last)
}

func asStatusError(err error, out **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*out = se
	}
	return ok
}

func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return &StatusError{Code: resp.StatusCode, Msg: errorText(resp.Body)}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// errorText extracts the "error" field of a JSON error document, falling
// back to the raw (truncated) body.
func errorText(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &doc) == nil && doc.Error != "" {
		return doc.Error
	}
	return strings.TrimSpace(string(b))
}

// Metrics scrapes the shard's Prometheus exposition page into a flat
// series-line → value view (labels kept verbatim in the key), the form
// the router's rollup collector sums.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.fails.Add(1)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard %s: GET /metrics: %s", c.id, resp.Status)
	}
	c.fails.Store(0)
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}
