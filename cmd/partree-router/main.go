// Command partree-router fronts a fleet of partreed shard daemons: it
// loads the addressed Morton-order shard map, fans /v1/build and
// /v1/sweep out to every shard, merges the per-shard results under the
// tree-metric conservation laws, routes cross-shard body moves through
// the handoff protocol, and serves the aggregated partree_cluster_*
// metrics rolled up from each shard's /metrics page.
//
// Usage:
//
//	partree-router -map cluster.json [-addr 127.0.0.1:9733]
//	partree-router -shards 127.0.0.1:9732,127.0.0.1:9742 [-domain-size 4]
//
// Exactly one of -map (an addressed map file, the deployment's source
// of truth) or -shards (a comma-separated address list, from which a
// uniform map is derived) must be given. The shard daemons must run the
// same map version — the router surfaces their 409s verbatim.
//
// Endpoints:
//
//	POST /v1/build  one runner.Spec (JSON) → merged ClusterResult (JSON)
//	POST /v1/sweep  a JSON array of specs → NDJSON stream of merged
//	                results, strictly in input order
//	POST /v1/move   {"body": N, "pos": [x,y,z]} → routed move/handoff
//	GET  /v1/map    the addressed shard map
//	GET  /metrics   router counters + partree_cluster_* fleet rollup
//	GET  /healthz   liveness
//
// A shard's admission 503 becomes the cluster's 503 (the slowest
// rejecting shard's reason); a dead shard turns its
// partree_cluster_shard_up gauge to 0 and fails builds with 502.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"partree/internal/cluster"
	"partree/internal/obs"
)

func buildMap(mapFile, shards string, version int, domainSize float64) (cluster.Map, error) {
	switch {
	case mapFile != "" && shards != "":
		return cluster.Map{}, fmt.Errorf("give -map or -shards, not both")
	case mapFile != "":
		return cluster.ReadMap(mapFile)
	case shards != "":
		addrs := strings.Split(shards, ",")
		m := cluster.UniformMap(version, cluster.Domain{Size: domainSize}, len(addrs))
		for i, a := range addrs {
			a = strings.TrimSpace(a)
			if a == "" {
				return cluster.Map{}, fmt.Errorf("-shards entry %d is empty", i)
			}
			m.Shards[i].Addr = a
		}
		return m, nil
	default:
		return cluster.Map{}, fmt.Errorf("one of -map or -shards is required")
	}
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9733", "listen address for the API and observability endpoints")
		mapFile    = flag.String("map", "", "addressed shard map file (JSON; see internal/cluster)")
		shards     = flag.String("shards", "", "comma-separated shard addresses; derives a uniform map instead of -map")
		version    = flag.Int("map-version", 1, "map version stamped on a -shards derived map")
		domainSize = flag.Float64("domain-size", 4, "domain cube edge for a -shards derived map (centered at the origin)")
		timeout    = flag.Duration("shard-timeout", 30*time.Second, "per-attempt timeout for shard calls")
		retries    = flag.Int("shard-retries", 1, "transport-failure retries per shard call (HTTP errors are never retried)")
		sweepC     = flag.Int("sweep-concurrency", 4, "cluster builds a sweep runs concurrently")
		scrapeT    = flag.Duration("scrape-timeout", 2*time.Second, "per-shard /metrics scrape timeout for the rollup")
		level      = flag.String("v", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*level)); err != nil {
		fmt.Fprintf(os.Stderr, "partree-router: bad -v level %q\n", *level)
		os.Exit(2)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})).
		With("bin", "partree-router"))

	m, err := buildMap(*mapFile, *shards, *version, *domainSize)
	if err != nil {
		slog.Error("building shard map", "err", err)
		os.Exit(2)
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Map:              m,
		Client:           cluster.ClientOptions{Timeout: *timeout, Retries: *retries},
		SweepConcurrency: *sweepC,
		ScrapeTimeout:    *scrapeT,
	})
	if err != nil {
		slog.Error("building router", "err", err)
		os.Exit(1)
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	if err := rt.RegisterObs(reg); err != nil {
		slog.Error("registering metrics", "err", err)
		os.Exit(1)
	}
	srv, err := obs.ServeWith(*addr, "partree-router", reg,
		func() bool { return true }, func(mux *http.ServeMux) { rt.Mount(mux, nil) })
	if err != nil {
		slog.Error("starting server", "err", err)
		os.Exit(1)
	}
	slog.Info("serving", "addr", srv.Addr(), "url", srv.URL(),
		"map_version", m.Version, "shards", len(m.Shards))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	slog.Info("shutting down", "signal", s.String())
	srv.Close()
}
