// Streaming simulation sessions: POST /v1/session holds one NDJSON
// stream per resident tree. The client's first record opens the session
// (body model, processors, fallback policy); every following record is
// one timestep. The server pins an UPDATE builder into an engine lease,
// keeps the tree resident between records, and answers each step with
// an in-stream result record — update-vs-rebuild mode, churn, depth
// skew, and whether the auto-fallback policy forced a fresh SPACE
// rebuild. Errors and backpressure travel in-stream too: only lease
// exhaustion and drain before the stream opens answer 503.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"partree/internal/adapt"
	"partree/internal/core"
	"partree/internal/engine"
	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/reqtrace"
)

// maxSessionBodies bounds a single session's body count; a streamed
// request must not be able to allocate unbounded server memory.
const maxSessionBodies = 4 << 20

// sessionOpen is the stream's first client record.
type sessionOpen struct {
	Procs   int `json:"procs"`
	Bodies  int `json:"bodies"`
	LeafCap int `json:"leaf_cap"`
	// Model is any phys scenario model (plummer, uniform, twoclusters,
	// disk, hierarchical); empty selects the daemon's -session-model.
	Model string  `json:"model"`
	Seed  int64   `json:"seed"`
	Dt    float64 `json:"dt"` // drift timestep for {"drift":true} records
	// Check verifies every step's tree against the octree invariants
	// (canonical vs a serial rebuild on fresh steps) before answering.
	Check bool `json:"check"`
	// Adaptive turns on measured-cost adaptive partitioning for this
	// session: each step's traced phase times feed a cost ledger that
	// corrects the next step's costzones cut, and a tuner may retune
	// build knobs mid-session. The daemon's -adaptive flag turns it on
	// for every session.
	Adaptive      bool  `json:"adaptive"`
	IdleTimeoutMs int64 `json:"idle_timeout_ms"`
	Policy        struct {
		MaxChurnFrac float64 `json:"max_churn_frac"`
		MaxDepthSkew float64 `json:"max_depth_skew"`
		Streak       int     `json:"streak"`
		MinSteps     int     `json:"min_steps"`
	} `json:"policy"`
}

// sessionStep is one client timestep record. Exactly one body mutation
// (pos, drift, collapse) is typical but none is required: an empty
// record re-times the tree over unchanged bodies.
type sessionStep struct {
	// Pos overwrites every body position (length must equal the
	// session's body count) — the client drives the motion.
	Pos [][3]float64 `json:"pos,omitempty"`
	// Drift advances positions by the session dt along current
	// velocities — cheap server-side evolution.
	Drift bool `json:"drift,omitempty"`
	// Collapse pulls bodies toward the origin with a free-fall-like
	// profile (outer shells fall faster): r ← r/(1+c·|r|). A synthetic
	// high-churn workload for exercising the fallback policy.
	Collapse float64 `json:"collapse,omitempty"`
	// Rebuild forces a fresh SPACE rebuild this step.
	Rebuild bool `json:"rebuild,omitempty"`
	// Close ends the session after acknowledging.
	Close bool `json:"close,omitempty"`
}

// Server→client records. Every stream line carries "event".
type sessionOpened struct {
	Event   string `json:"event"` // "opened"
	N       int    `json:"n"`
	Procs   int    `json:"procs"`
	LeafCap int    `json:"leaf_cap"`
	IdleMs  int64  `json:"idle_ms"`
}

type sessionStepResult struct {
	Event string `json:"event"` // "step"
	Step  int    `json:"step"`
	// Mode is "update" (incremental repair) or "rebuild" (fresh build).
	Mode string `json:"mode"`
	// Reason names why a rebuild step started fresh ("" on updates).
	Reason string `json:"reason,omitempty"`
	// Fallback marks a rebuild forced by the auto-fallback policy.
	Fallback bool `json:"fallback,omitempty"`
	// Retuned marks a rebuild caused by the adaptive tuner changing a
	// build knob (adaptive sessions only).
	Retuned   bool    `json:"retuned,omitempty"`
	Moved     int64   `json:"moved"`
	Churn     float64 `json:"churn"`
	DepthSkew float64 `json:"depth_skew"`
	Locks     int64   `json:"locks"`
	BuildNs   int64   `json:"build_ns"`
	Verified  bool    `json:"verified,omitempty"`
	// Timing is this step's station breakdown — the in-stream
	// equivalent of /v1/build's Server-Timing header.
	Timing *stepTiming `json:"timing,omitempty"`
}

// stepTiming is one step's latency breakdown in fractional
// milliseconds: build-slot queue wait, tree build (bounds+insert),
// moments pass, and total wall time as the handler saw it.
type stepTiming struct {
	QueueMs   float64 `json:"queue_ms"`
	BuildMs   float64 `json:"build_ms"`
	MomentsMs float64 `json:"moments_ms"`
	TotalMs   float64 `json:"total_ms"`
}

type sessionClosed struct {
	Event     string `json:"event"` // "closed"
	Steps     int    `json:"steps"`
	Fallbacks int    `json:"fallbacks"`
	Reason    string `json:"reason,omitempty"`
}

type sessionError struct {
	Event string `json:"event"` // "error"
	Error string `json:"error"`
}

func (o *sessionOpen) validate() (phys.Model, error) {
	if o.Bodies <= 0 || o.Bodies > maxSessionBodies {
		return 0, fmt.Errorf("bodies must be in 1..%d, got %d", maxSessionBodies, o.Bodies)
	}
	if o.Procs <= 0 {
		o.Procs = 1
	}
	if o.Procs > 4*runtime.GOMAXPROCS(0) {
		return 0, fmt.Errorf("procs %d exceeds 4x GOMAXPROCS", o.Procs)
	}
	if o.LeafCap <= 0 {
		o.LeafCap = 8
	}
	if o.Dt == 0 {
		o.Dt = 0.01
	}
	model, ok := phys.ParseModel(o.Model)
	if !ok {
		return 0, fmt.Errorf("unknown model %q", o.Model)
	}
	return model, nil
}

// handleSession serves one streaming session (NDJSON both ways over one
// HTTP/1.1 exchange; EnableFullDuplex lets responses interleave with
// request-body reads).
func (d *daemon) handleSession(w http.ResponseWriter, req *http.Request) {
	// A pre-stream rejection must close the connection: the client is
	// still streaming its request body, and the server's usual
	// keep-alive body drain would deadlock against a client that waits
	// for the response before closing its side.
	reject := func(code int, msg string) {
		w.Header().Set("Connection", "close")
		httpError(w, code, msg)
	}
	if req.Method != http.MethodPost {
		reject(http.StatusMethodNotAllowed, "POST an NDJSON session stream")
		return
	}
	if d.draining.Load() {
		reject(http.StatusServiceUnavailable, engine.ErrDraining.Error())
		return
	}
	dec := json.NewDecoder(req.Body)
	var open sessionOpen
	if err := dec.Decode(&open); err != nil {
		reject(http.StatusBadRequest, fmt.Sprintf("parsing open record: %v", err))
		return
	}
	if open.Model == "" {
		open.Model = d.cfg.sessionModel
	}
	model, err := open.validate()
	if err != nil {
		reject(http.StatusBadRequest, err.Error())
		return
	}

	bodies := phys.Generate(model, open.Bodies, open.Seed)
	cfg := core.Config{P: open.Procs, LeafCap: open.LeafCap}
	policy := core.FallbackPolicy{
		MaxChurnFrac: open.Policy.MaxChurnFrac,
		MaxDepthSkew: open.Policy.MaxDepthSkew,
		Streak:       open.Policy.Streak,
		MinSteps:     open.Policy.MinSteps,
	}
	var st *core.Stepper
	if open.Adaptive || d.cfg.adaptive {
		st = core.NewAdaptiveStepper(cfg, bodies, policy,
			adapt.NewController(cfg, adapt.Options{}))
	} else {
		st = core.NewStepper(cfg, bodies, policy)
	}
	lease, err := d.eng.OpenLease(st, time.Duration(open.IdleTimeoutMs)*time.Millisecond)
	if err != nil {
		// The only post-validation errors before the stream opens: lease
		// capacity and drain. Both are 503 — the backpressure contract.
		reject(http.StatusServiceUnavailable, err.Error())
		return
	}
	defer lease.Close()
	// The request's span handle (nil when tracing is disabled): each
	// step's slot wait and build land on it via lease.Step, and the
	// whole stream finishes as one flight-recorder entry.
	rq := reqtrace.FromContext(req.Context())

	// From here on every outcome is an in-stream record on a 200.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v)
		rc.Flush()
	}
	idle := time.Duration(open.IdleTimeoutMs) * time.Millisecond
	if idle <= 0 {
		idle = d.cfg.sessionIdle
	}
	emit(sessionOpened{Event: "opened", N: bodies.N(), Procs: open.Procs,
		LeafCap: open.LeafCap, IdleMs: idle.Milliseconds()})

	// Reader goroutine: the handler must keep serving lease-side events
	// (idle eviction, drain) while no client record is in flight, so the
	// blocking Decode lives on its own goroutine. It exits on stream end
	// or when the handler returns (the server closes req.Body).
	type stepOrErr struct {
		step sessionStep
		err  error
	}
	records := make(chan stepOrErr)
	go func() {
		defer close(records)
		for {
			var s sessionStep
			err := dec.Decode(&s)
			if err != nil {
				if !errors.Is(err, io.EOF) {
					select {
					case records <- stepOrErr{err: err}:
					case <-lease.Done():
					}
				}
				return
			}
			select {
			case records <- stepOrErr{step: s}:
			case <-lease.Done():
				return
			}
		}
	}()

	steps, fallbacks := 0, 0
	for {
		select {
		case rec, ok := <-records:
			if !ok {
				// Client closed its side (EOF): acknowledge and finish.
				emit(sessionClosed{Event: "closed", Steps: steps, Fallbacks: fallbacks, Reason: "eof"})
				return
			}
			if rec.err != nil {
				emit(sessionError{Event: "error", Error: fmt.Sprintf("parsing step record: %v", rec.err)})
				return
			}
			s := rec.step
			if s.Close {
				emit(sessionClosed{Event: "closed", Steps: steps, Fallbacks: fallbacks, Reason: "close"})
				return
			}
			if s.Pos != nil && len(s.Pos) != bodies.N() {
				emit(sessionError{Event: "error",
					Error: fmt.Sprintf("pos has %d entries, session has %d bodies", len(s.Pos), bodies.N())})
				return
			}
			applyStepMutation(bodies, s, open.Dt)
			// Queue wait is measured as the request-level accumulator's
			// delta across the step (the engine stamps slot waits onto
			// the span context); zero when tracing is disabled.
			q0, _, _, _ := rq.Breakdown()
			stepStart := time.Now()
			res, err := lease.Step(req.Context(), core.StepInput{Rebuild: s.Rebuild})
			stepWall := time.Since(stepStart)
			if err != nil {
				emit(sessionError{Event: "error", Error: err.Error()})
				return
			}
			q1, _, _, _ := rq.Breakdown()
			t := res.Metrics.Timing
			out := sessionStepResult{
				Event:     "step",
				Step:      res.Step,
				Mode:      "update",
				Reason:    res.Reason,
				Fallback:  res.Fallback,
				Retuned:   res.Retuned,
				Moved:     res.Metrics.TotalBodiesMoved(),
				Churn:     res.ChurnFrac,
				DepthSkew: res.DepthSkew,
				Locks:     res.Metrics.TotalLocks(),
				BuildNs:   res.Metrics.Timing.Total().Nanoseconds(),
				Timing: &stepTiming{
					QueueMs:   durMs(q1 - q0),
					BuildMs:   durMs(t.Bounds + t.Insert),
					MomentsMs: durMs(t.Moments),
					TotalMs:   durMs(stepWall),
				},
			}
			if res.Fresh {
				out.Mode = "rebuild"
			}
			if res.Fallback {
				fallbacks++
			}
			if open.Check {
				data := octree.BodyData{Pos: bodies.Pos, Mass: bodies.Mass, Cost: bodies.Cost}
				if err := octree.Check(res.Tree, data,
					octree.CheckOptions{Canonical: res.Fresh, Moments: true, Tol: 1e-9}); err != nil {
					emit(sessionError{Event: "error", Error: fmt.Sprintf("step %d verification: %v", res.Step, err)})
					return
				}
				out.Verified = true
			}
			steps++
			emit(out)

		case <-lease.Done():
			// The server side ended the lease under us: idle eviction or
			// drain. The current step (if any) already finished — the
			// engine closes leases only between steps.
			reason := "draining"
			if lease.Evicted() {
				reason = "idle timeout"
			}
			emit(sessionError{Event: "error", Error: "session closed: " + reason})
			emit(sessionClosed{Event: "closed", Steps: steps, Fallbacks: fallbacks, Reason: reason})
			slog.Debug("session ended by server", "reason", reason, "steps", steps)
			return

		case <-req.Context().Done():
			return
		}
	}
}

// applyStepMutation applies a step record's body motion in place.
func applyStepMutation(b *phys.Bodies, s sessionStep, dt float64) {
	if s.Pos != nil {
		for i, p := range s.Pos {
			b.Pos[i].X, b.Pos[i].Y, b.Pos[i].Z = p[0], p[1], p[2]
		}
	}
	if s.Drift {
		b.Drift(0, b.N(), dt)
	}
	if c := s.Collapse; c > 0 {
		for i := range b.Pos {
			r := b.Pos[i].Len()
			b.Pos[i] = b.Pos[i].Scale(1 / (1 + c*r))
		}
	}
}
