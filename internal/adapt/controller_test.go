package adapt

import (
	"testing"

	"partree/internal/core"
	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/phys"
)

// TestControllerDrivesStepper runs the real loop: an adaptive
// core.Stepper with a Controller in the feedback path, real traced
// builds, real measured times. Asserts the plumbing (every step
// observed and repartitioned, totals advancing, assignments covering)
// rather than timing-dependent balance, which the deterministic skew
// gate owns.
func TestControllerDrivesStepper(t *testing.T) {
	const n, p, steps = 4000, 4, 10
	before := Snapshot()
	b := phys.Generate(phys.ModelPlummer, n, 41)
	cfg := core.Config{P: p, LeafCap: 8}
	ctrl := NewController(cfg, Options{})
	st := core.NewAdaptiveStepper(cfg, b, core.DefaultFallbackPolicy(), ctrl)
	for i := 0; i < steps; i++ {
		if i > 0 {
			b.Drift(0, n, 0.01)
		}
		res := st.Step(core.StepInput{})
		if res.Metrics.Trace == nil {
			t.Fatalf("step %d untraced", i)
		}
		d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
		if err := octree.Check(res.Tree, d, octree.CheckOptions{Canonical: res.Fresh, Moments: true, Tol: 1e-9}); err != nil {
			t.Fatalf("step %d invariants: %v", i, err)
		}
		if err := partition.Validate(st.Assign(), n); err != nil {
			t.Fatalf("step %d next assignment: %v", i, err)
		}
	}
	after := Snapshot()
	if got := after.Repartitions - before.Repartitions; got != steps {
		t.Fatalf("repartitions advanced by %d, want %d", got, steps)
	}
	if got := after.Corrections - before.Corrections; got < int64(steps)-1 {
		t.Fatalf("corrections advanced by %d, want >= %d", got, steps-1)
	}
	if after.Sessions <= before.Sessions {
		t.Fatal("sessions total did not advance")
	}
	if after.EffectiveP < 1 || after.LeafCap < 1 {
		t.Fatalf("knob gauges unpublished: %+v", after)
	}
}
