package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/engine"
	"partree/internal/runner"
)

func startFixture(t *testing.T, o FixtureOptions) *Fixture {
	t.Helper()
	f, err := StartLocal(o)
	if err != nil {
		t.Fatalf("starting fixture: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

// postJSON posts a document and returns the status code and body.
func postJSON(t *testing.T, url string, in any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

func buildSpec(n int) runner.Spec {
	return runner.Spec{Alg: core.PARTREE, Procs: 2, Bodies: n, Steps: 1, Seed: 7, Check: true}
}

// clusterBuild POSTs a build and fails the test on anything but a clean
// 200.
func clusterBuild(t *testing.T, f *Fixture, spec runner.Spec) ClusterResult {
	res, _ := clusterBuildRaw(t, f, spec)
	return res
}

func clusterBuildRaw(t *testing.T, f *Fixture, spec runner.Spec) (ClusterResult, []byte) {
	t.Helper()
	code, body := postJSON(t, f.RouterURL()+"/v1/build", spec)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/build: %d: %s", code, body)
	}
	var res ClusterResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decoding ClusterResult: %v", err)
	}
	return res, body
}

// TestClusterBuildConservation is the tier's acceptance test: a router
// and two shard daemons complete a verified build whose merged metrics
// satisfy the conservation audit — every body is built by exactly one
// shard, so ΣN == ΣBodiesBuilt == spec.Bodies.
func TestClusterBuildConservation(t *testing.T) {
	f := startFixture(t, FixtureOptions{Shards: 2})
	const n = 2000
	res, raw := clusterBuildRaw(t, f, buildSpec(n))
	if res.Failed() {
		t.Fatalf("cluster build failed: err=%q check=%q", res.Err, res.CheckFailure)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("merged result has %d shard entries, want 2", len(res.Shards))
	}
	var sumN int64
	for _, sr := range res.Shards {
		if sr.Failed() {
			t.Fatalf("shard %s failed: err=%q check=%q", sr.Shard, sr.Err, sr.CheckFailure)
		}
		if int64(sr.N) != sr.BodiesBuilt {
			t.Fatalf("shard %s owns %d bodies but built %d", sr.Shard, sr.N, sr.BodiesBuilt)
		}
		if sr.N == 0 {
			t.Fatalf("shard %s owns no bodies — uniform split should populate both halves", sr.Shard)
		}
		sumN += int64(sr.N)
	}
	if sumN != n || res.BodiesBuilt != n {
		t.Fatalf("conservation: ΣN=%d ΣBodiesBuilt=%d, want %d", sumN, res.BodiesBuilt, n)
	}
	if res.TreeNs <= 0 {
		t.Fatalf("merged TreeNs = %v, want > 0", res.TreeNs)
	}
	if got := f.Shards[0].Resident() + f.Shards[1].Resident(); got != n {
		t.Fatalf("resident bodies across shards = %d, want %d", got, n)
	}
	// The merged document must decode as a runner.Result too — the field
	// names are a compatibility contract for existing clients.
	var rr runner.Result
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatalf("ClusterResult does not decode as runner.Result: %v", err)
	}
	if rr.TreeNs != res.TreeNs || rr.LocksTotal != res.LocksTotal || rr.Cells != res.Cells {
		t.Fatalf("runner.Result view (%v, %d, %d) != cluster view (%v, %d, %d)",
			rr.TreeNs, rr.LocksTotal, rr.Cells, res.TreeNs, res.LocksTotal, res.Cells)
	}
}

// TestClusterBoundaryHandoff drives the handoff protocol end to end: a
// resident body is moved across the shard boundary and must end up
// resident in exactly one shard — the destination.
func TestClusterBoundaryHandoff(t *testing.T) {
	f := startFixture(t, FixtureOptions{Shards: 2})
	const n = 500
	res := clusterBuild(t, f, buildSpec(n))
	if res.Failed() {
		t.Fatalf("build failed: %v %v", res.Err, res.CheckFailure)
	}

	ids := f.Shards[0].ResidentIDs()
	if len(ids) == 0 {
		t.Fatal("shard 0 has no resident bodies")
	}
	body := ids[0]
	// The uniform 2-shard cut splits on the Morton key's top bit, which
	// is the z axis's top quantized bit: z > 0 keys into s1, z < 0 into
	// s0 (for the default domain centered at the origin).
	code, respBody := postJSON(t, f.RouterURL()+"/v1/move", map[string]any{
		"body": body, "pos": [3]float64{0.1, 0.1, 1.5},
	})
	if code != http.StatusOK {
		t.Fatalf("POST /v1/move: %d: %s", code, respBody)
	}
	var mv ClusterMoveResult
	if err := json.Unmarshal(respBody, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Status != "moved" || mv.From != "s0" || mv.To != "s1" {
		t.Fatalf("move = %+v, want moved s0→s1", mv)
	}

	// Exactly one shard holds the body afterward — checked through the
	// same HTTP surface the smoke script uses.
	var d0, d1 BodyDoc
	getJSON(t, fmt.Sprintf("%s/v1/shard/body?id=%d", f.ShardURL(0), body), &d0)
	getJSON(t, fmt.Sprintf("%s/v1/shard/body?id=%d", f.ShardURL(1), body), &d1)
	if d0.Present || !d1.Present {
		t.Fatalf("after handoff: present in s0=%v s1=%v, want exactly s1", d0.Present, d1.Present)
	}
	if d1.State == nil || d1.State.Pos != [3]float64{0.1, 0.1, 1.5} {
		t.Fatalf("handed-off state = %+v, want the moved position", d1.State)
	}

	// An intra-shard move keeps the body in place.
	code, respBody = postJSON(t, f.RouterURL()+"/v1/move", map[string]any{
		"body": body, "pos": [3]float64{-0.3, 0.2, 1.1},
	})
	if code != http.StatusOK {
		t.Fatalf("intra-shard move: %d: %s", code, respBody)
	}
	if err := json.Unmarshal(respBody, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Status != "ok" || mv.From != "s1" || mv.To != "s1" {
		t.Fatalf("intra-shard move = %+v, want ok within s1", mv)
	}

	// A body nobody holds is 404.
	if code, _ := postJSON(t, f.RouterURL()+"/v1/move", map[string]any{
		"body": int32(n + 100), "pos": [3]float64{0, 0, 0},
	}); code != http.StatusNotFound {
		t.Fatalf("move of unknown body: %d, want 404", code)
	}
}

// TestClusterVersionMismatch pins the consistency token: any map-version
// disagreement must answer 409 — never a silent misroute on stale
// ranges.
func TestClusterVersionMismatch(t *testing.T) {
	f := startFixture(t, FixtureOptions{Shards: 2})

	// Shard level: a request stamped with a different version.
	code, body := postJSON(t, f.ShardURL(0)+"/v1/shard/build",
		ShardBuildRequest{MapVersion: 99, Spec: buildSpec(100)})
	if code != http.StatusConflict {
		t.Fatalf("stale build: %d (%s), want 409", code, body)
	}
	if code, _ := postJSON(t, f.ShardURL(0)+"/v1/shard/move",
		MoveRequest{MapVersion: 99, Body: 1}); code != http.StatusConflict {
		t.Fatalf("stale move: %d, want 409", code)
	}

	// Router level: a router whose map version moved on (addresses
	// unchanged) must surface the fleet's 409, not merge partial results.
	staleMap := f.Map
	staleMap.Version = 2
	rt, err := NewRouter(RouterOptions{Map: staleMap})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	rt.Mount(mux, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	code, body = postJSON(t, srv.URL+"/v1/build", buildSpec(100))
	if code != http.StatusConflict {
		t.Fatalf("version-skewed router build: %d (%s), want 409", code, body)
	}
	if !strings.Contains(string(body), "version mismatch") {
		t.Fatalf("409 body does not name the mismatch: %s", body)
	}
}

// TestClusterEmptyShard covers the degenerate maps: a shard whose key
// range holds no bodies must answer a clean zero-contribution result,
// and a single-shard cluster must behave like one partreed.
func TestClusterEmptyShard(t *testing.T) {
	// s0 owns only key range [0,1) — one corner cell of the domain.
	// The domain is oversized so no Plummer tail body clamps onto the
	// low corner, leaving the cell genuinely empty.
	f := startFixture(t, FixtureOptions{Cuts: []uint64{1}, Domain: Domain{Size: 64}})
	const n = 300
	res := clusterBuild(t, f, buildSpec(n))
	if res.Failed() {
		t.Fatalf("build with empty shard failed: %v %v", res.Err, res.CheckFailure)
	}
	if res.Shards[0].N != 0 || res.Shards[0].BodiesBuilt != 0 {
		t.Fatalf("corner shard should be empty, got N=%d built=%d", res.Shards[0].N, res.Shards[0].BodiesBuilt)
	}
	if res.Shards[1].N != n {
		t.Fatalf("s1 owns %d, want all %d", res.Shards[1].N, n)
	}
	if res.BodiesBuilt != n {
		t.Fatalf("conservation with empty shard: built %d, want %d", res.BodiesBuilt, n)
	}
}

func TestClusterSingleShard(t *testing.T) {
	f := startFixture(t, FixtureOptions{Shards: 1})
	const n = 400
	res := clusterBuild(t, f, buildSpec(n))
	if res.Failed() {
		t.Fatalf("single-shard build failed: %v %v", res.Err, res.CheckFailure)
	}
	if len(res.Shards) != 1 || res.Shards[0].N != n || res.BodiesBuilt != n {
		t.Fatalf("single-shard merge = %+v, want all %d bodies in one shard", res.Shards, n)
	}
}

// TestClusterBackpressure checks that engine admission composes across
// the tier: a draining shard's 503 becomes the cluster's 503, with the
// shard's reason surfaced.
func TestClusterBackpressure(t *testing.T) {
	f := startFixture(t, FixtureOptions{Shards: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Engines[1].Drain(ctx); err != nil {
		t.Fatalf("draining shard 1 engine: %v", err)
	}
	code, body := postJSON(t, f.RouterURL()+"/v1/build", buildSpec(200))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("build against draining shard: %d (%s), want 503", code, body)
	}
	if !strings.Contains(string(body), engine.ErrDraining.Error()) {
		t.Fatalf("503 does not carry the engine's reason: %s", body)
	}
	if !strings.Contains(string(body), "s1") {
		t.Fatalf("503 does not name the rejecting shard: %s", body)
	}
}

// TestClusterSweepOrder pins the deterministic NDJSON contract: results
// stream strictly in input-spec order no matter which build finishes
// first.
func TestClusterSweepOrder(t *testing.T) {
	f := startFixture(t, FixtureOptions{Shards: 2})
	sizes := []int{600, 100, 300}
	specs := make([]runner.Spec, len(sizes))
	for i, n := range sizes {
		specs[i] = buildSpec(n)
	}
	b, _ := json.Marshal(specs)
	resp, err := http.Post(f.RouterURL()+"/v1/sweep", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var got []int
	for sc.Scan() {
		var res ClusterResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("decoding sweep record: %v", err)
		}
		if res.Failed() {
			t.Fatalf("sweep record failed: %v %v", res.Err, res.CheckFailure)
		}
		if res.BodiesBuilt != int64(res.Spec.Bodies) {
			t.Fatalf("sweep record n=%d built %d", res.Spec.Bodies, res.BodiesBuilt)
		}
		got = append(got, res.Spec.Bodies)
	}
	if len(got) != len(sizes) {
		t.Fatalf("sweep answered %d records, want %d", len(got), len(sizes))
	}
	for i, n := range sizes {
		if got[i] != n {
			t.Fatalf("sweep order: record %d has n=%d, want %d (input order)", i, got[i], n)
		}
	}
}

// TestClusterSweepIsTransient pins the residency contract of sweeps: a
// sweep's concurrent builds of *different* body sets must not replace
// the shards' resident state (whichever spec finished last would win,
// leaving shards holding subsets of different sets), so after a sweep
// the fleet still holds exactly the last /v1/build's bodies and the
// handoff protocol keeps working.
func TestClusterSweepIsTransient(t *testing.T) {
	f := startFixture(t, FixtureOptions{Shards: 2})
	const n = 500
	if res := clusterBuild(t, f, buildSpec(n)); res.Failed() {
		t.Fatalf("build failed: %v %v", res.Err, res.CheckFailure)
	}
	r0, r1 := f.Shards[0].Resident(), f.Shards[1].Resident()
	if r0+r1 != n {
		t.Fatalf("resident after build = %d+%d, want %d", r0, r1, n)
	}

	specs := []runner.Spec{buildSpec(1200), buildSpec(300), buildSpec(700)}
	b, _ := json.Marshal(specs)
	resp, err := http.Post(f.RouterURL()+"/v1/sweep", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}

	if g0, g1 := f.Shards[0].Resident(), f.Shards[1].Resident(); g0 != r0 || g1 != r1 {
		t.Fatalf("sweep disturbed residency: %d+%d, want %d+%d unchanged", g0, g1, r0, r1)
	}

	// The single-residency invariant survived, so a boundary move still
	// routes cleanly instead of tripping the router's double-residency
	// detection.
	ids := f.Shards[0].ResidentIDs()
	if len(ids) == 0 {
		t.Fatal("shard 0 has no resident bodies")
	}
	code, respBody := postJSON(t, f.RouterURL()+"/v1/move", map[string]any{
		"body": ids[0], "pos": [3]float64{0.1, 0.1, 1.5},
	})
	if code != http.StatusOK {
		t.Fatalf("move after sweep: %d: %s", code, respBody)
	}
	var mv ClusterMoveResult
	if err := json.Unmarshal(respBody, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Status != "moved" || mv.From != "s0" || mv.To != "s1" {
		t.Fatalf("move after sweep = %+v, want moved s0→s1", mv)
	}
}

// TestClusterRollupMetrics asserts the aggregated /metrics page: shard
// health gauges and the summed per-instance shard families.
func TestClusterRollupMetrics(t *testing.T) {
	f := startFixture(t, FixtureOptions{Shards: 2})
	const n = 800
	if res := clusterBuild(t, f, buildSpec(n)); res.Failed() {
		t.Fatalf("build failed: %v %v", res.Err, res.CheckFailure)
	}
	resp, err := http.Get(f.RouterURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	text := string(page)
	for _, want := range []string{
		`partree_cluster_shard_up{shard="s0"} 1`,
		`partree_cluster_shard_up{shard="s1"} 1`,
		fmt.Sprintf("partree_cluster_resident %d", n),
		fmt.Sprintf("partree_cluster_bodies_built_total %d", n),
		"partree_cluster_builds_total 2",
		"partree_router_builds_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rollup page missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("page:\n%s", text)
	}
}
