package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every metric kind with
// deterministic values: plain counter/gauge, a scrape-time func, labeled
// vecs (including label values that need escaping and a vec with no
// children yet), and a histogram with samples below, inside, and above
// its bucket ladder.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	c := NewCounter("partree_test_ops_total", "Operations performed.")
	c.Add(42)
	g := NewGauge("partree_test_temperature", "Current level.\nSecond line with a \\ backslash.")
	g.Set(-3.5)
	cf := NewCounterFunc("partree_test_ticks_total", "Sampled at scrape time.", func() float64 { return 7 })
	cv := NewCounterVec("partree_test_events_total", "Labeled events.", "alg", "note")
	cv.With("ORIG", "quote\" back\\slash\nnewline").Add(5)
	cv.With("LOCAL", "plain").Add(1)
	hv := NewHistogramVec("partree_test_duration_seconds", "Durations.",
		ExpBuckets(0.001, 2, 4), "backend")
	h := hv.With("native")
	h.Observe(0.0005) // below first bound
	h.Observe(0.003)  // interior bucket
	h.Observe(100)    // +Inf overflow
	idle := NewGaugeVec("partree_test_idle", "A vec with no children yet.", "x")
	reg.MustRegister(c, g, cf, cv, hv, idle)
	return reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output diverged from golden file %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestWritePrometheusGolden pins the text exposition byte-for-byte: HELP
// and TYPE lines, family/series sort order, label escaping, histogram
// bucket expansion, and value formatting. Regenerate with:
// go test ./internal/obs -run Golden -update
func TestWritePrometheusGolden(t *testing.T) {
	reg := goldenRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two renders of an unchanged registry differ")
	}
	checkGolden(t, "registry.golden", buf.Bytes())
}

func TestCounterIgnoresNegativeAdds(t *testing.T) {
	c := NewCounter("c_total", "")
	c.Add(2)
	c.Add(-5)
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
}

func TestGaugeMoves(t *testing.T) {
	g := NewGauge("g", "")
	g.Set(10)
	g.Add(-2.5)
	g.Dec()
	g.Inc()
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
}

// TestHistogramBucketBoundary pins the le-inclusive contract: a sample
// exactly on a bound counts in that bound's bucket.
func TestHistogramBucketBoundary(t *testing.T) {
	h := NewHistogram("h_seconds", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 2, 3, 9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 3, 4} // cumulative: le=1 -> {0.5,1}, le=2 -> +{2}, le=4 -> +{3}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket le=%v count = %d, want %d", s.UpperBounds[i], s.Counts[i], w)
		}
	}
	if s.Count != 5 || s.Sum != 15.5 {
		t.Fatalf("count=%d sum=%v, want 5 / 15.5", s.Count, s.Sum)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0, ...) did not panic")
		}
	}()
	ExpBuckets(0, 2, 4)
}

func TestRegistryRejectsDuplicateNames(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(NewCounter("dup_total", "")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(NewGauge("dup_total", "")); err == nil {
		t.Fatal("duplicate metric name accepted")
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", "bad-name", "0leading", "spa ce"} {
		if err := NewRegistry().Register(NewCounter(name, "")); err == nil {
			t.Fatalf("metric name %q accepted", name)
		}
	}
}

func TestVecArityPanics(t *testing.T) {
	v := NewCounterVec("v_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestVecSharesChildren(t *testing.T) {
	v := NewCounterVec("v_total", "", "alg")
	v.With("ORIG").Add(2)
	v.With("ORIG").Inc()
	if got := v.With("ORIG").Value(); got != 3 {
		t.Fatalf("child = %v, want 3", got)
	}
	fams := v.Collect(nil)
	if len(fams) != 1 || len(fams[0].Series) != 1 {
		t.Fatalf("want one family with one series, got %+v", fams)
	}
}

func TestEscaping(t *testing.T) {
	if got := escapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("label escape = %q", got)
	}
	if got := escapeHelp("a\\b\nc"); got != `a\\b\nc` {
		t.Fatalf("help escape = %q", got)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:     "0",
		1.5:   "1.5",
		1e21:  "1e+21",
		0.001: "0.001",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Fatalf("formatValue(+Inf) = %q", got)
	}
	if got := formatValue(math.Inf(-1)); got != "-Inf" {
		t.Fatalf("formatValue(-Inf) = %q", got)
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Fatalf("formatValue(NaN) = %q", got)
	}
}

func TestMetricNameValidation(t *testing.T) {
	good := []string{"a", "partree_runner_runs_total", "A:b_9"}
	for _, n := range good {
		if err := checkMetricName(n); err != nil {
			t.Fatalf("%q rejected: %v", n, err)
		}
	}
	if err := checkLabelName("__reserved"); err == nil {
		t.Fatal("__-prefixed label name accepted")
	}
	if err := checkLabelName("le9"); err != nil {
		t.Fatal(err)
	}
}

// TestGatherSorts pins the deterministic ordering contract: families by
// name, series by label values, regardless of registration order.
func TestGatherSorts(t *testing.T) {
	reg := NewRegistry()
	b := NewCounter("b_total", "")
	a := NewCounter("a_total", "")
	v := NewCounterVec("m_total", "", "alg")
	v.With("zeta").Inc()
	v.With("alpha").Inc()
	reg.MustRegister(b, a, v)
	fams := reg.Gather()
	var names []string
	for _, f := range fams {
		names = append(names, f.Name)
	}
	if strings.Join(names, ",") != "a_total,b_total,m_total" {
		t.Fatalf("family order %v", names)
	}
	series := fams[2].Series
	if series[0].Labels[0].Value != "alpha" || series[1].Labels[0].Value != "zeta" {
		t.Fatalf("series not sorted by label value: %+v", series)
	}
}
