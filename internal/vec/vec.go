// Package vec provides the small fixed-dimension geometry kit used by the
// rest of the tree-building code: 3-component vectors, axis-aligned cubes,
// and octant arithmetic.
//
// Everything here is a value type; the hot loops of the force calculation
// and tree build call these functions billions of times, so all methods are
// allocation-free and written so the compiler can inline them.
package vec

import (
	"fmt"
	"math"
)

// V3 is a 3-component double-precision vector.
type V3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v V3) Scale(s float64) V3 { return V3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector cross product v×w.
func (v V3) Cross(w V3) V3 {
	return V3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len2 returns |v|².
func (v V3) Len2() float64 { return v.Dot(v) }

// Len returns |v|.
func (v V3) Len() float64 { return math.Sqrt(v.Len2()) }

// Dist2 returns |v-w|².
func (v V3) Dist2(w V3) float64 {
	dx, dy, dz := v.X-w.X, v.Y-w.Y, v.Z-w.Z
	return dx*dx + dy*dy + dz*dz
}

// Dist returns |v-w|.
func (v V3) Dist(w V3) float64 { return math.Sqrt(v.Dist2(w)) }

// Neg returns -v.
func (v V3) Neg() V3 { return V3{-v.X, -v.Y, -v.Z} }

// MulAdd returns v + s*w, the fused form used by the integrator.
func (v V3) MulAdd(s float64, w V3) V3 {
	return V3{v.X + s*w.X, v.Y + s*w.Y, v.Z + s*w.Z}
}

// Min returns the componentwise minimum of v and w.
func (v V3) Min(w V3) V3 {
	return V3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the componentwise maximum of v and w.
func (v V3) Max(w V3) V3 {
	return V3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// MaxComponent returns the largest of the three components.
func (v V3) MaxComponent() float64 {
	return math.Max(v.X, math.Max(v.Y, v.Z))
}

// IsFinite reports whether all components are finite numbers.
func (v V3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String renders v for diagnostics.
func (v V3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }
