package runner

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"partree/internal/core"
	"partree/internal/obs"
	"partree/internal/phys"
)

// SpecFlags binds the shared CLI surface — one flag per Spec field plus
// -json — so every binary parses specs identically. Register the flags,
// flag.Parse, then call Spec().
type SpecFlags struct {
	backend  Backend
	alg      *string
	platform *string
	model    *string
	n        *int
	p        *int
	steps    *int
	leafCap  *int
	theta    *float64
	dt       *float64
	seed     *int64
	timeout  *time.Duration
	check    *bool
	trace    *string
	json     *bool
}

// RegisterSpecFlags registers the shared spec flags on fs with defaults
// taken from def. Flag names listed in skip are left for the binary to
// define itself (e.g. cmd/treebench's sweep-valued -p).
func RegisterSpecFlags(fs *flag.FlagSet, def Spec, skip ...string) *SpecFlags {
	skipped := map[string]bool{}
	for _, s := range skip {
		skipped[s] = true
	}
	def = def.withDefaults()
	sf := &SpecFlags{backend: def.Backend}
	if !skipped["alg"] {
		sf.alg = fs.String("alg", def.Alg.String(),
			"tree builder: "+strings.Join(core.AlgorithmNames(), ", "))
	}
	if def.Backend == Simulated && !skipped["platform"] {
		sf.platform = fs.String("platform", def.Platform,
			"platform model: "+strings.Join(PlatformNames(), ", "))
	}
	if def.Backend == Native && !skipped["model"] {
		sf.model = fs.String("model", def.Model, "mass model: "+strings.Join(phys.ModelNames(), ", "))
	}
	if !skipped["n"] {
		sf.n = fs.Int("n", def.Bodies, "number of bodies")
	}
	if !skipped["p"] {
		sf.p = fs.Int("p", def.Procs, "processors")
	}
	if !skipped["steps"] {
		what := "measured time steps"
		if def.BuildOnly {
			what = "builds per configuration (best time reported)"
		}
		sf.steps = fs.Int("steps", def.Steps, what)
	}
	if !skipped["leafcap"] {
		sf.leafCap = fs.Int("leafcap", def.LeafCap, "bodies per leaf (k)")
	}
	if !skipped["theta"] {
		sf.theta = fs.Float64("theta", def.Theta, "Barnes-Hut opening angle")
	}
	if !skipped["dt"] {
		sf.dt = fs.Float64("dt", def.Dt, "time step")
	}
	if !skipped["seed"] {
		sf.seed = fs.Int64("seed", def.Seed, "random seed")
	}
	if !skipped["timeout"] {
		sf.timeout = fs.Duration("timeout", def.Timeout, "per-spec timeout (0 = none)")
	}
	if !skipped["check"] {
		sf.check = fs.Bool("check", def.Check,
			"verify every built tree against the serial reference and audit metrics invariants")
	}
	if !skipped["trace"] {
		sf.trace = fs.String("trace", def.Trace,
			"write a per-processor phase/lock trace to this file (Chrome trace_event JSON; .csv = summary breakdown)")
	}
	if !skipped["json"] {
		sf.json = fs.Bool("json", false, "emit one JSON Result record per spec instead of text")
	}
	return sf
}

// JSON reports whether -json was set.
func (sf *SpecFlags) JSON() bool { return sf.json != nil && *sf.json }

// ObsFlags binds the shared observability surface — `-http <addr>` for
// the live metrics/health/pprof server (default off) and `-v <level>`
// for structured slog logging — so every binary exposes them
// identically. Register the flags, flag.Parse, then call Setup.
type ObsFlags struct {
	addr  *string
	level *string
}

// RegisterObsFlags registers -http and -v on fs.
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	return &ObsFlags{
		addr: fs.String("http", "",
			"serve live /metrics, /healthz and /debug/pprof on this address (e.g. :9090; empty = off)"),
		level: fs.String("v", "info", "log level: debug, info, warn, error"),
	}
}

// SetupLogging installs the process-wide slog default: a text handler on
// stderr at the -v level, tagged with the binary's name. Call it right
// after flag.Parse, before any slog output.
func (of *ObsFlags) SetupLogging(binary string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*of.level)); err != nil {
		return nil, fmt.Errorf("bad -v level %q (valid: debug, info, warn, error)", *of.level)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})).
		With("bin", binary)
	slog.SetDefault(log)
	return log, nil
}

// Serve starts the observability server when -http was given, wiring up
// the runtime gauges, the process-wide per-algorithm build totals, the
// runner's live counters (when r is non-nil), and any extra registrars
// (e.g. a harness session's sweep progress). It returns (nil, nil) with
// -http off; otherwise the resolved address is logged at info level so
// `-http :0` is usable. Callers should defer srv.Close().
func (of *ObsFlags) Serve(binary string, r *Runner, extra ...func(*obs.Registry) error) (*obs.Server, error) {
	if *of.addr == "" {
		return nil, nil
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	if err := RegisterBuildObs(reg); err != nil {
		return nil, err
	}
	if r != nil {
		if err := r.RegisterObs(reg); err != nil {
			return nil, err
		}
		if err := r.Engine().RegisterObs(reg); err != nil {
			return nil, err
		}
	}
	for _, fn := range extra {
		if err := fn(reg); err != nil {
			return nil, err
		}
	}
	srv, err := obs.Serve(*of.addr, binary, reg, nil)
	if err != nil {
		return nil, err
	}
	slog.Info("obs: serving", "addr", srv.Addr(), "url", srv.URL())
	return srv, nil
}

// Spec assembles the parsed flags into a validated Spec.
func (sf *SpecFlags) Spec() (Spec, error) {
	spec := Spec{Backend: sf.backend}
	if sf.alg != nil {
		a, err := core.ParseAlgorithm(*sf.alg)
		if err != nil {
			return Spec{}, err
		}
		spec.Alg = a
	}
	if sf.platform != nil {
		spec.Platform = *sf.platform
	}
	if sf.model != nil {
		spec.Model = *sf.model
	}
	if sf.n != nil {
		spec.Bodies = *sf.n
	}
	if sf.p != nil {
		spec.Procs = *sf.p
	}
	if sf.steps != nil {
		spec.Steps = *sf.steps
	}
	if sf.leafCap != nil {
		spec.LeafCap = *sf.leafCap
	}
	if sf.theta != nil {
		spec.Theta = *sf.theta
	}
	if sf.dt != nil {
		spec.Dt = *sf.dt
	}
	if sf.seed != nil {
		spec.Seed = *sf.seed
	}
	if sf.timeout != nil {
		spec.Timeout = *sf.timeout
	}
	if sf.check != nil {
		spec.Check = *sf.check
	}
	if sf.trace != nil {
		spec.Trace = *sf.trace
	}
	spec = spec.withDefaults()
	return spec, spec.Validate()
}
