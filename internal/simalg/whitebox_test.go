package simalg

import (
	"testing"

	"partree/internal/core"
	"partree/internal/memsim"
	"partree/internal/octree"
	"partree/internal/phys"
)

// TestSimulatedTreesValid verifies, for every algorithm on every protocol
// family, that the tree built inside the simulator is structurally valid
// against the simulator's final body positions — and canonical for the
// rebuilding algorithms.
func TestSimulatedTreesValid(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 1500, 7)
	for _, pl := range []memsim.Platform{memsim.Origin2000(4), memsim.TyphoonHLRC()} {
		for _, alg := range core.Algorithms() {
			st, _ := run(alg, b, smallCfg(pl, 4))
			d := octree.BodyData{Pos: st.bodies.Pos, Mass: st.bodies.Mass, Cost: st.bodies.Cost}
			// The update phase drifted positions after the last build;
			// rebuild what the final tree should contain by undoing one
			// drift is fiddly — instead verify against the stored tree
			// using the positions the builder saw. UPDATE aside, the
			// final build of step S used positions *before* step S's
			// update, so drift them back.
			undoDrift(st)
			canonical := alg != core.UPDATE
			if err := octree.Check(st.tree, d, octree.CheckOptions{Canonical: canonical, Tol: 1e-9}); err != nil {
				t.Fatalf("%v on %s: %v", alg, pl.Name, err)
			}
			if canonical {
				ref := octree.BuildSerial(st.bodies.Pos, st.cfg.LeafCap)
				if err := octree.Equal(st.tree, ref); err != nil {
					t.Fatalf("%v on %s: not canonical: %v", alg, pl.Name, err)
				}
			}
		}
	}
}

// undoDrift reverses the final update phase so positions match the last
// tree build (velocity was updated first, so x_old = x_new - v_new*dt).
func undoDrift(st *runState) {
	dt := st.cfg.Dt
	for i := range st.bodies.Pos {
		st.bodies.Pos[i] = st.bodies.Pos[i].MulAdd(-dt, st.bodies.Vel[i])
	}
}

// TestSimulatedLockCountsMatchShape cross-checks the simulated Figure 15
// counts against the native builders' counts on the same workload: the
// Origin-side simulation takes the same locks the native code would.
func TestSimulatedLockCountsMatchShape(t *testing.T) {
	n, p := 2048, 4
	b := phys.Generate(phys.ModelPlummer, n, 3)
	for _, alg := range []core.Algorithm{core.ORIG, core.LOCAL, core.PARTREE, core.SPACE} {
		st, _ := run(alg, b, smallCfg(memsim.Origin2000(p), p))
		var simLocks int64
		for _, sp := range st.procs {
			simLocks += sp.locks
		}
		// Native single rebuild on the *same* assignment scale. Counts
		// will differ (different partitions, retries) but must agree on
		// order of magnitude and on zero-ness.
		bld := core.New(alg, core.Config{P: p, LeafCap: 8})
		_, m := bld.Build(&core.Input{Bodies: b, Assign: core.SpatialAssign(b, p)})
		nat := m.TotalLocks()
		if (simLocks == 0) != (nat == 0) {
			t.Fatalf("%v: sim locks %d vs native %d disagree on zero-ness", alg, simLocks, nat)
		}
		if nat > 0 {
			ratio := float64(simLocks) / float64(nat)
			if ratio < 0.1 || ratio > 10 {
				t.Fatalf("%v: sim locks %d and native locks %d differ by more than 10x", alg, simLocks, nat)
			}
		}
	}
}

// TestVisibilityLocksOnlyOnHLRC: the same run takes many more locks under
// HLRC than under the directory protocol (the paper's observation about
// release consistency requiring extra synchronization).
func TestVisibilityLocksOnlyOnHLRC(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 2048, 5)
	or := Run(core.LOCAL, b, smallCfg(memsim.Origin2000(4), 4))
	ty := Run(core.LOCAL, b, smallCfg(memsim.TyphoonHLRC(), 4))
	if ty.TotalLocks() < 3*or.TotalLocks() {
		t.Fatalf("HLRC locks %d not ≫ Origin locks %d", ty.TotalLocks(), or.TotalLocks())
	}
}
