package core

import (
	"testing"

	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/phys"
	"partree/internal/trace"
)

func copyAssign(assign [][]int32) [][]int32 {
	out := make([][]int32, len(assign))
	for w := range assign {
		out[w] = append([]int32(nil), assign[w]...)
	}
	return out
}

func assignsEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for w := range a {
		if len(a[w]) != len(b[w]) {
			return false
		}
		for i := range a[w] {
			if a[w][i] != b[w][i] {
				return false
			}
		}
	}
	return true
}

// TestStepperRepartitionsPerStep is the staleness regression test: the
// stepper used to compute the body→processor assignment once at
// construction and reuse it (and its costs) for every subsequent step.
// After a differential collapse has moved the mass distribution, step
// k's partition must differ from step 0's — and still cover every body
// exactly once.
func TestStepperRepartitionsPerStep(t *testing.T) {
	const n, p = 2000, 4
	b := phys.Generate(phys.ModelPlummer, n, 3)
	st := NewStepper(Config{P: p, LeafCap: 8}, b, FallbackPolicy{MinSteps: 1 << 20})
	step0 := copyAssign(st.Assign())
	if err := partition.Validate(step0, n); err != nil {
		t.Fatalf("step-0 assignment: %v", err)
	}
	for i := 0; i < 6; i++ {
		if i > 0 {
			// Differential collapse: outer bodies fall inward faster, so
			// tree order (and any cost-balanced cut of it) shifts.
			for j := range b.Pos {
				r := b.Pos[j].Len()
				b.Pos[j] = b.Pos[j].Scale(1 / (1 + 0.35*r))
			}
		}
		st.Step(StepInput{})
		if err := partition.Validate(st.Assign(), n); err != nil {
			t.Fatalf("step %d assignment: %v", i, err)
		}
	}
	if assignsEqual(step0, st.Assign()) {
		t.Fatal("assignment after a Plummer collapse is identical to step 0's — the partition never refreshed")
	}
}

// recordingAdapter is a minimal core.Adapter for exercising the stepper's
// adaptive plumbing without importing internal/adapt (which imports this
// package): it counts calls, asserts it sees trace summaries, and
// retunes once at a scripted observation.
type recordingAdapter struct {
	observes   int
	traced     int
	partitions int
	retuneAt   int
	retune     func(Config) Config
}

func (a *recordingAdapter) Observe(assign [][]int32, sum *trace.Summary) {
	a.observes++
	if sum != nil && len(sum.PerProc) > 0 {
		a.traced++
	}
}

func (a *recordingAdapter) Retune(cur Config) (Config, bool) {
	if a.retune != nil && a.observes == a.retuneAt {
		return a.retune(cur), true
	}
	return cur, false
}

func (a *recordingAdapter) Partition(t *octree.Tree, d octree.BodyData, p int) [][]int32 {
	a.partitions++
	return partition.Costzones(t, d, p)
}

// TestAdaptiveStepperPlumbing checks the adapter contract end to end:
// every step is traced (the adaptive constructor makes its own recorder),
// the adapter observes each step and cuts each next partition, and a
// retune is applied as a fresh rebuild on the following step with
// Retuned reported on it.
func TestAdaptiveStepperPlumbing(t *testing.T) {
	const n, p = 1500, 4
	b := phys.Generate(phys.ModelPlummer, n, 5)
	ad := &recordingAdapter{
		retuneAt: 3,
		retune:   func(c Config) Config { c.LeafCap = 16; return c },
	}
	st := NewAdaptiveStepper(Config{P: p, LeafCap: 8}, b, FallbackPolicy{MinSteps: 1 << 20}, ad)
	for i := 0; i < 6; i++ {
		if i > 0 {
			b.Drift(0, n, 0.01)
		}
		res := st.Step(StepInput{})
		if res.Metrics.Trace == nil || len(res.Metrics.Trace.PerProc) != p {
			t.Fatalf("step %d: adaptive step not traced per processor", i)
		}
		// The retune observed after step 2 (observes==3) applies to step
		// 3: a fresh rebuild of the recreated builder, flagged Retuned
		// but never as an unplanned fallback.
		if i == 3 {
			if !res.Retuned {
				t.Fatalf("step %d: retuned step not flagged", i)
			}
			if !res.Fresh || res.Reason != FreshFirst {
				t.Fatalf("step %d: retuned step fresh=%v reason=%q, want fresh FreshFirst", i, res.Fresh, res.Reason)
			}
			if res.Fallback {
				t.Fatalf("step %d: retuned step misreported as policy fallback", i)
			}
		} else if res.Retuned {
			t.Fatalf("step %d: spurious Retuned flag", i)
		}
		d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
		if err := octree.Check(res.Tree, d, octree.CheckOptions{Canonical: res.Fresh, Moments: true, Tol: 1e-9}); err != nil {
			t.Fatalf("step %d invariants: %v", i, err)
		}
	}
	if got := st.Config().LeafCap; got != 16 {
		t.Fatalf("retuned leafcap %d, want 16", got)
	}
	if ad.observes != 6 || ad.partitions != 6 {
		t.Fatalf("adapter saw %d observes / %d partitions, want 6/6", ad.observes, ad.partitions)
	}
	if ad.traced != 6 {
		t.Fatalf("adapter got %d traced summaries, want 6", ad.traced)
	}
}

// TestAdaptiveStepperRetunesP checks the sharpest retune: changing the
// effective processor count must recreate the builder's store AND the
// trace recorder together, so the next step's metrics and trace agree on
// the processor count (verify's law 6) and the new assignment indexes
// only the new arenas.
func TestAdaptiveStepperRetunesP(t *testing.T) {
	const n = 1200
	b := phys.Generate(phys.ModelPlummer, n, 11)
	ad := &recordingAdapter{
		retuneAt: 2,
		retune:   func(c Config) Config { c.P = 2; return c },
	}
	st := NewAdaptiveStepper(Config{P: 4, LeafCap: 8}, b, FallbackPolicy{MinSteps: 1 << 20}, ad)
	for i := 0; i < 4; i++ {
		if i > 0 {
			b.Drift(0, n, 0.01)
		}
		res := st.Step(StepInput{})
		wantP := 4
		if i >= 2 {
			wantP = 2
		}
		if got := len(res.Metrics.PerP); got != wantP {
			t.Fatalf("step %d: metrics cover %d procs, want %d", i, got, wantP)
		}
		if got := len(res.Metrics.Trace.PerProc); got != wantP {
			t.Fatalf("step %d: trace covers %d procs, want %d", i, got, wantP)
		}
		if err := partition.Validate(st.Assign(), n); err != nil {
			t.Fatalf("step %d next assignment: %v", i, err)
		}
		// The retune lands during step 1's end-of-step repartition, so
		// the *next* assignment flips to 2 zones one step before the
		// metrics do.
		wantNextP := 4
		if i >= 1 {
			wantNextP = 2
		}
		if got := len(st.Assign()); got != wantNextP {
			t.Fatalf("step %d: next assignment has %d zones, want %d", i, got, wantNextP)
		}
	}
}
