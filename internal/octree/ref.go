// Package octree implements the adaptive Barnes-Hut octree shared by all
// five of the paper's tree-building algorithms: node storage in
// per-processor arenas, a canonical sequential builder, the center-of-mass
// (moments) passes, invariant checkers, and tree statistics.
//
// Storage layout follows the paper's data structures. Internal cells and
// leaves are distinct types held in distinct arrays (the SPLASH-2 "LOCAL"
// layout); the SPLASH-1 "ORIG" layout — one global shared array with a
// shared allocation cursor — is expressed as a single shared arena that all
// processors allocate from. Nodes are addressed by a compact Ref rather
// than a Go pointer so that the platform simulator can reuse the exact
// same addresses when charging coherence costs.
//
// Concurrency contract: a node becomes visible to other goroutines only by
// atomically publishing its Ref into a parent's child slot (or as the
// root). All writes that initialize the node — including installing the
// arena chunk that holds it — happen before that atomic store, so readers
// that obtain the Ref through an atomic load may access the node's
// immutable fields without further synchronization. Mutable fields (leaf
// contents, retirement flags) are protected by the Store's striped locks.
package octree

import "fmt"

// Ref is a compact node reference: 1 bit leaf flag, 6 bits arena, 25 bits
// index within the arena. The zero-able all-ones value is reserved as Nil.
type Ref uint32

// Nil is the null node reference.
const Nil Ref = 0xFFFFFFFF

const (
	leafBit    = 1 << 31
	arenaShift = 25
	arenaMask  = 0x3F              // 64 arenas
	indexMask  = 1<<arenaShift - 1 // 32M nodes per arena

	// MaxArenas is the largest number of distinct arenas a Store may hold
	// (one shared arena plus one per processor comfortably fits).
	MaxArenas = arenaMask + 1
)

// CellRef builds a reference to cell index idx in the given arena.
func CellRef(arena, idx int) Ref {
	return Ref(arena<<arenaShift) | Ref(idx)
}

// LeafRef builds a reference to leaf index idx in the given arena.
func LeafRef(arena, idx int) Ref {
	return Ref(leafBit) | Ref(arena<<arenaShift) | Ref(idx)
}

// IsNil reports whether r is the null reference.
func (r Ref) IsNil() bool { return r == Nil }

// IsLeaf reports whether r refers to a leaf (false for cells and Nil).
func (r Ref) IsLeaf() bool { return r != Nil && r&leafBit != 0 }

// IsCell reports whether r refers to an internal cell.
func (r Ref) IsCell() bool { return r != Nil && r&leafBit == 0 }

// Arena returns the arena number encoded in r.
func (r Ref) Arena() int { return int(r>>arenaShift) & arenaMask }

// Index returns the within-arena index encoded in r.
func (r Ref) Index() int { return int(r & indexMask) }

// String renders r for diagnostics.
func (r Ref) String() string {
	switch {
	case r.IsNil():
		return "nil"
	case r.IsLeaf():
		return fmt.Sprintf("leaf[%d:%d]", r.Arena(), r.Index())
	default:
		return fmt.Sprintf("cell[%d:%d]", r.Arena(), r.Index())
	}
}
