// Package phys holds the physical state of an N-body system: the bodies
// themselves, initial-condition generators (Plummer sphere, uniform cube,
// colliding clusters), the leapfrog integrator, and energy diagnostics.
//
// Bodies are stored in structure-of-arrays form. The SPLASH-2 BARNES code
// keeps bodies in flat shared arrays for locality, and the paper's
// tree-building algorithms are described in terms of body indices moving
// between per-processor pointer arrays; a SoA store reproduces both the
// access pattern and the sharing granularity that the platform simulator
// needs to model.
package phys

import (
	"fmt"

	"partree/internal/vec"
)

// Bodies is a structure-of-arrays collection of N bodies.
type Bodies struct {
	Pos  []vec.V3  // position
	Vel  []vec.V3  // velocity
	Acc  []vec.V3  // acceleration from the most recent force pass
	Mass []float64 // gravitational mass
	// Cost is the interaction count each body incurred in the previous
	// force pass. Costzones partitioning consumes it; the tree builders
	// carry it across steps exactly as the SPLASH codes do.
	Cost []int64
}

// NewBodies allocates storage for n bodies with zeroed state.
func NewBodies(n int) *Bodies {
	return &Bodies{
		Pos:  make([]vec.V3, n),
		Vel:  make([]vec.V3, n),
		Acc:  make([]vec.V3, n),
		Mass: make([]float64, n),
		Cost: make([]int64, n),
	}
}

// N returns the number of bodies.
func (b *Bodies) N() int { return len(b.Pos) }

// TotalMass returns the summed mass of all bodies.
func (b *Bodies) TotalMass() float64 {
	var m float64
	for _, v := range b.Mass {
		m += v
	}
	return m
}

// CenterOfMass returns the mass-weighted mean position, or the zero vector
// for an empty or massless system.
func (b *Bodies) CenterOfMass() vec.V3 {
	var com vec.V3
	var m float64
	for i := range b.Pos {
		com = com.MulAdd(b.Mass[i], b.Pos[i])
		m += b.Mass[i]
	}
	if m == 0 {
		return vec.V3{}
	}
	return com.Scale(1 / m)
}

// Momentum returns the total linear momentum.
func (b *Bodies) Momentum() vec.V3 {
	var p vec.V3
	for i := range b.Vel {
		p = p.MulAdd(b.Mass[i], b.Vel[i])
	}
	return p
}

// Bounds returns a cube containing all body positions, expanded by margin
// (see vec.BoundingCube).
func (b *Bodies) Bounds(margin float64) vec.Cube {
	return vec.BoundingCube(b.N(), func(i int) vec.V3 { return b.Pos[i] }, margin)
}

// Clone deep-copies the body set.
func (b *Bodies) Clone() *Bodies {
	c := NewBodies(b.N())
	copy(c.Pos, b.Pos)
	copy(c.Vel, b.Vel)
	copy(c.Acc, b.Acc)
	copy(c.Mass, b.Mass)
	copy(c.Cost, b.Cost)
	return c
}

// Validate checks the store for internal consistency (parallel slices of
// equal length, finite positions and velocities, non-negative masses).
func (b *Bodies) Validate() error {
	n := len(b.Pos)
	if len(b.Vel) != n || len(b.Acc) != n || len(b.Mass) != n || len(b.Cost) != n {
		return fmt.Errorf("phys: slice lengths diverge: pos=%d vel=%d acc=%d mass=%d cost=%d",
			len(b.Pos), len(b.Vel), len(b.Acc), len(b.Mass), len(b.Cost))
	}
	for i := 0; i < n; i++ {
		if !b.Pos[i].IsFinite() {
			return fmt.Errorf("phys: body %d has non-finite position %v", i, b.Pos[i])
		}
		if !b.Vel[i].IsFinite() {
			return fmt.Errorf("phys: body %d has non-finite velocity %v", i, b.Vel[i])
		}
		if b.Mass[i] < 0 {
			return fmt.Errorf("phys: body %d has negative mass %g", i, b.Mass[i])
		}
	}
	return nil
}
