// Command partreed is the long-lived build service: the engine's pooled
// builder sessions and the runner's memoizing caches behind a JSON HTTP
// API, beside the usual observability endpoints on one listener.
//
// Usage:
//
//	partreed [-addr 127.0.0.1:9732] [-max-active 0] [-max-queue 0]
//	         [-max-idle 32] [-result-cache 4096] [-bodies-cache 64]
//	         [-session-model plummer] [-drain-timeout 30s] [-v info]
//	         [-flight 256] [-slow-threshold 250ms] [-slow-k 16]
//
// Endpoints:
//
//	POST /v1/build   one runner.Spec (JSON) → its Result (JSON)
//	POST /v1/sweep   a JSON array of specs → NDJSON stream of Results
//	POST /v1/session one NDJSON stream: open record, then one record per
//	                 timestep against a resident tree (UPDATE per step,
//	                 auto-fallback SPACE rebuilds); results stream back
//	                 in-line. 503 only before the stream opens.
//	     /v1/shard/* cluster shard surface (with -shard-map and -shard):
//	                 this daemon owns one Morton range of a shard map and
//	                 serves shard-level builds, moves, and handoffs for
//	                 cmd/partree-router (see internal/cluster)
//	GET  /metrics    Prometheus exposition (engine pool, runner, builds,
//	                 partree_req_* request families)
//	GET  /healthz    liveness (+ready:false once draining)
//	GET  /debug/requests       flight recorder: last-N completed requests
//	GET  /debug/requests/slow  top-K slowest (threshold-gated)
//	GET  /debug/requests/<id>  one request's span timeline by ID
//	     /debug/pprof, /debug/vars
//
// Every request is answered with an X-Request-Id header (the inbound
// traceparent trace-id when one was sent, minted otherwise); /v1/build
// additionally answers a Server-Timing header with the queue/build/
// moments/total breakdown, and every request logs one structured
// access-log line.
//
// Admission control is the engine's: at most max-active builds run, at
// most max-queue more wait (honoring each request's context), and
// overload or drain answers 503. SIGINT/SIGTERM triggers a graceful
// drain — in-flight builds finish and are answered, new requests get
// 503 — bounded by -drain-timeout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"partree/internal/cluster"
	"partree/internal/engine"
	"partree/internal/obs"
	"partree/internal/phys"
	"partree/internal/reqtrace"
	"partree/internal/runner"
)

// daemonConfig sizes a daemon. Zero fields select the flag defaults.
type daemonConfig struct {
	maxActive    int
	maxQueue     int
	maxIdle      int
	maxSessions  int           // streaming session leases held at once
	sessionIdle  time.Duration // idle-eviction default for sessions
	leaseTick    time.Duration // idle janitor granularity
	resultCache  int
	bodiesCache  int
	drainTimeout time.Duration
	// adaptive turns on measured-cost adaptive partitioning for every
	// streaming session (each session can also opt in individually via
	// its open record's "adaptive" field).
	adaptive bool
	// sessionModel is the mass model for sessions whose open record
	// leaves "model" empty — any phys scenario model name.
	sessionModel string
	// flight is the flight-recorder capacity (completed requests
	// /debug/requests looks back on); negative disables request
	// tracing entirely (nil-handle no-op on the serving path).
	flight int
	// slowThreshold gates /debug/requests/slow and the slow counter.
	slowThreshold time.Duration
	// slowK bounds the retained slowest requests.
	slowK int
	// shardMap/shardID, when both set, additionally mount the cluster
	// shard surface (/v1/shard/*): this daemon owns the named shard's
	// Morton range of the map file and serves shard-level builds through
	// the same engine — admission control composes per shard.
	shardMap string
	shardID  string
}

func (c daemonConfig) withDefaults() daemonConfig {
	if c.maxActive <= 0 {
		c.maxActive = runtime.GOMAXPROCS(0)
	}
	if c.maxQueue == 0 {
		c.maxQueue = 4 * c.maxActive
	}
	if c.maxIdle == 0 {
		c.maxIdle = 32
	}
	if c.maxSessions == 0 {
		c.maxSessions = 256
	}
	if c.sessionIdle <= 0 {
		c.sessionIdle = 2 * time.Minute
	}
	if c.drainTimeout == 0 {
		c.drainTimeout = 30 * time.Second
	}
	if c.sessionModel == "" {
		c.sessionModel = "plummer"
	}
	if c.flight == 0 {
		c.flight = 256
	}
	if c.slowThreshold <= 0 {
		c.slowThreshold = 250 * time.Millisecond
	}
	if c.slowK == 0 {
		c.slowK = 16
	}
	return c
}

// daemon owns the engine, the runner executing through it, and the HTTP
// server. It is constructed directly by the e2e test, so everything the
// handlers touch lives here rather than in package-level state.
type daemon struct {
	cfg daemonConfig
	eng *engine.Engine
	r   *runner.Runner
	reg *obs.Registry
	srv *obs.Server
	// rec is the request flight recorder; nil when -flight < 0, which
	// every hook on the serving path treats as "do nothing".
	rec *reqtrace.Recorder
	// shard is the cluster shard surface; nil unless -shard-map/-shard
	// were given.
	shard    *cluster.ShardServer
	draining atomic.Bool
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	cfg = cfg.withDefaults()
	eng := engine.New(engine.Options{
		MaxActive: cfg.maxActive, MaxQueue: cfg.maxQueue, MaxIdle: cfg.maxIdle,
		MaxLeases: cfg.maxSessions, LeaseIdle: cfg.sessionIdle, LeaseTick: cfg.leaseTick,
	})
	// The runner's worker pool sits above the engine; sized past
	// active+queue it never gates, so the engine's admission control is
	// the daemon's single source of backpressure and overflow surfaces
	// as ErrQueueFull → 503 instead of waiting invisibly.
	r := runner.NewWithConfig(runner.Config{
		Workers:            cfg.maxActive + cfg.maxQueue + 8,
		ResultCacheEntries: cfg.resultCache,
		BodiesCacheEntries: cfg.bodiesCache,
		Engine:             eng,
	})
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	if err := runner.RegisterBuildObs(reg); err != nil {
		return nil, err
	}
	if err := r.RegisterObs(reg); err != nil {
		return nil, err
	}
	if err := eng.RegisterObs(reg); err != nil {
		return nil, err
	}
	d := &daemon{cfg: cfg, eng: eng, r: r, reg: reg}
	if cfg.shardMap != "" || cfg.shardID != "" {
		if cfg.shardMap == "" || cfg.shardID == "" {
			return nil, fmt.Errorf("-shard-map and -shard must be given together")
		}
		m, err := cluster.ReadMap(cfg.shardMap)
		if err != nil {
			return nil, err
		}
		idx := m.ShardByID(cfg.shardID)
		if idx < 0 {
			return nil, fmt.Errorf("shard %q is not in map %s", cfg.shardID, cfg.shardMap)
		}
		ss, err := cluster.NewShardServer(m, idx, eng)
		if err != nil {
			return nil, err
		}
		if err := ss.RegisterObs(reg); err != nil {
			return nil, err
		}
		d.shard = ss
	}
	if cfg.flight > 0 {
		d.rec = reqtrace.NewRecorder(reqtrace.Options{
			Cap: cfg.flight, SlowThreshold: cfg.slowThreshold, SlowK: cfg.slowK,
		})
		if err := d.rec.RegisterObs(reg); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// start binds addr and serves until drain/close. ":0" works for tests.
func (d *daemon) start(addr string) error {
	srv, err := obs.ServeWith(addr, "partreed", d.reg,
		func() bool { return !d.draining.Load() }, d.mount)
	if err != nil {
		return err
	}
	d.srv = srv
	return nil
}

func (d *daemon) mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/build", d.instrument("/v1/build", d.handleBuild))
	mux.HandleFunc("/v1/sweep", d.instrument("/v1/sweep", d.handleSweep))
	mux.HandleFunc("/v1/session", d.instrument("/v1/session", d.handleSession))
	if d.shard != nil {
		d.shard.Mount(mux, d.instrument)
	}
	d.rec.Mount(mux)
}

// drain stops admitting work, waits out in-flight builds (bounded by the
// configured drain timeout), then closes the listener. Idempotent.
func (d *daemon) drain(ctx context.Context) error {
	d.draining.Store(true)
	ctx, cancel := context.WithTimeout(ctx, d.cfg.drainTimeout)
	defer cancel()
	err := d.eng.Drain(ctx)
	if d.srv != nil {
		// Graceful: handlers whose builds just finished still get to
		// write their responses.
		d.srv.Shutdown(ctx)
	}
	return err
}

// httpError answers with a JSON error document carrying the request ID
// (when the instrument middleware assigned one), so a 503 rejection in
// a client log correlates with the daemon's access log and admission
// counters.
func httpError(w http.ResponseWriter, code int, msg string) {
	doc := map[string]string{"error": msg}
	if id := w.Header().Get("X-Request-Id"); id != "" {
		doc["request_id"] = id
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(doc)
}

// admissionRejected reports whether a result is an engine admission
// rejection — the sentinel texts are the service contract for 503.
func admissionRejected(res runner.Result) bool {
	return res.Err != "" &&
		(strings.Contains(res.Err, engine.ErrQueueFull.Error()) ||
			strings.Contains(res.Err, engine.ErrDraining.Error()))
}

// decodeSpec parses and vets one spec for service execution.
func decodeSpec(dec *json.Decoder) (runner.Spec, error) {
	var spec runner.Spec
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("parsing spec: %w", err)
	}
	if spec.Trace != "" {
		// A trace lands in the *server's* filesystem; refuse rather than
		// surprise.
		return spec, fmt.Errorf("trace is not supported over HTTP")
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

func (d *daemon) handleBuild(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a runner.Spec JSON document")
		return
	}
	if d.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, engine.ErrDraining.Error())
		return
	}
	rq := reqtrace.FromContext(req.Context())
	var rstart time.Time
	if rq != nil {
		rstart = time.Now()
	}
	spec, err := decodeSpec(json.NewDecoder(req.Body))
	rq.SpanSince("read", rstart)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	res := d.r.Run(req.Context(), spec)
	if admissionRejected(res) {
		httpError(w, http.StatusServiceUnavailable, res.Err)
		return
	}
	// The Server-Timing header carries the request's station breakdown
	// (headers must precede the body, so this is the pre-write view;
	// the flight-recorder entry additionally covers the write).
	if rq != nil {
		q, b, m, tot := rq.Breakdown()
		w.Header().Set("Server-Timing", serverTiming(q, b, m, tot))
	}
	// Executed specs answer 200 with the Result; failures (timeout,
	// check violation) travel in-band in its error fields, as in the
	// CLI's -json output.
	w.Header().Set("Content-Type", "application/json")
	var wstart time.Time
	if rq != nil {
		wstart = time.Now()
	}
	json.NewEncoder(w).Encode(res)
	rq.SpanSince("write", wstart)
	slog.Debug("build served", "spec", spec.String(), "failed", res.Failed())
}

func (d *daemon) handleSweep(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON array of runner.Spec documents")
		return
	}
	if d.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, engine.ErrDraining.Error())
		return
	}
	var specs []runner.Spec
	if err := json.NewDecoder(req.Body).Decode(&specs); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing spec list: %v", err))
		return
	}
	for i := range specs {
		if specs[i].Trace != "" {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: trace is not supported over HTTP", i))
			return
		}
		specs[i] = specs[i].Normalized()
		if err := specs[i].Validate(); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
			return
		}
	}
	// Results stream as NDJSON in completion order — each record carries
	// its spec, so clients rejoin them; flushing per record makes a slow
	// sweep observable as it runs.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	d.r.RunAllProgress(req.Context(), specs, func(_ int, res runner.Result) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(res)
		if flusher != nil {
			flusher.Flush()
		}
	})
	slog.Debug("sweep served", "specs", len(specs))
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9732", "listen address for the API and observability endpoints")
		maxActive    = flag.Int("max-active", 0, "concurrent builds (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "builds allowed to wait beyond max-active (0 = 4x max-active)")
		maxIdle      = flag.Int("max-idle", 32, "pooled builder sessions retained across requests")
		maxSessions  = flag.Int("max-sessions", 256, "streaming session leases held open at once")
		sessionIdle  = flag.Duration("session-idle", 2*time.Minute, "idle timeout before a streaming session is evicted")
		resultCache  = flag.Int("result-cache", 4096, "memoized spec results retained (LRU)")
		bodiesCache  = flag.Int("bodies-cache", 64, "memoized body sets retained (LRU)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight builds")
		adaptive     = flag.Bool("adaptive", false, "measured-cost adaptive partitioning for every streaming session")
		sessionModel = flag.String("session-model", "plummer", "default mass model for sessions that omit one: "+strings.Join(phys.ModelNames(), ", "))
		shardMap     = flag.String("shard-map", "", "cluster shard map file; mounts /v1/shard/* (requires -shard)")
		shardID      = flag.String("shard", "", "this daemon's shard ID within -shard-map")
		flight       = flag.Int("flight", 256, "flight-recorder capacity (completed requests kept for /debug/requests; negative disables request tracing)")
		slowThresh   = flag.Duration("slow-threshold", 250*time.Millisecond, "requests at least this slow are counted and kept in /debug/requests/slow")
		slowK        = flag.Int("slow-k", 16, "slowest requests retained for /debug/requests/slow")
		level        = flag.String("v", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*level)); err != nil {
		fmt.Fprintf(os.Stderr, "partreed: bad -v level %q\n", *level)
		os.Exit(2)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})).
		With("bin", "partreed"))

	d, err := newDaemon(daemonConfig{
		maxActive: *maxActive, maxQueue: *maxQueue, maxIdle: *maxIdle,
		maxSessions: *maxSessions, sessionIdle: *sessionIdle,
		resultCache: *resultCache, bodiesCache: *bodiesCache,
		drainTimeout: *drainTimeout, adaptive: *adaptive, sessionModel: *sessionModel,
		flight: *flight, slowThreshold: *slowThresh, slowK: *slowK,
		shardMap: *shardMap, shardID: *shardID,
	})
	if err != nil {
		slog.Error("building daemon", "err", err)
		os.Exit(1)
	}
	if err := d.start(*addr); err != nil {
		slog.Error("starting server", "err", err)
		os.Exit(1)
	}
	slog.Info("serving", "addr", d.srv.Addr(), "url", d.srv.URL(),
		"max_active", d.cfg.maxActive, "max_queue", d.cfg.maxQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	slog.Info("draining", "signal", s.String(), "timeout", d.cfg.drainTimeout)
	if err := d.drain(context.Background()); err != nil {
		slog.Error("drain incomplete", "err", err)
		os.Exit(1)
	}
	slog.Info("drained; bye")
}
