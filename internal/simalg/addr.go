// Package simalg re-expresses the paper's five tree-building algorithms —
// and the force-calculation and update phases around them — as programs
// over the memsim platform simulator. The algorithms operate on a real
// octree (the engine serializes the simulated processors, so the shared
// structure needs no real locks) while every shared access, lock, and
// barrier is charged to the simulated machine. This is how the paper's
// cross-platform tables and figures are regenerated; see DESIGN.md §2.2–2.3
// for what is simulated event-by-event versus in aggregate.
package simalg

import (
	"partree/internal/octree"
)

// Simulated address-space layout. Strides are powers of two so pages and
// cache lines divide evenly. The layout mirrors the codes the paper
// describes: one global region per data class, with per-processor arenas
// at disjoint regions (so LOCAL-family allocations can be homed at their
// owner, while ORIG's single shared arena interleaves processors within
// pages).
const (
	bodyBase   = uint64(1) << 32
	bodyStride = 128 // one body record (pos/vel/acc/mass/cost)
	// LOCAL-family codes keep bodies in per-processor arrays and
	// physically move a body when it is reassigned; each processor's
	// array is a region homed at its node. ORIG keeps one global body
	// array (only pointer arrays change hands), so it uses bodyBase
	// directly with default round-robin page homes.
	bodyRegionStride = uint64(1) << 26 // 64 MB per processor

	arenaBase   = uint64(1) << 33
	arenaStride = uint64(1) << 28 // 256 MB window per arena
	cellStride  = 256
	leafStride  = 256
	leafRegion  = uint64(1) << 27 // leaves in the upper half of the window

	// ORIG's shared bookkeeping: the global allocation cursor and the
	// per-processor "cells used / leaves used" counters that SPLASH-1
	// keeps in shared arrays (8 bytes apart: classic false sharing).
	counterBase     = uint64(1) << 30
	sharedStatsBase = counterBase + 4096

	// LOCAL-family private counters: one page per processor.
	privStatsBase = counterBase + uint64(1)<<20
)

// bodyAddr is the simulated address of body b's record in ORIG's single
// global body array.
func bodyAddr(b int32) uint64 { return bodyBase + uint64(b)*bodyStride }

// bodySlotAddr is the address of slot i in processor w's body array.
func bodySlotAddr(w int, slot int) uint64 {
	return bodyBase + bodyRegionStride + uint64(w)*bodyRegionStride + uint64(slot)*bodyStride
}

// nodeAddr is the simulated address of a tree node.
func nodeAddr(r octree.Ref) uint64 {
	base := arenaBase + uint64(r.Arena())*arenaStride
	if r.IsLeaf() {
		return base + leafRegion + uint64(r.Index())*leafStride
	}
	return base + uint64(r.Index())*cellStride
}

// lockOf maps a node to its lock id. The SPLASH-era codes hash cells onto
// a small fixed lock array; 64 locks reproduces that: under software
// coherence, contention on these few locks meets critical sections dilated
// by page faults, which is exactly the serialization the paper identifies.
// Lock ids below 1024 are node locks; higher ids are special.
func lockOf(r octree.Ref) int {
	return int((uint32(r) * 2654435769) >> (32 - 6))
}

// Special lock ids.
const (
	lockAlloc = 1 << 20 // ORIG's shared allocation cursor lock
)

// sharedCounterAddr is ORIG's global allocation cursor.
func sharedCounterAddr() uint64 { return counterBase }

// sharedStatAddr is processor w's slot in ORIG's shared stats array.
func sharedStatAddr(w int) uint64 { return sharedStatsBase + uint64(w)*8 }

// privStatAddr is processor w's padded private counter page.
func privStatAddr(w int) uint64 { return privStatsBase + uint64(w)*4096 }
